// Ablations for the design choices DESIGN.md calls out: what each runtime
// checking layer costs when enabled, recording, or compiled away.
//
//   A. buffer_head state validation per transition (block layer)
//   B. lock-order tracking vs a plain mutex (sync layer)
//   C. ownership checking modes (ownership layer)
//   D. refinement checking on/off on a live specfs (spec layer)
#include <benchmark/benchmark.h>

#include <mutex>

#include "src/block/block_device.h"
#include "src/block/buffer_cache.h"
#include "src/fs/safefs/safefs.h"
#include "src/fs/specfs/specfs.h"
#include "src/ownership/owned.h"
#include "src/spec/refinement.h"
#include "src/sync/mutex.h"

namespace skern {
namespace {

// --- A: buffer state validation ---

void BufferCycle(BufferCache& cache) {
  auto r = cache.ReadBlock(3);
  SKERN_CHECK(r.ok());
  BufferHead* bh = r.value();
  bh->data[0] ^= 1;
  cache.MarkDirty(bh);
  SKERN_CHECK(cache.WriteBack(bh).ok());
  cache.Release(bh);
}

void BM_BufferCycle_Checked(benchmark::State& state) {
  SetBufferStateChecking(true);
  RamDisk disk(16, 1);
  BufferCache cache(disk, 8);
  for (auto _ : state) {
    BufferCycle(cache);
  }
}
BENCHMARK(BM_BufferCycle_Checked);

void BM_BufferCycle_Unchecked(benchmark::State& state) {
  SetBufferStateChecking(false);
  RamDisk disk(16, 1);
  BufferCache cache(disk, 8);
  for (auto _ : state) {
    BufferCycle(cache);
  }
  SetBufferStateChecking(true);
}
BENCHMARK(BM_BufferCycle_Unchecked);

// --- B: lock tracking ---

void BM_PlainMutexLockUnlock(benchmark::State& state) {
  std::mutex mu;
  for (auto _ : state) {
    mu.lock();
    benchmark::DoNotOptimize(&mu);
    mu.unlock();
  }
}
BENCHMARK(BM_PlainMutexLockUnlock);

void BM_TrackedMutexLockUnlock(benchmark::State& state) {
  TrackedMutex mu("bench.tracked");
  for (auto _ : state) {
    mu.Lock();
    benchmark::DoNotOptimize(&mu);
    mu.Unlock();
  }
}
BENCHMARK(BM_TrackedMutexLockUnlock);

void BM_TrackedMutexNested(benchmark::State& state) {
  // Ordering edges get recorded on nested acquisition — the expensive path.
  TrackedMutex outer("bench.nested.outer");
  TrackedMutex inner("bench.nested.inner");
  for (auto _ : state) {
    MutexGuard g1(outer);
    MutexGuard g2(inner);
    benchmark::DoNotOptimize(&inner);
  }
}
BENCHMARK(BM_TrackedMutexNested);

// --- C: ownership modes ---

void OwnershipLendLoop(benchmark::State& state, OwnershipMode target) {
  ScopedOwnershipMode mode(target);
  auto cell = Owned<uint64_t>::Make(0);
  for (auto _ : state) {
    auto lend = cell.LendExclusive();
    ++lend.Get();
    benchmark::DoNotOptimize(lend.Get());
  }
}

void BM_OwnershipLend_Checked(benchmark::State& state) {
  OwnershipLendLoop(state, OwnershipMode::kChecked);
}
BENCHMARK(BM_OwnershipLend_Checked);

void BM_OwnershipLend_Recording(benchmark::State& state) {
  OwnershipLendLoop(state, OwnershipMode::kRecording);
}
BENCHMARK(BM_OwnershipLend_Recording);

void BM_OwnershipLend_Unchecked(benchmark::State& state) {
  OwnershipLendLoop(state, OwnershipMode::kUnchecked);
}
BENCHMARK(BM_OwnershipLend_Unchecked);

// --- D: refinement on a live specfs ---

void BM_SpecFsOp(benchmark::State& state, RefinementMode mode) {
  ScopedRefinementMode scoped(mode);
  RamDisk disk(256, 2);
  auto safefs = SafeFs::Format(disk, 64, 16).value();
  SpecFs spec(safefs);
  SKERN_CHECK(spec.Create("/f").ok());
  SKERN_CHECK(spec.Write("/f", 0, Bytes(1024, 0x11)).ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.Read("/f", 0, 1024));
  }
}

void BM_SpecFsRead_Enforcing(benchmark::State& state) {
  BM_SpecFsOp(state, RefinementMode::kEnforcing);
}
BENCHMARK(BM_SpecFsRead_Enforcing);

void BM_SpecFsRead_Disabled(benchmark::State& state) {
  BM_SpecFsOp(state, RefinementMode::kDisabled);
}
BENCHMARK(BM_SpecFsRead_Disabled);

}  // namespace
}  // namespace skern

BENCHMARK_MAIN();
