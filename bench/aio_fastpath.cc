// Async submission/completion plane: batched aio + buffered write-back +
// concurrent journal transactions.
//
// The question, answered with JSON on stdout: what do the PR's three write
// optimizations buy, separately and together, on steady-state 1 KiB
// overwrites of already-open files?
//
//   * base:       path dispatch, synchronous writes (handle accel off,
//                 write-back off) — the pre-handle-plane baseline.
//   * sync:       handle-accelerated synchronous writes (write-back off) —
//                 the PR-5 plane this PR starts from. The gate's denominator.
//   * wb:         handle-accelerated buffered writes (write-back on): each
//                 Pwrite lands in the dirty-inode overlay under the shared
//                 per-inode rwlock, allocation deferred to the drain.
//   * aio:        write-back plus ring batching through an inline AioQueue:
//                 one descriptor resolution and one submit/harvest round
//                 per 32 ops instead of one VFS crossing per op.
//   * aio_engine: the same rings bound to a shared 3-worker AioEngine —
//                 submitters overlap with execution (the io_uring shape).
//
// A separate fsync_mixed cell batches a durability barrier in with every
// 64 writes, exercising group commit + concurrent journal transactions
// under the async plane vs. the synchronous Pwrite+Fsync loop.
//
// Run:  ./build/bench/aio_fastpath [--smoke]
// --smoke shortens the windows for CI and exits non-zero if batched async
// writes stop paying: aio must beat the synchronous accel write path by
// >= 1.5x and the base path plane by >= 3x at 8 threads (noise headroom
// under the committed full-run ratios of >= 2x and >= 5x).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/aio/aio.h"
#include "src/base/bytes.h"
#include "src/base/rng.h"
#include "src/block/block_device.h"
#include "src/fs/safefs/safefs.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/vfs/vfs.h"

using namespace skern;

namespace {

uint64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr uint64_t kDeviceBlocks = 32768;
constexpr uint64_t kInodeCount = 128;
constexpr uint64_t kJournalBlocks = 64;
constexpr int kDepth = 8;    // directory components above each file
constexpr int kFiles = 8;    // one per thread at full width
constexpr uint64_t kFileBytes = 256 * 1024;
constexpr uint64_t kChunk = 1024;  // per-op transfer size
constexpr uint64_t kFileChunks = kFileBytes / kChunk;
constexpr size_t kBatch = 32;        // aio ops per submit/harvest round
constexpr size_t kEngineWorkers = 3; // aio_engine mode worker pool
constexpr uint64_t kFsyncEvery = 64; // fsync_mixed: barrier cadence

struct Bench {
  std::shared_ptr<SafeFs> fs;
  Vfs vfs;
  std::vector<std::string> files;  // deep canonical paths, one per thread
};

// Same topology as bench/io_fastpath: an 8-deep directory chain with kFiles
// 256 KiB files, bodies written and synced so every inode starts clean.
std::unique_ptr<Bench> BuildBench(RamDisk& disk) {
  auto bench = std::make_unique<Bench>();
  auto fs = SafeFs::Format(disk, kInodeCount, kJournalBlocks);
  if (!fs.ok()) {
    std::fprintf(stderr, "format failed\n");
    std::exit(1);
  }
  bench->fs = fs.value();
  if (!bench->vfs.Mount("/", bench->fs).ok()) {
    std::fprintf(stderr, "mount failed\n");
    std::exit(1);
  }
  std::string dir;
  for (int level = 0; level < kDepth; ++level) {
    dir += "/d" + std::to_string(level);
    if (!bench->vfs.Mkdir(dir).ok()) {
      std::fprintf(stderr, "mkdir %s failed\n", dir.c_str());
      std::exit(1);
    }
  }
  Rng rng(4242);
  for (int f = 0; f < kFiles; ++f) {
    std::string path = dir + "/f" + std::to_string(f);
    auto fd = bench->vfs.Open(path, kOpenRead | kOpenWrite | kOpenCreate);
    if (!fd.ok()) {
      std::fprintf(stderr, "create %s failed: %s\n", path.c_str(), ErrnoName(fd.error()));
      std::exit(1);
    }
    for (uint64_t off = 0; off < kFileBytes; off += 64 * 1024) {
      Bytes chunk = rng.NextBytes(64 * 1024);
      if (!bench->vfs.Pwrite(fd.value(), off, ByteView(chunk)).ok()) {
        std::fprintf(stderr, "pwrite %s failed\n", path.c_str());
        std::exit(1);
      }
    }
    if (!bench->vfs.Close(fd.value()).ok() || !bench->fs->Sync().ok()) {
      std::fprintf(stderr, "close/sync %s failed\n", path.c_str());
      std::exit(1);
    }
    bench->files.push_back(std::move(path));
  }
  return bench;
}

enum class Mode { kBase, kSync, kWb, kAio, kAioEngine };

bool UsesAio(Mode m) { return m == Mode::kAio || m == Mode::kAioEngine; }

// Steady-state write ops/sec for one (mode, width) cell. Thread t hammers
// its own file with kChunk random-offset overwrites through its own
// descriptor (and, in the aio modes, its own ring pair). With
// `fsync_every > 0` a durability barrier joins the stream at that cadence —
// batched in-ring for aio, a synchronous Fsync otherwise.
double MeasureWrites(Bench& bench, Mode mode, int threads, int duration_ms,
                     uint64_t fsync_every, AioEngine* engine) {
  bench.vfs.SetHandleAcceleration(mode != Mode::kBase);
  bench.fs->SetWriteBack(mode != Mode::kBase && mode != Mode::kSync);
  std::vector<Fd> fds;
  for (int t = 0; t < threads; ++t) {
    auto fd = bench.vfs.Open(bench.files[t % kFiles], kOpenRead | kOpenWrite);
    if (!fd.ok()) {
      std::fprintf(stderr, "open failed: %s\n", ErrnoName(fd.error()));
      std::exit(1);
    }
    fds.push_back(fd.value());
    // One warm write per descriptor so the fast-write plane starts warm in
    // every mode, mirroring the warm-read convention in io_fastpath.
    Bytes warm(kChunk, 0x5a);
    if (!bench.vfs.Pwrite(fd.value(), 0, ByteView(warm)).ok()) {
      std::fprintf(stderr, "warm write failed\n");
      std::exit(1);
    }
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> go{false};
  std::vector<uint64_t> ops(threads, 0);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(9000 + t);
      Bytes payload = rng.NextBytes(kChunk);
      std::unique_ptr<AioQueue> queue;
      if (UsesAio(mode)) {
        queue = engine != nullptr
                    ? std::make_unique<AioQueue>(bench.vfs, 2 * kBatch, *engine)
                    : std::make_unique<AioQueue>(bench.vfs, 2 * kBatch);
      }
      while (!go.load(std::memory_order_acquire)) {
      }
      uint64_t since_fsync = 0;
      uint64_t local = 0;
      std::vector<AioCompletion> done;
      while (!stop.load(std::memory_order_relaxed)) {
        if (queue != nullptr) {
          size_t staged = 0;
          for (size_t i = 0; i < kBatch; ++i) {
            AioOp op;
            if (fsync_every > 0 && ++since_fsync >= fsync_every) {
              since_fsync = 0;
              op.kind = AioOpKind::kFsync;
            } else {
              op.kind = AioOpKind::kWrite;
              op.offset = rng.NextBelow(kFileChunks) * kChunk;
              // Borrowed payload (registered-buffer idiom): the buffer
              // outlives the batch, which is fully harvested before reuse.
              op.view = ByteView(payload);
            }
            op.fd = fds[t];
            op.user_data = i;
            if (!queue->Enqueue(std::move(op))) {
              break;
            }
            ++staged;
          }
          if (queue->Submit() != staged) {
            std::fprintf(stderr, "submit lost ops\n");
            std::exit(1);
          }
          done.clear();
          if (queue->HarvestBlocking(done, staged) != staged) {
            std::fprintf(stderr, "harvest fell short\n");
            std::exit(1);
          }
          for (const auto& c : done) {
            if (c.error != Errno::kOk) {
              std::fprintf(stderr, "aio op failed: %s\n", ErrnoName(c.error));
              std::exit(1);
            }
          }
          local += staged;
        } else {
          uint64_t offset = rng.NextBelow(kFileChunks) * kChunk;
          Status st;
          if (fsync_every > 0 && ++since_fsync >= fsync_every) {
            since_fsync = 0;
            st = bench.vfs.Fsync(fds[t]);
          } else {
            st = bench.vfs.Pwrite(fds[t], offset, ByteView(payload));
          }
          if (!st.ok()) {
            std::fprintf(stderr, "write failed: %s\n", ErrnoName(st.code()));
            std::exit(1);
          }
          ++local;
        }
      }
      ops[t] = local;
    });
  }
  uint64_t start = NowNs();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  uint64_t elapsed = NowNs() - start;
  for (Fd fd : fds) {
    (void)bench.vfs.Close(fd);
  }
  if (!bench.vfs.SyncAll().ok()) {
    std::fprintf(stderr, "post-write sync failed\n");
    std::exit(1);
  }
  uint64_t total = 0;
  for (uint64_t o : ops) {
    total += o;
  }
  return static_cast<double>(total) * 1e9 / static_cast<double>(elapsed);
}

// Best of `trials`: interference only subtracts throughput, so the max is
// the least-noisy estimate (same convention as the other fastpath benches).
double MeasureBest(Bench& bench, Mode mode, int threads, int duration_ms,
                   int trials, uint64_t fsync_every) {
  double best = 0;
  for (int i = 0; i < trials; ++i) {
    std::unique_ptr<AioEngine> engine;
    if (mode == Mode::kAioEngine) {
      engine = std::make_unique<AioEngine>(kEngineWorkers);
    }
    best = std::max(best, MeasureWrites(bench, mode, threads, duration_ms,
                                        fsync_every, engine.get()));
  }
  return best;
}

struct ModeResults {
  double t1 = 0;
  double t8 = 0;
};

void PrintMode(const char* name, const ModeResults& r, bool trailing_comma) {
  std::printf("    \"%s\": { \"threads1_ops_per_sec\": %.0f, \"threads8_ops_per_sec\": %.0f }%s\n",
              name, r.t1, r.t8, trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // Idle instrumentation: measure the data plane, not counter traffic.
  obs::TraceSession::Get().Stop();
  obs::SetMetricsEnabled(false);
  obs::SetLatencyTimingEnabled(false);
  obs::SetFlightRecorderEnabled(false);

  int duration_ms = smoke ? 60 : 250;
  int trials = smoke ? 1 : 5;

  RamDisk disk(kDeviceBlocks, /*seed=*/42);
  auto bench = BuildBench(disk);

  auto measure = [&](Mode mode, uint64_t fsync_every) {
    ModeResults r;
    r.t1 = MeasureBest(*bench, mode, 1, duration_ms, trials, fsync_every);
    r.t8 = MeasureBest(*bench, mode, kFiles, duration_ms, trials, fsync_every);
    return r;
  };

  ModeResults base = measure(Mode::kBase, 0);
  ModeResults sync = measure(Mode::kSync, 0);
  ModeResults wb = measure(Mode::kWb, 0);
  ModeResults aio = measure(Mode::kAio, 0);
  ModeResults aio_engine = measure(Mode::kAioEngine, 0);
  ModeResults sync_fsync = measure(Mode::kSync, kFsyncEvery);
  ModeResults aio_fsync = measure(Mode::kAio, kFsyncEvery);

  SafeFsIoStats io = bench->fs->io_stats();
  double vs_sync_t8 = sync.t8 <= 0 ? 0 : aio.t8 / sync.t8;
  double vs_base_t8 = base.t8 <= 0 ? 0 : aio.t8 / base.t8;
  double vs_sync_t1 = sync.t1 <= 0 ? 0 : aio.t1 / sync.t1;
  double fsync_vs_sync_t8 = sync_fsync.t8 <= 0 ? 0 : aio_fsync.t8 / sync_fsync.t8;

  std::printf("{\n");
  std::printf("  \"benchmark\": \"aio_fastpath\",\n");
  std::printf("  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::printf("  \"config\": {\n");
  std::printf("    \"files\": %d,\n", kFiles);
  std::printf("    \"file_bytes\": %llu,\n", static_cast<unsigned long long>(kFileBytes));
  std::printf("    \"chunk_bytes\": %llu,\n", static_cast<unsigned long long>(kChunk));
  std::printf("    \"batch_ops\": %llu,\n", static_cast<unsigned long long>(kBatch));
  std::printf("    \"engine_workers\": %llu,\n",
              static_cast<unsigned long long>(kEngineWorkers));
  std::printf("    \"fsync_every\": %llu,\n", static_cast<unsigned long long>(kFsyncEvery));
  std::printf("    \"duration_ms_per_config\": %d\n", duration_ms);
  std::printf("  },\n");
  std::printf("  \"write\": {\n");
  PrintMode("base", base, true);
  PrintMode("sync", sync, true);
  PrintMode("wb", wb, true);
  PrintMode("aio", aio, true);
  PrintMode("aio_engine", aio_engine, false);
  std::printf("  },\n");
  std::printf("  \"fsync_mixed\": {\n");
  PrintMode("sync", sync_fsync, true);
  PrintMode("aio", aio_fsync, false);
  std::printf("  },\n");
  std::printf("  \"speedups\": {\n");
  std::printf("    \"aio_vs_sync_threads1\": %.2f,\n", vs_sync_t1);
  std::printf("    \"aio_vs_sync_threads8\": %.2f,\n", vs_sync_t8);
  std::printf("    \"aio_vs_base_threads8\": %.2f,\n", vs_base_t8);
  std::printf("    \"aio_vs_sync_fsync_mixed_threads8\": %.2f\n", fsync_vs_sync_t8);
  std::printf("  },\n");
  std::printf("  \"io\": {\n");
  std::printf("    \"fast_writes\": %llu,\n", static_cast<unsigned long long>(io.fast_writes));
  std::printf("    \"slow_writes\": %llu,\n", static_cast<unsigned long long>(io.slow_writes));
  std::printf("    \"wb_drains\": %llu,\n", static_cast<unsigned long long>(io.wb_drains));
  std::printf("    \"wb_drained_cells\": %llu\n",
              static_cast<unsigned long long>(io.wb_drained_cells));
  std::printf("  }\n");
  std::printf("}\n");

  if (smoke) {
    // Loud perf-regression gate for CI, with noise headroom under the
    // committed full-run ratios (>= 2x vs sync, >= 5x vs base).
    bool ok = true;
    if (vs_sync_t8 < 1.5) {
      std::fprintf(stderr, "FAIL: batched aio writes %.2fx < 1.5x over sync at 8 threads\n",
                   vs_sync_t8);
      ok = false;
    }
    if (vs_base_t8 < 3.0) {
      std::fprintf(stderr, "FAIL: batched aio writes %.2fx < 3x over base at 8 threads\n",
                   vs_base_t8);
      ok = false;
    }
    if (io.fast_writes == 0) {
      std::fprintf(stderr, "FAIL: the buffered runs never took the fast-write path\n");
      ok = false;
    }
    return ok ? 0 : 1;
  }
  return 0;
}
