// Block-layer fast path: sharded buffer cache + journal group commit.
//
// Two questions, answered with JSON on stdout:
//   1. Does lock striping buy multi-threaded cache-hit throughput? Measures
//      getblk (GetBlock/Release) and read-hit (ReadBlock/Release) ops/sec
//      over a fully cached working set, for 1 vs. 8 shards at 1 vs. 8
//      threads. The shard locks are FIFO ticket locks, so a contended
//      single-shard cache degrades honestly (every handoff is a scheduler
//      event once threads outnumber cores) while striped shards stay mostly
//      uncontended.
//   2. Does group commit cut barriers per logical transaction? Commits the
//      same transaction stream unbatched (Commit per tx, four barriers each)
//      and batched (Submit + one Flush per batch) and reports ns/tx and
//      device flushes per tx from JournalStats.
//
// Run:  ./build/bench/block_fastpath [--smoke]
// --smoke shortens the measurement windows to fit a ~2 second CI budget and
// exits non-zero if striping or batching stops paying off (striped speedup
// < 1.5x at 8 threads, or batched flushes/tx not below unbatched).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/bytes.h"
#include "src/block/block_device.h"
#include "src/block/buffer_cache.h"
#include "src/block/journal.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

using namespace skern;

namespace {

uint64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr uint64_t kWorkingSetBlocks = 1024;
constexpr uint64_t kDeviceBlocks = 4096;

// --- cache-hit throughput ---

enum class HitPath { kGetBlk, kReadHit };

// Spins `threads` workers over a fully cached working set for `duration_ms`
// and returns aggregate ops/sec. Each worker walks the whole set from its
// own offset, so all shards stay hot and threads collide on popular blocks
// exactly as often as the hash spreads them.
double MeasureHitThroughput(size_t shard_hint, int threads, HitPath path,
                            int duration_ms) {
  RamDisk disk(kDeviceBlocks);
  BufferCache cache(disk, /*capacity=*/kWorkingSetBlocks * 2, shard_hint);
  for (uint64_t b = 0; b < kWorkingSetBlocks; ++b) {
    auto r = cache.ReadBlock(b);
    if (!r.ok()) {
      std::fprintf(stderr, "prefill read failed\n");
      std::exit(1);
    }
    cache.Release(r.value());
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> go{false};
  std::vector<uint64_t> ops(threads, 0);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      uint64_t block = (kWorkingSetBlocks / threads) * t;
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (path == HitPath::kGetBlk) {
          BufferHead* bh = cache.GetBlock(block);
          cache.Release(bh);
        } else {
          auto r = cache.ReadBlock(block);
          if (r.ok()) {
            cache.Release(r.value());
          }
        }
        block = (block + 1) % kWorkingSetBlocks;
        ++local;
      }
      ops[t] = local;
    });
  }

  uint64_t start = NowNs();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  uint64_t elapsed = NowNs() - start;

  uint64_t total = 0;
  for (uint64_t o : ops) {
    total += o;
  }
  return static_cast<double>(total) * 1e9 / static_cast<double>(elapsed);
}

struct HitResults {
  double s1_t1 = 0;  // 1 shard, 1 thread
  double s1_t8 = 0;  // 1 shard, 8 threads
  double s8_t1 = 0;  // 8 shards, 1 thread
  double s8_t8 = 0;  // 8 shards, 8 threads
  double Speedup8v1At8Threads() const { return s1_t8 <= 0 ? 0 : s8_t8 / s1_t8; }
};

HitResults MeasureHitPath(HitPath path, int duration_ms) {
  HitResults r;
  r.s1_t1 = MeasureHitThroughput(1, 1, path, duration_ms);
  r.s1_t8 = MeasureHitThroughput(1, 8, path, duration_ms);
  r.s8_t1 = MeasureHitThroughput(8, 1, path, duration_ms);
  r.s8_t8 = MeasureHitThroughput(8, 8, path, duration_ms);
  return r;
}

void PrintHitResults(const char* name, const HitResults& r, bool trailing_comma) {
  std::printf("    \"%s\": {\n", name);
  std::printf("      \"shards1_threads1_ops_per_sec\": %.0f,\n", r.s1_t1);
  std::printf("      \"shards1_threads8_ops_per_sec\": %.0f,\n", r.s1_t8);
  std::printf("      \"shards8_threads1_ops_per_sec\": %.0f,\n", r.s8_t1);
  std::printf("      \"shards8_threads8_ops_per_sec\": %.0f,\n", r.s8_t8);
  std::printf("      \"speedup_8shards_vs_1shard_at_8threads\": %.2f\n",
              r.Speedup8v1At8Threads());
  std::printf("    }%s\n", trailing_comma ? "," : "");
}

// --- journal commit latency / barriers ---

constexpr uint64_t kJournalStart = 0;
constexpr uint64_t kJournalLength = 256;
constexpr uint64_t kHomeBase = 1024;
constexpr int kTxCount = 64;
constexpr int kBlocksPerTx = 4;

struct CommitResults {
  double ns_per_tx = 0;
  uint64_t device_flushes = 0;
  uint64_t batch_commits = 0;
  double FlushesPerTx() const {
    return static_cast<double>(device_flushes) / kTxCount;
  }
};

CommitResults MeasureCommit(bool batched, int repeats) {
  CommitResults best;
  for (int rep = 0; rep < repeats; ++rep) {
    RamDisk disk(kDeviceBlocks);
    Journal journal(disk, kJournalStart, kJournalLength);
    if (!journal.Format().ok()) {
      std::fprintf(stderr, "journal format failed\n");
      std::exit(1);
    }
    Bytes payload(kBlockSize, 0x5a);
    uint64_t start = NowNs();
    for (int i = 0; i < kTxCount; ++i) {
      auto tx = journal.Begin();
      for (int b = 0; b < kBlocksPerTx; ++b) {
        tx.AddBlock(kHomeBase + static_cast<uint64_t>(i) * kBlocksPerTx + b,
                    ByteView(payload));
      }
      Status s = batched ? journal.Submit(std::move(tx))
                         : journal.Commit(std::move(tx));
      if (!s.ok()) {
        std::fprintf(stderr, "commit failed\n");
        std::exit(1);
      }
    }
    if (batched && !journal.Flush().ok()) {
      std::fprintf(stderr, "flush failed\n");
      std::exit(1);
    }
    uint64_t elapsed = NowNs() - start;
    double ns_per_tx = static_cast<double>(elapsed) / kTxCount;
    if (rep == 0 || ns_per_tx < best.ns_per_tx) {
      best.ns_per_tx = ns_per_tx;
      best.device_flushes = journal.stats().device_flushes;
      best.batch_commits = journal.stats().commits;
    }
  }
  return best;
}

void PrintCommitResults(const char* name, const CommitResults& r, bool trailing_comma) {
  std::printf("    \"%s\": {\n", name);
  std::printf("      \"ns_per_tx\": %.0f,\n", r.ns_per_tx);
  std::printf("      \"device_flushes\": %llu,\n",
              static_cast<unsigned long long>(r.device_flushes));
  std::printf("      \"batch_commits\": %llu,\n",
              static_cast<unsigned long long>(r.batch_commits));
  std::printf("      \"flushes_per_tx\": %.2f\n", r.FlushesPerTx());
  std::printf("    }%s\n", trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // Idle instrumentation so both shard configurations measure lock + index
  // cost, not counter traffic.
  obs::TraceSession::Get().Stop();
  obs::SetMetricsEnabled(false);
  obs::SetLatencyTimingEnabled(false);
  obs::SetFlightRecorderEnabled(false);

  int duration_ms = smoke ? 100 : 250;
  int commit_repeats = smoke ? 1 : 3;

  HitResults getblk = MeasureHitPath(HitPath::kGetBlk, duration_ms);
  HitResults readhit = MeasureHitPath(HitPath::kReadHit, duration_ms);
  CommitResults unbatched = MeasureCommit(/*batched=*/false, commit_repeats);
  CommitResults batched = MeasureCommit(/*batched=*/true, commit_repeats);

  std::printf("{\n");
  std::printf("  \"benchmark\": \"block_fastpath\",\n");
  std::printf("  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::printf("  \"cache\": {\n");
  std::printf("    \"working_set_blocks\": %llu,\n",
              static_cast<unsigned long long>(kWorkingSetBlocks));
  std::printf("    \"duration_ms_per_config\": %d,\n", duration_ms);
  PrintHitResults("getblk_hit", getblk, /*trailing_comma=*/true);
  PrintHitResults("read_hit", readhit, /*trailing_comma=*/false);
  std::printf("  },\n");
  std::printf("  \"journal\": {\n");
  std::printf("    \"txs\": %d,\n", kTxCount);
  std::printf("    \"blocks_per_tx\": %d,\n", kBlocksPerTx);
  std::printf("    \"max_batch_txs\": %llu,\n",
              static_cast<unsigned long long>(Journal::kDefaultMaxBatchTxs));
  PrintCommitResults("unbatched", unbatched, /*trailing_comma=*/true);
  PrintCommitResults("batched", batched, /*trailing_comma=*/true);
  std::printf("    \"flush_reduction_factor\": %.1f\n",
              batched.device_flushes == 0
                  ? 0.0
                  : static_cast<double>(unbatched.device_flushes) /
                        static_cast<double>(batched.device_flushes));
  std::printf("  }\n");
  std::printf("}\n");

  if (smoke) {
    // Loud perf-regression gate for CI. The committed full-mode run shows
    // >= 2x; the smoke gate allows noise headroom on shared runners.
    bool ok = true;
    // Both hit paths measure the same striping win; gating on the better of
    // the two keeps single-core scheduler noise from flaking the job while a
    // real regression (which collapses both) still fails.
    double best_speedup =
        std::max(getblk.Speedup8v1At8Threads(), readhit.Speedup8v1At8Threads());
    if (best_speedup < 1.5) {
      std::fprintf(stderr,
                   "FAIL: best 8-shard hit speedup %.2fx < 1.5x at 8 threads "
                   "(getblk %.2fx, read %.2fx)\n",
                   best_speedup, getblk.Speedup8v1At8Threads(),
                   readhit.Speedup8v1At8Threads());
      ok = false;
    }
    if (batched.device_flushes >= unbatched.device_flushes) {
      std::fprintf(stderr,
                   "FAIL: batched flushes (%llu) not below unbatched (%llu)\n",
                   static_cast<unsigned long long>(batched.device_flushes),
                   static_cast<unsigned long long>(unbatched.device_flushes));
      ok = false;
    }
    return ok ? 0 : 1;
  }
  return 0;
}
