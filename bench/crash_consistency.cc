// E13 — what crash safety costs and what it buys: journal commit latency by
// transaction size, recovery latency, sync cost at each rung, plus a
// correctness summary (recovery vs the specification's crash oracle).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "src/base/rng.h"
#include "src/block/block_device.h"
#include "src/block/buffer_cache.h"
#include "src/block/journal.h"
#include "src/fs/legacyfs/legacyfs.h"
#include "src/fs/safefs/safefs.h"
#include "src/fs/specfs/specfs.h"
#include "src/spec/fs_model.h"

namespace skern {
namespace {

void BM_JournalCommit(benchmark::State& state) {
  int64_t blocks = state.range(0);
  RamDisk disk(1024, 1);
  Journal journal(disk, 512, 512);
  SKERN_CHECK(journal.Format().ok());
  Bytes content(kBlockSize, 0x61);
  for (auto _ : state) {
    auto tx = journal.Begin();
    for (int64_t b = 0; b < blocks; ++b) {
      tx.AddBlock(static_cast<uint64_t>(b), ByteView(content));
    }
    benchmark::DoNotOptimize(journal.Commit(std::move(tx)));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * blocks * kBlockSize);
}
BENCHMARK(BM_JournalCommit)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_JournalRecovery(benchmark::State& state) {
  int64_t blocks = state.range(0);
  Bytes content(kBlockSize, 0x62);
  for (auto _ : state) {
    state.PauseTiming();
    RamDisk disk(1024, 2);
    {
      Journal journal(disk, 512, 512);
      SKERN_CHECK(journal.Format().ok());
      auto tx = journal.Begin();
      for (int64_t b = 0; b < blocks; ++b) {
        tx.AddBlock(static_cast<uint64_t>(b), ByteView(content));
      }
      // Crash right after the commit record: recovery must replay everything.
      disk.ScheduleCrashAfterWrites(static_cast<uint64_t>(blocks) + 3,
                                    CrashPersistence::kLoseAll);
      (void)journal.Commit(std::move(tx));
    }
    Journal recovered(disk, 512, 512);
    state.ResumeTiming();
    benchmark::DoNotOptimize(recovered.Recover());
  }
}
BENCHMARK(BM_JournalRecovery)->Arg(4)->Arg(64)->Arg(256);

// Sync cost after a burst of dirty ops, per rung.
void BenchBurstSync(benchmark::State& state, const std::string& kind) {
  for (auto _ : state) {
    state.PauseTiming();
    auto disk = std::make_unique<RamDisk>(1024, 3);
    std::unique_ptr<BufferCache> cache;
    std::shared_ptr<FileSystem> fs;
    if (kind == "legacyfs") {
      cache = std::make_unique<BufferCache>(*disk, 512);
      FsGeometry geo = MakeGeometry(1024, 128, 0);
      fs = MakeLegacyFs(*cache, &geo, true);
    } else {
      fs = SafeFs::Format(*disk, 128, 64).value();
    }
    for (int i = 0; i < 16; ++i) {
      SKERN_CHECK(fs->Create("/f" + std::to_string(i)).ok());
      SKERN_CHECK(fs->Write("/f" + std::to_string(i), 0, Bytes(4096, 0x11)).ok());
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(fs->Sync());
  }
}

}  // namespace
}  // namespace skern

int main(int argc, char** argv) {
  using namespace skern;

  // Correctness summary first: the thing the cost buys.
  {
    int safe_ok = 0;
    int legacy_ok = 0;
    constexpr int kTrials = 40;
    for (int trial = 0; trial < kTrials; ++trial) {
      for (bool journaled : {true, false}) {
        RamDisk disk(256, trial);
        std::unique_ptr<BufferCache> cache;
        std::shared_ptr<FileSystem> fs;
        if (journaled) {
          fs = SafeFs::Format(disk, 64, 32).value();
        } else {
          cache = std::make_unique<BufferCache>(disk, 128);
          FsGeometry geo = MakeGeometry(256, 64, 0);
          fs = MakeLegacyFs(*cache, &geo, true);
        }
        FsModel model;
        Rng rng(trial * 7 + 1);
        disk.ScheduleCrashAfterWrites(5 + rng.NextBelow(60),
                                      CrashPersistence::kRandomSubset, true);
        FsModel entering = model;
        bool crashed = false;
        for (int op = 0; op < 500 && !crashed; ++op) {
          std::string path = "/f" + std::to_string(rng.NextBelow(4));
          switch (rng.NextBelow(3)) {
            case 0:
              if (fs->Create(path).ok()) {
                (void)model.Create(path);
              }
              break;
            case 1: {
              Bytes data = rng.NextBytes(200);
              uint64_t offset = rng.NextBelow(1024);
              if (fs->Write(path, offset, ByteView(data)).ok()) {
                (void)model.Write(path, offset, ByteView(data));
              }
              break;
            }
            case 2: {
              entering = model;
              if (fs->Sync().ok()) {
                model.Sync();
              } else {
                crashed = true;
              }
              break;
            }
          }
        }
        if (!crashed) {
          continue;
        }
        model.Crash();
        entering.Sync();
        entering.Crash();
        fs.reset();
        cache.reset();
        bool consistent = false;
        if (journaled) {
          auto remounted = SafeFs::Mount(disk);
          consistent = remounted.ok() &&
                       (DiffFsAgainstModel(*remounted.value(), model.state()).empty() ||
                        DiffFsAgainstModel(*remounted.value(), entering.state()).empty());
          safe_ok += consistent ? 1 : 0;
        } else {
          BufferCache cache2(disk, 128);
          auto remounted = MakeLegacyFs(cache2, nullptr, false);
          consistent = remounted != nullptr &&
                       (DiffFsAgainstModel(*remounted, model.state()).empty() ||
                        DiffFsAgainstModel(*remounted, entering.state()).empty());
          legacy_ok += consistent ? 1 : 0;
        }
      }
    }
    std::printf("E13 correctness: crash-oracle-consistent recoveries out of %d crashes:\n",
                kTrials);
    std::printf("  safefs (journaled):  %d\n  legacyfs (no journal): %d\n\n", safe_ok,
                legacy_ok);
  }

  benchmark::Initialize(&argc, argv);
  for (const char* kind : {"legacyfs", "safefs"}) {
    std::string k = kind;
    benchmark::RegisterBenchmark(("BM_BurstSync/" + k).c_str(),
                                 [k](benchmark::State& s) { BenchBurstSync(s, k); });
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
