// E11 — the roadmap's payoff, measured: each §2 bug class injected at each
// rung of the ladder. Memory/type rows flip to PREVENTED/DETECTED at rungs
// 2-3, semantic rows at rung 4, numeric errors never — mirroring 42/35/23.
#include <cstdio>

#include "src/cve/corpus.h"
#include "src/faultinject/harness.h"

int main() {
  using namespace skern;
  FaultInjectionHarness harness(42);
  auto results = harness.RunAll();
  std::printf("E11 / fault-injection matrix\n\n%s\n",
              FaultInjectionHarness::RenderMatrix(results).c_str());

  auto params = DefaultCorpusParams();
  std::printf("share of the CVE corpus whose class is stopped at or below each rung:\n");
  for (int level = 0; level < kSafetyLevelCount; ++level) {
    auto l = static_cast<SafetyLevel>(level);
    double fraction =
        FaultInjectionHarness::PreventedCorpusFraction(results, l, params.cwe_mix);
    std::printf("  %-15s %5.1f%%\n", SafetyLevelName(l), fraction * 100.0);
  }
  std::printf("\n(paper: 42%% at type+ownership, 77%% cumulative with functional\n"
              " correctness, 23%% out of reach — numeric errors and design flaws)\n\n");
  std::printf("details:\n");
  for (const auto& result : results) {
    if (result.outcome == InjectionOutcome::kDetected ||
        (result.level == SafetyLevel::kUnsafe && !result.note.empty())) {
      std::printf("  [%-14s] %-34s %s\n", SafetyLevelName(result.level),
                  BugClassName(result.bug), result.note.c_str());
    }
  }
  return 0;
}
