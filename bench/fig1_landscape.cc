// E1 — Figure 1: systems by lines of code vs. safety guarantee, plus this
// repository's own per-rung inventory (the "Safe Linux incremental progress"
// series rendered as data).
#include <cstdio>

#include "src/core/landscape.h"
#include "src/core/module.h"

int main() {
  using namespace skern;
  RegisterBuiltinModules();
  std::printf("E1 / Figure 1 — the vision landscape\n\n%s\n",
              RenderLandscapeTable().c_str());
  auto& registry = ModuleRegistry::Get();
  std::printf("incremental progress within skern (share of module LoC at or above rung):\n");
  for (int level = 1; level < kSafetyLevelCount; ++level) {
    auto l = static_cast<SafetyLevel>(level);
    std::printf("  >= %-15s %5.1f%%\n", SafetyLevelName(l),
                registry.FractionAtOrAbove(l) * 100.0);
  }
  return 0;
}
