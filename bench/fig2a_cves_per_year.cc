// E2 — Figure 2a: new Linux CVEs reported per year, from the calibrated
// synthetic corpus. Expected shape: tens per year through the 2000s, low
// hundreds in the 2010s, the 2017 spike.
#include <cstdio>

#include "src/cve/analysis.h"
#include "src/cve/corpus.h"

int main() {
  using namespace skern;
  auto corpus = CveCorpus::Generate(DefaultCorpusParams(), 42);
  auto per_year = NewCvesPerYear(corpus);
  std::printf("E2 / Figure 2a (synthetic corpus, %zu records)\n\n%s",
              corpus.records().size(), RenderCvesPerYear(per_year).c_str());
  uint64_t since_2010 = 0;
  for (const auto& [year, count] : per_year) {
    if (year >= 2010) {
      since_2010 += count;
    }
  }
  std::printf("\nCVEs since 2010: %llu (paper examined 1475)\n",
              static_cast<unsigned long long>(since_2010));
  return 0;
}
