// E3 — Figure 2b: CDF of when ext4 CVEs were reported relative to ext4's
// initial release. The paper's finding: 50% of ext4 CVEs were found after
// 7+ years of use — mature code keeps yielding vulnerabilities.
#include <cstdio>

#include "src/cve/analysis.h"
#include "src/cve/corpus.h"

int main() {
  using namespace skern;
  auto corpus = CveCorpus::Generate(DefaultCorpusParams(), 42);
  auto cdf = ReportLatencyCdf(corpus, "ext4");
  std::printf("E3 / Figure 2b\n\n%s", RenderLatencyCdf(cdf, "ext4").c_str());
  std::printf("\nmedian report latency: %.1f years  (paper: >= 7 years)\n",
              MedianReportLatency(corpus, "ext4"));
  // Other file systems "share a similar trend":
  for (const char* fs : {"btrfs", "fs-other"}) {
    std::printf("%-10s median: %.1f years\n", fs, MedianReportLatency(corpus, fs));
  }
  return 0;
}
