// E4 — Figure 2c: bug patches per line of code per year for overlayfs, ext4,
// and btrfs since each file system's initial release. Expected shape: early
// spike decaying to a ~0.5%/LoC/year plateau that persists past 10 years.
#include <cstdio>

#include "src/cve/analysis.h"
#include "src/cve/corpus.h"

int main() {
  using namespace skern;
  std::printf("E4 / Figure 2c\n\n%s",
              RenderBugSeries(DefaultBugSeriesProfiles(), 2020, 42).c_str());
  // The plateau check the paper states in prose.
  for (const auto& profile : DefaultBugSeriesProfiles()) {
    auto series = GenerateBugSeries(profile, 2020, 42);
    double sum = 0;
    int n = 0;
    for (const auto& point : series) {
      if (point.age_years >= 8) {
        sum += point.bugs_per_loc();
        ++n;
      }
    }
    if (n > 0) {
      std::printf("%-10s mature-age rate: %.2f%%/LoC/year (paper: ~0.5%%)\n",
                  profile.fs.c_str(), sum / n * 100.0);
    }
  }
  return 0;
}
