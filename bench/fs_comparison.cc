// E9 — file-system operations at each rung of the ladder: legacyfs (unsafe,
// buffer-cached), safefs (typed + ownership-safe + journaled), specfs with
// refinement checking on, and specfs with checking disabled (the shipped
// configuration — "verification is a compile-time check").
//
// Expected shape (the Bento/RedLeaf/Theseus argument): safefs within a small
// factor of legacyfs; the refinement-checked configuration pays for running
// the model; the disabled configuration returns to safefs cost.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/block/block_device.h"
#include "src/block/buffer_cache.h"
#include "src/fs/legacyfs/legacyfs.h"
#include "src/fs/memfs/memfs.h"
#include "src/fs/safefs/safefs.h"
#include "src/fs/specfs/specfs.h"
#include "src/spec/refinement.h"

namespace skern {
namespace {

constexpr uint64_t kDiskBlocks = 1024;
constexpr uint64_t kInodes = 128;

struct Stack {
  std::unique_ptr<RamDisk> disk;
  std::unique_ptr<BufferCache> cache;  // legacy only
  std::shared_ptr<FileSystem> fs;
  RefinementMode refinement = RefinementMode::kEnforcing;
};

Stack MakeStack(const std::string& kind) {
  Stack stack;
  stack.disk = std::make_unique<RamDisk>(kDiskBlocks, 1);
  if (kind == "legacyfs") {
    stack.cache = std::make_unique<BufferCache>(*stack.disk, 512);
    FsGeometry geo = MakeGeometry(kDiskBlocks, kInodes, 0);
    stack.fs = MakeLegacyFs(*stack.cache, &geo, true);
  } else if (kind == "memfs") {
    // The specification executed directly: the in-memory upper bound.
    stack.fs = std::make_shared<MemFs>();
  } else {
    auto safefs = SafeFs::Format(*stack.disk, kInodes, 64).value();
    if (kind == "safefs") {
      stack.fs = safefs;
    } else {
      stack.fs = std::make_shared<SpecFs>(safefs);
      stack.refinement =
          kind == "specfs-checked" ? RefinementMode::kEnforcing : RefinementMode::kDisabled;
    }
  }
  return stack;
}

void BenchCreateUnlink(benchmark::State& state, const std::string& kind) {
  Stack stack = MakeStack(kind);
  ScopedRefinementMode mode(stack.refinement);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.fs->Create("/f"));
    benchmark::DoNotOptimize(stack.fs->Unlink("/f"));
  }
}

void BenchWrite4K(benchmark::State& state, const std::string& kind) {
  Stack stack = MakeStack(kind);
  ScopedRefinementMode mode(stack.refinement);
  SKERN_CHECK(stack.fs->Create("/f").ok());
  Bytes block(4096, 0x77);
  uint64_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.fs->Write("/f", offset % (16 * 4096), ByteView(block)));
    offset += 4096;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}

void BenchRead4K(benchmark::State& state, const std::string& kind) {
  Stack stack = MakeStack(kind);
  ScopedRefinementMode mode(stack.refinement);
  SKERN_CHECK(stack.fs->Create("/f").ok());
  SKERN_CHECK(stack.fs->Write("/f", 0, Bytes(16 * 4096, 0x42)).ok());
  uint64_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.fs->Read("/f", offset % (16 * 4096), 4096));
    offset += 4096;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}

void BenchRename(benchmark::State& state, const std::string& kind) {
  Stack stack = MakeStack(kind);
  ScopedRefinementMode mode(stack.refinement);
  SKERN_CHECK(stack.fs->Create("/a").ok());
  bool flip = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flip ? stack.fs->Rename("/b", "/a")
                                  : stack.fs->Rename("/a", "/b"));
    flip = !flip;
  }
}

void BenchStat(benchmark::State& state, const std::string& kind) {
  Stack stack = MakeStack(kind);
  ScopedRefinementMode mode(stack.refinement);
  SKERN_CHECK(stack.fs->Create("/f").ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.fs->Stat("/f"));
  }
}

void BenchFsyncSmallWrite(benchmark::State& state, const std::string& kind) {
  Stack stack = MakeStack(kind);
  ScopedRefinementMode mode(stack.refinement);
  SKERN_CHECK(stack.fs->Create("/f").ok());
  Bytes data(512, 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.fs->Write("/f", 0, ByteView(data)));
    benchmark::DoNotOptimize(stack.fs->Fsync("/f"));
  }
}

void RegisterAll() {
  const char* kinds[] = {"legacyfs", "safefs", "specfs-checked", "specfs-release", "memfs"};
  for (const char* kind : kinds) {
    std::string k = kind;
    benchmark::RegisterBenchmark(("BM_CreateUnlink/" + k).c_str(),
                                 [k](benchmark::State& s) { BenchCreateUnlink(s, k); });
    benchmark::RegisterBenchmark(("BM_Write4K/" + k).c_str(),
                                 [k](benchmark::State& s) { BenchWrite4K(s, k); });
    benchmark::RegisterBenchmark(("BM_Read4K/" + k).c_str(),
                                 [k](benchmark::State& s) { BenchRead4K(s, k); });
    benchmark::RegisterBenchmark(("BM_Rename/" + k).c_str(),
                                 [k](benchmark::State& s) { BenchRename(s, k); });
    benchmark::RegisterBenchmark(("BM_Stat/" + k).c_str(),
                                 [k](benchmark::State& s) { BenchStat(s, k); });
    benchmark::RegisterBenchmark(("BM_WriteFsync/" + k).c_str(),
                                 [k](benchmark::State& s) { BenchFsyncSmallWrite(s, k); });
  }
}

}  // namespace
}  // namespace skern

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  skern::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
