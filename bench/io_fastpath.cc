// File data-plane fast path: inode-handle I/O + per-inode locking +
// block-map cache + read-ahead.
//
// The question, answered with JSON on stdout: what does handle-based
// descriptor I/O (Vfs::SetHandleAcceleration, SafeFs's ReadAt/WriteAt fast
// path) buy over the path-dispatch baseline on the workload it was built
// for — steady-state reads and writes of already-open files? The baseline
// re-walks an 8-component path and takes the filesystem-wide lock for every
// chunk; the accelerated plane resolves once at open, then serves warm
// reads under a shared per-inode rwlock from the sharded read cache.
//
//   * seq_read / rand_read: warm 1 KiB reads through open descriptors,
//     acceleration on vs. off, at 1 thread (one file) and 8 threads (eight
//     256 KiB files, aggregate).
//   * seq_write / rand_write: 1 KiB overwrites through the same
//     descriptors. Writes stay on the global-lock slow path in both modes
//     (journaled staging needs it); the delta isolates what skipping the
//     per-op path walk is worth.
//
// Run:  ./build/bench/io_fastpath [--smoke]
// --smoke shortens the measurement windows to fit a CI budget and exits
// non-zero if acceleration stops paying for itself (warm seq read speedup
// < 1.5x at 1 thread or < 2.5x aggregate at 8 threads). The committed
// full-mode run shows >= 2x at 1 thread and >= 4x at 8 threads.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/rng.h"
#include "src/block/block_device.h"
#include "src/fs/safefs/safefs.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/vfs/vfs.h"

using namespace skern;

namespace {

uint64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr uint64_t kDeviceBlocks = 8192;
constexpr uint64_t kInodeCount = 128;
constexpr uint64_t kJournalBlocks = 64;
constexpr int kDepth = 8;             // directory components above each file
constexpr int kFiles = 8;             // one per thread at full width
// 256 KiB per file keeps the 8-file working set inside the last-level cache
// so the numbers isolate per-op dispatch cost (path walk + global lock vs.
// handle lookup + per-inode rwlock), not memcpy bandwidth. 1 KiB ops for the
// same reason: the small-read regime is where dispatch overhead dominates.
constexpr uint64_t kFileBytes = 256 * 1024;
constexpr uint64_t kChunk = 1024;     // per-op transfer size
constexpr uint64_t kFileChunks = kFileBytes / kChunk;

struct Bench {
  std::shared_ptr<SafeFs> fs;
  Vfs vfs;
  std::vector<std::string> files;  // deep canonical paths, one per thread
};

// Builds the 8-deep directory chain with kFiles 256 KiB files at the bottom,
// so the path-dispatch baseline pays a real resolution per op. The file
// bodies are written through descriptors and synced, leaving every inode
// clean (fast-read eligible) at measurement start.
std::unique_ptr<Bench> BuildBench(RamDisk& disk) {
  auto bench = std::make_unique<Bench>();
  auto fs = SafeFs::Format(disk, kInodeCount, kJournalBlocks);
  if (!fs.ok()) {
    std::fprintf(stderr, "format failed\n");
    std::exit(1);
  }
  bench->fs = fs.value();
  if (!bench->vfs.Mount("/", bench->fs).ok()) {
    std::fprintf(stderr, "mount failed\n");
    std::exit(1);
  }
  std::string dir;
  for (int level = 0; level < kDepth; ++level) {
    dir += "/d" + std::to_string(level);
    if (!bench->vfs.Mkdir(dir).ok()) {
      std::fprintf(stderr, "mkdir %s failed\n", dir.c_str());
      std::exit(1);
    }
  }
  Rng rng(4242);
  for (int f = 0; f < kFiles; ++f) {
    std::string path = dir + "/f" + std::to_string(f);
    auto fd = bench->vfs.Open(path, kOpenRead | kOpenWrite | kOpenCreate);
    if (!fd.ok()) {
      std::fprintf(stderr, "create %s failed: %s\n", path.c_str(), ErrnoName(fd.error()));
      std::exit(1);
    }
    for (uint64_t off = 0; off < kFileBytes; off += 64 * 1024) {
      Bytes chunk = rng.NextBytes(64 * 1024);
      if (!bench->vfs.Pwrite(fd.value(), off, ByteView(chunk)).ok()) {
        std::fprintf(stderr, "pwrite %s failed\n", path.c_str());
        std::exit(1);
      }
    }
    if (!bench->vfs.Close(fd.value()).ok() || !bench->fs->Sync().ok()) {
      std::fprintf(stderr, "close/sync %s failed\n", path.c_str());
      std::exit(1);
    }
    bench->files.push_back(std::move(path));
  }
  return bench;
}

enum class IoOp { kSeqRead, kRandRead, kSeqWrite, kRandWrite };

bool IsRead(IoOp op) { return op == IoOp::kSeqRead || op == IoOp::kRandRead; }

// Steady-state ops/sec for one (mode, op, width) cell. Thread t hammers its
// own file through its own descriptor — kChunk-sized ops, sequential
// wrap-around or uniform random. Reads run against clean, pre-warmed inodes
// (one full sweep per descriptor before the clock starts); writes leave the
// files dirty, so the cell syncs on the way out.
double MeasureThroughput(Bench& bench, bool accel, IoOp op, int threads,
                         int duration_ms) {
  bench.vfs.SetHandleAcceleration(accel);
  std::vector<Fd> fds;
  for (int t = 0; t < threads; ++t) {
    auto fd = bench.vfs.Open(bench.files[t % kFiles], kOpenRead | kOpenWrite);
    if (!fd.ok()) {
      std::fprintf(stderr, "open failed: %s\n", ErrnoName(fd.error()));
      std::exit(1);
    }
    fds.push_back(fd.value());
  }
  if (IsRead(op)) {
    if (!bench.vfs.SyncAll().ok()) {
      std::fprintf(stderr, "pre-read sync failed\n");
      std::exit(1);
    }
    for (Fd fd : fds) {
      for (uint64_t off = 0; off < kFileBytes; off += kChunk) {
        auto chunk = bench.vfs.Pread(fd, off, kChunk);
        if (!chunk.ok() || chunk->size() != kChunk) {
          std::fprintf(stderr, "warmup read failed\n");
          std::exit(1);
        }
      }
    }
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> go{false};
  std::vector<uint64_t> ops(threads, 0);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(9000 + t);
      Bytes payload = rng.NextBytes(kChunk);
      while (!go.load(std::memory_order_acquire)) {
      }
      uint64_t i = 0;
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t index = (op == IoOp::kSeqRead || op == IoOp::kSeqWrite)
                             ? i % kFileChunks
                             : rng.NextBelow(kFileChunks);
        uint64_t offset = index * kChunk;
        if (IsRead(op)) {
          auto chunk = bench.vfs.Pread(fds[t], offset, kChunk);
          if (!chunk.ok() || chunk->size() != kChunk) {
            std::fprintf(stderr, "read failed\n");
            std::exit(1);
          }
        } else {
          if (!bench.vfs.Pwrite(fds[t], offset, ByteView(payload)).ok()) {
            std::fprintf(stderr, "write failed\n");
            std::exit(1);
          }
        }
        ++i;
        ++local;
      }
      ops[t] = local;
    });
  }
  uint64_t start = NowNs();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  uint64_t elapsed = NowNs() - start;
  for (Fd fd : fds) {
    (void)bench.vfs.Close(fd);
  }
  if (!IsRead(op) && !bench.vfs.SyncAll().ok()) {
    std::fprintf(stderr, "post-write sync failed\n");
    std::exit(1);
  }
  uint64_t total = 0;
  for (uint64_t o : ops) {
    total += o;
  }
  return static_cast<double>(total) * 1e9 / static_cast<double>(elapsed);
}

struct CellResults {
  double accel_t1 = 0;
  double accel_t8 = 0;
  double base_t1 = 0;
  double base_t8 = 0;
  double SpeedupT1() const { return base_t1 <= 0 ? 0 : accel_t1 / base_t1; }
  double SpeedupT8() const { return base_t8 <= 0 ? 0 : accel_t8 / base_t8; }
};

// Best of `trials` runs per cell: on an oversubscribed host, scheduler
// interference only ever subtracts throughput, so the max is the least-noisy
// estimate of what each configuration can actually sustain.
double MeasureBest(Bench& bench, bool accel, IoOp op, int threads, int duration_ms,
                   int trials) {
  double best = 0;
  for (int i = 0; i < trials; ++i) {
    best = std::max(best, MeasureThroughput(bench, accel, op, threads, duration_ms));
  }
  return best;
}

CellResults MeasureCell(Bench& bench, IoOp op, int duration_ms, int trials) {
  CellResults r;
  r.accel_t1 = MeasureBest(bench, true, op, 1, duration_ms, trials);
  r.accel_t8 = MeasureBest(bench, true, op, kFiles, duration_ms, trials);
  r.base_t1 = MeasureBest(bench, false, op, 1, duration_ms, trials);
  r.base_t8 = MeasureBest(bench, false, op, kFiles, duration_ms, trials);
  return r;
}

void PrintCell(const char* name, const CellResults& r, bool trailing_comma) {
  std::printf("  \"%s\": {\n", name);
  std::printf("    \"accel_threads1_ops_per_sec\": %.0f,\n", r.accel_t1);
  std::printf("    \"accel_threads8_ops_per_sec\": %.0f,\n", r.accel_t8);
  std::printf("    \"base_threads1_ops_per_sec\": %.0f,\n", r.base_t1);
  std::printf("    \"base_threads8_ops_per_sec\": %.0f,\n", r.base_t8);
  std::printf("    \"speedup_threads1\": %.2f,\n", r.SpeedupT1());
  std::printf("    \"speedup_threads8\": %.2f\n", r.SpeedupT8());
  std::printf("  }%s\n", trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // Idle instrumentation: measure the data plane, not counter traffic. The
  // JSON's counter section below reads SafeFs's always-on internal tallies.
  obs::TraceSession::Get().Stop();
  obs::SetMetricsEnabled(false);
  obs::SetLatencyTimingEnabled(false);
  obs::SetFlightRecorderEnabled(false);

  int duration_ms = smoke ? 60 : 250;
  int trials = smoke ? 1 : 5;

  RamDisk disk(kDeviceBlocks, /*seed=*/42);
  auto bench = BuildBench(disk);

  CellResults seq_read = MeasureCell(*bench, IoOp::kSeqRead, duration_ms, trials);
  CellResults rand_read = MeasureCell(*bench, IoOp::kRandRead, duration_ms, trials);
  CellResults seq_write = MeasureCell(*bench, IoOp::kSeqWrite, duration_ms, trials);
  CellResults rand_write = MeasureCell(*bench, IoOp::kRandWrite, duration_ms, trials);

  SafeFsIoStats io = bench->fs->io_stats();

  std::printf("{\n");
  std::printf("  \"benchmark\": \"io_fastpath\",\n");
  std::printf("  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::printf("  \"config\": {\n");
  std::printf("    \"files\": %d,\n", kFiles);
  std::printf("    \"file_bytes\": %llu,\n", static_cast<unsigned long long>(kFileBytes));
  std::printf("    \"chunk_bytes\": %llu,\n", static_cast<unsigned long long>(kChunk));
  std::printf("    \"dir_depth\": %d,\n", kDepth);
  std::printf("    \"duration_ms_per_config\": %d\n", duration_ms);
  std::printf("  },\n");
  PrintCell("seq_read", seq_read, /*trailing_comma=*/true);
  PrintCell("rand_read", rand_read, /*trailing_comma=*/true);
  PrintCell("seq_write", seq_write, /*trailing_comma=*/true);
  PrintCell("rand_write", rand_write, /*trailing_comma=*/true);
  std::printf("  \"io\": {\n");
  std::printf("    \"fast_reads\": %llu,\n", static_cast<unsigned long long>(io.fast_reads));
  std::printf("    \"slow_reads\": %llu,\n", static_cast<unsigned long long>(io.slow_reads));
  std::printf("    \"readahead_issued\": %llu,\n",
              static_cast<unsigned long long>(io.readahead_issued));
  std::printf("    \"readahead_hits\": %llu,\n",
              static_cast<unsigned long long>(io.readahead_hits));
  std::printf("    \"blockmap_hits\": %llu,\n",
              static_cast<unsigned long long>(io.blockmap_hits));
  std::printf("    \"blockmap_misses\": %llu,\n",
              static_cast<unsigned long long>(io.blockmap_misses));
  std::printf("    \"inode_lock_contended\": %llu\n",
              static_cast<unsigned long long>(io.inode_lock_contended));
  std::printf("  }\n");
  std::printf("}\n");

  if (smoke) {
    // Loud perf-regression gate for CI, with noise headroom under the
    // committed full-run ratios.
    bool ok = true;
    if (seq_read.SpeedupT1() < 1.5) {
      std::fprintf(stderr, "FAIL: warm seq read speedup %.2fx < 1.5x at 1 thread\n",
                   seq_read.SpeedupT1());
      ok = false;
    }
    if (seq_read.SpeedupT8() < 2.5) {
      std::fprintf(stderr, "FAIL: warm seq read speedup %.2fx < 2.5x at 8 threads\n",
                   seq_read.SpeedupT8());
      ok = false;
    }
    if (io.fast_reads == 0) {
      std::fprintf(stderr, "FAIL: the accelerated runs never took the fast path\n");
      ok = false;
    }
    return ok ? 0 : 1;
  }
  return 0;
}
