// Memory fast path: slab/magazine caches vs. the global heap.
//
// Three questions, answered with JSON on stdout:
//   1. What does the magazine layer buy on raw object churn? Burst
//      alloc/free (depth 32) of 256 B named-cache objects and 4 KiB
//      size-class buffers, at 1 and 8 threads, slab vs. global heap
//      (SetSlabAllocation(false) sends the identical call sites to
//      ::operator new). Burst depth 32 is deliberate: it overflows glibc's
//      per-thread tcache (7 entries per bin, nothing above ~1 KiB), so the
//      heap baseline pays the arena locks that real kernel object storms
//      pay, while the slab path stays in per-thread magazines.
//   2. Do the wins survive cross-thread free? A producer/consumer pair
//      migrates every object between threads — the pattern of any queue
//      hand-off (completion rings, readiness events) and the worst case for
//      arena-based heaps (remote frees take the owning arena's lock).
//   3. What do the converted hot objects see end to end? BufferHead churn
//      (handle on its named cache + 4 KiB payload through the Bytes bridge)
//      and net BufChain segment churn (allocate_shared control+payload on
//      "net.seg" + payload bytes), slab vs. heap.
//
// Run:  ./build/bench/mem_fastpath [--smoke]
// --smoke shortens the windows to a ~2 s CI budget and exits non-zero if
// the aggregate 8-thread alloc/free speedup for slab-cached hot objects
// drops below 3x vs. the global heap.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/bytes.h"
#include "src/block/buffer_head.h"
#include "src/mem/slab.h"
#include "src/net/buf_chain.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

using namespace skern;

namespace {

uint64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int kBurstDepth = 32;
constexpr size_t kSmallObj = 256;
constexpr size_t kPageObj = 4096;

// One alloc+free pair counts as one op. Every workload returns aggregate
// ops/sec across `threads` workers over `duration_ms`.
template <typename WorkerFn>
double MeasureOpsPerSec(int threads, int duration_ms, WorkerFn&& worker) {
  std::atomic<bool> stop{false};
  std::atomic<bool> go{false};
  std::vector<uint64_t> ops(threads, 0);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      ops[t] = worker(stop);
      // Thread-cached magazines return to the depot before the thread
      // exits (TLS owner drains), so runs don't skew each other.
    });
  }
  uint64_t start = NowNs();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  uint64_t elapsed = NowNs() - start;
  uint64_t total = 0;
  for (uint64_t o : ops) {
    total += o;
  }
  return static_cast<double>(total) * 1e9 / static_cast<double>(elapsed);
}

// --- raw burst churn ---

double MeasureNamedBurst(bool slab, int threads, int duration_ms) {
  mem::SetSlabAllocation(slab);
  mem::SlabCache& cache = mem::NamedCache("bench.obj256", kSmallObj);
  double r = MeasureOpsPerSec(threads, duration_ms, [&](std::atomic<bool>& stop) {
    void* burst[kBurstDepth];
    uint64_t local = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < kBurstDepth; ++i) {
        burst[i] = cache.Alloc();
        // Touch the head of the object so the measurement includes the
        // first cache-line fill a real construct pays.
        *static_cast<uint64_t*>(burst[i]) = local;
      }
      for (int i = 0; i < kBurstDepth; ++i) {
        mem::RouteFree(burst[i], kSmallObj);
      }
      local += kBurstDepth;
    }
    return local;
  });
  mem::SetSlabAllocation(true);
  return r;
}

double MeasureSizeClassBurst(bool slab, int threads, int duration_ms) {
  mem::SetSlabAllocation(slab);
  double r = MeasureOpsPerSec(threads, duration_ms, [&](std::atomic<bool>& stop) {
    void* burst[kBurstDepth];
    uint64_t local = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < kBurstDepth; ++i) {
        burst[i] = mem::SizedAlloc(kPageObj);
        *static_cast<uint64_t*>(burst[i]) = local;
      }
      for (int i = 0; i < kBurstDepth; ++i) {
        mem::SizedFree(burst[i], kPageObj);
      }
      local += kBurstDepth;
    }
    return local;
  });
  mem::SetSlabAllocation(true);
  return r;
}

// --- cross-thread hand-off ---

// Two batch buffers ping-pong between one producer (allocates a full batch)
// and one consumer (frees it): every object is freed on a different thread
// than allocated it, and the hand-off amortizes over kBatch objects so the
// measurement tracks remote-free cost, not flag traffic. The waits yield —
// this must also measure honestly with more workers than cores.
double MeasureCrossThread(bool slab, int duration_ms) {
  mem::SetSlabAllocation(slab);
  mem::SlabCache& cache = mem::NamedCache("bench.xfer256", kSmallObj);
  constexpr size_t kBatch = 1024;
  struct Buffer {
    std::atomic<bool> full{false};
    void* objs[kBatch];
  };
  Buffer buffers[2];
  std::atomic<bool> stop{false};
  uint64_t freed = 0;

  std::thread producer([&] {
    size_t which = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Buffer& b = buffers[which];
      if (b.full.load(std::memory_order_acquire)) {
        std::this_thread::yield();
        continue;
      }
      for (size_t i = 0; i < kBatch; ++i) {
        b.objs[i] = cache.Alloc();
      }
      b.full.store(true, std::memory_order_release);
      which ^= 1;
    }
  });
  std::thread consumer([&] {
    size_t which = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Buffer& b = buffers[which];
      if (!b.full.load(std::memory_order_acquire)) {
        std::this_thread::yield();
        continue;
      }
      for (size_t i = 0; i < kBatch; ++i) {
        mem::RouteFree(b.objs[i], kSmallObj);
      }
      freed += kBatch;
      b.full.store(false, std::memory_order_release);
      which ^= 1;
    }
  });

  uint64_t start = NowNs();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  producer.join();
  consumer.join();
  uint64_t elapsed = NowNs() - start;
  for (Buffer& b : buffers) {
    if (b.full.load(std::memory_order_acquire)) {
      for (size_t i = 0; i < kBatch; ++i) {
        mem::RouteFree(b.objs[i], kSmallObj);
      }
    }
  }
  mem::SetSlabAllocation(true);
  return static_cast<double>(freed) * 1e9 / static_cast<double>(elapsed);
}

// --- converted hot objects, end to end ---

double MeasureBufferHeadChurn(bool slab, int threads, int duration_ms) {
  mem::SetSlabAllocation(slab);
  double r = MeasureOpsPerSec(threads, duration_ms, [&](std::atomic<bool>& stop) {
    uint64_t local = 0;
    std::unique_ptr<BufferHead> burst[kBurstDepth / 4];
    while (!stop.load(std::memory_order_relaxed)) {
      for (auto& slot : burst) {
        slot = std::unique_ptr<BufferHead>(new BufferHead(local, 0));
        slot->data[0] = static_cast<uint8_t>(local);
      }
      for (auto& slot : burst) {
        slot.reset();
      }
      local += kBurstDepth / 4;
    }
    return local;
  });
  mem::SetSlabAllocation(true);
  return r;
}

double MeasureNetSegChurn(bool slab, int threads, int duration_ms) {
  mem::SetSlabAllocation(slab);
  Bytes payload(1400, 0xab);  // one MTU-ish segment
  double r = MeasureOpsPerSec(threads, duration_ms, [&](std::atomic<bool>& stop) {
    uint64_t local = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      BufChain chain;
      for (int i = 0; i < 8; ++i) {
        chain.AppendCopy(ByteView(payload));
      }
      local += 8;
    }
    return local;
  });
  mem::SetSlabAllocation(true);
  return r;
}

struct Pair {
  double heap = 0;
  double slab = 0;
  double Speedup() const { return heap <= 0 ? 0 : slab / heap; }
};

void PrintPair(const char* name, const Pair& t1, const Pair& t8, bool trailing_comma) {
  std::printf("    \"%s\": {\n", name);
  std::printf("      \"heap_threads1_ops_per_sec\": %.0f,\n", t1.heap);
  std::printf("      \"slab_threads1_ops_per_sec\": %.0f,\n", t1.slab);
  std::printf("      \"speedup_threads1\": %.2f,\n", t1.Speedup());
  std::printf("      \"heap_threads8_ops_per_sec\": %.0f,\n", t8.heap);
  std::printf("      \"slab_threads8_ops_per_sec\": %.0f,\n", t8.slab);
  std::printf("      \"speedup_threads8\": %.2f\n", t8.Speedup());
  std::printf("    }%s\n", trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // Idle instrumentation: measure the allocator, not counter traffic.
  obs::TraceSession::Get().Stop();
  obs::SetMetricsEnabled(false);
  obs::SetLatencyTimingEnabled(false);
  obs::SetFlightRecorderEnabled(false);

  int duration_ms = smoke ? 80 : 250;

  Pair named_t1{MeasureNamedBurst(false, 1, duration_ms),
                MeasureNamedBurst(true, 1, duration_ms)};
  Pair named_t8{MeasureNamedBurst(false, 8, duration_ms),
                MeasureNamedBurst(true, 8, duration_ms)};
  Pair page_t1{MeasureSizeClassBurst(false, 1, duration_ms),
               MeasureSizeClassBurst(true, 1, duration_ms)};
  Pair page_t8{MeasureSizeClassBurst(false, 8, duration_ms),
               MeasureSizeClassBurst(true, 8, duration_ms)};
  Pair xfer{MeasureCrossThread(false, duration_ms),
            MeasureCrossThread(true, duration_ms)};
  Pair bh_t1{MeasureBufferHeadChurn(false, 1, duration_ms),
             MeasureBufferHeadChurn(true, 1, duration_ms)};
  Pair bh_t8{MeasureBufferHeadChurn(false, 8, duration_ms),
             MeasureBufferHeadChurn(true, 8, duration_ms)};
  Pair seg_t1{MeasureNetSegChurn(false, 1, duration_ms),
              MeasureNetSegChurn(true, 1, duration_ms)};
  Pair seg_t8{MeasureNetSegChurn(false, 8, duration_ms),
              MeasureNetSegChurn(true, 8, duration_ms)};

  std::printf("{\n");
  std::printf("  \"benchmark\": \"mem_fastpath\",\n");
  std::printf("  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::printf("  \"burst_depth\": %d,\n", kBurstDepth);
  std::printf("  \"duration_ms_per_config\": %d,\n", duration_ms);
  std::printf("  \"alloc_free\": {\n");
  PrintPair("named_256B", named_t1, named_t8, /*trailing_comma=*/true);
  PrintPair("sizeclass_4096B", page_t1, page_t8, /*trailing_comma=*/false);
  std::printf("  },\n");
  std::printf("  \"cross_thread_256B\": {\n");
  std::printf("    \"heap_pairs_per_sec\": %.0f,\n", xfer.heap);
  std::printf("    \"slab_pairs_per_sec\": %.0f,\n", xfer.slab);
  std::printf("    \"speedup\": %.2f\n", xfer.Speedup());
  std::printf("  },\n");
  std::printf("  \"end_to_end\": {\n");
  PrintPair("bufferhead_churn", bh_t1, bh_t8, /*trailing_comma=*/true);
  PrintPair("netseg_churn", seg_t1, seg_t8, /*trailing_comma=*/false);
  std::printf("  }\n");
  std::printf("}\n");

  if (smoke) {
    // Loud perf-regression gate for CI: the committed full run shows well
    // over 3x on the 8-thread burst workloads; gating on the better of the
    // two raw paths keeps runner noise from flaking the job while a real
    // regression (which collapses both) still fails.
    bool ok = true;
    double best = std::max(named_t8.Speedup(), page_t8.Speedup());
    if (best < 3.0) {
      std::fprintf(stderr,
                   "FAIL: best 8-thread slab alloc/free speedup %.2fx < 3x "
                   "vs global heap (named %.2fx, sizeclass %.2fx)\n",
                   best, named_t8.Speedup(), page_t8.Speedup());
      ok = false;
    }
    if (xfer.Speedup() < 1.0) {
      std::fprintf(stderr,
                   "FAIL: cross-thread hand-off slower on slab (%.2fx)\n",
                   xfer.Speedup());
      ok = false;
    }
    return ok ? 0 : 1;
  }
  return 0;
}
