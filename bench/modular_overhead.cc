// E6 — the cost of modularity (§3: "modular interfaces ... can result in
// performance cost"). Measures the dispatch mechanisms a caller crosses at
// each step of the roadmap, then a whole fs operation with and without the
// VFS layer, where the nanoseconds disappear into the real work.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/block/block_device.h"
#include "src/core/migration.h"
#include "src/fs/safefs/safefs.h"
#include "src/vfs/vfs.h"

namespace skern {
namespace {

// The workload behind every dispatch flavour: opaque enough not to fold.
uint64_t g_sink = 0;

struct AdderInterface {
  virtual ~AdderInterface() = default;
  virtual uint64_t Add(uint64_t x) = 0;
};

struct ConcreteAdder final : AdderInterface {
  uint64_t Add(uint64_t x) override { return x * 2654435761u + 17; }
};

uint64_t FreeAdd(uint64_t x) { return x * 2654435761u + 17; }

// C-style ops table (what legacy module boundaries look like).
struct AdderOps {
  uint64_t (*add)(void* self, uint64_t x);
};
uint64_t OpsAdd(void* self, uint64_t x) {
  (void)self;
  return x * 2654435761u + 17;
}

void BM_DirectCall(benchmark::State& state) {
  uint64_t x = 1;
  for (auto _ : state) {
    x = FreeAdd(x);
    benchmark::DoNotOptimize(x);
  }
  g_sink = x;
}
BENCHMARK(BM_DirectCall);

void BM_CStyleOpsTable(benchmark::State& state) {
  AdderOps ops{OpsAdd};
  AdderOps* table = &ops;
  benchmark::DoNotOptimize(table);
  uint64_t x = 1;
  for (auto _ : state) {
    x = table->add(nullptr, x);
    benchmark::DoNotOptimize(x);
  }
  g_sink = x;
}
BENCHMARK(BM_CStyleOpsTable);

void BM_VirtualInterface(benchmark::State& state) {
  std::unique_ptr<AdderInterface> adder = std::make_unique<ConcreteAdder>();
  AdderInterface* iface = adder.get();
  benchmark::DoNotOptimize(iface);
  uint64_t x = 1;
  for (auto _ : state) {
    x = iface->Add(x);
    benchmark::DoNotOptimize(x);
  }
  g_sink = x;
}
BENCHMARK(BM_VirtualInterface);

void BM_ImplementationSlot(benchmark::State& state) {
  // The full hot-swappable slot: shared_ptr load under a mutex, then the
  // virtual call — the price of being able to migrate implementations live.
  ImplementationSlot<AdderInterface> slot("bench.Adder");
  slot.Install("concrete", std::make_shared<ConcreteAdder>());
  uint64_t x = 1;
  for (auto _ : state) {
    x = slot.Active()->Add(x);
    benchmark::DoNotOptimize(x);
  }
  g_sink = x;
}
BENCHMARK(BM_ImplementationSlot);

void BM_MessagePassingCall(benchmark::State& state) {
  // The alternative §4.3 rejects for hot paths: marshal the argument into a
  // message, "deliver" it, unmarshal, call, marshal the reply back.
  uint64_t x = 1;
  Bytes message(16, 0);
  for (auto _ : state) {
    for (int i = 0; i < 8; ++i) {
      message[i] = static_cast<uint8_t>(x >> (8 * i));
    }
    Bytes delivered = message;  // the copy across the boundary
    uint64_t arg = 0;
    for (int i = 0; i < 8; ++i) {
      arg |= static_cast<uint64_t>(delivered[i]) << (8 * i);
    }
    uint64_t result = FreeAdd(arg);
    for (int i = 0; i < 8; ++i) {
      delivered[8 + i] = static_cast<uint8_t>(result >> (8 * i));
    }
    Bytes reply = delivered;  // and back
    x = 0;
    for (int i = 0; i < 8; ++i) {
      x |= static_cast<uint64_t>(reply[8 + i]) << (8 * i);
    }
    benchmark::DoNotOptimize(x);
  }
  g_sink = x;
}
BENCHMARK(BM_MessagePassingCall);

// --- a real operation: the dispatch cost amortizes to noise ---

struct FsFixture {
  FsFixture() : disk(512, 3) {
    fs = SafeFs::Format(disk, 64, 16).value();
    SKERN_CHECK(fs->Create("/bench").ok());
    SKERN_CHECK(fs->Write("/bench", 0, Bytes(4096, 0xab)).ok());
    SKERN_CHECK(vfs.Mount("/", fs).ok());
  }
  RamDisk disk;
  std::shared_ptr<SafeFs> fs;
  Vfs vfs;
};

void BM_StatDirect(benchmark::State& state) {
  FsFixture fixture;
  for (auto _ : state) {
    auto attr = fixture.fs->Stat("/bench");
    benchmark::DoNotOptimize(attr);
  }
}
BENCHMARK(BM_StatDirect);

void BM_StatViaVfs(benchmark::State& state) {
  FsFixture fixture;
  for (auto _ : state) {
    auto attr = fixture.vfs.Stat("/bench");
    benchmark::DoNotOptimize(attr);
  }
}
BENCHMARK(BM_StatViaVfs);

void BM_Read4KDirect(benchmark::State& state) {
  FsFixture fixture;
  for (auto _ : state) {
    auto data = fixture.fs->Read("/bench", 0, 4096);
    benchmark::DoNotOptimize(data);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Read4KDirect);

void BM_Read4KViaVfs(benchmark::State& state) {
  FsFixture fixture;
  auto fd = fixture.vfs.Open("/bench", kOpenRead);
  SKERN_CHECK(fd.ok());
  for (auto _ : state) {
    auto data = fixture.vfs.Pread(*fd, 0, 4096);
    benchmark::DoNotOptimize(data);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Read4KViaVfs);

}  // namespace
}  // namespace skern

BENCHMARK_MAIN();
