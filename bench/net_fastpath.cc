// Network data-plane fast path: sharded socket tables + per-socket locks +
// zero-copy buffer chains, against the monolithic stack under its big
// kernel lock.
//
// The question, answered with JSON on stdout: what does the storage-side
// scaling playbook (lock striping, refcounted zero-copy payloads, staged
// wire transmission, large-segment offload) buy the network stack on a
// C10M-shaped workload — thousands of established connections, threads
// echoing small messages across them? The wire runs with zero delay, so
// every send is delivered inline on the calling thread and a whole echo
// round trip is pure stack work: demux, per-socket locking, TCP engine,
// payload movement. The chain engine sends each message as one
// scatter-gather segment (the seed engine is structurally tied to
// MSS-sized copies), so the gap combines locking, copies, and per-packet
// overhead — the same three axes the paper's modularization argument
// says a replaceable data plane should be free to optimize.
//
//   * echo: thousands of established TCP connections, every thread cycling
//     the whole table; each op is client send -> server recv -> server
//     send -> client recv of a 4 KiB message. accel = sharded modular
//     stack driven through its native chain API (SendChain/RecvChain,
//     splice-style reflect) with zero-copy on; base = the full seed
//     configuration — monolithic stacks under the big kernel lock running
//     the seed deque-buffer TCP engine over the seed's one-mutex wire,
//     driven through the flat Bytes API (the only API the seed has).
//   * zerocopy: one connection, one thread, 32 KiB messages, modular stack
//     both times — the ablation isolates what payload sharing alone is
//     worth on a bandwidth-shaped transfer.
//
// Run:  ./build/bench/net_fastpath [--smoke]
// --smoke shortens the windows for CI and exits non-zero if the scaling
// story regresses (echo aggregate speedup < 2x at 8 threads or zero-copy
// speedup < 1.2x). The committed full-mode run shows >= 3x and >= 1.5x.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/rng.h"
#include "src/base/sim_clock.h"
#include "src/net/buf_chain.h"
#include "src/net/network.h"
#include "src/net/stack_modular.h"
#include "src/net/stack_monolithic.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

using namespace skern;

namespace {

uint64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr uint16_t kPort = 80;
constexpr uint32_t kClientIp = 1;
constexpr uint32_t kServerIp = 2;
constexpr int kThreadsWide = 8;
constexpr uint64_t kEchoBytes = 4096;      // per-op message in the echo cell
constexpr uint64_t kStreamBytes = 32 * 1024;  // per-op message in the zero-copy cell

// One wire, two stacks, kConns established connections. `mono` picks the
// monolithic organization with the big kernel lock (the scaling baseline);
// otherwise the sharded modular stack.
struct World {
  SimClock clock;
  Network network;
  std::unique_ptr<SocketLayer> client;
  std::unique_ptr<SocketLayer> server;
  std::vector<SocketId> cs;  // client side of conn i
  std::vector<SocketId> sc;  // server side of conn i

  World(bool mono, int conns) : network(clock, 42) {
    network.set_delay(0);  // inline delivery: an echo is pure stack work
    if (mono) {
      // The full seed configuration: big-lock monolithic stacks (which run
      // the seed deque-buffer TCP engine) over a wire that funnels every
      // packet through the one "net.wire" mutex.
      network.EnableSeedWireFunnel();
      auto c = std::make_unique<MonoNetStack>(clock, network, kClientIp);
      auto s = std::make_unique<MonoNetStack>(clock, network, kServerIp);
      c->EnableBigKernelLock();
      s->EnableBigKernelLock();
      client = std::move(c);
      server = std::move(s);
    } else {
      client = MakeStandardModularStack(clock, network, kClientIp);
      server = MakeStandardModularStack(clock, network, kServerIp);
    }
    auto ls = server->Socket(kProtoTcp);
    if (!ls.ok() || !server->Bind(*ls, kPort).ok() || !server->Listen(*ls).ok()) {
      std::fprintf(stderr, "listener setup failed\n");
      std::exit(1);
    }
    cs.reserve(conns);
    sc.reserve(conns);
    for (int i = 0; i < conns; ++i) {
      auto c = client->Socket(kProtoTcp);
      if (!c.ok() || !client->Connect(*c, NetAddr{kServerIp, kPort}).ok()) {
        std::fprintf(stderr, "connect %d failed\n", i);
        std::exit(1);
      }
      auto a = server->Accept(*ls);  // accept as we go: the backlog stays shallow
      if (!a.ok()) {
        std::fprintf(stderr, "accept %d failed\n", i);
        std::exit(1);
      }
      cs.push_back(*c);
      sc.push_back(*a);
    }
  }
};

// Aggregate echo round trips/sec. Every thread cycles the WHOLE connection
// table (staggered start) so the per-op working set is identical at every
// thread count — partitioning the table would hand the 8-thread runs a
// smaller, cache-warm slice and flatter the baseline. A connection is
// claimed exclusively for the duration of one echo (atomic try-claim, skip
// if busy): one socket, one driver at a time — the usage contract of a TCP
// stream. Two threads pushing the same connection would also stage their
// segments on two different thread-local outboxes, and the simplified
// engine treats the resulting wire reordering as loss to be repaired by
// RTO — which never fires here because the bench leaves the sim clock
// idle. Cross-thread contention is on the shared stack structures (shard
// locks / the big kernel lock / the wire), which is the story measured.
//
// `use_chains` drives the stack through its zero-copy API (SendChain /
// RecvChain, reflecting the received chain by reference — the splice idiom).
// The sharded plane implements it natively; the seed plane only has the
// flat Bytes API, so its cell runs with copies at every layer. That
// asymmetry IS the comparison: each plane used the way it is meant to be.
double MeasureEcho(World& w, int threads, int conns, int duration_ms, bool use_chains) {
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::vector<uint64_t> ops(threads, 0);
  std::unique_ptr<std::atomic<bool>[]> busy(new std::atomic<bool>[conns]);
  for (int i = 0; i < conns; ++i) {
    busy[i].store(false, std::memory_order_relaxed);
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(7000);
      const Bytes flat_msg = rng.NextBytes(kEchoBytes);
      const BufChain master = BufChain(Bytes(flat_msg));
      uint64_t cursor = static_cast<uint64_t>(t) * conns / threads;
      uint64_t local = 0;
      while (!go.load(std::memory_order_acquire)) {
      }
      while (!stop.load(std::memory_order_relaxed)) {
        int c;
        for (;;) {
          c = static_cast<int>(cursor % conns);
          ++cursor;
          if (!busy[c].exchange(true, std::memory_order_acquire)) {
            break;
          }
        }
        // With exclusive claims a recv should never see an empty buffer;
        // treat kEAGAIN as a benign retry anyway rather than aborting the
        // run on a scheduling hiccup.
        if (use_chains) {
          BufChain out;
          out.Append(master);  // share the segments, copy nothing
          if (!w.client->SendChain(w.cs[c], std::move(out)).ok()) {
            std::fprintf(stderr, "echo send failed\n");
            std::exit(1);
          }
          uint64_t got = 0;
          while (got < kEchoBytes) {
            auto chunk = w.server->RecvChain(w.sc[c], kEchoBytes - got);
            if (!chunk.ok()) {
              if (chunk.error() == Errno::kEAGAIN) {
                std::this_thread::yield();
                continue;
              }
              std::fprintf(stderr, "echo server recv failed\n");
              std::exit(1);
            }
            got += chunk->size();
            // Reflect by reference: the echoed payload is never copied.
            if (!w.server->SendChain(w.sc[c], std::move(*chunk)).ok()) {
              std::fprintf(stderr, "echo reflect failed\n");
              std::exit(1);
            }
          }
          got = 0;
          while (got < kEchoBytes) {
            auto chunk = w.client->RecvChain(w.cs[c], kEchoBytes - got);
            if (!chunk.ok()) {
              if (chunk.error() == Errno::kEAGAIN) {
                std::this_thread::yield();
                continue;
              }
              std::fprintf(stderr, "echo client recv failed\n");
              std::exit(1);
            }
            got += chunk->size();
          }
        } else {
          if (!w.client->Send(w.cs[c], ByteView(flat_msg)).ok()) {
            std::fprintf(stderr, "echo send failed\n");
            std::exit(1);
          }
          uint64_t got = 0;
          while (got < kEchoBytes) {
            auto chunk = w.server->Recv(w.sc[c], kEchoBytes - got);
            if (!chunk.ok()) {
              if (chunk.error() == Errno::kEAGAIN) {
                std::this_thread::yield();
                continue;
              }
              std::fprintf(stderr, "echo server recv failed\n");
              std::exit(1);
            }
            got += chunk->size();
            if (!w.server->Send(w.sc[c], ByteView(*chunk)).ok()) {
              std::fprintf(stderr, "echo reflect failed\n");
              std::exit(1);
            }
          }
          got = 0;
          while (got < kEchoBytes) {
            auto chunk = w.client->Recv(w.cs[c], kEchoBytes - got);
            if (!chunk.ok()) {
              if (chunk.error() == Errno::kEAGAIN) {
                std::this_thread::yield();
                continue;
              }
              std::fprintf(stderr, "echo client recv failed\n");
              std::exit(1);
            }
            got += chunk->size();
          }
        }
        busy[c].store(false, std::memory_order_release);
        ++local;
      }
      ops[t] = local;
    });
  }
  uint64_t start = NowNs();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& worker : workers) {
    worker.join();
  }
  uint64_t elapsed = NowNs() - start;
  uint64_t total = 0;
  for (uint64_t o : ops) {
    total += o;
  }
  return static_cast<double>(total) * 1e9 / static_cast<double>(elapsed);
}

// Best of `trials`: on an oversubscribed host, interference only subtracts.
template <typename Fn>
double Best(int trials, Fn&& run) {
  double best = 0;
  for (int i = 0; i < trials; ++i) {
    best = std::max(best, run());
  }
  return best;
}

struct CellResults {
  double accel_t1 = 0;
  double accel_t8 = 0;
  double base_t1 = 0;
  double base_t8 = 0;
  double SpeedupT1() const { return base_t1 <= 0 ? 0 : accel_t1 / base_t1; }
  double SpeedupT8() const { return base_t8 <= 0 ? 0 : accel_t8 / base_t8; }
};

// One-connection bulk transfer, bytes/sec, modular stack: the zero-copy
// ablation. The chain enters via SendChain and leaves via RecvChain, so with
// sharing enabled no hop touches the payload bytes.
double MeasureStream(bool zero_copy, int duration_ms) {
  SetNetZeroCopy(zero_copy);
  World w(/*mono=*/false, /*conns=*/1);
  Rng rng(4242);
  BufChain master = BufChain::Wrap(rng.NextBytes(kStreamBytes));
  std::atomic<bool> stop{false};
  uint64_t ops = 0;
  std::thread worker([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      BufChain chain;
      chain.Append(master);  // producer shares one frozen buffer every op
      if (!w.client->SendChain(w.cs[0], std::move(chain)).ok()) {
        std::fprintf(stderr, "stream send failed\n");
        std::exit(1);
      }
      uint64_t got = 0;
      while (got < kStreamBytes) {
        auto chunk = w.server->RecvChain(w.sc[0], kStreamBytes);
        if (!chunk.ok()) {
          std::fprintf(stderr, "stream recv failed\n");
          std::exit(1);
        }
        got += chunk->size();
      }
      ++ops;
    }
  });
  uint64_t start = NowNs();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  worker.join();
  uint64_t elapsed = NowNs() - start;
  SetNetZeroCopy(true);
  return static_cast<double>(ops) * kStreamBytes * 1e9 / static_cast<double>(elapsed);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // Idle instrumentation: measure the data plane, not counter traffic.
  obs::TraceSession::Get().Stop();
  obs::SetMetricsEnabled(false);
  obs::SetLatencyTimingEnabled(false);
  obs::SetFlightRecorderEnabled(false);

  // Full mode: 16 Ki connections (32 Ki sockets across the two stacks) —
  // tens of thousands of established flows sharing one wire.
  const int conns = smoke ? 2048 : 16384;
  const int duration_ms = smoke ? 60 : 250;
  const int trials = smoke ? 1 : 5;

  SetNetZeroCopy(true);
  World accel(/*mono=*/false, conns);
  CellResults echo;
  echo.accel_t1 = Best(trials, [&] {
    return MeasureEcho(accel, 1, conns, duration_ms, /*use_chains=*/true);
  });
  echo.accel_t8 = Best(trials, [&] {
    return MeasureEcho(accel, kThreadsWide, conns, duration_ms, /*use_chains=*/true);
  });
  {
    SetNetZeroCopy(false);  // the baseline also pays the per-layer copies
    World base(/*mono=*/true, conns);
    echo.base_t1 = Best(trials, [&] {
      return MeasureEcho(base, 1, conns, duration_ms, /*use_chains=*/false);
    });
    echo.base_t8 = Best(trials, [&] {
      return MeasureEcho(base, kThreadsWide, conns, duration_ms, /*use_chains=*/false);
    });
    SetNetZeroCopy(true);
  }

  ResetBufChainStats();
  double zc_on = Best(trials, [&] { return MeasureStream(true, duration_ms); });
  BufChainStats shared_stats = GetBufChainStats();
  ResetBufChainStats();
  double zc_off = Best(trials, [&] { return MeasureStream(false, duration_ms); });
  BufChainStats copied_stats = GetBufChainStats();
  double zc_speedup = zc_off <= 0 ? 0 : zc_on / zc_off;

  std::printf("{\n");
  std::printf("  \"benchmark\": \"net_fastpath\",\n");
  std::printf("  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::printf("  \"config\": {\n");
  std::printf("    \"connections\": %d,\n", conns);
  std::printf("    \"echo_bytes\": %llu,\n", static_cast<unsigned long long>(kEchoBytes));
  std::printf("    \"stream_bytes\": %llu,\n", static_cast<unsigned long long>(kStreamBytes));
  std::printf("    \"threads_wide\": %d,\n", kThreadsWide);
  std::printf("    \"duration_ms_per_config\": %d\n", duration_ms);
  std::printf("  },\n");
  std::printf("  \"echo\": {\n");
  std::printf("    \"accel_threads1_ops_per_sec\": %.0f,\n", echo.accel_t1);
  std::printf("    \"accel_threads8_ops_per_sec\": %.0f,\n", echo.accel_t8);
  std::printf("    \"base_threads1_ops_per_sec\": %.0f,\n", echo.base_t1);
  std::printf("    \"base_threads8_ops_per_sec\": %.0f,\n", echo.base_t8);
  std::printf("    \"speedup_threads1\": %.2f,\n", echo.SpeedupT1());
  std::printf("    \"speedup_threads8\": %.2f\n", echo.SpeedupT8());
  std::printf("  },\n");
  std::printf("  \"zerocopy\": {\n");
  std::printf("    \"shared_bytes_per_sec\": %.0f,\n", zc_on);
  std::printf("    \"copied_bytes_per_sec\": %.0f,\n", zc_off);
  std::printf("    \"speedup\": %.2f,\n", zc_speedup);
  std::printf("    \"shared_run_bytes_copied\": %llu,\n",
              static_cast<unsigned long long>(shared_stats.bytes_copied));
  std::printf("    \"shared_run_bytes_shared\": %llu,\n",
              static_cast<unsigned long long>(shared_stats.bytes_shared));
  std::printf("    \"copied_run_bytes_copied\": %llu\n",
              static_cast<unsigned long long>(copied_stats.bytes_copied));
  std::printf("  }\n");
  std::printf("}\n");

  if (smoke) {
    // Loud perf-regression gate for CI, with noise headroom under the
    // committed full-run ratios.
    bool ok = true;
    if (echo.SpeedupT8() < 2.0) {
      std::fprintf(stderr, "FAIL: echo aggregate speedup %.2fx < 2.0x at 8 threads\n",
                   echo.SpeedupT8());
      ok = false;
    }
    if (zc_speedup < 1.2) {
      std::fprintf(stderr, "FAIL: zero-copy speedup %.2fx < 1.2x\n", zc_speedup);
      ok = false;
    }
    return ok ? 0 : 1;
  }
  return 0;
}
