// E12 — §4.1 socket-stack modularity: the same traffic on the monolithic and
// modular organizations. Expected: the registry + virtual dispatch adds a
// small constant per call that disappears under real protocol work — the
// retrofitting cost is structural, not computational.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/base/sim_clock.h"
#include "src/net/network.h"
#include "src/net/stack_modular.h"
#include "src/net/stack_monolithic.h"

namespace skern {
namespace {

constexpr uint32_t kClientIp = 1;
constexpr uint32_t kServerIp = 2;
constexpr uint16_t kPort = 80;

struct NetPair {
  explicit NetPair(bool modular) : network(clock, 3) {
    if (modular) {
      client = MakeStandardModularStack(clock, network, kClientIp);
      server = MakeStandardModularStack(clock, network, kServerIp);
    } else {
      client = std::make_unique<MonoNetStack>(clock, network, kClientIp);
      server = std::make_unique<MonoNetStack>(clock, network, kServerIp);
    }
  }
  SimClock clock;
  Network network;
  std::unique_ptr<SocketLayer> client;
  std::unique_ptr<SocketLayer> server;
};

void BenchSocketCreateClose(benchmark::State& state, bool modular) {
  NetPair net(modular);
  for (auto _ : state) {
    auto s = net.client->Socket(kProtoUdp);
    benchmark::DoNotOptimize(s);
    benchmark::DoNotOptimize(net.client->Close(*s));
  }
}

void BenchUdpRoundtrip(benchmark::State& state, bool modular) {
  NetPair net(modular);
  auto srv = net.server->Socket(kProtoUdp);
  SKERN_CHECK(net.server->Bind(*srv, 53).ok());
  auto cli = net.client->Socket(kProtoUdp);
  Bytes payload(256, 0x44);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net.client->SendTo(*cli, NetAddr{kServerIp, 53}, ByteView(payload)));
    net.clock.Advance(kMillisecond);
    auto got = net.server->RecvFrom(*srv);
    benchmark::DoNotOptimize(got);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 256);
}

void BenchTcpEcho(benchmark::State& state, bool modular) {
  NetPair net(modular);
  auto ls = net.server->Socket(kProtoTcp);
  SKERN_CHECK(net.server->Bind(*ls, kPort).ok());
  SKERN_CHECK(net.server->Listen(*ls).ok());
  auto cs = net.client->Socket(kProtoTcp);
  SKERN_CHECK(net.client->Connect(*cs, NetAddr{kServerIp, kPort}).ok());
  net.clock.Advance(100 * kMillisecond);
  auto conn = net.server->Accept(*ls);
  SKERN_CHECK(conn.ok());
  Bytes payload(512, 0x55);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.client->Send(*cs, ByteView(payload)));
    net.clock.Advance(kMillisecond);
    auto got = net.server->Recv(*conn, 4096);
    if (got.ok() && !got->empty()) {
      benchmark::DoNotOptimize(net.server->Send(*conn, ByteView(got.value())));
    }
    net.clock.Advance(kMillisecond);
    auto back = net.client->Recv(*cs, 4096);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}

}  // namespace
}  // namespace skern

int main(int argc, char** argv) {
  using namespace skern;
  benchmark::Initialize(&argc, argv);
  for (bool modular : {false, true}) {
    std::string tag = modular ? "modular" : "monolithic";
    benchmark::RegisterBenchmark(
        ("BM_SocketCreateClose/" + tag).c_str(),
        [modular](benchmark::State& s) { BenchSocketCreateClose(s, modular); });
    benchmark::RegisterBenchmark(
        ("BM_UdpRoundtrip/" + tag).c_str(),
        [modular](benchmark::State& s) { BenchUdpRoundtrip(s, modular); });
    benchmark::RegisterBenchmark(
        ("BM_TcpEcho/" + tag).c_str(),
        [modular](benchmark::State& s) { BenchTcpEcho(s, modular); });
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
