// E7 — the three §4.3 ownership-sharing models vs. true message passing.
//
// "We propose interfaces that are semantically equivalent to message passing
// interfaces but share memory for performance reasons."
// Expected shape: the copying baseline scales with payload size; the three
// sharing models are O(1) regardless of payload; the runtime checker adds a
// small constant that the unchecked configuration removes.
#include <benchmark/benchmark.h>

#include "src/base/bytes.h"
#include "src/ownership/owned.h"

namespace skern {
namespace {

// The callee: touches both ends of the payload so the bytes must exist.
uint64_t Consume(const Bytes& data) {
  return data.empty() ? 0 : data.front() + data.back();
}
uint64_t Mutate(Bytes& data) {
  if (!data.empty()) {
    ++data.front();
    ++data.back();
  }
  return data.size();
}

void BM_MessagePassingCopy(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  Bytes payload(size, 0x5a);
  uint64_t sink = 0;
  for (auto _ : state) {
    Bytes message = payload;  // the copy semantics require
    sink += Consume(message);
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_MessagePassingCopy)->Range(64, 4 << 20);

void BM_Model1_Transfer(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  auto cell = Owned<Bytes>::Make(Bytes(size, 0x5a));
  uint64_t sink = 0;
  for (auto _ : state) {
    // Caller -> callee: ownership passes; callee consumes and passes it back
    // (round trip so the loop can continue). No byte moves.
    auto in_flight = cell.Transfer();
    Owned<Bytes> callee_side = in_flight.Accept();
    sink += Consume(callee_side.Get());
    auto back = callee_side.Transfer();
    cell = back.Accept();
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_Model1_Transfer)->Range(64, 4 << 20);

void BM_Model2_ExclusiveLend(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  auto cell = Owned<Bytes>::Make(Bytes(size, 0x5a));
  uint64_t sink = 0;
  for (auto _ : state) {
    auto lend = cell.LendExclusive();
    sink += Mutate(lend.Get());
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_Model2_ExclusiveLend)->Range(64, 4 << 20);

void BM_Model3_SharedLend(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  auto cell = Owned<Bytes>::Make(Bytes(size, 0x5a));
  uint64_t sink = 0;
  for (auto _ : state) {
    auto lend = cell.LendShared();
    sink += Consume(lend.Get());
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_Model3_SharedLend)->Range(64, 4 << 20);

// The ablation: identical lend with the runtime checker compiled to no-ops.
void BM_Model2_Unchecked(benchmark::State& state) {
  ScopedOwnershipMode mode(OwnershipMode::kUnchecked);
  size_t size = static_cast<size_t>(state.range(0));
  auto cell = Owned<Bytes>::Make(Bytes(size, 0x5a));
  uint64_t sink = 0;
  for (auto _ : state) {
    auto lend = cell.LendExclusive();
    sink += Mutate(lend.Get());
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_Model2_Unchecked)->Range(64, 4 << 20);

void BM_Model3_Unchecked(benchmark::State& state) {
  ScopedOwnershipMode mode(OwnershipMode::kUnchecked);
  size_t size = static_cast<size_t>(state.range(0));
  auto cell = Owned<Bytes>::Make(Bytes(size, 0x5a));
  uint64_t sink = 0;
  for (auto _ : state) {
    auto lend = cell.LendShared();
    sink += Consume(lend.Get());
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_Model3_Unchecked)->Range(64, 4 << 20);

}  // namespace
}  // namespace skern

BENCHMARK_MAIN();
