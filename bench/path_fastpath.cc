// Path-resolution fast path: dentry cache + per-directory name index.
//
// The question, answered with JSON on stdout: what does the lookup
// acceleration (DentryCache + per-directory name index, SafeFs's
// SetLookupAcceleration switch) buy on the workload it was built for —
// resolving 8-component paths through directories holding ~1k entries?
//
//   * warm_stat / warm_open: steady-state Stat and Open+Close ops/sec
//     through the VFS over precomputed canonical deep paths (so the
//     normalize fast path is also on the measured path), acceleration on
//     vs. off, at 1 and 8 threads. Uncached resolution decodes every dirent
//     block of every directory on the path; cached resolution is eight hash
//     probes.
//   * cold: ns per first-touch Stat right after the caches are dropped —
//     the accelerated cold path pays one full scan per directory to build
//     its index, the baseline pays the same scan without keeping anything.
//
// Run:  ./build/bench/path_fastpath [--smoke]
// --smoke shortens the measurement windows to fit a CI budget and exits
// non-zero if acceleration stops paying for itself (warm stat speedup
// < 3x at 1 thread or < 2x at 8 threads, or warm open speedup < 2x).
// The committed full-mode run shows >= 5x warm stat at both widths.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/bytes.h"
#include "src/block/block_device.h"
#include "src/fs/safefs/safefs.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/vfs/vfs.h"

using namespace skern;

namespace {

uint64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr uint64_t kDeviceBlocks = 8192;
constexpr uint64_t kInodeCount = 9216;
constexpr uint64_t kJournalBlocks = 64;
constexpr int kDepth = 8;        // components per resolved path
constexpr int kFanout = 1000;    // regular files per directory on the path
constexpr int kHotPaths = 64;    // distinct deep paths the warm loops cycle over

struct Tree {
  std::shared_ptr<SafeFs> fs;
  Vfs vfs;
  std::vector<std::string> dir_paths;   // /d0, /d0/d1, ...
  std::vector<std::string> hot_paths;   // deep canonical file paths
};

// Builds the 8-deep chain of directories, each stuffed with kFanout files,
// on a fresh SafeFs mounted at /. Population runs with acceleration on (the
// per-directory free-slot hint is exactly what keeps 1k creates per
// directory linear); the resulting disk image is identical either way, as
// tests/dcache_coherence_test.cc proves.
std::unique_ptr<Tree> BuildTree(RamDisk& disk) {
  auto tree = std::make_unique<Tree>();
  auto fs = SafeFs::Format(disk, kInodeCount, kJournalBlocks);
  if (!fs.ok()) {
    std::fprintf(stderr, "format failed\n");
    std::exit(1);
  }
  tree->fs = fs.value();
  if (!tree->vfs.Mount("/", tree->fs).ok()) {
    std::fprintf(stderr, "mount failed\n");
    std::exit(1);
  }
  std::string dir;
  for (int level = 0; level < kDepth; ++level) {
    dir += "/d" + std::to_string(level);
    if (!tree->vfs.Mkdir(dir).ok()) {
      std::fprintf(stderr, "mkdir %s failed\n", dir.c_str());
      std::exit(1);
    }
    tree->dir_paths.push_back(dir);
    for (int i = 0; i < kFanout; ++i) {
      std::string file = dir + "/f" + std::to_string(i);
      auto fd = tree->vfs.Open(file, kOpenWrite | kOpenCreate);
      if (!fd.ok()) {
        std::fprintf(stderr, "create %s failed: %s\n", file.c_str(),
                     ErrnoName(fd.error()));
        std::exit(1);
      }
      if (!tree->vfs.Close(fd.value()).ok()) {
        std::fprintf(stderr, "close %s failed\n", file.c_str());
        std::exit(1);
      }
      // Bound staged metadata: one journal batch per few hundred creates.
      if (i % 400 == 399 && !tree->fs->Sync().ok()) {
        std::fprintf(stderr, "sync failed\n");
        std::exit(1);
      }
    }
  }
  if (!tree->fs->Sync().ok()) {
    std::fprintf(stderr, "final sync failed\n");
    std::exit(1);
  }
  const std::string& leaf = tree->dir_paths.back();
  for (int i = 0; i < kHotPaths; ++i) {
    // Spread the hot set across the leaf directory's dirent blocks so the
    // uncached scan cost reflects the average, not the first block.
    tree->hot_paths.push_back(leaf + "/f" + std::to_string((i * 131) % kFanout));
  }
  return tree;
}

// Drops both acceleration structures (or re-enables them) and, when
// enabling, leaves the caches cold — callers warm them explicitly.
void SetAccel(Tree& tree, bool enabled) {
  tree.fs->SetLookupAcceleration(enabled);
}

enum class WarmOp { kStat, kOpen };

double MeasureWarmThroughput(Tree& tree, WarmOp op, int threads, int duration_ms) {
  // Warm every cache level once: dcache entries for each component and the
  // per-directory indexes (no-ops when acceleration is off).
  for (const auto& p : tree.hot_paths) {
    if (!tree.vfs.Stat(p).ok()) {
      std::fprintf(stderr, "warmup stat %s failed\n", p.c_str());
      std::exit(1);
    }
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> go{false};
  std::vector<uint64_t> ops(threads, 0);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      size_t i = static_cast<size_t>(t) * (tree.hot_paths.size() / threads);
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& p = tree.hot_paths[i % tree.hot_paths.size()];
        if (op == WarmOp::kStat) {
          if (!tree.vfs.Stat(p).ok()) {
            std::fprintf(stderr, "stat %s failed\n", p.c_str());
            std::exit(1);
          }
        } else {
          auto fd = tree.vfs.Open(p, kOpenRead);
          if (!fd.ok() || !tree.vfs.Close(fd.value()).ok()) {
            std::fprintf(stderr, "open %s failed\n", p.c_str());
            std::exit(1);
          }
        }
        ++i;
        ++local;
      }
      ops[t] = local;
    });
  }
  uint64_t start = NowNs();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  uint64_t elapsed = NowNs() - start;
  uint64_t total = 0;
  for (uint64_t o : ops) {
    total += o;
  }
  return static_cast<double>(total) * 1e9 / static_cast<double>(elapsed);
}

struct WarmResults {
  double accel_t1 = 0;
  double accel_t8 = 0;
  double base_t1 = 0;
  double base_t8 = 0;
  double SpeedupT1() const { return base_t1 <= 0 ? 0 : accel_t1 / base_t1; }
  double SpeedupT8() const { return base_t8 <= 0 ? 0 : accel_t8 / base_t8; }
};

WarmResults MeasureWarm(Tree& tree, WarmOp op, int duration_ms) {
  WarmResults r;
  SetAccel(tree, true);
  r.accel_t1 = MeasureWarmThroughput(tree, op, 1, duration_ms);
  r.accel_t8 = MeasureWarmThroughput(tree, op, 8, duration_ms);
  SetAccel(tree, false);
  r.base_t1 = MeasureWarmThroughput(tree, op, 1, duration_ms);
  r.base_t8 = MeasureWarmThroughput(tree, op, 8, duration_ms);
  return r;
}

void PrintWarmResults(const char* name, const WarmResults& r, bool trailing_comma) {
  std::printf("  \"%s\": {\n", name);
  std::printf("    \"accel_threads1_ops_per_sec\": %.0f,\n", r.accel_t1);
  std::printf("    \"accel_threads8_ops_per_sec\": %.0f,\n", r.accel_t8);
  std::printf("    \"base_threads1_ops_per_sec\": %.0f,\n", r.base_t1);
  std::printf("    \"base_threads8_ops_per_sec\": %.0f,\n", r.base_t8);
  std::printf("    \"speedup_threads1\": %.2f,\n", r.SpeedupT1());
  std::printf("    \"speedup_threads8\": %.2f\n", r.SpeedupT8());
  std::printf("  }%s\n", trailing_comma ? "," : "");
}

struct ColdResults {
  double accel_ns_per_stat = 0;  // first touch, includes building the indexes
  double base_ns_per_stat = 0;
};

// First-touch cost over one distinct path per directory depth: toggling
// acceleration clears every cached structure, so each measured Stat pays the
// real cold price (for the accelerated run, that is the one-time index
// build the warm numbers amortize).
ColdResults MeasureCold(Tree& tree, int rounds) {
  ColdResults r;
  auto run = [&](bool accel) {
    double total_ns = 0;
    uint64_t total_ops = 0;
    for (int round = 0; round < rounds; ++round) {
      SetAccel(tree, false);  // drop everything
      SetAccel(tree, accel);
      uint64_t start = NowNs();
      for (int i = 0; i < kDepth; ++i) {
        std::string p = tree.dir_paths[i] + "/f" + std::to_string(round % kFanout);
        if (!tree.vfs.Stat(p).ok()) {
          std::fprintf(stderr, "cold stat %s failed\n", p.c_str());
          std::exit(1);
        }
      }
      total_ns += static_cast<double>(NowNs() - start);
      total_ops += kDepth;
    }
    return total_ns / static_cast<double>(total_ops);
  };
  r.accel_ns_per_stat = run(true);
  r.base_ns_per_stat = run(false);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // Idle instrumentation: measure resolution cost, not counter traffic.
  obs::TraceSession::Get().Stop();
  obs::SetMetricsEnabled(false);
  obs::SetLatencyTimingEnabled(false);
  obs::SetFlightRecorderEnabled(false);

  int duration_ms = smoke ? 60 : 250;
  int cold_rounds = smoke ? 3 : 10;

  RamDisk disk(kDeviceBlocks, /*seed=*/42);
  auto tree = BuildTree(disk);

  WarmResults warm_stat = MeasureWarm(*tree, WarmOp::kStat, duration_ms);
  WarmResults warm_open = MeasureWarm(*tree, WarmOp::kOpen, duration_ms);
  ColdResults cold = MeasureCold(*tree, cold_rounds);

  // Re-enable and re-warm so the reported cache stats describe steady state.
  SetAccel(*tree, true);
  for (const auto& p : tree->hot_paths) {
    (void)tree->vfs.Stat(p);
  }
  DcacheStats stats = tree->fs->dcache_stats();

  std::printf("{\n");
  std::printf("  \"benchmark\": \"path_fastpath\",\n");
  std::printf("  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::printf("  \"tree\": {\n");
  std::printf("    \"depth\": %d,\n", kDepth);
  std::printf("    \"entries_per_dir\": %d,\n", kFanout);
  std::printf("    \"hot_paths\": %d,\n", kHotPaths);
  std::printf("    \"duration_ms_per_config\": %d\n", duration_ms);
  std::printf("  },\n");
  PrintWarmResults("warm_stat", warm_stat, /*trailing_comma=*/true);
  PrintWarmResults("warm_open", warm_open, /*trailing_comma=*/true);
  std::printf("  \"cold\": {\n");
  std::printf("    \"accel_first_touch_ns_per_stat\": %.0f,\n", cold.accel_ns_per_stat);
  std::printf("    \"base_first_touch_ns_per_stat\": %.0f\n", cold.base_ns_per_stat);
  std::printf("  },\n");
  std::printf("  \"dcache\": {\n");
  std::printf("    \"hits\": %llu,\n", static_cast<unsigned long long>(stats.hits));
  std::printf("    \"misses\": %llu,\n", static_cast<unsigned long long>(stats.misses));
  std::printf("    \"negative_hits\": %llu,\n",
              static_cast<unsigned long long>(stats.negative_hits));
  std::printf("    \"inserts\": %llu,\n", static_cast<unsigned long long>(stats.inserts));
  std::printf("    \"invalidations\": %llu,\n",
              static_cast<unsigned long long>(stats.invalidations));
  std::printf("    \"evictions\": %llu,\n",
              static_cast<unsigned long long>(stats.evictions));
  std::printf("    \"entries\": %llu\n", static_cast<unsigned long long>(stats.entries));
  std::printf("  }\n");
  std::printf("}\n");

  if (smoke) {
    // Loud perf-regression gate for CI, with noise headroom under the
    // committed full-run ratios.
    bool ok = true;
    if (warm_stat.SpeedupT1() < 3.0) {
      std::fprintf(stderr, "FAIL: warm stat speedup %.2fx < 3x at 1 thread\n",
                   warm_stat.SpeedupT1());
      ok = false;
    }
    if (warm_stat.SpeedupT8() < 2.0) {
      std::fprintf(stderr, "FAIL: warm stat speedup %.2fx < 2x at 8 threads\n",
                   warm_stat.SpeedupT8());
      ok = false;
    }
    if (std::max(warm_open.SpeedupT1(), warm_open.SpeedupT8()) < 2.0) {
      std::fprintf(stderr, "FAIL: warm open speedup (%.2fx/%.2fx) < 2x\n",
                   warm_open.SpeedupT1(), warm_open.SpeedupT8());
      ok = false;
    }
    return ok ? 0 : 1;
  }
  return 0;
}
