// E10 — the §4.4 axiomatic shim: per-call validation cost at the
// verified/unverified block boundary, against the raw device and the
// disabled configuration. Expected: the shim costs one hash of the block per
// call (O(block size)); disabling it removes the cost entirely.
#include <benchmark/benchmark.h>

#include "src/block/block_device.h"
#include "src/block/checked_block_device.h"
#include "src/core/shim.h"
#include "src/fs/safefs/safefs.h"
#include "src/spec/refinement.h"

namespace skern {
namespace {

void BM_RawDevice_Write(benchmark::State& state) {
  RamDisk disk(64, 1);
  Bytes block(kBlockSize, 0x33);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(disk.WriteBlock(i++ % 64, ByteView(block)));
    if (i % 1024 == 0) {
      (void)disk.Flush();  // bound the pending-write log
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockSize);
}
BENCHMARK(BM_RawDevice_Write);

void BM_CheckedDevice_Write(benchmark::State& state) {
  ScopedShimMode mode(ShimMode::kEnforcing);
  RamDisk disk(64, 1);
  CheckedBlockDevice checked(disk);
  Bytes block(kBlockSize, 0x33);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checked.WriteBlock(i++ % 64, ByteView(block)));
    if (i % 1024 == 0) {
      (void)checked.Flush();
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockSize);
}
BENCHMARK(BM_CheckedDevice_Write);

void BM_CheckedDevice_Write_Disabled(benchmark::State& state) {
  ScopedShimMode mode(ShimMode::kDisabled);
  RamDisk disk(64, 1);
  CheckedBlockDevice checked(disk);
  Bytes block(kBlockSize, 0x33);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checked.WriteBlock(i++ % 64, ByteView(block)));
    if (i % 1024 == 0) {
      (void)checked.Flush();
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockSize);
}
BENCHMARK(BM_CheckedDevice_Write_Disabled);

void BM_RawDevice_Read(benchmark::State& state) {
  RamDisk disk(64, 1);
  Bytes block(kBlockSize, 0);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(disk.ReadBlock(i++ % 64, MutableByteView(block)));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockSize);
}
BENCHMARK(BM_RawDevice_Read);

void BM_CheckedDevice_Read(benchmark::State& state) {
  ScopedShimMode mode(ShimMode::kEnforcing);
  RamDisk disk(64, 1);
  CheckedBlockDevice checked(disk);
  Bytes block(kBlockSize, 0);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checked.ReadBlock(i++ % 64, MutableByteView(block)));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockSize);
}
BENCHMARK(BM_CheckedDevice_Read);

void BM_CheckedDevice_Read_Disabled(benchmark::State& state) {
  ScopedShimMode mode(ShimMode::kDisabled);
  RamDisk disk(64, 1);
  CheckedBlockDevice checked(disk);
  Bytes block(kBlockSize, 0);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checked.ReadBlock(i++ % 64, MutableByteView(block)));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBlockSize);
}
BENCHMARK(BM_CheckedDevice_Read_Disabled);

// End-to-end: safefs running over the shimmed device vs. the raw device.
void BM_SafeFsOverRawDevice(benchmark::State& state) {
  RamDisk disk(512, 2);
  auto fs = SafeFs::Format(disk, 64, 32).value();
  SKERN_CHECK(fs->Create("/f").ok());
  Bytes data(4096, 0x21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs->Write("/f", 0, ByteView(data)));
    benchmark::DoNotOptimize(fs->Fsync("/f"));
  }
}
BENCHMARK(BM_SafeFsOverRawDevice);

void BM_SafeFsOverShimmedDevice(benchmark::State& state) {
  ScopedShimMode mode(ShimMode::kEnforcing);
  RamDisk disk(512, 2);
  CheckedBlockDevice checked(disk);
  auto fs = SafeFs::Format(checked, 64, 32).value();
  SKERN_CHECK(fs->Create("/f").ok());
  Bytes data(4096, 0x21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs->Write("/f", 0, ByteView(data)));
    benchmark::DoNotOptimize(fs->Fsync("/f"));
  }
  state.counters["axioms_validated"] =
      static_cast<double>(ShimStats::Get().validations());
}
BENCHMARK(BM_SafeFsOverShimmedDevice);

}  // namespace
}  // namespace skern

BENCHMARK_MAIN();
