// E5 — the §2 study: CWE categorization of the CVE corpus since 2010.
// Expected: ~42% preventable by type+ownership safety, +35% by functional
// correctness, 23% other — the paper's case for the roadmap.
#include <cstdio>

#include "src/cve/analysis.h"
#include "src/cve/corpus.h"

int main() {
  using namespace skern;
  auto corpus = CveCorpus::Generate(DefaultCorpusParams(), 42);
  auto table = Categorize(corpus, 2010);
  std::printf("E5 / Section 2 categorization\n\n%s", RenderCategorization(table).c_str());
  return 0;
}
