// Tracepoint/metrics overhead: instrumented vs compiled-out hot paths.
//
// This file builds twice:
//   - trace_overhead (instrumented): the normal libraries, tracepoints and
//     metrics compiled in. Measures five configurations — "disabled" (every
//     runtime gate off: the residue is one relaxed load and predicted branch
//     per site), "counters" (counter increments on, timing off), "metrics"
//     (latency histograms also on), "flight" (the flight recorder too — the
//     default production shape), and "enabled" (a live trace session).
//     Every cell also reports "span_ns_per_op": the cost of one SKERN_SPAN
//     bracket (begin+end) with an empty body, the microcost the span-tracing
//     plane adds to an instrumented operation under that configuration.
//   - trace_overhead_baseline (SKERN_OBS_COMPILED_OUT): the same workloads
//     over hot-path sources recompiled with every macro erased — the true
//     zero-instrumentation floor.
//
// The instrumented binary runs the baseline binary (sibling executable),
// merges its numbers, and emits one JSON object with per-path overhead
// percentages. Acceptance target: "disabled" overhead on the VFS write path
// stays within 5% of compiled-out.
//
// Run:  ./build/bench/trace_overhead [baseline-path]
//       ./build/bench/trace_overhead --smoke
// --smoke measures only the span microcosts and exits nonzero if the
// disabled-span residue exceeds a relaxed-load floor plus noise, or a fully
// enabled span bracket exceeds its nanosecond budget (the CI gate).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/net/network.h"
#include "src/net/stack_modular.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/vfs/vfs.h"

using namespace skern;

namespace {

// A deliberately thin in-memory FileSystem: the less work the callee does,
// the larger any VFS-layer instrumentation shows up, so this is the
// worst-case denominator for overhead.
class BenchFs : public FileSystem {
 public:
  Status Create(const std::string& path) override {
    files_[path];
    return Status::Ok();
  }
  Status Mkdir(const std::string&) override { return Status::Ok(); }
  Status Unlink(const std::string& path) override {
    files_.erase(path);
    return Status::Ok();
  }
  Status Rmdir(const std::string&) override { return Status::Ok(); }
  Status Write(const std::string& path, uint64_t offset, ByteView data) override {
    Bytes& file = files_[path];
    if (file.size() < offset + data.size()) {
      file.resize(offset + data.size());
    }
    for (size_t i = 0; i < data.size(); ++i) {
      file[offset + i] = data[i];
    }
    return Status::Ok();
  }
  Result<Bytes> Read(const std::string& path, uint64_t offset, uint64_t length) override {
    auto it = files_.find(path);
    if (it == files_.end()) {
      return Errno::kENOENT;
    }
    const Bytes& file = it->second;
    if (offset >= file.size()) {
      return Bytes{};
    }
    uint64_t take = std::min<uint64_t>(length, file.size() - offset);
    return Bytes(file.begin() + offset, file.begin() + offset + take);
  }
  Status Truncate(const std::string& path, uint64_t new_size) override {
    files_[path].resize(new_size);
    return Status::Ok();
  }
  Status Rename(const std::string&, const std::string&) override { return Status::Ok(); }
  Result<FileAttr> Stat(const std::string& path) override {
    if (path == "/") {
      return FileAttr{true, 0};
    }
    auto it = files_.find(path);
    if (it == files_.end()) {
      return Errno::kENOENT;
    }
    return FileAttr{false, it->second.size()};
  }
  Result<std::vector<std::string>> Readdir(const std::string&) override {
    return std::vector<std::string>{};
  }
  Status Sync() override { return Status::Ok(); }
  Status Fsync(const std::string&) override { return Status::Ok(); }
  std::string Name() const override { return "benchfs"; }

 private:
  std::map<std::string, Bytes> files_;
};

uint64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int kOps = 100000;
constexpr int kRepeats = 5;

// Best-of-N: on a ~60ns/op path, scheduler and frequency noise only ever
// adds time, so the minimum is the stable estimator; a median still moves
// tens of percent run-to-run on a shared machine.
double Best(const std::vector<double>& xs) {
  return *std::min_element(xs.begin(), xs.end());
}

struct PathTimes {
  double vfs_write_ns = 0;
  double vfs_read_ns = 0;
  double net_udp_ns = 0;
  double span_ns = 0;
};

constexpr int kSpanProbeOps = 1 << 20;

// The floor a dormant span site is allowed to cost: one relaxed atomic load
// and a predicted not-taken branch, measured with the same loop shape as the
// span probe. Only the compiler stands between this and zero, and it treats
// the atomic load as opaque the same way it treats the span gate.
#ifndef SKERN_OBS_COMPILED_OUT
std::atomic<uint32_t> g_floor_gate{0};

double RelaxedLoadNsPerOp() {
  std::vector<double> xs;
  uint32_t acc = 0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    uint64_t start = NowNs();
    for (int i = 0; i < kSpanProbeOps; ++i) {
      if (g_floor_gate.load(std::memory_order_relaxed) != 0) {
        ++acc;
      }
    }
    xs.push_back(static_cast<double>(NowNs() - start) / kSpanProbeOps);
  }
  if (acc != 0) {
    std::fprintf(stderr, "floor gate fired\n");  // keeps `acc` observable
  }
  return Best(xs);
}
#endif  // SKERN_OBS_COMPILED_OUT

// One empty SKERN_SPAN bracket per iteration: the begin/end pair is the
// entire body, so this is the microcost a span adds to whatever operation it
// wraps under the currently active gates.
double SpanNsPerOp() {
  std::vector<double> xs;
  for (int rep = 0; rep < kRepeats; ++rep) {
    uint64_t start = NowNs();
    for (int i = 0; i < kSpanProbeOps; ++i) {
      SKERN_SPAN("bench", "span_probe");
    }
    xs.push_back(static_cast<double>(NowNs() - start) / kSpanProbeOps);
  }
  return Best(xs);
}

// One repeat of each workload; returns ns/op per path.
PathTimes RunOnce() {
  PathTimes t;

  Vfs vfs;
  if (!vfs.Mount("/", std::make_shared<BenchFs>()).ok()) {
    std::fprintf(stderr, "mount failed\n");
    std::exit(1);
  }
  auto fd = vfs.Open("/bench", kOpenRead | kOpenWrite | kOpenCreate);
  if (!fd.ok()) {
    std::fprintf(stderr, "open failed\n");
    std::exit(1);
  }
  Bytes payload(64, 0xab);

  uint64_t start = NowNs();
  for (int i = 0; i < kOps; ++i) {
    (void)vfs.Pwrite(*fd, 0, ByteView(payload));
  }
  t.vfs_write_ns = static_cast<double>(NowNs() - start) / kOps;

  start = NowNs();
  for (int i = 0; i < kOps; ++i) {
    (void)vfs.Pread(*fd, 0, 64);
  }
  t.vfs_read_ns = static_cast<double>(NowNs() - start) / kOps;

  // UDP round trip over the modular stack: SendTo, deliver, RecvFrom.
  SimClock clock;
  Network network(clock);
  ModularNetStack sender(network, /*ip=*/1);
  ModularNetStack receiver(network, /*ip=*/2);
  (void)sender.RegisterProtocol(MakeUdpModule(network, 1));
  (void)receiver.RegisterProtocol(MakeUdpModule(network, 2));
  auto rx = receiver.Socket(kProtoUdp);
  auto tx = sender.Socket(kProtoUdp);
  if (!rx.ok() || !tx.ok() || !receiver.Bind(*rx, 99).ok()) {
    std::fprintf(stderr, "udp setup failed\n");
    std::exit(1);
  }
  start = NowNs();
  for (int i = 0; i < kOps; ++i) {
    (void)sender.SendTo(*tx, NetAddr{2, 99}, ByteView(payload));
    clock.AdvanceToNextEvent();
    (void)receiver.RecvFrom(*rx);
  }
  t.net_udp_ns = static_cast<double>(NowNs() - start) / kOps;

  return t;
}

PathTimes RunConfig() {
  RunOnce();  // warmup
  std::vector<double> w, r, n;
  for (int i = 0; i < kRepeats; ++i) {
    PathTimes t = RunOnce();
    w.push_back(t.vfs_write_ns);
    r.push_back(t.vfs_read_ns);
    n.push_back(t.net_udp_ns);
  }
  return PathTimes{Best(w), Best(r), Best(n), SpanNsPerOp()};
}

void PrintTimes(const char* indent, const PathTimes& t) {
  std::printf("%s\"vfs_write_ns_per_op\": %.1f,\n", indent, t.vfs_write_ns);
  std::printf("%s\"vfs_read_ns_per_op\": %.1f,\n", indent, t.vfs_read_ns);
  std::printf("%s\"net_udp_ns_per_op\": %.1f,\n", indent, t.net_udp_ns);
  std::printf("%s\"span_ns_per_op\": %.2f\n", indent, t.span_ns);
}

}  // namespace

#ifdef SKERN_OBS_COMPILED_OUT

// Baseline binary: macros erased at compile time. Flat JSON, parsed by the
// instrumented binary.
int main() {
  PathTimes t = RunConfig();
  std::printf("{\n  \"config\": \"compiled_out\",\n");
  PrintTimes("  ", t);
  std::printf("}\n");
  return 0;
}

#else  // instrumented

namespace {

double ParseField(const std::string& text, const std::string& key) {
  auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) {
    return 0;
  }
  pos = text.find(':', pos);
  return pos == std::string::npos ? 0 : std::strtod(text.c_str() + pos + 1, nullptr);
}

bool RunBaseline(const std::string& path, PathTimes* out) {
  FILE* pipe = popen(path.c_str(), "r");
  if (pipe == nullptr) {
    return false;
  }
  std::string text;
  char buf[256];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) {
    text += buf;
  }
  if (pclose(pipe) != 0 || text.empty()) {
    return false;
  }
  out->vfs_write_ns = ParseField(text, "vfs_write_ns_per_op");
  out->vfs_read_ns = ParseField(text, "vfs_read_ns_per_op");
  out->net_udp_ns = ParseField(text, "net_udp_ns_per_op");
  out->span_ns = ParseField(text, "span_ns_per_op");
  return out->vfs_write_ns > 0;
}

double OverheadPct(double instrumented, double baseline) {
  return baseline <= 0 ? 0 : (instrumented - baseline) / baseline * 100.0;
}

void MergeMin(PathTimes* acc, const PathTimes& t) {
  acc->vfs_write_ns = std::min(acc->vfs_write_ns, t.vfs_write_ns);
  acc->vfs_read_ns = std::min(acc->vfs_read_ns, t.vfs_read_ns);
  acc->net_udp_ns = std::min(acc->net_udp_ns, t.net_udp_ns);
  acc->span_ns = std::min(acc->span_ns, t.span_ns);
}

// Budgets for the span microcosts, enforced by --smoke in CI. The dormant
// bracket must stay within scheduler/timer noise of a bare relaxed load; a
// fully lit bracket (session + flight + histograms) gets a 100 ns budget —
// two clock reads, two ring pushes, one histogram observe.
constexpr double kDisabledSpanNoiseNs = 3.0;
constexpr double kEnabledSpanBudgetNs = 100.0;

int RunSpanSmoke() {
  obs::TraceSession::Get().Stop();
  obs::SetMetricsEnabled(false);
  obs::SetLatencyTimingEnabled(false);
  obs::SetFlightRecorderEnabled(false);
  double floor_ns = RelaxedLoadNsPerOp();
  double disabled_ns = SpanNsPerOp();

  obs::SetMetricsEnabled(true);
  obs::SetLatencyTimingEnabled(true);
  obs::SetFlightRecorderEnabled(true);
  obs::TraceSession::Get().Start();
  double enabled_ns = SpanNsPerOp();
  obs::TraceSession::Get().Stop();

  std::printf("{\n");
  std::printf("  \"benchmark\": \"trace_overhead\",\n");
  std::printf("  \"mode\": \"smoke\",\n");
  std::printf("  \"relaxed_load_ns_per_op\": %.2f,\n", floor_ns);
  std::printf("  \"span_disabled_ns_per_op\": %.2f,\n", disabled_ns);
  std::printf("  \"span_enabled_ns_per_op\": %.2f\n", enabled_ns);
  std::printf("}\n");

  bool ok = true;
  if (disabled_ns > floor_ns + kDisabledSpanNoiseNs) {
    std::fprintf(stderr, "FAIL: disabled span %.2f ns/op exceeds relaxed-load floor %.2f + %.1f ns\n",
                 disabled_ns, floor_ns, kDisabledSpanNoiseNs);
    ok = false;
  }
  if (enabled_ns > kEnabledSpanBudgetNs) {
    std::fprintf(stderr, "FAIL: enabled span %.2f ns/op exceeds %.0f ns budget\n", enabled_ns,
                 kEnabledSpanBudgetNs);
    ok = false;
  }
  return ok ? 0 : 1;
}

void PrintOverhead(const char* indent, const PathTimes& t, const PathTimes& base) {
  std::printf("%s\"vfs_write_pct\": %.2f,\n", indent, OverheadPct(t.vfs_write_ns, base.vfs_write_ns));
  std::printf("%s\"vfs_read_pct\": %.2f,\n", indent, OverheadPct(t.vfs_read_ns, base.vfs_read_ns));
  std::printf("%s\"net_udp_pct\": %.2f\n", indent, OverheadPct(t.net_udp_ns, base.net_udp_ns));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return RunSpanSmoke();
  }
  std::string baseline_path;
  if (argc > 1) {
    baseline_path = argv[1];
  } else {
    baseline_path = argv[0];
    auto slash = baseline_path.rfind('/');
    baseline_path = baseline_path.substr(0, slash == std::string::npos ? 0 : slash + 1) +
                    "trace_overhead_baseline";
  }

  // The baseline is a separate process, so it necessarily samples a
  // different slice of machine noise than the in-process configs. Sample it
  // three times spread across the run and keep the field-wise best, so one
  // noisy window can't skew every overhead percentage.
  PathTimes base{};
  bool have_baseline = RunBaseline(baseline_path, &base);

  // "disabled": every runtime gate off — the cost of having instrumentation
  // compiled in but dormant (the acceptance configuration). The flight
  // recorder defaults on, so it must be gated off explicitly here.
  obs::TraceSession::Get().Stop();
  obs::SetMetricsEnabled(false);
  obs::SetLatencyTimingEnabled(false);
  obs::SetFlightRecorderEnabled(false);
  PathTimes disabled = RunConfig();

  // "counters": event counters on, latency timing off.
  obs::SetMetricsEnabled(true);
  PathTimes counters = RunConfig();

  if (have_baseline) {
    PathTimes again{};
    if (RunBaseline(baseline_path, &again)) {
      MergeMin(&base, again);
    }
  }

  // "metrics": latency histograms on.
  obs::SetLatencyTimingEnabled(true);
  PathTimes metrics = RunConfig();

  // "flight": the always-on last-breath ring too — the production default.
  obs::SetFlightRecorderEnabled(true);
  PathTimes flight = RunConfig();

  // "enabled": live trace session. The ring saturates under this much
  // traffic, so this measures sustained-collection cost with drops.
  obs::TraceSession::Get().Start();
  PathTimes enabled = RunConfig();
  obs::TraceSession::Get().Stop();

  if (have_baseline) {
    PathTimes again{};
    if (RunBaseline(baseline_path, &again)) {
      MergeMin(&base, again);
    }
  }

  std::printf("{\n");
  std::printf("  \"benchmark\": \"trace_overhead\",\n");
  std::printf("  \"ops_per_repeat\": %d,\n", kOps);
  std::printf("  \"repeats\": %d,\n", kRepeats);
  std::printf("  \"configs\": {\n");
  if (have_baseline) {
    std::printf("    \"compiled_out\": {\n");
    PrintTimes("      ", base);
    std::printf("    },\n");
  }
  std::printf("    \"disabled\": {\n");
  PrintTimes("      ", disabled);
  std::printf("    },\n");
  std::printf("    \"counters\": {\n");
  PrintTimes("      ", counters);
  std::printf("    },\n");
  std::printf("    \"metrics\": {\n");
  PrintTimes("      ", metrics);
  std::printf("    },\n");
  std::printf("    \"flight\": {\n");
  PrintTimes("      ", flight);
  std::printf("    },\n");
  std::printf("    \"enabled\": {\n");
  PrintTimes("      ", enabled);
  std::printf("    }\n");
  std::printf("  }");
  if (have_baseline) {
    std::printf(",\n  \"overhead_vs_compiled_out\": {\n");
    std::printf("    \"disabled\": {\n");
    PrintOverhead("      ", disabled, base);
    std::printf("    },\n");
    std::printf("    \"counters\": {\n");
    PrintOverhead("      ", counters, base);
    std::printf("    },\n");
    std::printf("    \"metrics\": {\n");
    PrintOverhead("      ", metrics, base);
    std::printf("    },\n");
    std::printf("    \"flight\": {\n");
    PrintOverhead("      ", flight, base);
    std::printf("    },\n");
    std::printf("    \"enabled\": {\n");
    PrintOverhead("      ", enabled, base);
    std::printf("    }\n");
    std::printf("  }\n");
  } else {
    std::printf(",\n  \"baseline_error\": \"could not run %s\"\n", baseline_path.c_str());
  }
  std::printf("}\n");
  return 0;
}

#endif  // SKERN_OBS_COMPILED_OUT
