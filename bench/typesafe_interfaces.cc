// E8 — the §4.2 claim that type-safe interfaces cost nothing: ERR_PTR
// punning vs Result<T>, and void* + cast vs typed calls. Expected: the typed
// forms are at parity (the compiler sees through both).
#include <benchmark/benchmark.h>

#include "src/base/err_ptr.h"
#include "src/base/result.h"

namespace skern {
namespace {

uint64_t g_values[64];

// --- pointer-or-error return, the C way ---
uint64_t* LookupErrPtr(uint64_t key) {
  if ((key & 7) == 0) {
    return ErrPtr<uint64_t>(Errno::kENOENT);  // error cast into the pointer
  }
  return &g_values[key % 64];
}

void BM_ErrPtrReturn(benchmark::State& state) {
  uint64_t key = 1;
  uint64_t sink = 0;
  for (auto _ : state) {
    uint64_t* p = LookupErrPtr(key++);
    if (!IsErr(p)) {
      sink += *p;
    } else {
      sink += static_cast<uint64_t>(PtrErr(p));
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_ErrPtrReturn);

// --- the same contract as a typed union ---
Result<uint64_t*> LookupResult(uint64_t key) {
  if ((key & 7) == 0) {
    return Errno::kENOENT;
  }
  return &g_values[key % 64];
}

void BM_ResultReturn(benchmark::State& state) {
  uint64_t key = 1;
  uint64_t sink = 0;
  for (auto _ : state) {
    Result<uint64_t*> r = LookupResult(key++);
    if (r.ok()) {
      sink += *r.value();
    } else {
      sink += static_cast<uint64_t>(r.error());
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_ResultReturn);

// --- out-parameter + int errno, the other C way ---
int LookupOutParam(uint64_t key, uint64_t** out) {
  if ((key & 7) == 0) {
    return -static_cast<int>(Errno::kENOENT);
  }
  *out = &g_values[key % 64];
  return 0;
}

void BM_OutParamReturn(benchmark::State& state) {
  uint64_t key = 1;
  uint64_t sink = 0;
  for (auto _ : state) {
    uint64_t* p = nullptr;
    int err = LookupOutParam(key++, &p);
    if (err == 0) {
      sink += *p;
    } else {
      sink += static_cast<uint64_t>(-err);
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_OutParamReturn);

// --- void* callback payloads vs typed generics (the write_begin cookie) ---

struct Cookie {
  uint64_t a;
  uint64_t b;
};

uint64_t VoidPtrCallback(void* data) {
  auto* cookie = static_cast<Cookie*>(data);  // trusted cast
  return cookie->a + cookie->b;
}

void BM_VoidPtrCookie(benchmark::State& state) {
  Cookie cookie{1, 2};
  uint64_t (*cb)(void*) = VoidPtrCallback;
  benchmark::DoNotOptimize(cb);
  uint64_t sink = 0;
  for (auto _ : state) {
    sink += cb(&cookie);
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_VoidPtrCookie);

template <typename T>
uint64_t TypedCallback(T& data) {
  return data.a + data.b;
}

void BM_TypedCookie(benchmark::State& state) {
  Cookie cookie{1, 2};
  uint64_t (*cb)(Cookie&) = TypedCallback<Cookie>;
  benchmark::DoNotOptimize(cb);
  uint64_t sink = 0;
  for (auto _ : state) {
    sink += cb(cookie);
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_TypedCookie);

}  // namespace
}  // namespace skern

BENCHMARK_MAIN();
