// E9 extension — macro workloads (filebench-style personalities, the kind of
// evaluation Bento ran) across the safety ladder: fileserver, varmail,
// webserver, and metadata churn on legacyfs / safefs / specfs / memfs.
//
// Expected shape: the safe stack stays competitive on every personality
// except varmail, whose fsync-per-message pattern pays the journaling tax —
// the same trade-off E13 quantifies at the journal level.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/block/block_device.h"
#include "src/block/buffer_cache.h"
#include "src/core/workload.h"
#include "src/fs/legacyfs/legacyfs.h"
#include "src/fs/memfs/memfs.h"
#include "src/fs/safefs/safefs.h"
#include "src/fs/specfs/specfs.h"
#include "src/spec/refinement.h"

namespace skern {
namespace {

constexpr uint64_t kDiskBlocks = 4096;  // 16 MiB: room for the working sets
constexpr uint64_t kInodes = 256;

struct Stack {
  std::unique_ptr<RamDisk> disk;
  std::unique_ptr<BufferCache> cache;
  std::shared_ptr<FileSystem> fs;
  RefinementMode refinement = RefinementMode::kEnforcing;
};

Stack MakeStack(const std::string& kind) {
  Stack stack;
  stack.disk = std::make_unique<RamDisk>(kDiskBlocks, 1);
  if (kind == "legacyfs") {
    stack.cache = std::make_unique<BufferCache>(*stack.disk, 2048);
    FsGeometry geo = MakeGeometry(kDiskBlocks, kInodes, 0);
    stack.fs = MakeLegacyFs(*stack.cache, &geo, true);
  } else if (kind == "memfs") {
    stack.fs = std::make_shared<MemFs>();
  } else {
    auto safefs = SafeFs::Format(*stack.disk, kInodes, 512).value();
    if (kind == "safefs") {
      stack.fs = safefs;
    } else {
      stack.fs = std::make_shared<SpecFs>(safefs);
      stack.refinement = RefinementMode::kEnforcing;
    }
  }
  return stack;
}

void BenchWorkload(benchmark::State& state, const std::string& fs_kind, WorkloadKind kind) {
  Stack stack = MakeStack(fs_kind);
  ScopedRefinementMode mode(stack.refinement);
  WorkloadConfig config;
  config.kind = kind;
  config.seed = 7;
  config.file_population = 24;
  config.mean_file_size = 4096;
  WorkloadDriver driver(*stack.fs, config);
  SKERN_CHECK(driver.Setup().ok());
  for (auto _ : state) {
    driver.Step();
  }
  const auto& result = driver.result();
  state.counters["errors"] = static_cast<double>(result.errors);
  state.SetBytesProcessed(
      static_cast<int64_t>(result.bytes_read + result.bytes_written));
}

void RegisterAll() {
  const char* fs_kinds[] = {"legacyfs", "safefs", "specfs", "memfs"};
  const WorkloadKind workloads[] = {WorkloadKind::kFileserver, WorkloadKind::kVarmail,
                                    WorkloadKind::kWebserver, WorkloadKind::kMetadata};
  for (WorkloadKind workload : workloads) {
    for (const char* fs_kind : fs_kinds) {
      std::string name =
          std::string("BM_") + WorkloadKindName(workload) + "/" + fs_kind;
      std::string kind = fs_kind;
      benchmark::RegisterBenchmark(name.c_str(), [kind, workload](benchmark::State& s) {
        BenchWorkload(s, kind, workload);
      });
    }
  }
}

}  // namespace
}  // namespace skern

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  skern::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
