file(REMOVE_RECURSE
  "CMakeFiles/fig1_landscape.dir/fig1_landscape.cc.o"
  "CMakeFiles/fig1_landscape.dir/fig1_landscape.cc.o.d"
  "fig1_landscape"
  "fig1_landscape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
