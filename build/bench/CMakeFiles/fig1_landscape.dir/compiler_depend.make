# Empty compiler generated dependencies file for fig1_landscape.
# This may be replaced when dependencies are built.
