file(REMOVE_RECURSE
  "CMakeFiles/fig2a_cves_per_year.dir/fig2a_cves_per_year.cc.o"
  "CMakeFiles/fig2a_cves_per_year.dir/fig2a_cves_per_year.cc.o.d"
  "fig2a_cves_per_year"
  "fig2a_cves_per_year.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_cves_per_year.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
