# Empty dependencies file for fig2a_cves_per_year.
# This may be replaced when dependencies are built.
