file(REMOVE_RECURSE
  "CMakeFiles/fig2b_ext4_cdf.dir/fig2b_ext4_cdf.cc.o"
  "CMakeFiles/fig2b_ext4_cdf.dir/fig2b_ext4_cdf.cc.o.d"
  "fig2b_ext4_cdf"
  "fig2b_ext4_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_ext4_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
