# Empty dependencies file for fig2b_ext4_cdf.
# This may be replaced when dependencies are built.
