file(REMOVE_RECURSE
  "CMakeFiles/fig2c_bugs_per_loc.dir/fig2c_bugs_per_loc.cc.o"
  "CMakeFiles/fig2c_bugs_per_loc.dir/fig2c_bugs_per_loc.cc.o.d"
  "fig2c_bugs_per_loc"
  "fig2c_bugs_per_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2c_bugs_per_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
