# Empty compiler generated dependencies file for fig2c_bugs_per_loc.
# This may be replaced when dependencies are built.
