file(REMOVE_RECURSE
  "CMakeFiles/fs_comparison.dir/fs_comparison.cc.o"
  "CMakeFiles/fs_comparison.dir/fs_comparison.cc.o.d"
  "fs_comparison"
  "fs_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
