# Empty compiler generated dependencies file for fs_comparison.
# This may be replaced when dependencies are built.
