file(REMOVE_RECURSE
  "CMakeFiles/modular_overhead.dir/modular_overhead.cc.o"
  "CMakeFiles/modular_overhead.dir/modular_overhead.cc.o.d"
  "modular_overhead"
  "modular_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modular_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
