# Empty dependencies file for modular_overhead.
# This may be replaced when dependencies are built.
