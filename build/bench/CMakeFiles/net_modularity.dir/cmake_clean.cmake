file(REMOVE_RECURSE
  "CMakeFiles/net_modularity.dir/net_modularity.cc.o"
  "CMakeFiles/net_modularity.dir/net_modularity.cc.o.d"
  "net_modularity"
  "net_modularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_modularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
