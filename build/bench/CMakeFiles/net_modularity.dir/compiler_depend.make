# Empty compiler generated dependencies file for net_modularity.
# This may be replaced when dependencies are built.
