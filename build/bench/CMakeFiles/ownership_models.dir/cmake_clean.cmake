file(REMOVE_RECURSE
  "CMakeFiles/ownership_models.dir/ownership_models.cc.o"
  "CMakeFiles/ownership_models.dir/ownership_models.cc.o.d"
  "ownership_models"
  "ownership_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ownership_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
