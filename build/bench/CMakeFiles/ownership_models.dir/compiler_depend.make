# Empty compiler generated dependencies file for ownership_models.
# This may be replaced when dependencies are built.
