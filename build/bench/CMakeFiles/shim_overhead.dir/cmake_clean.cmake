file(REMOVE_RECURSE
  "CMakeFiles/shim_overhead.dir/shim_overhead.cc.o"
  "CMakeFiles/shim_overhead.dir/shim_overhead.cc.o.d"
  "shim_overhead"
  "shim_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shim_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
