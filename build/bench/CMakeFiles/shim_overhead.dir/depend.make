# Empty dependencies file for shim_overhead.
# This may be replaced when dependencies are built.
