file(REMOVE_RECURSE
  "CMakeFiles/table1_cwe_categorization.dir/table1_cwe_categorization.cc.o"
  "CMakeFiles/table1_cwe_categorization.dir/table1_cwe_categorization.cc.o.d"
  "table1_cwe_categorization"
  "table1_cwe_categorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cwe_categorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
