# Empty compiler generated dependencies file for table1_cwe_categorization.
# This may be replaced when dependencies are built.
