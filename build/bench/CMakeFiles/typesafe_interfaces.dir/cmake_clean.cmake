file(REMOVE_RECURSE
  "CMakeFiles/typesafe_interfaces.dir/typesafe_interfaces.cc.o"
  "CMakeFiles/typesafe_interfaces.dir/typesafe_interfaces.cc.o.d"
  "typesafe_interfaces"
  "typesafe_interfaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typesafe_interfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
