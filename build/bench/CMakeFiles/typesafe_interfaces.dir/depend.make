# Empty dependencies file for typesafe_interfaces.
# This may be replaced when dependencies are built.
