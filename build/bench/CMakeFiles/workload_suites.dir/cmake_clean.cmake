file(REMOVE_RECURSE
  "CMakeFiles/workload_suites.dir/workload_suites.cc.o"
  "CMakeFiles/workload_suites.dir/workload_suites.cc.o.d"
  "workload_suites"
  "workload_suites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_suites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
