# Empty dependencies file for workload_suites.
# This may be replaced when dependencies are built.
