# Empty dependencies file for example_crash_consistency.
# This may be replaced when dependencies are built.
