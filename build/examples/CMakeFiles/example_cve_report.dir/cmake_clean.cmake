file(REMOVE_RECURSE
  "CMakeFiles/example_cve_report.dir/cve_report.cpp.o"
  "CMakeFiles/example_cve_report.dir/cve_report.cpp.o.d"
  "cve_report"
  "cve_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cve_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
