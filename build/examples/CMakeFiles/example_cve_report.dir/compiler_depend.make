# Empty compiler generated dependencies file for example_cve_report.
# This may be replaced when dependencies are built.
