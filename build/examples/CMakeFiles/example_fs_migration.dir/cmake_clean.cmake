file(REMOVE_RECURSE
  "CMakeFiles/example_fs_migration.dir/fs_migration.cpp.o"
  "CMakeFiles/example_fs_migration.dir/fs_migration.cpp.o.d"
  "fs_migration"
  "fs_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fs_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
