file(REMOVE_RECURSE
  "CMakeFiles/example_introspection.dir/introspection.cpp.o"
  "CMakeFiles/example_introspection.dir/introspection.cpp.o.d"
  "introspection"
  "introspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_introspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
