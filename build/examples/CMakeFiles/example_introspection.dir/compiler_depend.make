# Empty compiler generated dependencies file for example_introspection.
# This may be replaced when dependencies are built.
