file(REMOVE_RECURSE
  "CMakeFiles/example_net_modularity.dir/net_modularity.cpp.o"
  "CMakeFiles/example_net_modularity.dir/net_modularity.cpp.o.d"
  "net_modularity"
  "net_modularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_net_modularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
