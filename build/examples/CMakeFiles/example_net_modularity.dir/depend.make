# Empty dependencies file for example_net_modularity.
# This may be replaced when dependencies are built.
