# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("sync")
subdirs("ownership")
subdirs("core")
subdirs("spec")
subdirs("block")
subdirs("vfs")
subdirs("fs")
subdirs("net")
subdirs("cve")
subdirs("faultinject")
