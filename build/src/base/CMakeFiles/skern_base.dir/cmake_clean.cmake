file(REMOVE_RECURSE
  "CMakeFiles/skern_base.dir/bytes.cc.o"
  "CMakeFiles/skern_base.dir/bytes.cc.o.d"
  "CMakeFiles/skern_base.dir/log.cc.o"
  "CMakeFiles/skern_base.dir/log.cc.o.d"
  "CMakeFiles/skern_base.dir/panic.cc.o"
  "CMakeFiles/skern_base.dir/panic.cc.o.d"
  "CMakeFiles/skern_base.dir/rng.cc.o"
  "CMakeFiles/skern_base.dir/rng.cc.o.d"
  "CMakeFiles/skern_base.dir/sim_clock.cc.o"
  "CMakeFiles/skern_base.dir/sim_clock.cc.o.d"
  "CMakeFiles/skern_base.dir/status.cc.o"
  "CMakeFiles/skern_base.dir/status.cc.o.d"
  "libskern_base.a"
  "libskern_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skern_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
