file(REMOVE_RECURSE
  "libskern_base.a"
)
