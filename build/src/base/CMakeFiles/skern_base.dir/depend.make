# Empty dependencies file for skern_base.
# This may be replaced when dependencies are built.
