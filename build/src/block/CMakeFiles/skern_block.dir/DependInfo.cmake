
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/block/block_device.cc" "src/block/CMakeFiles/skern_block.dir/block_device.cc.o" "gcc" "src/block/CMakeFiles/skern_block.dir/block_device.cc.o.d"
  "/root/repo/src/block/buffer_cache.cc" "src/block/CMakeFiles/skern_block.dir/buffer_cache.cc.o" "gcc" "src/block/CMakeFiles/skern_block.dir/buffer_cache.cc.o.d"
  "/root/repo/src/block/buffer_head.cc" "src/block/CMakeFiles/skern_block.dir/buffer_head.cc.o" "gcc" "src/block/CMakeFiles/skern_block.dir/buffer_head.cc.o.d"
  "/root/repo/src/block/checked_block_device.cc" "src/block/CMakeFiles/skern_block.dir/checked_block_device.cc.o" "gcc" "src/block/CMakeFiles/skern_block.dir/checked_block_device.cc.o.d"
  "/root/repo/src/block/journal.cc" "src/block/CMakeFiles/skern_block.dir/journal.cc.o" "gcc" "src/block/CMakeFiles/skern_block.dir/journal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/skern_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/skern_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/skern_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
