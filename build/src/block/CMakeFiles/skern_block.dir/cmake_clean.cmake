file(REMOVE_RECURSE
  "CMakeFiles/skern_block.dir/block_device.cc.o"
  "CMakeFiles/skern_block.dir/block_device.cc.o.d"
  "CMakeFiles/skern_block.dir/buffer_cache.cc.o"
  "CMakeFiles/skern_block.dir/buffer_cache.cc.o.d"
  "CMakeFiles/skern_block.dir/buffer_head.cc.o"
  "CMakeFiles/skern_block.dir/buffer_head.cc.o.d"
  "CMakeFiles/skern_block.dir/checked_block_device.cc.o"
  "CMakeFiles/skern_block.dir/checked_block_device.cc.o.d"
  "CMakeFiles/skern_block.dir/journal.cc.o"
  "CMakeFiles/skern_block.dir/journal.cc.o.d"
  "libskern_block.a"
  "libskern_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skern_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
