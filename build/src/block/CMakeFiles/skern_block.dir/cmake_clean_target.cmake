file(REMOVE_RECURSE
  "libskern_block.a"
)
