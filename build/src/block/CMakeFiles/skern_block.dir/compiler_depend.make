# Empty compiler generated dependencies file for skern_block.
# This may be replaced when dependencies are built.
