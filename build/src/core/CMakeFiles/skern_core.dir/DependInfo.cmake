
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/landscape.cc" "src/core/CMakeFiles/skern_core.dir/landscape.cc.o" "gcc" "src/core/CMakeFiles/skern_core.dir/landscape.cc.o.d"
  "/root/repo/src/core/module.cc" "src/core/CMakeFiles/skern_core.dir/module.cc.o" "gcc" "src/core/CMakeFiles/skern_core.dir/module.cc.o.d"
  "/root/repo/src/core/safety_level.cc" "src/core/CMakeFiles/skern_core.dir/safety_level.cc.o" "gcc" "src/core/CMakeFiles/skern_core.dir/safety_level.cc.o.d"
  "/root/repo/src/core/shim.cc" "src/core/CMakeFiles/skern_core.dir/shim.cc.o" "gcc" "src/core/CMakeFiles/skern_core.dir/shim.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/core/CMakeFiles/skern_core.dir/workload.cc.o" "gcc" "src/core/CMakeFiles/skern_core.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/skern_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
