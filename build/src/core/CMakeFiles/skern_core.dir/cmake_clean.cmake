file(REMOVE_RECURSE
  "CMakeFiles/skern_core.dir/landscape.cc.o"
  "CMakeFiles/skern_core.dir/landscape.cc.o.d"
  "CMakeFiles/skern_core.dir/module.cc.o"
  "CMakeFiles/skern_core.dir/module.cc.o.d"
  "CMakeFiles/skern_core.dir/safety_level.cc.o"
  "CMakeFiles/skern_core.dir/safety_level.cc.o.d"
  "CMakeFiles/skern_core.dir/shim.cc.o"
  "CMakeFiles/skern_core.dir/shim.cc.o.d"
  "CMakeFiles/skern_core.dir/workload.cc.o"
  "CMakeFiles/skern_core.dir/workload.cc.o.d"
  "libskern_core.a"
  "libskern_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skern_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
