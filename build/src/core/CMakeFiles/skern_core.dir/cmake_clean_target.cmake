file(REMOVE_RECURSE
  "libskern_core.a"
)
