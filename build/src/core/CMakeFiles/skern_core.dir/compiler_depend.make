# Empty compiler generated dependencies file for skern_core.
# This may be replaced when dependencies are built.
