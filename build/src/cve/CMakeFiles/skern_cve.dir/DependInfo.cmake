
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cve/analysis.cc" "src/cve/CMakeFiles/skern_cve.dir/analysis.cc.o" "gcc" "src/cve/CMakeFiles/skern_cve.dir/analysis.cc.o.d"
  "/root/repo/src/cve/corpus.cc" "src/cve/CMakeFiles/skern_cve.dir/corpus.cc.o" "gcc" "src/cve/CMakeFiles/skern_cve.dir/corpus.cc.o.d"
  "/root/repo/src/cve/cwe.cc" "src/cve/CMakeFiles/skern_cve.dir/cwe.cc.o" "gcc" "src/cve/CMakeFiles/skern_cve.dir/cwe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/skern_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
