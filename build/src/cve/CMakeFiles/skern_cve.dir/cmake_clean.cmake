file(REMOVE_RECURSE
  "CMakeFiles/skern_cve.dir/analysis.cc.o"
  "CMakeFiles/skern_cve.dir/analysis.cc.o.d"
  "CMakeFiles/skern_cve.dir/corpus.cc.o"
  "CMakeFiles/skern_cve.dir/corpus.cc.o.d"
  "CMakeFiles/skern_cve.dir/cwe.cc.o"
  "CMakeFiles/skern_cve.dir/cwe.cc.o.d"
  "libskern_cve.a"
  "libskern_cve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skern_cve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
