file(REMOVE_RECURSE
  "libskern_cve.a"
)
