# Empty compiler generated dependencies file for skern_cve.
# This may be replaced when dependencies are built.
