
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faultinject/harness.cc" "src/faultinject/CMakeFiles/skern_faultinject.dir/harness.cc.o" "gcc" "src/faultinject/CMakeFiles/skern_faultinject.dir/harness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/skern_base.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/skern_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/cve/CMakeFiles/skern_cve.dir/DependInfo.cmake"
  "/root/repo/build/src/ownership/CMakeFiles/skern_ownership.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/skern_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/skern_block.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/skern_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/skern_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/skern_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
