file(REMOVE_RECURSE
  "CMakeFiles/skern_faultinject.dir/harness.cc.o"
  "CMakeFiles/skern_faultinject.dir/harness.cc.o.d"
  "libskern_faultinject.a"
  "libskern_faultinject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skern_faultinject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
