file(REMOVE_RECURSE
  "libskern_faultinject.a"
)
