# Empty dependencies file for skern_faultinject.
# This may be replaced when dependencies are built.
