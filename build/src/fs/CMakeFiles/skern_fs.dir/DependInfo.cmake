
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/layout.cc" "src/fs/CMakeFiles/skern_fs.dir/layout.cc.o" "gcc" "src/fs/CMakeFiles/skern_fs.dir/layout.cc.o.d"
  "/root/repo/src/fs/legacyfs/legacyfs.cc" "src/fs/CMakeFiles/skern_fs.dir/legacyfs/legacyfs.cc.o" "gcc" "src/fs/CMakeFiles/skern_fs.dir/legacyfs/legacyfs.cc.o.d"
  "/root/repo/src/fs/memfs/memfs.cc" "src/fs/CMakeFiles/skern_fs.dir/memfs/memfs.cc.o" "gcc" "src/fs/CMakeFiles/skern_fs.dir/memfs/memfs.cc.o.d"
  "/root/repo/src/fs/procfs/procfs.cc" "src/fs/CMakeFiles/skern_fs.dir/procfs/procfs.cc.o" "gcc" "src/fs/CMakeFiles/skern_fs.dir/procfs/procfs.cc.o.d"
  "/root/repo/src/fs/safefs/safefs.cc" "src/fs/CMakeFiles/skern_fs.dir/safefs/safefs.cc.o" "gcc" "src/fs/CMakeFiles/skern_fs.dir/safefs/safefs.cc.o.d"
  "/root/repo/src/fs/specfs/specfs.cc" "src/fs/CMakeFiles/skern_fs.dir/specfs/specfs.cc.o" "gcc" "src/fs/CMakeFiles/skern_fs.dir/specfs/specfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/skern_base.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/skern_block.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/skern_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/ownership/CMakeFiles/skern_ownership.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/skern_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/skern_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/skern_sync.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
