file(REMOVE_RECURSE
  "CMakeFiles/skern_fs.dir/layout.cc.o"
  "CMakeFiles/skern_fs.dir/layout.cc.o.d"
  "CMakeFiles/skern_fs.dir/legacyfs/legacyfs.cc.o"
  "CMakeFiles/skern_fs.dir/legacyfs/legacyfs.cc.o.d"
  "CMakeFiles/skern_fs.dir/memfs/memfs.cc.o"
  "CMakeFiles/skern_fs.dir/memfs/memfs.cc.o.d"
  "CMakeFiles/skern_fs.dir/procfs/procfs.cc.o"
  "CMakeFiles/skern_fs.dir/procfs/procfs.cc.o.d"
  "CMakeFiles/skern_fs.dir/safefs/safefs.cc.o"
  "CMakeFiles/skern_fs.dir/safefs/safefs.cc.o.d"
  "CMakeFiles/skern_fs.dir/specfs/specfs.cc.o"
  "CMakeFiles/skern_fs.dir/specfs/specfs.cc.o.d"
  "libskern_fs.a"
  "libskern_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skern_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
