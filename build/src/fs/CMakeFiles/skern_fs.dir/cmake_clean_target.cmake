file(REMOVE_RECURSE
  "libskern_fs.a"
)
