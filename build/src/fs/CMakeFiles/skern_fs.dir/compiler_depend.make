# Empty compiler generated dependencies file for skern_fs.
# This may be replaced when dependencies are built.
