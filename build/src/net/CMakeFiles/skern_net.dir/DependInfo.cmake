
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/skern_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/skern_net.dir/network.cc.o.d"
  "/root/repo/src/net/stack_modular.cc" "src/net/CMakeFiles/skern_net.dir/stack_modular.cc.o" "gcc" "src/net/CMakeFiles/skern_net.dir/stack_modular.cc.o.d"
  "/root/repo/src/net/stack_monolithic.cc" "src/net/CMakeFiles/skern_net.dir/stack_monolithic.cc.o" "gcc" "src/net/CMakeFiles/skern_net.dir/stack_monolithic.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/skern_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/skern_net.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/skern_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
