file(REMOVE_RECURSE
  "CMakeFiles/skern_net.dir/network.cc.o"
  "CMakeFiles/skern_net.dir/network.cc.o.d"
  "CMakeFiles/skern_net.dir/stack_modular.cc.o"
  "CMakeFiles/skern_net.dir/stack_modular.cc.o.d"
  "CMakeFiles/skern_net.dir/stack_monolithic.cc.o"
  "CMakeFiles/skern_net.dir/stack_monolithic.cc.o.d"
  "CMakeFiles/skern_net.dir/tcp.cc.o"
  "CMakeFiles/skern_net.dir/tcp.cc.o.d"
  "libskern_net.a"
  "libskern_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skern_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
