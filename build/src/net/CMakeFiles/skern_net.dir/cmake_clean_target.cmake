file(REMOVE_RECURSE
  "libskern_net.a"
)
