# Empty dependencies file for skern_net.
# This may be replaced when dependencies are built.
