
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ownership/leak_detector.cc" "src/ownership/CMakeFiles/skern_ownership.dir/leak_detector.cc.o" "gcc" "src/ownership/CMakeFiles/skern_ownership.dir/leak_detector.cc.o.d"
  "/root/repo/src/ownership/ownership.cc" "src/ownership/CMakeFiles/skern_ownership.dir/ownership.cc.o" "gcc" "src/ownership/CMakeFiles/skern_ownership.dir/ownership.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/skern_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
