file(REMOVE_RECURSE
  "CMakeFiles/skern_ownership.dir/leak_detector.cc.o"
  "CMakeFiles/skern_ownership.dir/leak_detector.cc.o.d"
  "CMakeFiles/skern_ownership.dir/ownership.cc.o"
  "CMakeFiles/skern_ownership.dir/ownership.cc.o.d"
  "libskern_ownership.a"
  "libskern_ownership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skern_ownership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
