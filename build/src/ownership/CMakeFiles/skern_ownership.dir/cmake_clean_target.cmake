file(REMOVE_RECURSE
  "libskern_ownership.a"
)
