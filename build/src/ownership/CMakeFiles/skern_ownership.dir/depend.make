# Empty dependencies file for skern_ownership.
# This may be replaced when dependencies are built.
