file(REMOVE_RECURSE
  "CMakeFiles/skern_spec.dir/fs_model.cc.o"
  "CMakeFiles/skern_spec.dir/fs_model.cc.o.d"
  "CMakeFiles/skern_spec.dir/refinement.cc.o"
  "CMakeFiles/skern_spec.dir/refinement.cc.o.d"
  "CMakeFiles/skern_spec.dir/trace.cc.o"
  "CMakeFiles/skern_spec.dir/trace.cc.o.d"
  "libskern_spec.a"
  "libskern_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skern_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
