file(REMOVE_RECURSE
  "libskern_spec.a"
)
