# Empty compiler generated dependencies file for skern_spec.
# This may be replaced when dependencies are built.
