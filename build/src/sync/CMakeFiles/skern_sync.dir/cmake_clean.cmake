file(REMOVE_RECURSE
  "CMakeFiles/skern_sync.dir/lock_registry.cc.o"
  "CMakeFiles/skern_sync.dir/lock_registry.cc.o.d"
  "libskern_sync.a"
  "libskern_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skern_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
