file(REMOVE_RECURSE
  "libskern_sync.a"
)
