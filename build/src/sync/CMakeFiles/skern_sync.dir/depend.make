# Empty dependencies file for skern_sync.
# This may be replaced when dependencies are built.
