file(REMOVE_RECURSE
  "CMakeFiles/skern_vfs.dir/legacy_adapter.cc.o"
  "CMakeFiles/skern_vfs.dir/legacy_adapter.cc.o.d"
  "CMakeFiles/skern_vfs.dir/vfs.cc.o"
  "CMakeFiles/skern_vfs.dir/vfs.cc.o.d"
  "libskern_vfs.a"
  "libskern_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skern_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
