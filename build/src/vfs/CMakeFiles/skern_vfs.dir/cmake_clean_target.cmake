file(REMOVE_RECURSE
  "libskern_vfs.a"
)
