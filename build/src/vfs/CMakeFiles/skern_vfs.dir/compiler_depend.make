# Empty compiler generated dependencies file for skern_vfs.
# This may be replaced when dependencies are built.
