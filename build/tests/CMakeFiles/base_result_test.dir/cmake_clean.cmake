file(REMOVE_RECURSE
  "CMakeFiles/base_result_test.dir/base_result_test.cc.o"
  "CMakeFiles/base_result_test.dir/base_result_test.cc.o.d"
  "base_result_test"
  "base_result_test.pdb"
  "base_result_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_result_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
