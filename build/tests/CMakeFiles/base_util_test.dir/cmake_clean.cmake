file(REMOVE_RECURSE
  "CMakeFiles/base_util_test.dir/base_util_test.cc.o"
  "CMakeFiles/base_util_test.dir/base_util_test.cc.o.d"
  "base_util_test"
  "base_util_test.pdb"
  "base_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
