file(REMOVE_RECURSE
  "CMakeFiles/legacyfs_test.dir/legacyfs_test.cc.o"
  "CMakeFiles/legacyfs_test.dir/legacyfs_test.cc.o.d"
  "legacyfs_test"
  "legacyfs_test.pdb"
  "legacyfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacyfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
