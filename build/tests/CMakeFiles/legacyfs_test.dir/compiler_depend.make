# Empty compiler generated dependencies file for legacyfs_test.
# This may be replaced when dependencies are built.
