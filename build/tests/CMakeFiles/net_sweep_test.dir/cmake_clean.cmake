file(REMOVE_RECURSE
  "CMakeFiles/net_sweep_test.dir/net_sweep_test.cc.o"
  "CMakeFiles/net_sweep_test.dir/net_sweep_test.cc.o.d"
  "net_sweep_test"
  "net_sweep_test.pdb"
  "net_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
