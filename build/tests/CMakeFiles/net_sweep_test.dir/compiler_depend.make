# Empty compiler generated dependencies file for net_sweep_test.
# This may be replaced when dependencies are built.
