file(REMOVE_RECURSE
  "CMakeFiles/ownership_property_test.dir/ownership_property_test.cc.o"
  "CMakeFiles/ownership_property_test.dir/ownership_property_test.cc.o.d"
  "ownership_property_test"
  "ownership_property_test.pdb"
  "ownership_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ownership_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
