# Empty dependencies file for ownership_property_test.
# This may be replaced when dependencies are built.
