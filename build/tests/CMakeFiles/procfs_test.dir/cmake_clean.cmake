file(REMOVE_RECURSE
  "CMakeFiles/procfs_test.dir/procfs_test.cc.o"
  "CMakeFiles/procfs_test.dir/procfs_test.cc.o.d"
  "procfs_test"
  "procfs_test.pdb"
  "procfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
