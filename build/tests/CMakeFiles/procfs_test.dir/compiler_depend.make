# Empty compiler generated dependencies file for procfs_test.
# This may be replaced when dependencies are built.
