file(REMOVE_RECURSE
  "CMakeFiles/safefs_test.dir/safefs_test.cc.o"
  "CMakeFiles/safefs_test.dir/safefs_test.cc.o.d"
  "safefs_test"
  "safefs_test.pdb"
  "safefs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safefs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
