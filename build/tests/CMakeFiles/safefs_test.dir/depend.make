# Empty dependencies file for safefs_test.
# This may be replaced when dependencies are built.
