file(REMOVE_RECURSE
  "CMakeFiles/spec_evolution_test.dir/spec_evolution_test.cc.o"
  "CMakeFiles/spec_evolution_test.dir/spec_evolution_test.cc.o.d"
  "spec_evolution_test"
  "spec_evolution_test.pdb"
  "spec_evolution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_evolution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
