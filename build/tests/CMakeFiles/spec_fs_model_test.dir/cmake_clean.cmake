file(REMOVE_RECURSE
  "CMakeFiles/spec_fs_model_test.dir/spec_fs_model_test.cc.o"
  "CMakeFiles/spec_fs_model_test.dir/spec_fs_model_test.cc.o.d"
  "spec_fs_model_test"
  "spec_fs_model_test.pdb"
  "spec_fs_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_fs_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
