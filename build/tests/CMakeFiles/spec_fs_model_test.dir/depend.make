# Empty dependencies file for spec_fs_model_test.
# This may be replaced when dependencies are built.
