file(REMOVE_RECURSE
  "CMakeFiles/specfs_test.dir/specfs_test.cc.o"
  "CMakeFiles/specfs_test.dir/specfs_test.cc.o.d"
  "specfs_test"
  "specfs_test.pdb"
  "specfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
