# Empty compiler generated dependencies file for specfs_test.
# This may be replaced when dependencies are built.
