file(REMOVE_RECURSE
  "CMakeFiles/tcp_state_test.dir/tcp_state_test.cc.o"
  "CMakeFiles/tcp_state_test.dir/tcp_state_test.cc.o.d"
  "tcp_state_test"
  "tcp_state_test.pdb"
  "tcp_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
