# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_result_test[1]_include.cmake")
include("/root/repo/build/tests/base_util_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/ownership_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/spec_fs_model_test[1]_include.cmake")
include("/root/repo/build/tests/refinement_test[1]_include.cmake")
include("/root/repo/build/tests/block_device_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_cache_test[1]_include.cmake")
include("/root/repo/build/tests/journal_test[1]_include.cmake")
include("/root/repo/build/tests/vfs_test[1]_include.cmake")
include("/root/repo/build/tests/safefs_test[1]_include.cmake")
include("/root/repo/build/tests/legacyfs_test[1]_include.cmake")
include("/root/repo/build/tests/specfs_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/cve_test[1]_include.cmake")
include("/root/repo/build/tests/faultinject_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_state_test[1]_include.cmake")
include("/root/repo/build/tests/procfs_test[1]_include.cmake")
include("/root/repo/build/tests/ownership_property_test[1]_include.cmake")
include("/root/repo/build/tests/spec_evolution_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/net_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_cache_concurrency_test[1]_include.cmake")
