// Crash consistency, side by side: the journal-less legacy fs vs. the
// journaling safe fs under identical crash schedules, checked against the
// executable specification's crash oracle ("recover to the last synced
// version given any crash").
//
// Build & run:  ./build/examples/crash_consistency
#include <cstdio>
#include <memory>

#include "src/base/rng.h"
#include "src/block/block_device.h"
#include "src/block/buffer_cache.h"
#include "src/fs/legacyfs/legacyfs.h"
#include "src/fs/safefs/safefs.h"
#include "src/fs/specfs/specfs.h"
#include "src/spec/fs_model.h"

using namespace skern;

namespace {

constexpr int kTrials = 100;
constexpr uint64_t kDiskBlocks = 256;

struct CrashOutcome {
  FsModel last_synced;   // state as of the last successful sync
  FsModel at_crash_sync;  // state entering the sync that crashed (if any)
};

// Applies a randomized workload with intermittent syncs, tracking the model
// alongside. Stops when the device crashes (a sync fails). Because a crash
// can only happen during a commit, recovery may legally surface either the
// previous sync point or — if the commit record became durable — the state
// entering the crashed sync. Both candidates are returned.
CrashOutcome DriveUntilCrash(FileSystem& fs, Rng& rng) {
  FsModel model;
  const char* files[] = {"/a", "/b", "/c", "/d"};
  for (int op = 0; op < 10'000; ++op) {
    const char* path = files[rng.NextBelow(4)];
    switch (rng.NextBelow(4)) {
      case 0:
        if (fs.Create(path).ok()) {
          (void)model.Create(path);
        }
        break;
      case 1: {
        Bytes data = rng.NextBytes(64 + rng.NextBelow(1024));
        uint64_t offset = rng.NextBelow(2048);
        if (fs.Write(path, offset, ByteView(data)).ok()) {
          (void)model.Write(path, offset, ByteView(data));
        }
        break;
      }
      case 2:
        if (fs.Unlink(path).ok()) {
          (void)model.Unlink(path);
        }
        break;
      case 3: {
        FsModel entering = model;
        if (fs.Sync().ok()) {
          model.Sync();
        } else {
          model.Crash();  // device died mid-commit
          entering.Sync();
          entering.Crash();
          return CrashOutcome{model, entering};
        }
        break;
      }
    }
  }
  model.Crash();
  return CrashOutcome{model, model};
}

}  // namespace

int main() {
  int safe_exact = 0;
  int legacy_exact = 0;
  int legacy_diverged = 0;

  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(1000 + trial);
    uint64_t crash_after = 10 + rng.NextBelow(150);

    // --- safefs ---
    {
      RamDisk disk(kDiskBlocks, trial);
      auto fs = SafeFs::Format(disk, 64, 32).value();
      disk.ScheduleCrashAfterWrites(crash_after, CrashPersistence::kRandomSubset,
                                    /*tear_last=*/true);
      Rng workload_rng(500 + trial);
      CrashOutcome expected = DriveUntilCrash(*fs, workload_rng);
      fs.reset();
      auto remounted = SafeFs::Mount(disk);
      if (remounted.ok() &&
          (DiffFsAgainstModel(*remounted.value(), expected.last_synced.state()).empty() ||
           DiffFsAgainstModel(*remounted.value(), expected.at_crash_sync.state()).empty())) {
        ++safe_exact;
      }
    }

    // --- legacyfs ---
    {
      RamDisk disk(kDiskBlocks, trial);
      auto cache = std::make_unique<BufferCache>(disk, 128);
      FsGeometry geo = MakeGeometry(kDiskBlocks, 64, 0);
      auto fs = MakeLegacyFs(*cache, &geo, true);
      disk.ScheduleCrashAfterWrites(crash_after, CrashPersistence::kRandomSubset,
                                    /*tear_last=*/true);
      Rng workload_rng(500 + trial);  // identical workload
      CrashOutcome expected = DriveUntilCrash(*fs, workload_rng);
      fs.reset();
      cache.reset();
      BufferCache cache2(disk, 128);
      auto remounted = MakeLegacyFs(cache2, nullptr, false);
      if (remounted != nullptr &&
          (DiffFsAgainstModel(*remounted, expected.last_synced.state()).empty() ||
           DiffFsAgainstModel(*remounted, expected.at_crash_sync.state()).empty())) {
        ++legacy_exact;
      } else {
        ++legacy_diverged;  // mixed / corrupted / unreadable state
      }
    }
  }

  std::printf("crash-recovery oracle over %d randomized crash trials\n", kTrials);
  std::printf("  (recovered state must equal the last synced specification state)\n\n");
  std::printf("  safefs  (journaled):   %3d/%d consistent recoveries\n", safe_exact, kTrials);
  std::printf("  legacyfs (no journal): %3d/%d consistent, %d diverged/corrupted\n",
              legacy_exact, kTrials, legacy_diverged);
  std::printf("\nThe journal turns \"whatever subset of writes happened to land\" into\n"
              "\"exactly the last committed state\" — the crash contract the paper's\n"
              "specification language expresses in one sentence.\n");
  return 0;
}
