// Regenerates the paper's motivation section from the synthetic corpus:
// Figure 1 (the landscape), Figures 2a/2b/2c, and the §2 CWE categorization
// (42% / 35% / 23%).
//
// Build & run:  ./build/examples/cve_report [seed]
#include <cstdio>
#include <cstdlib>

#include "src/core/landscape.h"
#include "src/core/module.h"
#include "src/cve/analysis.h"
#include "src/cve/corpus.h"

using namespace skern;

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::printf("=== Figure 1: systems by size and safety guarantee ===\n\n");
  RegisterBuiltinModules();
  std::printf("%s\n", RenderLandscapeTable().c_str());

  auto corpus = CveCorpus::Generate(DefaultCorpusParams(), seed);
  std::printf("=== Figure 2 (synthetic corpus, seed %llu, %zu CVE records) ===\n\n",
              static_cast<unsigned long long>(seed), corpus.records().size());

  auto per_year = NewCvesPerYear(corpus);
  std::printf("%s\n", RenderCvesPerYear(per_year).c_str());

  auto cdf = ReportLatencyCdf(corpus, "ext4");
  std::printf("%s", RenderLatencyCdf(cdf, "ext4").c_str());
  std::printf("median report latency: %.1f years (paper: 50%% after 7+ years)\n\n",
              MedianReportLatency(corpus, "ext4"));

  std::printf("%s\n", RenderBugSeries(DefaultBugSeriesProfiles(), 2020, seed).c_str());

  std::printf("=== Section 2 study: CWE categorization since 2010 ===\n\n");
  auto table = Categorize(corpus, 2010);
  std::printf("%s", RenderCategorization(table).c_str());
  return 0;
}
