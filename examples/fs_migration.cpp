// The paper's roadmap, live: one mount point walks up the safety ladder —
// legacyfs (step 0) -> behind a modular slot (step 1) -> safefs (steps 2+3)
// -> specfs (step 4) — while the same caller keeps running the same workload.
//
// Build & run:  ./build/examples/fs_migration
#include <cstdio>

#include "src/block/block_device.h"
#include "src/block/buffer_cache.h"
#include "src/core/migration.h"
#include "src/fs/legacyfs/legacyfs.h"
#include "src/fs/safefs/safefs.h"
#include "src/fs/specfs/specfs.h"
#include "src/spec/refinement.h"

using namespace skern;

namespace {

// The caller: knows only the modular FileSystem interface (step 1's point).
bool RunWorkload(FileSystem& fs, int round) {
  std::string dir = "/round" + std::to_string(round);
  if (!fs.Mkdir(dir).ok()) {
    return false;
  }
  for (int i = 0; i < 5; ++i) {
    std::string file = dir + "/f" + std::to_string(i);
    if (!fs.Create(file).ok()) {
      return false;
    }
    if (!fs.Write(file, 0, BytesFromString("payload " + std::to_string(i))).ok()) {
      return false;
    }
  }
  auto names = fs.Readdir(dir);
  return names.ok() && names->size() == 5 && fs.Sync().ok();
}

}  // namespace

int main() {
  ImplementationSlot<FileSystem> slot("skern.FileSystem");

  // Step 0+1: the legacy C-idiom fs, reachable only through the modular
  // interface (the adapter does the ERR_PTR/void* bridging in one place).
  RamDisk legacy_disk(256, 1);
  BufferCache legacy_cache(legacy_disk, 128);
  FsGeometry geo = MakeGeometry(256, 64, 0);
  slot.Install("legacyfs", MakeLegacyFs(legacy_cache, &geo, true), SafetyLevel::kUnsafe);

  // Steps 2+3: the typed, ownership-safe journaling fs.
  RamDisk safe_disk(256, 2);
  auto safefs = SafeFs::Format(safe_disk, 64, 16).value();
  slot.Install("safefs", safefs, SafetyLevel::kOwnershipSafe);

  // Step 4: the same safe fs, refinement-checked against the executable spec.
  slot.Install("specfs", std::make_shared<SpecFs>(safefs), SafetyLevel::kVerified);

  const char* steps[] = {"legacyfs", "safefs", "specfs"};
  int round = 0;
  for (const char* step : steps) {
    SKERN_CHECK(slot.SwitchTo(step).ok());
    auto active = slot.Active();
    bool ok = RunWorkload(*active, round++);
    std::printf("step %-8s (%-14s): workload %s\n", step,
                SafetyLevelName(slot.ActiveLevel()), ok ? "passed" : "FAILED");
  }

  std::printf("\nimplementations available behind one interface:");
  for (const auto& name : slot.Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nswitches performed: %llu — callers never changed\n",
              static_cast<unsigned long long>(slot.switch_count()));
  std::printf("refinement checks run at step 4: %llu (mismatches: %llu)\n",
              static_cast<unsigned long long>(RefinementStats::Get().checks()),
              static_cast<unsigned long long>(RefinementStats::Get().mismatch_count()));
  return 0;
}
