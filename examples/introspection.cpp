// Introspection: mount procfs beside a real file system, make the safety
// machinery do some work (including catching a planted ownership bug), then
// read the framework's live state back out of /proc — the observability
// story for an incrementally-safer kernel.
//
// Build & run:  ./build/examples/introspection
#include <cstdio>

#include "src/block/block_device.h"
#include "src/block/buffer_cache.h"
#include "src/block/checked_block_device.h"
#include "src/core/module.h"
#include "src/fs/legacyfs/legacyfs.h"
#include "src/fs/procfs/procfs.h"
#include "src/fs/safefs/safefs.h"
#include "src/fs/specfs/specfs.h"
#include "src/net/network.h"
#include "src/net/stack_modular.h"
#include "src/obs/trace.h"
#include "src/ownership/owned.h"
#include "src/vfs/vfs.h"

using namespace skern;

namespace {

void Cat(Vfs& vfs, const std::string& path) {
  std::printf("--- cat %s ---\n", path.c_str());
  auto fd = vfs.Open(path, kOpenRead);
  if (!fd.ok()) {
    std::printf("(open failed: %s)\n\n", fd.status().ToString().c_str());
    return;
  }
  for (;;) {
    auto chunk = vfs.Read(*fd, 512);
    if (!chunk.ok() || chunk->empty()) {
      break;
    }
    std::fwrite(chunk->data(), 1, chunk->size(), stdout);
  }
  (void)vfs.Close(*fd);
  std::printf("\n");
}

}  // namespace

int main() {
  RegisterBuiltinModules();

  // Collect a trace of everything below; /proc/trace shows the merged stream.
  obs::TraceSession::Get().Start();

  // The full checked stack: axiom-shimmed device, safefs, refinement layer.
  RamDisk disk(512, 1);
  CheckedBlockDevice checked(disk);
  auto safefs = SafeFs::Format(checked, 64, 32).value();
  auto spec = std::make_shared<SpecFs>(safefs);

  Vfs vfs;
  SKERN_CHECK(vfs.Mount("/", spec).ok());
  SKERN_CHECK(vfs.Mkdir("/proc").ok());
  SKERN_CHECK(vfs.Mount("/proc", std::make_shared<ProcFs>()).ok());

  // A legacy fs rides along at /legacy: its buffer cache feeds the block.*
  // metrics.
  RamDisk legacy_disk(256, 2);
  BufferCache legacy_cache(legacy_disk, 16);
  FsGeometry geo = MakeGeometry(256, 64, 0);
  SKERN_CHECK(vfs.Mkdir("/legacy").ok());
  SKERN_CHECK(vfs.Mount("/legacy", MakeLegacyFs(legacy_cache, &geo, true)).ok());

  // Generate some activity for the counters.
  for (int i = 0; i < 10; ++i) {
    std::string path = "/file" + std::to_string(i);
    auto fd = vfs.Open(path, kOpenWrite | kOpenCreate);
    SKERN_CHECK(fd.ok());
    SKERN_CHECK(vfs.Write(*fd, BytesFromString("introspection payload")).ok());
    SKERN_CHECK(vfs.Close(*fd).ok());
    std::string legacy_path = "/legacy/file" + std::to_string(i);
    fd = vfs.Open(legacy_path, kOpenRead | kOpenWrite | kOpenCreate);
    SKERN_CHECK(fd.ok());
    SKERN_CHECK(vfs.Write(*fd, BytesFromString("legacy payload")).ok());
    (void)vfs.Pread(*fd, 0, 16);
    SKERN_CHECK(vfs.Close(*fd).ok());
  }
  SKERN_CHECK(vfs.SyncAll().ok());

  // Plant one ownership bug in recording mode so /proc/ownership has
  // something to show (in checked mode this would panic instead).
  {
    ScopedOwnershipMode mode(OwnershipMode::kRecording);
    auto cell = Owned<int>::Make(7);
    auto lend = cell.LendExclusive();
    (void)cell.Get();  // owner access during an exclusive lend: flagged
  }

  // Push some packets through the simulated network so the net.* metrics
  // have live values: one TCP echo over the modular stack.
  {
    SimClock clock;
    Network network(clock);
    auto client = MakeStandardModularStack(clock, network, /*ip=*/1);
    auto server = MakeStandardModularStack(clock, network, /*ip=*/2);
    auto ls = server->Socket(kProtoTcp);
    SKERN_CHECK(ls.ok() && server->Bind(*ls, 80).ok() && server->Listen(*ls).ok());
    auto cs = client->Socket(kProtoTcp);
    SKERN_CHECK(cs.ok() && client->Connect(*cs, NetAddr{2, 80}).ok());
    clock.Advance(100 * kMillisecond);
    auto conn = server->Accept(*ls);
    SKERN_CHECK(conn.ok());
    SKERN_CHECK(client->Send(*cs, BytesFromString("introspect")).ok());
    clock.Advance(100 * kMillisecond);
    auto echoed = server->Recv(*conn, 64);
    SKERN_CHECK(echoed.ok() && server->Send(*conn, ByteView(echoed.value())).ok());
    clock.Advance(100 * kMillisecond);
  }

  obs::TraceSession::Get().Stop();

  Cat(vfs, "/proc/modules");
  Cat(vfs, "/proc/ownership");
  Cat(vfs, "/proc/refinement");
  Cat(vfs, "/proc/shims");
  Cat(vfs, "/proc/locks");
  Cat(vfs, "/proc/metrics");
  Cat(vfs, "/proc/log");
  Cat(vfs, "/proc/trace");

  std::printf("(writes to /proc are refused: creating /proc/x -> %s)\n",
              vfs.Open("/proc/x", kOpenWrite | kOpenCreate).status().ToString().c_str());
  return 0;
}
