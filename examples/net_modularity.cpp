// §4.1's socket-stack story, live: the same TCP echo conversation on the
// monolithic stack and on the modular stack, then a brand-new protocol
// family dropping into the modular stack without touching generic code.
//
// Build & run:  ./build/examples/net_modularity
#include <cstdio>
#include <memory>

#include "src/base/sim_clock.h"
#include "src/net/network.h"
#include "src/net/stack_modular.h"
#include "src/net/stack_monolithic.h"

using namespace skern;

namespace {

constexpr uint32_t kClientIp = 1;
constexpr uint32_t kServerIp = 2;
constexpr uint16_t kPort = 7;

// One TCP echo conversation; returns bytes echoed back.
size_t EchoOnce(SimClock& clock, SocketLayer& client, SocketLayer& server) {
  auto ls = server.Socket(kProtoTcp);
  SKERN_CHECK(server.Bind(*ls, kPort).ok());
  SKERN_CHECK(server.Listen(*ls).ok());
  auto cs = client.Socket(kProtoTcp);
  SKERN_CHECK(client.Connect(*cs, NetAddr{kServerIp, kPort}).ok());
  clock.Advance(100 * kMillisecond);
  auto conn = server.Accept(*ls);
  SKERN_CHECK(conn.ok());

  Rng rng(3);
  Bytes blob = rng.NextBytes(8 * 1024);
  SKERN_CHECK(client.Send(*cs, ByteView(blob)).ok());
  clock.Advance(kSecond);
  // Server echoes everything it received.
  for (;;) {
    auto chunk = server.Recv(*conn, 4096);
    if (!chunk.ok() || chunk->empty()) {
      break;
    }
    SKERN_CHECK(server.Send(*conn, ByteView(chunk.value())).ok());
  }
  clock.Advance(kSecond);
  size_t echoed = 0;
  for (;;) {
    auto chunk = client.Recv(*cs, 4096);
    if (!chunk.ok() || chunk->empty()) {
      break;
    }
    echoed += chunk->size();
  }
  SKERN_CHECK(client.Close(*cs).ok());
  SKERN_CHECK(server.Close(*conn).ok());
  SKERN_CHECK(server.Close(*ls).ok());
  return echoed;
}

}  // namespace

int main() {
  {
    SimClock clock;
    Network network(clock, 1);
    MonoNetStack client(clock, network, kClientIp);
    MonoNetStack server(clock, network, kServerIp);
    size_t echoed = EchoOnce(clock, client, server);
    std::printf("monolithic stack: echoed %zu bytes over TCP (%llu packets on the wire)\n",
                echoed, static_cast<unsigned long long>(network.stats().delivered));
    std::printf("  ...but its generic code contains %s\n",
                "TCP-specific branches in bind/send/recv/close/demux");
  }
  {
    SimClock clock;
    Network network(clock, 1);
    auto client = MakeStandardModularStack(clock, network, kClientIp);
    auto server = MakeStandardModularStack(clock, network, kServerIp);
    size_t echoed = EchoOnce(clock, *client, *server);
    std::printf("modular stack:    echoed %zu bytes over TCP (%llu packets on the wire)\n",
                echoed, static_cast<unsigned long long>(network.stats().delivered));
    std::printf("  generic layer dispatches through the protocol registry: ");
    for (const auto& name : client->ProtocolNames()) {
      std::printf("[%s] ", name.c_str());
    }
    std::printf("\n");

    // The lossy variant: TCP's retransmission earns its keep.
    SimClock clock2;
    Network lossy(clock2, 2);
    lossy.set_drop_rate(0.15);
    auto lc = MakeStandardModularStack(clock2, lossy, kClientIp);
    auto ls = MakeStandardModularStack(clock2, lossy, kServerIp);
    auto listener = ls->Socket(kProtoTcp);
    SKERN_CHECK(ls->Bind(*listener, kPort).ok());
    SKERN_CHECK(ls->Listen(*listener).ok());
    auto cs = lc->Socket(kProtoTcp);
    SKERN_CHECK(lc->Connect(*cs, NetAddr{kServerIp, kPort}).ok());
    clock2.Advance(20 * kSecond);
    auto conn = ls->Accept(*listener);
    SKERN_CHECK(conn.ok());
    Rng rng(9);
    Bytes blob = rng.NextBytes(4096);
    SKERN_CHECK(lc->Send(*cs, ByteView(blob)).ok());
    clock2.Advance(60 * kSecond);
    size_t got = 0;
    for (;;) {
      auto chunk = ls->Recv(*conn, 4096);
      if (!chunk.ok() || chunk->empty()) {
        break;
      }
      got += chunk->size();
    }
    std::printf("  under 15%% packet loss: %zu/%zu bytes delivered, %llu packets dropped\n",
                got, blob.size(), static_cast<unsigned long long>(lossy.stats().dropped));
  }
  std::printf("\n(see tests/net_test.cc for the drop-in 'reverse' protocol module —\n"
              " a new family registered with zero edits to generic socket code)\n");
  return 0;
}
