// Quickstart: mount the ownership-safe journaling file system on a simulated
// disk through the VFS, do ordinary file work, survive a crash.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/block/block_device.h"
#include "src/fs/safefs/safefs.h"
#include "src/vfs/vfs.h"

using namespace skern;

int main() {
  // A 1 MiB simulated disk (256 x 4 KiB blocks) with crash injection support.
  RamDisk disk(256, /*seed=*/1);

  // mkfs + mount: 64 inodes, 16-block journal.
  auto fs = SafeFs::Format(disk, 64, 16);
  if (!fs.ok()) {
    std::printf("format failed: %s\n", fs.status().ToString().c_str());
    return 1;
  }

  Vfs vfs;
  SKERN_CHECK(vfs.Mount("/", fs.value()).ok());

  // Ordinary POSIX-ish work through descriptors.
  SKERN_CHECK(vfs.Mkdir("/home").ok());
  auto fd = vfs.Open("/home/notes.txt", kOpenRead | kOpenWrite | kOpenCreate);
  SKERN_CHECK(fd.ok());
  SKERN_CHECK(vfs.Write(*fd, BytesFromString("incremental safety, one module at a time\n")).ok());
  SKERN_CHECK(vfs.Fsync(*fd).ok());  // journaled commit: now durable
  SKERN_CHECK(vfs.Write(*fd, BytesFromString("this line is not yet synced\n")).ok());
  SKERN_CHECK(vfs.Close(*fd).ok());

  std::printf("before crash: /home/notes.txt is %llu bytes\n",
              static_cast<unsigned long long>(vfs.Stat("/home/notes.txt")->size));

  // Power failure. Everything un-synced in the device cache is gone.
  fs.value().reset();
  disk.CrashNow(CrashPersistence::kLoseAll);

  // Remount: journal recovery runs, the fsynced state comes back intact.
  auto recovered = SafeFs::Mount(disk);
  SKERN_CHECK(recovered.ok());
  auto content = recovered.value()->Read("/home/notes.txt", 0, 4096);
  SKERN_CHECK(content.ok());
  std::printf("after crash + recovery (%llu bytes):\n%s",
              static_cast<unsigned long long>(content->size()),
              StringFromBytes(content.value()).c_str());

  const auto& jstats = recovered.value()->journal_stats();
  if (jstats.replays > 0) {
    std::printf("journal recovery replayed %llu committed transaction(s)\n",
                static_cast<unsigned long long>(jstats.replays));
  } else {
    std::printf("journal recovery: clean (the fsync had fully checkpointed before the crash)\n");
  }
  return 0;
}
