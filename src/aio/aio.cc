#include "src/aio/aio.h"

#include <algorithm>
#include <chrono>

#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"

namespace skern {

// --- AioQueue ---

AioQueue::AioQueue(Vfs& vfs, size_t depth)
    : vfs_(vfs), depth_(depth), sq_(depth), cq_(2 * depth) {
  SKERN_CHECK_MSG(depth > 0, "aio queue needs a nonzero depth");
  // Eager registration: the async plane's counters show up in /metrics from
  // the first queue, not the first op.
  SKERN_COUNTER_ADD("aio.submit", 0);
  SKERN_COUNTER_ADD("aio.harvest", 0);
  SKERN_COUNTER_ADD("aio.ops", 0);
  SKERN_GAUGE_SET("aio.queue_depth", 0);
}

AioQueue::AioQueue(Vfs& vfs, size_t depth, AioEngine& engine) : AioQueue(vfs, depth) {
  engine_ = &engine;
  worker_slot_ = engine.Bind(this);
}

AioQueue::~AioQueue() {
  if (engine_ != nullptr) {
    engine_->Unbind(this, worker_slot_);
  }
}

bool AioQueue::Enqueue(AioOp op) {
  // Budget check: everything already in flight plus this batch must fit the
  // completion ring, or the executor could stall on a full cq.
  uint64_t budget = outstanding_.load(std::memory_order_acquire) +
                    staged_.load(std::memory_order_relaxed);
  if (budget >= cq_.Capacity() || !sq_.TryPush(std::move(op))) {
    sq_full_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  staged_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

size_t AioQueue::Submit() {
  SKERN_SPAN("aio", "submit");
  size_t batch = static_cast<size_t>(staged_.exchange(0, std::memory_order_relaxed));
  if (batch == 0) {
    return 0;
  }
  outstanding_.fetch_add(batch, std::memory_order_release);
  submitted_.fetch_add(batch, std::memory_order_relaxed);
  SKERN_COUNTER_INC("aio.submit");
  SKERN_COUNTER_ADD("aio.ops", batch);
  SKERN_GAUGE_SET("aio.queue_depth", outstanding_.load(std::memory_order_relaxed));
  SKERN_TRACE("aio", "submit", batch);
  if (engine_ != nullptr) {
    engine_->Kick(worker_slot_);
  } else {
    ExecuteReady();
  }
  return batch;
}

void AioQueue::ExecuteReady() {
  // One executor at a time (inline Submit or the bound worker — by
  // construction never both, but the lock makes the invariant local).
  SpinLockGuard guard(executor_lock_);
  BatchFds batch_fds;
  exec_ops_.clear();
  {
    AioOp op;
    while (sq_.TryPop(op)) {
      exec_ops_.push_back(std::move(op));
    }
  }
  size_t i = 0;
  while (i < exec_ops_.size()) {
    // Coalesce a run of writes on one descriptor into a vectored dispatch:
    // one descriptor resolution, one handle resolution, and one lock
    // round-trip inside the file system cover the whole run — the "no
    // per-op round trip" the submission ring exists for.
    if (exec_ops_[i].kind == AioOpKind::kWrite) {
      size_t end = i + 1;
      // A coalesced run must share one credential as well as one fd: the
      // whole run is checked once against the first op's identity.
      while (end < exec_ops_.size() && exec_ops_[end].kind == AioOpKind::kWrite &&
             exec_ops_[end].fd == exec_ops_[i].fd &&
             exec_ops_[end].cred == exec_ops_[i].cred) {
        ++end;
      }
      Vfs::OpenFile* file = nullptr;
      if (end - i > 1) {
        file = ResolveFd(exec_ops_[i].fd, batch_fds);
      }
      if (file != nullptr && (file->flags & kOpenWrite) != 0 &&
          vfs_.CheckFileAccess(*file, exec_ops_[i].cred, kWantWrite).ok()) {
        exec_slices_.clear();
        for (size_t k = i; k < end; ++k) {
          exec_slices_.push_back({exec_ops_[k].offset, exec_ops_[k].WritePayload()});
        }
        size_t applied =
            vfs_.DispatchWriteBatch(*file, exec_slices_.data(), exec_slices_.size());
        vfs_.counters_.dispatches.fetch_add(applied, std::memory_order_relaxed);
        vfs_.counters_.writes.fetch_add(applied, std::memory_order_relaxed);
        for (size_t k = 0; k < applied; ++k) {
          AioCompletion done;
          done.user_data = exec_ops_[i + k].user_data;
          Complete(std::move(done));
        }
        i += applied;
        if (i == end) {
          continue;
        }
        // The slice at `i` left the batched fast path; it (and anything
        // after it) executes per-op below, reproducing the per-op result.
      }
    }
    Complete(Execute(exec_ops_[i], batch_fds));
    ++i;
  }
  exec_ops_.clear();
  if (engine_ != nullptr) {
    engine_->SignalCompletion();
  }
}

void AioQueue::Complete(AioCompletion done) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  SKERN_CHECK_MSG(cq_.TryPush(std::move(done)),
                  "aio completion ring overflow despite budget");
}

Vfs::OpenFile* AioQueue::ResolveFd(Fd fd, BatchFds& batch_fds) {
  // Resolve the descriptor once per batch; later ops on the same fd reuse
  // the resolution (the whole point of batching: one table lookup, one
  // shared_ptr copy, N operations).
  for (const auto& [cached_fd, resolved] : batch_fds) {
    if (cached_fd == fd) {
      return resolved.get();
    }
  }
  std::shared_ptr<Vfs::OpenFile> file;
  auto found = vfs_.FindFd(fd);
  if (found.ok()) {
    file = *found;
  }
  batch_fds.emplace_back(fd, std::move(file));
  return batch_fds.back().second.get();
}

AioCompletion AioQueue::ExecuteRead(const AioOp& op, Vfs::OpenFile& file) {
  AioCompletion done;
  done.user_data = op.user_data;
  if ((file.flags & kOpenRead) == 0) {
    done.error = Errno::kEBADF;
    return done;
  }
  Status perm = vfs_.CheckFileAccess(file, op.cred, kWantRead);
  if (!perm.ok()) {
    done.error = perm.code();
    return done;
  }
  vfs_.counters_.reads.fetch_add(1, std::memory_order_relaxed);
  auto out = vfs_.DispatchRead(file, op.offset, op.length);
  if (out.ok()) {
    done.data = std::move(*out);
  } else {
    done.error = out.error();
  }
  return done;
}

AioCompletion AioQueue::ExecuteWrite(const AioOp& op, Vfs::OpenFile& file) {
  AioCompletion done;
  done.user_data = op.user_data;
  if ((file.flags & kOpenWrite) == 0) {
    done.error = Errno::kEBADF;
    return done;
  }
  Status perm = vfs_.CheckFileAccess(file, op.cred, kWantWrite);
  if (!perm.ok()) {
    done.error = perm.code();
    return done;
  }
  vfs_.counters_.writes.fetch_add(1, std::memory_order_relaxed);
  Status out = vfs_.DispatchWrite(file, op.offset, op.WritePayload());
  done.error = out.code();
  return done;
}

AioCompletion AioQueue::Execute(const AioOp& op, BatchFds& batch_fds) {
  AioCompletion done;
  done.user_data = op.user_data;
  Vfs::OpenFile* file = ResolveFd(op.fd, batch_fds);
  if (file == nullptr) {
    done.error = Errno::kEBADF;
    return done;
  }
  vfs_.counters_.dispatches.fetch_add(1, std::memory_order_relaxed);
  switch (op.kind) {
    case AioOpKind::kRead:
      return ExecuteRead(op, *file);
    case AioOpKind::kWrite:
      return ExecuteWrite(op, *file);
    case AioOpKind::kFsync: {
      Status out;
      if (file->handle != kInvalidHandle) {
        out = file->fs->FsyncHandle(file->handle);
        if (out.ok() || out.code() != Errno::kENOSYS) {
          done.error = out.code();
          return done;
        }
      }
      done.error = file->fs->Fsync(file->fs_path).code();
      return done;
    }
  }
  done.error = Errno::kEINVAL;
  return done;
}

size_t AioQueue::Harvest(std::vector<AioCompletion>& out, size_t max) {
  SKERN_SPAN("aio", "harvest");
  size_t drained = 0;
  AioCompletion done;
  while (drained < max && cq_.TryPop(done)) {
    out.push_back(std::move(done));
    ++drained;
  }
  if (drained > 0) {
    outstanding_.fetch_sub(drained, std::memory_order_release);
    harvested_.fetch_add(drained, std::memory_order_relaxed);
    SKERN_COUNTER_ADD("aio.harvest", drained);
    SKERN_GAUGE_SET("aio.queue_depth", outstanding_.load(std::memory_order_relaxed));
    SKERN_TRACE("aio", "harvest", drained);
  }
  return drained;
}

size_t AioQueue::HarvestBlocking(std::vector<AioCompletion>& out, size_t min) {
  size_t drained = 0;
  while (true) {
    drained += Harvest(out, min > drained ? min - drained : 0);
    if (drained >= min) {
      return drained;
    }
    if (engine_ == nullptr) {
      // Inline mode completes everything inside Submit; if the rings are
      // empty there is nothing left to wait for.
      if (outstanding_.load(std::memory_order_acquire) == 0) {
        return drained;
      }
      continue;
    }
    if (!engine_->WaitCompletion()) {
      // Timeout tick: re-check outstanding_ so a raced shutdown or an
      // already-drained queue cannot hang the caller.
      if (outstanding_.load(std::memory_order_acquire) == 0) {
        return drained;
      }
    }
  }
}

AioQueueStats AioQueue::stats() const {
  AioQueueStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.harvested = harvested_.load(std::memory_order_relaxed);
  s.sq_full = sq_full_.load(std::memory_order_relaxed);
  return s;
}

// --- AioEngine ---

AioEngine::AioEngine(size_t workers) {
  SKERN_CHECK_MSG(workers > 0, "aio engine needs at least one worker");
  state_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    state_.push_back(std::make_unique<WorkerState>());
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    WorkerState* ws = state_[i].get();
    workers_.emplace_back("aio-worker", [ws](const std::atomic<bool>& stop) {
      std::vector<AioQueue*> local;
      while (!stop.load(std::memory_order_acquire)) {
        ws->doorbell.ConsumeFor(std::chrono::milliseconds(5));
        if (stop.load(std::memory_order_acquire)) {
          return;
        }
        MutexGuard pass(ws->pass_lock);
        {
          SpinLockGuard guard(ws->lock);
          local = ws->queues;
        }
        for (AioQueue* q : local) {
          q->ExecuteReady();
        }
      }
    });
  }
}

AioEngine::~AioEngine() {
  for (auto& worker : workers_) {
    worker.RequestStop();
  }
  for (auto& ws : state_) {
    ws->doorbell.Signal();
  }
  for (auto& worker : workers_) {
    worker.Stop();
  }
}

size_t AioEngine::Bind(AioQueue* queue) {
  size_t slot = next_slot_.fetch_add(1, std::memory_order_relaxed) % state_.size();
  SpinLockGuard guard(state_[slot]->lock);
  state_[slot]->queues.push_back(queue);
  return slot;
}

void AioEngine::Unbind(AioQueue* queue, size_t slot) {
  {
    SpinLockGuard guard(state_[slot]->lock);
    auto& qs = state_[slot]->queues;
    qs.erase(std::remove(qs.begin(), qs.end(), queue), qs.end());
  }
  // The worker may still be mid-pass over a snapshot that contains the
  // queue; one pass_lock round-trip fences that pass out before the queue's
  // destructor continues.
  MutexGuard drain(state_[slot]->pass_lock);
}

void AioEngine::Kick(size_t slot) { state_[slot]->doorbell.Signal(); }

void AioEngine::SignalCompletion() { completion_event_.Signal(); }

bool AioEngine::WaitCompletion() {
  return completion_event_.ConsumeFor(std::chrono::milliseconds(1));
}

}  // namespace skern
