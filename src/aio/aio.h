// Asynchronous submission/completion plane over the VFS.
//
// The synchronous syscall surface costs one full VFS crossing per operation:
// descriptor lookup, flag check, dispatch, return. An AioQueue amortizes
// that the way io_uring does — the application batches operations into a
// per-thread submission ring, rings the doorbell once (Submit), and later
// drains finished operations from a completion ring (Harvest). Within one
// submitted batch the executor resolves each descriptor exactly once and
// reuses the resolution for every operation on that descriptor.
//
// Two execution modes:
//   * inline (no engine): Submit executes the batch on the calling thread,
//     in submission order. Deterministic, zero extra threads — what the
//     differential tests run against the synchronous plane.
//   * engine: Submit wakes the AioEngine worker the queue is bound to; the
//     worker executes batches from all its queues and the application
//     overlaps its own work with the I/O. Per-queue submission order is
//     still preserved (one worker owns a queue's executor side).
//
// Ordering contract: operations within a queue execute in submission order;
// operations in different queues race exactly like concurrent syscalls. An
// AioFsync completes only after every earlier operation on its queue — and,
// because SafeFs's Fsync drains buffered write-back and commits the journal,
// only after that data is durable.
#ifndef SKERN_SRC_AIO_AIO_H_
#define SKERN_SRC_AIO_AIO_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/aio/ring.h"
#include "src/base/bytes.h"
#include "src/mem/stl_alloc.h"
#include "src/base/cred.h"
#include "src/base/result.h"
#include "src/base/status.h"
#include "src/sync/kthread.h"
#include "src/sync/mutex.h"
#include "src/vfs/vfs.h"

namespace skern {

enum class AioOpKind : uint8_t {
  kRead,   // positional read: fd, offset, length
  kWrite,  // positional write: fd, offset, data
  kFsync,  // completes after all earlier ops on this queue are durable
};

struct AioOp {
  AioOpKind kind = AioOpKind::kRead;
  Fd fd = -1;
  uint64_t offset = 0;
  uint64_t length = 0;  // reads only; writes carry the payload's size
  Bytes data;           // owned write payload (copied in by the caller)
  // Borrowed write payload — the registered-buffer idiom: no copy at
  // Enqueue, but the caller's buffer must stay valid until this op's
  // completion is harvested. When non-empty it takes precedence over
  // `data`.
  ByteView view;
  uint64_t user_data = 0;  // opaque cookie, returned in the completion
  // The submitter's credential, captured when the op is constructed (i.e. at
  // Enqueue on the application thread). The executor — possibly an engine
  // worker running as root — checks file access against *this* identity, so
  // the async plane can never be used to launder a denied operation through
  // a more privileged worker thread.
  Cred cred = CurrentCred();

  ByteView WritePayload() const { return view.empty() ? ByteView(data) : view; }
};

struct AioCompletion {
  uint64_t user_data = 0;
  Errno error = Errno::kOk;
  Bytes data;  // read payload (empty for writes/fsyncs and on error)
};

struct AioQueueStats {
  uint64_t submitted = 0;  // ops handed to the executor
  uint64_t completed = 0;  // ops finished (success or error)
  uint64_t harvested = 0;  // completions returned to the application
  uint64_t sq_full = 0;    // Enqueue rejections (submission backpressure)
};

class AioEngine;

// One submission/completion ring pair. Single-threaded application side:
// exactly one thread may call Enqueue/Submit/Harvest on a given queue (the
// per-thread-queue discipline every ring-based interface imposes).
class AioQueue {
 public:
  // `depth` bounds the operations in flight: Enqueue rejects when the
  // submission ring is full or when completing everything outstanding could
  // overflow the completion ring (sized 2x depth, so a full new batch fits
  // behind a full unharvested one).
  AioQueue(Vfs& vfs, size_t depth);
  // Engine mode: the queue binds to one of the engine's workers for its
  // whole lifetime. The engine must outlive the queue.
  AioQueue(Vfs& vfs, size_t depth, AioEngine& engine);
  ~AioQueue();

  AioQueue(const AioQueue&) = delete;
  AioQueue& operator=(const AioQueue&) = delete;

  // Stages one operation. Returns false under backpressure (ring full or
  // too many unharvested completions); the caller should Submit + Harvest
  // and retry.
  bool Enqueue(AioOp op);

  // Makes everything enqueued since the last Submit visible to the executor
  // and (inline mode) runs it now, or (engine mode) wakes the bound worker.
  // Returns the number of operations submitted.
  size_t Submit();

  // Drains up to `max` completions into `out` (appending). Never blocks.
  size_t Harvest(std::vector<AioCompletion>& out, size_t max);

  // Blocks until at least `min` completions have been drained into `out`
  // (spinning via the engine's completion signal; inline mode never needs
  // to wait). Returns the number drained.
  size_t HarvestBlocking(std::vector<AioCompletion>& out, size_t min);

  size_t depth() const { return depth_; }
  AioQueueStats stats() const;

 private:
  friend class AioEngine;

  // Executor side: drains the submission ring, executing each op and
  // pushing its completion. Called by Submit (inline) or the bound engine
  // worker — never both; `executor_lock_` documents and enforces the
  // single-executor invariant cheaply. An SKERN_ENTRY like the syscalls: the
  // async plane is the second door into the descriptor table, and every op
  // is checked against its captured submitter credential before dispatch.
  SKERN_ENTRY void ExecuteReady();

  // Per-batch descriptor cache: fd -> resolution (null = EBADF, cached
  // too, so a bad fd costs one lookup per batch, same as one syscall).
  using BatchFds = std::vector<std::pair<Fd, std::shared_ptr<Vfs::OpenFile>>>;

  // Cached resolution as a raw pointer (ownership stays in batch_fds for
  // the rest of the batch); null = EBADF.
  Vfs::OpenFile* ResolveFd(Fd fd, BatchFds& batch_fds);

  SKERN_ENTRY AioCompletion Execute(const AioOp& op, BatchFds& batch_fds);
  // Per-kind executors, each gating on CheckFileAccess(op.cred, want) before
  // touching the data plane (split so the access analysis sees one check →
  // one accessor mask per path).
  AioCompletion ExecuteRead(const AioOp& op, Vfs::OpenFile& file);
  AioCompletion ExecuteWrite(const AioOp& op, Vfs::OpenFile& file);
  void Complete(AioCompletion done);

  Vfs& vfs_;
  size_t depth_;
  // SQ/CQ slot arrays live on the slab size classes under one display name.
  struct AioRingTag {
    static constexpr const char* kName = "aio.ring";
  };
  SpscRing<AioOp, mem::StlAllocator<AioOp, AioRingTag>> sq_;
  SpscRing<AioCompletion, mem::StlAllocator<AioCompletion, AioRingTag>> cq_;
  // Executor scratch, reused across batches (guarded by executor_lock_).
  std::vector<AioOp> exec_ops_ SKERN_GUARDED_BY(executor_lock_);
  std::vector<WriteSlice> exec_slices_ SKERN_GUARDED_BY(executor_lock_);
  // Ops enqueued but not yet made visible by Submit. Application-thread
  // only, but atomic so stats() can read it from elsewhere.
  std::atomic<uint64_t> staged_{0};
  // Submitted-but-unharvested budget, bounded by cq_.Capacity().
  std::atomic<uint64_t> outstanding_{0};
  mutable TrackedSpinLock executor_lock_{"aio.executor"};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> harvested_{0};
  std::atomic<uint64_t> sq_full_{0};
  AioEngine* engine_ = nullptr;  // null = inline mode
  size_t worker_slot_ = 0;       // engine mode: bound worker index
};

// A pool of kernel worker threads executing submitted batches. Queues bind
// to workers round-robin at construction; a worker loops over its bound
// queues, sleeping on an Event until a Submit doorbell rings.
class AioEngine {
 public:
  explicit AioEngine(size_t workers);
  ~AioEngine();

  AioEngine(const AioEngine&) = delete;
  AioEngine& operator=(const AioEngine&) = delete;

  size_t worker_count() const { return workers_.size(); }

 private:
  friend class AioQueue;

  // Round-robin binding; returns the chosen worker slot.
  size_t Bind(AioQueue* queue);
  void Unbind(AioQueue* queue, size_t slot);
  // Doorbell from AioQueue::Submit.
  void Kick(size_t slot);
  // Completion-side signal, so HarvestBlocking can sleep instead of spin.
  void SignalCompletion();
  bool WaitCompletion();

  struct WorkerState {
    Event doorbell;
    mutable TrackedSpinLock lock{"aio.engine"};
    std::vector<AioQueue*> queues SKERN_GUARDED_BY(lock);
    // Held by the worker for one whole execution pass. Unbind removes the
    // queue from `queues`, then acquires this once: afterwards no pass can
    // still be running against a stale snapshot containing the dying queue.
    TrackedMutex pass_lock{"aio.pass"};
  };

  std::atomic<size_t> next_slot_{0};
  Event completion_event_;
  // Deques of non-movable state need stable addresses; unique_ptr keeps the
  // vector movable during construction.
  std::vector<std::unique_ptr<WorkerState>> state_;
  std::vector<KThread> workers_;  // declared last: stops before state dies
};

}  // namespace skern

#endif  // SKERN_SRC_AIO_AIO_H_
