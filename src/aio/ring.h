// A bounded single-producer/single-consumer ring.
//
// The asynchronous I/O plane pairs two of these per queue (submission and
// completion), io_uring-style: the application thread produces submission
// entries and consumes completions; the executor (inline, or a bound engine
// worker) consumes submissions and produces completions. Each side of a ring
// is touched by exactly one thread, so the only synchronization is one
// acquire/release edge per direction — no locks, no CAS loops, no waiting.
#ifndef SKERN_SRC_AIO_RING_H_
#define SKERN_SRC_AIO_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace skern {

// `Alloc` lets the owner place the slot array (e.g. on the slab size
// classes via mem::StlAllocator); the ring itself never reallocates after
// construction.
template <typename T, typename Alloc = std::allocator<T>>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two so the head/tail counters can
  // run free and index with a mask (no modulo, no wraparound handling).
  explicit SpscRing(size_t min_capacity) {
    size_t cap = 1;
    while (cap < min_capacity) {
      cap <<= 1;
    }
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t Capacity() const { return slots_.size(); }

  // Producer side. Returns false if the ring is full.
  bool TryPush(T&& item) {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= slots_.size()) {
      return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false if the ring is empty.
  bool TryPop(T& out) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) {
      return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Racy by construction (either index may move right after the loads);
  // callers use it for backpressure heuristics and gauges only.
  size_t SizeApprox() const {
    uint64_t head = head_.load(std::memory_order_acquire);
    uint64_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

 private:
  std::vector<T, Alloc> slots_;
  size_t mask_ = 0;
  // Separate cache lines so the producer's tail stores never invalidate the
  // consumer's head line (and vice versa).
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<uint64_t> tail_{0};  // producer cursor
};

}  // namespace skern

#endif  // SKERN_SRC_AIO_RING_H_
