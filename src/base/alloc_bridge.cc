#include "src/base/alloc_bridge.h"

namespace skern {
namespace membridge {
namespace {

void* HeapAlloc(std::size_t n) { return ::operator new(n); }
void HeapFree(void* p, std::size_t n) {
  (void)n;
  ::operator delete(p);
}

std::atomic<bool> g_installed{false};

}  // namespace

namespace internal {
std::atomic<AllocHook> g_alloc_hook{&HeapAlloc};
std::atomic<FreeHook> g_free_hook{&HeapFree};
}  // namespace internal

void InstallHooks(AllocHook alloc_hook, FreeHook free_hook) {
  // Free hook first: a concurrent allocation that still went through the old
  // alloc hook must find a free hook that can route its pointer, and the
  // slab router routes heap pointers correctly (region lookup) while the
  // heap default cannot route slab pointers.
  internal::g_free_hook.store(free_hook, std::memory_order_release);
  internal::g_alloc_hook.store(alloc_hook, std::memory_order_release);
  g_installed.store(true, std::memory_order_release);
}

bool HooksInstalled() { return g_installed.load(std::memory_order_acquire); }

}  // namespace membridge
}  // namespace skern
