// Allocation bridge: the seam between base-layer byte buffers and the slab
// allocator that lives above them.
//
// `Bytes` (src/base/bytes.h) is the payload currency of every fast path —
// buffer-cache blocks, net segments, aio read buffers. Routing those
// allocations through the slab subsystem (src/mem) would invert the module
// layering if bytes.h included slab headers, so base owns only this pair of
// hook points. They default to the global heap; src/mem installs its
// size-class router once, from a static initializer, in any binary that
// links the mem library. Binaries that never pull in src/mem keep the heap
// default and behave exactly as before.
//
// Safety across installation and the runtime SetSlabAllocation toggle rests
// on one rule: the *free* hook must accept any pointer the *current or any
// previous* alloc hook produced. The slab router honors this by deciding
// ownership per pointer (slab-region lookup) rather than per flag, so a
// buffer allocated from the heap before the hooks existed is still freed to
// the heap afterwards.
#ifndef SKERN_SRC_BASE_ALLOC_BRIDGE_H_
#define SKERN_SRC_BASE_ALLOC_BRIDGE_H_

#include <atomic>
#include <cstddef>
#include <new>

namespace skern {
namespace membridge {

using AllocHook = void* (*)(std::size_t);
using FreeHook = void (*)(void*, std::size_t);

namespace internal {
extern std::atomic<AllocHook> g_alloc_hook;
extern std::atomic<FreeHook> g_free_hook;
}  // namespace internal

// Installs the slab router. Called exactly once, by src/mem's static
// initializer; hooks are never uninstalled (see header comment).
void InstallHooks(AllocHook alloc_hook, FreeHook free_hook);
bool HooksInstalled();

inline void* Alloc(std::size_t n) {
  return internal::g_alloc_hook.load(std::memory_order_acquire)(n);
}

inline void Free(void* p, std::size_t n) {
  internal::g_free_hook.load(std::memory_order_acquire)(p, n);
}

}  // namespace membridge

// Stateless STL allocator over the bridge — the allocator behind `Bytes`.
// Sized deallocation (the n the container hands back) lets the router pick
// the size class without a header probe on the alloc side.
template <typename T>
class BridgeAllocator {
 public:
  using value_type = T;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;
  using propagate_on_container_move_assignment = std::true_type;
  using is_always_equal = std::true_type;

  BridgeAllocator() noexcept = default;
  template <typename U>
  BridgeAllocator(const BridgeAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(membridge::Alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    membridge::Free(p, n * sizeof(T));
  }

  template <typename U>
  friend bool operator==(const BridgeAllocator&, const BridgeAllocator<U>&) noexcept {
    return true;
  }
  template <typename U>
  friend bool operator!=(const BridgeAllocator&, const BridgeAllocator<U>&) noexcept {
    return false;
  }
};

}  // namespace skern

#endif  // SKERN_SRC_BASE_ALLOC_BRIDGE_H_
