#include "src/base/bytes.h"

namespace skern {

Bytes BytesFromString(const std::string& s) {
  return CopyBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

std::string StringFromBytes(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace skern
