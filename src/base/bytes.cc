#include "src/base/bytes.h"

namespace skern {

Bytes BytesFromString(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

std::string StringFromBytes(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace skern
