// Byte buffer and view types used across module interfaces.
//
// ByteView / MutableByteView are non-owning spans: the currency of the
// ownership-sharing models in src/ownership/. Bytes is an owning buffer.
#ifndef SKERN_SRC_BASE_BYTES_H_
#define SKERN_SRC_BASE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/alloc_bridge.h"
#include "src/base/panic.h"

namespace skern {

// Owning byte buffer. Storage comes from the allocation bridge so that
// binaries linking src/mem route payload buffers through the slab size
// classes; everything else gets the plain global heap (alloc_bridge.h).
using Bytes = std::vector<uint8_t, BridgeAllocator<uint8_t>>;

// Read-only view over a contiguous byte range. Does not own the memory.
class ByteView {
 public:
  constexpr ByteView() : data_(nullptr), size_(0) {}
  constexpr ByteView(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  ByteView(const Bytes& bytes) : data_(bytes.data()), size_(bytes.size()) {}
  ByteView(const std::string& s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}

  constexpr const uint8_t* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const {
    SKERN_DCHECK(i < size_);
    return data_[i];
  }

  ByteView Subview(size_t offset, size_t length) const {
    SKERN_CHECK(offset <= size_ && length <= size_ - offset);
    return ByteView(data_ + offset, length);
  }

  Bytes ToBytes() const;
  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

  friend bool operator==(ByteView a, ByteView b) {
    return a.size_ == b.size_ && (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

// Writable view over a contiguous byte range. Does not own the memory.
class MutableByteView {
 public:
  constexpr MutableByteView() : data_(nullptr), size_(0) {}
  constexpr MutableByteView(uint8_t* data, size_t size) : data_(data), size_(size) {}
  MutableByteView(Bytes& bytes) : data_(bytes.data()), size_(bytes.size()) {}

  constexpr uint8_t* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  uint8_t& operator[](size_t i) const {
    SKERN_DCHECK(i < size_);
    return data_[i];
  }

  MutableByteView Subview(size_t offset, size_t length) const {
    SKERN_CHECK(offset <= size_ && length <= size_ - offset);
    return MutableByteView(data_ + offset, length);
  }

  operator ByteView() const { return ByteView(data_, size_); }

  // Copies from `src` into this view; sizes must match.
  void CopyFrom(ByteView src) const {
    SKERN_CHECK(src.size() == size_);
    if (size_ > 0) {
      std::memcpy(data_, src.data(), size_);
    }
  }

  void Fill(uint8_t value) const {
    if (size_ > 0) {
      std::memset(data_, value, size_);
    }
  }

 private:
  uint8_t* data_;
  size_t size_;
};

// Bulk byte movement into a Bytes buffer. libstdc++ takes the memmove fast
// path for uninitialized range copies only under std::allocator; under the
// bridge allocator, vector::insert and the range constructor fall back to a
// per-element construct loop that the compiler cannot fold into memcpy (byte
// stores may alias the source iterator). resize() stays fast (the zero-fill
// needs no loads), so bulk appends and copies go resize+memcpy through these
// helpers instead of the iterator-pair container calls.
inline void AppendBytes(Bytes& dst, const uint8_t* src, size_t n) {
  if (n == 0) {
    return;
  }
  const size_t old = dst.size();
  dst.resize(old + n);
  std::memcpy(dst.data() + old, src, n);
}

inline void AppendBytes(Bytes& dst, ByteView src) {
  AppendBytes(dst, src.data(), src.size());
}

inline Bytes CopyBytes(const uint8_t* src, size_t n) {
  Bytes out;
  AppendBytes(out, src, n);
  return out;
}

inline Bytes ByteView::ToBytes() const { return CopyBytes(data_, size_); }

// Convenience conversions.
Bytes BytesFromString(const std::string& s);
std::string StringFromBytes(const Bytes& b);

}  // namespace skern

#endif  // SKERN_SRC_BASE_BYTES_H_
