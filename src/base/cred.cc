#include "src/base/cred.h"

namespace skern {
namespace {

thread_local Cred g_current_cred = Cred::Root();

}  // namespace

const Cred& CurrentCred() { return g_current_cred; }

ScopedCred::ScopedCred(const Cred& cred) : saved_(g_current_cred) {
  g_current_cred = cred;
}

ScopedCred::~ScopedCred() { g_current_cred = saved_; }

Status CheckPermission(const Cred& cred, uint32_t mode, uint32_t uid, uint32_t gid,
                       uint32_t want) {
  if (cred.HasCap(kCapDacOverride)) return Status::Ok();
  uint32_t triad;
  if (cred.uid == uid) {
    triad = (mode >> 6) & 7u;
  } else if (cred.gid == gid) {
    triad = (mode >> 3) & 7u;
  } else {
    triad = mode & 7u;
  }
  if ((want & triad) != want) return Status::Error(Errno::kEACCES);
  return Status::Ok();
}

Status CheckOwner(const Cred& cred, uint32_t uid) {
  if (cred.HasCap(kCapFowner)) return Status::Ok();
  if (cred.uid == uid) return Status::Ok();
  return Status::Error(Errno::kEPERM);
}

}  // namespace skern
