// Credentials: who is asking, and what may they do.
//
// The paper's §2 bug study attributes roughly a quarter of kernel CVEs to
// access-control errors — checks that are missing, inconsistent, or applied
// to the wrong subject. This module gives that CWE class a home: a POSIX-ish
// `Cred{uid, gid, caps}` carried per thread, the DAC permission predicate
// (`CheckPermission`), and the ownership predicate (`CheckOwner`).
//
// Design notes:
//   * The current credential is thread-local and defaults to root with all
//     capabilities, so existing single-actor tests and benchmarks keep their
//     exact behavior; only code that installs a ScopedCred sees denials.
//   * Layering: this lives in src/base (layer 1) so the CVE corpus (layer 3),
//     the VFS (layer 4), and core (layer 5) can all use one Cred type.
//   * kCapDacOverride is the fast-path escape: Vfs check helpers short-circuit
//     before dispatching any Stat, so the root-credential hot paths gain no
//     extra filesystem round-trips (the perf-smoke gates stay honest).
#ifndef SKERN_SRC_BASE_CRED_H_
#define SKERN_SRC_BASE_CRED_H_

#include <cstdint>

#include "src/base/status.h"

namespace skern {

// Permission "want" bits, matching the POSIX rwx triad order (low three bits
// of a mode triad: r=4, w=2, x=1). The safety_lint access analyzer reads
// these token names at check call sites to compute per-path masks.
inline constexpr uint32_t kWantExec = 1;
inline constexpr uint32_t kWantWrite = 2;
inline constexpr uint32_t kWantRead = 4;

// Capabilities (a deliberately tiny subset of the Linux set).
inline constexpr uint32_t kCapChown = 1u << 0;        // may change file owners
inline constexpr uint32_t kCapDacOverride = 1u << 1;  // bypasses mode checks
inline constexpr uint32_t kCapFowner = 1u << 2;       // owner-ops on any file
inline constexpr uint32_t kCapAll = kCapChown | kCapDacOverride | kCapFowner;

struct Cred {
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint32_t caps = kCapAll;

  bool HasCap(uint32_t cap) const { return (caps & cap) == cap; }

  static Cred Root() { return Cred{0, 0, kCapAll}; }
  static Cred User(uint32_t uid, uint32_t gid) { return Cred{uid, gid, 0}; }

  friend bool operator==(const Cred& a, const Cred& b) {
    return a.uid == b.uid && a.gid == b.gid && a.caps == b.caps;
  }
  friend bool operator!=(const Cred& a, const Cred& b) { return !(a == b); }
};

// The calling thread's current credential. Defaults to Root() — a thread
// that never installs a ScopedCred behaves exactly as before this subsystem
// existed. The aio plane captures this at Enqueue so worker threads execute
// with the submitter's identity, not their own.
const Cred& CurrentCred();

// RAII credential switch: installs `cred` for the current thread and
// restores the previous credential on destruction. Nests.
class ScopedCred {
 public:
  explicit ScopedCred(const Cred& cred);
  ~ScopedCred();

  ScopedCred(const ScopedCred&) = delete;
  ScopedCred& operator=(const ScopedCred&) = delete;

 private:
  Cred saved_;
};

// POSIX DAC check: selects the owner/group/other triad of `mode` for `cred`
// and requires every bit of `want` to be present. kCapDacOverride passes
// unconditionally. Returns kEACCES on denial.
Status CheckPermission(const Cred& cred, uint32_t mode, uint32_t uid, uint32_t gid,
                       uint32_t want);

// Ownership check (chmod and friends): the caller must own the file or hold
// kCapFowner. Returns kEPERM on denial — ownership failures are "operation
// not permitted", not "permission denied", matching POSIX errno semantics.
Status CheckOwner(const Cred& cred, uint32_t uid);

}  // namespace skern

#endif  // SKERN_SRC_BASE_CRED_H_
