// ERR_PTR emulation: the unsafe C idiom the paper's step 2 eliminates.
//
// Linux functions like VFS lookup "return a pointer on success or an error
// value on failure. To achieve this in C, the error value is cast to a
// pointer, and the caller must manually check that the pointer is valid
// before dereferencing it" (§4.2). The legacy file system (src/fs/legacyfs/)
// uses these helpers verbatim so that the type-confusion hazard — and the
// fault injections that exploit it — are faithful to the original idiom.
// Safe modules must use Result<T> (src/base/result.h) instead.
#ifndef SKERN_SRC_BASE_ERR_PTR_H_
#define SKERN_SRC_BASE_ERR_PTR_H_

#include <cstdint>

#include "src/base/status.h"

namespace skern {

// Matches Linux's MAX_ERRNO: addresses in the top 4095 bytes of the address
// space are interpreted as negative errno values.
inline constexpr uintptr_t kMaxErrno = 4095;

// Casts a negative errno into a pointer (the hazard itself).
template <typename T>
inline T* ErrPtr(Errno e) {
  return reinterpret_cast<T*>(-static_cast<intptr_t>(e));
}

// True if the pointer actually encodes an error value.
inline bool IsErr(const void* ptr) {
  return reinterpret_cast<uintptr_t>(ptr) >= static_cast<uintptr_t>(-kMaxErrno);
}

inline bool IsErrOrNull(const void* ptr) { return ptr == nullptr || IsErr(ptr); }

// Recovers the errno from an error-encoding pointer. Calling this on a real
// pointer yields garbage — exactly the bug class the paper describes.
inline Errno PtrErr(const void* ptr) {
  return static_cast<Errno>(-static_cast<intptr_t>(reinterpret_cast<uintptr_t>(ptr)));
}

}  // namespace skern

#endif  // SKERN_SRC_BASE_ERR_PTR_H_
