// Intrusive doubly-linked list (list_head analogue).
//
// The buffer cache LRU and journal transaction lists embed nodes in their
// objects, like Linux's struct list_head, avoiding per-link allocations.
// Unlike list_head, membership is checked: linking a linked node or unlinking
// an unlinked node panics instead of corrupting the list.
#ifndef SKERN_SRC_BASE_INTRUSIVE_LIST_H_
#define SKERN_SRC_BASE_INTRUSIVE_LIST_H_

#include <cstddef>

#include "src/base/panic.h"

namespace skern {

class ListNode {
 public:
  ListNode() = default;
  ~ListNode() { SKERN_DCHECK(!linked()); }

  ListNode(const ListNode&) = delete;
  ListNode& operator=(const ListNode&) = delete;

  bool linked() const { return next_ != nullptr; }

 private:
  template <typename T, ListNode T::* Member>
  friend class IntrusiveList;

  ListNode* next_ = nullptr;
  ListNode* prev_ = nullptr;
};

// T must contain a ListNode member, named by the Member pointer:
//   struct Buffer { ListNode lru_node; ... };
//   IntrusiveList<Buffer, &Buffer::lru_node> lru;
template <typename T, ListNode T::* Member>
class IntrusiveList {
 public:
  IntrusiveList() {
    head_.next_ = &head_;
    head_.prev_ = &head_;
  }

  // The sentinel is self-linked while the list exists (that is what makes
  // empty() work), so it can never satisfy ~ListNode's !linked() check on
  // its own; sever it explicitly once the elements are gone.
  ~IntrusiveList() {
    Clear();
    head_.next_ = nullptr;
    head_.prev_ = nullptr;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.next_ == &head_; }
  size_t size() const { return size_; }

  void PushFront(T* obj) { InsertAfter(&head_, NodeOf(obj)); }
  void PushBack(T* obj) { InsertAfter(head_.prev_, NodeOf(obj)); }

  T* Front() const { return empty() ? nullptr : ObjectOf(head_.next_); }
  T* Back() const { return empty() ? nullptr : ObjectOf(head_.prev_); }

  // Unlinks and returns the front element, or nullptr.
  T* PopFront() {
    if (empty()) {
      return nullptr;
    }
    T* obj = ObjectOf(head_.next_);
    Remove(obj);
    return obj;
  }

  T* PopBack() {
    if (empty()) {
      return nullptr;
    }
    T* obj = ObjectOf(head_.prev_);
    Remove(obj);
    return obj;
  }

  void Remove(T* obj) {
    ListNode* node = NodeOf(obj);
    SKERN_CHECK_MSG(node->linked(), "removing unlinked node");
    node->prev_->next_ = node->next_;
    node->next_->prev_ = node->prev_;
    node->next_ = nullptr;
    node->prev_ = nullptr;
    --size_;
  }

  // Moves an already-linked element to the back (LRU touch).
  void MoveToBack(T* obj) {
    Remove(obj);
    PushBack(obj);
  }

  bool Contains(const T* obj) const {
    const ListNode* node = &(obj->*Member);
    if (!node->linked()) {
      return false;
    }
    for (const ListNode* it = head_.next_; it != &head_; it = it->next_) {
      if (it == node) {
        return true;
      }
    }
    return false;
  }

  void Clear() {
    while (!empty()) {
      PopFront();
    }
  }

  // Minimal forward iteration support.
  class Iterator {
   public:
    Iterator(ListNode* node, const IntrusiveList* list) : node_(node), list_(list) {}
    T& operator*() const { return *list_->ObjectOf(node_); }
    T* operator->() const { return list_->ObjectOf(node_); }
    Iterator& operator++() {
      node_ = node_->next_;
      return *this;
    }
    bool operator!=(const Iterator& other) const { return node_ != other.node_; }

   private:
    ListNode* node_;
    const IntrusiveList* list_;
  };

  Iterator begin() { return Iterator(head_.next_, this); }
  Iterator end() { return Iterator(&head_, this); }

 private:
  static ListNode* NodeOf(T* obj) { return &(obj->*Member); }

  T* ObjectOf(ListNode* node) const {
    // offsetof on a member pointer: compute the byte delta of the embedded node.
    const T* probe = nullptr;
    auto delta = reinterpret_cast<const char*>(&(probe->*Member)) -
                 reinterpret_cast<const char*>(probe);
    return reinterpret_cast<T*>(reinterpret_cast<char*>(node) - delta);
  }

  void InsertAfter(ListNode* where, ListNode* node) {
    SKERN_CHECK_MSG(!node->linked(), "inserting already-linked node");
    node->next_ = where->next_;
    node->prev_ = where;
    where->next_->prev_ = node;
    where->next_ = node;
    ++size_;
  }

  ListNode head_;
  size_t size_ = 0;
};

}  // namespace skern

#endif  // SKERN_SRC_BASE_INTRUSIVE_LIST_H_
