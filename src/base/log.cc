#include "src/base/log.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <mutex>

#include "src/obs/metrics.h"

namespace skern {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

// Per-level emission counters live in the metrics registry ("log.messages.*")
// so /metrics and /log report the same numbers LogCount() does.
obs::Counter& LevelCounter(LogLevel level) {
  static std::array<obs::Counter*, 4> counters = {
      &obs::MetricsRegistry::Get().GetCounter("log.messages.debug"),
      &obs::MetricsRegistry::Get().GetCounter("log.messages.info"),
      &obs::MetricsRegistry::Get().GetCounter("log.messages.warn"),
      &obs::MetricsRegistry::Get().GetCounter("log.messages.error"),
  };
  return *counters[static_cast<size_t>(level)];
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kNone:
      return "none";
  }
  return "?";
}

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

uint64_t LogCount(LogLevel level) {
  int idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) {
    return 0;
  }
  return LevelCounter(level).Value();
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelTag(level) << "] " << file << ":" << line << ": ";
}

LogMessage::~LogMessage() {
  int idx = static_cast<int>(level_);
  if (idx >= 0 && idx <= 3) {
    LevelCounter(level_).Inc();
  }
  std::lock_guard<std::mutex> guard(g_emit_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace skern
