#include "src/base/log.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <mutex>

namespace skern {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::array<std::atomic<uint64_t>, 4> g_counts{};
std::mutex g_emit_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

uint64_t LogCount(LogLevel level) {
  int idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) {
    return 0;
  }
  return g_counts[static_cast<size_t>(idx)].load(std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelTag(level) << "] " << file << ":" << line << ": ";
}

LogMessage::~LogMessage() {
  int idx = static_cast<int>(level_);
  if (idx >= 0 && idx <= 3) {
    g_counts[static_cast<size_t>(idx)].fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> guard(g_emit_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace skern
