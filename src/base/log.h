// Minimal leveled logger (printk analogue).
//
// Logging is stream-based and cheap to disable: below-threshold messages never
// format. The default threshold is kWarn so tests and benchmarks stay quiet.
#ifndef SKERN_SRC_BASE_LOG_H_
#define SKERN_SRC_BASE_LOG_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace skern {

enum class LogLevel : int8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kNone = 4,  // disables all logging
};

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Lowercase level name ("warn"), for /log and diagnostics.
const char* LogLevelName(LogLevel level);

// Counts messages emitted per level (diagnosable in tests). Backed by the
// metrics registry ("log.messages.<level>"), so /metrics shows the same
// numbers.
uint64_t LogCount(LogLevel level);

namespace internal {

// One log statement: accumulates a message and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace skern

#define SKERN_LOG(level)                                           \
  if (static_cast<int>(::skern::LogLevel::level) <                 \
      static_cast<int>(::skern::GetLogLevel())) {                  \
  } else                                                           \
    ::skern::internal::LogMessage(::skern::LogLevel::level, __FILE__, __LINE__)

#define SKERN_DEBUG() SKERN_LOG(kDebug)
#define SKERN_INFO() SKERN_LOG(kInfo)
#define SKERN_WARN() SKERN_LOG(kWarn)
#define SKERN_ERROR() SKERN_LOG(kError)

#endif  // SKERN_SRC_BASE_LOG_H_
