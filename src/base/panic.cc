#include "src/base/panic.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/obs/flight_recorder.h"

namespace skern {
namespace {

std::atomic<uint64_t> g_panic_count{0};

// The default handler prints and aborts, like a kernel oops with panic_on_oops.
// Before dying it dumps the flight recorder — the always-on last-N-events
// ring — so the abort ships its causal event history (the moral equivalent
// of ftrace_dump_on_oops). Replaced handlers (ScopedPanicAsException) skip
// the dump: a recovered panic is a test fixture, not a death.
void DefaultPanicHandler(const std::string& message) {
  std::fprintf(stderr, "skern panic: %s\n", message.c_str());
  obs::DumpFlightRecorder();
  std::abort();
}

PanicHandler& GlobalHandler() {
  static PanicHandler handler = DefaultPanicHandler;
  return handler;
}

}  // namespace

void Panic(const std::string& message) {
  g_panic_count.fetch_add(1, std::memory_order_relaxed);
  GlobalHandler()(message);
  // A well-behaved handler never returns (it aborts or throws); enforce that.
  std::fprintf(stderr, "skern panic handler returned; aborting: %s\n", message.c_str());
  std::abort();
}

void PanicAt(const char* file, int line, const std::string& message) {
  Panic(std::string(file) + ":" + std::to_string(line) + ": " + message);
}

PanicHandler SetPanicHandler(PanicHandler handler) {
  PanicHandler previous = std::move(GlobalHandler());
  GlobalHandler() = std::move(handler);
  return previous;
}

ScopedPanicAsException::ScopedPanicAsException() {
  previous_ = SetPanicHandler([](const std::string& message) { throw PanicException(message); });
}

ScopedPanicAsException::~ScopedPanicAsException() { SetPanicHandler(std::move(previous_)); }

uint64_t PanicCount() { return g_panic_count.load(std::memory_order_relaxed); }

}  // namespace skern
