// Panic and runtime-check machinery.
//
// A "panic" models a kernel oops/BUG(): an unrecoverable condition detected at
// runtime. By default a panic aborts the process. Tests and the fault-injection
// harness install a throwing handler so that a detected bug surfaces as a
// catchable PanicException instead of tearing the process down; this is how the
// harness distinguishes "bug detected by a safety check" from "bug silently
// corrupted state" (see src/faultinject/).
#ifndef SKERN_SRC_BASE_PANIC_H_
#define SKERN_SRC_BASE_PANIC_H_

#include <functional>
#include <stdexcept>
#include <string>

namespace skern {

// Thrown by the test-mode panic handler. Carries the panic message.
class PanicException : public std::runtime_error {
 public:
  explicit PanicException(const std::string& what) : std::runtime_error(what) {}
};

using PanicHandler = std::function<void(const std::string& message)>;

// Reports an unrecoverable error. Invokes the installed handler; if the
// handler returns (it should not), aborts.
[[noreturn]] void Panic(const std::string& message);

// Formatted panic with source location, used by the SKERN_CHECK macros.
[[noreturn]] void PanicAt(const char* file, int line, const std::string& message);

// Installs a new global panic handler and returns the previous one.
// Not thread-safe with concurrent panics; intended for test setup.
PanicHandler SetPanicHandler(PanicHandler handler);

// RAII guard that makes panics throw PanicException for its lifetime.
// Restores the previous handler on destruction.
class ScopedPanicAsException {
 public:
  ScopedPanicAsException();
  ~ScopedPanicAsException();

  ScopedPanicAsException(const ScopedPanicAsException&) = delete;
  ScopedPanicAsException& operator=(const ScopedPanicAsException&) = delete;

 private:
  PanicHandler previous_;
};

// Total number of panics raised since process start (including ones converted
// to exceptions). Used by the fault-injection harness for accounting.
uint64_t PanicCount();

}  // namespace skern

// SKERN_CHECK: always-on invariant check (models BUG_ON).
#define SKERN_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::skern::PanicAt(__FILE__, __LINE__, "check failed: " #cond);        \
    }                                                                      \
  } while (0)

#define SKERN_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::skern::PanicAt(__FILE__, __LINE__,                                 \
                       std::string("check failed: " #cond ": ") + (msg));  \
    }                                                                      \
  } while (0)

// SKERN_DCHECK: debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define SKERN_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define SKERN_DCHECK(cond) SKERN_CHECK(cond)
#endif

#define SKERN_UNREACHABLE() ::skern::PanicAt(__FILE__, __LINE__, "unreachable code reached")

#endif  // SKERN_SRC_BASE_PANIC_H_
