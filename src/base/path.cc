#include "src/base/path.h"

#include <utility>
#include <vector>

#include "src/base/status.h"

namespace skern {
namespace specpath {

bool IsNormalized(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return false;
  }
  if (path.size() == 1) {
    return true;  // "/"
  }
  size_t start = 1;  // first char of the current component
  for (size_t i = 1; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      size_t len = i - start;
      if (len == 0 || len > kMaxComponentLen) {
        return false;  // "//", trailing slash, or overlong component
      }
      if (path[start] == '.' && (len == 1 || (len == 2 && path[start + 1] == '.'))) {
        return false;  // "." or ".." segment
      }
      start = i + 1;
    }
  }
  return true;
}

Result<std::string> Normalize(const std::string& path) {
  if (IsNormalized(path)) {
    // Fast path: canonical inputs (everything below the VFS boundary, which
    // normalizes once) skip the component parse and its allocations.
    return path;
  }
  if (path.empty() || path[0] != '/') {
    return Errno::kEINVAL;
  }
  std::vector<std::string> parts;
  size_t i = 1;
  while (i <= path.size()) {
    size_t next = path.find('/', i);
    if (next == std::string::npos) {
      next = path.size();
    }
    std::string part = path.substr(i, next - i);
    if (part == "..") {
      return Errno::kEINVAL;
    }
    if (!part.empty() && part != ".") {
      if (part.size() > kMaxComponentLen) {
        return Errno::kENAMETOOLONG;
      }
      parts.push_back(std::move(part));
    }
    i = next + 1;
  }
  if (parts.empty()) {
    return std::string("/");
  }
  std::string out;
  for (const auto& part : parts) {
    out += '/';
    out += part;
  }
  return out;
}

std::string Parent(const std::string& normalized) {
  if (normalized == "/") {
    return "/";
  }
  size_t pos = normalized.rfind('/');
  if (pos == 0) {
    return "/";
  }
  return normalized.substr(0, pos);
}

std::string Basename(const std::string& normalized) {
  if (normalized == "/") {
    return "";
  }
  size_t pos = normalized.rfind('/');
  return normalized.substr(pos + 1);
}

bool IsPrefix(const std::string& prefix, const std::string& path) {
  if (prefix == path) {
    return true;
  }
  if (prefix == "/") {
    return true;
  }
  return path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
         path[prefix.size()] == '/';
}

std::string SubstitutePrefix(const std::string& from, const std::string& to,
                             const std::string& path) {
  if (path == from) {
    return to;
  }
  // path is underneath from: replace the leading segment.
  return to + path.substr(from.size());
}

}  // namespace specpath
}  // namespace skern
