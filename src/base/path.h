// Canonical path algebra shared by the specification, the VFS layer, and
// every file system implementation.
//
// All canonical paths are absolute and normalized ("/a/b"; "/" for the root;
// no trailing slash). The helpers live in src/base (not src/spec) because
// they are pure string functions with no model state: the VFS boundary, the
// executable specification, and the implementations all consume them, and the
// module-layering rules (tools/safety_lint/layers.toml) place the shared
// vocabulary below all three. The namespace keeps its historical name
// `specpath` — the *specification* owns the definition of canonical form.
#ifndef SKERN_SRC_BASE_PATH_H_
#define SKERN_SRC_BASE_PATH_H_

#include <cstddef>
#include <string>

#include "src/base/result.h"

namespace skern {
namespace specpath {

// Maximum component length, matching the on-disk dirent name capacity
// (kMaxNameLen in src/fs/layout.h) so the specification and every
// implementation agree on ENAMETOOLONG.
inline constexpr size_t kMaxComponentLen = 54;

// True if `path` is already in canonical form: absolute, no duplicate or
// trailing slashes, no "."/".." segments, every component within
// kMaxComponentLen. A path for which this holds is exactly a fixed point of
// Normalize(); the VFS boundary uses it to skip re-parsing on every op.
bool IsNormalized(const std::string& path);

// Normalizes a path: collapses duplicate slashes, resolves "." segments.
// ".." is rejected (the substrate has no symlinks or relative walks).
// Returns kEINVAL for empty/relative/illegal paths. Already-canonical inputs
// (the common case once the VFS has normalized at its boundary) take an
// allocation-free validation fast path.
Result<std::string> Normalize(const std::string& path);

// Parent of a normalized path ("/a/b" -> "/a", "/a" -> "/"). "/" has no
// parent; returns "/".
std::string Parent(const std::string& normalized);

// Final component ("/a/b" -> "b"); empty for "/".
std::string Basename(const std::string& normalized);

// True if `path` equals `prefix` or is underneath it.
bool IsPrefix(const std::string& prefix, const std::string& path);

// Replaces the `from` prefix of `path` with `to` (both normalized dirs).
std::string SubstitutePrefix(const std::string& from, const std::string& to,
                             const std::string& path);

}  // namespace specpath
}  // namespace skern

#endif  // SKERN_SRC_BASE_PATH_H_
