// Result<T>: a value-or-error union type.
//
// This is the type-safe replacement (§4.2) for the two C idioms the paper
// calls out:
//   * returning a pointer on success and a casted error value on failure
//     (ERR_PTR / IS_ERR, emulated in err_ptr.h for the legacy modules), and
//   * out-parameters with a separate int error return.
// A Result is always in exactly one of the two states; accessing the wrong
// alternative is a checked panic, never silent type confusion.
#ifndef SKERN_SRC_BASE_RESULT_H_
#define SKERN_SRC_BASE_RESULT_H_

#include <utility>
#include <variant>

#include "src/base/panic.h"
#include "src/base/status.h"

namespace skern {

template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error keeps call sites terse:
  //   return bytes;            // success
  //   return Errno::kENOENT;   // failure
  Result(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Result(Errno error) : state_(std::in_place_index<1>, error) {
    SKERN_CHECK_MSG(error != Errno::kOk, "Result error state requires a non-OK code");
  }
  Result(Status status) : Result(status.code()) {}

  bool ok() const { return state_.index() == 0; }

  Errno error() const {
    SKERN_CHECK_MSG(!ok(), "Result::error() called on a success value");
    return std::get<1>(state_);
  }

  Status status() const { return ok() ? Status::Ok() : Status::Error(std::get<1>(state_)); }

  T& value() & {
    SKERN_CHECK_MSG(ok(), "Result::value() called on an error");
    return std::get<0>(state_);
  }
  const T& value() const& {
    SKERN_CHECK_MSG(ok(), "Result::value() called on an error");
    return std::get<0>(state_);
  }
  T&& value() && {
    SKERN_CHECK_MSG(ok(), "Result::value() called on an error");
    return std::get<0>(std::move(state_));
  }

  // value_or: returns the contained value or a fallback.
  T value_or(T fallback) const& { return ok() ? std::get<0>(state_) : std::move(fallback); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Functional map: applies f to the value if present, propagates the error
  // otherwise. Lets layered code thread errors without branching.
  template <typename F>
  auto Map(F&& f) const& -> Result<decltype(f(std::declval<const T&>()))> {
    if (!ok()) {
      return error();
    }
    return f(std::get<0>(state_));
  }

 private:
  std::variant<T, Errno> state_;
};

}  // namespace skern

// Unwraps a Result into `lhs`, returning the error Status on failure.
// Usage: SKERN_ASSIGN_OR_RETURN(auto ino, fs.Lookup(path));
#define SKERN_ASSIGN_OR_RETURN(lhs, expr)         \
  SKERN_ASSIGN_OR_RETURN_IMPL_(                   \
      SKERN_RESULT_CONCAT_(skern_res_, __LINE__), lhs, expr)

#define SKERN_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).value()

#define SKERN_RESULT_CONCAT_(a, b) SKERN_RESULT_CONCAT_2_(a, b)
#define SKERN_RESULT_CONCAT_2_(a, b) a##b

#endif  // SKERN_SRC_BASE_RESULT_H_
