#include "src/base/rng.h"

#include <cmath>

#include "src/base/panic.h"

namespace skern {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  SKERN_CHECK(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  SKERN_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Guard against log(0).
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextExponential(double rate) {
  SKERN_CHECK(rate > 0.0);
  double u = NextDouble();
  if (u < 1e-300) {
    u = 1e-300;
  }
  return -std::log(u) / rate;
}

uint64_t Rng::NextPoisson(double mean) {
  SKERN_CHECK(mean >= 0.0);
  if (mean == 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    // Normal approximation keeps large-mean draws O(1).
    double v = mean + std::sqrt(mean) * NextGaussian();
    return v <= 0.0 ? 0 : static_cast<uint64_t>(v + 0.5);
  }
  double l = std::exp(-mean);
  uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > l);
  return k - 1;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  SKERN_CHECK(n > 0);
  if (n == 1) {
    return 0;
  }
  // Inverse-CDF on the continuous approximation, then clamp. Adequate for
  // workload skew; not a statistically exact sampler.
  double u = NextDouble();
  if (std::abs(s - 1.0) < 1e-9) {
    double h = std::log(static_cast<double>(n));
    uint64_t rank = static_cast<uint64_t>(std::exp(u * h)) - 1;
    return rank >= n ? n - 1 : rank;
  }
  double exp1 = 1.0 - s;
  double hmax = (std::pow(static_cast<double>(n), exp1) - 1.0) / exp1;
  double x = std::pow(u * hmax * exp1 + 1.0, 1.0 / exp1);
  uint64_t rank = static_cast<uint64_t>(x) - (x >= 1.0 ? 1 : 0);
  return rank >= n ? n - 1 : rank;
}

std::string Rng::NextName(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + NextBelow(26)));
  }
  return out;
}

Bytes Rng::NextBytes(size_t length) {
  Bytes out(length);
  size_t i = 0;
  while (i + 8 <= length) {
    uint64_t v = Next();
    for (int b = 0; b < 8; ++b) {
      out[i++] = static_cast<uint8_t>(v >> (8 * b));
    }
  }
  if (i < length) {
    uint64_t v = Next();
    while (i < length) {
      out[i++] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace skern
