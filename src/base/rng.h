// Deterministic pseudo-random number generation.
//
// Everything stochastic in skern — workload generators, the synthetic CVE
// corpus, fault-injection schedules, crash points — draws from this generator
// so that every experiment is reproducible from a seed.
#ifndef SKERN_SRC_BASE_RNG_H_
#define SKERN_SRC_BASE_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/bytes.h"

namespace skern {

// xoshiro256** seeded via splitmix64. Fast, high-quality, deterministic
// across platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform on [0, 2^64).
  uint64_t Next();

  // Uniform on [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform on [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform on [0, 1).
  double NextDouble();

  // True with probability p.
  bool NextBool(double p = 0.5);

  // Standard-normal via Box-Muller.
  double NextGaussian();

  // Exponential with the given rate (mean 1/rate).
  double NextExponential(double rate);

  // Poisson-distributed count with the given mean (inversion for small means,
  // normal approximation above 64 to stay O(1)).
  uint64_t NextPoisson(double mean);

  // Zipf-like rank on [0, n) with exponent s (clamped rejection-inversion).
  // Used by file-access and packet-size workloads.
  uint64_t NextZipf(uint64_t n, double s);

  // Random lowercase name of the given length.
  std::string NextName(size_t length);

  // Fills a byte vector with random content.
  Bytes NextBytes(size_t length);

  // Derives an independent child generator (for per-component streams).
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace skern

#endif  // SKERN_SRC_BASE_RNG_H_
