#include "src/base/sim_clock.h"

#include <utility>

namespace skern {

uint64_t SimClock::ScheduleAt(SimTime deadline, std::function<void()> fn) {
  std::lock_guard<std::mutex> guard(mu_);
  uint64_t id = next_id_++;
  timers_.emplace(deadline, Timer{id, std::move(fn)});
  return id;
}

uint64_t SimClock::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  return ScheduleAt(now() + delay, std::move(fn));
}

bool SimClock::Cancel(uint64_t timer_id) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.id == timer_id) {
      timers_.erase(it);
      return true;
    }
  }
  return false;
}

void SimClock::Advance(SimTime delta) {
  SimTime target = now() + delta;
  for (;;) {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> guard(mu_);
      auto it = timers_.begin();
      if (it == timers_.end() || it->first > target) {
        break;
      }
      now_.store(std::max(now(), it->first), std::memory_order_relaxed);
      fn = std::move(it->second.fn);
      timers_.erase(it);
    }
    // Fire outside the lock: the body may schedule or cancel timers.
    fn();
  }
  now_.store(std::max(now(), target), std::memory_order_relaxed);
}

bool SimClock::AdvanceToNextEvent() {
  SimTime next;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (timers_.empty()) {
      return false;
    }
    next = timers_.begin()->first;
  }
  SimTime current = now();
  Advance(next > current ? next - current : 0);
  return true;
}

}  // namespace skern
