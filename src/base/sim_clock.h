// Simulated monotonic clock.
//
// Network retransmission timers, journal commit intervals, and the CVE
// timeline all run on simulated time so that experiments are deterministic
// and can fast-forward through idle periods.
#ifndef SKERN_SRC_BASE_SIM_CLOCK_H_
#define SKERN_SRC_BASE_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "src/obs/trace_clock.h"

namespace skern {

// Nanoseconds since simulation start.
using SimTime = uint64_t;

inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

// A discrete-event clock with one-shot timers. now() is an atomic read so
// the tracer may sample the clock from any thread (SimClock implements
// obs::TraceClock for deterministic traces). Timer scheduling and
// cancellation are thread-safe: the sharded network stack arms
// retransmission timers from whichever thread drives a socket, while one
// driver thread advances time. Timers fire outside the internal lock, so a
// timer body may freely schedule or cancel other timers; single-threaded
// simulations behave exactly as before (equal deadlines fire in insertion
// order, preserved by the multimap).
//
// This is a plain std::mutex, not a TrackedMutex: SimClock sits below
// src/sync (the lock registry itself schedules nothing, but base must not
// depend upward), and the critical sections are a handful of map operations.
class SimClock : public obs::TraceClock {
 public:
  SimClock() = default;

  SimTime now() const { return now_.load(std::memory_order_relaxed); }

  // obs::TraceClock: trace timestamps are simulated nanoseconds.
  uint64_t TraceNowNs() const override { return now(); }

  // Schedules `fn` to run when the clock reaches `deadline`. Returns a timer
  // id usable with Cancel. Deadlines in the past fire on the next Advance.
  uint64_t ScheduleAt(SimTime deadline, std::function<void()> fn);
  uint64_t ScheduleAfter(SimTime delay, std::function<void()> fn);

  // Cancels a pending timer; returns false if it already fired or never existed.
  bool Cancel(uint64_t timer_id);

  // Advances time by `delta`, firing due timers in deadline order. Timers
  // scheduled by running timers fire in the same Advance if due. Callbacks
  // run on the advancing thread with no clock lock held.
  void Advance(SimTime delta);

  // Advances directly to the next pending deadline (no-op if none).
  // Returns true if a timer fired.
  bool AdvanceToNextEvent();

  size_t pending_timers() const {
    std::lock_guard<std::mutex> guard(mu_);
    return timers_.size();
  }

 private:
  struct Timer {
    uint64_t id;
    std::function<void()> fn;
  };

  std::atomic<SimTime> now_{0};
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;                    // guarded by mu_
  std::multimap<SimTime, Timer> timers_;    // guarded by mu_
};

}  // namespace skern

#endif  // SKERN_SRC_BASE_SIM_CLOCK_H_
