#include "src/base/status.h"

namespace skern {

const char* ErrnoName(Errno e) {
  switch (e) {
    case Errno::kOk:
      return "OK";
    case Errno::kEPERM:
      return "EPERM";
    case Errno::kENOENT:
      return "ENOENT";
    case Errno::kEIO:
      return "EIO";
    case Errno::kEBADF:
      return "EBADF";
    case Errno::kEAGAIN:
      return "EAGAIN";
    case Errno::kENOMEM:
      return "ENOMEM";
    case Errno::kEACCES:
      return "EACCES";
    case Errno::kEFAULT:
      return "EFAULT";
    case Errno::kEBUSY:
      return "EBUSY";
    case Errno::kEEXIST:
      return "EEXIST";
    case Errno::kEXDEV:
      return "EXDEV";
    case Errno::kENODEV:
      return "ENODEV";
    case Errno::kENOTDIR:
      return "ENOTDIR";
    case Errno::kEISDIR:
      return "EISDIR";
    case Errno::kEINVAL:
      return "EINVAL";
    case Errno::kENFILE:
      return "ENFILE";
    case Errno::kEMFILE:
      return "EMFILE";
    case Errno::kEFBIG:
      return "EFBIG";
    case Errno::kENOSPC:
      return "ENOSPC";
    case Errno::kEROFS:
      return "EROFS";
    case Errno::kEPIPE:
      return "EPIPE";
    case Errno::kERANGE:
      return "ERANGE";
    case Errno::kENAMETOOLONG:
      return "ENAMETOOLONG";
    case Errno::kENOSYS:
      return "ENOSYS";
    case Errno::kENOTEMPTY:
      return "ENOTEMPTY";
    case Errno::kELOOP:
      return "ELOOP";
    case Errno::kEOVERFLOW:
      return "EOVERFLOW";
    case Errno::kEMSGSIZE:
      return "EMSGSIZE";
    case Errno::kEPROTONOSUPPORT:
      return "EPROTONOSUPPORT";
    case Errno::kEADDRINUSE:
      return "EADDRINUSE";
    case Errno::kEADDRNOTAVAIL:
      return "EADDRNOTAVAIL";
    case Errno::kENETUNREACH:
      return "ENETUNREACH";
    case Errno::kECONNRESET:
      return "ECONNRESET";
    case Errno::kENOBUFS:
      return "ENOBUFS";
    case Errno::kEISCONN:
      return "EISCONN";
    case Errno::kENOTCONN:
      return "ENOTCONN";
    case Errno::kETIMEDOUT:
      return "ETIMEDOUT";
    case Errno::kECONNREFUSED:
      return "ECONNREFUSED";
    case Errno::kEALREADY:
      return "EALREADY";
    case Errno::kEINPROGRESS:
      return "EINPROGRESS";
  }
  return "E???";
}

const char* ErrnoMessage(Errno e) {
  switch (e) {
    case Errno::kOk:
      return "Success";
    case Errno::kEPERM:
      return "Operation not permitted";
    case Errno::kENOENT:
      return "No such file or directory";
    case Errno::kEIO:
      return "I/O error";
    case Errno::kEBADF:
      return "Bad file descriptor";
    case Errno::kEAGAIN:
      return "Try again";
    case Errno::kENOMEM:
      return "Out of memory";
    case Errno::kEACCES:
      return "Permission denied";
    case Errno::kEFAULT:
      return "Bad address";
    case Errno::kEBUSY:
      return "Device or resource busy";
    case Errno::kEEXIST:
      return "File exists";
    case Errno::kEXDEV:
      return "Cross-device link";
    case Errno::kENODEV:
      return "No such device";
    case Errno::kENOTDIR:
      return "Not a directory";
    case Errno::kEISDIR:
      return "Is a directory";
    case Errno::kEINVAL:
      return "Invalid argument";
    case Errno::kENFILE:
      return "File table overflow";
    case Errno::kEMFILE:
      return "Too many open files";
    case Errno::kEFBIG:
      return "File too large";
    case Errno::kENOSPC:
      return "No space left on device";
    case Errno::kEROFS:
      return "Read-only file system";
    case Errno::kEPIPE:
      return "Broken pipe";
    case Errno::kERANGE:
      return "Math result not representable";
    case Errno::kENAMETOOLONG:
      return "File name too long";
    case Errno::kENOSYS:
      return "Function not implemented";
    case Errno::kENOTEMPTY:
      return "Directory not empty";
    case Errno::kELOOP:
      return "Too many levels of symbolic links";
    case Errno::kEOVERFLOW:
      return "Value too large for defined data type";
    case Errno::kEMSGSIZE:
      return "Message too long";
    case Errno::kEPROTONOSUPPORT:
      return "Protocol not supported";
    case Errno::kEADDRINUSE:
      return "Address already in use";
    case Errno::kEADDRNOTAVAIL:
      return "Cannot assign requested address";
    case Errno::kENETUNREACH:
      return "Network is unreachable";
    case Errno::kECONNRESET:
      return "Connection reset by peer";
    case Errno::kENOBUFS:
      return "No buffer space available";
    case Errno::kEISCONN:
      return "Transport endpoint is already connected";
    case Errno::kENOTCONN:
      return "Transport endpoint is not connected";
    case Errno::kETIMEDOUT:
      return "Connection timed out";
    case Errno::kECONNREFUSED:
      return "Connection refused";
    case Errno::kEALREADY:
      return "Operation already in progress";
    case Errno::kEINPROGRESS:
      return "Operation now in progress";
  }
  return "Unknown error";
}

std::ostream& operator<<(std::ostream& os, Errno e) { return os << ErrnoName(e); }

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  return std::string(ErrnoName(code_)) + " (" + ErrnoMessage(code_) + ")";
}

std::ostream& operator<<(std::ostream& os, Status s) { return os << s.ToString(); }

}  // namespace skern
