// Error codes and Status.
//
// skern uses kernel-style errno values internally so that the legacy (C-idiom)
// file system can keep its ERR_PTR conventions while the safe layers wrap the
// same codes in typed Status/Result values — the §4.2 migration the paper
// describes: "type safe interfaces ... require functions to return a union
// type that can hold either valid data or an error".
#ifndef SKERN_SRC_BASE_STATUS_H_
#define SKERN_SRC_BASE_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace skern {

// Subset of Linux errno values used by the substrate. Numeric values match
// Linux so the ERR_PTR emulation in err_ptr.h is faithful.
enum class Errno : int32_t {
  kOk = 0,
  kEPERM = 1,      // Operation not permitted
  kENOENT = 2,     // No such file or directory
  kEIO = 5,        // I/O error
  kEBADF = 9,      // Bad file descriptor
  kEAGAIN = 11,    // Try again
  kENOMEM = 12,    // Out of memory
  kEACCES = 13,    // Permission denied
  kEFAULT = 14,    // Bad address
  kEBUSY = 16,     // Device or resource busy
  kEEXIST = 17,    // File exists
  kEXDEV = 18,     // Cross-device link
  kENODEV = 19,    // No such device
  kENOTDIR = 20,   // Not a directory
  kEISDIR = 21,    // Is a directory
  kEINVAL = 22,    // Invalid argument
  kENFILE = 23,    // File table overflow
  kEMFILE = 24,    // Too many open files
  kEFBIG = 27,     // File too large
  kENOSPC = 28,    // No space left on device
  kEROFS = 30,     // Read-only file system
  kEPIPE = 32,     // Broken pipe
  kERANGE = 34,    // Math result not representable
  kENAMETOOLONG = 36,
  kENOSYS = 38,       // Function not implemented
  kENOTEMPTY = 39,    // Directory not empty
  kELOOP = 40,        // Too many symbolic links
  kEOVERFLOW = 75,    // Value too large for defined data type
  kEMSGSIZE = 90,     // Message too long
  kEPROTONOSUPPORT = 93,
  kEADDRINUSE = 98,      // Address already in use
  kEADDRNOTAVAIL = 99,   // Cannot assign requested address
  kENETUNREACH = 101,    // Network is unreachable
  kECONNRESET = 104,     // Connection reset by peer
  kENOBUFS = 105,        // No buffer space available
  kEISCONN = 106,        // Socket is already connected
  kENOTCONN = 107,       // Socket is not connected
  kETIMEDOUT = 110,      // Connection timed out
  kECONNREFUSED = 111,   // Connection refused
  kEALREADY = 114,       // Operation already in progress
  kEINPROGRESS = 115,    // Operation now in progress
};

// Human-readable name ("ENOENT") for diagnostics.
const char* ErrnoName(Errno e);
// Human-readable description ("No such file or directory").
const char* ErrnoMessage(Errno e);

std::ostream& operator<<(std::ostream& os, Errno e);

// A success-or-error value without a payload. Cheap (one word).
class Status {
 public:
  // Default is success.
  constexpr Status() : code_(Errno::kOk) {}
  constexpr explicit Status(Errno code) : code_(code) {}

  static constexpr Status Ok() { return Status(); }
  static constexpr Status Error(Errno code) { return Status(code); }

  constexpr bool ok() const { return code_ == Errno::kOk; }
  constexpr Errno code() const { return code_; }

  std::string ToString() const;

  friend constexpr bool operator==(Status a, Status b) { return a.code_ == b.code_; }
  friend constexpr bool operator!=(Status a, Status b) { return a.code_ != b.code_; }

 private:
  Errno code_;
};

std::ostream& operator<<(std::ostream& os, Status s);

}  // namespace skern

// Propagates an error Status from a callee, kernel-style "if (err) return err".
#define SKERN_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::skern::Status skern_status_ = (expr);  \
    if (!skern_status_.ok()) {               \
      return skern_status_;                  \
    }                                        \
  } while (0)

#endif  // SKERN_SRC_BASE_STATUS_H_
