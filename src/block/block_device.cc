#include "src/block/block_device.h"

#include <algorithm>

#include "src/base/panic.h"

namespace skern {

RamDisk::RamDisk(uint64_t block_count, uint64_t seed)
    : block_count_(block_count),
      durable_(block_count * kBlockSize, 0),
      rng_(seed ^ 0x9e3779b97f4a7c15ULL) {
  SKERN_CHECK(block_count > 0);
}

Status RamDisk::ReadBlock(uint64_t block, MutableByteView out) {
  if (block >= block_count_) {
    return Status::Error(Errno::kEINVAL);
  }
  if (out.size() != kBlockSize) {
    return Status::Error(Errno::kEINVAL);
  }
  SpinGuard guard(lock_);
  if (error_blocks_.count(block) > 0) {
    ++stats_.injected_errors;
    return Status::Error(Errno::kEIO);
  }
  ++stats_.reads;
  auto it = cache_.find(block);
  if (it != cache_.end()) {
    out.CopyFrom(ByteView(it->second));
  } else {
    out.CopyFrom(ByteView(durable_.data() + block * kBlockSize, kBlockSize));
  }
  return Status::Ok();
}

Status RamDisk::WriteBlock(uint64_t block, ByteView data) {
  if (block >= block_count_) {
    return Status::Error(Errno::kEINVAL);
  }
  if (data.size() != kBlockSize) {
    return Status::Error(Errno::kEINVAL);
  }
  SpinGuard guard(lock_);
  if (error_blocks_.count(block) > 0) {
    ++stats_.injected_errors;
    return Status::Error(Errno::kEIO);
  }
  ++stats_.writes;
  pending_.push_back(PendingWrite{block, data.ToBytes()});
  cache_[block] = data.ToBytes();
  if (crash_after_writes_.has_value()) {
    if (--*crash_after_writes_ == 0) {
      ApplyCrashLocked(crash_persistence_, crash_tear_last_);
      crash_after_writes_.reset();
      return Status::Error(Errno::kEIO);
    }
  }
  return Status::Ok();
}

Status RamDisk::Flush() {
  SpinGuard guard(lock_);
  ++stats_.flushes;
  for (const auto& w : pending_) {
    std::copy(w.data.begin(), w.data.end(), durable_.begin() + w.block * kBlockSize);
  }
  pending_.clear();
  cache_.clear();
  return Status::Ok();
}

void RamDisk::CrashNow(CrashPersistence persistence, bool tear_last) {
  SpinGuard guard(lock_);
  ApplyCrashLocked(persistence, tear_last);
}

void RamDisk::ApplyCrashLocked(CrashPersistence persistence, bool tear_last) {
  ++stats_.crashes;
  // Decide which pending writes reached media on their own.
  std::vector<const PendingWrite*> survivors;
  switch (persistence) {
    case CrashPersistence::kLoseAll:
      break;
    case CrashPersistence::kRandomPrefix: {
      size_t keep = pending_.empty() ? 0 : rng_.NextBelow(pending_.size() + 1);
      for (size_t i = 0; i < keep; ++i) {
        survivors.push_back(&pending_[i]);
      }
      break;
    }
    case CrashPersistence::kRandomSubset: {
      for (const auto& w : pending_) {
        if (rng_.NextBool(0.5)) {
          survivors.push_back(&w);
        }
      }
      break;
    }
  }
  for (size_t i = 0; i < survivors.size(); ++i) {
    const PendingWrite& w = *survivors[i];
    bool tear = tear_last && i + 1 == survivors.size();
    size_t len = tear ? kBlockSize / 2 : kBlockSize;
    std::copy(w.data.begin(), w.data.begin() + len, durable_.begin() + w.block * kBlockSize);
  }
  pending_.clear();
  cache_.clear();
}

void RamDisk::ScheduleCrashAfterWrites(uint64_t n, CrashPersistence persistence,
                                       bool tear_last) {
  SKERN_CHECK(n > 0);
  SpinGuard guard(lock_);
  crash_after_writes_ = n;
  crash_persistence_ = persistence;
  crash_tear_last_ = tear_last;
}

void RamDisk::InjectBlockError(uint64_t block) {
  SpinGuard guard(lock_);
  error_blocks_[block] = true;
}

void RamDisk::ClearBlockErrors() {
  SpinGuard guard(lock_);
  error_blocks_.clear();
}

ByteView RamDisk::DurableContent(uint64_t block) const {
  SKERN_CHECK(block < block_count_);
  return ByteView(durable_.data() + block * kBlockSize, kBlockSize);
}

}  // namespace skern
