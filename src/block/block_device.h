// Block-device interface and the simulated RAM disk with crash injection.
//
// The substrate under every file system in skern. The RAM disk implements the
// standard volatile-cache disk contract:
//   * WriteBlock lands in the device's volatile cache;
//   * Flush is a barrier — everything written before it is durable;
//   * a crash loses the volatile cache, except that any *subset* of the
//     pending writes may have reached media on their own (disks reorder), and
//     the write in flight at the crash instant may be torn.
// This is exactly the adversary a journaling file system must defeat, and the
// crash oracle in src/spec/ checks recovery against it.
#ifndef SKERN_SRC_BLOCK_BLOCK_DEVICE_H_
#define SKERN_SRC_BLOCK_BLOCK_DEVICE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/sync/spinlock.h"

namespace skern {

inline constexpr uint32_t kBlockSize = 4096;

// Abstract device: the modular interface (step 1) for storage.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Reads one whole block into `out` (must be kBlockSize bytes).
  virtual Status ReadBlock(uint64_t block, MutableByteView out) = 0;

  // Writes one whole block from `data` (must be kBlockSize bytes).
  virtual Status WriteBlock(uint64_t block, ByteView data) = 0;

  // Durability barrier: all writes issued before Flush survive a crash.
  virtual Status Flush() = 0;

  virtual uint64_t BlockCount() const = 0;
};

// How pending (un-flushed) writes behave at a crash.
enum class CrashPersistence : uint8_t {
  kLoseAll = 0,       // nothing pending survives
  kRandomPrefix = 1,  // a random prefix of the pending write sequence survives
  kRandomSubset = 2,  // each pending write independently survives (reordering)
};

struct RamDiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t flushes = 0;
  uint64_t crashes = 0;
  uint64_t injected_errors = 0;
};

// Internally synchronized (a raw device spinlock, like a driver's queue
// lock): the sharded buffer cache issues reads and writebacks from
// different shards concurrently, so the device must serialize itself.
class RamDisk : public BlockDevice {
 public:
  RamDisk(uint64_t block_count, uint64_t seed = 0);

  Status ReadBlock(uint64_t block, MutableByteView out) override;
  Status WriteBlock(uint64_t block, ByteView data) override;
  Status Flush() override;
  uint64_t BlockCount() const override { return block_count_; }

  // --- crash injection ---

  // Crashes now: pending writes survive per `persistence`; if `tear_last` and
  // the last surviving write exists, only its first half lands (torn write).
  // After the crash the device is immediately usable ("rebooted") and reads
  // see only what survived.
  void CrashNow(CrashPersistence persistence, bool tear_last = false);

  // Arms an automatic crash during the Nth future write (1-based). That write
  // returns EIO; pending state collapses per `persistence`.
  void ScheduleCrashAfterWrites(uint64_t n, CrashPersistence persistence,
                                bool tear_last = false);
  bool crash_armed() const {
    SpinGuard guard(lock_);
    return crash_after_writes_.has_value();
  }

  // --- error injection ---

  // Every I/O touching `block` fails with EIO until cleared.
  void InjectBlockError(uint64_t block);
  void ClearBlockErrors();

  RamDiskStats stats() const {
    SpinGuard guard(lock_);
    return stats_;
  }
  uint64_t pending_write_count() const {
    SpinGuard guard(lock_);
    return pending_.size();
  }

  // Test-only direct view of durable media content.
  ByteView DurableContent(uint64_t block) const;

 private:
  struct PendingWrite {
    uint64_t block;
    Bytes data;
  };

  void ApplyCrashLocked(CrashPersistence persistence, bool tear_last);

  mutable Spinlock lock_;
  uint64_t block_count_;
  Bytes durable_;           // media as of last barrier + survived writes
  std::map<uint64_t, Bytes> cache_;  // pending logical content per block
  std::vector<PendingWrite> pending_;  // ordered un-flushed writes
  std::optional<uint64_t> crash_after_writes_;
  CrashPersistence crash_persistence_ = CrashPersistence::kLoseAll;
  bool crash_tear_last_ = false;
  std::map<uint64_t, bool> error_blocks_;
  RamDiskStats stats_;
  Rng rng_;
};

}  // namespace skern

#endif  // SKERN_SRC_BLOCK_BLOCK_DEVICE_H_
