#include "src/block/buffer_cache.h"

#include <atomic>

#include "src/base/log.h"
#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace skern {
namespace {

std::atomic<bool> g_state_checking{true};

}  // namespace

bool GetBufferStateChecking() { return g_state_checking.load(std::memory_order_relaxed); }

void SetBufferStateChecking(bool enabled) {
  g_state_checking.store(enabled, std::memory_order_relaxed);
}

BufferCache::BufferCache(BlockDevice& device, size_t capacity)
    : device_(device), capacity_(capacity), mutex_("buffercache.lock") {
  SKERN_CHECK(capacity_ > 0);
}

BufferCache::~BufferCache() {
  // Unpin LRU membership so the intrusive-list debug checks stay quiet.
  lru_.Clear();
}

void BufferCache::ValidateTransition(const BufferHead* bh, const char* where) {
  if (!GetBufferStateChecking()) {
    return;
  }
  auto violations = ValidateBufferState(bh->state.load(std::memory_order_acquire));
  if (!violations.empty()) {
    stats_.state_violations += violations.size();
    Panic(std::string("buffer_head state invalid at ") + where + ": " +
          violations.front().rule + " [" +
          BufferStateToString(bh->state.load(std::memory_order_relaxed)) + "]");
  }
}

void BufferCache::EvictIfNeededLocked() {
  while (buffers_.size() >= capacity_) {
    BufferHead* victim = lru_.PopFront();
    if (victim == nullptr) {
      // Everything is referenced; the cache cannot shrink. Allow temporary
      // overcommit rather than deadlocking the caller.
      SKERN_WARN() << "buffer cache over capacity with all buffers pinned";
      return;
    }
    if (victim->Test(BhFlag::kDirty)) {
      Status s = WriteBackLocked(victim);
      if (!s.ok()) {
        // Failed writeback: keep the buffer (and its data) around; put it at
        // the hot end so we do not spin on it.
        lru_.PushBack(victim);
        return;
      }
    }
    ++stats_.evictions;
    SKERN_COUNTER_INC("block.cache.evictions");
    SKERN_TRACE("block", "cache_evict", victim->blocknr);
    buffers_.erase(victim->blocknr);
  }
}

BufferHead* BufferCache::GetBlock(uint64_t block) {
  MutexGuard guard(mutex_);
  auto it = buffers_.find(block);
  if (it != buffers_.end()) {
    ++stats_.hits;
    SKERN_COUNTER_INC("block.cache.hits");
    SKERN_TRACE("block", "cache_hit", block);
    BufferHead* bh = it->second.get();
    if (bh->refcount.fetch_add(1, std::memory_order_acq_rel) == 0 && bh->lru_node.linked()) {
      lru_.Remove(bh);
    }
    return bh;
  }
  ++stats_.misses;
  SKERN_COUNTER_INC("block.cache.misses");
  SKERN_TRACE("block", "cache_miss", block);
  EvictIfNeededLocked();
  // A cached buffer always has a disk mapping in this substrate.
  auto bh = std::make_unique<BufferHead>(block, static_cast<uint32_t>(BhFlag::kMapped));
  BufferHead* raw = bh.get();
  raw->refcount.store(1, std::memory_order_release);
  buffers_[block] = std::move(bh);
  ValidateTransition(raw, "GetBlock");
  return raw;
}

Result<BufferHead*> BufferCache::ReadBlock(uint64_t block) {
  BufferHead* bh = GetBlock(block);
  if (bh->Test(BhFlag::kUptodate)) {
    return bh;
  }
  // Fill under the cache lock so two concurrent fillers of the same buffer
  // cannot interleave the Lock/AsyncRead transitions (the simulated device
  // read is cheap, so serializing the miss path costs little).
  MutexGuard guard(mutex_);
  if (bh->Test(BhFlag::kUptodate)) {
    return bh;  // another thread filled it while we waited
  }
  // I/O in flight: locked + async read, like block_read_full_page.
  bh->Set(BhFlag::kLock);
  bh->Set(BhFlag::kAsyncRead);
  ValidateTransition(bh, "ReadBlock/submit");
  Status s = device_.ReadBlock(block, MutableByteView(bh->data));
  bh->Clear(BhFlag::kAsyncRead);
  bh->Clear(BhFlag::kLock);
  if (!s.ok()) {
    guard.Release();
    Release(bh);
    return s.code();
  }
  bh->Set(BhFlag::kUptodate);
  bh->Set(BhFlag::kReq);
  ValidateTransition(bh, "ReadBlock/complete");
  return bh;
}

void BufferCache::Release(BufferHead* bh) {
  MutexGuard guard(mutex_);
  int32_t prev = bh->refcount.fetch_sub(1, std::memory_order_acq_rel);
  SKERN_CHECK_MSG(prev > 0, "brelse of unreferenced buffer");
  if (prev == 1) {
    lru_.PushBack(bh);
  }
}

void BufferCache::MarkDirty(BufferHead* bh) {
  SKERN_CHECK_MSG(bh->Test(BhFlag::kUptodate),
                  "mark_buffer_dirty on a non-uptodate buffer (rule R1)");
  bh->Set(BhFlag::kDirty);
  ValidateTransition(bh, "MarkDirty");
}

Status BufferCache::WriteBackLocked(BufferHead* bh) {
  if (!bh->Test(BhFlag::kDirty)) {
    return Status::Ok();
  }
  // Clear dirty before submit (Linux order); set in-flight state.
  bh->Clear(BhFlag::kDirty);
  bh->Set(BhFlag::kLock);
  bh->Set(BhFlag::kAsyncWrite);
  bh->Set(BhFlag::kReq);
  ValidateTransition(bh, "WriteBack/submit");
  Status s = device_.WriteBlock(bh->blocknr, ByteView(bh->data));
  bh->Clear(BhFlag::kAsyncWrite);
  bh->Clear(BhFlag::kLock);
  if (!s.ok()) {
    bh->Set(BhFlag::kWriteEio);
    ValidateTransition(bh, "WriteBack/error");
    return s;
  }
  bh->Clear(BhFlag::kWriteEio);
  ++stats_.writebacks;
  SKERN_COUNTER_INC("block.cache.writebacks");
  SKERN_TRACE("block", "writeback", bh->blocknr);
  ValidateTransition(bh, "WriteBack/complete");
  return Status::Ok();
}

Status BufferCache::WriteBack(BufferHead* bh) {
  MutexGuard guard(mutex_);
  return WriteBackLocked(bh);
}

Status BufferCache::SyncAll() {
  {
    MutexGuard guard(mutex_);
    for (auto& [block, bh] : buffers_) {
      SKERN_RETURN_IF_ERROR(WriteBackLocked(bh.get()));
    }
  }
  return device_.Flush();
}

void BufferCache::InvalidateAll() {
  MutexGuard guard(mutex_);
  for (auto& [block, bh] : buffers_) {
    SKERN_CHECK_MSG(bh->refcount.load(std::memory_order_acquire) == 0,
                    "InvalidateAll with referenced buffers");
    SKERN_CHECK_MSG(!bh->Test(BhFlag::kDirty), "InvalidateAll with dirty buffers");
  }
  lru_.Clear();
  buffers_.clear();
}

std::vector<BufferStateViolation> BufferCache::ValidateAll() const {
  MutexGuard guard(mutex_);
  std::vector<BufferStateViolation> all;
  for (const auto& [block, bh] : buffers_) {
    auto v = ValidateBufferState(bh->state.load(std::memory_order_acquire));
    all.insert(all.end(), v.begin(), v.end());
  }
  return all;
}

size_t BufferCache::size() const {
  MutexGuard guard(mutex_);
  return buffers_.size();
}

}  // namespace skern
