#include "src/block/buffer_cache.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

#include "src/base/log.h"
#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"

namespace skern {
namespace {

std::atomic<bool> g_state_checking{true};

// A shard over capacity with every buffer pinned overcommits temporarily;
// past this multiple of the shard's capacity the caller is leaking
// references and the cache panics instead of growing without bound.
constexpr size_t kPinnedOvercommitFactor = 2;

// splitmix64 finalizer: cheap, and strong enough that sequential block
// numbers (the common on-disk layout) spread evenly across shards and
// across the open-addressed index.
uint64_t HashBlock(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

size_t PickShardCount(size_t capacity, size_t shard_hint) {
  size_t n = 1;
  while (n * 2 <= shard_hint) {
    n *= 2;  // round the hint down to a power of two
  }
  while (n > 1 && capacity / n < BufferCache::kMinBuffersPerShard) {
    n /= 2;
  }
  return n;
}

}  // namespace

bool GetBufferStateChecking() { return g_state_checking.load(std::memory_order_relaxed); }

void SetBufferStateChecking(bool enabled) {
  g_state_checking.store(enabled, std::memory_order_relaxed);
}

// One lock-striped shard: FIFO ticket lock, open-addressed index (linear
// probing with tombstones) and an LRU of unreferenced buffers. All mutation
// happens under `lock`; nothing ever holds two shard locks.
struct BufferCache::Shard {
  struct Slot {
    uint64_t block = 0;
    std::unique_ptr<BufferHead> bh;  // null = empty or tombstone
    bool tombstone = false;
  };

  explicit Shard(size_t cap) : lock("buffercache.shard"), capacity(cap) {
    // Size the table so the shard stays under ~50% load even at full
    // overcommit; rehashing then only ever fires to purge tombstones.
    slots.resize(NextPowerOfTwo(
        std::max<size_t>(16, capacity * kPinnedOvercommitFactor * 2)));
  }

  BufferHead* Find(uint64_t block) const SKERN_REQUIRES(lock) {
    size_t mask = slots.size() - 1;
    for (size_t i = HashBlock(block) & mask;; i = (i + 1) & mask) {
      const Slot& s = slots[i];
      if (s.bh == nullptr) {
        if (!s.tombstone) {
          return nullptr;
        }
        continue;
      }
      if (s.block == block) {
        return s.bh.get();
      }
    }
  }

  void Insert(uint64_t block, std::unique_ptr<BufferHead> bh) SKERN_REQUIRES(lock) {
    MaybeRehash();
    size_t mask = slots.size() - 1;
    size_t reuse = slots.size();  // first tombstone seen on the probe path
    for (size_t i = HashBlock(block) & mask;; i = (i + 1) & mask) {
      Slot& s = slots[i];
      if (s.bh == nullptr) {
        if (s.tombstone) {
          if (reuse == slots.size()) {
            reuse = i;
          }
          continue;
        }
        size_t target = (reuse != slots.size()) ? reuse : i;
        if (target == i) {
          ++used;  // claimed a genuinely empty slot
        } else {
          slots[target].tombstone = false;
        }
        slots[target].block = block;
        slots[target].bh = std::move(bh);
        ++count;
        return;
      }
    }
  }

  std::unique_ptr<BufferHead> Erase(uint64_t block) SKERN_REQUIRES(lock) {
    size_t mask = slots.size() - 1;
    for (size_t i = HashBlock(block) & mask;; i = (i + 1) & mask) {
      Slot& s = slots[i];
      if (s.bh == nullptr) {
        if (!s.tombstone) {
          return nullptr;
        }
        continue;
      }
      if (s.block == block) {
        s.tombstone = true;
        --count;
        return std::move(s.bh);
      }
    }
  }

  void MaybeRehash() SKERN_REQUIRES(lock) {
    if ((used + 1) * 4 < slots.size() * 3) {
      return;  // below 75% of slots consumed (live + tombstones)
    }
    std::vector<Slot> old = std::move(slots);
    slots.clear();
    slots.resize(NextPowerOfTwo(std::max<size_t>(16, count * 4)));
    used = 0;
    size_t mask = slots.size() - 1;
    for (Slot& s : old) {
      if (s.bh == nullptr) {
        continue;
      }
      for (size_t i = HashBlock(s.block) & mask;; i = (i + 1) & mask) {
        if (slots[i].bh == nullptr) {
          slots[i].block = s.block;
          slots[i].bh = std::move(s.bh);
          ++used;
          break;
        }
      }
    }
  }

  mutable TrackedSpinLock lock;
  size_t capacity;  // immutable after construction
  size_t count SKERN_GUARDED_BY(lock) = 0;  // live buffers
  size_t used SKERN_GUARDED_BY(lock) = 0;   // slots consumed by live buffers + tombstones
  std::vector<Slot> slots SKERN_GUARDED_BY(lock);
  IntrusiveList<BufferHead, &BufferHead::lru_node> lru SKERN_GUARDED_BY(lock);
  BufferCacheStats stats SKERN_GUARDED_BY(lock);
};

BufferCache::BufferCache(BlockDevice& device, size_t capacity, size_t shard_hint)
    : device_(device) {
  SKERN_CHECK(capacity > 0);
  SKERN_CHECK(shard_hint > 0);
  size_t nshards = PickShardCount(capacity, shard_hint);
  shard_mask_ = nshards - 1;
  shards_.reserve(nshards);
  for (size_t i = 0; i < nshards; ++i) {
    // Split the capacity exactly: the first (capacity % nshards) shards get
    // one extra buffer, so per-shard capacities always sum to `capacity`.
    size_t cap = capacity / nshards + (i < capacity % nshards ? 1 : 0);
    shards_.push_back(std::make_unique<Shard>(cap));
  }
}

BufferCache::~BufferCache() {
  // Unpin LRU membership so the intrusive-list debug checks stay quiet. The
  // guard is uncontended by construction (no concurrent users during
  // destruction) but keeps the guarded-field discipline uniform.
  for (auto& shard : shards_) {
    SpinLockGuard guard(shard->lock);
    shard->lru.Clear();
  }
}

BufferCache::Shard& BufferCache::ShardFor(uint64_t block) const {
  return *shards_[HashBlock(block) & shard_mask_];
}

void BufferCache::ValidateTransition(Shard& shard, const BufferHead* bh,
                                     const char* where) SKERN_REQUIRES(shard.lock) {
  if (!GetBufferStateChecking()) {
    return;
  }
  auto violations = ValidateBufferState(bh->state.load(std::memory_order_acquire));
  if (!violations.empty()) {
    shard.stats.state_violations += violations.size();
    Panic(std::string("buffer_head state invalid at ") + where + ": " +
          violations.front().rule + " [" +
          BufferStateToString(bh->state.load(std::memory_order_relaxed)) + "]");
  }
}

void BufferCache::EvictIfNeededLocked(Shard& shard) SKERN_REQUIRES(shard.lock) {
  while (shard.count >= shard.capacity) {
    BufferHead* victim = shard.lru.PopFront();
    if (victim == nullptr) {
      // Everything is referenced; the shard cannot shrink. Allow temporary
      // overcommit rather than deadlocking the caller, but a caller that
      // pins past twice the shard capacity is leaking references.
      if (shard.count >= shard.capacity * kPinnedOvercommitFactor) {
        Panic("buffer cache pinned over capacity: shard holds " +
              std::to_string(shard.count) + " pinned buffers, capacity " +
              std::to_string(shard.capacity));
      }
      SKERN_WARN() << "buffer cache shard over capacity with all buffers pinned";
      return;
    }
    if (victim->Test(BhFlag::kDirty)) {
      Status s = WriteBackLocked(shard, victim);
      if (!s.ok()) {
        // Failed writeback: keep the buffer (and its data) around; put it at
        // the hot end so we do not spin on it.
        shard.lru.PushBack(victim);
        return;
      }
    }
    ++shard.stats.evictions;
    SKERN_COUNTER_INC("block.cache.evictions");
    SKERN_TRACE("block", "cache_evict", victim->blocknr);
    shard.Erase(victim->blocknr);
  }
}

BufferHead* BufferCache::GetBlock(uint64_t block) {
  Shard& shard = ShardFor(block);
  bool hit;
  BufferHead* result;
  {
    SpinLockGuard guard(shard.lock);
    ++shard.stats.lookups;
    BufferHead* bh = shard.Find(block);
    if (bh != nullptr) {
      ++shard.stats.hits;
      hit = true;
      if (bh->refcount.fetch_add(1, std::memory_order_acq_rel) == 0 &&
          bh->lru_node.linked()) {
        shard.lru.Remove(bh);
      }
      result = bh;
    } else {
      ++shard.stats.misses;
      hit = false;
      EvictIfNeededLocked(shard);
      // A cached buffer always has a disk mapping in this substrate.
      auto fresh =
          std::make_unique<BufferHead>(block, static_cast<uint32_t>(BhFlag::kMapped));
      result = fresh.get();
      result->refcount.store(1, std::memory_order_release);
      shard.Insert(block, std::move(fresh));
      ValidateTransition(shard, result, "GetBlock");
    }
  }
  // Counters and trace are emitted after dropping the shard lock: they have
  // their own internal synchronization and would otherwise dominate the
  // critical section on the hit path.
  if (hit) {
    SKERN_COUNTER_INC("block.cache.hits");
    SKERN_TRACE("block", "cache_hit", block);
  } else {
    SKERN_COUNTER_INC("block.cache.misses");
    SKERN_TRACE("block", "cache_miss", block);
  }
  return result;
}

Result<BufferHead*> BufferCache::ReadBlock(uint64_t block) {
  BufferHead* bh = GetBlock(block);
  if (bh->Test(BhFlag::kUptodate)) {
    return bh;
  }
  // Fill under the shard lock so two concurrent fillers of the same buffer
  // cannot interleave the Lock/AsyncRead transitions (the simulated device
  // read is cheap, so serializing the miss path costs little).
  Shard& shard = ShardFor(block);
  SpinLockGuard guard(shard.lock);
  if (bh->Test(BhFlag::kUptodate)) {
    return bh;  // another thread filled it while we waited
  }
  // I/O in flight: locked + async read, like block_read_full_page.
  bh->Set(BhFlag::kLock);
  bh->Set(BhFlag::kAsyncRead);
  ValidateTransition(shard, bh, "ReadBlock/submit");
  Status s = device_.ReadBlock(block, MutableByteView(bh->data));
  bh->Clear(BhFlag::kAsyncRead);
  bh->Clear(BhFlag::kLock);
  if (!s.ok()) {
    guard.Release();
    Release(bh);
    return s.code();
  }
  bh->Set(BhFlag::kUptodate);
  bh->Set(BhFlag::kReq);
  ValidateTransition(shard, bh, "ReadBlock/complete");
  return bh;
}

Status BufferCache::AppendFromBlock(uint64_t block, uint64_t offset, uint64_t length,
                                    Bytes& out) {
  SKERN_CHECK_MSG(offset + length <= kBlockSize, "AppendFromBlock out of bounds");
  SKERN_SPAN_LOCKED("block", "append_from_block");
  Shard& shard = ShardFor(block);
  {
    SpinLockGuard guard(shard.lock);
    skern_span_scope_.set_plane(obs::SpanPlane::kFast);
    BufferHead* bh = shard.Find(block);
    if (bh != nullptr && bh->Test(BhFlag::kUptodate)) {
      ++shard.stats.lookups;
      ++shard.stats.hits;
      AppendBytes(out, bh->data.data() + offset, length);
      return Status::Ok();
    }
    // Not resident (or mid-fill): take the pin-based path below, which does
    // its own lookup accounting — this probe stays uncounted so hits +
    // misses == lookups still holds.
  }
  skern_span_scope_.set_plane(obs::SpanPlane::kSlow);
  Result<BufferHead*> bh = ReadBlock(block);
  if (!bh.ok()) {
    return bh.status();
  }
  AppendBytes(out, (*bh)->data.data() + offset, length);
  Release(*bh);
  return Status::Ok();
}

void BufferCache::Release(BufferHead* bh) {
  Shard& shard = ShardFor(bh->blocknr);
  SpinLockGuard guard(shard.lock);
  int32_t prev = bh->refcount.fetch_sub(1, std::memory_order_acq_rel);
  SKERN_CHECK_MSG(prev > 0, "brelse of unreferenced buffer");
  if (prev == 1) {
    shard.lru.PushBack(bh);
  }
}

void BufferCache::MarkDirty(BufferHead* bh) {
  SKERN_CHECK_MSG(bh->Test(BhFlag::kUptodate),
                  "mark_buffer_dirty on a non-uptodate buffer (rule R1)");
  bh->Set(BhFlag::kDirty);
  Shard& shard = ShardFor(bh->blocknr);
  SpinLockGuard guard(shard.lock);
  ValidateTransition(shard, bh, "MarkDirty");
}

Status BufferCache::WriteBackLocked(Shard& shard, BufferHead* bh) SKERN_REQUIRES(shard.lock) {
  if (!bh->Test(BhFlag::kDirty)) {
    return Status::Ok();
  }
  // Clear dirty before submit (Linux order); set in-flight state.
  bh->Clear(BhFlag::kDirty);
  bh->Set(BhFlag::kLock);
  bh->Set(BhFlag::kAsyncWrite);
  bh->Set(BhFlag::kReq);
  ValidateTransition(shard, bh, "WriteBack/submit");
  Status s = device_.WriteBlock(bh->blocknr, ByteView(bh->data));
  bh->Clear(BhFlag::kAsyncWrite);
  bh->Clear(BhFlag::kLock);
  if (!s.ok()) {
    bh->Set(BhFlag::kWriteEio);
    ValidateTransition(shard, bh, "WriteBack/error");
    return s;
  }
  bh->Clear(BhFlag::kWriteEio);
  ++shard.stats.writebacks;
  SKERN_COUNTER_INC("block.cache.writebacks");
  SKERN_TRACE("block", "writeback", bh->blocknr);
  ValidateTransition(shard, bh, "WriteBack/complete");
  return Status::Ok();
}

Status BufferCache::WriteBack(BufferHead* bh) {
  Shard& shard = ShardFor(bh->blocknr);
  SpinLockGuard guard(shard.lock);
  return WriteBackLocked(shard, bh);
}

Status BufferCache::SyncAll() {
  for (auto& shard : shards_) {
    SpinLockGuard guard(shard->lock);
    for (auto& slot : shard->slots) {
      if (slot.bh != nullptr) {
        SKERN_RETURN_IF_ERROR(WriteBackLocked(*shard, slot.bh.get()));
      }
    }
  }
  return device_.Flush();
}

void BufferCache::InvalidateAll() {
  for (auto& shard : shards_) {
    SpinLockGuard guard(shard->lock);
    for (auto& slot : shard->slots) {
      if (slot.bh == nullptr) {
        continue;
      }
      SKERN_CHECK_MSG(slot.bh->refcount.load(std::memory_order_acquire) == 0,
                      "InvalidateAll with referenced buffers");
      SKERN_CHECK_MSG(!slot.bh->Test(BhFlag::kDirty),
                      "InvalidateAll with dirty buffers");
    }
    shard->lru.Clear();
    shard->slots.clear();
    shard->slots.resize(NextPowerOfTwo(
        std::max<size_t>(16, shard->capacity * kPinnedOvercommitFactor * 2)));
    shard->count = 0;
    shard->used = 0;
  }
}

void BufferCache::Invalidate(uint64_t block) {
  Shard& shard = ShardFor(block);
  SpinLockGuard guard(shard.lock);
  BufferHead* bh = shard.Find(block);
  if (bh == nullptr) {
    return;
  }
  SKERN_CHECK_MSG(!bh->Test(BhFlag::kDirty), "Invalidate of a dirty buffer");
  if (bh->refcount.load(std::memory_order_acquire) != 0) {
    // Pinned: the holder keeps its buffer, but the stale contents must not
    // satisfy the next lookup.
    bh->Clear(BhFlag::kUptodate);
    return;
  }
  if (bh->lru_node.linked()) {
    shard.lru.Remove(bh);
  }
  shard.Erase(block);
}

std::vector<BufferStateViolation> BufferCache::ValidateAll() const {
  std::vector<BufferStateViolation> all;
  for (const auto& shard : shards_) {
    SpinLockGuard guard(shard->lock);
    for (const auto& slot : shard->slots) {
      if (slot.bh == nullptr) {
        continue;
      }
      auto v = ValidateBufferState(slot.bh->state.load(std::memory_order_acquire));
      all.insert(all.end(), v.begin(), v.end());
    }
  }
  return all;
}

BufferCacheStats BufferCache::stats() const {
  BufferCacheStats total;
  for (const auto& shard : shards_) {
    SpinLockGuard guard(shard->lock);
    total.lookups += shard->stats.lookups;
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
    total.writebacks += shard->stats.writebacks;
    total.state_violations += shard->stats.state_violations;
  }
  return total;
}

size_t BufferCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    SpinLockGuard guard(shard->lock);
    total += shard->count;
  }
  return total;
}

}  // namespace skern
