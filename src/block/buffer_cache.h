// Buffer cache: getblk/bread/brelse over a BlockDevice, with LRU eviction
// and checked buffer_head state transitions.
//
// In checked mode every flag transition is validated against the rules in
// buffer_head.h; an invalid combination panics, so "must be set correctly and
// at the right point in the code to prevent data loss or corruption" (§4.4)
// becomes machine-enforced rather than reviewer-enforced.
//
// Concurrency: the cache is lock-striped. Blocks hash onto N independent
// shards; each shard has its own FIFO ticket lock, open-addressed hash index
// and LRU list, so lookups of blocks in different shards never contend. No
// operation ever holds two shard locks, and the block device is the only
// thing reached from under a shard lock — the device must therefore be
// internally thread-safe (RamDisk is).
#ifndef SKERN_SRC_BLOCK_BUFFER_CACHE_H_
#define SKERN_SRC_BLOCK_BUFFER_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/intrusive_list.h"
#include "src/base/result.h"
#include "src/block/block_device.h"
#include "src/block/buffer_head.h"
#include "src/sync/mutex.h"

namespace skern {

// Global switch for per-transition state validation (cheap; defaults on).
bool GetBufferStateChecking();
void SetBufferStateChecking(bool enabled);

struct BufferCacheStats {
  uint64_t lookups = 0;  // GetBlock calls; hits + misses == lookups
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t state_violations = 0;
};

class BufferCache {
 public:
  // Upper bound on shard count; the constructor rounds the hint down to a
  // power of two and keeps at least kMinBuffersPerShard buffers per shard,
  // so small caches degenerate to a single shard and keep exact global-LRU
  // semantics.
  static constexpr size_t kDefaultShardHint = 8;
  static constexpr size_t kMinBuffersPerShard = 4;

  // `capacity` is the maximum number of cached buffers, split across the
  // shards; eviction is LRU over unreferenced buffers, per shard.
  BufferCache(BlockDevice& device, size_t capacity,
              size_t shard_hint = kDefaultShardHint);
  ~BufferCache();

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  // getblk: finds or creates the buffer for `block` and takes a reference.
  // The buffer may not be uptodate. Never returns nullptr: a shard over
  // capacity with every buffer pinned overcommits temporarily, and panics
  // (caller bug — leaked references) once the overcommit exceeds twice the
  // shard's capacity.
  BufferHead* GetBlock(uint64_t block);

  // bread: GetBlock + ensures the contents are read from the device.
  Result<BufferHead*> ReadBlock(uint64_t block);

  // Appends `length` bytes starting at byte `offset` of `block` to `out`.
  // When the block is resident and uptodate this is a single shard-lock hold
  // (no pin/release round-trip, no LRU churn) — the warm read fast path.
  // Otherwise it falls back to ReadBlock + copy + Release. The caller should
  // reserve `out` up front: growing the vector under the shard lock would
  // put an allocation inside the critical section.
  Status AppendFromBlock(uint64_t block, uint64_t offset, uint64_t length, Bytes& out);

  // brelse: drops the reference taken by GetBlock/ReadBlock.
  void Release(BufferHead* bh);

  // Marks a buffer dirty (it must be uptodate — rule R1).
  void MarkDirty(BufferHead* bh);

  // Writes one dirty buffer back to the device (no barrier).
  Status WriteBack(BufferHead* bh);

  // Writes back every dirty buffer and issues a device flush barrier.
  Status SyncAll();

  // Drops all clean, unreferenced buffers (used after a simulated crash so
  // stale cache contents don't survive the "reboot"). Dirty or referenced
  // buffers panic — a crashed cache must not hold pinned state.
  void InvalidateAll();

  // Drops one block's buffer if it is cached, clean and unreferenced (used
  // by read-only caches layered above a store that just superseded the
  // block's contents elsewhere). A referenced buffer is left in place but
  // marked not-uptodate, so the next ReadBlock re-reads the device; a dirty
  // buffer panics — invalidating unwritten data is a caller bug.
  void Invalidate(uint64_t block);

  // Runs the state validator over every cached buffer.
  std::vector<BufferStateViolation> ValidateAll() const;

  // Aggregated across shards; a consistent snapshot per shard (each shard is
  // read under its lock), so hits + misses == lookups always holds.
  BufferCacheStats stats() const;
  size_t size() const;
  size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard;

  Shard& ShardFor(uint64_t block) const;
  void ValidateTransition(Shard& shard, const BufferHead* bh, const char* where);
  void EvictIfNeededLocked(Shard& shard);
  Status WriteBackLocked(Shard& shard, BufferHead* bh);

  BlockDevice& device_;
  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t shard_mask_;  // shard count - 1 (power of two)
};

}  // namespace skern

#endif  // SKERN_SRC_BLOCK_BUFFER_CACHE_H_
