// Buffer cache: getblk/bread/brelse over a BlockDevice, with LRU eviction
// and checked buffer_head state transitions.
//
// In checked mode every flag transition is validated against the rules in
// buffer_head.h; an invalid combination panics, so "must be set correctly and
// at the right point in the code to prevent data loss or corruption" (§4.4)
// becomes machine-enforced rather than reviewer-enforced.
#ifndef SKERN_SRC_BLOCK_BUFFER_CACHE_H_
#define SKERN_SRC_BLOCK_BUFFER_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/base/intrusive_list.h"
#include "src/base/result.h"
#include "src/block/block_device.h"
#include "src/block/buffer_head.h"
#include "src/sync/mutex.h"

namespace skern {

// Global switch for per-transition state validation (cheap; defaults on).
bool GetBufferStateChecking();
void SetBufferStateChecking(bool enabled);

struct BufferCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t state_violations = 0;
};

class BufferCache {
 public:
  // `capacity` is the maximum number of cached buffers; eviction is LRU over
  // unreferenced buffers.
  BufferCache(BlockDevice& device, size_t capacity);
  ~BufferCache();

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  // getblk: finds or creates the buffer for `block` and takes a reference.
  // The buffer may not be uptodate. Returns nullptr only if the cache is
  // completely pinned and over capacity (caller bug) — checked.
  BufferHead* GetBlock(uint64_t block);

  // bread: GetBlock + ensures the contents are read from the device.
  Result<BufferHead*> ReadBlock(uint64_t block);

  // brelse: drops the reference taken by GetBlock/ReadBlock.
  void Release(BufferHead* bh);

  // Marks a buffer dirty (it must be uptodate — rule R1).
  void MarkDirty(BufferHead* bh);

  // Writes one dirty buffer back to the device (no barrier).
  Status WriteBack(BufferHead* bh);

  // Writes back every dirty buffer and issues a device flush barrier.
  Status SyncAll();

  // Drops all clean, unreferenced buffers (used after a simulated crash so
  // stale cache contents don't survive the "reboot"). Dirty or referenced
  // buffers panic — a crashed cache must not hold pinned state.
  void InvalidateAll();

  // Runs the state validator over every cached buffer.
  std::vector<BufferStateViolation> ValidateAll() const;

  const BufferCacheStats& stats() const { return stats_; }
  size_t size() const;

 private:
  void ValidateTransition(const BufferHead* bh, const char* where);
  void EvictIfNeededLocked();
  Status WriteBackLocked(BufferHead* bh);

  BlockDevice& device_;
  size_t capacity_;
  mutable TrackedMutex mutex_;
  std::map<uint64_t, std::unique_ptr<BufferHead>> buffers_;
  IntrusiveList<BufferHead, &BufferHead::lru_node> lru_;  // unreferenced buffers
  BufferCacheStats stats_;
};

}  // namespace skern

#endif  // SKERN_SRC_BLOCK_BUFFER_CACHE_H_
