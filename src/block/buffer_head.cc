#include "src/block/buffer_head.h"

namespace skern {
namespace {

bool Has(uint32_t state, BhFlag flag) { return (state & static_cast<uint32_t>(flag)) != 0; }

}  // namespace

const char* BhFlagName(BhFlag flag) {
  switch (flag) {
    case BhFlag::kUptodate:
      return "Uptodate";
    case BhFlag::kDirty:
      return "Dirty";
    case BhFlag::kLock:
      return "Lock";
    case BhFlag::kReq:
      return "Req";
    case BhFlag::kUptodateLock:
      return "UptodateLock";
    case BhFlag::kMapped:
      return "Mapped";
    case BhFlag::kNew:
      return "New";
    case BhFlag::kAsyncRead:
      return "AsyncRead";
    case BhFlag::kAsyncWrite:
      return "AsyncWrite";
    case BhFlag::kDelay:
      return "Delay";
    case BhFlag::kBoundary:
      return "Boundary";
    case BhFlag::kWriteEio:
      return "WriteEio";
    case BhFlag::kUnwritten:
      return "Unwritten";
    case BhFlag::kQuiet:
      return "Quiet";
    case BhFlag::kMeta:
      return "Meta";
    case BhFlag::kPrio:
      return "Prio";
  }
  return "?";
}

std::vector<BufferStateViolation> ValidateBufferState(uint32_t state) {
  std::vector<BufferStateViolation> violations;
  auto fail = [&](const char* rule) { violations.push_back({rule, state}); };

  if (Has(state, BhFlag::kDirty) && !Has(state, BhFlag::kUptodate)) {
    fail("R1: Dirty => Uptodate");
  }
  if (Has(state, BhFlag::kDirty) && !Has(state, BhFlag::kMapped) &&
      !Has(state, BhFlag::kDelay)) {
    fail("R2: Dirty => Mapped|Delay");
  }
  if (Has(state, BhFlag::kDelay) && Has(state, BhFlag::kMapped)) {
    fail("R3: Delay => !Mapped");
  }
  if (Has(state, BhFlag::kUnwritten) && !Has(state, BhFlag::kMapped)) {
    fail("R4: Unwritten => Mapped");
  }
  if (Has(state, BhFlag::kUnwritten) && Has(state, BhFlag::kDirty)) {
    fail("R5: Unwritten => !Dirty");
  }
  if (Has(state, BhFlag::kAsyncRead) && !Has(state, BhFlag::kLock)) {
    fail("R6: AsyncRead => Lock");
  }
  if (Has(state, BhFlag::kAsyncWrite) && !Has(state, BhFlag::kLock)) {
    fail("R7: AsyncWrite => Lock");
  }
  if (Has(state, BhFlag::kAsyncRead) && Has(state, BhFlag::kAsyncWrite)) {
    fail("R8: !(AsyncRead & AsyncWrite)");
  }
  if (Has(state, BhFlag::kNew) && !Has(state, BhFlag::kMapped)) {
    fail("R9: New => Mapped");
  }
  if (Has(state, BhFlag::kWriteEio) && !Has(state, BhFlag::kReq)) {
    fail("R10: WriteEio => Req");
  }
  return violations;
}

std::string BufferStateToString(uint32_t state) {
  if (state == 0) {
    return "(none)";
  }
  std::string out;
  for (int i = 0; i < kBhFlagCount; ++i) {
    auto flag = static_cast<BhFlag>(1u << i);
    if (Has(state, flag)) {
      if (!out.empty()) {
        out += '|';
      }
      out += BhFlagName(flag);
    }
  }
  return out;
}

}  // namespace skern
