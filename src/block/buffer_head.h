// buffer_head: the block-cache object with Linux's 16-flag state machine.
//
// §4.4: "The buffer_head struct, used to expose disk blocks to file systems
// through the buffer cache, includes 16 state flags that describe whether the
// buffer is mapped, dirty, etc. These flags are set independently, resulting
// in many possible combinations of states. Not all of the combinations are
// valid, but even determining which are can be complicated."
//
// skern reproduces the flag set (mirroring Linux's enum bh_state_bits) and —
// this is the point — writes the validity rules down as code
// (ValidateBufferState) instead of leaving them implicit in scattered call
// sites. The buffer cache checks them at every transition in checked builds;
// the same rules double as the specification the fault injector perturbs.
#ifndef SKERN_SRC_BLOCK_BUFFER_HEAD_H_
#define SKERN_SRC_BLOCK_BUFFER_HEAD_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/intrusive_list.h"
#include "src/block/block_device.h"
#include "src/mem/slab_class.h"

namespace skern {

// Mirrors Linux's enum bh_state_bits (fs/buffer_head.h).
enum class BhFlag : uint32_t {
  kUptodate = 1u << 0,   // contains valid data
  kDirty = 1u << 1,      // is dirty
  kLock = 1u << 2,       // is locked
  kReq = 1u << 3,        // has been submitted for I/O
  kUptodateLock = 1u << 4,  // first I/O completion serializer
  kMapped = 1u << 5,     // has a disk mapping
  kNew = 1u << 6,        // disk mapping was newly created
  kAsyncRead = 1u << 7,  // under async read
  kAsyncWrite = 1u << 8,  // under async write
  kDelay = 1u << 9,      // delayed allocation: dirty but no mapping yet
  kBoundary = 1u << 10,  // block followed by a discontiguity
  kWriteEio = 1u << 11,  // I/O error on write
  kUnwritten = 1u << 12,  // allocated on disk but not written (fallocate)
  kQuiet = 1u << 13,     // suppress error messages
  kMeta = 1u << 14,      // contains metadata
  kPrio = 1u << 15,      // submit with REQ_PRIO
};

inline constexpr int kBhFlagCount = 16;

const char* BhFlagName(BhFlag flag);

// One cached disk block. Reference-counted by the cache; pinned while a file
// system holds it.
struct BufferHead {
  BufferHead(uint64_t block, uint32_t initial_flags)
      : blocknr(block), state(initial_flags), data(kBlockSize, 0) {}

  BufferHead(const BufferHead&) = delete;
  BufferHead& operator=(const BufferHead&) = delete;

  // Handle on a named slab cache; the 4 KiB payload rides the size classes
  // through the Bytes alloc bridge.
  SKERN_SLAB_CLASS(BufferHead, "block.bufferhead")

  uint64_t blocknr;
  std::atomic<uint32_t> state;
  Bytes data;
  std::atomic<int32_t> refcount{0};
  ListNode lru_node;

  bool Test(BhFlag flag) const {
    return (state.load(std::memory_order_acquire) & static_cast<uint32_t>(flag)) != 0;
  }
  void Set(BhFlag flag) {
    state.fetch_or(static_cast<uint32_t>(flag), std::memory_order_acq_rel);
  }
  void Clear(BhFlag flag) {
    state.fetch_and(~static_cast<uint32_t>(flag), std::memory_order_acq_rel);
  }
};

// One broken validity rule.
struct BufferStateViolation {
  std::string rule;
  uint32_t state;
};

// The validity rules for flag combinations — the "which combinations are
// valid" question from §4.4 answered as an executable predicate:
//   R1  Dirty       => Uptodate     (cannot write back unknown content)
//   R2  Dirty       => Mapped|Delay (writeback needs a disk target, unless
//                                    allocation is delayed)
//   R3  Delay       => !Mapped      (delayed alloc means no mapping yet)
//   R4  Unwritten   => Mapped       (extent exists but unwritten)
//   R5  Unwritten   => !Dirty       (must be converted before dirtying)
//   R6  AsyncRead   => Lock         (I/O in flight keeps the buffer locked)
//   R7  AsyncWrite  => Lock
//   R8  !(AsyncRead & AsyncWrite)   (a buffer is under one I/O at a time)
//   R9  New         => Mapped       (freshly mapped implies mapped)
//   R10 WriteEio    => Req          (a write error implies the buffer was
//                                    actually submitted at some point)
std::vector<BufferStateViolation> ValidateBufferState(uint32_t state);

// Renders a flag word like "Uptodate|Dirty|Mapped".
std::string BufferStateToString(uint32_t state);

}  // namespace skern

#endif  // SKERN_SRC_BLOCK_BUFFER_HEAD_H_
