#include "src/block/checked_block_device.h"

namespace skern {

uint64_t CheckedBlockDevice::HashBlock(ByteView data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < data.size(); ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Status CheckedBlockDevice::ReadBlock(uint64_t block, MutableByteView out) {
  if (Shim::Active()) {
    shim_.Check(block < inner_.BlockCount(), "A2: read within bounds",
                "block " + std::to_string(block));
  }
  Status s = inner_.ReadBlock(block, out);
  if (s.ok() && Shim::Active()) {
    uint64_t hash = HashBlock(out);
    auto it = model_.find(block);
    if (it != model_.end()) {
      shim_.Check(it->second == hash, "A1: read returns last write",
                  "block " + std::to_string(block));
    } else {
      model_[block] = hash;  // adopt first observation
    }
  }
  return s;
}

Status CheckedBlockDevice::WriteBlock(uint64_t block, ByteView data) {
  if (Shim::Active()) {
    shim_.Check(block < inner_.BlockCount(), "A2: write within bounds",
                "block " + std::to_string(block));
  }
  Status s = inner_.WriteBlock(block, data);
  if (s.ok() && Shim::Active()) {
    model_[block] = HashBlock(data);  // A4: this is now the expected content
  }
  return s;
}

Status CheckedBlockDevice::Flush() { return inner_.Flush(); }

uint64_t CheckedBlockDevice::BlockCount() const {
  uint64_t count = inner_.BlockCount();
  if (Shim::Active()) {
    shim_.Check(count == initial_block_count_, "A3: device size is stable");
  }
  return count;
}

}  // namespace skern
