// The block-layer axiomatic shim (§4.4).
//
// "A verified file system may rely on the behavior of an unverified block I/O
// layer modeled at the interface... these axioms should be written with
// minimal assumptions and only cover the basic functionality. In the case of
// block I/O, the data structure buffer_head may be abstracted away, and the
// axioms can be defined in terms of bytes."
//
// CheckedBlockDevice wraps any BlockDevice and validates, per call, the
// minimal byte-level axioms a verified client depends on:
//   A1 read-last-write : a read returns exactly the bytes of the most recent
//                        successful write to that block (or the initial
//                        zeroes) — in the absence of a crash.
//   A2 bounds          : the device never accepts out-of-range blocks.
//   A3 size-stability  : BlockCount() never changes.
//   A4 write-readback  : a successful write is immediately visible.
// The model state is a content hash per block, so the shim is O(block) per
// call; bench/shim_overhead measures exactly this cost.
//
// After a simulated crash the read-last-write model is stale by design; call
// OnExternalChange()/ResetModel() to re-adopt device contents (the axiom is
// conditioned on "no crash in between").
#ifndef SKERN_SRC_BLOCK_CHECKED_BLOCK_DEVICE_H_
#define SKERN_SRC_BLOCK_CHECKED_BLOCK_DEVICE_H_

#include <map>

#include "src/block/block_device.h"
#include "src/core/shim.h"

namespace skern {

class CheckedBlockDevice : public BlockDevice {
 public:
  explicit CheckedBlockDevice(BlockDevice& inner)
      : inner_(inner), shim_("fs->block"), initial_block_count_(inner.BlockCount()) {}

  Status ReadBlock(uint64_t block, MutableByteView out) override;
  Status WriteBlock(uint64_t block, ByteView data) override;
  Status Flush() override;
  uint64_t BlockCount() const override;

  // Drops the read-last-write model (e.g. after a crash or external writes);
  // the model re-learns contents lazily from subsequent reads.
  void ResetModel() { model_.clear(); }

 private:
  static uint64_t HashBlock(ByteView data);

  BlockDevice& inner_;
  Shim shim_;
  uint64_t initial_block_count_;
  std::map<uint64_t, uint64_t> model_;  // block -> content hash of last write/read
};

}  // namespace skern

#endif  // SKERN_SRC_BLOCK_CHECKED_BLOCK_DEVICE_H_
