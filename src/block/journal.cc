#include "src/block/journal.h"

#include <utility>

#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"

namespace skern {
namespace {

constexpr uint64_t kSuperMagic = 0x534b4a53'55504231ULL;   // "SKJSUPB1"
constexpr uint64_t kDescMagic = 0x534b4a44'45534331ULL;    // "SKJDESC1"
constexpr uint64_t kCommitMagic = 0x534b4a43'4d4d5431ULL;  // "SKJCMMT1"

void PutU64(MutableByteView block, size_t offset, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    block[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

uint64_t GetU64(ByteView block, size_t offset) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(block[offset + i]) << (8 * i);
  }
  return value;
}

uint64_t Fnv1a(ByteView data, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t hash = seed;
  for (size_t i = 0; i < data.size(); ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

Journal::Journal(BlockDevice& device, uint64_t start, uint64_t length)
    : device_(device), start_(start), length_(length) {
  SKERN_CHECK_MSG(length_ >= 4, "journal needs at least 4 blocks");
  SKERN_CHECK_MSG(start_ + length_ <= device_.BlockCount(), "journal exceeds device");
}

void Journal::Tx::AddBlock(uint64_t home_block, ByteView content) {
  SKERN_CHECK(content.size() == kBlockSize);
  blocks_[home_block] = content.ToBytes();
}

Status Journal::FlushDevice() SKERN_REQUIRES(mutex_) {
  ++stats_.device_flushes;
  return device_.Flush();
}

Status Journal::WriteSuperblock() SKERN_REQUIRES(mutex_) {
  Bytes sb(kBlockSize, 0);
  MutableByteView view(sb);
  PutU64(view, 0, kSuperMagic);
  PutU64(view, 8, sequence_);
  PutU64(view, 16, length_);
  PutU64(view, 24, Fnv1a(ByteView(sb.data(), 24)));
  SKERN_RETURN_IF_ERROR(device_.WriteBlock(start_, ByteView(sb)));
  return FlushDevice();
}

Status Journal::ReadSuperblock(uint64_t* sequence_out) const {
  Bytes sb(kBlockSize, 0);
  SKERN_RETURN_IF_ERROR(device_.ReadBlock(start_, MutableByteView(sb)));
  ByteView view(sb);
  if (GetU64(view, 0) != kSuperMagic) {
    return Status::Error(Errno::kEINVAL);
  }
  if (GetU64(view, 24) != Fnv1a(ByteView(sb.data(), 24))) {
    return Status::Error(Errno::kEINVAL);
  }
  *sequence_out = GetU64(view, 8);
  return Status::Ok();
}

Status Journal::Format() {
  MutexGuard guard(mutex_);
  sequence_ = 1;
  return WriteSuperblock();
}

void Journal::set_max_batch_txs(size_t n) {
  SKERN_CHECK_MSG(n > 0, "max batch must allow at least one transaction");
  MutexGuard guard(mutex_);
  max_batch_txs_ = n;
}

Status Journal::Submit(Tx&& tx) {
  MutexGuard guard(mutex_);
  return SubmitLocked(std::move(tx));
}

Status Journal::SubmitLocked(Tx&& tx) SKERN_REQUIRES(mutex_) {
  if (tx.blocks_.empty()) {
    return Status::Ok();
  }
  if (tx.blocks_.size() > Capacity()) {
    // Rejected before touching the pending batch or the device, so a caller
    // that mis-sizes one transaction cannot damage already-staged work.
    return Status::Error(Errno::kENOSPC);
  }
  // Count how many of tx's blocks are new to the batch; coalescing rewrites
  // of an already-staged block costs no capacity.
  size_t fresh = 0;
  for (const auto& [home, content] : tx.blocks_) {
    if (pending_blocks_.find(home) == pending_blocks_.end()) {
      ++fresh;
    }
  }
  if (pending_blocks_.size() + fresh > Capacity()) {
    SKERN_RETURN_IF_ERROR(FlushLocked());
  }
  for (auto& [home, content] : tx.blocks_) {
    pending_blocks_[home] = std::move(content);
  }
  ++pending_txs_;
  SKERN_COUNTER_INC("journal.submits");
  SKERN_TRACE("journal", "submit", sequence_, tx.blocks_.size());
  if (pending_txs_ >= max_batch_txs_) {
    return FlushLocked();
  }
  return Status::Ok();
}

Status Journal::Flush() {
  MutexGuard guard(mutex_);
  return FlushLocked();
}

Status Journal::FlushLocked() SKERN_REQUIRES(mutex_) {
  if (pending_blocks_.empty()) {
    pending_txs_ = 0;
    return Status::Ok();
  }
  SKERN_TIMED_SCOPE("journal.commit.latency_ns");
  // The batch is consumed whether or not the protocol succeeds: a device
  // error mid-protocol is a crash from the journal's point of view, and
  // Recover() decides whether the batch became durable.
  std::map<uint64_t, Bytes> batch = std::move(pending_blocks_);
  size_t batch_txs = pending_txs_;
  pending_blocks_.clear();
  pending_txs_ = 0;
  uint64_t txid = sequence_;

  // Step 1: descriptor + data blocks.
  Bytes desc(kBlockSize, 0);
  MutableByteView desc_view(desc);
  PutU64(desc_view, 0, kDescMagic);
  PutU64(desc_view, 8, txid);
  PutU64(desc_view, 16, batch.size());
  {
    size_t offset = kJournalDescHeaderBytes;
    for (const auto& [home, content] : batch) {
      SKERN_CHECK_MSG(offset + kJournalDescSlotBytes <= kBlockSize - kJournalChecksumBytes,
                      "descriptor overflow");
      PutU64(desc_view, offset, home);
      offset += kJournalDescSlotBytes;
    }
    PutU64(desc_view, kBlockSize - kJournalChecksumBytes,
           Fnv1a(ByteView(desc.data(), kBlockSize - kJournalChecksumBytes)));
  }
  SKERN_RETURN_IF_ERROR(device_.WriteBlock(start_ + 1, ByteView(desc)));
  uint64_t data_checksum = 0xcbf29ce484222325ULL;
  {
    uint64_t slot = start_ + 2;
    for (const auto& [home, content] : batch) {
      SKERN_RETURN_IF_ERROR(device_.WriteBlock(slot, ByteView(content)));
      data_checksum = Fnv1a(ByteView(content), data_checksum);
      ++slot;
    }
  }
  SKERN_RETURN_IF_ERROR(FlushDevice());

  // Step 2: commit block.
  Bytes commit(kBlockSize, 0);
  MutableByteView commit_view(commit);
  PutU64(commit_view, 0, kCommitMagic);
  PutU64(commit_view, 8, txid);
  PutU64(commit_view, 16, data_checksum);
  PutU64(commit_view, 24, Fnv1a(ByteView(commit.data(), 24)));
  SKERN_RETURN_IF_ERROR(
      device_.WriteBlock(start_ + 2 + batch.size(), ByteView(commit)));
  SKERN_RETURN_IF_ERROR(FlushDevice());

  // Step 3: checkpoint — write home locations.
  for (const auto& [home, content] : batch) {
    SKERN_RETURN_IF_ERROR(device_.WriteBlock(home, ByteView(content)));
  }
  SKERN_RETURN_IF_ERROR(FlushDevice());

  // Step 4: retire the batch.
  sequence_ = txid + 1;
  SKERN_RETURN_IF_ERROR(WriteSuperblock());

  ++stats_.commits;
  stats_.txs_committed += batch_txs;
  stats_.blocks_journaled += batch.size();
  SKERN_COUNTER_INC("journal.commits");
  SKERN_COUNTER_ADD("journal.txs_committed", batch_txs);
  SKERN_COUNTER_ADD("journal.blocks_journaled", batch.size());
  SKERN_TRACE("journal", "commit", txid, batch.size());
  return Status::Ok();
}

Status Journal::Commit(Tx&& tx) {
  SKERN_SPAN_LOCKED("journal", "commit");
  MutexGuard guard(mutex_);
  SKERN_RETURN_IF_ERROR(SubmitLocked(std::move(tx)));
  return FlushLocked();
}

Status Journal::Recover() {
  MutexGuard guard(mutex_);
  uint64_t sb_sequence = 0;
  SKERN_RETURN_IF_ERROR(ReadSuperblock(&sb_sequence));
  sequence_ = sb_sequence;

  // Read the descriptor slot; if it holds a committed batch the superblock
  // has not retired, replay it.
  Bytes desc(kBlockSize, 0);
  SKERN_RETURN_IF_ERROR(device_.ReadBlock(start_ + 1, MutableByteView(desc)));
  ByteView desc_view(desc);
  if (GetU64(desc_view, 0) != kDescMagic) {
    ++stats_.empty_recoveries;
    return Status::Ok();
  }
  if (GetU64(desc_view, kBlockSize - kJournalChecksumBytes) !=
      Fnv1a(ByteView(desc.data(), kBlockSize - kJournalChecksumBytes))) {
    ++stats_.empty_recoveries;  // torn descriptor: batch never committed
    return Status::Ok();
  }
  uint64_t txid = GetU64(desc_view, 8);
  uint64_t count = GetU64(desc_view, 16);
  if (txid < sb_sequence) {
    ++stats_.empty_recoveries;  // already checkpointed and retired
    return Status::Ok();
  }
  if (count == 0 || count > Capacity()) {
    ++stats_.empty_recoveries;
    return Status::Ok();
  }

  // Validate the commit block.
  Bytes commit(kBlockSize, 0);
  SKERN_RETURN_IF_ERROR(device_.ReadBlock(start_ + 2 + count, MutableByteView(commit)));
  ByteView commit_view(commit);
  if (GetU64(commit_view, 0) != kCommitMagic || GetU64(commit_view, 8) != txid ||
      GetU64(commit_view, 24) != Fnv1a(ByteView(commit.data(), 24))) {
    ++stats_.empty_recoveries;  // no durable commit record: discard
    return Status::Ok();
  }

  // Validate data payload checksum, then replay.
  std::vector<Bytes> payload(count, Bytes(kBlockSize, 0));
  uint64_t data_checksum = 0xcbf29ce484222325ULL;
  for (uint64_t i = 0; i < count; ++i) {
    SKERN_RETURN_IF_ERROR(device_.ReadBlock(start_ + 2 + i, MutableByteView(payload[i])));
    data_checksum = Fnv1a(ByteView(payload[i]), data_checksum);
  }
  if (data_checksum != GetU64(commit_view, 16)) {
    ++stats_.empty_recoveries;  // payload torn despite commit record: discard
    return Status::Ok();
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t home = GetU64(desc_view, kJournalDescHeaderBytes + kJournalDescSlotBytes * i);
    SKERN_RETURN_IF_ERROR(device_.WriteBlock(home, ByteView(payload[i])));
  }
  SKERN_RETURN_IF_ERROR(FlushDevice());
  sequence_ = txid + 1;
  SKERN_RETURN_IF_ERROR(WriteSuperblock());
  ++stats_.replays;
  SKERN_COUNTER_INC("journal.replays");
  SKERN_TRACE("journal", "replay", txid, count);
  return Status::Ok();
}

}  // namespace skern
