#include "src/block/journal.h"

#include <optional>
#include <utility>

#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"

namespace skern {
namespace {

constexpr uint64_t kSuperMagic = 0x534b4a53'55504231ULL;   // "SKJSUPB1"
constexpr uint64_t kDescMagic = 0x534b4a44'45534331ULL;    // "SKJDESC1"
constexpr uint64_t kCommitMagic = 0x534b4a43'4d4d5431ULL;  // "SKJCMMT1"
constexpr uint64_t kFnvSeed = 0xcbf29ce484222325ULL;

void PutU64(MutableByteView block, size_t offset, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    block[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

uint64_t GetU64(ByteView block, size_t offset) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(block[offset + i]) << (8 * i);
  }
  return value;
}

uint64_t Fnv1a(ByteView data, uint64_t seed = kFnvSeed) {
  uint64_t hash = seed;
  for (size_t i = 0; i < data.size(); ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

Journal::Journal(BlockDevice& device, uint64_t start, uint64_t length)
    : device_(device), start_(start), length_(length), head_(start + 1) {
  SKERN_CHECK_MSG(length_ >= 4, "journal needs at least 4 blocks");
  SKERN_CHECK_MSG(start_ + length_ <= device_.BlockCount(), "journal exceeds device");
  // Eagerly register the journal's counters so procfs /metrics lists them
  // even before the first transaction (a lazy-checkpoint journal may not
  // checkpoint for a long time).
  SKERN_COUNTER_ADD("journal.submits", 0);
  SKERN_COUNTER_ADD("journal.commits", 0);
  SKERN_COUNTER_ADD("journal.txs_committed", 0);
  SKERN_COUNTER_ADD("journal.blocks_journaled", 0);
  SKERN_COUNTER_ADD("journal.checkpoints", 0);
  SKERN_COUNTER_ADD("journal.replays", 0);
  SKERN_GAUGE_SET("journal.txs_open", 0);
}

void Journal::Tx::AddBlock(uint64_t home_block, ByteView content) {
  SKERN_CHECK(content.size() == kBlockSize);
  blocks_[home_block] = content.ToBytes();
}

void Journal::Tx::Close() {
  if (journal_ != nullptr) {
    journal_->OnTxClosed();
    journal_ = nullptr;
  }
}

Journal::Tx Journal::Begin() {
  OnTxOpened();
  return Tx(this);
}

void Journal::OnTxOpened() {
  uint64_t n = txs_open_.fetch_add(1, std::memory_order_relaxed) + 1;
  SKERN_GAUGE_SET("journal.txs_open", static_cast<int64_t>(n));
}

void Journal::OnTxClosed() {
  uint64_t n = txs_open_.fetch_sub(1, std::memory_order_relaxed) - 1;
  SKERN_GAUGE_SET("journal.txs_open", static_cast<int64_t>(n));
}

Status Journal::FlushDevice() SKERN_REQUIRES(commit_lock_) {
  ++stats_.device_flushes;
  return device_.Flush();
}

Status Journal::WriteSuperblock() SKERN_REQUIRES(commit_lock_) {
  Bytes sb(kBlockSize, 0);
  MutableByteView view(sb);
  PutU64(view, 0, kSuperMagic);
  PutU64(view, 8, sequence_);
  PutU64(view, 16, length_);
  PutU64(view, 24, Fnv1a(ByteView(sb.data(), 24)));
  SKERN_RETURN_IF_ERROR(device_.WriteBlock(start_, ByteView(sb)));
  return FlushDevice();
}

Status Journal::ReadSuperblock(uint64_t* sequence_out) const {
  Bytes sb(kBlockSize, 0);
  SKERN_RETURN_IF_ERROR(device_.ReadBlock(start_, MutableByteView(sb)));
  ByteView view(sb);
  if (GetU64(view, 0) != kSuperMagic) {
    return Status::Error(Errno::kEINVAL);
  }
  if (GetU64(view, 24) != Fnv1a(ByteView(sb.data(), 24))) {
    return Status::Error(Errno::kEINVAL);
  }
  *sequence_out = GetU64(view, 8);
  return Status::Ok();
}

Status Journal::Format() {
  MutexGuard stage(stage_lock_);
  MutexGuard commit(commit_lock_);
  {
    SpinLockGuard qg(queue_lock_);
    queue_.clear();
    results_.clear();
    next_ticket_ = 1;
  }
  pending_blocks_.clear();
  pending_txs_ = 0;
  {
    WriteGuard og(overlay_lock_);
    overlay_.clear();
    overlay_count_.store(0, std::memory_order_release);
  }
  sequence_ = 1;
  head_ = start_ + 1;
  needs_reset_ = false;
  return WriteSuperblock();
}

void Journal::set_max_batch_txs(size_t n) {
  SKERN_CHECK_MSG(n > 0, "max batch must allow at least one transaction");
  MutexGuard guard(stage_lock_);
  max_batch_txs_ = n;
}

Status Journal::ReadHome(uint64_t block, MutableByteView out) const {
  if (overlay_count_.load(std::memory_order_acquire) != 0) {
    ReadGuard guard(overlay_lock_);
    auto it = overlay_.find(block);
    if (it != overlay_.end()) {
      out.CopyFrom(ByteView(it->second));
      return Status::Ok();
    }
  }
  return device_.ReadBlock(block, out);
}

uint64_t Journal::TakeBatchLocked() SKERN_REQUIRES(stage_lock_) {
  if (pending_blocks_.empty()) {
    pending_txs_ = 0;
    return 0;
  }
  SpinLockGuard qg(queue_lock_);
  uint64_t ticket = next_ticket_++;
  QueuedBatch batch;
  batch.ticket = ticket;
  batch.blocks = std::move(pending_blocks_);
  batch.txs = pending_txs_;
  queue_.push_back(std::move(batch));
  pending_blocks_.clear();
  pending_txs_ = 0;
  return ticket;
}

Status Journal::Submit(Tx&& tx) {
  Tx t(std::move(tx));  // gauge: closes when staged (or on early return)
  if (t.blocks_.empty()) {
    return Status::Ok();
  }
  if (t.blocks_.size() > Capacity()) {
    // Rejected before touching the pending batch or the device, so a caller
    // that mis-sizes one transaction cannot damage already-staged work.
    return Status::Error(Errno::kENOSPC);
  }
  uint64_t pre_ticket = 0;
  uint64_t post_ticket = 0;
  {
    MutexGuard guard(stage_lock_);
    // Count how many of tx's blocks are new to the batch; coalescing
    // rewrites of an already-staged block costs no capacity.
    size_t fresh = 0;
    for (const auto& [home, content] : t.blocks_) {
      if (pending_blocks_.find(home) == pending_blocks_.end()) {
        ++fresh;
      }
    }
    if (pending_blocks_.size() + fresh > Capacity()) {
      pre_ticket = TakeBatchLocked();
    }
    for (auto& [home, content] : t.blocks_) {
      pending_blocks_[home] = std::move(content);
    }
    ++pending_txs_;
    SKERN_COUNTER_INC("journal.submits");
    SKERN_TRACE("journal", "submit", pending_txs_, t.blocks_.size());
    if (pending_txs_ >= max_batch_txs_) {
      post_ticket = TakeBatchLocked();
    }
  }
  if (pre_ticket != 0) {
    SKERN_RETURN_IF_ERROR(DrainQueueFor(pre_ticket));
  }
  if (post_ticket != 0) {
    return DrainQueueFor(post_ticket);
  }
  return Status::Ok();
}

Status Journal::Flush() {
  uint64_t ticket = 0;
  {
    MutexGuard guard(stage_lock_);
    ticket = TakeBatchLocked();
  }
  if (ticket == 0) {
    return Status::Ok();
  }
  return DrainQueueFor(ticket);
}

Status Journal::DrainQueueFor(uint64_t ticket) {
  SKERN_SPAN_LOCKED("journal", "flush");
  MutexGuard guard(commit_lock_);
  for (;;) {
    std::optional<QueuedBatch> next;
    {
      SpinLockGuard qg(queue_lock_);
      auto it = results_.find(ticket);
      if (it != results_.end()) {
        // Another flusher committed our batch while we waited for the
        // commit lock ("joined the next batch"): consume the result.
        Status s = it->second;
        results_.erase(it);
        return s;
      }
      if (!queue_.empty()) {
        next.emplace(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (!next.has_value()) {
      return Status::Ok();
    }
    Status s = CommitBatchLocked(std::move(next->blocks), next->txs);
    if (next->ticket == ticket) {
      return s;
    }
    SpinLockGuard qg(queue_lock_);
    results_.emplace(next->ticket, s);
  }
}

Status Journal::WriteBatchRecordLocked(const std::map<uint64_t, Bytes>& batch,
                                       uint64_t txid) SKERN_REQUIRES(commit_lock_) {
  // Step 1: descriptor + data blocks, one barrier.
  Bytes desc(kBlockSize, 0);
  MutableByteView desc_view(desc);
  PutU64(desc_view, 0, kDescMagic);
  PutU64(desc_view, 8, txid);
  PutU64(desc_view, 16, batch.size());
  {
    size_t offset = kJournalDescHeaderBytes;
    for (const auto& [home, content] : batch) {
      SKERN_CHECK_MSG(offset + kJournalDescSlotBytes <= kBlockSize - kJournalChecksumBytes,
                      "descriptor overflow");
      PutU64(desc_view, offset, home);
      offset += kJournalDescSlotBytes;
    }
    PutU64(desc_view, kBlockSize - kJournalChecksumBytes,
           Fnv1a(ByteView(desc.data(), kBlockSize - kJournalChecksumBytes)));
  }
  SKERN_RETURN_IF_ERROR(device_.WriteBlock(head_, ByteView(desc)));
  uint64_t data_checksum = kFnvSeed;
  {
    uint64_t slot = head_ + 1;
    for (const auto& [home, content] : batch) {
      SKERN_RETURN_IF_ERROR(device_.WriteBlock(slot, ByteView(content)));
      data_checksum = Fnv1a(ByteView(content), data_checksum);
      ++slot;
    }
  }
  SKERN_RETURN_IF_ERROR(FlushDevice());

  // Step 2: commit block, one barrier. After this returns the batch is
  // durable: recovery will replay it whether or not it was checkpointed.
  Bytes commit(kBlockSize, 0);
  MutableByteView commit_view(commit);
  PutU64(commit_view, 0, kCommitMagic);
  PutU64(commit_view, 8, txid);
  PutU64(commit_view, 16, data_checksum);
  PutU64(commit_view, 24, Fnv1a(ByteView(commit.data(), 24)));
  SKERN_RETURN_IF_ERROR(device_.WriteBlock(head_ + 1 + batch.size(), ByteView(commit)));
  return FlushDevice();
}

Status Journal::CommitBatchLocked(std::map<uint64_t, Bytes>&& batch, size_t txs)
    SKERN_REQUIRES(commit_lock_) {
  if (batch.empty()) {
    return Status::Ok();
  }
  SKERN_TIMED_SCOPE("journal.commit.latency_ns");
  // A torn record from an earlier failed commit would sit in front of this
  // batch and end recovery's chain scan early; reset the area first.
  if (needs_reset_) {
    SKERN_RETURN_IF_ERROR(CheckpointLocked());
  }
  size_t count = batch.size();
  if (head_ + count + 2 > start_ + length_) {
    // Journal area full: reclaim it by checkpointing everything committed.
    SKERN_RETURN_IF_ERROR(CheckpointLocked());
  }
  uint64_t txid = sequence_;
  Status record = WriteBatchRecordLocked(batch, txid);
  if (!record.ok()) {
    // A device error mid-protocol is a crash from the journal's point of
    // view: the batch is discarded and the area reset before the next
    // commit; Recover() decides whether the record became durable.
    needs_reset_ = true;
    return record;
  }
  {
    WriteGuard og(overlay_lock_);
    for (auto& [home, content] : batch) {
      overlay_[home] = std::move(content);
    }
    overlay_count_.store(overlay_.size(), std::memory_order_release);
  }
  head_ += count + 2;
  sequence_ = txid + 1;
  ++stats_.commits;
  stats_.txs_committed += txs;
  stats_.blocks_journaled += count;
  SKERN_COUNTER_INC("journal.commits");
  SKERN_COUNTER_ADD("journal.txs_committed", txs);
  SKERN_COUNTER_ADD("journal.blocks_journaled", count);
  SKERN_TRACE("journal", "commit", txid, count);
  if (!lazy_checkpoint_.load(std::memory_order_relaxed)) {
    SKERN_RETURN_IF_ERROR(CheckpointLocked());
  }
  return Status::Ok();
}

Status Journal::Commit(Tx&& tx) {
  SKERN_SPAN_LOCKED("journal", "commit");
  SKERN_RETURN_IF_ERROR(Submit(std::move(tx)));
  return Flush();
}

Status Journal::Checkpoint() {
  MutexGuard guard(commit_lock_);
  return CheckpointLocked();
}

Status Journal::CheckpointLocked() SKERN_REQUIRES(commit_lock_) {
  if (!needs_reset_ && head_ == start_ + 1 &&
      overlay_count_.load(std::memory_order_relaxed) == 0) {
    return Status::Ok();
  }
  SKERN_TIMED_SCOPE("journal.checkpoint.latency_ns");
  {
    // Commit-lock holders are the only overlay writers, so a read guard is
    // enough to pin the contents while they stream to their home slots
    // (concurrent ReadHome readers keep flowing).
    ReadGuard og(overlay_lock_);
    for (const auto& [home, content] : overlay_) {
      SKERN_RETURN_IF_ERROR(device_.WriteBlock(home, ByteView(content)));
    }
    if (!overlay_.empty()) {
      SKERN_RETURN_IF_ERROR(FlushDevice());
    }
  }
  SKERN_RETURN_IF_ERROR(WriteSuperblock());
  {
    WriteGuard og(overlay_lock_);
    overlay_.clear();
    overlay_count_.store(0, std::memory_order_release);
  }
  head_ = start_ + 1;
  needs_reset_ = false;
  ++stats_.checkpoints;
  SKERN_COUNTER_INC("journal.checkpoints");
  SKERN_TRACE("journal", "checkpoint", sequence_);
  return Status::Ok();
}

Status Journal::Recover() {
  MutexGuard stage(stage_lock_);
  MutexGuard commit(commit_lock_);
  {
    SpinLockGuard qg(queue_lock_);
    queue_.clear();
    results_.clear();
  }
  pending_blocks_.clear();
  pending_txs_ = 0;
  {
    WriteGuard og(overlay_lock_);
    overlay_.clear();
    overlay_count_.store(0, std::memory_order_release);
  }
  head_ = start_ + 1;
  needs_reset_ = false;

  uint64_t sb_sequence = 0;
  SKERN_RETURN_IF_ERROR(ReadSuperblock(&sb_sequence));
  sequence_ = sb_sequence;

  // Walk the chain of batch records from the front of the area. Each must
  // be consecutively sequenced and fully checksum-valid (descriptor, commit
  // record, payload); the first torn, stale, or missing record ends the
  // chain — everything before it was durably committed, everything after it
  // never finished.
  struct ReplayBatch {
    std::vector<uint64_t> homes;
    std::vector<Bytes> payload;
  };
  std::vector<ReplayBatch> chain;
  uint64_t pos = start_ + 1;
  uint64_t expected = sb_sequence;
  for (;;) {
    if (pos + 2 > start_ + length_) {
      break;  // no room for another descriptor + commit pair
    }
    Bytes desc(kBlockSize, 0);
    SKERN_RETURN_IF_ERROR(device_.ReadBlock(pos, MutableByteView(desc)));
    ByteView desc_view(desc);
    if (GetU64(desc_view, 0) != kDescMagic) {
      break;
    }
    if (GetU64(desc_view, kBlockSize - kJournalChecksumBytes) !=
        Fnv1a(ByteView(desc.data(), kBlockSize - kJournalChecksumBytes))) {
      break;  // torn descriptor: batch never committed
    }
    if (GetU64(desc_view, 8) != expected) {
      break;  // stale record from before the last checkpoint
    }
    uint64_t count = GetU64(desc_view, 16);
    if (count == 0 || count > Capacity() || pos + 2 + count > start_ + length_) {
      break;
    }
    Bytes commit_block(kBlockSize, 0);
    SKERN_RETURN_IF_ERROR(device_.ReadBlock(pos + 1 + count, MutableByteView(commit_block)));
    ByteView commit_view(commit_block);
    if (GetU64(commit_view, 0) != kCommitMagic || GetU64(commit_view, 8) != expected ||
        GetU64(commit_view, 24) != Fnv1a(ByteView(commit_block.data(), 24))) {
      break;  // no durable commit record: discard
    }
    ReplayBatch batch;
    uint64_t data_checksum = kFnvSeed;
    for (uint64_t i = 0; i < count; ++i) {
      Bytes payload(kBlockSize, 0);
      SKERN_RETURN_IF_ERROR(device_.ReadBlock(pos + 1 + i, MutableByteView(payload)));
      data_checksum = Fnv1a(ByteView(payload), data_checksum);
      batch.homes.push_back(
          GetU64(desc_view, kJournalDescHeaderBytes + kJournalDescSlotBytes * i));
      batch.payload.push_back(std::move(payload));
    }
    if (data_checksum != GetU64(commit_view, 16)) {
      break;  // payload torn despite commit record: discard
    }
    chain.push_back(std::move(batch));
    pos += count + 2;
    ++expected;
  }

  if (chain.empty()) {
    ++stats_.empty_recoveries;
    return Status::Ok();
  }
  // Replay in commit order (later batches overwrite earlier ones' blocks),
  // then retire the whole chain with one superblock advance.
  for (const auto& batch : chain) {
    for (size_t i = 0; i < batch.homes.size(); ++i) {
      SKERN_RETURN_IF_ERROR(device_.WriteBlock(batch.homes[i], ByteView(batch.payload[i])));
    }
  }
  SKERN_RETURN_IF_ERROR(FlushDevice());
  sequence_ = expected;
  SKERN_RETURN_IF_ERROR(WriteSuperblock());
  stats_.replays += chain.size();
  SKERN_COUNTER_ADD("journal.replays", chain.size());
  SKERN_TRACE("journal", "replay", expected - 1, chain.size());
  return Status::Ok();
}

}  // namespace skern
