// Write-ahead journal (jbd2 analogue) providing atomic multi-block updates.
//
// The journal owns a dedicated block range on the device. Transactions are
// staged with Submit() into a pending batch (jbd2-style group commit) and the
// batch is made durable with Flush(). A committed batch is written as a
// contiguous record in the journal area:
//   descriptor block | data blocks... | commit block (checksummed)
// and the commit protocol costs two barriers: one after descriptor + data,
// one after the commit block. Batches append after each other, so several
// committed-but-not-checkpointed batches can live in the area at once
// (concurrent open transactions relaxing the single group-commit barrier of
// the original design). Checkpointing — writing home blocks and advancing the
// journal superblock — is decoupled:
//   * eager mode (the default, the original contract): every commit
//     checkpoints immediately, so the device's home blocks are always
//     current after Flush() returns;
//   * lazy mode (SetLazyCheckpoint(true), used by SafeFs's write-back
//     plane): commits only append to the journal; home blocks go stale and
//     reads must consult the committed-but-not-checkpointed overlay via
//     ReadHome(). Checkpoint happens when the area fills, at an explicit
//     Checkpoint() call, or during Recover(). The overlay is bounded by the
//     journal area: a batch cannot commit without space, and space is
//     reclaimed only by checkpointing.
// Recovery scans the area from the front, replaying the longest chain of
// consecutively-sequenced, checksum-valid batches (descriptor + commit block
// + payload checksum must all validate) and checkpointing them; the first
// torn or stale record ends the chain. A crash at any point either replays a
// committed batch fully or ignores it — never a partial application.
//
// Locking: submitters stage under `stage_lock_` and never wait on device
// barriers; the device protocol serializes under `commit_lock_`. A submitter
// arriving while a flush is in flight stages into the next batch and
// returns — the only threads that wait on `commit_lock_` are the ones with a
// batch to make durable, and that wait is charged to the lock-contention
// registry (procfs /contention) like every TrackedMutex.
//
// Data is journaled along with metadata (data=journal mode), which keeps the
// crash contract exact: a recovered file system equals the last flushed
// state, which is what the FsModel crash oracle checks.
#ifndef SKERN_SRC_BLOCK_JOURNAL_H_
#define SKERN_SRC_BLOCK_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/status.h"
#include "src/block/block_device.h"
#include "src/sync/mutex.h"

namespace skern {

// On-disk descriptor-block layout. The descriptor starts with a 24-byte
// header (magic, txid, block count — three u64s), followed by one 8-byte
// home block number per journaled block, and ends with an 8-byte FNV-1a
// checksum over everything before it.
inline constexpr uint64_t kJournalDescHeaderBytes = 24;
inline constexpr uint64_t kJournalDescSlotBytes = 8;
inline constexpr uint64_t kJournalChecksumBytes = 8;

struct JournalStats {
  uint64_t commits = 0;           // on-disk batch commits (Flush with work)
  uint64_t txs_committed = 0;     // logical transactions made durable
  uint64_t blocks_journaled = 0;
  uint64_t device_flushes = 0;    // barriers this journal issued
  uint64_t checkpoints = 0;       // home-block writeback passes
  uint64_t replays = 0;           // batches replayed at recovery
  uint64_t empty_recoveries = 0;  // recoveries with nothing to replay
};

class Journal {
 public:
  // Logical transactions per batch before Submit flushes automatically.
  static constexpr size_t kDefaultMaxBatchTxs = 32;

  // The journal occupies device blocks [start, start + length). length must
  // be at least 4 (superblock + descriptor + 1 data + commit).
  Journal(BlockDevice& device, uint64_t start, uint64_t length);

  // A transaction under construction. Blocks added twice coalesce (last
  // content wins), like buffers re-dirtied inside one jbd2 transaction.
  // A Tx counts as "open" (journal.txs_open gauge) from Begin() until it is
  // submitted or destroyed.
  class Tx {
   public:
    Tx() = default;
    ~Tx() { Close(); }
    Tx(Tx&& other) noexcept : journal_(other.journal_), blocks_(std::move(other.blocks_)) {
      other.journal_ = nullptr;
    }
    Tx& operator=(Tx&& other) noexcept {
      if (this != &other) {
        Close();
        journal_ = other.journal_;
        blocks_ = std::move(other.blocks_);
        other.journal_ = nullptr;
      }
      return *this;
    }
    Tx(const Tx&) = delete;
    Tx& operator=(const Tx&) = delete;

    void AddBlock(uint64_t home_block, ByteView content);
    size_t BlockCount() const { return blocks_.size(); }

   private:
    friend class Journal;
    explicit Tx(Journal* journal) : journal_(journal) {}
    void Close();

    Journal* journal_ = nullptr;
    std::map<uint64_t, Bytes> blocks_;
  };

  // Initializes the journal superblock (mkfs path).
  Status Format();

  // Scans the journal and replays every committed-but-not-checkpointed
  // batch (mount path). Safe to call on a clean journal. Leaves the journal
  // fully checkpointed (empty overlay, reset area).
  Status Recover();

  Tx Begin();

  // Stages `tx` into the pending batch without making it durable. Blocks
  // staged by different transactions coalesce last-writer-wins, like buffers
  // re-dirtied across jbd2 transactions in one running batch. Flushes the
  // current batch first if `tx` would not fit, and flushes after staging if
  // the batch reaches the max-batch bound. Fails with ENOSPC (nothing
  // staged, nothing flushed) if `tx` alone exceeds the journal capacity.
  Status Submit(Tx&& tx);

  // Makes the pending batch durable (two barriers; plus a checkpoint in
  // eager mode). An empty batch is a no-op. On device error the batch is
  // discarded and the journal area is reset before the next commit (the
  // caller recovers through Recover(), same as a crash).
  Status Flush();

  // Submit + Flush: the unbatched commit path. An empty transaction is a
  // no-op. Fails (without corrupting anything) if the transaction exceeds
  // the journal capacity or the device errors.
  Status Commit(Tx&& tx);

  // Writes every committed-but-not-checkpointed block to its home location,
  // advances the journal superblock, and resets the journal area. A no-op
  // when nothing is outstanding.
  Status Checkpoint();

  // Lazy-checkpoint mode: see the file comment. Off by default (commits
  // checkpoint immediately, the original contract).
  void SetLazyCheckpoint(bool lazy) {
    lazy_checkpoint_.store(lazy, std::memory_order_relaxed);
  }

  // True if committed batches exist whose home blocks are stale on device.
  bool HasUncheckpointed() const {
    return overlay_count_.load(std::memory_order_acquire) != 0;
  }

  // Current content of a home block: the committed-but-not-checkpointed
  // overlay if present, else the device. This is the read path every client
  // of a lazy-checkpoint journal must use for journaled blocks.
  Status ReadHome(uint64_t block, MutableByteView out) const;

  // Batch capacity in home blocks: bounded by the journal area and by the
  // descriptor block (which lists home block numbers inline after its
  // header, leaving room for the trailing checksum).
  uint64_t Capacity() const {
    uint64_t desc_slots =
        (kBlockSize - kJournalDescHeaderBytes - kJournalChecksumBytes) /
        kJournalDescSlotBytes;
    return length_ - 3 < desc_slots ? length_ - 3 : desc_slots;
  }

  void set_max_batch_txs(size_t n);
  size_t max_batch_txs() const {
    MutexGuard guard(stage_lock_);
    return max_batch_txs_;
  }
  size_t pending_tx_count() const {
    MutexGuard guard(stage_lock_);
    return pending_txs_;
  }
  size_t pending_block_count() const {
    MutexGuard guard(stage_lock_);
    return pending_blocks_.size();
  }
  size_t overlay_block_count() const {
    return overlay_count_.load(std::memory_order_acquire);
  }
  uint64_t open_tx_count() const {
    return txs_open_.load(std::memory_order_relaxed);
  }

  uint64_t sequence() const {
    MutexGuard guard(commit_lock_);
    return sequence_;
  }
  // Consistent snapshot taken under the commit lock.
  JournalStats stats() const {
    MutexGuard guard(commit_lock_);
    return stats_;
  }

 private:
  // A batch taken out of the staging area, ticketed so concurrent flushers
  // commit in exactly the order the batches were staged (coalescing across
  // batches makes commit order content-bearing).
  struct QueuedBatch {
    uint64_t ticket = 0;
    std::map<uint64_t, Bytes> blocks;
    size_t txs = 0;
  };

  void OnTxOpened();
  void OnTxClosed();

  // Moves the staged batch into the commit queue; returns its ticket (0 if
  // the batch was empty and nothing was queued).
  uint64_t TakeBatchLocked() SKERN_REQUIRES(stage_lock_);
  // Commits queued batches in ticket order until `ticket`'s result is known.
  Status DrainQueueFor(uint64_t ticket);
  Status CommitBatchLocked(std::map<uint64_t, Bytes>&& blocks, size_t txs)
      SKERN_REQUIRES(commit_lock_);
  Status WriteBatchRecordLocked(const std::map<uint64_t, Bytes>& batch, uint64_t txid)
      SKERN_REQUIRES(commit_lock_);
  Status CheckpointLocked() SKERN_REQUIRES(commit_lock_);
  Status WriteSuperblock() SKERN_REQUIRES(commit_lock_);
  Status ReadSuperblock(uint64_t* sequence_out) const;
  Status FlushDevice() SKERN_REQUIRES(commit_lock_);

  BlockDevice& device_;
  uint64_t start_;
  uint64_t length_;

  // Staging plane: submitters only ever touch this lock, so staging a
  // transaction never waits behind a device barrier. SafeFs holds its big
  // lock above both journal locks (safefs.lock -> journal.* are recorded
  // lockdep edges); nothing is ever acquired above the queue spinlock.
  mutable TrackedMutex stage_lock_{"journal.stage"};
  size_t max_batch_txs_ SKERN_GUARDED_BY(stage_lock_) = kDefaultMaxBatchTxs;
  // Staged batch, home -> content.
  std::map<uint64_t, Bytes> pending_blocks_ SKERN_GUARDED_BY(stage_lock_);
  // Logical txs in the batch.
  size_t pending_txs_ SKERN_GUARDED_BY(stage_lock_) = 0;

  // Hand-off queue between the staging and commit planes (leaf lock).
  mutable TrackedSpinLock queue_lock_{"journal.queue"};
  uint64_t next_ticket_ SKERN_GUARDED_BY(queue_lock_) = 1;
  std::deque<QueuedBatch> queue_ SKERN_GUARDED_BY(queue_lock_);
  // Results of batches committed on behalf of another thread, consumed by
  // the owning flusher (bounded: every push is paired with one read).
  std::map<uint64_t, Status> results_ SKERN_GUARDED_BY(queue_lock_);

  // Commit plane: serializes the on-device protocol.
  mutable TrackedMutex commit_lock_{"journal.commit"};
  uint64_t sequence_ SKERN_GUARDED_BY(commit_lock_) = 1;  // next batch id
  // Next free slot in the journal area (batches append contiguously).
  uint64_t head_ SKERN_GUARDED_BY(commit_lock_) = 0;
  // Set when a commit died mid-protocol: the area may hold a torn record in
  // front of nothing, so it must be reset (checkpointed) before the next
  // batch lands.
  bool needs_reset_ SKERN_GUARDED_BY(commit_lock_) = false;
  JournalStats stats_ SKERN_GUARDED_BY(commit_lock_);

  // Committed-but-not-checkpointed home content. Writers publish under the
  // commit lock + overlay write lock; ReadHome takes the read lock only when
  // the atomic count says the overlay is non-empty.
  mutable TrackedRwLock overlay_lock_{"journal.overlay"};
  std::map<uint64_t, Bytes> overlay_ SKERN_GUARDED_BY(overlay_lock_);
  std::atomic<uint64_t> overlay_count_{0};

  std::atomic<bool> lazy_checkpoint_{false};
  std::atomic<uint64_t> txs_open_{0};
};

// BlockDevice view of a lazy-checkpoint journal's device: reads go through
// the committed-but-not-checkpointed overlay (ReadHome), writes and barriers
// pass through. SafeFs mounts its read cache on this so a cache miss after a
// lazy commit observes committed content, not the stale home block.
class JournalHomeDevice : public BlockDevice {
 public:
  JournalHomeDevice(Journal& journal, BlockDevice& device)
      : journal_(journal), device_(device) {}

  Status ReadBlock(uint64_t block, MutableByteView out) override {
    return journal_.ReadHome(block, out);
  }
  Status WriteBlock(uint64_t block, ByteView data) override {
    return device_.WriteBlock(block, data);
  }
  Status Flush() override { return device_.Flush(); }
  uint64_t BlockCount() const override { return device_.BlockCount(); }

 private:
  Journal& journal_;
  BlockDevice& device_;
};

}  // namespace skern

#endif  // SKERN_SRC_BLOCK_JOURNAL_H_
