// Write-ahead journal (jbd2 analogue) providing atomic multi-block updates.
//
// The journal owns a dedicated block range on the device. Transactions are
// staged with Submit() into a pending batch (jbd2-style group commit) and the
// batch is made durable with Flush(), which runs the classic protocol once
// for the whole batch:
//   1. descriptor + data blocks        -> flush (barrier)
//   2. commit block (with checksum)    -> flush
//   3. checkpoint: write home blocks   -> flush
//   4. journal superblock sequence advance -> flush
// Group commit amortizes those four barriers over every transaction in the
// batch instead of paying them per transaction. A crash at any point either
// replays the batch fully (commit block durable and checksummed) or ignores
// it (commit missing/torn) — never a partial application; since a batch is a
// single on-disk transaction, "all-or-nothing per batch" is exactly the old
// per-transaction contract with a coarser grain. Recovery is idempotent.
//
// Simplifications vs. jbd2, documented in DESIGN.md: Flush is synchronous and
// checkpoints immediately (at most one batch lives in the journal), and data
// is journaled along with metadata (data=journal mode), which makes the crash
// contract exact: a recovered file system equals the last flushed state,
// which is what the FsModel crash oracle checks.
#ifndef SKERN_SRC_BLOCK_JOURNAL_H_
#define SKERN_SRC_BLOCK_JOURNAL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/status.h"
#include "src/block/block_device.h"
#include "src/sync/mutex.h"

namespace skern {

// On-disk descriptor-block layout. The descriptor starts with a 24-byte
// header (magic, txid, block count — three u64s), followed by one 8-byte
// home block number per journaled block, and ends with an 8-byte FNV-1a
// checksum over everything before it.
inline constexpr uint64_t kJournalDescHeaderBytes = 24;
inline constexpr uint64_t kJournalDescSlotBytes = 8;
inline constexpr uint64_t kJournalChecksumBytes = 8;

struct JournalStats {
  uint64_t commits = 0;           // on-disk batch commits (Flush with work)
  uint64_t txs_committed = 0;     // logical transactions made durable
  uint64_t blocks_journaled = 0;
  uint64_t device_flushes = 0;    // barriers this journal issued
  uint64_t replays = 0;           // batches replayed at recovery
  uint64_t empty_recoveries = 0;  // recoveries with nothing to replay
};

class Journal {
 public:
  // Logical transactions per batch before Submit flushes automatically.
  static constexpr size_t kDefaultMaxBatchTxs = 32;

  // The journal occupies device blocks [start, start + length). length must
  // be at least 4 (superblock + descriptor + 1 data + commit).
  Journal(BlockDevice& device, uint64_t start, uint64_t length);

  // A transaction under construction. Blocks added twice coalesce (last
  // content wins), like buffers re-dirtied inside one jbd2 transaction.
  class Tx {
   public:
    void AddBlock(uint64_t home_block, ByteView content);
    size_t BlockCount() const { return blocks_.size(); }

   private:
    friend class Journal;
    std::map<uint64_t, Bytes> blocks_;
  };

  // Initializes the journal superblock (mkfs path).
  Status Format();

  // Scans the journal and replays any committed-but-not-checkpointed
  // batch (mount path). Safe to call on a clean journal.
  Status Recover();

  Tx Begin() const { return Tx(); }

  // Stages `tx` into the pending batch without making it durable. Blocks
  // staged by different transactions coalesce last-writer-wins, like buffers
  // re-dirtied across jbd2 transactions in one running batch. Flushes the
  // current batch first if `tx` would not fit, and flushes after staging if
  // the batch reaches the max-batch bound. Fails with ENOSPC (nothing
  // staged, nothing flushed) if `tx` alone exceeds the journal capacity.
  Status Submit(Tx&& tx);

  // Makes the pending batch durable via the four-step protocol. An empty
  // batch is a no-op. On device error the batch is discarded (the caller
  // recovers through Recover(), same as a crash).
  Status Flush();

  // Submit + Flush: the unbatched commit path. An empty transaction is a
  // no-op. Fails (without corrupting anything) if the transaction exceeds
  // the journal capacity or the device errors.
  Status Commit(Tx&& tx);

  // Batch capacity in home blocks: bounded by the journal area and by the
  // descriptor block (which lists home block numbers inline after its
  // header, leaving room for the trailing checksum).
  uint64_t Capacity() const {
    uint64_t desc_slots =
        (kBlockSize - kJournalDescHeaderBytes - kJournalChecksumBytes) /
        kJournalDescSlotBytes;
    return length_ - 3 < desc_slots ? length_ - 3 : desc_slots;
  }

  void set_max_batch_txs(size_t n);
  size_t max_batch_txs() const {
    MutexGuard guard(mutex_);
    return max_batch_txs_;
  }
  size_t pending_tx_count() const {
    MutexGuard guard(mutex_);
    return pending_txs_;
  }
  size_t pending_block_count() const {
    MutexGuard guard(mutex_);
    return pending_blocks_.size();
  }

  uint64_t sequence() const {
    MutexGuard guard(mutex_);
    return sequence_;
  }
  // Consistent snapshot taken under the journal lock.
  JournalStats stats() const {
    MutexGuard guard(mutex_);
    return stats_;
  }

 private:
  Status SubmitLocked(Tx&& tx) SKERN_REQUIRES(mutex_);
  Status FlushLocked() SKERN_REQUIRES(mutex_);
  Status WriteSuperblock() SKERN_REQUIRES(mutex_);
  Status ReadSuperblock(uint64_t* sequence_out) const;
  Status FlushDevice() SKERN_REQUIRES(mutex_);

  BlockDevice& device_;
  uint64_t start_;
  uint64_t length_;
  // Serializes the commit protocol and guards the staged batch. SafeFs holds
  // its big lock above this one (safefs.lock -> journal.lock is a recorded
  // lockdep edge); nothing is ever acquired while holding the journal lock.
  mutable TrackedMutex mutex_{"journal.lock"};
  uint64_t sequence_ SKERN_GUARDED_BY(mutex_) = 1;  // next batch id
  size_t max_batch_txs_ SKERN_GUARDED_BY(mutex_) = kDefaultMaxBatchTxs;
  // Staged batch, home -> content.
  std::map<uint64_t, Bytes> pending_blocks_ SKERN_GUARDED_BY(mutex_);
  // Logical txs in the batch.
  size_t pending_txs_ SKERN_GUARDED_BY(mutex_) = 0;
  JournalStats stats_ SKERN_GUARDED_BY(mutex_);
};

}  // namespace skern

#endif  // SKERN_SRC_BLOCK_JOURNAL_H_
