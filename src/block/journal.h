// Write-ahead journal (jbd2 analogue) providing atomic multi-block updates.
//
// The journal owns a dedicated block range on the device. Each transaction is
// committed with the classic protocol:
//   1. descriptor + data blocks        -> flush (barrier)
//   2. commit block (with checksum)    -> flush
//   3. checkpoint: write home blocks   -> flush
//   4. journal superblock sequence advance -> flush
// A crash at any point either replays the transaction fully (commit block
// durable and checksummed) or ignores it (commit missing/torn) — never a
// partial application. Recovery is idempotent.
//
// Simplifications vs. jbd2, documented in DESIGN.md: commits are synchronous
// and checkpoint immediately (at most one transaction lives in the journal),
// and data is journaled along with metadata (data=journal mode), which makes
// the crash contract exact: a recovered file system equals the last committed
// state, which is what the FsModel crash oracle checks.
#ifndef SKERN_SRC_BLOCK_JOURNAL_H_
#define SKERN_SRC_BLOCK_JOURNAL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/status.h"
#include "src/block/block_device.h"

namespace skern {

struct JournalStats {
  uint64_t commits = 0;
  uint64_t blocks_journaled = 0;
  uint64_t replays = 0;          // transactions replayed at recovery
  uint64_t empty_recoveries = 0;  // recoveries with nothing to replay
};

class Journal {
 public:
  // The journal occupies device blocks [start, start + length). length must
  // be at least 4 (superblock + descriptor + 1 data + commit).
  Journal(BlockDevice& device, uint64_t start, uint64_t length);

  // A transaction under construction. Blocks added twice coalesce (last
  // content wins), like buffers re-dirtied inside one jbd2 transaction.
  class Tx {
   public:
    void AddBlock(uint64_t home_block, ByteView content);
    size_t BlockCount() const { return blocks_.size(); }

   private:
    friend class Journal;
    std::map<uint64_t, Bytes> blocks_;
  };

  // Initializes the journal superblock (mkfs path).
  Status Format();

  // Scans the journal and replays any committed-but-not-checkpointed
  // transaction (mount path). Safe to call on a clean journal.
  Status Recover();

  Tx Begin() const { return Tx(); }

  // Runs the four-step commit protocol. An empty transaction is a no-op.
  // Fails (without corrupting anything) if the transaction exceeds the
  // journal capacity or the device errors.
  Status Commit(Tx&& tx);

  // Transaction capacity in home blocks: bounded by the journal area and by
  // the descriptor block (which lists home block numbers inline).
  uint64_t Capacity() const {
    uint64_t desc_slots = (kBlockSize - 32) / 8;
    return length_ - 3 < desc_slots ? length_ - 3 : desc_slots;
  }

  uint64_t sequence() const { return sequence_; }
  const JournalStats& stats() const { return stats_; }

 private:
  Status WriteSuperblock();
  Status ReadSuperblock(uint64_t* sequence_out) const;

  BlockDevice& device_;
  uint64_t start_;
  uint64_t length_;
  uint64_t sequence_ = 1;  // next transaction id
  JournalStats stats_;
};

}  // namespace skern

#endif  // SKERN_SRC_BLOCK_JOURNAL_H_
