#include "src/core/landscape.h"

#include <iomanip>
#include <sstream>

#include "src/core/module.h"

namespace skern {

std::vector<LandscapeEntry> PublishedLandscape() {
  // Sizes are the order-of-magnitude figures the paper's Figure 1 groups
  // systems by: tens of millions (Linux/FreeBSD), hundreds of thousands
  // (type/ownership-safe research kernels), thousands (verified kernels).
  return {
      {"Linux", 28'000'000, SafetyLevel::kUnsafe, "de-facto standard; ~1.5M new LoC/year"},
      {"FreeBSD", 8'000'000, SafetyLevel::kUnsafe, "mature BSD kernel"},
      {"Singularity", 300'000, SafetyLevel::kTypeSafe, "Sing#/C#; SIPs"},
      {"Biscuit", 120'000, SafetyLevel::kTypeSafe, "POSIX kernel in Go"},
      {"Theseus", 100'000, SafetyLevel::kOwnershipSafe, "Rust; state spill avoidance"},
      {"RedLeaf", 160'000, SafetyLevel::kOwnershipSafe, "Rust; language-based isolation"},
      {"seL4", 10'000, SafetyLevel::kVerified, "microkernel, full functional proof"},
      {"Hyperkernel", 7'000, SafetyLevel::kVerified, "push-button verification"},
  };
}

std::vector<LandscapeEntry> SkernLandscape() {
  auto& registry = ModuleRegistry::Get();
  std::vector<LandscapeEntry> out;
  for (int i = 0; i < kSafetyLevelCount; ++i) {
    auto level = static_cast<SafetyLevel>(i);
    size_t loc = registry.LinesAtLevel(level);
    if (loc == 0) {
      continue;
    }
    out.push_back(LandscapeEntry{std::string("skern[") + SafetyLevelName(level) + "]", loc,
                                 level, "this repository's modules at this rung"});
  }
  return out;
}

std::string RenderLandscapeTable() {
  std::ostringstream os;
  os << std::left << std::setw(22) << "system" << std::right << std::setw(12) << "LoC"
     << "  " << std::left << std::setw(16) << "guarantee"
     << "note\n";
  os << std::string(78, '-') << "\n";
  auto emit = [&os](const std::vector<LandscapeEntry>& entries) {
    for (const auto& e : entries) {
      os << std::left << std::setw(22) << e.system << std::right << std::setw(12)
         << e.lines_of_code << "  " << std::left << std::setw(16)
         << SafetyLevelName(e.guarantee) << e.note << "\n";
    }
  };
  emit(PublishedLandscape());
  os << std::string(78, '-') << "\n";
  emit(SkernLandscape());
  return os.str();
}

}  // namespace skern
