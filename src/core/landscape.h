// Figure 1 landscape: published systems by size and safety guarantee, plus
// skern's own per-rung inventory from the module registry.
#ifndef SKERN_SRC_CORE_LANDSCAPE_H_
#define SKERN_SRC_CORE_LANDSCAPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/safety_level.h"

namespace skern {

struct LandscapeEntry {
  std::string system;
  uint64_t lines_of_code;  // order-of-magnitude public figures
  SafetyLevel guarantee;
  std::string note;
};

// The systems Figure 1 plots, with their commonly cited sizes.
std::vector<LandscapeEntry> PublishedLandscape();

// skern's own series: per-rung aggregate LoC from the module registry
// (RegisterBuiltinModules() must have run). This is the "Safe Linux
// incremental progress" arrow rendered as data.
std::vector<LandscapeEntry> SkernLandscape();

// Renders both series as a fixed-width table.
std::string RenderLandscapeTable();

}  // namespace skern

#endif  // SKERN_SRC_CORE_LANDSCAPE_H_
