// Implementation slots: "New implementations can be dropped in without
// changing other parts of the kernel" (§4.1).
//
// An ImplementationSlot<Interface> is the single point a caller binds to.
// Implementations at different safety rungs register under names; the slot
// switches between them. This is the mechanism the fs_migration example uses
// to walk one mount point up the ladder while the workload keeps running.
#ifndef SKERN_SRC_CORE_MIGRATION_H_
#define SKERN_SRC_CORE_MIGRATION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/core/safety_level.h"
#include "src/sync/mutex.h"

namespace skern {

template <typename Interface>
class ImplementationSlot {
 public:
  explicit ImplementationSlot(std::string interface_name)
      : interface_name_(std::move(interface_name)) {}

  const std::string& interface_name() const { return interface_name_; }

  // Registers an implementation under `name`. The first registration becomes
  // active. Re-registering a name replaces it (and rebinds if active).
  void Install(const std::string& name, std::shared_ptr<Interface> impl,
               SafetyLevel level = SafetyLevel::kModular) {
    MutexGuard guard(mutex_);
    impls_[name] = Entry{std::move(impl), level};
    if (active_name_.empty()) {
      active_name_ = name;
    }
  }

  // Switches the active implementation. Callers holding the previous
  // shared_ptr keep it alive until they drop it (graceful handoff).
  Status SwitchTo(const std::string& name) {
    MutexGuard guard(mutex_);
    if (impls_.find(name) == impls_.end()) {
      return Status::Error(Errno::kENODEV);
    }
    active_name_ = name;
    ++switch_count_;
    return Status::Ok();
  }

  std::shared_ptr<Interface> Active() const {
    MutexGuard guard(mutex_);
    auto it = impls_.find(active_name_);
    return it == impls_.end() ? nullptr : it->second.impl;
  }

  std::string ActiveName() const {
    MutexGuard guard(mutex_);
    return active_name_;
  }

  SafetyLevel ActiveLevel() const {
    MutexGuard guard(mutex_);
    auto it = impls_.find(active_name_);
    return it == impls_.end() ? SafetyLevel::kUnsafe : it->second.level;
  }

  std::vector<std::string> Names() const {
    MutexGuard guard(mutex_);
    std::vector<std::string> names;
    names.reserve(impls_.size());
    for (const auto& [name, entry] : impls_) {
      names.push_back(name);
    }
    return names;
  }

  uint64_t switch_count() const {
    MutexGuard guard(mutex_);
    return switch_count_;
  }

 private:
  struct Entry {
    std::shared_ptr<Interface> impl;
    SafetyLevel level;
  };

  std::string interface_name_;
  mutable TrackedMutex mutex_{"core.slot"};
  std::map<std::string, Entry> impls_ SKERN_GUARDED_BY(mutex_);
  std::string active_name_ SKERN_GUARDED_BY(mutex_);
  uint64_t switch_count_ SKERN_GUARDED_BY(mutex_) = 0;
};

}  // namespace skern

#endif  // SKERN_SRC_CORE_MIGRATION_H_
