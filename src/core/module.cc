#include "src/core/module.h"

namespace skern {

ModuleRegistry& ModuleRegistry::Get() {
  static ModuleRegistry* registry = new ModuleRegistry();
  return *registry;
}

void ModuleRegistry::Register(const ModuleInfo& info) {
  MutexGuard guard(mutex_);
  modules_[info.name] = info;
}

std::optional<ModuleInfo> ModuleRegistry::Find(const std::string& name) const {
  MutexGuard guard(mutex_);
  auto it = modules_.find(name);
  if (it == modules_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<ModuleInfo> ModuleRegistry::All() const {
  MutexGuard guard(mutex_);
  std::vector<ModuleInfo> out;
  out.reserve(modules_.size());
  for (const auto& [name, info] : modules_) {
    out.push_back(info);
  }
  return out;
}

std::vector<ModuleInfo> ModuleRegistry::Implementing(const std::string& interface) const {
  MutexGuard guard(mutex_);
  std::vector<ModuleInfo> out;
  for (const auto& [name, info] : modules_) {
    if (info.interface == interface) {
      out.push_back(info);
    }
  }
  return out;
}

size_t ModuleRegistry::LinesAtLevel(SafetyLevel level) const {
  MutexGuard guard(mutex_);
  size_t total = 0;
  for (const auto& [name, info] : modules_) {
    if (info.level == level) {
      total += info.lines_of_code;
    }
  }
  return total;
}

double ModuleRegistry::FractionAtOrAbove(SafetyLevel level) const {
  MutexGuard guard(mutex_);
  size_t total = 0;
  size_t at_or_above = 0;
  for (const auto& [name, info] : modules_) {
    total += info.lines_of_code;
    if (info.level >= level) {
      at_or_above += info.lines_of_code;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(at_or_above) / static_cast<double>(total);
}

void ModuleRegistry::ResetForTesting() {
  MutexGuard guard(mutex_);
  modules_.clear();
}

void RegisterBuiltinModules() {
  auto& registry = ModuleRegistry::Get();
  // Sizes are approximate implementation LoC per module directory; they feed
  // the Figure 1 landscape's "Safe Linux incremental progress" series. The
  // exact values matter less than the distribution across rungs.
  registry.Register({"block", "skern.BlockDevice", SafetyLevel::kModular, 900,
                     "RAM block device, buffer cache, jbd2-style journal"});
  registry.Register({"vfs", "skern.Vfs", SafetyLevel::kModular, 1200,
                     "path walk, dentry cache, inode/file tables, mounts"});
  registry.Register({"legacyfs", "skern.FileSystem", SafetyLevel::kUnsafe, 1100,
                     "C-idiom file system: void* private data, ERR_PTR, manual locking"});
  registry.Register({"safefs", "skern.FileSystem", SafetyLevel::kOwnershipSafe, 1300,
                     "typed, ownership-safe journaling file system"});
  registry.Register({"specfs", "skern.FileSystem", SafetyLevel::kVerified, 700,
                     "safefs refinement-checked against the executable FsModel"});
  registry.Register({"net-monolithic", "skern.SocketLayer", SafetyLevel::kUnsafe, 800,
                     "socket layer with TCP state embedded in generic code"});
  registry.Register({"net-modular", "skern.SocketLayer", SafetyLevel::kTypeSafe, 900,
                     "socket layer behind a protocol-family registry"});
  registry.Register({"ownership", "skern.Ownership", SafetyLevel::kOwnershipSafe, 500,
                     "the three ownership-sharing models and their runtime checker"});
  registry.Register({"spec", "skern.Spec", SafetyLevel::kVerified, 600,
                     "executable models, refinement checker, crash oracle"});
  registry.Register({"memfs", "skern.FileSystem", SafetyLevel::kVerified, 100,
                     "the specification run directly as a (volatile) file system"});
  registry.Register({"procfs", "skern.FileSystem", SafetyLevel::kTypeSafe, 250,
                     "read-only introspection of the safety framework's live state"});
}

}  // namespace skern
