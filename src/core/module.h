// Module registry: the bookkeeping behind step 1 (modularity).
//
// Every subsystem registers itself with the interface it implements and the
// safety rung it has reached. The registry is what the Figure 1 landscape and
// the migration manager read; it is also the project's honest inventory of
// how far up the ladder each piece has climbed.
#ifndef SKERN_SRC_CORE_MODULE_H_
#define SKERN_SRC_CORE_MODULE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/safety_level.h"
#include "src/sync/mutex.h"

namespace skern {

struct ModuleInfo {
  std::string name;         // e.g. "safefs"
  std::string interface;    // e.g. "skern.FileSystem"
  SafetyLevel level = SafetyLevel::kUnsafe;
  size_t lines_of_code = 0;  // measured size of the implementation
  std::string description;
};

class ModuleRegistry {
 public:
  static ModuleRegistry& Get();

  // Registers or updates a module by name.
  void Register(const ModuleInfo& info);

  std::optional<ModuleInfo> Find(const std::string& name) const;
  std::vector<ModuleInfo> All() const;

  // Modules implementing a given interface (the swap candidates).
  std::vector<ModuleInfo> Implementing(const std::string& interface) const;

  // Aggregate LoC of registered modules at exactly `level`.
  size_t LinesAtLevel(SafetyLevel level) const;

  // Fraction of total registered LoC at `level` or safer.
  double FractionAtOrAbove(SafetyLevel level) const;

  void ResetForTesting();

 private:
  ModuleRegistry() = default;

  mutable TrackedMutex mutex_{"core.module_registry"};
  std::map<std::string, ModuleInfo> modules_ SKERN_GUARDED_BY(mutex_);
};

// Registers the built-in skern modules (block, vfs, the three file systems,
// both socket stacks, ...) with their measured sizes. Idempotent. Called by
// examples/benches that present the inventory.
void RegisterBuiltinModules();

}  // namespace skern

#endif  // SKERN_SRC_CORE_MODULE_H_
