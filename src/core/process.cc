#include "src/core/process.h"

namespace skern {

std::shared_ptr<Process> ProcessTable::Spawn(const std::string& name, const Cred& cred) {
  MutexGuard guard(mutex_);
  auto proc = std::make_shared<Process>();
  proc->pid = next_pid_++;
  proc->name = name;
  proc->cred = cred;
  procs_.push_back(proc);
  return proc;
}

std::shared_ptr<Process> ProcessTable::Find(uint64_t pid) const {
  MutexGuard guard(mutex_);
  for (const auto& proc : procs_) {
    if (proc->pid == pid) {
      return proc;
    }
  }
  return nullptr;
}

size_t ProcessTable::Count() const {
  MutexGuard guard(mutex_);
  return procs_.size();
}

}  // namespace skern
