// Per-"process" execution context: the subject side of the credential model.
//
// This kernel has no real processes — workloads are threads — so a Process
// here is the minimal subject record access control needs: a pid, a name for
// diagnostics, and the Cred that every Vfs syscall issued on its behalf is
// checked against. ProcessScope binds a process to the current thread for a
// region (RAII, nests), which is how the workload driver and tests run
// sections "as" an unprivileged user; the aio plane captures the same
// credential at Enqueue so completions keep the submitter's identity.
#ifndef SKERN_SRC_CORE_PROCESS_H_
#define SKERN_SRC_CORE_PROCESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/cred.h"
#include "src/sync/mutex.h"

namespace skern {

struct Process {
  uint64_t pid = 0;
  std::string name;
  Cred cred;
};

// Owns Process records and hands out pids. Threads do not register here —
// the table is bookkeeping for tests and future scheduling work; the binding
// that matters is ProcessScope's thread-local credential install.
class ProcessTable {
 public:
  // Spawns a process record with the given identity. The returned pointer
  // stays valid for the table's lifetime.
  std::shared_ptr<Process> Spawn(const std::string& name, const Cred& cred);

  std::shared_ptr<Process> Find(uint64_t pid) const;
  size_t Count() const;

 private:
  mutable TrackedMutex mutex_{"core.proctable"};
  std::vector<std::shared_ptr<Process>> procs_ SKERN_GUARDED_BY(mutex_);
  uint64_t next_pid_ SKERN_GUARDED_BY(mutex_) = 1;
};

// Runs the enclosing scope with `process`'s credential on this thread.
class ProcessScope {
 public:
  explicit ProcessScope(const Process& process) : cred_scope_(process.cred) {}
  explicit ProcessScope(const Cred& cred) : cred_scope_(cred) {}

 private:
  ScopedCred cred_scope_;
};

}  // namespace skern

#endif  // SKERN_SRC_CORE_PROCESS_H_
