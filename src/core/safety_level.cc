#include "src/core/safety_level.h"

namespace skern {

const char* SafetyLevelName(SafetyLevel level) {
  switch (level) {
    case SafetyLevel::kUnsafe:
      return "unsafe";
    case SafetyLevel::kModular:
      return "modular";
    case SafetyLevel::kTypeSafe:
      return "type-safe";
    case SafetyLevel::kOwnershipSafe:
      return "ownership-safe";
    case SafetyLevel::kVerified:
      return "verified";
  }
  return "?";
}

const char* SafetyLevelDescription(SafetyLevel level) {
  switch (level) {
    case SafetyLevel::kUnsafe:
      return "no guarantees; shared structures, manual casts and locking";
    case SafetyLevel::kModular:
      return "callers use only the modular interface; implementations swappable";
    case SafetyLevel::kTypeSafe:
      return "no void*/error-pointer punning; typed results at the interface";
    case SafetyLevel::kOwnershipSafe:
      return "memory and thread safety via explicit ownership-sharing contracts";
    case SafetyLevel::kVerified:
      return "operations refinement-checked against an executable specification";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, SafetyLevel level) {
  return os << SafetyLevelName(level);
}

}  // namespace skern
