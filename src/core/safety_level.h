// The incremental-safety ladder (§3).
//
// Each module in skern sits on one rung. The ladder is cumulative: a rung
// guarantees everything below it. This enum is the backbone of the module
// registry, the Figure 1 landscape, and the fault-injection scoring.
#ifndef SKERN_SRC_CORE_SAFETY_LEVEL_H_
#define SKERN_SRC_CORE_SAFETY_LEVEL_H_

#include <cstdint>
#include <ostream>

namespace skern {

enum class SafetyLevel : uint8_t {
  // Step 0: the Linux baseline. Shared mutable structures, void* casts,
  // ERR_PTR punning, review-enforced locking.
  kUnsafe = 0,
  // Step 1: callers reach the module only through a modular interface;
  // implementations can be swapped without touching callers.
  kModular = 1,
  // Step 2: no void pointers, no error/pointer punning; typed results.
  kTypeSafe = 2,
  // Step 3: type safety plus the §4.3 ownership-sharing contracts.
  kOwnershipSafe = 3,
  // Step 4: ownership safety plus an executable specification every
  // operation is checked against (refinement), including crash behaviour.
  kVerified = 4,
};

inline constexpr int kSafetyLevelCount = 5;

const char* SafetyLevelName(SafetyLevel level);

// Short description of what the rung adds, for reports.
const char* SafetyLevelDescription(SafetyLevel level);

std::ostream& operator<<(std::ostream& os, SafetyLevel level);

}  // namespace skern

#endif  // SKERN_SRC_CORE_SAFETY_LEVEL_H_
