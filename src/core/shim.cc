#include "src/core/shim.h"

#include "src/base/panic.h"

namespace skern {
namespace {

std::atomic<ShimMode> g_shim_mode{ShimMode::kEnforcing};

}  // namespace

ShimStats& ShimStats::Get() {
  static ShimStats* stats = new ShimStats();
  return *stats;
}

void ShimStats::RecordViolation(const ShimViolation& v) {
  std::lock_guard<std::mutex> guard(mutex_);
  violations_.push_back(v);
}

uint64_t ShimStats::violation_count() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return violations_.size();
}

std::vector<ShimViolation> ShimStats::Violations() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return violations_;
}

void ShimStats::ResetForTesting() {
  validations_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> guard(mutex_);
  violations_.clear();
}

ShimMode GetShimMode() { return g_shim_mode.load(std::memory_order_relaxed); }

void SetShimMode(ShimMode mode) { g_shim_mode.store(mode, std::memory_order_relaxed); }

ScopedShimMode::ScopedShimMode(ShimMode mode) : previous_(GetShimMode()) { SetShimMode(mode); }

ScopedShimMode::~ScopedShimMode() { SetShimMode(previous_); }

void Shim::Check(bool holds, const char* axiom, const std::string& detail) const {
  ShimMode mode = GetShimMode();
  if (mode == ShimMode::kDisabled) {
    return;
  }
  ShimStats::Get().RecordValidation();
  if (holds) {
    return;
  }
  ShimStats::Get().RecordViolation(ShimViolation{name_, axiom, detail});
  if (mode == ShimMode::kEnforcing) {
    Panic("shim '" + name_ + "' axiom broken: " + axiom + (detail.empty() ? "" : ": " + detail));
  }
}

}  // namespace skern
