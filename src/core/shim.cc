#include "src/core/shim.h"

#include <atomic>

#include "src/base/panic.h"
#include "src/obs/trace.h"

namespace skern {
namespace {

std::atomic<ShimMode> g_shim_mode{ShimMode::kEnforcing};

}  // namespace

ShimStats::ShimStats()
    : validations_(obs::MetricsRegistry::Get().GetCounter("shim.validations")),
      violations_total_(obs::MetricsRegistry::Get().GetCounter("shim.violations")) {}

ShimStats& ShimStats::Get() {
  static ShimStats* stats = new ShimStats();
  return *stats;
}

void ShimStats::RecordViolation(const ShimViolation& v) {
  violations_total_.Inc();
  MutexGuard guard(mutex_);
  if (violations_.size() >= kMaxRecordedViolations) {
    violations_.pop_front();
    ++dropped_;
  }
  violations_.push_back(v);
}

std::vector<ShimViolation> ShimStats::Violations() const {
  MutexGuard guard(mutex_);
  return std::vector<ShimViolation>(violations_.begin(), violations_.end());
}

uint64_t ShimStats::violations_dropped() const {
  MutexGuard guard(mutex_);
  return dropped_;
}

void ShimStats::ResetForTesting() {
  validations_.ResetForTesting();
  violations_total_.ResetForTesting();
  MutexGuard guard(mutex_);
  violations_.clear();
  dropped_ = 0;
}

ShimMode GetShimMode() { return g_shim_mode.load(std::memory_order_relaxed); }

void SetShimMode(ShimMode mode) { g_shim_mode.store(mode, std::memory_order_relaxed); }

ScopedShimMode::ScopedShimMode(ShimMode mode) : previous_(GetShimMode()) { SetShimMode(mode); }

ScopedShimMode::~ScopedShimMode() { SetShimMode(previous_); }

void Shim::Check(bool holds, const char* axiom, const std::string& detail) const {
  ShimMode mode = GetShimMode();
  if (mode == ShimMode::kDisabled) {
    return;
  }
  ShimStats::Get().RecordValidation();
  if (holds) {
    return;
  }
  SKERN_TRACE("shim", "violation");
  ShimStats::Get().RecordViolation(ShimViolation{name_, axiom, detail});
  if (mode == ShimMode::kEnforcing) {
    Panic("shim '" + name_ + "' axiom broken: " + axiom + (detail.empty() ? "" : ": " + detail));
  }
}

}  // namespace skern
