// Axiomatic shims (§4.4).
//
// "The boundary [between verified and unverified components] must provide
// assumptions (axioms) about the behavior of the unverified module... A shim
// layer is then needed to bridge the communication gap between the verified
// modules and unverified components."
//
// A Shim names a boundary (e.g. "specfs->block") and validates its axioms
// dynamically on every crossing: each axiom is a named predicate evaluated by
// the wrapper that owns the shim (see block/checked_block_device.h for the
// block-layer axiom set). In enforcing mode a broken axiom panics — the
// verified side's proofs are void if the model is wrong, so continuing would
// be unsound. bench/shim_overhead measures the validation cost against the
// disabled configuration.
#ifndef SKERN_SRC_CORE_SHIM_H_
#define SKERN_SRC_CORE_SHIM_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sync/mutex.h"

namespace skern {

struct ShimViolation {
  std::string shim;
  std::string axiom;
  std::string detail;
};

// Process-wide shim accounting. Counters live in the metrics registry
// ("shim.validations" / "shim.violations"), so /metrics reports them too.
// The recorded violation details are capped at kMaxRecordedViolations —
// recording mode under sustained violations keeps only the most recent
// window plus a count of how many were dropped.
class ShimStats {
 public:
  // Most recent violation records retained (counters are never capped).
  static constexpr size_t kMaxRecordedViolations = 64;

  static ShimStats& Get();

  void RecordValidation() { validations_.Inc(); }
  void RecordViolation(const ShimViolation& v);

  uint64_t validations() const { return validations_.Value(); }
  uint64_t violation_count() const { return violations_total_.Value(); }
  // The retained window, oldest first (at most kMaxRecordedViolations).
  std::vector<ShimViolation> Violations() const;
  // Violations whose details were discarded to honor the cap.
  uint64_t violations_dropped() const;

  void ResetForTesting();

 private:
  ShimStats();

  obs::Counter& validations_;
  obs::Counter& violations_total_;
  mutable TrackedMutex mutex_{"core.shim_stats"};
  std::deque<ShimViolation> violations_ SKERN_GUARDED_BY(mutex_);
  uint64_t dropped_ SKERN_GUARDED_BY(mutex_) = 0;
};

enum class ShimMode : uint8_t {
  kEnforcing = 0,  // broken axiom panics
  kRecording = 1,  // broken axiom recorded, execution continues
  kDisabled = 2,   // axioms are not evaluated (release configuration)
};

ShimMode GetShimMode();
void SetShimMode(ShimMode mode);

class ScopedShimMode {
 public:
  explicit ScopedShimMode(ShimMode mode);
  ~ScopedShimMode();
  ScopedShimMode(const ScopedShimMode&) = delete;
  ScopedShimMode& operator=(const ScopedShimMode&) = delete;

 private:
  ShimMode previous_;
};

// One named verified/unverified boundary. Wrappers call Check() per axiom
// per crossing.
class Shim {
 public:
  explicit Shim(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // True if axioms should be evaluated at all (callers can skip building the
  // predicate arguments when disabled).
  static bool Active() { return GetShimMode() != ShimMode::kDisabled; }

  // Validates one axiom instance. `holds` is the evaluated predicate.
  void Check(bool holds, const char* axiom, const std::string& detail = "") const;

 private:
  std::string name_;
};

}  // namespace skern

#endif  // SKERN_SRC_CORE_SHIM_H_
