// Axiomatic shims (§4.4).
//
// "The boundary [between verified and unverified components] must provide
// assumptions (axioms) about the behavior of the unverified module... A shim
// layer is then needed to bridge the communication gap between the verified
// modules and unverified components."
//
// A Shim names a boundary (e.g. "specfs->block") and validates its axioms
// dynamically on every crossing: each axiom is a named predicate evaluated by
// the wrapper that owns the shim (see block/checked_block_device.h for the
// block-layer axiom set). In enforcing mode a broken axiom panics — the
// verified side's proofs are void if the model is wrong, so continuing would
// be unsound. bench/shim_overhead measures the validation cost against the
// disabled configuration.
#ifndef SKERN_SRC_CORE_SHIM_H_
#define SKERN_SRC_CORE_SHIM_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace skern {

struct ShimViolation {
  std::string shim;
  std::string axiom;
  std::string detail;
};

// Process-wide shim accounting.
class ShimStats {
 public:
  static ShimStats& Get();

  void RecordValidation() { validations_.fetch_add(1, std::memory_order_relaxed); }
  void RecordViolation(const ShimViolation& v);

  uint64_t validations() const { return validations_.load(std::memory_order_relaxed); }
  uint64_t violation_count() const;
  std::vector<ShimViolation> Violations() const;

  void ResetForTesting();

 private:
  ShimStats() = default;

  std::atomic<uint64_t> validations_{0};
  mutable std::mutex mutex_;
  std::vector<ShimViolation> violations_;
};

enum class ShimMode : uint8_t {
  kEnforcing = 0,  // broken axiom panics
  kRecording = 1,  // broken axiom recorded, execution continues
  kDisabled = 2,   // axioms are not evaluated (release configuration)
};

ShimMode GetShimMode();
void SetShimMode(ShimMode mode);

class ScopedShimMode {
 public:
  explicit ScopedShimMode(ShimMode mode);
  ~ScopedShimMode();
  ScopedShimMode(const ScopedShimMode&) = delete;
  ScopedShimMode& operator=(const ScopedShimMode&) = delete;

 private:
  ShimMode previous_;
};

// One named verified/unverified boundary. Wrappers call Check() per axiom
// per crossing.
class Shim {
 public:
  explicit Shim(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // True if axioms should be evaluated at all (callers can skip building the
  // predicate arguments when disabled).
  static bool Active() { return GetShimMode() != ShimMode::kDisabled; }

  // Validates one axiom instance. `holds` is the evaluated predicate.
  void Check(bool holds, const char* axiom, const std::string& detail = "") const;

 private:
  std::string name_;
};

}  // namespace skern

#endif  // SKERN_SRC_CORE_SHIM_H_
