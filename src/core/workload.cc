#include "src/core/workload.h"

#include <algorithm>

namespace skern {

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kFileserver:
      return "fileserver";
    case WorkloadKind::kVarmail:
      return "varmail";
    case WorkloadKind::kWebserver:
      return "webserver";
    case WorkloadKind::kMetadata:
      return "metadata";
  }
  return "?";
}

WorkloadDriver::WorkloadDriver(FileSystem& fs, const WorkloadConfig& config)
    : fs_(fs), config_(config), rng_(config.seed) {}

std::string WorkloadDriver::FilePath(int index) const {
  return "/wl/f" + std::to_string(index);
}

int WorkloadDriver::PickFile() {
  if (config_.kind == WorkloadKind::kWebserver) {
    // Popularity-skewed reads: a few hot files take most of the traffic.
    return static_cast<int>(
        rng_.NextZipf(static_cast<uint64_t>(config_.file_population), config_.zipf_skew));
  }
  return static_cast<int>(rng_.NextBelow(static_cast<uint64_t>(config_.file_population)));
}

uint64_t WorkloadDriver::PickSize() {
  double draw = rng_.NextExponential(1.0 / config_.mean_file_size);
  uint64_t size = static_cast<uint64_t>(draw);
  return std::clamp<uint64_t>(size, 64, 256 * 1024);
}

Status WorkloadDriver::Setup() {
  SKERN_RETURN_IF_ERROR(fs_.Mkdir("/wl"));
  for (int i = 0; i < config_.file_population; ++i) {
    SKERN_RETURN_IF_ERROR(fs_.Create(FilePath(i)));
    Bytes content = rng_.NextBytes(PickSize());
    SKERN_RETURN_IF_ERROR(fs_.Write(FilePath(i), 0, ByteView(content)));
    result_.bytes_written += content.size();
  }
  return fs_.Sync();
}

void WorkloadDriver::Step() {
  switch (config_.kind) {
    case WorkloadKind::kFileserver:
      StepFileserver();
      break;
    case WorkloadKind::kVarmail:
      StepVarmail();
      break;
    case WorkloadKind::kWebserver:
      StepWebserver();
      break;
    case WorkloadKind::kMetadata:
      StepMetadata();
      break;
  }
  ++result_.ops;
}

const WorkloadResult& WorkloadDriver::Run(int ops) {
  for (int i = 0; i < ops; ++i) {
    Step();
  }
  return result_;
}

void WorkloadDriver::StepFileserver() {
  int file = PickFile();
  switch (rng_.NextBelow(5)) {
    case 0: {  // whole-file rewrite (delete + create + write)
      (void)fs_.Unlink(FilePath(file));
      if (!fs_.Create(FilePath(file)).ok()) {
        ++result_.errors;
        return;
      }
      Bytes content = rng_.NextBytes(PickSize());
      if (fs_.Write(FilePath(file), 0, ByteView(content)).ok()) {
        result_.bytes_written += content.size();
      }
      break;
    }
    case 1: {  // append
      auto attr = fs_.Stat(FilePath(file));
      if (!attr.ok()) {
        return;
      }
      Bytes chunk = rng_.NextBytes(1024 + rng_.NextBelow(4096));
      if (fs_.Write(FilePath(file), attr->size, ByteView(chunk)).ok()) {
        result_.bytes_written += chunk.size();
      } else {
        // Out of space: trim the file back (expected under churn).
        (void)fs_.Truncate(FilePath(file), 0);
      }
      break;
    }
    case 2:
    case 3: {  // whole-file read
      auto attr = fs_.Stat(FilePath(file));
      if (!attr.ok()) {
        return;
      }
      auto content = fs_.Read(FilePath(file), 0, attr->size);
      if (content.ok()) {
        result_.bytes_read += content->size();
      }
      break;
    }
    case 4: {  // stat
      (void)fs_.Stat(FilePath(file));
      break;
    }
  }
}

void WorkloadDriver::StepVarmail() {
  int file = PickFile();
  switch (rng_.NextBelow(4)) {
    case 0: {  // deliver: create-or-append a small message, then fsync
      std::string path = FilePath(file);
      (void)fs_.Create(path);  // EEXIST is fine
      auto attr = fs_.Stat(path);
      uint64_t offset = attr.ok() ? attr->size : 0;
      Bytes message = rng_.NextBytes(256 + rng_.NextBelow(1024));
      if (fs_.Write(path, offset, ByteView(message)).ok()) {
        result_.bytes_written += message.size();
        if (fs_.Fsync(path).ok()) {
          ++result_.fsyncs;
        }
      } else {
        (void)fs_.Truncate(path, 0);
      }
      break;
    }
    case 1: {  // read the mailbox
      auto attr = fs_.Stat(FilePath(file));
      if (attr.ok()) {
        auto content = fs_.Read(FilePath(file), 0, attr->size);
        if (content.ok()) {
          result_.bytes_read += content->size();
        }
      }
      break;
    }
    case 2: {  // expunge
      (void)fs_.Unlink(FilePath(file));
      (void)fs_.Create(FilePath(file));
      break;
    }
    case 3: {  // fsync an existing mailbox
      if (fs_.Fsync(FilePath(file)).ok()) {
        ++result_.fsyncs;
      }
      break;
    }
  }
}

void WorkloadDriver::StepWebserver() {
  // 95% reads of popularity-skewed files; 5% log append.
  if (rng_.NextBool(0.95)) {
    int file = PickFile();
    auto attr = fs_.Stat(FilePath(file));
    if (attr.ok()) {
      auto content = fs_.Read(FilePath(file), 0, attr->size);
      if (content.ok()) {
        result_.bytes_read += content->size();
      }
    }
  } else {
    (void)fs_.Create("/wl/access.log");
    auto attr = fs_.Stat("/wl/access.log");
    uint64_t offset = attr.ok() ? attr->size : 0;
    if (offset > 512 * 1024) {
      (void)fs_.Truncate("/wl/access.log", 0);  // rotate
      offset = 0;
    }
    Bytes line = rng_.NextBytes(128);
    if (fs_.Write("/wl/access.log", offset, ByteView(line)).ok()) {
      result_.bytes_written += line.size();
    }
  }
}

void WorkloadDriver::StepMetadata() {
  int file = PickFile();
  switch (rng_.NextBelow(4)) {
    case 0:
      (void)fs_.Create("/wl/meta" + std::to_string(rename_counter_));
      break;
    case 1: {
      std::string from = "/wl/meta" + std::to_string(rename_counter_);
      ++rename_counter_;
      std::string to = "/wl/meta" + std::to_string(rename_counter_);
      (void)fs_.Rename(from, to);
      break;
    }
    case 2:
      (void)fs_.Stat(FilePath(file));
      (void)fs_.Readdir("/wl");
      break;
    case 3:
      (void)fs_.Unlink("/wl/meta" + std::to_string(rename_counter_));
      break;
  }
}

}  // namespace skern
