// Macro-workload personalities, filebench-style.
//
// Bento (the paper's closest existing system) evaluated its Rust file
// systems with filebench-like personalities; these are skern's equivalents,
// driving any FileSystem through the modular interface:
//   * kFileserver — create/write/read/append/delete over a directory tree;
//   * kVarmail    — mail-spool pattern: small files, fsync-heavy;
//   * kWebserver  — read-mostly with a Zipf-skewed file popularity;
//   * kMetadata   — create/rename/stat/unlink churn, no data.
// Deterministic per seed; reports ops and bytes moved for throughput math.
#ifndef SKERN_SRC_CORE_WORKLOAD_H_
#define SKERN_SRC_CORE_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "src/base/rng.h"
#include "src/vfs/filesystem.h"

namespace skern {

enum class WorkloadKind : uint8_t {
  kFileserver = 0,
  kVarmail,
  kWebserver,
  kMetadata,
};

const char* WorkloadKindName(WorkloadKind kind);

struct WorkloadConfig {
  WorkloadKind kind = WorkloadKind::kFileserver;
  uint64_t seed = 1;
  int file_population = 32;   // distinct files the workload cycles over
  int mean_file_size = 8192;  // bytes (exponential-ish)
  double zipf_skew = 1.1;     // webserver popularity skew
};

struct WorkloadResult {
  uint64_t ops = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t fsyncs = 0;
  uint64_t errors = 0;  // unexpected failures (ENOSPC et al. are expected=skipped)
};

// A resumable workload driver: Setup() builds the initial tree, then each
// Step() issues one personality-appropriate operation.
class WorkloadDriver {
 public:
  WorkloadDriver(FileSystem& fs, const WorkloadConfig& config);

  // Creates the working directory and initial file population.
  Status Setup();

  // Issues one operation; cheap enough to sit inside a benchmark loop.
  void Step();

  // Runs `ops` steps (convenience for tests/examples).
  const WorkloadResult& Run(int ops);

  const WorkloadResult& result() const { return result_; }

 private:
  std::string FilePath(int index) const;
  int PickFile();         // personality-dependent popularity
  uint64_t PickSize();    // payload size draw

  void StepFileserver();
  void StepVarmail();
  void StepWebserver();
  void StepMetadata();

  FileSystem& fs_;
  WorkloadConfig config_;
  Rng rng_;
  WorkloadResult result_;
  int rename_counter_ = 0;
};

}  // namespace skern

#endif  // SKERN_SRC_CORE_WORKLOAD_H_
