#include "src/cve/accessctl.h"

namespace skern {

const char* AccessVariantName(AccessVariant v) {
  switch (v) {
    case AccessVariant::kFixed:
      return "fixed";
    case AccessVariant::kMissingCheck:
      return "missing-check";
    case AccessVariant::kWeakCheck:
      return "weak-check";
  }
  return "?";
}

void SettingsStore::Put(int index, int value) {
  slots_[static_cast<size_t>(index) % slots_.size()] = value;
}

int SettingsStore::Fetch(int index) const {
  return slots_[static_cast<size_t>(index) % slots_.size()];
}

Status SettingsDevice::Write(AccessVariant variant, int index, int value) {
  switch (variant) {
    case AccessVariant::kFixed:
      return WriteFixed(index, value);
    case AccessVariant::kMissingCheck:
      return WriteMissingCheck(index, value);
    case AccessVariant::kWeakCheck:
      return WriteWeakCheck(index, value);
  }
  return Status::Error(Errno::kEINVAL);
}

Result<int> SettingsDevice::Read(int index) const {
  SKERN_RETURN_IF_ERROR(
      CheckPermission(CurrentCred(), store_.mode(), store_.uid(), store_.gid(), kWantRead));
  return store_.Fetch(index);
}

// The correct shape: a settings write is a read-modify-write of device state,
// so the governing mask is read|write.
Status SettingsDevice::WriteFixed(int index, int value) {
  SKERN_RETURN_IF_ERROR(CheckPermission(CurrentCred(), store_.mode(), store_.uid(),
                                        store_.gid(), kWantRead | kWantWrite));
  store_.Put(index, value);
  return Status::Ok();
}

// CVE shape 1 — missing check: dispatches straight to the accessor. When this
// body carries SKERN_ENTRY (testdata/cve_accessctl.cc), A001 flags the
// store_.Put line.
Status SettingsDevice::WriteMissingCheck(int index, int value) {
  store_.Put(index, value);
  return Status::Ok();
}

// CVE shape 2 — weaker check: validates only read access before a mutation.
// When annotated, A002 flags this site because {read} is a strict subset of
// WriteFixed's {read|write} for the same accessor.
Status SettingsDevice::WriteWeakCheck(int index, int value) {
  SKERN_RETURN_IF_ERROR(
      CheckPermission(CurrentCred(), store_.mode(), store_.uid(), store_.gid(), kWantRead));
  store_.Put(index, value);
  return Status::Ok();
}

}  // namespace skern
