// Executable access-control CVE exhibit: the two bug shapes the paper's §2
// study files under "permission check errors", reproduced as running code
// against the real Cred/CheckPermission machinery.
//
// The exhibit is a tiny ioctl-style settings device. Its backing store is an
// SKERN_PROTECTED accessor; three write paths reach it:
//
//   * WriteFixed       — SKERN_ENTRY; checks read|write before mutating.
//                        The correct shape; the A001/A002 analysis passes it.
//   * WriteMissingCheck — mutates with NO permission check (the
//                        CVE-2016-10044 shape: an alternate entry point skips
//                        the DAC check the primary path performs).
//   * WriteWeakCheck   — checks only kWantRead before a mutation (the
//                        weaker-check shape: a later path validates a strict
//                        subset of what the original path validates).
//
// The vulnerable pair is deliberately NOT annotated SKERN_ENTRY here:
// annotating them flips the tree-wide lint red, which is exactly what
// tools/safety_lint/testdata/cve_accessctl.cc demonstrates — that fixture is
// a literal annotated copy of these bodies, and access_test asserts A001 and
// A002 each fire on it. tests/cve_test.cc proves the same pair dynamically:
// an unprivileged credential is denied by the fixed path (EACCES) and slips
// through both vulnerable paths.
#ifndef SKERN_SRC_CVE_ACCESSCTL_H_
#define SKERN_SRC_CVE_ACCESSCTL_H_

#include <array>
#include <cstdint>

#include "src/base/cred.h"
#include "src/base/result.h"
#include "src/base/status.h"
#include "src/sync/annotations.h"

namespace skern {

// Which write path a caller exercises; tests iterate over all three.
enum class AccessVariant : uint8_t {
  kFixed = 0,
  kMissingCheck = 1,
  kWeakCheck = 2,
};

const char* AccessVariantName(AccessVariant v);

// The permission-bearing backing store: a handful of integer settings plus
// the owning uid/gid and a POSIX mode triad, like a character device inode.
class SettingsStore {
 public:
  SettingsStore(uint32_t mode, uint32_t uid, uint32_t gid)
      : mode_(mode), uid_(uid), gid_(gid) {}

  uint32_t mode() const { return mode_; }
  uint32_t uid() const { return uid_; }
  uint32_t gid() const { return gid_; }

  SKERN_PROTECTED void Put(int index, int value);
  SKERN_PROTECTED int Fetch(int index) const;

  static constexpr int kSlots = 8;

 private:
  uint32_t mode_;
  uint32_t uid_;
  uint32_t gid_;
  std::array<int, kSlots> slots_{};
};

// The syscall-plane front end. Reads always check; writes dispatch to one of
// the three shapes above.
class SettingsDevice {
 public:
  // Defaults to a root-owned 0644 device: everyone may read, only the owner
  // (or kCapDacOverride) may write — the classic misconfiguration target.
  explicit SettingsDevice(uint32_t mode = 0644, uint32_t uid = 0, uint32_t gid = 0)
      : store_(mode, uid, gid) {}

  Status Write(AccessVariant variant, int index, int value);
  SKERN_ENTRY Result<int> Read(int index) const;

 private:
  SKERN_ENTRY Status WriteFixed(int index, int value);
  Status WriteMissingCheck(int index, int value);
  Status WriteWeakCheck(int index, int value);

  SettingsStore store_;
};

}  // namespace skern

#endif  // SKERN_SRC_CVE_ACCESSCTL_H_
