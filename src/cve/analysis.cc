#include "src/cve/analysis.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace skern {

std::map<uint16_t, uint64_t> NewCvesPerYear(const CveCorpus& corpus) {
  std::map<uint16_t, uint64_t> per_year;
  for (uint16_t y = corpus.params().first_year; y <= corpus.params().last_year; ++y) {
    per_year[y] = 0;
  }
  for (const auto& record : corpus.records()) {
    ++per_year[record.year];
  }
  return per_year;
}

std::string AsciiBar(double value, double max_value, int width) {
  int filled = max_value <= 0 ? 0
                              : static_cast<int>(value / max_value * width + 0.5);
  filled = std::clamp(filled, 0, width);
  return std::string(filled, '#') + std::string(width - filled, ' ');
}

std::string RenderCvesPerYear(const std::map<uint16_t, uint64_t>& per_year) {
  uint64_t max_count = 0;
  for (const auto& [year, count] : per_year) {
    max_count = std::max(max_count, count);
  }
  std::ostringstream os;
  os << "Figure 2a: new Linux CVEs reported per year (synthetic corpus)\n";
  for (const auto& [year, count] : per_year) {
    os << year << " |" << AsciiBar(static_cast<double>(count),
                                   static_cast<double>(max_count))
       << "| " << count << "\n";
  }
  return os.str();
}

std::vector<LatencyCdfPoint> ReportLatencyCdf(const CveCorpus& corpus,
                                              const std::string& component) {
  std::vector<double> latencies;
  for (const auto& record : corpus.records()) {
    if (record.component == component) {
      latencies.push_back(record.years_after_release);
    }
  }
  std::sort(latencies.begin(), latencies.end());
  std::vector<LatencyCdfPoint> cdf;
  cdf.reserve(latencies.size());
  for (size_t i = 0; i < latencies.size(); ++i) {
    cdf.push_back({latencies[i], static_cast<double>(i + 1) / latencies.size()});
  }
  return cdf;
}

double MedianReportLatency(const CveCorpus& corpus, const std::string& component) {
  auto cdf = ReportLatencyCdf(corpus, component);
  if (cdf.empty()) {
    return 0.0;
  }
  for (const auto& point : cdf) {
    if (point.fraction >= 0.5) {
      return point.years_after_release;
    }
  }
  return cdf.back().years_after_release;
}

std::string RenderLatencyCdf(const std::vector<LatencyCdfPoint>& cdf,
                             const std::string& component) {
  std::ostringstream os;
  os << "Figure 2b: CDF of when " << component
     << " CVEs were reported after its initial release\n";
  if (cdf.empty()) {
    return os.str() + "(no records)\n";
  }
  double max_years = cdf.back().years_after_release;
  // Sample the CDF at yearly steps.
  for (int year = 0; year <= static_cast<int>(max_years) + 1; ++year) {
    double fraction = 0.0;
    for (const auto& point : cdf) {
      if (point.years_after_release <= year) {
        fraction = point.fraction;
      } else {
        break;
      }
    }
    os << std::setw(3) << year << "y |" << AsciiBar(fraction, 1.0) << "| "
       << std::fixed << std::setprecision(2) << fraction << "\n";
  }
  return os.str();
}

std::string RenderBugSeries(const std::vector<BugSeriesProfile>& profiles,
                            uint16_t last_year, uint64_t seed) {
  std::ostringstream os;
  os << "Figure 2c: bug patches per LoC per year since each fs's release\n";
  os << std::left << std::setw(12) << "age";
  for (const auto& profile : profiles) {
    os << std::right << std::setw(12) << profile.fs;
  }
  os << "\n";
  std::vector<std::vector<BugSeriesPoint>> all;
  size_t longest = 0;
  for (const auto& profile : profiles) {
    all.push_back(GenerateBugSeries(profile, last_year, seed));
    longest = std::max(longest, all.back().size());
  }
  for (size_t age = 0; age < longest; ++age) {
    os << std::left << std::setw(12) << (std::to_string(age) + "y");
    for (const auto& series : all) {
      if (age < series.size()) {
        os << std::right << std::setw(11) << std::fixed << std::setprecision(2)
           << series[age].bugs_per_loc() * 100.0 << "%";
      } else {
        os << std::right << std::setw(12) << "-";
      }
    }
    os << "\n";
  }
  return os.str();
}

CategorizationTable Categorize(const CveCorpus& corpus, uint16_t since_year) {
  CategorizationTable table;
  std::array<uint64_t, kCweClassCount> per_class{};
  for (const auto& record : corpus.records()) {
    if (record.year < since_year) {
      continue;
    }
    ++table.total;
    ++per_class[static_cast<size_t>(record.cwe)];
    ++table.by_preventability[static_cast<size_t>(PreventabilityOf(record.cwe))];
  }
  for (int c = 0; c < kCweClassCount; ++c) {
    if (per_class[c] > 0) {
      table.rows.push_back(CategorizationRow{
          static_cast<CweClass>(c), per_class[c],
          table.total == 0 ? 0.0
                           : static_cast<double>(per_class[c]) /
                                 static_cast<double>(table.total)});
    }
  }
  std::sort(table.rows.begin(), table.rows.end(),
            [](const CategorizationRow& a, const CategorizationRow& b) {
              return a.count > b.count;
            });
  return table;
}

std::string RenderCategorization(const CategorizationTable& table) {
  std::ostringstream os;
  os << "CWE categorization of " << table.total << " CVEs (paper: 1475 since 2010)\n\n";
  os << std::left << std::setw(26) << "prevented by" << std::right << std::setw(8) << "CVEs"
     << std::setw(10) << "share" << "   (paper)\n";
  const char* paper_share[3] = {"~42%", "+35%", "23%"};
  for (int p = 0; p < 3; ++p) {
    auto prev = static_cast<Preventability>(p);
    os << std::left << std::setw(26) << PreventabilityName(prev) << std::right << std::setw(8)
       << table.by_preventability[p] << std::setw(9) << std::fixed << std::setprecision(1)
       << table.Fraction(prev) * 100.0 << "%"
       << "   " << paper_share[p] << "\n";
  }
  os << "\nper weakness class:\n";
  for (const auto& row : table.rows) {
    std::ostringstream label;
    label << CweClassName(row.cwe) << " (CWE-" << RepresentativeCweId(row.cwe) << ")";
    os << "  " << std::left << std::setw(32) << label.str() << std::right << std::setw(6)
       << row.count << std::setw(7) << std::fixed << std::setprecision(1)
       << row.fraction * 100.0 << "%"
       << "  [" << PreventabilityName(PreventabilityOf(row.cwe)) << "]\n";
  }
  return os.str();
}

}  // namespace skern
