// Analyses over the CVE corpus: everything Figure 2 and the §2 table report.
#ifndef SKERN_SRC_CVE_ANALYSIS_H_
#define SKERN_SRC_CVE_ANALYSIS_H_

#include <array>
#include <map>
#include <string>
#include <vector>

#include "src/cve/corpus.h"

namespace skern {

// --- Figure 2a: new CVEs per year ---
std::map<uint16_t, uint64_t> NewCvesPerYear(const CveCorpus& corpus);
std::string RenderCvesPerYear(const std::map<uint16_t, uint64_t>& per_year);

// --- Figure 2b: report-latency CDF for one component ---
struct LatencyCdfPoint {
  double years_after_release;
  double fraction;  // of the component's CVEs reported by this age
};
std::vector<LatencyCdfPoint> ReportLatencyCdf(const CveCorpus& corpus,
                                              const std::string& component);
// Age (years) by which half of the component's CVEs had been reported.
double MedianReportLatency(const CveCorpus& corpus, const std::string& component);
std::string RenderLatencyCdf(const std::vector<LatencyCdfPoint>& cdf,
                             const std::string& component);

// --- Figure 2c: bugs per LoC per year ---
std::string RenderBugSeries(const std::vector<BugSeriesProfile>& profiles,
                            uint16_t last_year, uint64_t seed);

// --- §2 table: CWE categorization since 2010 ---
struct CategorizationRow {
  CweClass cwe;
  uint64_t count;
  double fraction;  // of the examined corpus
};

struct CategorizationTable {
  uint64_t total = 0;  // CVEs examined (year >= since)
  std::array<uint64_t, 3> by_preventability{};  // indexed by Preventability
  std::vector<CategorizationRow> rows;          // per-class, descending count

  double Fraction(Preventability p) const {
    return total == 0 ? 0.0
                      : static_cast<double>(by_preventability[static_cast<size_t>(p)]) /
                            static_cast<double>(total);
  }
};

CategorizationTable Categorize(const CveCorpus& corpus, uint16_t since_year);
std::string RenderCategorization(const CategorizationTable& table);

// Simple fixed-width horizontal bar for terminal "figures".
std::string AsciiBar(double value, double max_value, int width = 50);

}  // namespace skern

#endif  // SKERN_SRC_CVE_ANALYSIS_H_
