#include "src/cve/corpus.h"

#include <cmath>

#include "src/base/panic.h"

namespace skern {

CorpusParams DefaultCorpusParams() {
  CorpusParams params;
  params.first_year = 1999;
  params.last_year = 2020;
  // Per-year expected new Linux-kernel CVEs. Shape follows the public NVD
  // series Figure 2a plots: tens per year through the 2000s, low hundreds in
  // the 2010s, the 2017 spike (CVE assignment push), then 100-300.
  // The 2010..2020 means sum to 1475 — the paper's corpus size.
  params.cves_per_year = {
      // 1999..2009
      15, 20, 25, 20, 30, 45, 80, 90, 95, 85, 100,
      // 2010..2020 (sum = 1475)
      105, 83, 100, 120, 110, 77, 160, 295, 140, 170, 115,
  };
  SKERN_CHECK(params.cves_per_year.size() ==
              static_cast<size_t>(params.last_year - params.first_year + 1));

  // Subsystem mix, conditioned on the subsystem existing that year. Weights
  // reflect the Chou/Palix finding that drivers dominate, with the fs share
  // matching the paper's interest in ext4/btrfs/overlayfs.
  params.components = {
      {"drivers", 1991, 0.30}, {"net", 1991, 0.18},      {"mm", 1991, 0.08},
      {"fs-other", 1991, 0.10}, {"core", 1991, 0.12},    {"kvm", 2007, 0.05},
      {"bluetooth", 2001, 0.04}, {"ext4", 2008, 0.045},  {"btrfs", 2009, 0.035},
      {"overlayfs", 2014, 0.01}, {"vfs", 1991, 0.04},
  };

  // CWE class probabilities. The three groups sum to 0.42 / 0.35 / 0.23 —
  // the paper's categorization of its 1475 CVEs. Within-group weights follow
  // the usual kernel CWE frequency ordering (overflows > UAF > null > race).
  params.cwe_mix.assign(kCweClassCount, 0.0);
  auto set = [&params](CweClass cls, double p) {
    params.cwe_mix[static_cast<size_t>(cls)] = p;
  };
  // type+ownership: 0.42
  set(CweClass::kBufferOverflow, 0.14);
  set(CweClass::kUseAfterFree, 0.09);
  set(CweClass::kNullDereference, 0.07);
  set(CweClass::kDataRace, 0.05);
  set(CweClass::kTypeConfusion, 0.03);
  set(CweClass::kDoubleFree, 0.02);
  set(CweClass::kMemoryLeak, 0.015);
  set(CweClass::kUninitializedUse, 0.005);
  // functional: 0.35
  set(CweClass::kLogicError, 0.15);
  set(CweClass::kInputValidation, 0.12);
  set(CweClass::kStateMachine, 0.08);
  // other: 0.23
  set(CweClass::kPermissionCheck, 0.08);
  set(CweClass::kInfoExposure, 0.06);
  set(CweClass::kIntegerOverflow, 0.06);
  set(CweClass::kOther, 0.03);
  return params;
}

CveCorpus CveCorpus::Generate(const CorpusParams& params, uint64_t seed) {
  CveCorpus corpus(params);
  Rng rng(seed);
  uint32_t next_id = 1;

  // Cumulative CWE distribution for sampling.
  std::vector<double> cwe_cdf(params.cwe_mix.size());
  double acc = 0.0;
  for (size_t i = 0; i < params.cwe_mix.size(); ++i) {
    acc += params.cwe_mix[i];
    cwe_cdf[i] = acc;
  }
  SKERN_CHECK_MSG(std::abs(acc - 1.0) < 1e-9, "cwe_mix must sum to 1");

  for (uint16_t year = params.first_year; year <= params.last_year; ++year) {
    double mean = params.cves_per_year[year - params.first_year];
    uint64_t count = rng.NextPoisson(mean);
    for (uint64_t i = 0; i < count; ++i) {
      CveRecord record;
      record.id = next_id++;
      record.year = year;
      // Component: sample by weight among components that already exist.
      for (int attempt = 0; attempt < 100; ++attempt) {
        double u = rng.NextDouble();
        double cum = 0.0;
        const ComponentProfile* chosen = &params.components.back();
        for (const auto& comp : params.components) {
          cum += comp.weight;
          if (u < cum) {
            chosen = &comp;
            break;
          }
        }
        if (chosen->release_year <= year) {
          record.component = chosen->name;
          record.years_after_release =
              (year - chosen->release_year) + rng.NextDouble();
          break;
        }
      }
      if (record.component.empty()) {
        record.component = "core";
        record.years_after_release = (year - 1991) + rng.NextDouble();
      }
      // CWE class.
      double u = rng.NextDouble();
      record.cwe = CweClass::kOther;
      for (size_t c = 0; c < cwe_cdf.size(); ++c) {
        if (u < cwe_cdf[c]) {
          record.cwe = static_cast<CweClass>(c);
          break;
        }
      }
      corpus.records_.push_back(std::move(record));
    }
  }
  return corpus;
}

std::vector<BugSeriesProfile> DefaultBugSeriesProfiles() {
  // Sizes and release years are the commonly cited figures; the rate curve
  // (early spike decaying to a ~0.5%/LoC/year plateau) is Figure 2c's
  // finding: "Even after 10 years, there are still new bugs (0.5% bugs per
  // line of code each year) in all three file systems."
  return {
      {"ext4", 2008, 25'000, 1'500, 0.012, 3.0, 0.005},
      {"btrfs", 2009, 45'000, 3'500, 0.015, 3.0, 0.005},
      {"overlayfs", 2014, 8'000, 800, 0.010, 3.0, 0.005},
  };
}

std::vector<BugSeriesPoint> GenerateBugSeries(const BugSeriesProfile& profile,
                                              uint16_t last_year, uint64_t seed) {
  Rng rng(seed ^ (profile.release_year * 2654435761ULL));
  std::vector<BugSeriesPoint> series;
  for (uint16_t year = profile.release_year; year <= last_year; ++year) {
    int age = year - profile.release_year;
    double loc = profile.initial_loc + profile.loc_growth_per_year * age;
    double rate = profile.spike * std::exp(-age / profile.decay_years) + profile.plateau;
    double expected = rate * loc;
    BugSeriesPoint point;
    point.age_years = age;
    point.loc = loc;
    point.bug_patches = static_cast<double>(rng.NextPoisson(expected));
    series.push_back(point);
  }
  return series;
}

}  // namespace skern
