// Synthetic Linux-CVE corpus, statistically calibrated to the published
// aggregates the paper reports.
//
// The real study ran over the NVD CVE database and kernel git history, which
// are unavailable offline; per the substitution rule the corpus generator
// reproduces their *distributions* — per-year intensity (Figure 2a's shape),
// component mix, CWE mix (the 42/35/23 split), and component release years
// (Figure 2b's latency CDF falls out of the flat discovery rate, which is
// the paper's actual finding) — so that the analysis pipeline downstream is
// the same code one would run on the real data.
//
// All calibration constants live in DefaultCorpusParams() with comments tying
// them to the paper's numbers. The generator is deterministic per seed; tests
// assert the aggregates hold for any seed.
#ifndef SKERN_SRC_CVE_CORPUS_H_
#define SKERN_SRC_CVE_CORPUS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/cve/cwe.h"

namespace skern {

struct CveRecord {
  uint32_t id = 0;           // synthetic "CVE-YYYY-NNNN" counter
  uint16_t year = 0;         // reporting year
  std::string component;     // kernel subsystem
  CweClass cwe = CweClass::kOther;
  double years_after_release = 0.0;  // of its component
};

struct ComponentProfile {
  std::string name;
  uint16_t release_year;  // first mainline release
  double weight;          // share of CVEs (conditioned on existing that year)
};

struct CorpusParams {
  uint16_t first_year = 1999;
  uint16_t last_year = 2020;
  // Expected new CVEs per year (Poisson means), indexed from first_year.
  std::vector<double> cves_per_year;
  std::vector<ComponentProfile> components;
  // Probability of each CweClass (indexed by enum value, sums to 1).
  std::vector<double> cwe_mix;
};

// Calibrated defaults; see the implementation for the provenance of every
// number.
CorpusParams DefaultCorpusParams();

class CveCorpus {
 public:
  static CveCorpus Generate(const CorpusParams& params, uint64_t seed);

  const std::vector<CveRecord>& records() const { return records_; }
  const CorpusParams& params() const { return params_; }

 private:
  explicit CveCorpus(CorpusParams params) : params_(std::move(params)) {}

  CorpusParams params_;
  std::vector<CveRecord> records_;
};

// --- per-filesystem bug-patch series for Figure 2c ---

struct BugSeriesProfile {
  std::string fs;
  uint16_t release_year;
  double initial_loc;
  double loc_growth_per_year;
  // bugs/LoC/year = spike * exp(-age / decay_years) + plateau.
  double spike;
  double decay_years;
  double plateau;
};

struct BugSeriesPoint {
  int age_years;       // years since the fs's first release
  double loc;          // lines of code that year
  double bug_patches;  // new bug patches that year
  double bugs_per_loc() const { return loc > 0 ? bug_patches / loc : 0.0; }
};

// Figure 2c's three file systems with commonly cited sizes and release years.
std::vector<BugSeriesProfile> DefaultBugSeriesProfiles();

// Samples a per-year bug-patch series for one fs up to `last_year`.
std::vector<BugSeriesPoint> GenerateBugSeries(const BugSeriesProfile& profile,
                                              uint16_t last_year, uint64_t seed);

}  // namespace skern

#endif  // SKERN_SRC_CVE_CORPUS_H_
