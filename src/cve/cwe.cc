#include "src/cve/cwe.h"

namespace skern {

const char* CweClassName(CweClass cls) {
  switch (cls) {
    case CweClass::kBufferOverflow:
      return "buffer-overflow";
    case CweClass::kUseAfterFree:
      return "use-after-free";
    case CweClass::kNullDereference:
      return "null-dereference";
    case CweClass::kDataRace:
      return "data-race";
    case CweClass::kTypeConfusion:
      return "type-confusion";
    case CweClass::kDoubleFree:
      return "double-free";
    case CweClass::kMemoryLeak:
      return "memory-leak";
    case CweClass::kUninitializedUse:
      return "uninitialized-use";
    case CweClass::kLogicError:
      return "logic-error";
    case CweClass::kInputValidation:
      return "input-validation";
    case CweClass::kStateMachine:
      return "state-machine";
    case CweClass::kPermissionCheck:
      return "permission-check";
    case CweClass::kInfoExposure:
      return "info-exposure";
    case CweClass::kIntegerOverflow:
      return "integer-overflow";
    case CweClass::kOther:
      return "other";
    case CweClass::kCount:
      break;
  }
  return "?";
}

int RepresentativeCweId(CweClass cls) {
  switch (cls) {
    case CweClass::kBufferOverflow:
      return 787;
    case CweClass::kUseAfterFree:
      return 416;
    case CweClass::kNullDereference:
      return 476;
    case CweClass::kDataRace:
      return 362;
    case CweClass::kTypeConfusion:
      return 843;
    case CweClass::kDoubleFree:
      return 415;
    case CweClass::kMemoryLeak:
      return 401;
    case CweClass::kUninitializedUse:
      return 908;
    case CweClass::kLogicError:
      return 691;
    case CweClass::kInputValidation:
      return 20;
    case CweClass::kStateMachine:
      return 662;
    case CweClass::kPermissionCheck:
      return 862;
    case CweClass::kInfoExposure:
      return 200;
    case CweClass::kIntegerOverflow:
      return 190;
    case CweClass::kOther:
      return 0;
    case CweClass::kCount:
      break;
  }
  return 0;
}

Preventability PreventabilityOf(CweClass cls) {
  switch (cls) {
    case CweClass::kBufferOverflow:
    case CweClass::kUseAfterFree:
    case CweClass::kNullDereference:
    case CweClass::kDataRace:
    case CweClass::kTypeConfusion:
    case CweClass::kDoubleFree:
    case CweClass::kMemoryLeak:
    case CweClass::kUninitializedUse:
      return Preventability::kTypeOwnership;
    case CweClass::kLogicError:
    case CweClass::kInputValidation:
    case CweClass::kStateMachine:
      return Preventability::kFunctional;
    case CweClass::kPermissionCheck:
    case CweClass::kInfoExposure:
    case CweClass::kIntegerOverflow:
    case CweClass::kOther:
    case CweClass::kCount:
      return Preventability::kOther;
  }
  return Preventability::kOther;
}

const char* PreventabilityName(Preventability p) {
  switch (p) {
    case Preventability::kTypeOwnership:
      return "type+ownership safety";
    case Preventability::kFunctional:
      return "functional correctness";
    case Preventability::kOther:
      return "other causes";
  }
  return "?";
}

}  // namespace skern
