// CWE weakness classes and their preventability mapping (§2).
//
// "Among the 1475 total CVEs we examined, roughly 42% CVEs could be prevented
// with compile-time type and ownership safety, and an additional 35% with
// functional correctness verification. The remaining 23% have a variety of
// causes: improper security designs ... numeric errors like integer overflow
// and underflow, and various other causes."
//
// The taxonomy here groups Common Weakness Enumeration ids into the classes
// that analysis uses, and maps each class to the roadmap rung that prevents
// it. The fault-injection experiment (E11) uses the same classes, closing
// the loop between the paper's measurement and its proposal.
#ifndef SKERN_SRC_CVE_CWE_H_
#define SKERN_SRC_CVE_CWE_H_

#include <cstdint>

namespace skern {

enum class CweClass : uint8_t {
  // --- preventable by type + ownership safety (step 2 + 3) ---
  kBufferOverflow = 0,  // CWE-119/125/787
  kUseAfterFree,        // CWE-416
  kNullDereference,     // CWE-476
  kDataRace,            // CWE-362
  kTypeConfusion,       // CWE-843
  kDoubleFree,          // CWE-415
  kMemoryLeak,          // CWE-401
  kUninitializedUse,    // CWE-908
  // --- additionally preventable by functional verification (step 4) ---
  kLogicError,       // CWE-691 and friends: wrong behaviour vs. intent
  kInputValidation,  // CWE-20: unvalidated input reaching internals
  kStateMachine,     // CWE-662/out-of-order state handling
  // --- outside both (the 23%) ---
  kPermissionCheck,   // CWE-862/863: improper authorization design
  kInfoExposure,      // CWE-200: overexposing kernel information
  kIntegerOverflow,   // CWE-190/191 numeric errors
  kOther,             // everything else
  kCount,             // sentinel
};

inline constexpr int kCweClassCount = static_cast<int>(CweClass::kCount);

enum class Preventability : uint8_t {
  kTypeOwnership = 0,  // stops at step 2/3
  kFunctional = 1,     // needs step 4
  kOther = 2,          // beyond the paper's scope
};

const char* CweClassName(CweClass cls);
// A representative CWE id for display ("CWE-416").
int RepresentativeCweId(CweClass cls);
Preventability PreventabilityOf(CweClass cls);
const char* PreventabilityName(Preventability p);

}  // namespace skern

#endif  // SKERN_SRC_CVE_CWE_H_
