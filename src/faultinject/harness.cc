#include "src/faultinject/harness.h"

#include <atomic>
#include <iomanip>
#include <memory>
#include <sstream>
#include <thread>

#include "src/base/panic.h"
#include "src/block/block_device.h"
#include "src/block/buffer_cache.h"
#include "src/fs/legacyfs/legacyfs.h"
#include "src/fs/safefs/safefs.h"
#include "src/fs/specfs/specfs.h"
#include "src/ownership/leak_detector.h"
#include "src/ownership/owned.h"
#include "src/spec/refinement.h"

namespace skern {
namespace {

constexpr uint64_t kDiskBlocks = 256;
constexpr uint64_t kInodes = 64;

bool IsSemantic(BugClass bug) {
  switch (bug) {
    case BugClass::kSemanticStat:
    case BugClass::kSemanticRename:
    case BugClass::kSemanticTruncate:
    case BugClass::kSemanticReaddir:
    case BugClass::kSemanticWrite:
      return true;
    default:
      return false;
  }
}

SafeFsSemanticFault SemanticFaultOf(BugClass bug) {
  switch (bug) {
    case BugClass::kSemanticStat:
      return SafeFsSemanticFault::kStatSizeOffByOne;
    case BugClass::kSemanticRename:
      return SafeFsSemanticFault::kRenameLeavesSource;
    case BugClass::kSemanticTruncate:
      return SafeFsSemanticFault::kTruncateSkipsZeroing;
    case BugClass::kSemanticReaddir:
      return SafeFsSemanticFault::kReaddirDropsLastEntry;
    case BugClass::kSemanticWrite:
      return SafeFsSemanticFault::kWriteIgnoresTailByte;
    default:
      return SafeFsSemanticFault::kNone;
  }
}

// Runs the workload that exercises every semantic-fault path.
void SemanticWorkload(FileSystem& fs) {
  (void)fs.Mkdir("/d");
  (void)fs.Create("/d/a");
  (void)fs.Create("/d/b");
  (void)fs.Write("/d/a", 0, BytesFromString("0123456789"));
  (void)fs.Stat("/d/a");
  (void)fs.Truncate("/d/a", 3);
  (void)fs.Truncate("/d/a", 10);
  (void)fs.Read("/d/a", 0, 16);
  (void)fs.Rename("/d/a", "/d/c");
  (void)fs.Readdir("/d");
  (void)fs.Stat("/d/c");
}

}  // namespace

const char* BugClassName(BugClass bug) {
  switch (bug) {
    case BugClass::kTypeConfusion:
      return "type confusion (write cookie)";
    case BugClass::kErrPtrMisuse:
      return "ERR_PTR misuse";
    case BugClass::kUseAfterFree:
      return "use after free";
    case BugClass::kDoubleFree:
      return "double free";
    case BugClass::kMemoryLeak:
      return "memory leak";
    case BugClass::kDataRace:
      return "data race (i_size)";
    case BugClass::kBufferOverflow:
      return "buffer overflow (dirent)";
    case BugClass::kIntegerUnderflow:
      return "integer underflow";
    case BugClass::kSemanticStat:
      return "semantic: wrong stat size";
    case BugClass::kSemanticRename:
      return "semantic: rename keeps source";
    case BugClass::kSemanticTruncate:
      return "semantic: stale truncate data";
    case BugClass::kSemanticReaddir:
      return "semantic: readdir drops entry";
    case BugClass::kSemanticWrite:
      return "semantic: write drops tail";
    case BugClass::kCount:
      break;
  }
  return "?";
}

CweClass CweOf(BugClass bug) {
  switch (bug) {
    case BugClass::kTypeConfusion:
      return CweClass::kTypeConfusion;
    case BugClass::kErrPtrMisuse:
      return CweClass::kNullDereference;
    case BugClass::kUseAfterFree:
      return CweClass::kUseAfterFree;
    case BugClass::kDoubleFree:
      return CweClass::kDoubleFree;
    case BugClass::kMemoryLeak:
      return CweClass::kMemoryLeak;
    case BugClass::kDataRace:
      return CweClass::kDataRace;
    case BugClass::kBufferOverflow:
      return CweClass::kBufferOverflow;
    case BugClass::kIntegerUnderflow:
      return CweClass::kIntegerOverflow;
    case BugClass::kSemanticStat:
    case BugClass::kSemanticTruncate:
    case BugClass::kSemanticWrite:
      return CweClass::kLogicError;
    case BugClass::kSemanticRename:
      return CweClass::kStateMachine;
    case BugClass::kSemanticReaddir:
      return CweClass::kInputValidation;
    case BugClass::kCount:
      break;
  }
  return CweClass::kOther;
}

const char* InjectionOutcomeName(InjectionOutcome outcome) {
  switch (outcome) {
    case InjectionOutcome::kSilent:
      return "SILENT";
    case InjectionOutcome::kDetected:
      return "DETECTED";
    case InjectionOutcome::kNotExpressible:
      return "PREVENTED";
    case InjectionOutcome::kNotRun:
      return "-";
  }
  return "?";
}

InjectionResult FaultInjectionHarness::RunUnsafe(BugClass bug) {
  InjectionResult result{bug, SafetyLevel::kUnsafe, InjectionOutcome::kSilent, ""};

  if (IsSemantic(bug)) {
    // Semantic bugs run on safefs without the spec layer: types and
    // ownership are happy; nothing notices.
    RamDisk disk(kDiskBlocks, seed_);
    auto fs = SafeFs::Format(disk, kInodes, 16);
    SKERN_CHECK(fs.ok());
    fs.value()->SetSemanticFault(SemanticFaultOf(bug));
    SemanticWorkload(*fs.value());
    result.note = "wrong behaviour executed; no mechanism below step 4 observes it";
    return result;
  }

  RamDisk disk(kDiskBlocks, seed_);
  BufferCache cache(disk, 128);
  FsGeometry geo = MakeGeometry(kDiskBlocks, kInodes, 0);
  auto fs = MakeLegacyFs(cache, &geo, /*format=*/true);
  LegacyFaultConfig* faults = LegacyFaultsOf(*fs);

  switch (bug) {
    case BugClass::kTypeConfusion: {
      (void)fs->Create("/f");
      faults->type_confuse_write_cookie = true;
      (void)fs->Write("/f", 0, BytesFromString("1234"));
      uint64_t size = fs->Stat("/f").ok() ? fs->Stat("/f")->size : 0;
      result.note = "i_size smashed to " + std::to_string(size) + " (expected 4)";
      break;
    }
    case BugClass::kErrPtrMisuse: {
      faults->errptr_missing_check = true;
      (void)fs->Rename("/ghost", "/dangling");
      result.note = "rename of missing file 'succeeded'; dangling dirent planted";
      break;
    }
    case BugClass::kUseAfterFree: {
      faults->use_after_free_node = true;
      (void)fs->Create("/f");
      (void)fs->Stat("/f");
      (void)fs->Unlink("/f");
      result.note = "freed node info consulted; another file's block freed";
      break;
    }
    case BugClass::kDoubleFree: {
      faults->double_free_block = true;
      (void)fs->Create("/victim");
      (void)fs->Write("/victim", 0, Bytes(kBlockSize, 0x11));
      (void)fs->Create("/f");
      (void)fs->Write("/f", 0, Bytes(kBlockSize, 0x22));
      (void)fs->Truncate("/f", 0);
      (void)fs->Truncate("/f", 0);
      result.note = "second free corrupted the neighbouring allocation bit";
      break;
    }
    case BugClass::kMemoryLeak: {
      faults->leak_node_on_unlink = true;
      size_t before = LeakDetector::Get().LiveCount();
      (void)fs->Create("/f");
      (void)fs->Stat("/f");
      (void)fs->Unlink("/f");
      size_t after = LeakDetector::Get().LiveCount();
      result.note = "node info leaked (" + std::to_string(after - before) +
                    " live allocations remain)";
      break;
    }
    case BugClass::kDataRace: {
      faults->skip_size_lock = true;
      (void)fs->Create("/raced");
      bool lost = false;
      for (int attempt = 0; attempt < 50 && !lost; ++attempt) {
        (void)fs->Truncate("/raced", 0);
        std::atomic<bool> go{false};
        std::thread t1([&] {
          while (!go.load()) {
          }
          (void)fs->Write("/raced", 0, Bytes(100, 1));
        });
        std::thread t2([&] {
          while (!go.load()) {
          }
          (void)fs->Write("/raced", 0, Bytes(300, 2));
        });
        go.store(true);
        t1.join();
        t2.join();
        lost = fs->Stat("/raced").ok() && fs->Stat("/raced")->size != 300;
      }
      result.note = lost ? "concurrent i_size update lost (final size wrong)"
                         : "race window armed; interleaving not hit this run";
      break;
    }
    case BugClass::kBufferOverflow: {
      (void)fs->Create("/aa");
      (void)fs->Create("/bb");
      (void)fs->Create("/cc");
      (void)fs->Unlink("/bb");
      faults->dirent_off_by_one = true;
      (void)fs->Create("/dd");
      bool cc_gone = !fs->Stat("/cc").ok();
      result.note = cc_gone ? "neighbouring dirent clobbered; /cc vanished"
                            : "overflow executed";
      break;
    }
    case BugClass::kIntegerUnderflow: {
      faults->truncate_underflow = true;
      (void)fs->Create("/f");
      (void)fs->Write("/f", 0, Bytes(4 * kBlockSize, 1));
      (void)fs->Truncate("/f", 0);
      result.note = "underflowed block count: 4 blocks leaked silently";
      break;
    }
    default:
      result.outcome = InjectionOutcome::kNotRun;
      break;
  }
  return result;
}

InjectionResult FaultInjectionHarness::RunOwnership(BugClass bug) {
  InjectionResult result{bug, SafetyLevel::kOwnershipSafe, InjectionOutcome::kNotRun, ""};
  ScopedOwnershipMode mode(OwnershipMode::kRecording);
  uint64_t before = OwnershipStats::Get().Total();

  struct Payload {
    int value = 0;
  };

  switch (bug) {
    case BugClass::kUseAfterFree: {
      auto cell = Owned<Payload>::Make();
      cell.Free();
      (void)cell.Get();  // the attempted UAF
      break;
    }
    case BugClass::kDoubleFree: {
      auto cell = Owned<Payload>::Make();
      cell.Free();
      cell.Free();
      break;
    }
    case BugClass::kMemoryLeak: {
      auto cell = Owned<Payload>::Make();
      auto in_flight = cell.Transfer();
      // never accepted: the transfer contract is breached
      break;
    }
    case BugClass::kDataRace: {
      auto cell = Owned<Payload>::Make();
      auto held = cell.LendExclusive();
      std::thread contender([&] {
        auto racing = cell.LendExclusive();  // caught: rights already lent
        (void)racing;
      });
      contender.join();
      break;
    }
    case BugClass::kBufferOverflow: {
      // Checked views turn the overrun into a panic at the access site.
      ScopedPanicAsException guard;
      Bytes block(64, 0);
      try {
        MutableByteView view(block);
        (void)view.Subview(60, 8);  // 4 bytes past the end
        result.note = "subview unexpectedly allowed";
      } catch (const PanicException&) {
        result.outcome = InjectionOutcome::kDetected;
        result.note = "checked view rejected the out-of-bounds access";
        return result;
      }
      break;
    }
    default:
      return result;
  }
  uint64_t caught = OwnershipStats::Get().Total() - before;
  if (caught > 0) {
    result.outcome = InjectionOutcome::kDetected;
    result.note = "ownership runtime flagged " + std::to_string(caught) + " violation(s)";
  } else {
    result.outcome = InjectionOutcome::kSilent;
    result.note = "no violation recorded";
  }
  return result;
}

InjectionResult FaultInjectionHarness::RunVerified(BugClass bug) {
  InjectionResult result{bug, SafetyLevel::kVerified, InjectionOutcome::kNotRun, ""};
  if (!IsSemantic(bug)) {
    return result;
  }
  ScopedRefinementMode mode(RefinementMode::kRecording);
  uint64_t before = RefinementStats::Get().mismatch_count();
  RamDisk disk(kDiskBlocks, seed_ + 1);
  auto fs = SafeFs::Format(disk, kInodes, 16);
  SKERN_CHECK(fs.ok());
  fs.value()->SetSemanticFault(SemanticFaultOf(bug));
  SpecFs spec(fs.value());
  SemanticWorkload(spec);
  uint64_t mismatches = RefinementStats::Get().mismatch_count() - before;
  if (mismatches > 0) {
    result.outcome = InjectionOutcome::kDetected;
    result.note =
        "refinement checker flagged " + std::to_string(mismatches) + " mismatch(es)";
  } else {
    result.outcome = InjectionOutcome::kSilent;
    result.note = "refinement missed the fault";
  }
  return result;
}

InjectionResult FaultInjectionHarness::Run(BugClass bug, SafetyLevel level) {
  switch (level) {
    case SafetyLevel::kUnsafe:
      return RunUnsafe(bug);
    case SafetyLevel::kOwnershipSafe:
      return RunOwnership(bug);
    case SafetyLevel::kVerified:
      return RunVerified(bug);
    default:
      return InjectionResult{bug, level, InjectionOutcome::kNotRun, "no runtime experiment"};
  }
}

std::vector<InjectionResult> FaultInjectionHarness::RunAll() {
  std::vector<InjectionResult> results;
  for (int b = 0; b < kBugClassCount; ++b) {
    auto bug = static_cast<BugClass>(b);
    // Rung 0: every bug manifests silently (measured).
    results.push_back(RunUnsafe(bug));
    // Rung 1 (modularity): same implementations behind an interface; no new
    // prevention, but the blast radius is one module.
    results.push_back(InjectionResult{bug, SafetyLevel::kModular, InjectionOutcome::kSilent,
                                      "modularity isolates but does not prevent"});
    // Rung 2 (type safety).
    switch (bug) {
      case BugClass::kTypeConfusion:
        results.push_back({bug, SafetyLevel::kTypeSafe, InjectionOutcome::kNotExpressible,
                           "no void* crosses the interface; the cookie is a typed value"});
        break;
      case BugClass::kErrPtrMisuse:
        results.push_back({bug, SafetyLevel::kTypeSafe, InjectionOutcome::kNotExpressible,
                           "Result<T> replaces ERR_PTR; unchecked access cannot compile to "
                           "a misread"});
        break;
      default:
        results.push_back({bug, SafetyLevel::kTypeSafe, InjectionOutcome::kSilent,
                           "type safety alone does not address this class"});
        break;
    }
    // Rung 3 (ownership safety).
    switch (bug) {
      case BugClass::kTypeConfusion:
      case BugClass::kErrPtrMisuse:
        results.push_back({bug, SafetyLevel::kOwnershipSafe,
                           InjectionOutcome::kNotExpressible, "prevented at step 2 already"});
        break;
      case BugClass::kUseAfterFree:
      case BugClass::kDoubleFree:
      case BugClass::kMemoryLeak:
      case BugClass::kDataRace:
      case BugClass::kBufferOverflow:
        results.push_back(RunOwnership(bug));
        break;
      default:
        results.push_back({bug, SafetyLevel::kOwnershipSafe, InjectionOutcome::kSilent,
                           IsSemantic(bug)
                               ? "functionally wrong but memory- and type-clean"
                               : "numeric errors are outside type/ownership scope"});
        break;
    }
    // Rung 4 (functional verification).
    if (IsSemantic(bug)) {
      results.push_back(RunVerified(bug));
    } else if (bug == BugClass::kIntegerUnderflow) {
      results.push_back({bug, SafetyLevel::kVerified, InjectionOutcome::kSilent,
                         "space accounting is outside the observable spec — the paper's "
                         "irreducible 23%"});
    } else {
      results.push_back({bug, SafetyLevel::kVerified, InjectionOutcome::kNotExpressible,
                         "prevented at a lower rung"});
    }
  }
  return results;
}

std::string FaultInjectionHarness::RenderMatrix(const std::vector<InjectionResult>& results) {
  std::ostringstream os;
  os << "Fault injection: outcome of each bug class at each roadmap rung\n\n";
  os << std::left << std::setw(34) << "bug class";
  for (int level = 0; level < kSafetyLevelCount; ++level) {
    os << std::left << std::setw(12) << SafetyLevelName(static_cast<SafetyLevel>(level));
  }
  os << "\n" << std::string(34 + 12 * kSafetyLevelCount, '-') << "\n";
  for (int b = 0; b < kBugClassCount; ++b) {
    auto bug = static_cast<BugClass>(b);
    os << std::left << std::setw(34) << BugClassName(bug);
    for (int level = 0; level < kSafetyLevelCount; ++level) {
      InjectionOutcome outcome = InjectionOutcome::kNotRun;
      for (const auto& result : results) {
        if (result.bug == bug && result.level == static_cast<SafetyLevel>(level)) {
          outcome = result.outcome;
        }
      }
      os << std::left << std::setw(12) << InjectionOutcomeName(outcome);
    }
    os << "\n";
  }
  return os.str();
}

double FaultInjectionHarness::PreventedCorpusFraction(
    const std::vector<InjectionResult>& results, SafetyLevel level,
    const std::vector<double>& cwe_mix) {
  // A CWE class counts as prevented at `level` if any bug of that class was
  // detected or not expressible at or below the level.
  double prevented = 0.0;
  for (int c = 0; c < kCweClassCount; ++c) {
    auto cls = static_cast<CweClass>(c);
    bool stopped = false;
    for (const auto& result : results) {
      if (CweOf(result.bug) == cls && result.level <= level &&
          (result.outcome == InjectionOutcome::kDetected ||
           result.outcome == InjectionOutcome::kNotExpressible)) {
        stopped = true;
      }
    }
    if (stopped && c < static_cast<int>(cwe_mix.size())) {
      prevented += cwe_mix[c];
    }
  }
  return prevented;
}

}  // namespace skern
