// Fault-injection harness (experiment E11).
//
// The paper *categorizes* 1475 CVEs by which roadmap rung would prevent them
// (42% type+ownership, +35% functional, 23% neither) but cannot run the
// counterfactual. skern can: each §2 bug class is injected into the file
// systems at each rung of the ladder and the outcome observed:
//
//   kSilent         executed and corrupted state; nothing noticed — the
//                   status quo the paper wants to escape;
//   kDetected       a safety mechanism caught it at runtime (ownership
//                   checker, refinement mismatch, lock checker, leak ledger);
//   kNotExpressible the rung's discipline makes the bug unwritable (typed
//                   interfaces have no void* to confuse; RAII cannot leak;
//                   checked views cannot overrun) — the compile-time
//                   prevention Rust gives for real, demonstrated here by
//                   construction.
//
// The rendered matrix is the experimental validation of the 42/35/23 split:
// memory/type rows flip at rungs 2–3, semantic rows flip at rung 4, and the
// numeric-error row stays silent everywhere (the paper's irreducible 23%).
#ifndef SKERN_SRC_FAULTINJECT_HARNESS_H_
#define SKERN_SRC_FAULTINJECT_HARNESS_H_

#include <string>
#include <vector>

#include "src/core/safety_level.h"
#include "src/cve/cwe.h"

namespace skern {

enum class BugClass : uint8_t {
  kTypeConfusion = 0,   // write_begin/write_end cookie (CWE-843)
  kErrPtrMisuse,        // missing IS_ERR check (CWE-476 family)
  kUseAfterFree,        // node info read after free (CWE-416)
  kDoubleFree,          // block freed twice (CWE-415)
  kMemoryLeak,          // node info never freed (CWE-401)
  kDataRace,            // unlocked i_size update (CWE-362)
  kBufferOverflow,      // dirent name off-by-one (CWE-787)
  kIntegerUnderflow,    // truncate-to-zero underflow (CWE-191)
  kSemanticStat,        // wrong size reported
  kSemanticRename,      // source entry left behind
  kSemanticTruncate,    // stale data exposed after shrink+grow
  kSemanticReaddir,     // entry dropped from listing
  kSemanticWrite,       // tail byte silently discarded
  kCount,
};

inline constexpr int kBugClassCount = static_cast<int>(BugClass::kCount);

const char* BugClassName(BugClass bug);
CweClass CweOf(BugClass bug);

enum class InjectionOutcome : uint8_t {
  kSilent = 0,
  kDetected,
  kNotExpressible,
  kNotRun,
};

const char* InjectionOutcomeName(InjectionOutcome outcome);

struct InjectionResult {
  BugClass bug;
  SafetyLevel level;
  InjectionOutcome outcome = InjectionOutcome::kNotRun;
  std::string note;  // what happened / why it cannot happen
};

class FaultInjectionHarness {
 public:
  explicit FaultInjectionHarness(uint64_t seed = 42) : seed_(seed) {}

  // Runs every (bug, rung) cell that has a runtime experiment and fills in
  // the static (kNotExpressible) cells with their justification.
  std::vector<InjectionResult> RunAll();

  // Single cell, for tests.
  InjectionResult Run(BugClass bug, SafetyLevel level);

  static std::string RenderMatrix(const std::vector<InjectionResult>& results);

  // The bridge to E5: given the corpus CWE mix, the fraction of CVEs whose
  // class this harness found prevented (detected or not expressible) at or
  // below `level`.
  static double PreventedCorpusFraction(const std::vector<InjectionResult>& results,
                                        SafetyLevel level,
                                        const std::vector<double>& cwe_mix);

 private:
  InjectionResult RunUnsafe(BugClass bug);      // legacyfs with the fault armed
  InjectionResult RunOwnership(BugClass bug);   // ownership-runtime demonstration
  InjectionResult RunVerified(BugClass bug);    // specfs refinement demonstration

  uint64_t seed_;
};

}  // namespace skern

#endif  // SKERN_SRC_FAULTINJECT_HARNESS_H_
