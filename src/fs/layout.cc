#include "src/fs/layout.h"

#include "src/base/panic.h"

namespace skern {

void LayoutPutU64(MutableByteView block, size_t offset, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    block[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

uint64_t LayoutGetU64(ByteView block, size_t offset) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(block[offset + i]) << (8 * i);
  }
  return value;
}

void LayoutPutU32(MutableByteView block, size_t offset, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    block[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

uint32_t LayoutGetU32(ByteView block, size_t offset) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(block[offset + i]) << (8 * i);
  }
  return value;
}

FsGeometry MakeGeometry(uint64_t total_blocks, uint64_t inode_count, uint64_t journal_blocks) {
  SKERN_CHECK(inode_count > 0);
  FsGeometry geo;
  geo.total_blocks = total_blocks;
  geo.inode_count = inode_count;
  geo.inode_table_blocks = (inode_count + kInodesPerBlock - 1) / kInodesPerBlock;
  geo.data_start = kInodeTableStart + geo.inode_table_blocks;
  geo.journal_blocks = journal_blocks;
  geo.journal_start = journal_blocks > 0 ? total_blocks - journal_blocks : 0;
  uint64_t data_end = journal_blocks > 0 ? geo.journal_start : total_blocks;
  SKERN_CHECK_MSG(data_end > geo.data_start, "device too small for geometry");
  geo.data_blocks = data_end - geo.data_start;
  SKERN_CHECK_MSG(geo.data_blocks <= kBlockSize * 8, "bitmap block too small for data area");
  return geo;
}

void EncodeInode(const DiskInode& inode, MutableByteView block, uint32_t slot) {
  SKERN_CHECK(slot < kInodesPerBlock);
  size_t base = static_cast<size_t>(slot) * kInodeSize;
  LayoutPutU32(block, base + 0, inode.mode);
  LayoutPutU32(block, base + 4, inode.nlink);
  LayoutPutU64(block, base + 8, inode.size);
  for (uint32_t i = 0; i < kDirectBlocks; ++i) {
    LayoutPutU64(block, base + 16 + 8 * i, inode.direct[i]);
  }
  LayoutPutU64(block, base + 16 + 8 * kDirectBlocks, inode.indirect);
  LayoutPutU32(block, base + 104, inode.uid);
  LayoutPutU32(block, base + 108, inode.gid);
}

DiskInode DecodeInode(ByteView block, uint32_t slot) {
  SKERN_CHECK(slot < kInodesPerBlock);
  size_t base = static_cast<size_t>(slot) * kInodeSize;
  DiskInode inode;
  inode.mode = LayoutGetU32(block, base + 0);
  inode.nlink = LayoutGetU32(block, base + 4);
  inode.size = LayoutGetU64(block, base + 8);
  for (uint32_t i = 0; i < kDirectBlocks; ++i) {
    inode.direct[i] = LayoutGetU64(block, base + 16 + 8 * i);
  }
  inode.indirect = LayoutGetU64(block, base + 16 + 8 * kDirectBlocks);
  inode.uid = LayoutGetU32(block, base + 104);
  inode.gid = LayoutGetU32(block, base + 108);
  return inode;
}

void EncodeDirent(const Dirent& entry, MutableByteView block, uint32_t slot) {
  SKERN_CHECK(slot < kDirentsPerBlock);
  SKERN_CHECK(entry.name.size() <= kMaxNameLen);
  size_t base = static_cast<size_t>(slot) * kDirentSize;
  LayoutPutU64(block, base, entry.ino);
  block[base + 8] = static_cast<uint8_t>(entry.name.size());
  for (size_t i = 0; i < kMaxNameLen; ++i) {
    block[base + 9 + i] = i < entry.name.size() ? static_cast<uint8_t>(entry.name[i]) : 0;
  }
}

Dirent DecodeDirent(ByteView block, uint32_t slot) {
  SKERN_CHECK(slot < kDirentsPerBlock);
  size_t base = static_cast<size_t>(slot) * kDirentSize;
  Dirent entry;
  entry.ino = LayoutGetU64(block, base);
  uint8_t len = block[base + 8];
  if (len > kMaxNameLen) {
    len = kMaxNameLen;  // tolerate corruption; callers validate semantically
  }
  entry.name.assign(reinterpret_cast<const char*>(block.data() + base + 9), len);
  return entry;
}

void EncodeSuperblock(const SuperblockRec& sb, MutableByteView block) {
  block.Fill(0);
  LayoutPutU64(block, 0, sb.magic);
  LayoutPutU64(block, 8, sb.geometry.total_blocks);
  LayoutPutU64(block, 16, sb.geometry.inode_count);
  LayoutPutU64(block, 24, sb.geometry.inode_table_blocks);
  LayoutPutU64(block, 32, sb.geometry.data_start);
  LayoutPutU64(block, 40, sb.geometry.data_blocks);
  LayoutPutU64(block, 48, sb.geometry.journal_start);
  LayoutPutU64(block, 56, sb.geometry.journal_blocks);
  LayoutPutU64(block, 64, sb.root_ino);
}

Result<SuperblockRec> DecodeSuperblock(ByteView block) {
  SuperblockRec sb;
  sb.magic = LayoutGetU64(block, 0);
  if (sb.magic != kFsMagic) {
    return Errno::kEINVAL;
  }
  sb.geometry.total_blocks = LayoutGetU64(block, 8);
  sb.geometry.inode_count = LayoutGetU64(block, 16);
  sb.geometry.inode_table_blocks = LayoutGetU64(block, 24);
  sb.geometry.data_start = LayoutGetU64(block, 32);
  sb.geometry.data_blocks = LayoutGetU64(block, 40);
  sb.geometry.journal_start = LayoutGetU64(block, 48);
  sb.geometry.journal_blocks = LayoutGetU64(block, 56);
  sb.root_ino = LayoutGetU64(block, 64);
  return sb;
}

}  // namespace skern
