// Shared on-disk format for the skern file systems.
//
// legacyfs and safefs implement the same simple Unix-like layout so that the
// E9 comparison benchmarks measure implementation style, not format:
//
//   block 0                superblock
//   block 1                data-block bitmap (1 block = 32768 blocks max)
//   blocks 2..2+IT-1       inode table (128-byte inodes, 32 per block)
//   blocks data_start..    file/directory content
//   blocks journal_start.. journal area (used by safefs/specfs only)
//
// Files: 10 direct block pointers + 1 single-indirect block (512 pointers),
// max file size = (10 + 512) * 4 KiB ≈ 2 MiB.
// Directories: content is an array of fixed 64-byte dirents.
//
// Only *format* is shared — each file system has its own implementation, in
// its own idiom; that is the point of the comparison.
#ifndef SKERN_SRC_FS_LAYOUT_H_
#define SKERN_SRC_FS_LAYOUT_H_

#include <cstdint>
#include <string>

#include "src/base/bytes.h"
#include "src/base/result.h"
#include "src/block/block_device.h"

namespace skern {

inline constexpr uint64_t kFsMagic = 0x534b45524e465331ULL;  // "SKERNFS1"
inline constexpr uint64_t kSuperblockBlock = 0;
inline constexpr uint64_t kBitmapBlock = 1;
inline constexpr uint64_t kInodeTableStart = 2;

inline constexpr uint32_t kInodeSize = 128;
inline constexpr uint32_t kInodesPerBlock = kBlockSize / kInodeSize;  // 32
inline constexpr uint32_t kDirectBlocks = 10;
inline constexpr uint32_t kPointersPerBlock = kBlockSize / 8;  // 512
inline constexpr uint64_t kMaxFileBlocks = kDirectBlocks + kPointersPerBlock;

inline constexpr uint32_t kDirentSize = 64;
inline constexpr uint32_t kDirentsPerBlock = kBlockSize / kDirentSize;  // 64
inline constexpr uint32_t kMaxNameLen = 54;

inline constexpr uint64_t kRootIno = 1;
inline constexpr uint64_t kInvalidIno = 0;

// Inode mode bits (subset of POSIX). The low 9 bits are the rwx permission
// triads; the type bits sit above them exactly like S_IFDIR/S_IFREG.
inline constexpr uint32_t kModeDir = 0x4000;
inline constexpr uint32_t kModeReg = 0x8000;
inline constexpr uint32_t kModePermMask = 0777;
// mkfs / create defaults (no umask in this kernel).
inline constexpr uint32_t kDefaultFilePerm = 0644;
inline constexpr uint32_t kDefaultDirPerm = 0755;

struct FsGeometry {
  uint64_t total_blocks = 0;
  uint64_t inode_count = 0;
  uint64_t inode_table_blocks = 0;
  uint64_t data_start = 0;
  uint64_t data_blocks = 0;
  uint64_t journal_start = 0;  // 0 if no journal area
  uint64_t journal_blocks = 0;
};

// Computes a geometry for a device of `total_blocks`, reserving
// `journal_blocks` at the end (0 for legacyfs).
FsGeometry MakeGeometry(uint64_t total_blocks, uint64_t inode_count, uint64_t journal_blocks);

// The on-disk inode record. uid/gid landed after the v1 format shipped; they
// occupy previously-zero tail bytes of the 128-byte slot, so old images
// decode as root-owned — exactly the pre-credential behavior.
struct DiskInode {
  uint32_t mode = 0;   // 0 = free slot; type bits | permission triads
  uint32_t nlink = 0;
  uint64_t size = 0;
  uint64_t direct[kDirectBlocks] = {};
  uint64_t indirect = 0;
  uint32_t uid = 0;
  uint32_t gid = 0;

  bool InUse() const { return mode != 0; }
  bool IsDir() const { return (mode & kModeDir) != 0; }
  bool IsReg() const { return (mode & kModeReg) != 0; }
  uint32_t Perm() const { return mode & kModePermMask; }
};

// Serialization into/out of an inode-table block at the slot for `ino`.
void EncodeInode(const DiskInode& inode, MutableByteView block, uint32_t slot);
DiskInode DecodeInode(ByteView block, uint32_t slot);

// A directory entry slot within a directory block.
struct Dirent {
  uint64_t ino = kInvalidIno;  // kInvalidIno = free slot
  std::string name;
};

void EncodeDirent(const Dirent& entry, MutableByteView block, uint32_t slot);
Dirent DecodeDirent(ByteView block, uint32_t slot);

// Superblock serialization.
struct SuperblockRec {
  uint64_t magic = kFsMagic;
  FsGeometry geometry;
  uint64_t root_ino = kRootIno;
};

void EncodeSuperblock(const SuperblockRec& sb, MutableByteView block);
Result<SuperblockRec> DecodeSuperblock(ByteView block);

// Little-endian scalar helpers shared by the fs implementations.
void LayoutPutU64(MutableByteView block, size_t offset, uint64_t value);
uint64_t LayoutGetU64(ByteView block, size_t offset);
void LayoutPutU32(MutableByteView block, size_t offset, uint32_t value);
uint32_t LayoutGetU32(ByteView block, size_t offset);

}  // namespace skern

#endif  // SKERN_SRC_FS_LAYOUT_H_
