// legacyfs implementation.
//
// STYLE NOTE: this file intentionally mirrors kernel C — snake_case statics,
// int errnos, out-parameters, manual buffer management, void* handles — as
// the "before" exhibit of the paper's migration. See legacyfs.h.
#include "src/fs/legacyfs/legacyfs.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include "src/base/err_ptr.h"
#include "src/base/panic.h"
#include "src/ownership/leak_detector.h"
#include "src/spec/fs_model.h"
#include "src/vfs/inode.h"

namespace skern {
namespace {

constexpr uint32_t kNinfoMagic = 0x1e9acf51;
constexpr uint32_t kNinfoPoison = 0xdeadbeef;
constexpr uint32_t kCookieMagic = 0xc00c1e5a;

// The fs-private per-node data hiding behind LegacyInode::i_private.
struct legacy_ninfo {
  uint32_t magic;
  uint64_t ino;
  uint64_t direct[kDirectBlocks];
  uint64_t indirect;
  uint64_t leak_ticket;
};

// The write_begin/write_end cookie (§4.2's example).
struct write_cookie {
  uint32_t magic;
  uint64_t ino;
  uint64_t old_size;
};

// What write_begin hands out under type confusion: a different type whose
// first bytes will be misread as the cookie.
struct confused_cookie {
  uint64_t junk;
};

struct legacy_sb {
  BufferCache* cache;
  FsGeometry geo;
  LegacyFaultConfig faults;
  std::mutex ops_lock;  // coarse "big lock"; i_size updates may skip it (fault)
  std::map<uint64_t, LegacyInode*> nodes;
};

int err_of(Errno e) { return -static_cast<int>(e); }

// --- raw metadata access through the buffer cache ---

int read_disk_inode(legacy_sb* sb, uint64_t ino, DiskInode* out) {
  if (ino == 0 || ino > sb->geo.inode_count) {
    return err_of(Errno::kEINVAL);
  }
  uint64_t block = kInodeTableStart + (ino - 1) / kInodesPerBlock;
  auto r = sb->cache->ReadBlock(block);
  if (!r.ok()) {
    return err_of(r.error());
  }
  *out = DecodeInode(ByteView(r.value()->data), (ino - 1) % kInodesPerBlock);
  sb->cache->Release(r.value());
  return 0;
}

int write_disk_inode(legacy_sb* sb, uint64_t ino, const DiskInode* inode) {
  uint64_t block = kInodeTableStart + (ino - 1) / kInodesPerBlock;
  auto r = sb->cache->ReadBlock(block);
  if (!r.ok()) {
    return err_of(r.error());
  }
  BufferHead* bh = r.value();
  EncodeInode(*inode, MutableByteView(bh->data), (ino - 1) % kInodesPerBlock);
  sb->cache->MarkDirty(bh);
  sb->cache->Release(bh);
  return 0;
}

int balloc(legacy_sb* sb, uint64_t* out) {
  auto r = sb->cache->ReadBlock(kBitmapBlock);
  if (!r.ok()) {
    return err_of(r.error());
  }
  BufferHead* bh = r.value();
  for (uint64_t i = 0; i < sb->geo.data_blocks; ++i) {
    uint8_t& byte = bh->data[i / 8];
    uint8_t mask = static_cast<uint8_t>(1u << (i % 8));
    if ((byte & mask) == 0) {
      byte |= mask;
      sb->cache->MarkDirty(bh);
      sb->cache->Release(bh);
      *out = sb->geo.data_start + i;
      return 0;
    }
  }
  sb->cache->Release(bh);
  return err_of(Errno::kENOSPC);
}

void bfree(legacy_sb* sb, uint64_t block) {
  auto r = sb->cache->ReadBlock(kBitmapBlock);
  if (!r.ok()) {
    return;
  }
  BufferHead* bh = r.value();
  uint64_t i = block - sb->geo.data_start;
  uint8_t mask = static_cast<uint8_t>(1u << (i % 8));
  if ((bh->data[i / 8] & mask) == 0 && sb->faults.double_free_block) {
    // Double free: a real allocator would corrupt its freelist; the
    // simulated consequence is that the *neighbouring* block's bit is
    // cleared, so a block still owned by some file gets handed out again.
    uint64_t j = (i + 1) % sb->geo.data_blocks;
    bh->data[j / 8] &= static_cast<uint8_t>(~(1u << (j % 8)));
  }
  bh->data[i / 8] &= static_cast<uint8_t>(~mask);
  sb->cache->MarkDirty(bh);
  sb->cache->Release(bh);
}

// --- block mapping ---

int map_block(legacy_sb* sb, const DiskInode* di, uint64_t index, uint64_t* out) {
  if (index < kDirectBlocks) {
    *out = di->direct[index];
    return 0;
  }
  uint64_t ii = index - kDirectBlocks;
  if (ii >= kPointersPerBlock) {
    return err_of(Errno::kEFBIG);
  }
  if (di->indirect == 0) {
    *out = 0;
    return 0;
  }
  auto r = sb->cache->ReadBlock(di->indirect);
  if (!r.ok()) {
    return err_of(r.error());
  }
  *out = LayoutGetU64(ByteView(r.value()->data), ii * 8);
  sb->cache->Release(r.value());
  return 0;
}

// getblk for a freshly allocated block: zero-fill and mark uptodate + dirty.
// Returns the buffer pinned; callers must Release it. GetBlock never returns
// nullptr (a cache pinned far over capacity panics — see buffer_cache.h), so
// there is deliberately no error path here.
BufferHead* get_zeroed_block(BufferCache* cache, uint64_t block) {
  BufferHead* bh = cache->GetBlock(block);
  bh->data.assign(kBlockSize, 0);
  bh->Set(BhFlag::kUptodate);
  cache->MarkDirty(bh);
  return bh;
}

int map_block_for_write(legacy_sb* sb, uint64_t ino, DiskInode* di, uint64_t index,
                        uint64_t* out) {
  if (index < kDirectBlocks) {
    if (di->direct[index] == 0) {
      uint64_t block;
      int err = balloc(sb, &block);
      if (err) {
        return err;
      }
      // Fresh block: zero it via the cache.
      sb->cache->Release(get_zeroed_block(sb->cache, block));
      di->direct[index] = block;
      int werr = write_disk_inode(sb, ino, di);
      if (werr) {
        return werr;
      }
    }
    *out = di->direct[index];
    return 0;
  }
  uint64_t ii = index - kDirectBlocks;
  if (ii >= kPointersPerBlock) {
    return err_of(Errno::kEFBIG);
  }
  if (di->indirect == 0) {
    uint64_t iblock;
    int err = balloc(sb, &iblock);
    if (err) {
      return err;
    }
    sb->cache->Release(get_zeroed_block(sb->cache, iblock));
    di->indirect = iblock;
    int werr = write_disk_inode(sb, ino, di);
    if (werr) {
      return werr;
    }
  }
  auto r = sb->cache->ReadBlock(di->indirect);
  if (!r.ok()) {
    return err_of(r.error());
  }
  BufferHead* ind = r.value();
  uint64_t mapped = LayoutGetU64(ByteView(ind->data), ii * 8);
  if (mapped == 0) {
    uint64_t block;
    int err = balloc(sb, &block);
    if (err) {
      sb->cache->Release(ind);
      return err;
    }
    sb->cache->Release(get_zeroed_block(sb->cache, block));
    LayoutPutU64(MutableByteView(ind->data), ii * 8, block);
    sb->cache->MarkDirty(ind);
    mapped = block;
  }
  sb->cache->Release(ind);
  *out = mapped;
  return 0;
}

// --- directories ---

int dir_lookup(legacy_sb* sb, const DiskInode* dir, const char* name, uint64_t* ino_out) {
  *ino_out = kInvalidIno;
  uint64_t blocks = (dir->size + kBlockSize - 1) / kBlockSize;
  for (uint64_t index = 0; index < blocks; ++index) {
    uint64_t block;
    int err = map_block(sb, dir, index, &block);
    if (err) {
      return err;
    }
    if (block == 0) {
      continue;
    }
    auto r = sb->cache->ReadBlock(block);
    if (!r.ok()) {
      return err_of(r.error());
    }
    BufferHead* bh = r.value();
    for (uint32_t slot = 0; slot < kDirentsPerBlock; ++slot) {
      Dirent entry = DecodeDirent(ByteView(bh->data), slot);
      if (entry.ino != kInvalidIno && entry.name == name) {
        *ino_out = entry.ino;
        sb->cache->Release(bh);
        return 0;
      }
    }
    sb->cache->Release(bh);
  }
  return 0;  // not found: *ino_out stays kInvalidIno
}

// Writes a dirent by hand (memcpy-style) so the off-by-one fault can run one
// byte past the name field, clobbering the first byte of the next slot's
// inode number inside the same block — CWE-787 at data level.
void put_dirent_raw(legacy_sb* sb, BufferHead* bh, uint32_t slot, uint64_t ino,
                    const char* name) {
  size_t base = static_cast<size_t>(slot) * kDirentSize;
  LayoutPutU64(MutableByteView(bh->data), base, ino);
  size_t len = std::strlen(name);
  if (len > kMaxNameLen) {
    len = kMaxNameLen;
  }
  bh->data[base + 8] = static_cast<uint8_t>(len);
  size_t copy = len;
  if (sb->faults.dirent_off_by_one && base + 9 + kMaxNameLen + 2 <= kBlockSize) {
    // The buggy loop writes the padded name plus a terminating NUL plus one:
    // two bytes past the field, landing on the next slot's inode-number LSB.
    copy = kMaxNameLen + 2;
  }
  for (size_t i = 0; i < copy; ++i) {
    uint8_t c = i < len ? static_cast<uint8_t>(name[i]) : 0;
    if (base + 9 + i < kBlockSize) {
      bh->data[base + 9 + i] = c;
    }
  }
}

int dir_add(legacy_sb* sb, uint64_t dir_ino, DiskInode* dir, const char* name, uint64_t ino) {
  if (std::strlen(name) > kMaxNameLen) {
    return err_of(Errno::kENAMETOOLONG);
  }
  uint64_t blocks = (dir->size + kBlockSize - 1) / kBlockSize;
  for (uint64_t index = 0; index < blocks; ++index) {
    uint64_t block;
    int err = map_block(sb, dir, index, &block);
    if (err) {
      return err;
    }
    if (block == 0) {
      continue;
    }
    auto r = sb->cache->ReadBlock(block);
    if (!r.ok()) {
      return err_of(r.error());
    }
    BufferHead* bh = r.value();
    for (uint32_t slot = 0; slot < kDirentsPerBlock; ++slot) {
      if (DecodeDirent(ByteView(bh->data), slot).ino == kInvalidIno) {
        put_dirent_raw(sb, bh, slot, ino, name);
        sb->cache->MarkDirty(bh);
        sb->cache->Release(bh);
        return 0;
      }
    }
    sb->cache->Release(bh);
  }
  // Extend by one block.
  uint64_t block;
  int err = map_block_for_write(sb, dir_ino, dir, blocks, &block);
  if (err) {
    return err;
  }
  auto r = sb->cache->ReadBlock(block);
  if (!r.ok()) {
    return err_of(r.error());
  }
  BufferHead* bh = r.value();
  put_dirent_raw(sb, bh, 0, ino, name);
  sb->cache->MarkDirty(bh);
  sb->cache->Release(bh);
  dir->size = (blocks + 1) * kBlockSize;
  return write_disk_inode(sb, dir_ino, dir);
}

int dir_remove(legacy_sb* sb, const DiskInode* dir, const char* name) {
  uint64_t blocks = (dir->size + kBlockSize - 1) / kBlockSize;
  for (uint64_t index = 0; index < blocks; ++index) {
    uint64_t block;
    int err = map_block(sb, dir, index, &block);
    if (err) {
      return err;
    }
    if (block == 0) {
      continue;
    }
    auto r = sb->cache->ReadBlock(block);
    if (!r.ok()) {
      return err_of(r.error());
    }
    BufferHead* bh = r.value();
    for (uint32_t slot = 0; slot < kDirentsPerBlock; ++slot) {
      Dirent entry = DecodeDirent(ByteView(bh->data), slot);
      if (entry.ino != kInvalidIno && entry.name == name) {
        EncodeDirent(Dirent{kInvalidIno, ""}, MutableByteView(bh->data), slot);
        sb->cache->MarkDirty(bh);
        sb->cache->Release(bh);
        return 0;
      }
    }
    sb->cache->Release(bh);
  }
  return err_of(Errno::kENOENT);
}

int dir_empty(legacy_sb* sb, const DiskInode* dir, bool* out) {
  *out = true;
  uint64_t blocks = (dir->size + kBlockSize - 1) / kBlockSize;
  for (uint64_t index = 0; index < blocks && *out; ++index) {
    uint64_t block;
    int err = map_block(sb, dir, index, &block);
    if (err) {
      return err;
    }
    if (block == 0) {
      continue;
    }
    auto r = sb->cache->ReadBlock(block);
    if (!r.ok()) {
      return err_of(r.error());
    }
    for (uint32_t slot = 0; slot < kDirentsPerBlock; ++slot) {
      if (DecodeDirent(ByteView(r.value()->data), slot).ino != kInvalidIno) {
        *out = false;
        break;
      }
    }
    sb->cache->Release(r.value());
  }
  return 0;
}

// --- path walking ---

// Splits `path` and walks to the parent of the final component.
// On success: *parent_out and *ino_out (kInvalidIno if leaf absent), leaf
// copied into `leaf` (size >= kMaxNameLen+1). Root path: *ino_out = root,
// *parent_out = 0, leaf empty.
int walk(legacy_sb* sb, const char* path, uint64_t* parent_out, char* leaf,
         uint64_t* ino_out) {
  auto norm = specpath::Normalize(path);
  if (!norm.ok()) {
    return err_of(norm.error());
  }
  const std::string& p = norm.value();
  *parent_out = 0;
  leaf[0] = '\0';
  if (p == "/") {
    *ino_out = kRootIno;
    return 0;
  }
  uint64_t cur = kRootIno;
  size_t pos = 1;
  for (;;) {
    size_t next = p.find('/', pos);
    bool last = next == std::string::npos;
    std::string comp = p.substr(pos, (last ? p.size() : next) - pos);
    DiskInode di;
    int err = read_disk_inode(sb, cur, &di);
    if (err) {
      return err;
    }
    if (!di.IsDir()) {
      return err_of(Errno::kENOTDIR);
    }
    uint64_t child;
    err = dir_lookup(sb, &di, comp.c_str(), &child);
    if (err) {
      return err;
    }
    if (last) {
      *parent_out = cur;
      std::snprintf(leaf, kMaxNameLen + 1, "%s", comp.c_str());
      *ino_out = child;
      return 0;
    }
    if (child == kInvalidIno) {
      return err_of(Errno::kENOENT);
    }
    cur = child;
    pos = next + 1;
  }
}

// --- inode allocation ---

int ialloc(legacy_sb* sb, uint32_t mode, uint64_t* ino_out) {
  for (uint64_t ino = 1; ino <= sb->geo.inode_count; ++ino) {
    DiskInode di;
    int err = read_disk_inode(sb, ino, &di);
    if (err) {
      return err;
    }
    if (!di.InUse()) {
      DiskInode fresh;
      fresh.mode = mode;
      fresh.nlink = (mode & kModeDir) != 0 ? 2 : 1;
      err = write_disk_inode(sb, ino, &fresh);
      if (err) {
        return err;
      }
      *ino_out = ino;
      return 0;
    }
  }
  return err_of(Errno::kENOSPC);
}

void free_file_blocks(legacy_sb* sb, DiskInode* di, uint64_t first_kept) {
  uint64_t old_blocks = (di->size + kBlockSize - 1) / kBlockSize;
  for (uint64_t index = first_kept; index < old_blocks; ++index) {
    uint64_t block = 0;
    if (map_block(sb, di, index, &block) != 0 || block == 0) {
      continue;
    }
    bfree(sb, block);
    if (index < kDirectBlocks) {
      di->direct[index] = 0;
    } else {
      auto r = sb->cache->ReadBlock(di->indirect);
      if (r.ok()) {
        LayoutPutU64(MutableByteView(r.value()->data), (index - kDirectBlocks) * 8, 0);
        sb->cache->MarkDirty(r.value());
        sb->cache->Release(r.value());
      }
    }
  }
  if (first_kept <= kDirectBlocks && di->indirect != 0 && old_blocks > kDirectBlocks) {
    bfree(sb, di->indirect);
    di->indirect = 0;
  }
}

// --- node objects (the void* handles) ---

LegacyInode* get_node(legacy_sb* sb, uint64_t ino) {
  auto it = sb->nodes.find(ino);
  if (it != sb->nodes.end()) {
    it->second->i_count.fetch_add(1);
    return it->second;
  }
  DiskInode di;
  int err = read_disk_inode(sb, ino, &di);
  if (err != 0 || !di.InUse()) {
    return nullptr;
  }
  auto* node = new LegacyInode();
  node->i_ino = ino;
  node->i_mode = di.mode;
  node->i_nlink = di.nlink;
  node->i_size = di.size;
  auto* info = new legacy_ninfo();
  info->magic = kNinfoMagic;
  info->ino = ino;
  std::memcpy(info->direct, di.direct, sizeof(info->direct));
  info->indirect = di.indirect;
  info->leak_ticket = LeakDetector::Get().OnAlloc("legacyfs.ninfo", sizeof(legacy_ninfo));
  node->i_private = info;
  node->i_count.store(1);
  sb->nodes[ino] = node;
  return node;
}

void drop_node(legacy_sb* sb, LegacyInode* node, bool unlinking) {
  int32_t prev = node->i_count.fetch_sub(1);
  if (prev > 1 && !unlinking) {
    return;
  }
  if (unlinking) {
    sb->nodes.erase(node->i_ino);
    auto* info = static_cast<legacy_ninfo*>(node->i_private);
    if (info != nullptr) {
      if (sb->faults.leak_node_on_unlink) {
        // The bug: the info (and its leak ticket) is never freed.
        node->i_private = nullptr;
      } else {
        LeakDetector::Get().OnFree(info->leak_ticket);
        info->magic = kNinfoPoison;
        if (sb->faults.use_after_free_node) {
          // Use after free: the buggy code consults the poisoned info to
          // "free one more block" — corrupting another file's allocation.
          uint64_t bogus = sb->geo.data_start + (info->ino * 7) % sb->geo.data_blocks;
          delete info;
          node->i_private = nullptr;
          bfree(sb, bogus);
        } else {
          delete info;
          node->i_private = nullptr;
        }
      }
    }
    delete node;
  }
}

// Refreshes a node's public fields from disk (after a mutation).
void refresh_node(legacy_sb* sb, LegacyInode* node) {
  DiskInode di;
  if (read_disk_inode(sb, node->i_ino, &di) == 0) {
    node->i_size = di.size;
    node->i_nlink = di.nlink;
    auto* info = static_cast<legacy_ninfo*>(node->i_private);
    if (info != nullptr) {
      std::memcpy(info->direct, di.direct, sizeof(info->direct));
      info->indirect = di.indirect;
    }
  }
}

// --- the LegacyFsOps implementations ---

void* lfs_lookup(void* sbp, const char* path) {
  auto* sb = static_cast<legacy_sb*>(sbp);
  std::lock_guard<std::mutex> guard(sb->ops_lock);
  uint64_t parent, ino;
  char leaf[kMaxNameLen + 1];
  int err = walk(sb, path, &parent, leaf, &ino);
  if (err) {
    return ErrPtr<void>(static_cast<Errno>(-err));
  }
  if (ino == kInvalidIno) {
    return ErrPtr<void>(Errno::kENOENT);
  }
  LegacyInode* node = get_node(sb, ino);
  if (node == nullptr) {
    return ErrPtr<void>(Errno::kEIO);
  }
  return node;
}

void lfs_put_node(void* sbp, void* nodep) {
  auto* sb = static_cast<legacy_sb*>(sbp);
  std::lock_guard<std::mutex> guard(sb->ops_lock);
  drop_node(sb, static_cast<LegacyInode*>(nodep), /*unlinking=*/false);
}

int lfs_create_common(legacy_sb* sb, const char* path, uint32_t mode) {
  std::lock_guard<std::mutex> guard(sb->ops_lock);
  auto norm = specpath::Normalize(path);
  if (!norm.ok()) {
    return err_of(norm.error());
  }
  if (norm.value() == "/") {
    return err_of(Errno::kEEXIST);
  }
  uint64_t parent, ino;
  char leaf[kMaxNameLen + 1];
  int err = walk(sb, path, &parent, leaf, &ino);
  if (err) {
    return err;
  }
  if (ino != kInvalidIno) {
    return err_of(Errno::kEEXIST);
  }
  uint64_t new_ino;
  err = ialloc(sb, mode, &new_ino);
  if (err) {
    return err;
  }
  DiskInode pdi;
  err = read_disk_inode(sb, parent, &pdi);
  if (err) {
    return err;
  }
  err = dir_add(sb, parent, &pdi, leaf, new_ino);
  if (err) {
    DiskInode dead;
    write_disk_inode(sb, new_ino, &dead);
    return err;
  }
  if ((mode & kModeDir) != 0) {
    pdi.nlink += 1;
    write_disk_inode(sb, parent, &pdi);
  }
  return 0;
}

int lfs_create(void* sbp, const char* path) {
  return lfs_create_common(static_cast<legacy_sb*>(sbp), path, kModeReg);
}

int lfs_mkdir(void* sbp, const char* path) {
  return lfs_create_common(static_cast<legacy_sb*>(sbp), path, kModeDir);
}

int lfs_unlink(void* sbp, const char* path) {
  auto* sb = static_cast<legacy_sb*>(sbp);
  std::lock_guard<std::mutex> guard(sb->ops_lock);
  uint64_t parent, ino;
  char leaf[kMaxNameLen + 1];
  int err = walk(sb, path, &parent, leaf, &ino);
  if (err) {
    return err;
  }
  if (ino == kInvalidIno) {
    return err_of(Errno::kENOENT);
  }
  if (ino == kRootIno) {
    return err_of(Errno::kEISDIR);
  }
  DiskInode di;
  err = read_disk_inode(sb, ino, &di);
  if (err) {
    return err;
  }
  if (di.IsDir()) {
    return err_of(Errno::kEISDIR);
  }
  DiskInode pdi;
  err = read_disk_inode(sb, parent, &pdi);
  if (err) {
    return err;
  }
  err = dir_remove(sb, &pdi, leaf);
  if (err) {
    return err;
  }
  free_file_blocks(sb, &di, 0);
  DiskInode dead;
  write_disk_inode(sb, ino, &dead);
  // Release the cached node object (the leak/UAF injection point).
  LegacyInode* node = get_node(sb, ino);  // may rebuild from dead inode: handle below
  if (node != nullptr) {
    drop_node(sb, node, /*unlinking=*/true);
  } else {
    auto it = sb->nodes.find(ino);
    if (it != sb->nodes.end()) {
      drop_node(sb, it->second, /*unlinking=*/true);
    }
  }
  return 0;
}

int lfs_rmdir(void* sbp, const char* path) {
  auto* sb = static_cast<legacy_sb*>(sbp);
  std::lock_guard<std::mutex> guard(sb->ops_lock);
  auto norm = specpath::Normalize(path);
  if (!norm.ok()) {
    return err_of(norm.error());
  }
  if (norm.value() == "/") {
    return err_of(Errno::kEBUSY);
  }
  uint64_t parent, ino;
  char leaf[kMaxNameLen + 1];
  int err = walk(sb, path, &parent, leaf, &ino);
  if (err) {
    return err;
  }
  if (ino == kInvalidIno) {
    return err_of(Errno::kENOENT);
  }
  DiskInode di;
  err = read_disk_inode(sb, ino, &di);
  if (err) {
    return err;
  }
  if (!di.IsDir()) {
    return err_of(Errno::kENOTDIR);
  }
  bool empty;
  err = dir_empty(sb, &di, &empty);
  if (err) {
    return err;
  }
  if (!empty) {
    return err_of(Errno::kENOTEMPTY);
  }
  DiskInode pdi;
  err = read_disk_inode(sb, parent, &pdi);
  if (err) {
    return err;
  }
  err = dir_remove(sb, &pdi, leaf);
  if (err) {
    return err;
  }
  free_file_blocks(sb, &di, 0);
  DiskInode dead;
  write_disk_inode(sb, ino, &dead);
  pdi.nlink -= 1;
  write_disk_inode(sb, parent, &pdi);
  auto it = sb->nodes.find(ino);
  if (it != sb->nodes.end()) {
    drop_node(sb, it->second, /*unlinking=*/true);
  }
  return 0;
}

int64_t lfs_read(void* sbp, void* nodep, uint64_t offset, char* buf, uint64_t len) {
  auto* sb = static_cast<legacy_sb*>(sbp);
  auto* node = static_cast<LegacyInode*>(nodep);
  std::lock_guard<std::mutex> guard(sb->ops_lock);
  if (node->IsDir()) {
    return err_of(Errno::kEISDIR);
  }
  DiskInode di;
  int err = read_disk_inode(sb, node->i_ino, &di);
  if (err) {
    return err;
  }
  if (offset >= di.size) {
    return 0;
  }
  uint64_t take = std::min(len, di.size - offset);
  uint64_t done = 0;
  while (done < take) {
    uint64_t pos = offset + done;
    uint64_t index = pos / kBlockSize;
    uint64_t in_block = pos % kBlockSize;
    uint64_t chunk = std::min<uint64_t>(kBlockSize - in_block, take - done);
    uint64_t block;
    err = map_block(sb, &di, index, &block);
    if (err) {
      return err;
    }
    if (block == 0) {
      std::memset(buf + done, 0, chunk);
    } else {
      auto r = sb->cache->ReadBlock(block);
      if (!r.ok()) {
        return err_of(r.error());
      }
      std::memcpy(buf + done, r.value()->data.data() + in_block, chunk);
      sb->cache->Release(r.value());
    }
    done += chunk;
  }
  return static_cast<int64_t>(take);
}

int64_t lfs_write(void* sbp, void* nodep, uint64_t offset, const char* buf, uint64_t len) {
  auto* sb = static_cast<legacy_sb*>(sbp);
  auto* node = static_cast<LegacyInode*>(nodep);
  std::unique_lock<std::mutex> guard(sb->ops_lock);
  if (node->IsDir()) {
    return err_of(Errno::kEISDIR);
  }
  if (len == 0) {
    return 0;
  }
  uint64_t end = offset + len;
  if (end > kMaxFileBlocks * kBlockSize) {
    return err_of(Errno::kEFBIG);
  }
  DiskInode di;
  int err = read_disk_inode(sb, node->i_ino, &di);
  if (err) {
    return err;
  }
  uint64_t size_snapshot = di.size;
  uint64_t done = 0;
  while (done < len) {
    uint64_t pos = offset + done;
    uint64_t index = pos / kBlockSize;
    uint64_t in_block = pos % kBlockSize;
    uint64_t chunk = std::min<uint64_t>(kBlockSize - in_block, len - done);
    uint64_t block;
    err = map_block_for_write(sb, node->i_ino, &di, index, &block);
    if (err) {
      return err;  // mid-way failure: legacy makes no atomicity promise
    }
    auto r = sb->cache->ReadBlock(block);
    if (!r.ok()) {
      return err_of(r.error());
    }
    std::memcpy(r.value()->data.data() + in_block, buf + done, chunk);
    sb->cache->MarkDirty(r.value());
    sb->cache->Release(r.value());
    done += chunk;
  }
  if (sb->faults.skip_size_lock) {
    // The race: i_size is updated from a stale snapshot outside the lock.
    // "i_size is only maybe protected by i_lock" — this path is the maybe.
    // (The sleep widens the race window the way real I/O latency would.)
    guard.unlock();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    guard.lock();
    DiskInode stale;
    if (read_disk_inode(sb, node->i_ino, &stale) == 0) {
      stale.size = std::max(end, size_snapshot);  // ignores concurrent growth
      write_disk_inode(sb, node->i_ino, &stale);
      node->i_size = stale.size;
    }
  } else {
    // Correct path: re-read under the lock and grow monotonically.
    DiskInode fresh;
    err = read_disk_inode(sb, node->i_ino, &fresh);
    if (err) {
      return err;
    }
    if (end > fresh.size) {
      fresh.size = end;
      write_disk_inode(sb, node->i_ino, &fresh);
    }
    node->i_lock.Lock();
    node->i_size = std::max<uint64_t>(node->i_size, end);
    node->i_lock.Unlock();
  }
  refresh_node(sb, node);
  return static_cast<int64_t>(len);
}

int lfs_truncate(void* sbp, void* nodep, uint64_t size) {
  auto* sb = static_cast<legacy_sb*>(sbp);
  auto* node = static_cast<LegacyInode*>(nodep);
  std::lock_guard<std::mutex> guard(sb->ops_lock);
  if (node->IsDir()) {
    return err_of(Errno::kEISDIR);
  }
  if (size > kMaxFileBlocks * kBlockSize) {
    return err_of(Errno::kEFBIG);
  }
  DiskInode di;
  int err = read_disk_inode(sb, node->i_ino, &di);
  if (err) {
    return err;
  }
  if (size < di.size) {
    uint64_t first_kept = (size + kBlockSize - 1) / kBlockSize;
    if (sb->faults.truncate_underflow && size == 0) {
      // The bug: kept = (size - 1) / kBlockSize + 1 underflows for size == 0
      // and keeps "everything" — the blocks are never freed (space leak).
      first_kept = UINT64_MAX;
    }
    if (first_kept != UINT64_MAX) {
      free_file_blocks(sb, &di, first_kept);
      uint64_t tail = size % kBlockSize;
      if (tail != 0) {
        uint64_t block;
        if (map_block(sb, &di, size / kBlockSize, &block) == 0 && block != 0) {
          auto r = sb->cache->ReadBlock(block);
          if (r.ok()) {
            std::memset(r.value()->data.data() + tail, 0, kBlockSize - tail);
            sb->cache->MarkDirty(r.value());
            sb->cache->Release(r.value());
          }
        }
      }
    }
  }
  di.size = size;
  err = write_disk_inode(sb, node->i_ino, &di);
  if (err) {
    return err;
  }
  refresh_node(sb, node);
  return 0;
}

int lfs_rename(void* sbp, const char* from, const char* to) {
  auto* sb = static_cast<legacy_sb*>(sbp);
  std::lock_guard<std::mutex> guard(sb->ops_lock);
  auto nf = specpath::Normalize(from);
  auto nt = specpath::Normalize(to);
  if (!nf.ok()) {
    return err_of(nf.error());
  }
  if (!nt.ok()) {
    return err_of(nt.error());
  }
  const std::string& f = nf.value();
  const std::string& t = nt.value();
  if (f == "/" || t == "/") {
    return err_of(Errno::kEBUSY);
  }
  uint64_t fparent, fino;
  char fleaf[kMaxNameLen + 1];
  int err = walk(sb, f.c_str(), &fparent, fleaf, &fino);
  if (err) {
    return err;
  }
  if (fino == kInvalidIno) {
    if (sb->faults.errptr_missing_check) {
      // The bug: the caller of lookup forgot IS_ERR. The error pointer is
      // "dereferenced" as a node and its garbage i_ino becomes the rename
      // source — a dangling dirent appears at the destination.
      uint64_t garbage_ino = 0xdead;
      uint64_t tparent_b, tino_b;
      char tleaf_b[kMaxNameLen + 1];
      if (walk(sb, t.c_str(), &tparent_b, tleaf_b, &tino_b) == 0 && tino_b == kInvalidIno) {
        DiskInode tpdi;
        if (read_disk_inode(sb, tparent_b, &tpdi) == 0) {
          dir_add(sb, tparent_b, &tpdi, tleaf_b, garbage_ino);
        }
      }
      return 0;  // "success" — silently wrong
    }
    return err_of(Errno::kENOENT);
  }
  if (f == t) {
    return 0;
  }
  DiskInode fdi;
  err = read_disk_inode(sb, fino, &fdi);
  if (err) {
    return err;
  }
  if (fdi.IsDir() && specpath::IsPrefix(f, t)) {
    return err_of(Errno::kEINVAL);
  }
  uint64_t tparent, tino;
  char tleaf[kMaxNameLen + 1];
  err = walk(sb, t.c_str(), &tparent, tleaf, &tino);
  if (err) {
    return err;
  }
  if (tino != kInvalidIno) {
    DiskInode tdi;
    err = read_disk_inode(sb, tino, &tdi);
    if (err) {
      return err;
    }
    if (!fdi.IsDir() && tdi.IsDir()) {
      return err_of(Errno::kEISDIR);
    }
    if (fdi.IsDir() && !tdi.IsDir()) {
      return err_of(Errno::kENOTDIR);
    }
    if (fdi.IsDir() && tdi.IsDir()) {
      bool empty;
      err = dir_empty(sb, &tdi, &empty);
      if (err) {
        return err;
      }
      if (!empty) {
        return err_of(Errno::kENOTEMPTY);
      }
    }
    DiskInode tpdi;
    err = read_disk_inode(sb, tparent, &tpdi);
    if (err) {
      return err;
    }
    err = dir_remove(sb, &tpdi, tleaf);
    if (err) {
      return err;
    }
    free_file_blocks(sb, &tdi, 0);
    DiskInode dead;
    write_disk_inode(sb, tino, &dead);
    auto it = sb->nodes.find(tino);
    if (it != sb->nodes.end()) {
      drop_node(sb, it->second, /*unlinking=*/true);
    }
  }
  DiskInode tpdi;
  err = read_disk_inode(sb, tparent, &tpdi);
  if (err) {
    return err;
  }
  err = dir_add(sb, tparent, &tpdi, tleaf, fino);
  if (err) {
    return err;
  }
  DiskInode fpdi;
  err = read_disk_inode(sb, fparent, &fpdi);
  if (err) {
    return err;
  }
  return dir_remove(sb, &fpdi, fleaf);
}

int lfs_getattr(void* sbp, void* nodep, uint32_t* mode_out, uint64_t* size_out) {
  auto* sb = static_cast<legacy_sb*>(sbp);
  auto* node = static_cast<LegacyInode*>(nodep);
  std::lock_guard<std::mutex> guard(sb->ops_lock);
  DiskInode di;
  int err = read_disk_inode(sb, node->i_ino, &di);
  if (err) {
    return err;
  }
  *mode_out = di.mode;
  *size_out = di.size;
  return 0;
}

int lfs_readdir(void* sbp, void* nodep, void (*emit)(void*, const char*), void* ctx) {
  auto* sb = static_cast<legacy_sb*>(sbp);
  auto* node = static_cast<LegacyInode*>(nodep);
  std::lock_guard<std::mutex> guard(sb->ops_lock);
  DiskInode di;
  int err = read_disk_inode(sb, node->i_ino, &di);
  if (err) {
    return err;
  }
  if (!di.IsDir()) {
    return err_of(Errno::kENOTDIR);
  }
  uint64_t blocks = (di.size + kBlockSize - 1) / kBlockSize;
  for (uint64_t index = 0; index < blocks; ++index) {
    uint64_t block;
    err = map_block(sb, &di, index, &block);
    if (err) {
      return err;
    }
    if (block == 0) {
      continue;
    }
    auto r = sb->cache->ReadBlock(block);
    if (!r.ok()) {
      return err_of(r.error());
    }
    for (uint32_t slot = 0; slot < kDirentsPerBlock; ++slot) {
      Dirent entry = DecodeDirent(ByteView(r.value()->data), slot);
      if (entry.ino != kInvalidIno) {
        emit(ctx, entry.name.c_str());
      }
    }
    sb->cache->Release(r.value());
  }
  return 0;
}

int lfs_sync(void* sbp) {
  auto* sb = static_cast<legacy_sb*>(sbp);
  std::lock_guard<std::mutex> guard(sb->ops_lock);
  Status s = sb->cache->SyncAll();
  return s.ok() ? 0 : err_of(s.code());
}

int lfs_write_begin(void* sbp, void* nodep, uint64_t offset, uint64_t len, void** fsdata) {
  auto* sb = static_cast<legacy_sb*>(sbp);
  auto* node = static_cast<LegacyInode*>(nodep);
  (void)offset;
  (void)len;
  if (sb->faults.type_confuse_write_cookie) {
    // The bug: a different structure is handed out; write_end will
    // reinterpret its bytes as a write_cookie.
    auto* wrong = new confused_cookie{0xfeedfacecafef00dULL};
    *fsdata = wrong;
    return 0;
  }
  auto* cookie = new write_cookie{kCookieMagic, node->i_ino, node->i_size};
  *fsdata = cookie;
  return 0;
}

int lfs_write_end(void* sbp, void* nodep, uint64_t offset, uint64_t len, void* fsdata) {
  auto* sb = static_cast<legacy_sb*>(sbp);
  auto* node = static_cast<LegacyInode*>(nodep);
  (void)offset;
  (void)len;
  if (fsdata == nullptr) {
    return 0;
  }
  auto* cookie = static_cast<write_cookie*>(fsdata);
  if (cookie->magic != kCookieMagic) {
    // Type confusion in action: the "cookie" is some other object. Real code
    // would now operate on garbage; the simulated consequence is i_size
    // being smashed with bytes of the wrong type.
    std::lock_guard<std::mutex> guard(sb->ops_lock);
    DiskInode di;
    if (read_disk_inode(sb, node->i_ino, &di) == 0) {
      di.size += (static_cast<confused_cookie*>(fsdata)->junk & 0x7) + 1;
      write_disk_inode(sb, node->i_ino, &di);
      node->i_size = di.size;
    }
    delete static_cast<confused_cookie*>(fsdata);
    return 0;
  }
  delete cookie;
  return 0;
}

const LegacyFsOps kLegacyOps = {
    lfs_lookup, lfs_put_node, lfs_create,  lfs_mkdir,   lfs_unlink,      lfs_rmdir,
    lfs_read,   lfs_write,    lfs_truncate, lfs_rename, lfs_getattr,     lfs_readdir,
    lfs_sync,   lfs_write_begin, lfs_write_end,
};

// Adapter subclass that owns the superblock, plus a registry for fault access.
std::map<const FileSystem*, void*>& AdapterRegistry() {
  static auto* registry = new std::map<const FileSystem*, void*>();
  return *registry;
}

class OwningLegacyAdapter : public LegacyAdapter {
 public:
  OwningLegacyAdapter(void* sb) : LegacyAdapter(legacyfs_ops(), sb, "legacyfs"), sb_(sb) {}
  ~OwningLegacyAdapter() override {
    AdapterRegistry().erase(this);
    legacyfs_destroy_super(sb_);
  }

 private:
  void* sb_;
};

}  // namespace

void* legacyfs_create_super(BufferCache* cache, const FsGeometry* geo) {
  auto* sb = new legacy_sb();
  sb->cache = cache;
  sb->geo = *geo;
  // Superblock block.
  BufferHead* bh = get_zeroed_block(cache, kSuperblockBlock);
  SuperblockRec rec;
  rec.geometry = *geo;
  EncodeSuperblock(rec, MutableByteView(bh->data));
  cache->Release(bh);
  // Empty bitmap.
  cache->Release(get_zeroed_block(cache, kBitmapBlock));
  // Zeroed inode table.
  for (uint64_t tb = 0; tb < geo->inode_table_blocks; ++tb) {
    cache->Release(get_zeroed_block(cache, kInodeTableStart + tb));
  }
  // Root inode.
  DiskInode root;
  root.mode = kModeDir;
  root.nlink = 2;
  write_disk_inode(sb, kRootIno, &root);
  cache->SyncAll();
  return sb;
}

void* legacyfs_mount_super(BufferCache* cache) {
  auto r = cache->ReadBlock(kSuperblockBlock);
  if (!r.ok()) {
    return nullptr;
  }
  auto rec = DecodeSuperblock(ByteView(r.value()->data));
  cache->Release(r.value());
  if (!rec.ok()) {
    return nullptr;
  }
  auto* sb = new legacy_sb();
  sb->cache = cache;
  sb->geo = rec.value().geometry;
  return sb;
}

void legacyfs_destroy_super(void* sbp) {
  auto* sb = static_cast<legacy_sb*>(sbp);
  for (auto& [ino, node] : sb->nodes) {
    auto* info = static_cast<legacy_ninfo*>(node->i_private);
    if (info != nullptr) {
      LeakDetector::Get().OnFree(info->leak_ticket);
      delete info;
    }
    delete node;
  }
  delete sb;
}

const LegacyFsOps* legacyfs_ops() { return &kLegacyOps; }

LegacyFaultConfig* legacyfs_faults(void* sbp) {
  return &static_cast<legacy_sb*>(sbp)->faults;
}

std::shared_ptr<FileSystem> MakeLegacyFs(BufferCache& cache, const FsGeometry* geo,
                                         bool format) {
  void* sb = format ? legacyfs_create_super(&cache, geo) : legacyfs_mount_super(&cache);
  if (sb == nullptr) {
    return nullptr;
  }
  auto fs = std::make_shared<OwningLegacyAdapter>(sb);
  AdapterRegistry()[fs.get()] = sb;
  return fs;
}

LegacyFaultConfig* LegacyFaultsOf(FileSystem& fs) {
  auto it = AdapterRegistry().find(&fs);
  SKERN_CHECK_MSG(it != AdapterRegistry().end(), "not a legacyfs adapter");
  return legacyfs_faults(it->second);
}

}  // namespace skern
