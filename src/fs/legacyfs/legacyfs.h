// legacyfs: the C-idiom baseline file system (step 0 of the roadmap).
//
// Deliberately written the way the paper describes Linux fs code:
//   * its native interface is the void*-based LegacyFsOps table;
//   * lookups return node pointers or ERR_PTR-encoded errnos;
//   * fs-private per-node data hangs off LegacyInode::i_private as a void*;
//   * write_begin/write_end pass a cookie through a void** (the §4.2 case);
//   * the i_size locking rule exists only as a comment;
//   * disk access goes through the buffer cache with manual flag management;
//   * no journal — a crash leaves whatever subset of writes happened to be
//     flushed (the E13 contrast with safefs).
//
// The implementation style inside legacyfs.cc intentionally mirrors kernel C
// (snake_case statics, out-params, int errnos) rather than this repository's
// C++ style — it is the "before" exhibit.
//
// LegacyFaultConfig injects the §2 bug classes. Each fault is *memory-safe
// for the host process* (consequences are simulated as the data corruption
// the real bug would cause) but corrupts file-system state exactly the way
// the real bug class would — which is what the detection experiment (E11)
// measures.
#ifndef SKERN_SRC_FS_LEGACYFS_LEGACYFS_H_
#define SKERN_SRC_FS_LEGACYFS_LEGACYFS_H_

#include <memory>

#include "src/block/buffer_cache.h"
#include "src/fs/layout.h"
#include "src/vfs/legacy_ops.h"

namespace skern {

struct LegacyFaultConfig {
  // CWE-843 type confusion: write_end misinterprets the write_begin cookie
  // and smashes i_size with bytes from the wrong type.
  bool type_confuse_write_cookie = false;
  // CWE-476-adjacent: an internal caller omits the IS_ERR check on a lookup
  // result and "dereferences" the error pointer (consequence simulated as
  // garbage data reaching the caller).
  bool errptr_missing_check = false;
  // CWE-362 data race: i_size is updated outside i_lock in a read-yield-write
  // window, losing concurrent updates.
  bool skip_size_lock = false;
  // CWE-401 memory leak: unlink forgets to free the node's private info.
  bool leak_node_on_unlink = false;
  // CWE-415 double free: truncate frees a block twice; the second free
  // corrupts the neighbouring allocation bit.
  bool double_free_block = false;
  // CWE-416 use after free: reads a freed node-info (consequence simulated
  // as a poisoned block pointer leaking stale data).
  bool use_after_free_node = false;
  // CWE-787 out-of-bounds write: dirent name copy runs one byte past the
  // field, clobbering the adjacent entry inside the directory block.
  bool dirent_off_by_one = false;
  // CWE-190/191 integer underflow: truncate-to-zero computes the kept block
  // count as (0 - 1)/N + 1 and frees nothing (space leak).
  bool truncate_underflow = false;
};

// mkfs: formats the device behind `cache` and returns an opaque superblock
// handle (this *is* the legacy idiom; see MakeLegacyFs for the safe wrapper).
void* legacyfs_create_super(BufferCache* cache, const FsGeometry* geo);

// mount: reads an existing image. Returns superblock handle or nullptr.
void* legacyfs_mount_super(BufferCache* cache);

void legacyfs_destroy_super(void* sb);

// The native ops table.
const LegacyFsOps* legacyfs_ops();

// Fault-injection access.
LegacyFaultConfig* legacyfs_faults(void* sb);

// Convenience factory: formats (or mounts, if `format` is false) and wraps
// the result in a LegacyAdapter so it plugs into the modular interface. The
// returned FileSystem owns the superblock.
std::shared_ptr<FileSystem> MakeLegacyFs(BufferCache& cache, const FsGeometry* geo,
                                         bool format);

// Direct access to the fault config through an adapter-wrapped instance.
LegacyFaultConfig* LegacyFaultsOf(FileSystem& fs);

}  // namespace skern

#endif  // SKERN_SRC_FS_LEGACYFS_LEGACYFS_H_
