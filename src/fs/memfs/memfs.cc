#include "src/fs/memfs/memfs.h"

// MemFs is header-only logic over FsModel; this translation unit anchors the
// vtable so the type lands in the skern_fs library.
namespace skern {}
