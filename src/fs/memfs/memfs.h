// memfs: the executable specification *as* an implementation.
//
// §4.4 says a file system "can be modeled as a map from path strings to file
// content bytes". memfs interprets that model directly as a (volatile)
// FileSystem — tmpfs for skern. It has three jobs:
//   * the third drop-in implementation behind the step-1 interface (after
//     legacyfs and safefs), proving the slot's point;
//   * the reference in differential tests: legacyfs, safefs and memfs must
//     agree operation-for-operation because all three refine the same model;
//   * a demonstration that the specification is cheap to execute — the
//     "abstract ... doesn't imply that the implementation is expensive"
//     argument, run in reverse.
//
// Durability: memfs is memory-only. Sync succeeds (there is nothing to make
// durable) and a "crash" simply destroys it, like tmpfs.
#ifndef SKERN_SRC_FS_MEMFS_MEMFS_H_
#define SKERN_SRC_FS_MEMFS_MEMFS_H_

#include "src/spec/fs_model.h"
#include "src/vfs/filesystem.h"

namespace skern {

class MemFs : public FileSystem {
 public:
  MemFs() = default;

  Status Create(const std::string& path) override { return model_.Create(path); }
  Status Mkdir(const std::string& path) override { return model_.Mkdir(path); }
  Status Unlink(const std::string& path) override { return model_.Unlink(path); }
  Status Rmdir(const std::string& path) override { return model_.Rmdir(path); }
  Status Write(const std::string& path, uint64_t offset, ByteView data) override {
    return model_.Write(path, offset, data);
  }
  Result<Bytes> Read(const std::string& path, uint64_t offset, uint64_t length) override {
    return model_.Read(path, offset, length);
  }
  Status Truncate(const std::string& path, uint64_t new_size) override {
    return model_.Truncate(path, new_size);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return model_.Rename(from, to);
  }
  Result<FileAttr> Stat(const std::string& path) override {
    SKERN_ASSIGN_OR_RETURN(ModelAttr attr, model_.Stat(path));
    return FileAttr{attr.is_dir, attr.size};
  }
  Result<std::vector<std::string>> Readdir(const std::string& path) override {
    return model_.Readdir(path);
  }
  Status Sync() override {
    model_.Sync();
    return Status::Ok();
  }
  Status Fsync(const std::string& path) override {
    (void)path;
    model_.Sync();
    return Status::Ok();
  }
  std::string Name() const override { return "memfs"; }

  const FsModel& model() const { return model_; }

 private:
  FsModel model_;
};

}  // namespace skern

#endif  // SKERN_SRC_FS_MEMFS_MEMFS_H_
