#include "src/fs/procfs/procfs.h"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>
#include <string_view>

#include "src/base/log.h"
#include "src/core/landscape.h"
#include "src/core/module.h"
#include "src/core/shim.h"
#include "src/mem/slab.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ownership/ownership.h"
#include "src/spec/fs_model.h"
#include "src/spec/refinement.h"
#include "src/sync/lock_registry.h"

namespace skern {
namespace {

std::string ModulesText() {
  std::ostringstream os;
  for (const auto& info : ModuleRegistry::Get().All()) {
    os << info.name << " " << info.interface << " " << SafetyLevelName(info.level) << " "
       << info.lines_of_code << "\n";
  }
  return os.str();
}

std::string OwnershipText() {
  std::ostringstream os;
  auto& stats = OwnershipStats::Get();
  for (int v = 0; v < static_cast<int>(OwnershipViolation::kCount); ++v) {
    auto violation = static_cast<OwnershipViolation>(v);
    os << OwnershipViolationName(violation) << " " << stats.Count(violation) << "\n";
  }
  os << "total " << stats.Total() << "\n";
  return os.str();
}

std::string RefinementText() {
  std::ostringstream os;
  os << "checks " << RefinementStats::Get().checks() << "\n";
  os << "mismatches " << RefinementStats::Get().mismatch_count() << "\n";
  for (const auto& mismatch : RefinementStats::Get().Mismatches()) {
    os << "  " << mismatch.operation << ": expected " << mismatch.expected << ", got "
       << mismatch.actual << "\n";
  }
  return os.str();
}

std::string ShimsText() {
  std::ostringstream os;
  os << "validations " << ShimStats::Get().validations() << "\n";
  os << "violations " << ShimStats::Get().violation_count() << "\n";
  for (const auto& violation : ShimStats::Get().Violations()) {
    os << "  " << violation.shim << ": " << violation.axiom << "\n";
  }
  return os.str();
}

std::string LocksText() {
  std::ostringstream os;
  os << "order-violations " << LockRegistry::Get().violation_count() << "\n";
  for (const auto& violation : LockRegistry::Get().Violations()) {
    os << "  " << violation.held_name << " -> " << violation.acquired_name << "\n";
  }
  return os.str();
}

// Both readers fold the allocator's internal tallies into the registry
// first, so /metrics' mem.slab.* counters and /slabinfo agree with each
// other on any interleaving of reads.
std::string MetricsText() {
  mem::PublishSlabMetrics();
  return obs::MetricsRegistry::Get().RenderText();
}

std::string SlabinfoText() {
  mem::PublishSlabMetrics();
  return mem::SlabInfoText();
}

// /spans: every per-site span latency histogram (span.<subsys>.<op>[.plane].ns
// plus the .lock_wait_ns attribution histograms), one line each with count and
// tail quantiles. Raw per-plane view; /latency shows the per-op rollup.
std::string SpansText() {
  std::ostringstream os;
  for (const auto& [name, snap] : obs::MetricsRegistry::Get().HistogramSnapshots("span.")) {
    if (snap.count == 0) {
      continue;
    }
    os << name << " count=" << snap.count << " p50=" << snap.p50 << " p95=" << snap.p95
       << " p99=" << snap.p99 << " max=" << snap.max << "\n";
  }
  return os.str();
}

// /latency: per-(subsys.op) latency attribution. Plane-split histograms
// (.fast.ns / .slow.ns) are merged bucket-wise with the unsplit .ns series so
// each operation gets one line of whole-population quantiles; lock-wait
// histograms are attribution detail and stay out of the rollup (see /spans).
std::string LatencyText() {
  struct Merged {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    std::array<uint64_t, obs::Histogram::kBuckets> buckets{};
  };
  std::map<std::string, Merged> by_op;
  for (const auto& [name, snap] : obs::MetricsRegistry::Get().HistogramSnapshots("span.")) {
    std::string_view key = name;
    if (key.ends_with(".lock_wait_ns")) {
      continue;
    }
    key.remove_prefix(std::string_view("span.").size());
    if (key.ends_with(".fast.ns")) {
      key.remove_suffix(std::string_view(".fast.ns").size());
    } else if (key.ends_with(".slow.ns")) {
      key.remove_suffix(std::string_view(".slow.ns").size());
    } else if (key.ends_with(".ns")) {
      key.remove_suffix(std::string_view(".ns").size());
    }
    Merged& m = by_op[std::string(key)];
    m.count += snap.count;
    m.sum += snap.sum;
    m.max = std::max(m.max, snap.max);
    for (size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
      m.buckets[i] += snap.buckets[i];
    }
  }
  std::ostringstream os;
  for (const auto& [op, m] : by_op) {
    if (m.count == 0) {
      continue;
    }
    os << op << " count=" << m.count
       << " p50=" << obs::Histogram::QuantileFromBuckets(m.buckets, m.count, 0.50)
       << " p95=" << obs::Histogram::QuantileFromBuckets(m.buckets, m.count, 0.95)
       << " p99=" << obs::Histogram::QuantileFromBuckets(m.buckets, m.count, 0.99)
       << " max=" << m.max << "\n";
  }
  return os.str();
}

// /contention: the top-N lock classes by total wall time spent blocked
// (lockstat's "waittime-total" sort), with wait-time tail quantiles so a hot
// lock with rare long stalls is distinguishable from uniform churn.
std::string ContentionText() {
  auto top = LockRegistry::Get().TopContended(10);
  std::ostringstream os;
  os << "classes " << top.size() << "\n";
  for (const auto& c : top) {
    os << c.name << " count=" << c.count << " total_ns=" << c.total_wait_ns
       << " max_ns=" << c.max_wait_ns << " p50=" << c.p50_ns << " p95=" << c.p95_ns
       << " p99=" << c.p99_ns << "\n";
  }
  return os.str();
}

std::string TraceText() {
  auto& session = obs::TraceSession::Get();
  std::ostringstream os;
  os << "session " << (session.active() ? "active" : "stopped") << "\n";
  os << "dropped " << session.dropped() << "\n";
  // Peek, don't consume: reading /trace should not race collection away from
  // a concurrent drainer.
  os << obs::RenderTraceText(session.Drain(/*consume=*/false));
  return os.str();
}

std::string LogText() {
  std::ostringstream os;
  os << "level " << LogLevelName(GetLogLevel()) << "\n";
  for (auto level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError}) {
    os << LogLevelName(level) << " " << LogCount(level) << "\n";
  }
  return os.str();
}

}  // namespace

ProcFs::ProcFs() {
  AddEntry("modules", ModulesText);
  AddEntry("ownership", OwnershipText);
  AddEntry("refinement", RefinementText);
  AddEntry("shims", ShimsText);
  AddEntry("locks", LocksText);
  AddEntry("landscape", [] { return RenderLandscapeTable(); });
  AddEntry("metrics", MetricsText);
  AddEntry("trace", TraceText);
  AddEntry("log", LogText);
  AddEntry("slabinfo", SlabinfoText);
  AddEntry("spans", SpansText);
  AddEntry("latency", LatencyText);
  AddEntry("contention", ContentionText);
}

void ProcFs::AddEntry(const std::string& name, std::function<std::string()> generator) {
  entries_[name] = std::move(generator);
}

const std::function<std::string()>* ProcFs::Find(const std::string& path,
                                                 std::string* normalized_out) const {
  auto norm = specpath::Normalize(path);
  if (!norm.ok()) {
    return nullptr;
  }
  *normalized_out = norm.value();
  if (norm.value() == "/") {
    return nullptr;
  }
  auto it = entries_.find(norm.value().substr(1));
  return it == entries_.end() ? nullptr : &it->second;
}

Result<Bytes> ProcFs::Read(const std::string& path, uint64_t offset, uint64_t length) {
  std::string normalized;
  const auto* generator = Find(path, &normalized);
  if (generator == nullptr) {
    if (normalized == "/") {
      return Errno::kEISDIR;
    }
    return normalized.empty() ? Errno::kEINVAL : Errno::kENOENT;
  }
  std::string text = (*generator)();
  if (offset >= text.size()) {
    return Bytes{};
  }
  uint64_t take = std::min<uint64_t>(length, text.size() - offset);
  return CopyBytes(reinterpret_cast<const uint8_t*>(text.data()) + offset, take);
}

Result<FileAttr> ProcFs::Stat(const std::string& path) {
  std::string normalized;
  const auto* generator = Find(path, &normalized);
  if (generator == nullptr) {
    if (normalized == "/") {
      return FileAttr{true, 0};
    }
    return normalized.empty() ? Errno::kEINVAL : Errno::kENOENT;
  }
  return FileAttr{false, (*generator)().size()};
}

Result<std::vector<std::string>> ProcFs::Readdir(const std::string& path) {
  std::string normalized;
  const auto* generator = Find(path, &normalized);
  if (generator != nullptr) {
    return Errno::kENOTDIR;
  }
  if (normalized != "/") {
    return normalized.empty() ? Errno::kEINVAL : Errno::kENOENT;
  }
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, gen] : entries_) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace skern
