// procfs: a synthetic, read-only file system exposing the safety framework's
// live state — the /proc idiom applied to the incremental-safety machinery.
//
//   /modules     the module registry: name, interface, rung, LoC
//   /ownership   ownership-violation counters by kind
//   /refinement  refinement checks and mismatches
//   /shims       axiomatic-shim validations and violations
//   /locks       lock-order violations recorded by the registry
//   /landscape   the Figure 1 table
//
// Files are generated on every read, so `cat /proc/ownership` always shows
// current counters. Also the fourth drop-in FileSystem implementation, and
// the read-only error-path exerciser (every mutation returns kEROFS).
#ifndef SKERN_SRC_FS_PROCFS_PROCFS_H_
#define SKERN_SRC_FS_PROCFS_PROCFS_H_

#include <functional>
#include <map>
#include <string>

#include "src/vfs/filesystem.h"

namespace skern {

class ProcFs : public FileSystem {
 public:
  // Registers the built-in entries listed above.
  ProcFs();

  // Adds (or replaces) a synthetic file; the generator runs per read.
  void AddEntry(const std::string& name, std::function<std::string()> generator);

  Status Create(const std::string& path) override { return ReadOnly(path); }
  Status Mkdir(const std::string& path) override { return ReadOnly(path); }
  Status Unlink(const std::string& path) override { return ReadOnly(path); }
  Status Rmdir(const std::string& path) override { return ReadOnly(path); }
  Status Write(const std::string& path, uint64_t, ByteView) override {
    return ReadOnly(path);
  }
  Status Truncate(const std::string& path, uint64_t) override { return ReadOnly(path); }
  Status Rename(const std::string& from, const std::string&) override {
    return ReadOnly(from);
  }
  Status Sync() override { return Status::Ok(); }
  Status Fsync(const std::string&) override { return Status::Ok(); }

  Result<Bytes> Read(const std::string& path, uint64_t offset, uint64_t length) override;
  Result<FileAttr> Stat(const std::string& path) override;
  Result<std::vector<std::string>> Readdir(const std::string& path) override;
  std::string Name() const override { return "procfs"; }

 private:
  static Status ReadOnly(const std::string&) { return Status::Error(Errno::kEROFS); }
  // Resolves a normalized "/name" to its generator, or null.
  const std::function<std::string()>* Find(const std::string& path,
                                           std::string* normalized_out) const;

  std::map<std::string, std::function<std::string()>> entries_;
};

}  // namespace skern

#endif  // SKERN_SRC_FS_PROCFS_PROCFS_H_
