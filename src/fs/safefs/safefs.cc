#include "src/fs/safefs/safefs.h"

#include <algorithm>
#include <chrono>

#include "src/base/cred.h"
#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/spec/fs_model.h"

namespace skern {
namespace {

// Blocks prefetched ahead of a detected sequential stream.
constexpr uint64_t kReadAheadBlocks = 8;

// Dirty-cell count that wakes the background flusher. Kept well above a hot
// working set's size: draining buys no durability (only Sync/Fsync journal),
// so an early drain just discards the coalescing a re-dirtied cell would have
// enjoyed. The flusher exists to bound memory, not to push bytes eagerly.
constexpr uint64_t kWbFlushWakeCells = 2048;
// Dirty-cell cap: a fast write pushing past this drains inline
// (backpressure), bounding write-back memory at ~cap * kBlockSize.
constexpr uint64_t kWbMaxDirtyCells = 8192;

// Splits a normalized absolute path into components ("/a/b" -> {"a","b"}).
std::vector<std::string> Components(const std::string& normalized) {
  std::vector<std::string> parts;
  size_t i = 1;
  while (i < normalized.size()) {
    size_t next = normalized.find('/', i);
    if (next == std::string::npos) {
      next = normalized.size();
    }
    parts.push_back(normalized.substr(i, next - i));
    i = next + 1;
  }
  return parts;
}

uint64_t BlocksForSize(uint64_t size) { return (size + kBlockSize - 1) / kBlockSize; }

}  // namespace

SafeFs::SafeFs(BlockDevice& device, const FsGeometry& geometry)
    : device_(device),
      geo_(geometry),
      journal_(device, geometry.journal_start, geometry.journal_blocks),
      home_device_(journal_, device),
      bitmap_(kBlockSize, 0) {
  // SafeFs opts into lazy checkpointing: commits append to the journal area
  // (two barriers) and home blocks catch up when the area fills, at
  // recovery, or at an explicit checkpoint. All content reads below the
  // staged plane go through home_device_ / ReadHome so the overlay is
  // always visible.
  journal_.SetLazyCheckpoint(true);
  // Size the read cache to the data area (bounded): at the scales this
  // substrate runs (RAM disks up to a few thousand blocks) a warm working
  // set should never thrash its own LRU.
  // A generous shard hint: this cache is read-mostly and shared by every
  // concurrent fast reader, so shard-lock collisions are pure overhead.
  read_cache_ = std::make_unique<BufferCache>(
      home_device_, std::clamp<size_t>(geometry.data_blocks, 64, 4096),
      /*shard_hint=*/64);
  // Eagerly register the data-plane counters so procfs /metrics lists them
  // even before the first fast-path operation.
  SKERN_COUNTER_ADD("safefs.io.fast_reads", 0);
  SKERN_COUNTER_ADD("safefs.io.slow_reads", 0);
  SKERN_COUNTER_ADD("safefs.io.fast_writes", 0);
  SKERN_COUNTER_ADD("safefs.io.slow_writes", 0);
  SKERN_COUNTER_ADD("safefs.readahead.issued", 0);
  SKERN_COUNTER_ADD("safefs.readahead.hits", 0);
  SKERN_COUNTER_ADD("safefs.blockmap.hits", 0);
  SKERN_COUNTER_ADD("safefs.blockmap.misses", 0);
  SKERN_COUNTER_ADD("safefs.writeback.fast_writes", 0);
  SKERN_COUNTER_ADD("safefs.writeback.drains", 0);
  SKERN_COUNTER_ADD("safefs.writeback.drained_cells", 0);
  SKERN_GAUGE_SET("safefs.writeback.dirty_cells", 0);
  SKERN_COUNTER_ADD("sync.rwlock.contended", 0);
  // The background flusher moves write-back state into the staged plane when
  // enough accumulates; it never journals, so durability stays exactly
  // "what the last Sync/Fsync made durable".
  wb_flusher_ = KThread("safefs-wb", [this](const std::atomic<bool>& stop) {
    while (!stop.load(std::memory_order_acquire)) {
      wb_event_.ConsumeFor(std::chrono::milliseconds(10));
      if (stop.load(std::memory_order_acquire)) {
        break;
      }
      if (wb_dirty_cells_.load(std::memory_order_acquire) >= kWbFlushWakeCells) {
        MutexGuard guard(mutex_);
        (void)DrainWriteBackLocked();
      }
    }
  });
}

Result<std::shared_ptr<SafeFs>> SafeFs::Format(BlockDevice& device, uint64_t inode_count,
                                               uint64_t journal_blocks) {
  if (journal_blocks < 4) {
    return Errno::kEINVAL;
  }
  FsGeometry geo = MakeGeometry(device.BlockCount(), inode_count, journal_blocks);
  auto fs = std::shared_ptr<SafeFs>(new SafeFs(device, geo));
  SKERN_RETURN_IF_ERROR(fs->journal_.Format());

  // Superblock is written once at format time, outside the journal.
  Bytes sb_block(kBlockSize, 0);
  SuperblockRec sb;
  sb.geometry = geo;
  EncodeSuperblock(sb, MutableByteView(sb_block));
  SKERN_RETURN_IF_ERROR(device.WriteBlock(kSuperblockBlock, ByteView(sb_block)));
  SKERN_RETURN_IF_ERROR(device.Flush());

  // Root directory: root-owned, 0755 — the mkfs defaults every Unix expects.
  DiskInode root;
  root.mode = kModeDir | kDefaultDirPerm;
  root.nlink = 2;
  root.uid = 0;
  root.gid = 0;
  {
    MutexGuard guard(fs->mutex_);
    fs->inodes_[kRootIno] = root;
    fs->dirty_inos_.insert(kRootIno);
    fs->bitmap_dirty_ = true;
    SKERN_RETURN_IF_ERROR(fs->SyncLocked());
    fs->RecomputeAvailLocked();
  }
  return fs;
}

Result<std::shared_ptr<SafeFs>> SafeFs::Mount(BlockDevice& device) {
  Bytes sb_block(kBlockSize, 0);
  SKERN_RETURN_IF_ERROR(device.ReadBlock(kSuperblockBlock, MutableByteView(sb_block)));
  SKERN_ASSIGN_OR_RETURN(SuperblockRec sb, DecodeSuperblock(ByteView(sb_block)));
  if (sb.geometry.journal_blocks < 4 ||
      sb.geometry.journal_start + sb.geometry.journal_blocks > device.BlockCount()) {
    return Errno::kEINVAL;  // not a safefs image
  }
  auto fs = std::shared_ptr<SafeFs>(new SafeFs(device, sb.geometry));

  // Crash recovery precedes any metadata read.
  SKERN_RETURN_IF_ERROR(fs->journal_.Recover());

  // No other thread can reach a file system that is still mounting, but the
  // metadata images are guarded fields; hold the lock for the load.
  MutexGuard guard(fs->mutex_);
  SKERN_RETURN_IF_ERROR(device.ReadBlock(kBitmapBlock, MutableByteView(fs->bitmap_)));
  for (uint64_t tb = 0; tb < sb.geometry.inode_table_blocks; ++tb) {
    Bytes block(kBlockSize, 0);
    SKERN_RETURN_IF_ERROR(device.ReadBlock(kInodeTableStart + tb, MutableByteView(block)));
    for (uint32_t slot = 0; slot < kInodesPerBlock; ++slot) {
      uint64_t ino = tb * kInodesPerBlock + slot + 1;
      if (ino > sb.geometry.inode_count) {
        break;
      }
      DiskInode inode = DecodeInode(ByteView(block), slot);
      if (inode.InUse()) {
        if (!inode.IsDir()) {
          fs->data_state_.emplace(ino, std::make_shared<InodeDataState>(ino));
        }
        fs->inodes_[ino] = inode;
      }
    }
  }
  fs->RecomputeAvailLocked();
  return fs;
}

// --- block staging ---

Result<Bytes> SafeFs::LoadBlock(uint64_t block) const {
  auto it = staged_.find(block);
  if (it != staged_.end()) {
    auto lend = it->second.LendShared();  // model 3: concurrent readers, no copy of rights
    return lend.Get();
  }
  Bytes content(kBlockSize, 0);
  SKERN_RETURN_IF_ERROR(journal_.ReadHome(block, MutableByteView(content)));
  return content;
}

Result<Owned<Bytes>*> SafeFs::StageBlock(uint64_t block, bool zero_fill) {
  auto it = staged_.find(block);
  if (it != staged_.end()) {
    return &it->second;
  }
  Bytes content(kBlockSize, 0);
  if (!zero_fill) {
    SKERN_RETURN_IF_ERROR(journal_.ReadHome(block, MutableByteView(content)));
  }
  auto [inserted, ok] = staged_.emplace(block, Owned<Bytes>(std::move(content)));
  SKERN_CHECK(ok);
  // The staged cell now supersedes the device image; a read-cache copy of
  // the old content must not satisfy any later fast read.
  read_cache_->Invalidate(block);
  return &inserted->second;
}

void SafeFs::DropStaged(uint64_t block) { staged_.erase(block); }

// --- allocator ---

Result<uint64_t> SafeFs::AllocDataBlock() {
  uint64_t start = alloc_policy_ == AllocPolicy::kNextFit ? alloc_hint_ : 0;
  for (uint64_t probe = 0; probe < geo_.data_blocks; ++probe) {
    uint64_t i = (start + probe) % geo_.data_blocks;
    uint8_t& byte = bitmap_[i / 8];
    uint8_t mask = static_cast<uint8_t>(1u << (i % 8));
    if ((byte & mask) == 0) {
      byte |= mask;
      bitmap_dirty_ = true;
      ++stats_.blocks_allocated;
      alloc_hint_ = (i + 1) % geo_.data_blocks;
      if (wb_replay_active_) {
        // A drain allocation consumes a reservation that already left
        // avail_; the drain refunds any over-reservation afterwards.
        ++wb_replay_allocs_;
      } else {
        avail_.fetch_sub(1, std::memory_order_relaxed);
      }
      return geo_.data_start + i;
    }
  }
  return Errno::kENOSPC;
}

void SafeFs::FreeDataBlock(uint64_t block) {
  SKERN_CHECK(block >= geo_.data_start && block < geo_.data_start + geo_.data_blocks);
  uint64_t i = block - geo_.data_start;
  bitmap_[i / 8] &= static_cast<uint8_t>(~(1u << (i % 8)));
  bitmap_dirty_ = true;
  ++stats_.blocks_freed;
  avail_.fetch_add(1, std::memory_order_relaxed);
  DropStaged(block);
  // The block may be reallocated to another file before the next sync; its
  // old content must leave the read cache with it.
  read_cache_->Invalidate(block);
}

void SafeFs::SetLookupAcceleration(bool enabled) {
  MutexGuard guard(mutex_);
  accel_enabled_ = enabled;
  // Either direction starts from a clean slate: stale acceleration state
  // must not survive a disable/enable cycle.
  dcache_.Clear();
  dir_index_.clear();
}

uint64_t SafeFs::FreeDataBlocks() const {
  MutexGuard guard(mutex_);
  uint64_t free = 0;
  for (uint64_t i = 0; i < geo_.data_blocks; ++i) {
    if ((bitmap_[i / 8] & (1u << (i % 8))) == 0) {
      ++free;
    }
  }
  return free;
}

void SafeFs::RecomputeAvailLocked() {
  int64_t free = 0;
  for (uint64_t i = 0; i < geo_.data_blocks; ++i) {
    if ((bitmap_[i / 8] & (1u << (i % 8))) == 0) {
      ++free;
    }
  }
  avail_.store(free, std::memory_order_relaxed);
}

bool SafeFs::ReserveBlocks(uint64_t n) {
  int64_t cur = avail_.load(std::memory_order_relaxed);
  while (cur >= static_cast<int64_t>(n)) {
    if (avail_.compare_exchange_weak(cur, cur - static_cast<int64_t>(n),
                                     std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void SafeFs::SetWriteBack(bool enabled) {
  if (!enabled) {
    // Disabling must not strand buffered writes: drain first, then stop
    // accepting new fast writes.
    MutexGuard guard(mutex_);
    (void)DrainWriteBackLocked();
    writeback_enabled_.store(false, std::memory_order_relaxed);
    return;
  }
  writeback_enabled_.store(true, std::memory_order_relaxed);
}

// --- inodes ---

Result<uint64_t> SafeFs::AllocInode(uint32_t mode) {
  for (uint64_t probe = 0; probe < geo_.inode_count; ++probe) {
    uint64_t ino = (next_ino_hint_ + probe - 1) % geo_.inode_count + 1;
    if (inodes_.count(ino) == 0) {
      DiskInode inode;
      inode.mode = mode;
      inode.nlink = (mode & kModeDir) != 0 ? 2 : 1;
      // New files belong to whoever the current thread is running as.
      inode.uid = CurrentCred().uid;
      inode.gid = CurrentCred().gid;
      inodes_[ino] = inode;
      dirty_inos_.insert(ino);
      cleared_inos_.erase(ino);
      next_ino_hint_ = ino + 1;
      if ((mode & kModeDir) == 0) {
        data_state_.emplace(ino, std::make_shared<InodeDataState>(ino));
      }
      return ino;
    }
  }
  return Errno::kENOSPC;
}

DiskInode& SafeFs::InodeRef(uint64_t ino) {
  auto it = inodes_.find(ino);
  SKERN_CHECK_MSG(it != inodes_.end(), "InodeRef on free inode");
  return it->second;
}

void SafeFs::MarkInodeDirty(uint64_t ino) { dirty_inos_.insert(ino); }

void SafeFs::FreeInode(uint64_t ino) {
  inodes_.erase(ino);
  dirty_inos_.erase(ino);
  cleared_inos_.insert(ino);
  // A freed directory's name index must die with it: the inode number can be
  // reallocated, and the new directory starts empty. (Dentry entries keyed
  // on the freed ino are already safe — a directory is only freed once every
  // entry removal has passed through DirRemoveEntry, which overwrites the
  // cached entry with a negative one.)
  dir_index_.erase(ino);
  // A freed file's data state becomes a dead husk: handles still holding the
  // shared_ptr bounce off `dead`, revalidate, and fail like a fresh walk.
  // Taking the write lock here also fences any in-flight fast reader out
  // before the caller's block frees can take effect.
  auto it = data_state_.find(ino);
  if (it != data_state_.end()) {
    std::shared_ptr<InodeDataState> ds = it->second;
    data_state_.erase(it);
    WriteGuard guard(ds->rwlock);
    ds->dead = true;
    ds->warmed = false;
    ds->block_map.clear();
    ds->cached_size = 0;
  }
  ns_generation_.fetch_add(1, std::memory_order_release);
}

// --- file block mapping ---

Result<uint64_t> SafeFs::MapBlock(const DiskInode& inode, uint64_t index) const {
  if (index < kDirectBlocks) {
    return inode.direct[index];
  }
  uint64_t ii = index - kDirectBlocks;
  if (ii >= kPointersPerBlock) {
    return Errno::kEFBIG;
  }
  if (inode.indirect == 0) {
    return static_cast<uint64_t>(0);
  }
  SKERN_ASSIGN_OR_RETURN(Bytes ind, LoadBlock(inode.indirect));
  return LayoutGetU64(ByteView(ind), ii * 8);
}

Result<uint64_t> SafeFs::MapBlockForWrite(uint64_t ino, uint64_t index) {
  DiskInode& inode = InodeRef(ino);
  if (index < kDirectBlocks) {
    if (inode.direct[index] == 0) {
      SKERN_ASSIGN_OR_RETURN(uint64_t block, AllocDataBlock());
      SKERN_ASSIGN_OR_RETURN(Owned<Bytes> * cell, StageBlock(block, /*zero_fill=*/true));
      (void)cell;
      inode.direct[index] = block;
      MarkInodeDirty(ino);
    }
    return inode.direct[index];
  }
  uint64_t ii = index - kDirectBlocks;
  if (ii >= kPointersPerBlock) {
    return Errno::kEFBIG;
  }
  if (inode.indirect == 0) {
    SKERN_ASSIGN_OR_RETURN(uint64_t iblock, AllocDataBlock());
    SKERN_ASSIGN_OR_RETURN(Owned<Bytes> * cell, StageBlock(iblock, /*zero_fill=*/true));
    (void)cell;
    inode.indirect = iblock;
    MarkInodeDirty(ino);
  }
  SKERN_ASSIGN_OR_RETURN(Owned<Bytes> * ind_cell, StageBlock(inode.indirect, false));
  uint64_t mapped;
  {
    auto lend = ind_cell->LendShared();
    mapped = LayoutGetU64(ByteView(lend.Get()), ii * 8);
  }
  if (mapped == 0) {
    SKERN_ASSIGN_OR_RETURN(uint64_t block, AllocDataBlock());
    SKERN_ASSIGN_OR_RETURN(Owned<Bytes> * dcell, StageBlock(block, /*zero_fill=*/true));
    (void)dcell;
    // Model 2: exclusive mutate rights on the indirect block for the update.
    auto lend = ind_cell->LendExclusive();
    LayoutPutU64(MutableByteView(lend.Get()), ii * 8, block);
    mapped = block;
  }
  return mapped;
}

Status SafeFs::FreeBlocksFrom(uint64_t ino, uint64_t first_kept) {
  DiskInode& inode = InodeRef(ino);
  uint64_t old_blocks = BlocksForSize(inode.size);
  for (uint64_t index = first_kept; index < old_blocks; ++index) {
    SKERN_ASSIGN_OR_RETURN(uint64_t block, MapBlock(inode, index));
    if (block == 0) {
      continue;  // hole
    }
    FreeDataBlock(block);
    if (index < kDirectBlocks) {
      inode.direct[index] = 0;
    } else if (inode.indirect != 0) {
      SKERN_ASSIGN_OR_RETURN(Owned<Bytes> * ind_cell, StageBlock(inode.indirect, false));
      auto lend = ind_cell->LendExclusive();
      LayoutPutU64(MutableByteView(lend.Get()), (index - kDirectBlocks) * 8, 0);
    }
  }
  if (first_kept <= kDirectBlocks && inode.indirect != 0 && old_blocks > kDirectBlocks) {
    FreeDataBlock(inode.indirect);
    inode.indirect = 0;
  }
  MarkInodeDirty(ino);
  return Status::Ok();
}

// --- directories ---

Result<SafeFs::WalkResult> SafeFs::Walk(const std::string& normalized) const {
  WalkResult result;
  if (normalized == "/") {
    result.ino = kRootIno;
    return result;
  }
  std::vector<std::string> parts = Components(normalized);
  uint64_t cur = kRootIno;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    const DiskInode& node = inodes_.at(cur);
    if (!node.IsDir()) {
      return Errno::kENOTDIR;
    }
    SKERN_ASSIGN_OR_RETURN(uint64_t child, DirLookup(cur, parts[i]));
    if (child == kInvalidIno) {
      return Errno::kENOENT;
    }
    cur = child;
  }
  const DiskInode& parent = inodes_.at(cur);
  if (!parent.IsDir()) {
    return Errno::kENOTDIR;
  }
  result.parent_ino = cur;
  result.leaf = parts.back();
  SKERN_ASSIGN_OR_RETURN(result.ino, DirLookup(cur, result.leaf));
  return result;
}

// Lazily indexes a directory: one full scan (the price the old linear lookup
// paid on *every* probe), then every later lookup/insert/remove is O(1).
Result<SafeFs::DirIndex*> SafeFs::EnsureDirIndex(uint64_t dir_ino) const {
  auto hit = dir_index_.find(dir_ino);
  if (hit != dir_index_.end()) {
    return &hit->second;
  }
  const DiskInode& dir = inodes_.at(dir_ino);
  DirIndex index;
  uint64_t blocks = BlocksForSize(dir.size);
  for (uint64_t bi = 0; bi < blocks; ++bi) {
    SKERN_ASSIGN_OR_RETURN(uint64_t block, MapBlock(dir, bi));
    if (block == 0) {
      continue;  // hole: no slots to use (the linear scan skipped it too)
    }
    SKERN_ASSIGN_OR_RETURN(Bytes content, LoadBlock(block));
    for (uint32_t slot = 0; slot < kDirentsPerBlock; ++slot) {
      Dirent entry = DecodeDirent(ByteView(content), slot);
      uint64_t linear = bi * kDirentsPerBlock + slot;
      if (entry.ino == kInvalidIno) {
        index.free_slots.insert(linear);
      } else {
        index.by_name.emplace(std::move(entry.name),
                              DirSlot{entry.ino, block, linear});
      }
    }
  }
  auto [pos, inserted] = dir_index_.emplace(dir_ino, std::move(index));
  SKERN_CHECK(inserted);
  return &pos->second;
}

Result<uint64_t> SafeFs::DirLookup(uint64_t dir_ino, const std::string& name) const {
  if (!accel_enabled_) {
    return DirLookupScan(dir_ino, name);
  }
  DentryCache::LookupResult cached = dcache_.Lookup(dir_ino, name);
  if (cached.outcome == DentryCache::Outcome::kPositive) {
    return cached.child_ino;
  }
  if (cached.outcome == DentryCache::Outcome::kNegative) {
    return kInvalidIno;
  }
  SKERN_ASSIGN_OR_RETURN(DirIndex * index, EnsureDirIndex(dir_ino));
  auto it = index->by_name.find(name);
  if (it == index->by_name.end()) {
    dcache_.InsertNegative(dir_ino, name);
    return kInvalidIno;
  }
  dcache_.InsertPositive(dir_ino, name, it->second.ino);
  return it->second.ino;
}

Result<uint64_t> SafeFs::DirLookupScan(uint64_t dir_ino, const std::string& name) const {
  const DiskInode& dir = inodes_.at(dir_ino);
  uint64_t blocks = BlocksForSize(dir.size);
  for (uint64_t index = 0; index < blocks; ++index) {
    SKERN_ASSIGN_OR_RETURN(uint64_t block, MapBlock(dir, index));
    if (block == 0) {
      continue;
    }
    SKERN_ASSIGN_OR_RETURN(Bytes content, LoadBlock(block));
    for (uint32_t slot = 0; slot < kDirentsPerBlock; ++slot) {
      Dirent entry = DecodeDirent(ByteView(content), slot);
      if (entry.ino != kInvalidIno && entry.name == name) {
        return entry.ino;
      }
    }
  }
  return kInvalidIno;
}

Status SafeFs::DirAddEntry(uint64_t dir_ino, const std::string& name, uint64_t ino) {
  if (name.size() > kMaxNameLen) {
    return Status::Error(Errno::kENAMETOOLONG);
  }
  DiskInode& dir = InodeRef(dir_ino);
  uint64_t blocks = BlocksForSize(dir.size);
  if (accel_enabled_) {
    SKERN_ASSIGN_OR_RETURN(DirIndex * index, EnsureDirIndex(dir_ino));
    if (!index->free_slots.empty()) {
      // Lowest free slot — identical placement to the linear scan below, so
      // accelerated and plain runs write bit-identical directory blocks.
      uint64_t linear = *index->free_slots.begin();
      SKERN_ASSIGN_OR_RETURN(uint64_t block, MapBlock(dir, linear / kDirentsPerBlock));
      SKERN_CHECK_MSG(block != 0, "free dirent slot in an unmapped block");
      SKERN_ASSIGN_OR_RETURN(Owned<Bytes> * cell, StageBlock(block, false));
      {
        auto lend = cell->LendExclusive();
        EncodeDirent(Dirent{ino, name}, MutableByteView(lend.Get()),
                     static_cast<uint32_t>(linear % kDirentsPerBlock));
      }
      index->free_slots.erase(index->free_slots.begin());
      index->by_name.insert_or_assign(name, DirSlot{ino, block, linear});
      dcache_.InsertPositive(dir_ino, name, ino);
      ns_generation_.fetch_add(1, std::memory_order_release);
      return Status::Ok();
    }
    // Directory full: extend by one block. Slot 0 takes the entry; the rest
    // of the fresh block becomes the new free pool.
    SKERN_ASSIGN_OR_RETURN(uint64_t abs, MapBlockForWrite(dir_ino, blocks));
    SKERN_ASSIGN_OR_RETURN(Owned<Bytes> * cell, StageBlock(abs, false));
    {
      auto lend = cell->LendExclusive();
      EncodeDirent(Dirent{ino, name}, MutableByteView(lend.Get()), 0);
    }
    dir.size = (blocks + 1) * kBlockSize;
    MarkInodeDirty(dir_ino);
    uint64_t base = blocks * kDirentsPerBlock;
    index->by_name.insert_or_assign(name, DirSlot{ino, abs, base});
    for (uint32_t slot = 1; slot < kDirentsPerBlock; ++slot) {
      index->free_slots.insert(base + slot);
    }
    dcache_.InsertPositive(dir_ino, name, ino);
    ns_generation_.fetch_add(1, std::memory_order_release);
    return Status::Ok();
  }
  // First free slot wins.
  for (uint64_t index = 0; index < blocks; ++index) {
    SKERN_ASSIGN_OR_RETURN(uint64_t block, MapBlock(dir, index));
    if (block == 0) {
      continue;
    }
    SKERN_ASSIGN_OR_RETURN(Bytes content, LoadBlock(block));
    for (uint32_t slot = 0; slot < kDirentsPerBlock; ++slot) {
      if (DecodeDirent(ByteView(content), slot).ino == kInvalidIno) {
        SKERN_ASSIGN_OR_RETURN(Owned<Bytes> * cell, StageBlock(block, false));
        auto lend = cell->LendExclusive();
        EncodeDirent(Dirent{ino, name}, MutableByteView(lend.Get()), slot);
        ns_generation_.fetch_add(1, std::memory_order_release);
        return Status::Ok();
      }
    }
  }
  // Extend the directory by one block.
  SKERN_ASSIGN_OR_RETURN(uint64_t abs, MapBlockForWrite(dir_ino, blocks));
  SKERN_ASSIGN_OR_RETURN(Owned<Bytes> * cell, StageBlock(abs, false));
  {
    auto lend = cell->LendExclusive();
    EncodeDirent(Dirent{ino, name}, MutableByteView(lend.Get()), 0);
  }
  dir.size = (blocks + 1) * kBlockSize;
  MarkInodeDirty(dir_ino);
  ns_generation_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

Status SafeFs::DirRemoveEntry(uint64_t dir_ino, const std::string& name) {
  if (accel_enabled_) {
    SKERN_ASSIGN_OR_RETURN(DirIndex * index, EnsureDirIndex(dir_ino));
    auto it = index->by_name.find(name);
    if (it == index->by_name.end()) {
      dcache_.InsertNegative(dir_ino, name);
      return Status::Error(Errno::kENOENT);
    }
    const DirSlot slot = it->second;
    SKERN_ASSIGN_OR_RETURN(Owned<Bytes> * cell, StageBlock(slot.block, false));
    {
      auto lend = cell->LendExclusive();
      EncodeDirent(Dirent{kInvalidIno, ""}, MutableByteView(lend.Get()),
                   static_cast<uint32_t>(slot.linear % kDirentsPerBlock));
    }
    index->by_name.erase(it);
    index->free_slots.insert(slot.linear);
    // The negative entry is the invalidation: the next lookup of this name
    // must miss, and may as well miss cheaply.
    dcache_.InsertNegative(dir_ino, name);
    ns_generation_.fetch_add(1, std::memory_order_release);
    return Status::Ok();
  }
  const DiskInode& dir = inodes_.at(dir_ino);
  uint64_t blocks = BlocksForSize(dir.size);
  for (uint64_t index = 0; index < blocks; ++index) {
    SKERN_ASSIGN_OR_RETURN(uint64_t block, MapBlock(dir, index));
    if (block == 0) {
      continue;
    }
    SKERN_ASSIGN_OR_RETURN(Bytes content, LoadBlock(block));
    for (uint32_t slot = 0; slot < kDirentsPerBlock; ++slot) {
      Dirent entry = DecodeDirent(ByteView(content), slot);
      if (entry.ino != kInvalidIno && entry.name == name) {
        SKERN_ASSIGN_OR_RETURN(Owned<Bytes> * cell, StageBlock(block, false));
        auto lend = cell->LendExclusive();
        EncodeDirent(Dirent{kInvalidIno, ""}, MutableByteView(lend.Get()), slot);
        ns_generation_.fetch_add(1, std::memory_order_release);
        return Status::Ok();
      }
    }
  }
  return Status::Error(Errno::kENOENT);
}

Result<std::vector<Dirent>> SafeFs::DirEntries(uint64_t dir_ino) const {
  const DiskInode& dir = inodes_.at(dir_ino);
  std::vector<Dirent> entries;
  uint64_t blocks = BlocksForSize(dir.size);
  for (uint64_t index = 0; index < blocks; ++index) {
    SKERN_ASSIGN_OR_RETURN(uint64_t block, MapBlock(dir, index));
    if (block == 0) {
      continue;
    }
    SKERN_ASSIGN_OR_RETURN(Bytes content, LoadBlock(block));
    for (uint32_t slot = 0; slot < kDirentsPerBlock; ++slot) {
      Dirent entry = DecodeDirent(ByteView(content), slot);
      if (entry.ino != kInvalidIno) {
        entries.push_back(std::move(entry));
      }
    }
  }
  return entries;
}

Result<bool> SafeFs::DirIsEmpty(uint64_t dir_ino) const {
  SKERN_ASSIGN_OR_RETURN(std::vector<Dirent> entries, DirEntries(dir_ino));
  return entries.empty();
}

// --- FileSystem operations ---

Status SafeFs::Create(const std::string& path) {
  MutexGuard guard(mutex_);
  ++stats_.ops;
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  if (p == "/") {
    return Status::Error(Errno::kEEXIST);
  }
  SKERN_ASSIGN_OR_RETURN(WalkResult w, Walk(p));
  if (w.ino != kInvalidIno) {
    return Status::Error(Errno::kEEXIST);
  }
  SKERN_ASSIGN_OR_RETURN(uint64_t ino, AllocInode(kModeReg | kDefaultFilePerm));
  Status s = DirAddEntry(w.parent_ino, w.leaf, ino);
  if (!s.ok()) {
    FreeInode(ino);
    return s;
  }
  return Status::Ok();
}

Status SafeFs::Mkdir(const std::string& path) {
  MutexGuard guard(mutex_);
  ++stats_.ops;
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  if (p == "/") {
    return Status::Error(Errno::kEEXIST);
  }
  SKERN_ASSIGN_OR_RETURN(WalkResult w, Walk(p));
  if (w.ino != kInvalidIno) {
    return Status::Error(Errno::kEEXIST);
  }
  SKERN_ASSIGN_OR_RETURN(uint64_t ino, AllocInode(kModeDir | kDefaultDirPerm));
  Status s = DirAddEntry(w.parent_ino, w.leaf, ino);
  if (!s.ok()) {
    FreeInode(ino);
    return s;
  }
  InodeRef(w.parent_ino).nlink += 1;
  MarkInodeDirty(w.parent_ino);
  return Status::Ok();
}

Status SafeFs::Unlink(const std::string& path) {
  MutexGuard guard(mutex_);
  ++stats_.ops;
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  if (p == "/") {
    return Status::Error(Errno::kEISDIR);
  }
  SKERN_ASSIGN_OR_RETURN(WalkResult w, Walk(p));
  if (w.ino == kInvalidIno) {
    return Status::Error(Errno::kENOENT);
  }
  if (inodes_.at(w.ino).IsDir()) {
    return Status::Error(Errno::kEISDIR);
  }
  SKERN_RETURN_IF_ERROR(DirRemoveEntry(w.parent_ino, w.leaf));
  SKERN_RETURN_IF_ERROR(FreeBlocksFrom(w.ino, 0));
  FreeInode(w.ino);
  return Status::Ok();
}

Status SafeFs::Rmdir(const std::string& path) {
  MutexGuard guard(mutex_);
  ++stats_.ops;
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  if (p == "/") {
    return Status::Error(Errno::kEBUSY);
  }
  SKERN_ASSIGN_OR_RETURN(WalkResult w, Walk(p));
  if (w.ino == kInvalidIno) {
    return Status::Error(Errno::kENOENT);
  }
  if (!inodes_.at(w.ino).IsDir()) {
    return Status::Error(Errno::kENOTDIR);
  }
  SKERN_ASSIGN_OR_RETURN(bool empty, DirIsEmpty(w.ino));
  if (!empty) {
    return Status::Error(Errno::kENOTEMPTY);
  }
  SKERN_RETURN_IF_ERROR(DirRemoveEntry(w.parent_ino, w.leaf));
  SKERN_RETURN_IF_ERROR(FreeBlocksFrom(w.ino, 0));
  FreeInode(w.ino);
  InodeRef(w.parent_ino).nlink -= 1;
  MarkInodeDirty(w.parent_ino);
  return Status::Ok();
}

Status SafeFs::Write(const std::string& path, uint64_t offset, ByteView data) {
  SKERN_SPAN_LOCKED("safefs", "write");
  MutexGuard guard(mutex_);
  ++stats_.ops;
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  return WriteLocked(path, offset, data);
}

Status SafeFs::WriteLocked(const std::string& path, uint64_t offset, ByteView data) {
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  SKERN_ASSIGN_OR_RETURN(WalkResult w, Walk(p));
  if (p == "/" || (w.ino != kInvalidIno && inodes_.at(w.ino).IsDir())) {
    return Status::Error(Errno::kEISDIR);
  }
  if (w.ino == kInvalidIno) {
    return Status::Error(Errno::kENOENT);
  }
  auto ds = data_state_.find(w.ino);
  SKERN_CHECK_MSG(ds != data_state_.end(), "regular file without data state");
  return WriteInodeLocked(w.ino, *ds->second, offset, data);
}

// The post-resolution write core, shared by the path API and WriteAt. Runs
// under mutex_ (allocator, staging) plus the inode's write lock, which both
// fences concurrent fast readers out and keeps the block-map/size mirrors
// coherent with the inode.
Status SafeFs::WriteInodeLocked(uint64_t ino, InodeDataState& ds, uint64_t offset,
                                ByteView data) {
  uint64_t length = data.size();
  if (fault_.load(std::memory_order_relaxed) == SafeFsSemanticFault::kWriteIgnoresTailByte &&
      length > 0) {
    length -= 1;  // a functional bug: silently drops the last byte
  }
  if (length == 0) {
    // Even a zero-length write must not move size (matches the model).
    return Status::Ok();
  }
  uint64_t end = offset + length;
  if (end > kMaxFileBlocks * kBlockSize) {
    return Status::Error(Errno::kEFBIG);
  }
  // Pre-flight the allocation so a failed write changes nothing.
  {
    const DiskInode& inode = inodes_.at(ino);
    uint64_t first = offset / kBlockSize;
    uint64_t last = (end - 1) / kBlockSize;
    uint64_t needed = 0;
    bool need_indirect = inode.indirect == 0 && last >= kDirectBlocks;
    for (uint64_t index = first; index <= last; ++index) {
      SKERN_ASSIGN_OR_RETURN(uint64_t block, MapBlock(inode, index));
      if (block == 0) {
        ++needed;
      }
    }
    if (need_indirect) {
      ++needed;
    }
    uint64_t free = 0;
    for (uint64_t i = 0; i < geo_.data_blocks && free < needed; ++i) {
      if ((bitmap_[i / 8] & (1u << (i % 8))) == 0) {
        ++free;
      }
    }
    if (free < needed) {
      return Status::Error(Errno::kENOSPC);
    }
  }
  WriteGuard wg(ds.rwlock);
  // Mark the inode dirty-for-fast-reads *before* staging anything, so even a
  // write that fails half way leaves readers on the staged-aware slow path.
  ds.write_epoch = syncs_completed_.load(std::memory_order_relaxed) + 1;
  uint64_t old_size = inodes_.at(ino).size;
  uint64_t written = 0;
  while (written < length) {
    uint64_t pos = offset + written;
    uint64_t index = pos / kBlockSize;
    uint64_t in_block = pos % kBlockSize;
    uint64_t chunk = std::min<uint64_t>(kBlockSize - in_block, length - written);
    SKERN_ASSIGN_OR_RETURN(uint64_t block, MapBlockForWrite(ino, index));
    SKERN_ASSIGN_OR_RETURN(Owned<Bytes> * cell, StageBlock(block, false));
    {
      // Model 2: exclusive rights for the mutation, returned at scope exit.
      auto lend = cell->LendExclusive();
      std::copy(data.data() + written, data.data() + written + chunk,
                lend.Get().begin() + in_block);
    }
    if (ds.warmed) {
      ds.block_map.insert_or_assign(index, block);
    }
    written += chunk;
  }
  DiskInode& inode = InodeRef(ino);
  if (end > inode.size) {
    inode.size = end;
    MarkInodeDirty(ino);
  }
  if (ds.warmed) {
    // Keep the map complete: any gap blocks between the old EOF and the
    // written range are holes the warm invariant must still cover.
    for (uint64_t i = BlocksForSize(old_size); i < BlocksForSize(inode.size); ++i) {
      ds.block_map.try_emplace(i, 0);
    }
    ds.cached_size = inode.size;
    ds.has_indirect = inode.indirect != 0;
  }
  return Status::Ok();
}

Result<Bytes> SafeFs::Read(const std::string& path, uint64_t offset, uint64_t length) {
  SKERN_SPAN_LOCKED("safefs", "read");
  MutexGuard guard(mutex_);
  ++stats_.ops;
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  return ReadLocked(path, offset, length);
}

Result<Bytes> SafeFs::ReadLocked(const std::string& path, uint64_t offset,
                                 uint64_t length) const {
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  SKERN_ASSIGN_OR_RETURN(WalkResult w, Walk(p));
  if (p == "/" || (w.ino != kInvalidIno && inodes_.at(w.ino).IsDir())) {
    return Errno::kEISDIR;
  }
  if (w.ino == kInvalidIno) {
    return Errno::kENOENT;
  }
  return ReadInodeLocked(w.ino, offset, length);
}

// The post-resolution read core, shared by the path API and ReadAt's slow
// path. EOF clamping happens *before* the output buffer is sized, so a read
// straddling or past EOF never allocates (or zero-fills) more than the
// readable span.
Result<Bytes> SafeFs::ReadInodeLocked(uint64_t ino, uint64_t offset,
                                      uint64_t length) const {
  const DiskInode& inode = inodes_.at(ino);
  if (offset >= inode.size) {
    return Bytes{};
  }
  uint64_t take = std::min(length, inode.size - offset);
  Bytes out(take, 0);
  uint64_t done = 0;
  while (done < take) {
    uint64_t pos = offset + done;
    uint64_t index = pos / kBlockSize;
    uint64_t in_block = pos % kBlockSize;
    uint64_t chunk = std::min<uint64_t>(kBlockSize - in_block, take - done);
    SKERN_ASSIGN_OR_RETURN(uint64_t block, MapBlock(inode, index));
    if (block != 0) {
      SKERN_ASSIGN_OR_RETURN(Bytes content, LoadBlock(block));
      std::copy(content.begin() + in_block, content.begin() + in_block + chunk,
                out.begin() + done);
    }
    done += chunk;  // holes stay zero
  }
  return out;
}

Status SafeFs::Truncate(const std::string& path, uint64_t new_size) {
  MutexGuard guard(mutex_);
  ++stats_.ops;
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  SKERN_ASSIGN_OR_RETURN(WalkResult w, Walk(p));
  if (p == "/" || (w.ino != kInvalidIno && inodes_.at(w.ino).IsDir())) {
    return Status::Error(Errno::kEISDIR);
  }
  if (w.ino == kInvalidIno) {
    return Status::Error(Errno::kENOENT);
  }
  return TruncateInode(w.ino, new_size);
}

Status SafeFs::TruncateInode(uint64_t ino, uint64_t new_size) {
  if (new_size > kMaxFileBlocks * kBlockSize) {
    return Status::Error(Errno::kEFBIG);
  }
  auto ds_it = data_state_.find(ino);
  SKERN_CHECK_MSG(ds_it != data_state_.end(), "regular file without data state");
  InodeDataState& ds = *ds_it->second;
  // The write lock fences fast readers out for the whole shrink (block frees
  // included) and covers the mirror updates below.
  WriteGuard wg(ds.rwlock);
  ds.write_epoch = syncs_completed_.load(std::memory_order_relaxed) + 1;
  DiskInode& inode = InodeRef(ino);
  uint64_t old_size = inode.size;
  if (new_size < inode.size) {
    SKERN_RETURN_IF_ERROR(FreeBlocksFrom(ino, BlocksForSize(new_size)));
    // Zero the tail of the last kept block so a later grow reads zeroes.
    uint64_t tail = new_size % kBlockSize;
    if (tail != 0 &&
        fault_.load(std::memory_order_relaxed) != SafeFsSemanticFault::kTruncateSkipsZeroing) {
      SKERN_ASSIGN_OR_RETURN(uint64_t block, MapBlock(inode, new_size / kBlockSize));
      if (block != 0) {
        SKERN_ASSIGN_OR_RETURN(Owned<Bytes> * cell, StageBlock(block, false));
        auto lend = cell->LendExclusive();
        std::fill(lend.Get().begin() + tail, lend.Get().end(), 0);
      }
    }
  }
  // Growing just moves size: unmapped tail blocks are holes and read zero.
  inode.size = new_size;
  MarkInodeDirty(ino);
  if (ds.warmed) {
    uint64_t keep = BlocksForSize(new_size);
    for (auto it = ds.block_map.begin(); it != ds.block_map.end();) {
      it = it->first >= keep ? ds.block_map.erase(it) : std::next(it);
    }
    for (uint64_t i = BlocksForSize(old_size); i < keep; ++i) {
      ds.block_map.try_emplace(i, 0);  // a growing truncate adds holes
    }
    ds.cached_size = new_size;
    ds.has_indirect = inode.indirect != 0;
  }
  return Status::Ok();
}

Status SafeFs::Rename(const std::string& from, const std::string& to) {
  MutexGuard guard(mutex_);
  ++stats_.ops;
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  SKERN_ASSIGN_OR_RETURN(std::string f, specpath::Normalize(from));
  SKERN_ASSIGN_OR_RETURN(std::string t, specpath::Normalize(to));
  if (f == "/" || t == "/") {
    return Status::Error(Errno::kEBUSY);
  }
  SKERN_ASSIGN_OR_RETURN(WalkResult wf, Walk(f));
  if (wf.ino == kInvalidIno) {
    return Status::Error(Errno::kENOENT);
  }
  if (f == t) {
    return Status::Ok();
  }
  bool from_is_dir = inodes_.at(wf.ino).IsDir();
  if (from_is_dir && specpath::IsPrefix(f, t)) {
    return Status::Error(Errno::kEINVAL);
  }
  SKERN_ASSIGN_OR_RETURN(WalkResult wt, Walk(t));
  if (wt.ino != kInvalidIno) {
    bool to_is_dir = inodes_.at(wt.ino).IsDir();
    if (!from_is_dir && to_is_dir) {
      return Status::Error(Errno::kEISDIR);
    }
    if (from_is_dir && !to_is_dir) {
      return Status::Error(Errno::kENOTDIR);
    }
    if (from_is_dir && to_is_dir) {
      SKERN_ASSIGN_OR_RETURN(bool empty, DirIsEmpty(wt.ino));
      if (!empty) {
        return Status::Error(Errno::kENOTEMPTY);
      }
    }
    // Replace: drop the target.
    SKERN_RETURN_IF_ERROR(DirRemoveEntry(wt.parent_ino, wt.leaf));
    SKERN_RETURN_IF_ERROR(FreeBlocksFrom(wt.ino, 0));
    FreeInode(wt.ino);
  }
  SKERN_RETURN_IF_ERROR(DirAddEntry(wt.parent_ino, wt.leaf, wf.ino));
  if (fault_.load(std::memory_order_relaxed) != SafeFsSemanticFault::kRenameLeavesSource) {
    SKERN_RETURN_IF_ERROR(DirRemoveEntry(wf.parent_ino, wf.leaf));
  }
  if (accel_enabled_) {
    // Renaming a directory re-homes its whole subtree; rather than walk it
    // (the walk is what the cache exists to avoid), bump the generation and
    // let every pre-rename entry die lazily. The name indexes stay exact —
    // they are keyed by inode, and rename moves dirents, not inodes.
    dcache_.InvalidateAll();
  }
  return Status::Ok();
}

Result<FileAttr> SafeFs::Stat(const std::string& path) {
  MutexGuard guard(mutex_);
  ++stats_.ops;
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  SKERN_ASSIGN_OR_RETURN(WalkResult w, Walk(p));
  if (w.ino == kInvalidIno) {
    return Errno::kENOENT;
  }
  const DiskInode& inode = inodes_.at(w.ino);
  FileAttr attr;
  attr.is_dir = inode.IsDir();
  attr.size = attr.is_dir ? 0 : inode.size;
  attr.mode = inode.Perm();
  attr.uid = inode.uid;
  attr.gid = inode.gid;
  if (!attr.is_dir &&
      fault_.load(std::memory_order_relaxed) == SafeFsSemanticFault::kStatSizeOffByOne) {
    attr.size += 1;
  }
  return attr;
}

Result<std::vector<std::string>> SafeFs::Readdir(const std::string& path) {
  MutexGuard guard(mutex_);
  ++stats_.ops;
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  SKERN_ASSIGN_OR_RETURN(WalkResult w, Walk(p));
  if (w.ino == kInvalidIno) {
    return Errno::kENOENT;
  }
  if (!inodes_.at(w.ino).IsDir()) {
    return Errno::kENOTDIR;
  }
  SKERN_ASSIGN_OR_RETURN(std::vector<Dirent> entries, DirEntries(w.ino));
  std::vector<std::string> names;
  names.reserve(entries.size());
  for (const auto& entry : entries) {
    names.push_back(entry.name);
  }
  std::sort(names.begin(), names.end());
  if (fault_.load(std::memory_order_relaxed) == SafeFsSemanticFault::kReaddirDropsLastEntry &&
      !names.empty()) {
    names.pop_back();
  }
  return names;
}

Status SafeFs::Chmod(const std::string& path, uint32_t mode) {
  MutexGuard guard(mutex_);
  ++stats_.ops;
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  SKERN_ASSIGN_OR_RETURN(WalkResult w, Walk(p));
  if (w.ino == kInvalidIno) {
    return Status::Error(Errno::kENOENT);
  }
  DiskInode& inode = InodeRef(w.ino);
  inode.mode = (inode.mode & ~kModePermMask) | (mode & kModePermMask);
  MarkInodeDirty(w.ino);
  // Keep the lock-free StatHandle mirror current so open descriptors see the
  // new bits on their very next access revalidation.
  auto it = data_state_.find(w.ino);
  if (it != data_state_.end()) {
    WriteGuard dguard(it->second->rwlock);
    it->second->cached_perm = inode.Perm();
  }
  return Status::Ok();
}

Status SafeFs::Chown(const std::string& path, uint32_t uid, uint32_t gid) {
  MutexGuard guard(mutex_);
  ++stats_.ops;
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  SKERN_ASSIGN_OR_RETURN(WalkResult w, Walk(p));
  if (w.ino == kInvalidIno) {
    return Status::Error(Errno::kENOENT);
  }
  DiskInode& inode = InodeRef(w.ino);
  inode.uid = uid;
  inode.gid = gid;
  MarkInodeDirty(w.ino);
  auto it = data_state_.find(w.ino);
  if (it != data_state_.end()) {
    WriteGuard dguard(it->second->rwlock);
    it->second->cached_uid = uid;
    it->second->cached_gid = gid;
  }
  return Status::Ok();
}

Status SafeFs::Sync() {
  MutexGuard guard(mutex_);
  ++stats_.ops;
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  return SyncLocked();
}

Status SafeFs::Fsync(const std::string& path) {
  MutexGuard guard(mutex_);
  ++stats_.ops;
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  // Committing the running transaction gives at least per-file durability.
  (void)path;
  return SyncLocked();
}

Status SafeFs::Checkpoint() {
  MutexGuard guard(mutex_);
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  SKERN_RETURN_IF_ERROR(SyncLocked());
  return journal_.Checkpoint();
}

Status SafeFs::SyncLocked() {
  // Collect everything dirty: staged data blocks + inode-table blocks +
  // bitmap. One journal transaction makes the batch atomic (chunked only if
  // it exceeds journal capacity; see DESIGN.md).
  std::vector<std::pair<uint64_t, Bytes>> blocks;
  blocks.reserve(staged_.size() + dirty_inos_.size() + 1);
  for (const auto& [block, cell] : staged_) {
    auto lend = cell.LendShared();  // model 3: read-only snapshot, zero copy of rights
    blocks.emplace_back(block, lend.Get());
  }
  size_t data_end = blocks.size();
  // Inode-table blocks affected by dirty or freed inodes.
  std::set<uint64_t> table_blocks;
  for (uint64_t ino : dirty_inos_) {
    table_blocks.insert(kInodeTableStart + (ino - 1) / kInodesPerBlock);
  }
  for (uint64_t ino : cleared_inos_) {
    table_blocks.insert(kInodeTableStart + (ino - 1) / kInodesPerBlock);
  }
  for (uint64_t tb : table_blocks) {
    Bytes block(kBlockSize, 0);
    uint64_t first_ino = (tb - kInodeTableStart) * kInodesPerBlock + 1;
    for (uint32_t slot = 0; slot < kInodesPerBlock; ++slot) {
      auto it = inodes_.find(first_ino + slot);
      if (it != inodes_.end()) {
        EncodeInode(it->second, MutableByteView(block), slot);
      }
    }
    blocks.emplace_back(tb, std::move(block));
  }
  size_t table_end = blocks.size();
  if (bitmap_dirty_) {
    blocks.emplace_back(kBitmapBlock, bitmap_);
  }
  if (blocks.empty()) {
    return Status::Ok();
  }
  // Group commit: data, inode-table, and bitmap updates are staged as
  // separate logical transactions and made durable by one journal Flush()
  // at the end — one descriptor/commit/checkpoint barrier sequence for the
  // whole sync instead of one per transaction. Transactions larger than the
  // journal are chunked; Submit flushes full batches automatically, so the
  // all-or-nothing grain is the batch, never a partial transaction.
  uint64_t capacity = journal_.Capacity();
  auto submit_group = [&](size_t begin, size_t end) -> Status {
    while (begin < end) {
      auto tx = journal_.Begin();
      size_t in_tx = 0;
      while (begin < end && in_tx < capacity) {
        tx.AddBlock(blocks[begin].first, ByteView(blocks[begin].second));
        ++begin;
        ++in_tx;
      }
      SKERN_RETURN_IF_ERROR(journal_.Submit(std::move(tx)));
    }
    return Status::Ok();
  };
  SKERN_RETURN_IF_ERROR(submit_group(0, data_end));
  SKERN_RETURN_IF_ERROR(submit_group(data_end, table_end));
  SKERN_RETURN_IF_ERROR(submit_group(table_end, blocks.size()));
  SKERN_RETURN_IF_ERROR(journal_.Flush());
  staged_.clear();
  dirty_inos_.clear();
  cleared_inos_.clear();
  bitmap_dirty_ = false;
  ++stats_.syncs;
  // Everything staged is now checkpointed to its home location; inodes whose
  // write_epoch is <= this value are fast-read clean again.
  syncs_completed_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

// --- write-back plane ---

// Replays all buffered write-back into the staged plane. Three phases:
//   1. extract: under each inode's write lock, move its dirty cells out and
//      stamp the inode staged-dirty (write_epoch) so fast reads defer to the
//      staged plane until the next sync;
//   2. replay: walk every cell in global first-dirty (`seq`) order, mapping
//      (and first-fit allocating, exactly where the synchronous path would
//      have) each block, then landing the content;
//   3. settle: apply file sizes and refresh the per-inode mirrors.
// Every mutex_ operation calls this first: partial drains would permute
// allocation order relative to a synchronous run of the same op sequence.
Status SafeFs::DrainWriteBackLocked() {
  if (wb_dirty_cells_.load(std::memory_order_acquire) == 0) {
    return Status::Ok();
  }
  SKERN_SPAN_LOCKED("safefs", "wb_drain");
  std::vector<std::shared_ptr<InodeDataState>> list;
  {
    SpinLockGuard lg(wb_list_lock_);
    list.swap(wb_list_);
  }
  struct ReplayCell {
    uint64_t seq;
    uint64_t ino;
    uint64_t index;
    std::shared_ptr<InodeDataState> ds;
    WbDirtyBlock cell;
  };
  struct SizeRec {
    std::shared_ptr<InodeDataState> ds;
    uint64_t ino;
    uint64_t size_after;
  };
  std::vector<ReplayCell> cells;
  std::vector<SizeRec> sizes;
  uint64_t reserved_total = 0;
  uint64_t extracted = 0;
  for (auto& dsp : list) {
    WriteGuard wg(dsp->rwlock);
    dsp->wb_registered = false;
    reserved_total += dsp->wb_reserved_blocks;
    dsp->wb_reserved_blocks = 0;
    dsp->wb_indirect_reserved = false;
    extracted += dsp->wb_dirty.size();
    if (dsp->dead) {
      // The file raced an unlink: the buffered data dies with it (same
      // outcome as the write landing just before the unlink); the refund
      // below returns its reservations.
      dsp->wb_dirty.clear();
      continue;
    }
    for (auto& [index, cell] : dsp->wb_dirty) {
      cells.push_back({cell.seq, dsp->ino, index, dsp, std::move(cell)});
    }
    dsp->wb_dirty.clear();
    dsp->write_epoch = syncs_completed_.load(std::memory_order_relaxed) + 1;
    sizes.push_back({dsp, dsp->ino, dsp->cached_size});
  }
  wb_dirty_cells_.fetch_sub(extracted, std::memory_order_release);
  SKERN_GAUGE_SET("safefs.writeback.dirty_cells",
                  wb_dirty_cells_.load(std::memory_order_relaxed));
  std::sort(cells.begin(), cells.end(),
            [](const ReplayCell& a, const ReplayCell& b) { return a.seq < b.seq; });
  wb_replay_active_ = true;
  wb_replay_allocs_ = 0;
  Status st = Status::Ok();
  for (auto& c : cells) {
    Result<uint64_t> block = MapBlockForWrite(c.ino, c.index);
    if (!block.ok()) {
      st = Status::Error(block.error());
      break;
    }
    // Fully-dirty cells stage zero-filled (no read): the buffered bytes
    // cover the whole block, matching what the synchronous path's
    // read-then-overwrite would have produced.
    Result<Owned<Bytes>*> staged = StageBlock(*block, /*zero_fill=*/c.cell.full);
    if (!staged.ok()) {
      st = Status::Error(staged.error());
      break;
    }
    {
      auto lend = (*staged)->LendExclusive();
      Bytes& dst = lend.Get();
      if (c.cell.full) {
        std::copy(c.cell.data.begin(), c.cell.data.end(), dst.begin());
      } else {
        for (const WbExtent& ext : c.cell.extents) {
          std::copy(c.cell.data.begin() + ext.begin, c.cell.data.begin() + ext.end,
                    dst.begin() + ext.begin);
        }
      }
    }
    WriteGuard wg(c.ds->rwlock);
    if (c.ds->warmed && !c.ds->dead) {
      c.ds->block_map.insert_or_assign(c.index, *block);
    }
  }
  for (auto& s : sizes) {
    if (!st.ok()) {
      break;
    }
    DiskInode& inode = InodeRef(s.ino);
    if (s.size_after > inode.size) {
      inode.size = s.size_after;
      MarkInodeDirty(s.ino);
    }
    WriteGuard wg(s.ds->rwlock);
    if (s.ds->warmed && !s.ds->dead) {
      s.ds->has_indirect = inode.indirect != 0;
      s.ds->cached_size = inode.size;
    }
  }
  wb_replay_active_ = false;
  // Reservations not consumed by replay allocations (racing writers double-
  // reserving around a drain, or cells that died with their inode) flow back.
  avail_.fetch_add(static_cast<int64_t>(reserved_total) -
                       static_cast<int64_t>(wb_replay_allocs_),
                   std::memory_order_relaxed);
  io_.wb_drains.fetch_add(1, std::memory_order_relaxed);
  io_.wb_drained_cells.fetch_add(extracted, std::memory_order_relaxed);
  SKERN_COUNTER_INC("safefs.writeback.drains");
  SKERN_COUNTER_ADD("safefs.writeback.drained_cells", extracted);
  SKERN_TRACE("safefs", "wb_drain", extracted);
  return st;
}

std::optional<Status> SafeFs::TryFastWrite(const std::shared_ptr<InodeDataState>& dsp,
                                           uint64_t offset, ByteView data) {
  std::optional<Status> fast;
  {
    WriteGuard wg(dsp->rwlock);
    fast = TryFastWriteLocked(dsp, *dsp, offset, data);
  }
  if (!fast.has_value() || !fast->ok()) {
    return fast;
  }
  Status finish = FinishFastWrites(1);
  if (!finish.ok()) {
    return finish;
  }
  return fast;
}

std::optional<Status> SafeFs::TryFastWriteLocked(const std::shared_ptr<InodeDataState>& dsp,
                                                 InodeDataState& ds, uint64_t offset,
                                                 ByteView data) {
  uint64_t length = data.size();
  if (fault_.load(std::memory_order_relaxed) == SafeFsSemanticFault::kWriteIgnoresTailByte &&
      length > 0) {
    length -= 1;  // the same functional bug the slow path injects
  }
  if (length == 0) {
    return Status::Ok();
  }
  uint64_t end = offset + length;
  if (end > kMaxFileBlocks * kBlockSize) {
    return Status::Error(Errno::kEFBIG);
  }
  {
    if (ds.dead || !ds.warmed) {
      return std::nullopt;  // cold map: the slow path warms it
    }
    uint64_t first = offset / kBlockSize;
    uint64_t last = (end - 1) / kBlockSize;
    // Delayed-allocation pre-flight: one reservation per unmapped block not
    // already covered by a dirty cell, plus the indirect block on first
    // need. avail_ equals what the synchronous path's bitmap scan would see
    // at this point in the op order, so success/failure matches exactly;
    // on failure the slow path reproduces the precise ENOSPC behaviour.
    uint64_t need = 0;
    for (uint64_t index = first; index <= last; ++index) {
      if (ds.wb_dirty.find(index) != ds.wb_dirty.end()) {
        continue;
      }
      auto mit = ds.block_map.find(index);
      if (mit == ds.block_map.end() || mit->second == 0) {
        ++need;
      }
    }
    bool want_indirect =
        last >= kDirectBlocks && !ds.has_indirect && !ds.wb_indirect_reserved;
    if (want_indirect) {
      ++need;
    }
    if (need > 0 && !ReserveBlocks(need)) {
      return std::nullopt;
    }
    ds.wb_reserved_blocks += need;
    if (want_indirect) {
      ds.wb_indirect_reserved = true;
    }
    uint64_t new_cells = 0;
    uint64_t written = 0;
    while (written < length) {
      uint64_t pos = offset + written;
      uint64_t index = pos / kBlockSize;
      uint64_t in_block = pos % kBlockSize;
      uint64_t chunk = std::min<uint64_t>(kBlockSize - in_block, length - written);
      auto [it, inserted] = ds.wb_dirty.try_emplace(index);
      WbDirtyBlock& cell = it->second;
      if (inserted) {
        ++new_cells;
        cell.seq = wb_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
        auto mit = ds.block_map.find(index);
        cell.was_mapped = mit != ds.block_map.end() && mit->second != 0;
        cell.data.assign(kBlockSize, 0);
        // A fresh (unmapped) block starts as zeroes — exactly the zero_fill
        // staging the synchronous path performs — so it is authoritative
        // from the first byte.
        cell.full = !cell.was_mapped;
        if (!cell.was_mapped) {
          ds.block_map.try_emplace(index, 0);  // reads overlay the cell on a hole
        }
      }
      std::copy(data.data() + written, data.data() + written + chunk,
                cell.data.begin() + in_block);
      if (!cell.full) {
        // Merge [in_block, in_block + chunk) into the sorted extent list.
        WbExtent nw{static_cast<uint32_t>(in_block),
                    static_cast<uint32_t>(in_block + chunk)};
        std::vector<WbExtent>& v = cell.extents;
        std::vector<WbExtent> merged;
        merged.reserve(v.size() + 1);
        size_t i = 0;
        while (i < v.size() && v[i].end < nw.begin) {
          merged.push_back(v[i++]);
        }
        while (i < v.size() && v[i].begin <= nw.end) {
          nw.begin = std::min(nw.begin, v[i].begin);
          nw.end = std::max(nw.end, v[i].end);
          ++i;
        }
        merged.push_back(nw);
        while (i < v.size()) {
          merged.push_back(v[i++]);
        }
        v = std::move(merged);
        if (v.size() == 1 && v[0].begin == 0 && v[0].end == kBlockSize) {
          cell.full = true;
          v.clear();
        }
      }
      written += chunk;
    }
    if (end > ds.cached_size) {
      for (uint64_t i = BlocksForSize(ds.cached_size); i < BlocksForSize(end); ++i) {
        ds.block_map.try_emplace(i, 0);  // growth holes keep the map complete
      }
      ds.cached_size = end;
    }
    if (new_cells > 0) {
      wb_dirty_cells_.fetch_add(new_cells, std::memory_order_release);
      if (!ds.wb_registered) {
        ds.wb_registered = true;
        SpinLockGuard lg(wb_list_lock_);
        wb_list_.push_back(dsp);
      }
    }
  }
  return Status::Ok();
}

Status SafeFs::FinishFastWrites(uint64_t applied) {
  io_.fast_writes.fetch_add(applied, std::memory_order_relaxed);
  SKERN_COUNTER_ADD("safefs.writeback.fast_writes", applied);
  uint64_t cells = wb_dirty_cells_.load(std::memory_order_acquire);
  SKERN_GAUGE_SET("safefs.writeback.dirty_cells", cells);
  if (cells >= kWbMaxDirtyCells) {
    // Backpressure: the writer that breaches the cap pays for the drain.
    // Runs with no per-inode lock held — the drain acquires mutex_ first and
    // then each inode's rwlock, the same order as every slow-path op.
    MutexGuard guard(mutex_);
    return DrainWriteBackLocked();
  }
  if (cells >= kWbFlushWakeCells) {
    wb_event_.Signal();
  }
  return Status::Ok();
}

// --- handle-based data plane ---

std::shared_ptr<SafeFs::HandleRec> SafeFs::LookupHandle(InodeHandle handle) const {
  ReadGuard guard(handle_lock_);
  auto it = handles_.find(handle);
  return it == handles_.end() ? nullptr : it->second;
}

bool SafeFs::HandleCurrent(const HandleRec& rec) const {
  SpinLockGuard guard(rec.hlock);
  return rec.res_gen == ns_generation_.load(std::memory_order_acquire);
}

void SafeFs::RevalidateHandleLocked(HandleRec& rec) {
  // All generation bumps happen under mutex_, which we hold, so the walk
  // below cannot race with the generation we stamp.
  uint64_t gen = ns_generation_.load(std::memory_order_acquire);
  SKERN_TRACE("safefs", "handle_reval", gen);
  Errno err = Errno::kOk;
  uint64_t ino = kInvalidIno;
  std::shared_ptr<InodeDataState> ds;
  Result<WalkResult> w = Walk(rec.path);
  if (!w.ok()) {
    err = w.error();
  } else if (rec.path == "/" || (w->ino != kInvalidIno && inodes_.at(w->ino).IsDir())) {
    err = Errno::kEISDIR;
  } else if (w->ino == kInvalidIno) {
    err = Errno::kENOENT;
  } else {
    ino = w->ino;
    auto it = data_state_.find(ino);
    SKERN_CHECK_MSG(it != data_state_.end(), "regular file without data state");
    ds = it->second;
  }
  SpinLockGuard guard(rec.hlock);
  rec.res_gen = gen;
  rec.res_ino = ino;
  rec.res_err = err;
  rec.res_data = std::move(ds);
}

std::optional<Bytes> SafeFs::TryFastRead(InodeDataState& ds, uint64_t offset,
                                         uint64_t length) const {
  ReadGuard guard(ds.rwlock);
  if (ds.dead) {
    return std::nullopt;
  }
  if (!ds.warmed) {
    io_.blockmap_misses.fetch_add(1, std::memory_order_relaxed);
    SKERN_COUNTER_INC("safefs.blockmap.misses");
    return std::nullopt;
  }
  if (ds.write_epoch > syncs_completed_.load(std::memory_order_acquire)) {
    // Staged data the device image does not show yet: only the slow path
    // (which reads through staged_) can serve it.
    return std::nullopt;
  }
  if (offset >= ds.cached_size) {
    return Bytes{};
  }
  uint64_t take = std::min(length, ds.cached_size - offset);
  // Reserve + append, not a sized construction: value-initializing the
  // buffer would touch every byte twice (zero-fill, then copy).
  Bytes out;
  out.reserve(take);
  uint64_t done = 0;
  while (done < take) {
    uint64_t pos = offset + done;
    uint64_t index = pos / kBlockSize;
    uint64_t in_block = pos % kBlockSize;
    uint64_t chunk = std::min<uint64_t>(kBlockSize - in_block, take - done);
    auto it = ds.block_map.find(index);
    if (it == ds.block_map.end()) {
      // Defensive: the warm invariant covers every index < cached_size.
      io_.blockmap_misses.fetch_add(1, std::memory_order_relaxed);
      SKERN_COUNTER_INC("safefs.blockmap.misses");
      return std::nullopt;
    }
    io_.blockmap_hits.fetch_add(1, std::memory_order_relaxed);
    SKERN_COUNTER_INC("safefs.blockmap.hits");
    // Buffered write-back overlays the clean underlying image: a fully
    // dirty cell is authoritative on its own; a partial one patches its
    // extents over whatever the block (or hole) reads as.
    auto dit = ds.wb_dirty.find(index);
    const WbDirtyBlock* dirty = dit == ds.wb_dirty.end() ? nullptr : &dit->second;
    if (dirty != nullptr && dirty->full) {
      AppendBytes(out, dirty->data.data() + in_block, chunk);
      done += chunk;
      continue;
    }
    size_t base_pos = out.size();
    if (it->second != 0) {
      // Single shard-lock hold per block on the warm path: no pin/release
      // round-trip, which matters when many readers stream concurrently.
      if (!read_cache_->AppendFromBlock(it->second, in_block, chunk, out).ok()) {
        return std::nullopt;
      }
    } else {
      out.resize(out.size() + chunk);  // holes read zero
    }
    if (dirty != nullptr) {
      for (const WbExtent& ext : dirty->extents) {
        uint64_t b = std::max<uint64_t>(ext.begin, in_block);
        uint64_t e = std::min<uint64_t>(ext.end, in_block + chunk);
        if (b < e) {
          std::copy(dirty->data.begin() + b, dirty->data.begin() + e,
                    out.begin() + base_pos + (b - in_block));
        }
      }
    }
    done += chunk;
  }
  // Sequential-access detection and read-ahead accounting. These hints are
  // racy between concurrent readers on purpose: a lost update costs one
  // missed (or one redundant) read-ahead, never correctness.
  if (offset < ds.ra_end.load(std::memory_order_relaxed) &&
      offset + take > ds.ra_start.load(std::memory_order_relaxed)) {
    io_.readahead_hits.fetch_add(1, std::memory_order_relaxed);
    SKERN_COUNTER_INC("safefs.readahead.hits");
  }
  if (offset == ds.next_seq_offset.load(std::memory_order_relaxed)) {
    uint64_t streak = ds.seq_streak.fetch_add(1, std::memory_order_relaxed) + 1;
    if (streak >= 2) {
      MaybeReadAhead(ds, offset + take);
    }
  } else {
    ds.seq_streak.store(0, std::memory_order_relaxed);
  }
  ds.next_seq_offset.store(offset + take, std::memory_order_relaxed);
  return out;
}

void SafeFs::MaybeReadAhead(InodeDataState& ds, uint64_t from) const {
  SKERN_SPAN("safefs", "readahead");
  uint64_t first = from / kBlockSize;
  uint64_t last = std::min(first + kReadAheadBlocks, BlocksForSize(ds.cached_size));
  if (first >= last) {
    return;  // at EOF
  }
  // Skip whatever the current window already covers; only the uncovered tail
  // is worth touching. (Without this, a wrapping sequential scan re-issues
  // its whole window on every read — 16 shard-lock hits per op.)
  uint64_t ra_start = ds.ra_start.load(std::memory_order_relaxed);
  uint64_t ra_end = ds.ra_end.load(std::memory_order_relaxed);
  if (first * kBlockSize >= ra_start && last * kBlockSize <= ra_end) {
    return;  // window fully covered
  }
  uint64_t new_start = first * kBlockSize;
  if (first * kBlockSize >= ra_start && first * kBlockSize < ra_end) {
    first = ra_end / kBlockSize;  // extend the window instead of re-reading it
    new_start = ra_start;
  }
  uint64_t issued = 0;
  for (uint64_t index = first; index < last; ++index) {
    auto it = ds.block_map.find(index);
    if (it == ds.block_map.end() || it->second == 0) {
      continue;  // holes read zero without device traffic
    }
    Result<BufferHead*> bh = read_cache_->ReadBlock(it->second);
    if (!bh.ok()) {
      break;  // device trouble: the foreground read will surface it
    }
    read_cache_->Release(*bh);
    ++issued;
  }
  if (issued > 0) {
    io_.readahead_issued.fetch_add(issued, std::memory_order_relaxed);
    SKERN_COUNTER_ADD("safefs.readahead.issued", issued);
    SKERN_TRACE("safefs", "readahead", from, issued);
    ds.ra_start.store(new_start, std::memory_order_relaxed);
    ds.ra_end.store(last * kBlockSize, std::memory_order_relaxed);
  }
}

void SafeFs::WarmBlockMapLocked(uint64_t ino, InodeDataState& ds) const {
  SKERN_SPAN_LOCKED("safefs", "warm_blockmap");
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) {
    return;
  }
  const DiskInode& inode = it->second;
  SKERN_TRACE("safefs", "blockmap_warm", ino, BlocksForSize(inode.size));
  WriteGuard guard(ds.rwlock);
  if (ds.dead) {
    return;
  }
  ds.block_map.clear();
  for (uint64_t index = 0; index < BlocksForSize(inode.size); ++index) {
    Result<uint64_t> block = MapBlock(inode, index);
    if (!block.ok()) {
      ds.block_map.clear();
      ds.warmed = false;
      return;
    }
    ds.block_map.emplace(index, *block);
  }
  ds.cached_size = inode.size;
  ds.has_indirect = inode.indirect != 0;
  ds.cached_perm = inode.Perm();
  ds.cached_uid = inode.uid;
  ds.cached_gid = inode.gid;
  ds.warmed = true;
}

Result<InodeHandle> SafeFs::OpenByPath(const std::string& path) {
  SKERN_SPAN_LOCKED("safefs", "open_handle");
  MutexGuard guard(mutex_);
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  auto rec = std::make_shared<HandleRec>(std::move(p));
  RevalidateHandleLocked(*rec);
  {
    SpinLockGuard hguard(rec->hlock);
    if (rec->res_err != Errno::kOk) {
      return rec->res_err;
    }
  }
  WriteGuard hguard(handle_lock_);
  InodeHandle handle = next_handle_++;
  handles_.emplace(handle, std::move(rec));
  SKERN_TRACE("safefs", "open_handle", handle);
  return handle;
}

void SafeFs::CloseHandle(InodeHandle handle) {
  SKERN_TRACE("safefs", "close_handle", handle);
  WriteGuard guard(handle_lock_);
  handles_.erase(handle);
}

Result<Bytes> SafeFs::ReadAt(InodeHandle handle, uint64_t offset, uint64_t length) {
  SKERN_SPAN_LOCKED("safefs", "read_at");
  std::shared_ptr<HandleRec> rec = LookupHandle(handle);
  if (rec == nullptr) {
    return Errno::kEBADF;
  }
  uint64_t gen = ns_generation_.load(std::memory_order_acquire);
  Errno err = Errno::kOk;
  uint64_t ino = kInvalidIno;
  std::shared_ptr<InodeDataState> ds;
  bool current = false;
  {
    SpinLockGuard hguard(rec->hlock);
    current = rec->res_gen == gen;
    err = rec->res_err;
    ino = rec->res_ino;
    ds = rec->res_data;
  }
  if (current) {
    // A cached resolution error (e.g. the name was already gone when the
    // handle last revalidated) is as current as a cached success.
    if (err != Errno::kOk) {
      return err;
    }
    std::optional<Bytes> fast = TryFastRead(*ds, offset, length);
    if (fast.has_value()) {
      io_.fast_reads.fetch_add(1, std::memory_order_relaxed);
      SKERN_COUNTER_INC("safefs.io.fast_reads");
      SKERN_TRACE("safefs", "read_fast", ino, length);
      skern_span_scope_.set_plane(obs::SpanPlane::kFast);
      return std::move(*fast);
    }
  }
  // Slow path: global lock, staged-aware read, then warm the block map so
  // the next read of this inode can go fast.
  MutexGuard guard(mutex_);
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  if (!HandleCurrent(*rec)) {
    RevalidateHandleLocked(*rec);
  }
  {
    SpinLockGuard hguard(rec->hlock);
    err = rec->res_err;
    ino = rec->res_ino;
    ds = rec->res_data;
  }
  if (err != Errno::kOk) {
    return err;
  }
  io_.slow_reads.fetch_add(1, std::memory_order_relaxed);
  SKERN_COUNTER_INC("safefs.io.slow_reads");
  SKERN_TRACE("safefs", "read_slow", ino, length);
  skern_span_scope_.set_plane(obs::SpanPlane::kSlow);
  Result<Bytes> out = ReadInodeLocked(ino, offset, length);
  if (out.ok() && ds != nullptr) {
    bool map_warm;
    {
      ReadGuard rg(ds->rwlock);
      map_warm = ds->warmed;
    }
    // A warm map is kept current by every mutation under the global lock;
    // re-deriving it per slow op would turn O(1) maintenance into O(blocks).
    if (!map_warm) {
      WarmBlockMapLocked(ino, *ds);
    }
  }
  return out;
}

Status SafeFs::WriteAt(InodeHandle handle, uint64_t offset, ByteView data) {
  SKERN_SPAN_LOCKED("safefs", "write_at");
  std::shared_ptr<HandleRec> rec = LookupHandle(handle);
  if (rec == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  SKERN_TRACE("safefs", "write_at", handle, data.size());
  if (writeback_enabled_.load(std::memory_order_acquire)) {
    uint64_t gen = ns_generation_.load(std::memory_order_acquire);
    Errno err = Errno::kOk;
    std::shared_ptr<InodeDataState> ds;
    bool current = false;
    {
      SpinLockGuard hguard(rec->hlock);
      current = rec->res_gen == gen;
      err = rec->res_err;
      ds = rec->res_data;
    }
    if (current) {
      if (err != Errno::kOk) {
        return Status::Error(err);  // a cached resolution error is current too
      }
      std::optional<Status> fast = TryFastWrite(ds, offset, data);
      if (fast.has_value()) {
        SKERN_COUNTER_INC("safefs.io.fast_writes");
        SKERN_TRACE("safefs", "write_fast", handle, data.size());
        skern_span_scope_.set_plane(obs::SpanPlane::kFast);
        return *fast;
      }
    }
  }
  // Slow path: global lock, drain (so the synchronous write lands in global
  // op order), then warm the block map so the next write can buffer.
  MutexGuard guard(mutex_);
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  if (!HandleCurrent(*rec)) {
    RevalidateHandleLocked(*rec);
  }
  Errno err = Errno::kOk;
  uint64_t ino = kInvalidIno;
  std::shared_ptr<InodeDataState> ds;
  {
    SpinLockGuard hguard(rec->hlock);
    err = rec->res_err;
    ino = rec->res_ino;
    ds = rec->res_data;
  }
  if (err != Errno::kOk) {
    return Status::Error(err);
  }
  io_.slow_writes.fetch_add(1, std::memory_order_relaxed);
  SKERN_COUNTER_INC("safefs.io.slow_writes");
  SKERN_TRACE("safefs", "write_slow", handle, data.size());
  skern_span_scope_.set_plane(obs::SpanPlane::kSlow);
  Status st = WriteInodeLocked(ino, *ds, offset, data);
  if (st.ok() && ds != nullptr) {
    bool map_warm;
    {
      ReadGuard rg(ds->rwlock);
      map_warm = ds->warmed;
    }
    if (!map_warm) {
      WarmBlockMapLocked(ino, *ds);
    }
  }
  return st;
}

Result<size_t> SafeFs::WriteAtBatch(InodeHandle handle, const WriteSlice* slices,
                                    size_t count) {
  if (count == 0) {
    return static_cast<size_t>(0);
  }
  if (!writeback_enabled_.load(std::memory_order_acquire)) {
    // Synchronous plane: per-op WriteAt keeps the global-lock op ordering.
    return Errno::kENOSYS;
  }
  SKERN_SPAN_LOCKED("safefs", "write_at_batch");
  std::shared_ptr<HandleRec> rec = LookupHandle(handle);
  if (rec == nullptr) {
    return Errno::kEBADF;
  }
  SKERN_TRACE("safefs", "write_at_batch", handle, count);
  uint64_t gen = ns_generation_.load(std::memory_order_acquire);
  Errno err = Errno::kOk;
  std::shared_ptr<InodeDataState> ds;
  bool current = false;
  {
    SpinLockGuard hguard(rec->hlock);
    current = rec->res_gen == gen;
    err = rec->res_err;
    ds = rec->res_data;
  }
  if (!current || err != Errno::kOk || ds == nullptr) {
    // Stale or failed resolution: hand the whole run back so the per-op
    // path revalidates (and reports a cached error) exactly once per op.
    return static_cast<size_t>(0);
  }
  size_t applied = 0;
  {
    WriteGuard wg(ds->rwlock);
    while (applied < count) {
      const WriteSlice& s = slices[applied];
      std::optional<Status> fast = TryFastWriteLocked(ds, *ds, s.offset, s.data);
      if (!fast.has_value() || !fast->ok()) {
        // Cold map, reservation failure, or a validation error: stop here.
        // The caller re-runs this slice through WriteAt, which reproduces
        // the same result (nothing was mutated for it).
        break;
      }
      ++applied;
    }
  }
  if (applied > 0) {
    skern_span_scope_.set_plane(obs::SpanPlane::kFast);
    SKERN_COUNTER_ADD("safefs.io.fast_writes", applied);
    Status finish = FinishFastWrites(applied);
    if (!finish.ok()) {
      // Backpressure drain failed; the buffered slices are applied, so
      // surface the device error rather than an applied count.
      return finish.code();
    }
  }
  return applied;
}

Result<FileAttr> SafeFs::StatHandle(InodeHandle handle) {
  std::shared_ptr<HandleRec> rec = LookupHandle(handle);
  if (rec == nullptr) {
    return Errno::kEBADF;
  }
  // Fast path: a current handle with a warm mirror answers from cached_size
  // (which tracks buffered write-back growth) without the global lock.
  {
    uint64_t gen = ns_generation_.load(std::memory_order_acquire);
    Errno err = Errno::kOk;
    std::shared_ptr<InodeDataState> ds;
    bool current = false;
    {
      SpinLockGuard hguard(rec->hlock);
      current = rec->res_gen == gen;
      err = rec->res_err;
      ds = rec->res_data;
    }
    if (current && err == Errno::kOk && ds != nullptr) {
      ReadGuard rg(ds->rwlock);
      if (!ds->dead && ds->warmed) {
        FileAttr attr;
        attr.is_dir = false;
        attr.size = ds->cached_size;
        attr.mode = ds->cached_perm;
        attr.uid = ds->cached_uid;
        attr.gid = ds->cached_gid;
        if (fault_.load(std::memory_order_relaxed) ==
            SafeFsSemanticFault::kStatSizeOffByOne) {
          attr.size += 1;
        }
        return attr;
      }
    }
  }
  MutexGuard guard(mutex_);
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  if (!HandleCurrent(*rec)) {
    RevalidateHandleLocked(*rec);
  }
  Errno err = Errno::kOk;
  uint64_t ino = kInvalidIno;
  {
    SpinLockGuard hguard(rec->hlock);
    err = rec->res_err;
    ino = rec->res_ino;
  }
  if (err != Errno::kOk) {
    return err;
  }
  // Handles only ever pin regular files; mirror Stat's regular-file branch,
  // injected fault included.
  const DiskInode& inode = inodes_.at(ino);
  FileAttr attr;
  attr.is_dir = false;
  attr.size = inode.size;
  attr.mode = inode.Perm();
  attr.uid = inode.uid;
  attr.gid = inode.gid;
  if (fault_.load(std::memory_order_relaxed) == SafeFsSemanticFault::kStatSizeOffByOne) {
    attr.size += 1;
  }
  return attr;
}

Status SafeFs::FsyncHandle(InodeHandle handle) {
  SKERN_SPAN_LOCKED("safefs", "fsync_handle");
  std::shared_ptr<HandleRec> rec = LookupHandle(handle);
  if (rec == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  // Path Fsync ignores its path argument (the journal commits the whole
  // running transaction), so the handle's resolution is irrelevant here too.
  MutexGuard guard(mutex_);
  SKERN_RETURN_IF_ERROR(DrainWriteBackLocked());
  return SyncLocked();
}

SafeFsIoStats SafeFs::io_stats() const {
  SafeFsIoStats s;
  s.fast_reads = io_.fast_reads.load(std::memory_order_relaxed);
  s.slow_reads = io_.slow_reads.load(std::memory_order_relaxed);
  s.readahead_issued = io_.readahead_issued.load(std::memory_order_relaxed);
  s.readahead_hits = io_.readahead_hits.load(std::memory_order_relaxed);
  s.blockmap_hits = io_.blockmap_hits.load(std::memory_order_relaxed);
  s.blockmap_misses = io_.blockmap_misses.load(std::memory_order_relaxed);
  s.fast_writes = io_.fast_writes.load(std::memory_order_relaxed);
  s.slow_writes = io_.slow_writes.load(std::memory_order_relaxed);
  s.wb_drains = io_.wb_drains.load(std::memory_order_relaxed);
  s.wb_drained_cells = io_.wb_drained_cells.load(std::memory_order_relaxed);
  MutexGuard guard(mutex_);
  for (const auto& [ino, ds] : data_state_) {
    s.inode_lock_contended += ds->rwlock.contended_count();
  }
  return s;
}

}  // namespace skern
