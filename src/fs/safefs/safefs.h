// safefs: the type- and ownership-safe journaling file system (steps 1–3).
//
// The "after" picture of the paper's migration:
//   * step 1 — implements only the modular FileSystem interface; no caller
//     sees its internals;
//   * step 2 — no void*, no ERR_PTR: every handle is typed, every fallible
//     call returns Status/Result;
//   * step 3 — dirty blocks live in Owned<Bytes> cells and every access goes
//     through the §4.3 sharing models (exclusive lends to mutate, shared
//     lends to read), so the ownership checker enforces the contracts the
//     legacy inode leaves to code review;
//   * the block boundary is byte-level (works against any BlockDevice,
//     typically the axiom-checked CheckedBlockDevice) — buffer_head is
//     abstracted away exactly as §4.4 suggests.
//
// Durability: operations mutate in-memory state (metadata images + staged
// data blocks). Sync/Fsync serializes everything dirty into one journal
// transaction; the commit protocol makes the whole batch atomic, so a
// recovered file system equals the last synced state — the FsModel crash
// contract, exactly.
//
// For the E11 experiment SafeFs also exposes *semantic* fault injection: the
// bug classes that type and ownership safety cannot prevent (wrong sizes,
// incomplete renames, skipped zeroing). specfs catches these by refinement.
#ifndef SKERN_SRC_FS_SAFEFS_SAFEFS_H_
#define SKERN_SRC_FS_SAFEFS_SAFEFS_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/block/block_device.h"
#include "src/block/buffer_cache.h"
#include "src/block/journal.h"
#include "src/fs/layout.h"
#include "src/ownership/owned.h"
#include "src/sync/kthread.h"
#include "src/sync/mutex.h"
#include "src/vfs/dcache.h"
#include "src/vfs/filesystem.h"

namespace skern {

// Functional-correctness bugs that survive steps 2 and 3 (they are type- and
// ownership-clean) and exist to be caught by step 4's refinement checking.
enum class SafeFsSemanticFault : uint8_t {
  kNone = 0,
  kStatSizeOffByOne,       // Stat reports size + 1
  kRenameLeavesSource,     // rename copies the entry but forgets to remove it
  kTruncateSkipsZeroing,   // growing truncate exposes stale block content
  kReaddirDropsLastEntry,  // readdir omits the final entry
  kWriteIgnoresTailByte,   // write drops the last byte of the payload
};

struct SafeFsStats {
  uint64_t ops = 0;
  uint64_t blocks_allocated = 0;
  uint64_t blocks_freed = 0;
  uint64_t syncs = 0;
};

// Data-plane fast-path counters (always on — the bench reads these with the
// obs registry disabled; procfs mirrors carry the same names).
struct SafeFsIoStats {
  uint64_t fast_reads = 0;        // ReadAt served lock-free of mutex_
  uint64_t slow_reads = 0;        // ReadAt that fell back to the global lock
  uint64_t fast_writes = 0;       // WriteAt buffered into write-back, no mutex_
  uint64_t slow_writes = 0;       // WriteAt that took the global lock
  uint64_t readahead_issued = 0;  // blocks prefetched into the read cache
  uint64_t readahead_hits = 0;    // reads that landed in a prefetched window
  uint64_t blockmap_hits = 0;     // file blocks resolved from the map cache
  uint64_t blockmap_misses = 0;   // fast reads bounced for lack of a warm map
  uint64_t wb_drains = 0;         // write-back drain passes
  uint64_t wb_drained_cells = 0;  // dirty block cells replayed by drains
  uint64_t inode_lock_contended = 0;  // per-inode rwlock contention events
};

// Block-allocation policy: an implementation detail deliberately *below* the
// specification. §4.5 asks whether checks keep up with code change; here a
// policy swap requires zero spec change — refinement passes for both
// (tests/spec_evolution_test.cc) because the spec never mentions block
// placement.
enum class AllocPolicy : uint8_t {
  kFirstFit = 0,  // scan the bitmap from the start
  kNextFit = 1,   // resume scanning after the last allocation
};

class SafeFs : public FileSystem {
 public:
  // mkfs: writes a fresh file system (with a journal area of
  // `journal_blocks`) and returns it mounted.
  static Result<std::shared_ptr<SafeFs>> Format(BlockDevice& device, uint64_t inode_count,
                                                uint64_t journal_blocks);

  // mount: recovers the journal, loads metadata. The device must contain a
  // formatted safefs.
  static Result<std::shared_ptr<SafeFs>> Mount(BlockDevice& device);

  // FileSystem:
  Status Create(const std::string& path) override;
  Status Mkdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rmdir(const std::string& path) override;
  Status Write(const std::string& path, uint64_t offset, ByteView data) override;
  Result<Bytes> Read(const std::string& path, uint64_t offset, uint64_t length) override;
  Status Truncate(const std::string& path, uint64_t new_size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<FileAttr> Stat(const std::string& path) override;
  Result<std::vector<std::string>> Readdir(const std::string& path) override;
  // Permission bits and ownership persist in the on-disk inode (tail bytes of
  // the 128-byte slot; old images decode root-owned 0644/0755 equivalents).
  Status Chmod(const std::string& path, uint32_t mode) override;
  Status Chown(const std::string& path, uint32_t uid, uint32_t gid) override;
  Status Sync() override;
  Status Fsync(const std::string& path) override;
  std::string Name() const override { return "safefs"; }

  // --- handle-based data plane (FileSystem optional block) ---
  // A handle pins the opened path's *resolution* (ino + per-inode data
  // state), revalidated against a namespace generation counter whenever any
  // dirent changes — so handle I/O is observably identical to the path API
  // (no open-unlink semantics) while the steady state skips the walk, the
  // global lock, and one full copy per block:
  //   * reads of clean inodes run under a per-inode rwlock in shared mode
  //     (8 readers of 8 files — or of one file — proceed concurrently),
  //   * the file-offset→disk-block map is cached per inode so steady-state
  //     reads do zero indirect-block walks,
  //   * sequential access triggers read-ahead into a private sharded
  //     BufferCache, and the hit path does one copy: cache buffer → caller.
  // Writes and cold/dirty reads take mutex_ exactly like the path API.
  bool SupportsHandleIo() const override { return true; }
  Result<InodeHandle> OpenByPath(const std::string& path) override;
  void CloseHandle(InodeHandle handle) override;
  Result<Bytes> ReadAt(InodeHandle handle, uint64_t offset, uint64_t length) override;
  Status WriteAt(InodeHandle handle, uint64_t offset, ByteView data) override;
  // Vectored fast-path writes: one handle resolution and one per-inode lock
  // round-trip cover the whole run. Applies slices in order while each one
  // takes the write-back fast path; returns the count applied (the caller
  // finishes the remainder through WriteAt). kENOSYS when write-back is off —
  // per-op WriteAt keeps the synchronous plane's global op ordering.
  Result<size_t> WriteAtBatch(InodeHandle handle, const WriteSlice* slices,
                              size_t count) override;
  Result<FileAttr> StatHandle(InodeHandle handle) override;
  Status FsyncHandle(InodeHandle handle) override;

  SafeFsIoStats io_stats() const;

  // --- write-back switch ---
  // On (the default): WriteAt buffers dirty block cells per inode with
  // delayed allocation and no global lock; dirty state drains to the staged
  // plane at every path-API/slow-path operation, at Sync/Fsync, when the
  // background flusher wakes, or when the dirty-cell cap applies
  // backpressure. Off: every write takes mutex_ and stages synchronously
  // (the PR-5 behaviour; the bench's comparison cell).
  void SetWriteBack(bool enabled);
  bool write_back_enabled() const {
    return writeback_enabled_.load(std::memory_order_relaxed);
  }

  // Quiesce: drain buffered write-back, commit everything, and fold the
  // journal into the home locations (the journal checkpoints lazily on the
  // hot path, so after a plain Sync committed data may live only in the
  // ring). After this returns Ok the raw device image equals the logical
  // state — what unmount or an offline inspection wants.
  Status Checkpoint();

  void SetSemanticFault(SafeFsSemanticFault fault) {
    fault_.store(fault, std::memory_order_relaxed);
  }
  void SetAllocPolicy(AllocPolicy policy) {
    MutexGuard guard(mutex_);
    alloc_policy_ = policy;
  }
  AllocPolicy alloc_policy() const {
    MutexGuard guard(mutex_);
    return alloc_policy_;
  }

  SafeFsStats stats() const {
    MutexGuard guard(mutex_);
    return stats_;
  }
  JournalStats journal_stats() const { return journal_.stats(); }
  uint64_t FreeDataBlocks() const;

  // --- path-resolution fast path ---
  // Two pure acceleration layers over the directory blocks: the dentry cache
  // ((parent ino, name) -> child ino with negative entries) and the
  // per-directory name index (name -> slot, plus a free-slot set so inserts
  // stop rescanning from block 0). Both are maintained at the same choke
  // points that mutate dirent blocks, under the same mutex, so disabling them
  // changes no observable behaviour — tests/dcache_coherence_test.cc holds a
  // cache-enabled run bit-identical to a disabled run and to the spec model.
  void SetLookupAcceleration(bool enabled);
  bool lookup_acceleration_enabled() const {
    MutexGuard guard(mutex_);
    return accel_enabled_;
  }
  DcacheStats dcache_stats() const { return dcache_.StatsSnapshot(); }

 private:
  SafeFs(BlockDevice& device, const FsGeometry& geometry);

  // --- block staging (the ownership-model surface) ---

  // Current content of an absolute block: staged cell if dirty, else device.
  Result<Bytes> LoadBlock(uint64_t block) const SKERN_REQUIRES(mutex_);
  // Returns the staged cell for `block`, staging current content on first
  // touch (or zeroes with `zero_fill`).
  Result<Owned<Bytes>*> StageBlock(uint64_t block, bool zero_fill) SKERN_REQUIRES(mutex_);
  void DropStaged(uint64_t block) SKERN_REQUIRES(mutex_);

  // --- allocator ---
  Result<uint64_t> AllocDataBlock() SKERN_REQUIRES(mutex_);
  void FreeDataBlock(uint64_t block) SKERN_REQUIRES(mutex_);

  // --- inodes ---
  Result<uint64_t> AllocInode(uint32_t mode) SKERN_REQUIRES(mutex_);
  DiskInode& InodeRef(uint64_t ino) SKERN_REQUIRES(mutex_);
  void MarkInodeDirty(uint64_t ino) SKERN_REQUIRES(mutex_);
  void FreeInode(uint64_t ino) SKERN_REQUIRES(mutex_);

  // --- file block mapping ---
  // Block index -> absolute device block, 0 if hole/unmapped.
  Result<uint64_t> MapBlock(const DiskInode& inode, uint64_t index) const
      SKERN_REQUIRES(mutex_);
  // Ensures the file block at `index` is mapped, allocating (and staging) as
  // needed. Returns the absolute block.
  Result<uint64_t> MapBlockForWrite(uint64_t ino, uint64_t index) SKERN_REQUIRES(mutex_);
  // Frees all blocks at index >= first_kept.
  Status FreeBlocksFrom(uint64_t ino, uint64_t first_kept) SKERN_REQUIRES(mutex_);

  // --- directories ---
  struct WalkResult {
    uint64_t parent_ino = kInvalidIno;
    uint64_t ino = kInvalidIno;  // kInvalidIno if the final component is absent
    std::string leaf;
  };
  // Walks a normalized path. Errors: ENOENT/ENOTDIR on bad intermediates.
  Result<WalkResult> Walk(const std::string& normalized) const SKERN_REQUIRES(mutex_);
  Result<uint64_t> DirLookup(uint64_t dir_ino, const std::string& name) const
      SKERN_REQUIRES(mutex_);
  Result<uint64_t> DirLookupScan(uint64_t dir_ino, const std::string& name) const
      SKERN_REQUIRES(mutex_);
  Status DirAddEntry(uint64_t dir_ino, const std::string& name, uint64_t ino)
      SKERN_REQUIRES(mutex_);
  Status DirRemoveEntry(uint64_t dir_ino, const std::string& name) SKERN_REQUIRES(mutex_);
  Result<std::vector<Dirent>> DirEntries(uint64_t dir_ino) const SKERN_REQUIRES(mutex_);
  Result<bool> DirIsEmpty(uint64_t dir_ino) const SKERN_REQUIRES(mutex_);
  // True if `ancestor` is on the parent chain of `ino` (cycle check).
  Result<bool> IsAncestor(uint64_t ancestor, uint64_t ino, const std::string& to_norm) const
      SKERN_REQUIRES(mutex_);

  // --- data-plane fast path (see the public handle-API comment) ---
  // Per-regular-file concurrency + cache state. Lifetime: created with the
  // inode (AllocInode/Mount), shared with open handles, marked `dead` and
  // dropped from data_state_ when the inode is freed — a handle that
  // outlives the file sees `dead`, falls to the slow path, revalidates, and
  // fails exactly like a fresh path walk.
  // One dirty byte range within a write-back block cell.
  struct WbExtent {
    uint32_t begin = 0;
    uint32_t end = 0;  // exclusive
  };
  // Write-back state for one file block: the bytes written since the last
  // drain, stamped with the *global* order of the cell's first dirtying.
  // Delayed allocation contract: a cell whose block was unmapped at first
  // dirty reserved its block from `avail_` but allocation happens only at
  // drain, replayed across all inodes in `seq` order — exactly the first-fit
  // order the synchronous path would have produced, so write-back and
  // synchronous runs of one op sequence stay block-for-block identical.
  struct WbDirtyBlock {
    uint64_t seq = 0;        // global first-dirty order (wb_seq_)
    bool was_mapped = false; // block had a mapping when first dirtied
    bool full = false;       // `data` is authoritative for the whole block
    Bytes data;              // kBlockSize; zero-initialized for fresh blocks
    std::vector<WbExtent> extents;  // sorted, merged; unused when `full`
  };

  struct InodeDataState {
    explicit InodeDataState(uint64_t inode_no) : ino(inode_no) {}
    const uint64_t ino;
    mutable TrackedRwLock rwlock{"safefs.inode"};
    // file block index -> absolute device block (0 = hole). When `warmed`,
    // complete for every index < BlocksForSize(cached_size).
    std::unordered_map<uint64_t, uint64_t> block_map SKERN_GUARDED_BY(rwlock);
    uint64_t cached_size SKERN_GUARDED_BY(rwlock) = 0;
    bool warmed SKERN_GUARDED_BY(rwlock) = false;
    // Permission/ownership mirror (valid while warmed), so the StatHandle
    // fast path — and through it the Vfs per-I/O access revalidation — never
    // touches mutex_. Chmod/Chown update it in place under rwlock.
    uint32_t cached_perm SKERN_GUARDED_BY(rwlock) = kDefaultFilePerm;
    uint32_t cached_uid SKERN_GUARDED_BY(rwlock) = 0;
    uint32_t cached_gid SKERN_GUARDED_BY(rwlock) = 0;
    // Epoch the inode's staged data joins at the next successful sync; while
    // write_epoch > syncs_completed_ the device image is stale and reads
    // must go through staged_ under mutex_.
    uint64_t write_epoch SKERN_GUARDED_BY(rwlock) = 0;
    bool dead SKERN_GUARDED_BY(rwlock) = false;
    // --- write-back plane (all under rwlock; fast writes hold it exclusive,
    // fast reads overlay wb_dirty on the underlying content in shared mode,
    // drains empty it under mutex_ + rwlock) ---
    std::map<uint64_t, WbDirtyBlock> wb_dirty SKERN_GUARDED_BY(rwlock);
    uint64_t wb_reserved_blocks SKERN_GUARDED_BY(rwlock) = 0;
    bool wb_indirect_reserved SKERN_GUARDED_BY(rwlock) = false;
    bool wb_registered SKERN_GUARDED_BY(rwlock) = false;
    // Mirror of inode.indirect != 0 (valid while warmed), so the fast write
    // can reserve the indirect block without touching mutex_.
    bool has_indirect SKERN_GUARDED_BY(rwlock) = false;
    // Sequential-access detection + read-ahead window (monotonic hints; the
    // races between concurrent readers only cost accuracy, never safety).
    std::atomic<uint64_t> next_seq_offset{0};
    std::atomic<uint64_t> seq_streak{0};
    std::atomic<uint64_t> ra_start{0};
    std::atomic<uint64_t> ra_end{0};
  };

  // One open handle: the pinned path plus its cached resolution, stamped
  // with the namespace generation it was computed under.
  struct HandleRec {
    explicit HandleRec(std::string normalized) : path(std::move(normalized)) {}
    const std::string path;
    mutable TrackedSpinLock hlock{"safefs.handle"};
    uint64_t res_gen SKERN_GUARDED_BY(hlock) = 0;
    uint64_t res_ino SKERN_GUARDED_BY(hlock) = kInvalidIno;
    Errno res_err SKERN_GUARDED_BY(hlock) = Errno::kOk;
    std::shared_ptr<InodeDataState> res_data SKERN_GUARDED_BY(hlock);
  };

  std::shared_ptr<HandleRec> LookupHandle(InodeHandle handle) const;
  // Re-walks rec.path and stores the fresh resolution (or its error).
  void RevalidateHandleLocked(HandleRec& rec) SKERN_REQUIRES(mutex_);
  bool HandleCurrent(const HandleRec& rec) const;
  // The lock-free read: per-inode rwlock shared, block map + read cache.
  // nullopt = fall back to the slow path (cold map, dirty data, dead inode).
  std::optional<Bytes> TryFastRead(InodeDataState& ds, uint64_t offset,
                                   uint64_t length) const;
  void MaybeReadAhead(InodeDataState& ds, uint64_t from) const
      SKERN_REQUIRES_SHARED(ds.rwlock);
  // Populates block_map/cached_size from the inode after a slow read.
  void WarmBlockMapLocked(uint64_t ino, InodeDataState& ds) const SKERN_REQUIRES(mutex_);

  // --- write-back plane ---
  // The lock-free write: buffers the payload into per-inode dirty cells with
  // delayed allocation. nullopt = fall back to the slow path (cold map, dead
  // inode, reservation failure). A returned Status is final (Ok, or a
  // validation error like EFBIG that the slow path would also produce).
  std::optional<Status> TryFastWrite(const std::shared_ptr<InodeDataState>& ds,
                                     uint64_t offset, ByteView data);
  // The buffering core, with ds.rwlock already held exclusively — what a
  // vectored batch loops over so one lock round-trip covers the run. `dsp`
  // is the same state (kept for wb_list_ registration); the caller publishes
  // stats and runs the wake/backpressure check afterwards.
  std::optional<Status> TryFastWriteLocked(const std::shared_ptr<InodeDataState>& dsp,
                                           InodeDataState& ds, uint64_t offset,
                                           ByteView data) SKERN_REQUIRES(ds.rwlock);
  // Post-buffering bookkeeping shared by the single and vectored fast paths:
  // stats, the dirty-cells gauge, and the flusher wake / inline backpressure
  // decision. `applied` is the number of ops just buffered.
  Status FinishFastWrites(uint64_t applied);
  // Reserves n data blocks against avail_; false if the file system cannot
  // commit to them (the caller falls to the slow path for exact ENOSPC).
  bool ReserveBlocks(uint64_t n);
  // Replays every pending write-back cell (all inodes, global seq order)
  // into the staged plane: allocation first-fit in first-dirty order, then
  // content, then sizes. Every mutex_ operation calls this first, so the
  // slow path always observes fully-applied state.
  Status DrainWriteBackLocked() SKERN_REQUIRES(mutex_);
  void RecomputeAvailLocked() SKERN_REQUIRES(mutex_);

  // --- data paths ---
  Status WriteLocked(const std::string& path, uint64_t offset, ByteView data)
      SKERN_REQUIRES(mutex_);
  Result<Bytes> ReadLocked(const std::string& path, uint64_t offset, uint64_t length) const
      SKERN_REQUIRES(mutex_);
  // Post-resolution cores shared by the path and handle APIs, so both modes
  // run byte-identical logic (including semantic-fault behaviour).
  Status WriteInodeLocked(uint64_t ino, InodeDataState& ds, uint64_t offset, ByteView data)
      SKERN_REQUIRES(mutex_);
  Result<Bytes> ReadInodeLocked(uint64_t ino, uint64_t offset, uint64_t length) const
      SKERN_REQUIRES(mutex_);
  Status TruncateInode(uint64_t ino, uint64_t new_size) SKERN_REQUIRES(mutex_);
  Status SyncLocked() SKERN_REQUIRES(mutex_);

  BlockDevice& device_;
  FsGeometry geo_;
  Journal journal_;
  // The journal runs lazy checkpoints for SafeFs, so a committed batch may
  // live only in the journal area + overlay; every content read below the
  // staged plane must go through this view, never raw device blocks.
  JournalHomeDevice home_device_;
  mutable TrackedMutex mutex_{"safefs.lock"};

  // In-memory metadata images (authoritative between syncs).
  Bytes bitmap_ SKERN_GUARDED_BY(mutex_);  // data-area allocation bitmap
  // In-use inodes.
  std::map<uint64_t, DiskInode> inodes_ SKERN_GUARDED_BY(mutex_);
  uint64_t next_ino_hint_ SKERN_GUARDED_BY(mutex_) = kRootIno + 1;

  // Dirty state since the last commit (absolute block -> content cell).
  std::map<uint64_t, Owned<Bytes>> staged_ SKERN_GUARDED_BY(mutex_);
  std::set<uint64_t> dirty_inos_ SKERN_GUARDED_BY(mutex_);
  // Freed since last sync.
  std::set<uint64_t> cleared_inos_ SKERN_GUARDED_BY(mutex_);
  bool bitmap_dirty_ SKERN_GUARDED_BY(mutex_) = false;

  // Atomic (not mutex-guarded): the write-back fast path must apply write
  // faults without the global lock, and a fault switch mid-run only needs to
  // be seen by operations that start after it.
  std::atomic<SafeFsSemanticFault> fault_{SafeFsSemanticFault::kNone};
  AllocPolicy alloc_policy_ SKERN_GUARDED_BY(mutex_) = AllocPolicy::kFirstFit;
  uint64_t alloc_hint_ SKERN_GUARDED_BY(mutex_) = 0;  // next-fit scan position
  SafeFsStats stats_ SKERN_GUARDED_BY(mutex_);

  // --- lookup acceleration (guarded by mutex_; see SetLookupAcceleration) ---
  // One dirent slot, addressed linearly (block_index * kDirentsPerBlock +
  // slot) with the absolute device block remembered so removal can stage it
  // without re-walking the inode's block map.
  struct DirSlot {
    uint64_t ino = kInvalidIno;
    uint64_t block = 0;    // absolute device block holding the dirent
    uint64_t linear = 0;   // block_index * kDirentsPerBlock + slot
  };
  struct DirIndex {
    std::unordered_map<std::string, DirSlot> by_name;
    // Free slots within mapped blocks, ordered: *begin() reproduces exactly
    // the "first free slot wins" placement of the linear scan, so cached and
    // uncached runs produce bit-identical disk images.
    std::set<uint64_t> free_slots;
  };
  // Builds (one full scan, amortized over every later O(1) probe) or returns
  // the index for a directory.
  Result<DirIndex*> EnsureDirIndex(uint64_t dir_ino) const SKERN_REQUIRES(mutex_);

  mutable DentryCache dcache_;  // internally synchronized (sharded spinlocks)
  mutable std::unordered_map<uint64_t, DirIndex> dir_index_ SKERN_GUARDED_BY(mutex_);
  bool accel_enabled_ SKERN_GUARDED_BY(mutex_) = true;

  // --- data-plane fast path state ---
  // Bumped (under mutex_) by every dirent mutation and inode free; handle
  // resolutions stamped with an older generation must re-walk.
  std::atomic<uint64_t> ns_generation_{0};
  // Count of successful syncs; an inode with write_epoch > this has staged
  // data the device image does not show yet.
  std::atomic<uint64_t> syncs_completed_{0};
  // Every live regular file's data state (directories have none).
  std::unordered_map<uint64_t, std::shared_ptr<InodeDataState>> data_state_
      SKERN_GUARDED_BY(mutex_);
  // Open handles, under a dedicated leaf lock so Close never waits on I/O.
  // A rwlock, not a spinlock: every ReadAt/WriteAt resolves its handle here,
  // so concurrent fast readers must not serialize (or FIFO-queue) on it.
  mutable TrackedRwLock handle_lock_{"safefs.handles"};
  std::unordered_map<InodeHandle, std::shared_ptr<HandleRec>> handles_
      SKERN_GUARDED_BY(handle_lock_);
  InodeHandle next_handle_ SKERN_GUARDED_BY(handle_lock_) = 1;
  // Read-only cache of clean file data blocks (sharded; see DESIGN.md §4f).
  // Entries are invalidated at the two choke points that supersede a
  // block's device content: StageBlock (block goes dirty) and FreeDataBlock.
  std::unique_ptr<BufferCache> read_cache_;
  mutable struct {
    std::atomic<uint64_t> fast_reads{0};
    std::atomic<uint64_t> slow_reads{0};
    std::atomic<uint64_t> fast_writes{0};
    std::atomic<uint64_t> slow_writes{0};
    std::atomic<uint64_t> readahead_issued{0};
    std::atomic<uint64_t> readahead_hits{0};
    std::atomic<uint64_t> blockmap_hits{0};
    std::atomic<uint64_t> blockmap_misses{0};
    std::atomic<uint64_t> wb_drains{0};
    std::atomic<uint64_t> wb_drained_cells{0};
  } io_;

  // --- write-back plane state ---
  std::atomic<bool> writeback_enabled_{true};
  // Global first-dirty order across all inodes; drains replay allocation in
  // this order to reproduce the synchronous path's first-fit placement.
  std::atomic<uint64_t> wb_seq_{0};
  // Blocks the file system can still commit to: bitmap free count minus
  // outstanding write-back reservations. Fast writes CAS-reserve here;
  // synchronous allocations (always post-drain) decrement; frees increment.
  std::atomic<int64_t> avail_{0};
  std::atomic<uint64_t> wb_dirty_cells_{0};
  // Inodes with pending write-back, under a dedicated leaf lock so a fast
  // write registers without touching mutex_.
  mutable TrackedSpinLock wb_list_lock_{"safefs.wb_list"};
  std::vector<std::shared_ptr<InodeDataState>> wb_list_ SKERN_GUARDED_BY(wb_list_lock_);
  // While a drain replays reserved allocations, AllocDataBlock must not
  // double-charge avail_; the drain refunds any over-reservation at the end.
  bool wb_replay_active_ SKERN_GUARDED_BY(mutex_) = false;
  uint64_t wb_replay_allocs_ SKERN_GUARDED_BY(mutex_) = 0;
  // Background flusher: drains write-back into the staged plane (never the
  // journal — crash-visible state still moves only at Sync/Fsync). Declared
  // last so it stops before any state it touches is destroyed.
  Event wb_event_;
  KThread wb_flusher_;
};

}  // namespace skern

#endif  // SKERN_SRC_FS_SAFEFS_SAFEFS_H_
