#include "src/fs/specfs/specfs.h"

#include <algorithm>

// NOTE: with RefinementMode::kDisabled (the "release" configuration) every
// operation forwards directly — the model is neither run nor updated, so the
// shipped cost of step 4 is zero, matching the paper's "verification is a
// compile-time check" framing. Do not toggle back to enforcing mid-run: the
// model would be stale. Sync/Fsync still advance the model's durability
// point when it is live.

namespace skern {

bool SpecFs::IsEnvironmentError(Errno e) {
  switch (e) {
    case Errno::kENOSPC:
    case Errno::kEFBIG:
    case Errno::kEIO:
    case Errno::kENOMEM:
    case Errno::kENFILE:
    case Errno::kEMFILE:
      return true;
    default:
      return false;
  }
}

Status SpecFs::Create(const std::string& path) {
  if (GetRefinementMode() == RefinementMode::kDisabled) {
    return inner_->Create(path);
  }
  Status impl = inner_->Create(path);
  if (!impl.ok() && IsEnvironmentError(impl.code())) {
    return impl;
  }
  Status spec = model_.Create(path);
  CheckRefinement("create(" + path + ")", spec, impl);
  return impl;
}

Status SpecFs::Mkdir(const std::string& path) {
  if (GetRefinementMode() == RefinementMode::kDisabled) {
    return inner_->Mkdir(path);
  }
  Status impl = inner_->Mkdir(path);
  if (!impl.ok() && IsEnvironmentError(impl.code())) {
    return impl;
  }
  Status spec = model_.Mkdir(path);
  CheckRefinement("mkdir(" + path + ")", spec, impl);
  return impl;
}

Status SpecFs::Unlink(const std::string& path) {
  if (GetRefinementMode() == RefinementMode::kDisabled) {
    return inner_->Unlink(path);
  }
  Status impl = inner_->Unlink(path);
  if (!impl.ok() && IsEnvironmentError(impl.code())) {
    return impl;
  }
  Status spec = model_.Unlink(path);
  CheckRefinement("unlink(" + path + ")", spec, impl);
  return impl;
}

Status SpecFs::Rmdir(const std::string& path) {
  if (GetRefinementMode() == RefinementMode::kDisabled) {
    return inner_->Rmdir(path);
  }
  Status impl = inner_->Rmdir(path);
  if (!impl.ok() && IsEnvironmentError(impl.code())) {
    return impl;
  }
  Status spec = model_.Rmdir(path);
  CheckRefinement("rmdir(" + path + ")", spec, impl);
  return impl;
}

Status SpecFs::Write(const std::string& path, uint64_t offset, ByteView data) {
  if (GetRefinementMode() == RefinementMode::kDisabled) {
    return inner_->Write(path, offset, data);
  }
  Status impl = inner_->Write(path, offset, data);
  if (!impl.ok() && IsEnvironmentError(impl.code())) {
    return impl;
  }
  Status spec = model_.Write(path, offset, data);
  CheckRefinement("write(" + path + ", " + std::to_string(offset) + ", " +
                      std::to_string(data.size()) + ")",
                  spec, impl);
  // Deep check: writes are where silent data corruption hides, so verify the
  // write is actually readable back per the specification.
  if (impl.ok() && GetRefinementMode() != RefinementMode::kDisabled) {
    Result<Bytes> spec_read = model_.Read(path, offset, data.size());
    Result<Bytes> impl_read = inner_->Read(path, offset, data.size());
    CheckRefinement("write-readback(" + path + ")", spec_read, impl_read);
  }
  return impl;
}

Result<Bytes> SpecFs::Read(const std::string& path, uint64_t offset, uint64_t length) {
  if (GetRefinementMode() == RefinementMode::kDisabled) {
    return inner_->Read(path, offset, length);
  }
  Result<Bytes> impl = inner_->Read(path, offset, length);
  if (!impl.ok() && IsEnvironmentError(impl.error())) {
    return impl;
  }
  Result<Bytes> spec = model_.Read(path, offset, length);
  CheckRefinement("read(" + path + ", " + std::to_string(offset) + ", " +
                      std::to_string(length) + ")",
                  spec, impl);
  return impl;
}

Status SpecFs::Truncate(const std::string& path, uint64_t new_size) {
  if (GetRefinementMode() == RefinementMode::kDisabled) {
    return inner_->Truncate(path, new_size);
  }
  Status impl = inner_->Truncate(path, new_size);
  if (!impl.ok() && IsEnvironmentError(impl.code())) {
    return impl;
  }
  Status spec = model_.Truncate(path, new_size);
  CheckRefinement("truncate(" + path + ", " + std::to_string(new_size) + ")", spec, impl);
  return impl;
}

Status SpecFs::Rename(const std::string& from, const std::string& to) {
  if (GetRefinementMode() == RefinementMode::kDisabled) {
    return inner_->Rename(from, to);
  }
  Status impl = inner_->Rename(from, to);
  if (!impl.ok() && IsEnvironmentError(impl.code())) {
    return impl;
  }
  Status spec = model_.Rename(from, to);
  CheckRefinement("rename(" + from + " -> " + to + ")", spec, impl);
  return impl;
}

Result<FileAttr> SpecFs::Stat(const std::string& path) {
  if (GetRefinementMode() == RefinementMode::kDisabled) {
    return inner_->Stat(path);
  }
  Result<FileAttr> impl = inner_->Stat(path);
  if (!impl.ok() && IsEnvironmentError(impl.error())) {
    return impl;
  }
  Result<ModelAttr> spec_attr = model_.Stat(path);
  if (spec_attr.ok()) {
    // The spec model carries no ownership state, so mirror the impl's
    // mode/uid/gid before comparing: refinement is about namespace + data.
    FileAttr mapped;
    mapped.is_dir = spec_attr->is_dir;
    mapped.size = spec_attr->size;
    CheckRefinement("stat(" + path + ")", Result<FileAttr>(mapped), impl);
  } else {
    CheckRefinement("stat(" + path + ")", Result<FileAttr>(spec_attr.error()), impl);
  }
  return impl;
}

Result<std::vector<std::string>> SpecFs::Readdir(const std::string& path) {
  if (GetRefinementMode() == RefinementMode::kDisabled) {
    return inner_->Readdir(path);
  }
  Result<std::vector<std::string>> impl = inner_->Readdir(path);
  if (!impl.ok() && IsEnvironmentError(impl.error())) {
    return impl;
  }
  Result<std::vector<std::string>> spec = model_.Readdir(path);
  CheckRefinement("readdir(" + path + ")", spec, impl);
  return impl;
}

Status SpecFs::Sync() {
  Status impl = inner_->Sync();
  if (impl.ok()) {
    model_.Sync();
  }
  return impl;
}

Status SpecFs::Fsync(const std::string& path) {
  Status impl = inner_->Fsync(path);
  if (impl.ok()) {
    // The journaling implementations commit the whole running transaction on
    // fsync, so the model's durability point advances globally too.
    model_.Sync();
  }
  return impl;
}

std::vector<std::string> DiffFsAgainstModel(FileSystem& fs, const FsModelState& state) {
  std::vector<std::string> diffs;

  // Directory structure: every model dir must list exactly the expected
  // children (which also detects extra files the model does not have).
  for (const auto& dir : state.dirs) {
    std::vector<std::string> expected;
    auto consider = [&](const std::string& candidate) {
      if (candidate != dir && specpath::IsPrefix(dir, candidate) &&
          specpath::Parent(candidate) == dir) {
        expected.push_back(specpath::Basename(candidate));
      }
    };
    for (const auto& [file, bytes] : state.files) {
      consider(file);
    }
    for (const auto& d : state.dirs) {
      consider(d);
    }
    std::sort(expected.begin(), expected.end());
    auto actual = fs.Readdir(dir);
    if (!actual.ok()) {
      diffs.push_back("readdir(" + dir + ") failed: " + actual.status().ToString());
      continue;
    }
    if (actual.value() != expected) {
      diffs.push_back("readdir(" + dir + ") mismatch");
    }
  }

  // File contents and sizes.
  for (const auto& [file, bytes] : state.files) {
    auto attr = fs.Stat(file);
    if (!attr.ok()) {
      diffs.push_back("stat(" + file + ") failed: " + attr.status().ToString());
      continue;
    }
    if (attr->is_dir || attr->size != bytes.size()) {
      diffs.push_back("stat(" + file + ") mismatch: size " + std::to_string(attr->size) +
                      " vs " + std::to_string(bytes.size()));
    }
    auto content = fs.Read(file, 0, bytes.size() + 1);
    if (!content.ok()) {
      diffs.push_back("read(" + file + ") failed: " + content.status().ToString());
      continue;
    }
    if (content.value() != bytes) {
      diffs.push_back("content(" + file + ") mismatch");
    }
  }
  return diffs;
}

}  // namespace skern
