// specfs: the functionally-specified file system (step 4).
//
// specfs is a decorator: it wraps any FileSystem (canonically safefs) and
// runs every operation against the executable specification (FsModel) in
// lock-step, checking that the implementation's observable outcome — return
// value and errno — is exactly what the specification relates the old state
// to (§4.4's "each operation performed by the implementation is a valid
// relation between the before- and after- model interpretations").
//
// Partial-specification boundary: resource exhaustion (ENOSPC, EFBIG, EIO,
// ENOMEM, ENFILE, EMFILE) is outside the model — the model has unbounded
// storage. When the implementation reports such an error, specfs does not
// apply the model operation and does not flag a mismatch; the contract is
// that a resource-failed operation has no observable effect (which later
// checks would catch as divergence if violated).
//
// Crash checking: the model tracks the last synced state; after a simulated
// crash + remount, DiffFsAgainstModel() compares the recovered tree against
// it — "guaranteed to recover to the last synced version given any crash".
#ifndef SKERN_SRC_FS_SPECFS_SPECFS_H_
#define SKERN_SRC_FS_SPECFS_SPECFS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/spec/fs_model.h"
#include "src/spec/refinement.h"
#include "src/vfs/filesystem.h"

namespace skern {

class SpecFs : public FileSystem {
 public:
  explicit SpecFs(std::shared_ptr<FileSystem> inner) : inner_(std::move(inner)) {}

  Status Create(const std::string& path) override;
  Status Mkdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rmdir(const std::string& path) override;
  Status Write(const std::string& path, uint64_t offset, ByteView data) override;
  Result<Bytes> Read(const std::string& path, uint64_t offset, uint64_t length) override;
  Status Truncate(const std::string& path, uint64_t new_size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<FileAttr> Stat(const std::string& path) override;
  Result<std::vector<std::string>> Readdir(const std::string& path) override;
  Status Sync() override;
  Status Fsync(const std::string& path) override;
  std::string Name() const override { return "specfs(" + inner_->Name() + ")"; }

  const FsModel& model() const { return model_; }
  FileSystem& inner() { return *inner_; }

 private:
  // True for errors the (resource-unbounded) specification does not model.
  static bool IsEnvironmentError(Errno e);

  std::shared_ptr<FileSystem> inner_;
  FsModel model_;
};

// Compares a file system's full observable tree against a model state.
// Returns human-readable divergences; empty means the trees agree.
std::vector<std::string> DiffFsAgainstModel(FileSystem& fs, const FsModelState& state);

}  // namespace skern

#endif  // SKERN_SRC_FS_SPECFS_SPECFS_H_
