#include "src/mem/slab.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <new>
#include <utility>

#include "src/base/alloc_bridge.h"
#include "src/base/bytes.h"
#include "src/base/panic.h"
#include "src/obs/span.h"
#include "src/ownership/leak_detector.h"

namespace skern {
namespace mem {

namespace internal {

// Lives at the base of every 64 KiB slab chunk; object pointers recover it
// with one mask. `owner` is immutable after the slab is published in the
// region table, so the lock-free free-routing read is safe.
struct Slab {
  SlabCache* owner = nullptr;
  uint64_t magic = 0;
  Slab* next = nullptr;
  uint32_t capacity = 0;
};

struct Magazine {
  Magazine* next = nullptr;
  uint32_t count = 0;
  void* rounds[kMaxMagRounds];
};

// Per-thread, per-cache state. Tallies are thread-private and flushed into
// the cache's atomics on depot trips and every kTallyFlushOps fast-path ops.
struct MagSlot {
  Magazine* loaded = nullptr;
  Magazine* prev = nullptr;
  uint32_t tally_allocs = 0;
  uint32_t tally_frees = 0;
  uint32_t tally_hits = 0;
  uint32_t ops_since_flush = 0;
};

}  // namespace internal

namespace {

using internal::MagSlot;
using internal::Magazine;
using internal::Slab;

constexpr uint64_t kSlabMagic = 0x51ab51ab51ab51abull;
constexpr uint64_t kRedzoneMagic = 0xfeedfacecafebeefull;
constexpr uint8_t kPoisonByte = 0x6b;
constexpr uint32_t kTallyFlushOps = 4096;
constexpr size_t kRedzoneBytes = sizeof(uint64_t);

constexpr size_t AlignUp(size_t n, size_t a) { return (n + a - 1) & ~(a - 1); }

std::atomic<bool> g_slab_enabled{true};

// ---------------------------------------------------------------------------
// Slab-region table: fixed-size open-addressed set of slab base addresses.
// Mutations (grow/teardown) take g_region_lock; the free-routing lookup is
// a lock-free probe over acquire loads. Slots: 0 = empty, 1 = tombstone.
// The acquire/release pair orders the slab header writes (owner, magic)
// before the base address becomes visible to routers.
// ---------------------------------------------------------------------------

constexpr size_t kRegionSlots = 1 << 16;
constexpr uintptr_t kRegionTombstone = 1;

std::atomic<uintptr_t> g_regions[kRegionSlots];
Spinlock g_region_lock;
size_t g_region_count = 0;  // guarded by g_region_lock, tombstones included

size_t RegionHash(uintptr_t base) {
  return static_cast<size_t>(((base >> 16) * 0x9e3779b97f4a7c15ull) >> 48);
}

void RegisterRegion(uintptr_t base) {
  SpinGuard g(g_region_lock);
  // Cap the load factor; probes must terminate and stay short. 32 Ki slabs
  // (2 GiB of slab memory) is far beyond any workload here.
  SKERN_CHECK(g_region_count < kRegionSlots / 2);
  size_t i = RegionHash(base);
  while (true) {
    uintptr_t v = g_regions[i].load(std::memory_order_relaxed);
    if (v == 0 || v == kRegionTombstone) {
      g_regions[i].store(base, std::memory_order_release);
      ++g_region_count;
      return;
    }
    i = (i + 1) & (kRegionSlots - 1);
  }
}

void UnregisterRegion(uintptr_t base) {
  SpinGuard g(g_region_lock);
  size_t i = RegionHash(base);
  while (true) {
    uintptr_t v = g_regions[i].load(std::memory_order_relaxed);
    if (v == base) {
      g_regions[i].store(kRegionTombstone, std::memory_order_release);
      return;
    }
    SKERN_CHECK(v != 0);  // unregistering a base that was never registered
    i = (i + 1) & (kRegionSlots - 1);
  }
}

bool IsSlabBase(uintptr_t base) {
  size_t i = RegionHash(base);
  while (true) {
    uintptr_t v = g_regions[i].load(std::memory_order_acquire);
    if (v == base) {
      return true;
    }
    if (v == 0) {
      return false;
    }
    i = (i + 1) & (kRegionSlots - 1);
  }
}

SlabCache* LookupOwner(void* p) {
  uintptr_t addr = reinterpret_cast<uintptr_t>(p);
  uintptr_t base = addr & ~(kSlabBytes - 1);
  // The slab header occupies the base; handed-out objects never sit there,
  // so a base-aligned pointer is a heap allocation that happened to align.
  if (base == addr || !IsSlabBase(base)) {
    return nullptr;
  }
  Slab* slab = reinterpret_cast<Slab*>(base);
  SKERN_CHECK(slab->magic == kSlabMagic);
  return slab->owner;
}

// ---------------------------------------------------------------------------
// Cache registry + per-thread caches.
// ---------------------------------------------------------------------------

Spinlock g_registry_lock;
SlabCache* g_caches[kMaxCaches];  // guarded by g_registry_lock; slots retire
std::atomic<uint32_t> g_cache_count{0};

struct ThreadCache {
  MagSlot slots[kMaxCaches];
};

std::vector<ThreadCache*>& ThreadRegistry() {
  static auto* v = new std::vector<ThreadCache*>();  // leaked, guarded by g_registry_lock
  return *v;
}

// The fast path dereferences t_tc only (trivially-destructible pointer);
// t_tc_owner's destructor drains the magazines at thread exit and flips
// t_tls_dead so late frees (static destructors, detached teardown) take the
// depot path instead of resurrecting TLS.
thread_local ThreadCache* t_tc = nullptr;
thread_local bool t_tls_dead = false;

// Re-entrancy firewall: while a slow path holds a depot lock it may touch
// infrastructure (obs spans, magazine allocation) that allocates; any such
// allocation arriving back through the bridge must fall to the plain heap
// rather than re-enter a size-class depot.
thread_local bool t_in_slab = false;

struct ReentryGuard {
  bool saved;
  ReentryGuard() : saved(t_in_slab) { t_in_slab = true; }
  ~ReentryGuard() { t_in_slab = saved; }
};

std::atomic<ViolationHandler> g_violation_handler{nullptr};

void ReportViolation(const std::string& cache, const char* kind, void* p) {
  ViolationHandler h = g_violation_handler.load(std::memory_order_acquire);
  if (h != nullptr) {
    h(cache.c_str(), kind, p);
    return;
  }
  SKERN_CHECK_MSG(false, "slab " + std::string(kind) + " violation in cache " + cache);
}

void DestroyThreadCache();

struct TcOwner {
  ~TcOwner() { DestroyThreadCache(); }
};
thread_local TcOwner t_tc_owner;

ThreadCache* GetTc() {
  ThreadCache* tc = t_tc;
  if (tc != nullptr) [[likely]] {
    return tc;
  }
  if (t_tls_dead) {
    return nullptr;
  }
  (void)&t_tc_owner;  // odr-use arms the thread-exit drain
  tc = new ThreadCache();
  {
    SpinGuard g(g_registry_lock);
    ThreadRegistry().push_back(tc);
  }
  t_tc = tc;
  return tc;
}

uint32_t RegisterCache(SlabCache* cache) {
  SpinGuard g(g_registry_lock);
  uint32_t idx = g_cache_count.load(std::memory_order_relaxed);
  SKERN_CHECK_MSG(idx < kMaxCaches, "slab cache registry exhausted");
  g_caches[idx] = cache;
  g_cache_count.store(idx + 1, std::memory_order_release);
  return idx;
}

std::vector<CensusEntry> SlabCensus() {
  std::vector<CensusEntry> entries;
  for (const CacheStats& s : SnapshotAllCaches()) {
    CensusEntry e;
    e.source = "mem.slab";
    e.label = s.name;
    e.live_objects = s.objs_in_use;
    e.obj_size = s.obj_size;
    entries.push_back(std::move(e));
  }
  return entries;
}

void RegisterCensusOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    LeakDetector::Get().RegisterCensusSource("mem.slab", &SlabCensus);
  });
}

uint32_t MagRoundsFor(size_t obj_size) {
  // Magazine structs carry kMaxMagRounds pointer slots regardless, so round
  // count only governs how many objects a thread may cache (2 * rounds *
  // obj_size per cache). 16 rounds at 4 KiB bounds that at 128 KiB/thread
  // and lets a burst of 32 page buffers ride loaded+prev without a depot
  // trip — the block writeback and aio patterns that motivated the cache.
  if (obj_size <= 256) return kMaxMagRounds;
  if (obj_size <= 4096) return 16;
  return 8;
}

size_t ComputeStride(size_t obj_size, bool debug) {
  return AlignUp(obj_size + (debug ? kRedzoneBytes : 0), 16);
}

}  // namespace

// Accesses MagSlot internals of a cache from the registry walkers (thread
// exit, explicit drain, cache teardown).
class ThreadCacheDrainer {
 public:
  // Returns a thread's magazines for one cache to its depot. Caller holds
  // g_registry_lock; takes the cache's depot lock.
  static void DrainSlot(SlabCache* cache, MagSlot& slot) {
    ReentryGuard reent;
    SpinGuard g(cache->depot_lock_);
    cache->FlushSlotTallies(slot);
    if (slot.loaded != nullptr) {
      cache->ReturnMagazine(slot.loaded);
      slot.loaded = nullptr;
    }
    if (slot.prev != nullptr) {
      cache->ReturnMagazine(slot.prev);
      slot.prev = nullptr;
    }
  }

  // Cache teardown: the rounds die with the slabs, only the magazine
  // structures need freeing. Caller holds g_registry_lock and guarantees
  // the cache is quiescent.
  static void StealSlot(MagSlot& slot) {
    delete slot.loaded;
    delete slot.prev;
    slot = MagSlot{};
  }
};

namespace {

void DestroyThreadCache() {
  t_tls_dead = true;
  ThreadCache* tc = t_tc;
  if (tc == nullptr) {
    return;
  }
  t_tc = nullptr;
  {
    SpinGuard g(g_registry_lock);
    uint32_t n = g_cache_count.load(std::memory_order_acquire);
    for (uint32_t i = 0; i < n; ++i) {
      if (g_caches[i] != nullptr) {
        ThreadCacheDrainer::DrainSlot(g_caches[i], tc->slots[i]);
      }
    }
    auto& reg = ThreadRegistry();
    reg.erase(std::remove(reg.begin(), reg.end(), tc), reg.end());
  }
  delete tc;
}

}  // namespace

// ---------------------------------------------------------------------------
// SlabCache
// ---------------------------------------------------------------------------

SlabCache::SlabCache(std::string name, size_t obj_size, SlabOptions opts)
    : name_(std::move(name)),
      obj_size_(std::max(obj_size, sizeof(void*))),
      stride_(ComputeStride(obj_size_, opts.debug)),
      mag_rounds_(MagRoundsFor(obj_size_)),
      debug_(opts.debug),
      quarantine_cap_(opts.debug ? std::max<size_t>(opts.quarantine_objects, 1) : 0) {
  SKERN_CHECK(stride_ <= kSlabBytes / 4);
  if (debug_) {
    quarantine_.resize(quarantine_cap_, nullptr);
  }
  RegisterCensusOnce();
  // Publish last: once the registry slot is set, snapshot/census walkers may
  // touch this cache from other threads.
  tls_index_ = RegisterCache(this);
}

SlabCache::~SlabCache() {
  // Precondition: no concurrent use. Intended for test-constructed caches;
  // NamedCache instances live for the process.
  SpinGuard rg(g_registry_lock);
  g_caches[tls_index_] = nullptr;  // index retires, never reused
  for (ThreadCache* tc : ThreadRegistry()) {
    ThreadCacheDrainer::StealSlot(tc->slots[tls_index_]);
  }
  SpinGuard dg(depot_lock_);
  for (Magazine* m = loaded_mags_; m != nullptr;) {
    Magazine* next = m->next;
    delete m;
    m = next;
  }
  for (Magazine* m = empty_mags_; m != nullptr;) {
    Magazine* next = m->next;
    delete m;
    m = next;
  }
  for (Slab* s = slabs_; s != nullptr;) {
    Slab* next = s->next;
    UnregisterRegion(reinterpret_cast<uintptr_t>(s));
    ::operator delete(s, std::align_val_t(kSlabBytes));
    s = next;
  }
}

void* SlabCache::Alloc() {
  if (!SlabAllocationEnabled()) {
    return ::operator new(obj_size_);
  }
  if (debug_) {
    return AllocDebug();
  }
  ThreadCache* tc = GetTc();
  if (tc == nullptr) {
    return AllocDirect();
  }
  MagSlot& slot = tc->slots[tls_index_];
  Magazine* m = slot.loaded;
  if (m != nullptr && m->count > 0) {
    ++slot.tally_allocs;
    ++slot.tally_hits;
    if (++slot.ops_since_flush >= kTallyFlushOps) {
      FlushSlotTallies(slot);
    }
    return m->rounds[--m->count];
  }
  m = slot.prev;
  if (m != nullptr && m->count > 0) {
    slot.prev = slot.loaded;
    slot.loaded = m;
    ++slot.tally_allocs;
    ++slot.tally_hits;
    if (++slot.ops_since_flush >= kTallyFlushOps) {
      FlushSlotTallies(slot);
    }
    return m->rounds[--m->count];
  }
  return AllocSlow(slot);
}

void SlabCache::Free(void* p) {
  if (p == nullptr) {
    return;
  }
  if (debug_) {
    return FreeDebug(p);
  }
  ThreadCache* tc = GetTc();
  if (tc == nullptr) {
    return FreeDirect(p);
  }
  MagSlot& slot = tc->slots[tls_index_];
  Magazine* m = slot.loaded;
  if (m != nullptr && m->count < mag_rounds_) {
    m->rounds[m->count++] = p;
    ++slot.tally_frees;
    ++slot.tally_hits;
    if (++slot.ops_since_flush >= kTallyFlushOps) {
      FlushSlotTallies(slot);
    }
    return;
  }
  m = slot.prev;
  if (m != nullptr && m->count < mag_rounds_) {
    slot.prev = slot.loaded;
    slot.loaded = m;
    m->rounds[m->count++] = p;
    ++slot.tally_frees;
    ++slot.tally_hits;
    if (++slot.ops_since_flush >= kTallyFlushOps) {
      FlushSlotTallies(slot);
    }
    return;
  }
  FreeSlow(slot, p);
}

void* SlabCache::AllocSlow(MagSlot& slot) {
  ReentryGuard reent;
  SKERN_SPAN_LOCKED("mem", "depot_refill");
  SpinGuard g(depot_lock_);
  FlushSlotTallies(slot);
  allocs_.fetch_add(1, std::memory_order_relaxed);
  ++depot_refills_;
  Magazine* m;
  if (loaded_mags_ != nullptr) {
    // Swap the exhausted magazine for a loaded one from the depot.
    m = loaded_mags_;
    loaded_mags_ = m->next;
    loaded_mag_rounds_ -= m->count;
    if (slot.loaded != nullptr) {
      slot.loaded->next = empty_mags_;
      empty_mags_ = slot.loaded;
    }
  } else {
    // Depot dry: fill a magazine straight from the slab freelist.
    m = slot.loaded != nullptr ? slot.loaded : TakeEmptyMagazine();
    while (m->count < mag_rounds_) {
      m->rounds[m->count++] = PopFreeObject();
    }
  }
  slot.loaded = m;
  return m->rounds[--m->count];
}

void SlabCache::FreeSlow(MagSlot& slot, void* p) {
  ReentryGuard reent;
  SKERN_SPAN_LOCKED("mem", "depot_drain");
  SpinGuard g(depot_lock_);
  FlushSlotTallies(slot);
  frees_.fetch_add(1, std::memory_order_relaxed);
  ++depot_drains_;
  if (slot.prev != nullptr) {
    ReturnMagazine(slot.prev);
  }
  slot.prev = slot.loaded;  // full; next free-side miss pushes it to the depot
  Magazine* m = TakeEmptyMagazine();
  m->rounds[m->count++] = p;
  slot.loaded = m;
}

void* SlabCache::AllocDirect() {
  ReentryGuard reent;
  SpinGuard g(depot_lock_);
  allocs_.fetch_add(1, std::memory_order_relaxed);
  if (loaded_mags_ != nullptr) {
    Magazine* m = loaded_mags_;
    void* p = m->rounds[--m->count];
    --loaded_mag_rounds_;
    if (m->count == 0) {
      loaded_mags_ = m->next;
      m->next = empty_mags_;
      empty_mags_ = m;
    }
    return p;
  }
  return PopFreeObject();
}

void SlabCache::FreeDirect(void* p) {
  ReentryGuard reent;
  SpinGuard g(depot_lock_);
  frees_.fetch_add(1, std::memory_order_relaxed);
  *reinterpret_cast<void**>(p) = freelist_;
  freelist_ = p;
  ++freelist_len_;
}

// Debug mode centralizes every alloc/free under the depot lock — no
// magazines — so the redzone and quarantine see each transition.

void* SlabCache::AllocDebug() {
  ReentryGuard reent;
  SpinGuard g(depot_lock_);
  allocs_.fetch_add(1, std::memory_order_relaxed);
  void* p = PopFreeObject();
  WriteRedzone(p);
  return p;
}

void SlabCache::FreeDebug(void* p) {
  ReentryGuard reent;
  SpinGuard g(depot_lock_);
  frees_.fetch_add(1, std::memory_order_relaxed);
  if (!CheckRedzone(p)) {
    ++redzone_violations_;
    ReportViolation(name_, "redzone", p);
  }
  MutableByteView(static_cast<uint8_t*>(p), obj_size_).Fill(kPoisonByte);
  QuarantinePush(p);
}

void* SlabCache::PopFreeObject() {
  if (freelist_ == nullptr) {
    Grow();
  }
  void* p = freelist_;
  freelist_ = *reinterpret_cast<void**>(p);
  --freelist_len_;
  return p;
}

void SlabCache::Grow() {
  SKERN_SPAN("mem", "slab_grow");
  void* raw = ::operator new(kSlabBytes, std::align_val_t(kSlabBytes));
  Slab* slab = new (raw) Slab();
  slab->owner = this;
  slab->magic = kSlabMagic;
  slab->next = slabs_;
  size_t first = AlignUp(sizeof(Slab), 16);
  slab->capacity = static_cast<uint32_t>((kSlabBytes - first) / stride_);
  char* base = static_cast<char*>(raw);
  for (uint32_t i = 0; i < slab->capacity; ++i) {
    void* obj = base + first + i * stride_;
    *reinterpret_cast<void**>(obj) = freelist_;
    freelist_ = obj;
  }
  freelist_len_ += slab->capacity;
  slabs_ = slab;
  ++slab_count_;
  ++slab_grows_;
  RegisterRegion(reinterpret_cast<uintptr_t>(raw));
}

Magazine* SlabCache::TakeEmptyMagazine() {
  if (empty_mags_ != nullptr) {
    Magazine* m = empty_mags_;
    empty_mags_ = m->next;
    m->next = nullptr;
    return m;
  }
  return new Magazine();
}

void SlabCache::ReturnMagazine(Magazine* m) {
  if (m->count > 0) {
    m->next = loaded_mags_;
    loaded_mags_ = m;
    loaded_mag_rounds_ += m->count;
  } else {
    m->next = empty_mags_;
    empty_mags_ = m;
  }
}

void SlabCache::QuarantinePush(void* p) {
  if (q_len_ == quarantine_cap_) {
    // Evict the oldest quarantined object to the freelist, verifying its
    // poison survived the quarantine (a dirty byte means use-after-free).
    void* old = quarantine_[q_head_];
    q_head_ = (q_head_ + 1) % quarantine_cap_;
    --q_len_;
    if (!CheckPoison(old)) {
      ++poison_violations_;
      ReportViolation(name_, "poison", old);
    }
    *reinterpret_cast<void**>(old) = freelist_;
    freelist_ = old;
    ++freelist_len_;
  }
  quarantine_[(q_head_ + q_len_) % quarantine_cap_] = p;
  ++q_len_;
}

void SlabCache::FlushSlotTallies(MagSlot& slot) {
  if (slot.tally_allocs != 0) {
    allocs_.fetch_add(slot.tally_allocs, std::memory_order_relaxed);
    slot.tally_allocs = 0;
  }
  if (slot.tally_frees != 0) {
    frees_.fetch_add(slot.tally_frees, std::memory_order_relaxed);
    slot.tally_frees = 0;
  }
  if (slot.tally_hits != 0) {
    magazine_hits_.fetch_add(slot.tally_hits, std::memory_order_relaxed);
    slot.tally_hits = 0;
  }
  slot.ops_since_flush = 0;
}

void SlabCache::WriteRedzone(void* p) {
  uint64_t magic = kRedzoneMagic;
  MutableByteView(static_cast<uint8_t*>(p) + obj_size_, kRedzoneBytes)
      .CopyFrom(ByteView(reinterpret_cast<const uint8_t*>(&magic), kRedzoneBytes));
}

bool SlabCache::CheckRedzone(void* p) {
  uint64_t magic = kRedzoneMagic;
  return ByteView(static_cast<uint8_t*>(p) + obj_size_, kRedzoneBytes) ==
         ByteView(reinterpret_cast<const uint8_t*>(&magic), kRedzoneBytes);
}

bool SlabCache::CheckPoison(void* p) {
  const uint8_t* bytes = static_cast<const uint8_t*>(p);
  for (size_t i = 0; i < obj_size_; ++i) {
    if (bytes[i] != kPoisonByte) {
      return false;
    }
  }
  return true;
}

CacheStats SlabCache::Stats() {
  ThreadCache* tc = t_tc;
  if (tc != nullptr) {
    FlushSlotTallies(tc->slots[tls_index_]);
  }
  CacheStats s;
  s.name = name_;
  s.obj_size = obj_size_;
  s.debug = debug_;
  {
    SpinGuard g(depot_lock_);
    s.depot_refills = depot_refills_;
    s.depot_drains = depot_drains_;
    s.slab_grows = slab_grows_;
    s.slabs = slab_count_;
    s.objs_cached = freelist_len_ + loaded_mag_rounds_ + q_len_;
    s.redzone_violations = redzone_violations_;
    s.poison_violations = poison_violations_;
  }
  s.allocs = allocs_.load(std::memory_order_relaxed);
  s.frees = frees_.load(std::memory_order_relaxed);
  s.magazine_hits = magazine_hits_.load(std::memory_order_relaxed);
  s.objs_in_use = s.allocs - s.frees;
  return s;
}

// ---------------------------------------------------------------------------
// Size classes + free routing + public entry points
// ---------------------------------------------------------------------------

namespace {

struct SizeClassSet {
  SlabCache* classes[kNumSizeClasses];
  SizeClassSet() {
    for (size_t i = 0; i < kNumSizeClasses; ++i) {
      size_t sz = kMinClassSize << i;
      classes[i] = new SlabCache("size." + std::to_string(sz), sz);
    }
  }
};

SizeClassSet& SizeClasses() {
  static SizeClassSet s;
  return s;
}

size_t SizeClassIndex(size_t n) {
  size_t idx = 0;
  size_t sz = kMinClassSize;
  while (sz < n) {
    sz <<= 1;
    ++idx;
  }
  return idx;
}

}  // namespace

void SetSlabAllocation(bool enabled) {
  g_slab_enabled.store(enabled, std::memory_order_relaxed);
}

bool SlabAllocationEnabled() {
  return g_slab_enabled.load(std::memory_order_relaxed);
}

size_t SizeClassFor(size_t n) {
  if (n > kMaxClassSize) {
    return 0;
  }
  return kMinClassSize << SizeClassIndex(n);
}

void* SizedAlloc(size_t n) {
  if (n == 0) {
    n = 1;
  }
  if (n > kMaxClassSize || t_in_slab || !SlabAllocationEnabled()) {
    return ::operator new(n);
  }
  return SizeClasses().classes[SizeClassIndex(n)]->Alloc();
}

void RouteFree(void* p, size_t n) {
  (void)n;  // routing is by pointer; n kept for allocator-interface symmetry
  if (p == nullptr) {
    return;
  }
  SlabCache* owner = LookupOwner(p);
  if (owner != nullptr) {
    owner->Free(p);
    return;
  }
  ::operator delete(p);
}

void SizedFree(void* p, size_t n) { RouteFree(p, n); }

SlabCache& NamedCache(const char* name, size_t obj_size, SlabOptions opts) {
  static auto* by_key = new std::map<std::pair<std::string, size_t>, SlabCache*>();
  static Spinlock lock;
  SpinGuard g(lock);
  auto key = std::make_pair(std::string(name), obj_size);
  auto it = by_key->find(key);
  if (it != by_key->end()) {
    return *it->second;
  }
  auto* cache = new SlabCache(key.first, obj_size, opts);  // process-lifetime
  (*by_key)[key] = cache;
  return *cache;
}

std::vector<CacheStats> SnapshotAllCaches() {
  std::vector<CacheStats> out;
  SpinGuard g(g_registry_lock);
  uint32_t n = g_cache_count.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < n; ++i) {
    if (g_caches[i] != nullptr) {
      out.push_back(g_caches[i]->Stats());
    }
  }
  return out;
}

ViolationHandler SetSlabViolationHandlerForTesting(ViolationHandler h) {
  return g_violation_handler.exchange(h, std::memory_order_acq_rel);
}

void DrainThisThreadCache() {
  ThreadCache* tc = t_tc;
  if (tc == nullptr) {
    return;
  }
  SpinGuard g(g_registry_lock);
  uint32_t n = g_cache_count.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < n; ++i) {
    if (g_caches[i] != nullptr) {
      ThreadCacheDrainer::DrainSlot(g_caches[i], tc->slots[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// Base alloc-bridge installation: routes `Bytes` storage through the size
// classes in any binary that links this library. Runs at static-init time;
// allocations made earlier went to the heap and RouteFree still frees them
// correctly (region-table miss).
// ---------------------------------------------------------------------------

namespace {

void* BridgeAlloc(std::size_t n) { return SizedAlloc(n); }
void BridgeFree(void* p, std::size_t n) { RouteFree(p, n); }

struct BridgeInstaller {
  BridgeInstaller() { membridge::InstallHooks(&BridgeAlloc, &BridgeFree); }
};
BridgeInstaller g_bridge_installer;

}  // namespace

}  // namespace mem
}  // namespace skern
