// Slab/magazine object allocator: the memory substrate under every fast path.
//
// Layout follows Bonwick's slab allocator with the magazine front end from
// the Vmem paper. Three tiers:
//
//   per-thread magazines  ->  central depot (per cache)  ->  slab layer
//
// * A SlabCache owns 64 KiB aligned slabs, carved into fixed-stride objects
//   chained on a single freelist under the cache's depot lock.
// * The depot keeps magazines (fixed arrays of object pointers) in a loaded
//   list (rounds available) and an empty list, so a thread refills or drains
//   kMagRounds objects per lock acquisition instead of one.
// * Each thread holds two magazines per cache (loaded + previous). The fast
//   path is a pointer pop/push with no atomics and no sharing; the depot
//   lock is the only cross-thread synchronization, which also gives TSan the
//   happens-before edge for every object that migrates between threads.
//
// Cross-thread free (alloc here, free there) needs no special case: the
// freeing thread caches the object in its own magazines and the depot
// recirculates full magazines to whichever thread refills next.
//
// Size classes (powers of two, 16..8192 bytes) back anonymous buffer
// allocations — `Bytes` routes here through the base alloc bridge — while
// named caches back specific hot object types (BufferHead, dentries, net
// segments, ...). Larger requests fall through to the global heap.
//
// Every free is routed by *pointer*, not by flag: RouteFree looks the
// address up in a global slab-region table and sends it to the owning cache,
// or to ::operator delete when the address is not slab memory. This makes
// the SetSlabAllocation ablation switch safe to flip with live objects
// outstanding, and makes hook installation order a non-issue.
//
// Debug mode (per cache, fixed at construction) seeds the ROADMAP KASAN
// rung: a trailing redzone word per object, poison-on-free (0x6b), and a
// bounded FIFO quarantine that delays reuse and verifies the poison is
// intact when an object finally recycles. Debug caches bypass the magazine
// layer so every free is checked centrally; the release path pays nothing.
#ifndef SKERN_SRC_MEM_SLAB_H_
#define SKERN_SRC_MEM_SLAB_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sync/spinlock.h"

namespace skern {
namespace mem {

// Slab geometry. Slabs are allocated at kSlabBytes alignment so any object
// pointer finds its slab header with one mask.
inline constexpr size_t kSlabBytes = 64 * 1024;
inline constexpr size_t kMinClassSize = 16;
inline constexpr size_t kMaxClassSize = 8192;
inline constexpr size_t kNumSizeClasses = 10;  // 16,32,...,8192
inline constexpr size_t kMaxMagRounds = 32;
inline constexpr size_t kMaxCaches = 256;

namespace internal {
struct Slab;
struct Magazine;
struct MagSlot;
}  // namespace internal

struct SlabOptions {
  // Debug instrumentation: redzone word + poison-on-free + quarantine.
  bool debug = false;
  // Quarantine capacity in objects (debug mode only).
  size_t quarantine_objects = 64;
};

struct CacheStats {
  std::string name;
  size_t obj_size = 0;
  bool debug = false;
  uint64_t allocs = 0;
  uint64_t frees = 0;
  uint64_t magazine_hits = 0;
  uint64_t depot_refills = 0;
  uint64_t depot_drains = 0;
  uint64_t slab_grows = 0;
  uint64_t slabs = 0;
  uint64_t objs_in_use = 0;  // allocs - frees (exact once tallies flushed)
  uint64_t objs_cached = 0;  // depot freelist + depot magazines + quarantine
  uint64_t redzone_violations = 0;
  uint64_t poison_violations = 0;
};

// Ablation switch for the converted hot paths (default on). Allocation
// sites check it; frees always route by pointer, so flipping it with live
// objects outstanding is safe.
void SetSlabAllocation(bool enabled);
bool SlabAllocationEnabled();

// Size-class entry points. SizedAlloc never returns null for n <= available
// memory (grows slabs on demand); requests above kMaxClassSize, or with slab
// allocation disabled, go to the global heap. SizedFree / RouteFree accept
// any pointer from SizedAlloc, a SlabCache, or the plain heap.
void* SizedAlloc(size_t n);
void SizedFree(void* p, size_t n);
void RouteFree(void* p, size_t n);

class SlabCache {
 public:
  SlabCache(std::string name, size_t obj_size, SlabOptions opts = {});
  ~SlabCache();

  SlabCache(const SlabCache&) = delete;
  SlabCache& operator=(const SlabCache&) = delete;

  // Never returns null (panics on slab-layer exhaustion). With slab
  // allocation disabled this falls through to ::operator new so converted
  // call sites stay ablatable; the matching free routes by pointer.
  void* Alloc();

  // Only for pointers this cache allocated (RouteFree dispatches here).
  void Free(void* p);

  const std::string& name() const { return name_; }
  size_t obj_size() const { return obj_size_; }
  bool debug() const { return debug_; }

  // Flushes the calling thread's tallies for this cache, then snapshots.
  // objs_in_use is exact when other threads' magazines are quiescent
  // (drained or their tallies flushed); it is the census number the leak
  // detector reports at shutdown.
  CacheStats Stats();

 private:
  friend struct internal::Slab;
  friend class ThreadCacheDrainer;

  void* AllocSlow(internal::MagSlot& slot);
  void FreeSlow(internal::MagSlot& slot, void* p);
  void* AllocDirect();      // depot path, no TLS (thread exiting / runtime down)
  void FreeDirect(void* p);
  void* AllocDebug();
  void FreeDebug(void* p);

  // Depot-lock-held helpers.
  void* PopFreeObject();
  void Grow();
  internal::Magazine* TakeEmptyMagazine();
  void ReturnMagazine(internal::Magazine* m);
  void QuarantinePush(void* p);
  void FlushSlotTallies(internal::MagSlot& slot);
  void WriteRedzone(void* p);
  bool CheckRedzone(void* p);
  bool CheckPoison(void* p);

  const std::string name_;
  const size_t obj_size_;
  const size_t stride_;      // carve step: obj (+ redzone in debug), 16-aligned
  const uint32_t mag_rounds_;
  const bool debug_;
  const size_t quarantine_cap_;
  uint32_t tls_index_ = 0;   // set at end of construction (registry publish)

  // Flushed per-thread tallies (relaxed; exact after flushes).
  std::atomic<uint64_t> allocs_{0};
  std::atomic<uint64_t> frees_{0};
  std::atomic<uint64_t> magazine_hits_{0};

  Spinlock depot_lock_;
  // All fields below are guarded by depot_lock_ (Spinlock carries no
  // thread-safety capability annotation; keep this comment authoritative).
  internal::Slab* slabs_ = nullptr;        // every slab, for teardown/census
  void* freelist_ = nullptr;               // in-band chain across all slabs
  uint64_t freelist_len_ = 0;
  uint64_t slab_count_ = 0;
  internal::Magazine* loaded_mags_ = nullptr;  // rounds available
  internal::Magazine* empty_mags_ = nullptr;
  uint64_t loaded_mag_rounds_ = 0;
  uint64_t depot_refills_ = 0;
  uint64_t depot_drains_ = 0;
  uint64_t slab_grows_ = 0;
  uint64_t redzone_violations_ = 0;
  uint64_t poison_violations_ = 0;
  std::vector<void*> quarantine_;          // FIFO ring, debug only
  size_t q_head_ = 0;
  size_t q_len_ = 0;
};

// Returns the process-wide cache for (name, obj_size), creating it on first
// use. Caches returned here live for the process (leaked at exit; the leak
// detector census reports per-cache in-use counts instead). Options are
// honored on the creating call only.
SlabCache& NamedCache(const char* name, size_t obj_size, SlabOptions opts = {});

// One entry per live cache (size classes + named), for /proc/slabinfo, the
// obs counters, and the leak-detector census.
std::vector<CacheStats> SnapshotAllCaches();

// Pushes deltas of the aggregate mem.slab.* counters (alloc, free,
// magazine_hit, depot_refill, slab_grow) into the obs metrics registry.
// Called by the procfs render paths; safe to call from anywhere.
void PublishSlabMetrics();

// /proc/slabinfo text: one row per cache.
std::string SlabInfoText();

// Formatted census lines for caches with live objects ("mem.slab cache=...
// live=N obj_size=S"), used by the leak detector's shutdown census.
std::vector<std::string> SlabLeakReport();

// --- test hooks ---

// Called on redzone/poison violations; kind is "redzone" or "poison".
// Default handler panics. Returns the previous handler.
using ViolationHandler = void (*)(const char* cache, const char* kind, void* ptr);
ViolationHandler SetSlabViolationHandlerForTesting(ViolationHandler h);

// Returns the calling thread's magazines (all caches) to the depots, so
// Stats().objs_in_use is exact for single-threaded tests.
void DrainThisThreadCache();

// Size-class bookkeeping, exposed for tests.
size_t SizeClassFor(size_t n);  // rounded class size, or 0 if n > kMaxClassSize

}  // namespace mem
}  // namespace skern

#endif  // SKERN_SRC_MEM_SLAB_H_
