// SKERN_SLAB_CLASS: put a hot object type on a named slab cache.
//
// Expanded inside a class body, it overrides the class-scope operator
// new/delete so `new T`, `std::make_unique<T>`, and
// `std::shared_ptr<T>(new T)` allocate from the named cache. Two deliberate
// gaps: `std::make_shared<T>` bypasses class operator new (it allocates the
// control block and object together through std::allocator) — convert such
// sites to `std::shared_ptr<T>(new T)` or allocate_shared with an
// mem::StlAllocator; and derived-class allocations (sz != sizeof(T)) fall
// through to the heap, which RouteFree handles.
//
// safety_lint rule M001 enforces the conversion: types listed in the [slab]
// section of layers.toml may not be heap-allocated directly outside
// src/mem (escape hatch: SKERN_NO_SLAB, tallied like SKERN_NO_TSA).
#ifndef SKERN_SRC_MEM_SLAB_CLASS_H_
#define SKERN_SRC_MEM_SLAB_CLASS_H_

#include <cstddef>

#include "src/mem/slab.h"

// Deliberate direct heap allocation of a slab-registered type; safety_lint
// tallies uses. Wrap the allocating expression: SKERN_NO_SLAB(new T(...)).
#define SKERN_NO_SLAB(expr) expr

#define SKERN_SLAB_CLASS(Type, CacheName)                                    \
  static void* operator new(std::size_t sz) {                                \
    static ::skern::mem::SlabCache& skern_slab_cache_ =                      \
        ::skern::mem::NamedCache(CacheName, sizeof(Type));                   \
    if (sz != sizeof(Type)) {                                                \
      return ::operator new(sz);                                             \
    }                                                                        \
    return skern_slab_cache_.Alloc();                                        \
  }                                                                          \
  static void operator delete(void* p, std::size_t sz) {                     \
    ::skern::mem::RouteFree(p, sz);                                          \
  }                                                                          \
  static void operator delete(void* p) { ::skern::mem::RouteFree(p, 0); }

#endif  // SKERN_SRC_MEM_SLAB_CLASS_H_
