// /proc/slabinfo rendering and the mem.slab.* obs counters.
//
// Cache stats live in the caches themselves (per-thread tallies flushed on
// depot trips); this file turns snapshots into the procfs table and pushes
// deltas into the monotonic obs counters whenever a render runs.

#include <cstdio>

#include "src/mem/slab.h"
#include "src/obs/metrics.h"

namespace skern {
namespace mem {

namespace {

struct Totals {
  uint64_t alloc = 0;
  uint64_t free = 0;
  uint64_t magazine_hit = 0;
  uint64_t depot_refill = 0;
  uint64_t depot_drain = 0;
  uint64_t slab_grow = 0;
};

Spinlock g_publish_lock;
Totals g_published;  // guarded by g_publish_lock

uint64_t Delta(uint64_t now, uint64_t last) { return now > last ? now - last : 0; }

}  // namespace

void PublishSlabMetrics() {
  Totals now;
  for (const CacheStats& s : SnapshotAllCaches()) {
    now.alloc += s.allocs;
    now.free += s.frees;
    now.magazine_hit += s.magazine_hits;
    now.depot_refill += s.depot_refills;
    now.depot_drain += s.depot_drains;
    now.slab_grow += s.slab_grows;
  }
  SpinGuard g(g_publish_lock);
  SKERN_COUNTER_ADD("mem.slab.alloc", Delta(now.alloc, g_published.alloc));
  SKERN_COUNTER_ADD("mem.slab.free", Delta(now.free, g_published.free));
  SKERN_COUNTER_ADD("mem.slab.magazine_hit",
                    Delta(now.magazine_hit, g_published.magazine_hit));
  SKERN_COUNTER_ADD("mem.slab.depot_refill",
                    Delta(now.depot_refill, g_published.depot_refill));
  SKERN_COUNTER_ADD("mem.slab.depot_drain",
                    Delta(now.depot_drain, g_published.depot_drain));
  SKERN_COUNTER_ADD("mem.slab.slab_grow", Delta(now.slab_grow, g_published.slab_grow));
  g_published = now;
}

std::string SlabInfoText() {
  std::string out =
      "# name                     objsize   in_use   cached    slabs"
      "     allocs      frees   mag_hits  depot_refill  depot_drain"
      "  slab_grow\n";
  char line[256];
  for (const CacheStats& s : SnapshotAllCaches()) {
    std::snprintf(line, sizeof(line),
                  "%-24s %8zu %8llu %8llu %8llu %10llu %10llu %10llu %13llu"
                  " %12llu %10llu%s\n",
                  s.name.c_str(), s.obj_size,
                  static_cast<unsigned long long>(s.objs_in_use),
                  static_cast<unsigned long long>(s.objs_cached),
                  static_cast<unsigned long long>(s.slabs),
                  static_cast<unsigned long long>(s.allocs),
                  static_cast<unsigned long long>(s.frees),
                  static_cast<unsigned long long>(s.magazine_hits),
                  static_cast<unsigned long long>(s.depot_refills),
                  static_cast<unsigned long long>(s.depot_drains),
                  static_cast<unsigned long long>(s.slab_grows),
                  s.debug ? "  [debug]" : "");
    out += line;
  }
  return out;
}

std::vector<std::string> SlabLeakReport() {
  // Exactness for the calling thread: anything still in this thread's
  // magazines is cached, not leaked.
  DrainThisThreadCache();
  std::vector<std::string> lines;
  for (const CacheStats& s : SnapshotAllCaches()) {
    if (s.objs_in_use == 0) {
      continue;
    }
    lines.push_back("mem.slab cache=" + s.name +
                    " live=" + std::to_string(s.objs_in_use) +
                    " obj_size=" + std::to_string(s.obj_size));
  }
  return lines;
}

}  // namespace mem
}  // namespace skern
