// STL allocator over the slab caches, for containers on hot paths.
//
// Single-object allocations (list/map/unordered_map nodes, allocate_shared
// control+object blocks) go to a named cache keyed by (Tag::kName, size) —
// container rebinds land each node type in its own correctly-sized cache
// under the same display name. Array allocations (vector storage, hash
// bucket arrays) go to the power-of-two size classes.
//
// Deallocation routes by pointer (RouteFree), so flipping SetSlabAllocation
// with live containers is safe: objects return to wherever they came from.
//
// Usage:
//   struct DentryTag { static constexpr const char* kName = "vfs.dentry"; };
//   std::list<Entry, mem::StlAllocator<Entry, DentryTag>> lru;
#ifndef SKERN_SRC_MEM_STL_ALLOC_H_
#define SKERN_SRC_MEM_STL_ALLOC_H_

#include <cstddef>
#include <type_traits>

#include "src/mem/slab.h"

namespace skern {
namespace mem {

template <typename T, typename Tag>
class StlAllocator {
 public:
  using value_type = T;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;
  using propagate_on_container_move_assignment = std::true_type;
  using is_always_equal = std::true_type;

  StlAllocator() noexcept = default;
  template <typename U>
  StlAllocator(const StlAllocator<U, Tag>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 1) {
      return static_cast<T*>(Cache().Alloc());
    }
    return static_cast<T*>(SizedAlloc(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    RouteFree(p, n * sizeof(T));
  }

  template <typename U>
  friend bool operator==(const StlAllocator&, const StlAllocator<U, Tag>&) noexcept {
    return true;
  }
  template <typename U>
  friend bool operator!=(const StlAllocator&, const StlAllocator<U, Tag>&) noexcept {
    return false;
  }

 private:
  static SlabCache& Cache() {
    static SlabCache& cache = NamedCache(Tag::kName, sizeof(T));
    return cache;
  }
};

}  // namespace mem
}  // namespace skern

#endif  // SKERN_SRC_MEM_STL_ALLOC_H_
