#include "src/net/buf_chain.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "src/base/panic.h"
#include "src/mem/stl_alloc.h"
#include "src/sync/mutex.h"
#include "src/obs/metrics.h"

namespace skern {

namespace {

std::atomic<bool> g_zero_copy{true};

// Segment control blocks (shared_ptr control + Bytes header fused by
// allocate_shared) come from the "net.seg" slab cache; the payload bytes
// ride the size classes through the Bytes alloc bridge.
struct NetSegTag {
  static constexpr const char* kName = "net.seg";
};
using SegAlloc = mem::StlAllocator<Bytes, NetSegTag>;

// Tallies feed the bench's before/after deltas and the net.buf.* counters,
// not any control flow — but they sit on the per-packet fast path, where
// even a relaxed fetch_add on a shared cache line shows up in the profile.
// So each thread tallies into its own plain-integer block; readers aggregate
// across blocks. The leaked registry owns every block, and blocks are
// deliberately never freed (they are a few words each, and a bounded number
// of threads ever touch the net data plane), so aggregation never chases a
// dangling pointer after a thread exits.
struct TlBufStats {
  uint64_t bytes_copied = 0;
  uint64_t bytes_shared = 0;
  uint64_t segments_allocated = 0;
  uint64_t storage_moves = 0;
};

struct TlBufStatsRegistry {
  TrackedMutex mu{"net.buf.stats"};
  std::vector<std::unique_ptr<TlBufStats>> blocks;

  static TlBufStatsRegistry& Get() {
    static TlBufStatsRegistry* reg = new TlBufStatsRegistry();
    return *reg;
  }
};

TlBufStats& Stats() {
  thread_local TlBufStats* block = [] {
    auto owned = std::make_unique<TlBufStats>();
    TlBufStats* b = owned.get();
    TlBufStatsRegistry& reg = TlBufStatsRegistry::Get();
    MutexGuard guard(reg.mu);
    reg.blocks.push_back(std::move(owned));
    return b;
  }();
  return *block;
}

void CountCopied(uint64_t n) {
  Stats().bytes_copied += n;
  SKERN_COUNTER_ADD("net.buf.bytes_copied", n);
}

void CountShared(uint64_t n) {
  Stats().bytes_shared += n;
  SKERN_COUNTER_ADD("net.buf.bytes_shared", n);
}

}  // namespace

void SetNetZeroCopy(bool enabled) { g_zero_copy.store(enabled, std::memory_order_relaxed); }

bool NetZeroCopyEnabled() { return g_zero_copy.load(std::memory_order_relaxed); }

// Aggregation tears against in-flight writers by a few counts — the readers
// (bench deltas, tests that quiesce traffic first) don't care.
BufChainStats GetBufChainStats() {
  BufChainStats out;
  TlBufStatsRegistry& reg = TlBufStatsRegistry::Get();
  MutexGuard guard(reg.mu);
  for (const auto& b : reg.blocks) {
    out.bytes_copied += b->bytes_copied;
    out.bytes_shared += b->bytes_shared;
    out.segments_allocated += b->segments_allocated;
    out.storage_moves += b->storage_moves;
  }
  return out;
}

void ResetBufChainStats() {
  TlBufStatsRegistry& reg = TlBufStatsRegistry::Get();
  MutexGuard guard(reg.mu);
  for (const auto& b : reg.blocks) {
    *b = TlBufStats{};
  }
}

BufChain BufChain::ShareOrCopy(const BufChain& chain) {
  BufChain out;
  if (NetZeroCopyEnabled()) {
    out.Append(chain);
  } else {
    chain.ForEachView([&out](ByteView view) { out.AppendCopy(view); });
  }
  return out;
}

void BufChain::Append(const BufChain& other) {
  segs_.append(other.segs_);
  size_ += other.size_;
  CountShared(other.size_);
}

void BufChain::Append(BufChain&& other) {
  CountShared(other.size_);
  if (segs_.empty()) {
    segs_ = std::move(other.segs_);
    size_ = other.size_;
  } else {
    segs_.append(std::move(other.segs_));
    size_ += other.size_;
  }
  other.segs_.clear();
  other.size_ = 0;
}

void BufChain::AppendCopy(ByteView view) {
  if (view.empty()) {
    return;
  }
  auto storage = std::allocate_shared<Bytes>(SegAlloc{});
  AppendBytes(*storage, view);
  size_ += storage->size();
  segs_.push_back(Seg{std::move(storage), 0, view.size()});
  ++Stats().segments_allocated;
  SKERN_COUNTER_INC("net.buf.segments_allocated");
  CountCopied(view.size());
}

void BufChain::AppendOwned(Bytes&& owned) {
  if (owned.empty()) {
    return;
  }
  size_t len = owned.size();
  auto storage = std::allocate_shared<Bytes>(SegAlloc{}, std::move(owned));
  segs_.push_back(Seg{std::move(storage), 0, len});
  size_ += len;
  ++Stats().segments_allocated;
  SKERN_COUNTER_INC("net.buf.segments_allocated");
}

BufChain BufChain::Slice(size_t off, size_t len) const {
  SKERN_CHECK(off <= size_ && len <= size_ - off);
  BufChain out;
  size_t remaining_skip = off;
  size_t remaining_take = len;
  for (const Seg& seg : segs_) {
    if (remaining_take == 0) {
      break;
    }
    if (remaining_skip >= seg.len) {
      remaining_skip -= seg.len;
      continue;
    }
    size_t seg_off = seg.off + remaining_skip;
    size_t avail = seg.len - remaining_skip;
    remaining_skip = 0;
    size_t take = std::min(avail, remaining_take);
    out.segs_.push_back(Seg{seg.data, seg_off, take});
    out.size_ += take;
    remaining_take -= take;
  }
  CountShared(out.size_);
  return out;
}

void BufChain::Consume(size_t n) {
  SKERN_CHECK(n <= size_);
  size_ -= n;
  while (n > 0) {
    Seg& front = segs_.front();
    if (n >= front.len) {
      n -= front.len;
      segs_.pop_front();
    } else {
      front.off += n;
      front.len -= n;
      n = 0;
    }
  }
}

Bytes BufChain::ToBytes() const {
  Bytes out;
  out.reserve(size_);
  for (const Seg& seg : segs_) {
    AppendBytes(out, seg.data->data() + seg.off, seg.len);
  }
  CountCopied(size_);
  return out;
}

void BufChain::CopyTo(MutableByteView dst) const {
  SKERN_CHECK(dst.size() == size_);
  size_t at = 0;
  for (const Seg& seg : segs_) {
    dst.Subview(at, seg.len).CopyFrom(ByteView(seg.data->data() + seg.off, seg.len));
    at += seg.len;
  }
  CountCopied(size_);
}

Bytes BufChain::PopBytes(size_t max) {
  size_t take = std::min(max, size_);
  if (take == 0) {
    return Bytes{};
  }
  Seg& front = segs_.front();
  // Move-out fast path: sole owner, view covers the whole storage, and the
  // caller wants at least that much. This is where the zero-copy receive
  // path pays: the buffer the peer's Send() allocated is the very vector the
  // application receives.
  if (NetZeroCopyEnabled() && front.data.use_count() == 1 && front.off == 0 &&
      front.len == front.data->size() && front.len <= take) {
    Bytes out = std::move(*front.data);
    size_ -= out.size();
    segs_.pop_front();
    ++Stats().storage_moves;
    SKERN_COUNTER_INC("net.buf.storage_moves");
    return out;
  }
  Bytes out;
  out.reserve(take);
  size_t remaining = take;
  for (const Seg& seg : segs_) {
    if (remaining == 0) {
      break;
    }
    size_t n = std::min(seg.len, remaining);
    AppendBytes(out, seg.data->data() + seg.off, n);
    remaining -= n;
  }
  CountCopied(out.size());
  Consume(out.size());
  return out;
}

BufChain BufChain::PopChain(size_t max) {
  size_t take = std::min(max, size_);
  BufChain out = Slice(0, take);
  Consume(take);
  return out;
}

bool BufChain::EqualsBytes(ByteView view) const {
  if (view.size() != size_) {
    return false;
  }
  size_t at = 0;
  for (const Seg& seg : segs_) {
    if (!(ByteView(seg.data->data() + seg.off, seg.len) == view.Subview(at, seg.len))) {
      return false;
    }
    at += seg.len;
  }
  return true;
}

}  // namespace skern
