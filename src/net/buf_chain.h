// BufChain: a refcounted chain of byte segments — the network data plane's
// zero-copy currency.
//
// The paper's §4.3 claim is that interfaces equivalent to message passing
// can still share memory under an ownership model. BufChain is that model
// for packet payloads: a payload is a sequence of (segment, offset, length)
// views onto immutable refcounted storage. "Sending" a chain shares the
// segments (refcount bump, no byte copies); slicing for TCP segmentation or
// retransmission shares subranges of the same storage; the receive path
// hands the bytes back out by moving the storage when it is the last owner.
//
// Ownership rules (checked by safety_lint rule B001 and the net tests):
//   1. Segment storage is immutable after it enters a chain. Mutation
//      happens before Wrap()/append, never after — every sharer sees a
//      frozen byte range.
//   2. Consumers outside src/net use the view API only: ToBytes(), CopyTo(),
//      ForEachView(), PopBytes(). RawSegment() exposes the backing storage
//      for the stack's internal splice paths and is banned outside src/net
//      (no raw segment pointers escape the module).
//   3. PopBytes() may *move* the backing storage out — legal only because
//      uniqueness is checked at runtime (sole owner, full coverage);
//      otherwise it degrades to a copy.
//
// The global zero-copy switch (SetNetZeroCopy) is the ablation lever the
// bench uses: with it off, ShareOrCopy() deep-copies at every hop, which is
// exactly the seed stack's full-copy behavior.
#ifndef SKERN_SRC_NET_BUF_CHAIN_H_
#define SKERN_SRC_NET_BUF_CHAIN_H_

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/base/bytes.h"

namespace skern {

// Ablation switch: true (default) shares segments through the stack; false
// deep-copies at every hop, reproducing the seed's copy-per-layer behavior.
void SetNetZeroCopy(bool enabled);
bool NetZeroCopyEnabled();

// Running tallies for the bench / obs plane (also exported as net.buf.*
// counters when the obs plane is compiled in).
struct BufChainStats {
  uint64_t bytes_copied = 0;
  uint64_t bytes_shared = 0;
  uint64_t segments_allocated = 0;
  uint64_t storage_moves = 0;
};
BufChainStats GetBufChainStats();
void ResetBufChainStats();

class BufChain {
 public:
  // One view into refcounted immutable storage.
  struct Seg {
    std::shared_ptr<Bytes> data;
    size_t off = 0;
    size_t len = 0;
  };

  BufChain() = default;

  // Implicit conversions from Bytes keep `pkt.payload = data.ToBytes()`
  // call sites (tests, drop-in protocol modules) compiling unchanged.
  BufChain(const Bytes& bytes) { AppendCopy(ByteView(bytes)); }
  BufChain(Bytes&& bytes) { AppendOwned(std::move(bytes)); }

  static BufChain CopyOf(ByteView view) {
    BufChain chain;
    chain.AppendCopy(view);
    return chain;
  }

  // Adopts `owned` as a single segment without copying.
  static BufChain Wrap(Bytes&& owned) {
    BufChain chain;
    chain.AppendOwned(std::move(owned));
    return chain;
  }

  // Shares `chain`'s segments when zero-copy is enabled, deep-copies them
  // otherwise. The one call sites use at layer-crossing hops.
  static BufChain ShareOrCopy(const BufChain& chain);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t segment_count() const { return segs_.size(); }

  void Clear() {
    segs_.clear();
    size_ = 0;
  }

  // Appends by sharing `other`'s segments (refcount bump, no byte copies).
  void Append(const BufChain& other);
  void Append(BufChain&& other);

  // Appends a fresh segment holding a copy of `view`.
  void AppendCopy(ByteView view);

  // Appends `owned` as a new segment without copying its bytes.
  void AppendOwned(Bytes&& owned);

  // A chain viewing [off, off+len) of this chain's bytes; segments shared.
  BufChain Slice(size_t off, size_t len) const;

  // Drops the first `n` bytes (whole leading segments are released; a
  // partially consumed segment advances its offset).
  void Consume(size_t n);

  // Flattens to an owning buffer (always copies).
  Bytes ToBytes() const;

  // Copies the whole chain into `dst`; dst.size() must equal size().
  void CopyTo(MutableByteView dst) const;

  // Removes and returns up to `max` leading bytes. When the first segment is
  // fully covered, uniquely owned, and fits in `max`, the storage is moved
  // out instead of copied — the zero-copy receive path. Honors the global
  // zero-copy switch (off → always copies).
  Bytes PopBytes(size_t max);

  // Removes and returns up to `max` leading bytes as a chain (shared, no
  // copies). The segmented counterpart of PopBytes.
  BufChain PopChain(size_t max);

  // Invokes fn(ByteView) for each segment in order. The views borrow the
  // chain's storage: they are valid only while this chain is alive and
  // unmodified.
  template <typename Fn>
  void ForEachView(Fn&& fn) const {
    for (const Seg& seg : segs_) {
      fn(ByteView(seg.data->data() + seg.off, seg.len));
    }
  }

  // Byte-wise equality against a flat view (no flattening allocation).
  bool EqualsBytes(ByteView view) const;

  // Raw segment access — src/net internal (safety_lint B001 bans use
  // outside the module; everything else goes through the view API above).
  const Seg& RawSegment(size_t i) const { return segs_[i]; }

 private:
  // Small-vector for the segment list. The data plane's hottest chains are
  // single-segment packet payloads that get moved several times per hop, so
  // the inline capacity is kept small: big enough that per-packet chains
  // never touch the allocator (they used to cost a malloc/free pair each),
  // small enough that a Packet move stays a couple of pointer steals.
  // Multi-segment aggregates (send/receive queues) spill to the heap
  // vector once and then retain its capacity across Consume/push cycles,
  // so per-connection chains amortize the spill over their lifetime.
  class SegVec {
   public:
    static constexpr size_t kInlineSegs = 2;

    SegVec() = default;
    SegVec(const SegVec& other) { append(other); }
    SegVec& operator=(const SegVec& other) {
      if (this != &other) {
        clear();
        append(other);
      }
      return *this;
    }
    SegVec(SegVec&& other) noexcept { MoveFrom(std::move(other)); }
    SegVec& operator=(SegVec&& other) noexcept {
      if (this != &other) {
        clear();
        MoveFrom(std::move(other));
      }
      return *this;
    }

    size_t size() const { return spilled_ ? spill_.size() : count_; }
    bool empty() const { return size() == 0; }
    const Seg* begin() const { return spilled_ ? spill_.data() : inline_.data(); }
    const Seg* end() const { return begin() + size(); }
    Seg* begin() { return spilled_ ? spill_.data() : inline_.data(); }
    Seg* end() { return begin() + size(); }
    const Seg& operator[](size_t i) const { return begin()[i]; }
    Seg& front() { return *begin(); }

    void push_back(Seg seg) {
      if (!spilled_) {
        if (count_ < kInlineSegs) {
          inline_[count_++] = std::move(seg);
          return;
        }
        Spill();
      }
      spill_.push_back(std::move(seg));
    }

    void append(const SegVec& other) {
      for (const Seg& seg : other) {
        push_back(seg);
      }
    }

    void append(SegVec&& other) {
      for (Seg& seg : other) {
        push_back(std::move(seg));
      }
      other.clear();
    }

    void pop_front() {
      if (spilled_) {
        spill_.erase(spill_.begin());
        return;
      }
      for (size_t i = 1; i < count_; ++i) {
        inline_[i - 1] = std::move(inline_[i]);
      }
      if (count_ > 0) {
        --count_;
        inline_[count_] = Seg{};  // release the storage reference now
      }
    }

    void clear() {
      // A spilled SegVec stays spilled: its vector keeps its capacity, so a
      // long-lived aggregate chain (send queue, receive queue) pays for its
      // spill once and reuses the storage for the rest of its life.
      if (spilled_) {
        spill_.clear();
        return;
      }
      for (size_t i = 0; i < count_; ++i) {
        inline_[i] = Seg{};
      }
      count_ = 0;
    }

   private:
    void Spill() {
      spill_.reserve(kInlineSegs * 2);
      for (size_t i = 0; i < count_; ++i) {
        spill_.push_back(std::move(inline_[i]));
        inline_[i] = Seg{};
      }
      count_ = 0;
      spilled_ = true;
    }

    // Precondition: *this is empty (fresh or just cleared — it may still be
    // in the spilled state holding retained capacity).
    void MoveFrom(SegVec&& other) {
      if (other.spilled_) {
        spill_ = std::move(other.spill_);
        spilled_ = true;
        count_ = 0;
        other.spill_.clear();
        other.spilled_ = false;
      } else if (spilled_) {
        for (size_t i = 0; i < other.count_; ++i) {
          spill_.push_back(std::move(other.inline_[i]));
          other.inline_[i] = Seg{};
        }
        other.count_ = 0;
      } else {
        for (size_t i = 0; i < other.count_; ++i) {
          inline_[i] = std::move(other.inline_[i]);
          other.inline_[i] = Seg{};
        }
        count_ = other.count_;
        other.count_ = 0;
      }
    }

    std::array<Seg, kInlineSegs> inline_;
    size_t count_ = 0;  // valid only while !spilled_
    std::vector<Seg> spill_;
    bool spilled_ = false;
  };

  SegVec segs_;
  size_t size_ = 0;
};

}  // namespace skern

#endif  // SKERN_SRC_NET_BUF_CHAIN_H_
