#include "src/net/net_txq.h"

#include <deque>
#include <utility>

#include "src/net/network.h"

namespace skern {
namespace netq {

namespace {

struct Staged {
  Network* net;
  Packet pkt;
};

thread_local std::deque<Staged>* t_queue = nullptr;
thread_local bool t_draining = false;

std::deque<Staged>& Queue() {
  if (t_queue == nullptr) {
    // Leaked per-thread queue: trivially small, and the alternative (a
    // destructor running during thread teardown while a flush is active)
    // is exactly the shutdown-order hazard the leak avoids.
    static thread_local std::deque<Staged> queue;
    t_queue = &queue;
  }
  return *t_queue;
}

}  // namespace

void Stage(Network* net, Packet&& pkt) { Queue().push_back(Staged{net, std::move(pkt)}); }

void Flush() {
  if (t_draining) {
    return;  // the outer flush's loop will pick up what we staged
  }
  std::deque<Staged>& queue = Queue();
  t_draining = true;
  while (!queue.empty()) {
    Staged item = std::move(queue.front());
    queue.pop_front();
    item.net->Send(std::move(item.pkt));
  }
  t_draining = false;
}

bool Draining() { return t_draining; }

}  // namespace netq
}  // namespace skern
