// Per-thread staged transmit queue for the network data plane.
//
// Lock discipline: no thread may call Network::Send while holding a socket
// or table lock. A TCP socket processing an inbound segment holds its own
// "net.sock" mutex; if it sent the ACK inline, delivery (delay 0) would run
// the peer's handler on this thread and take another "net.sock" — a
// same-class nested acquisition the lock registry rightly panics on.
//
// Instead, everything a socket emits while locked is *staged* here, and
// flushed by the outermost stack entry point after every lock is released.
// Flush() is reentrancy-safe: a flush triggered inside an inline delivery
// (which is itself running under the outer flush) is a no-op, and the
// packets it staged drain in the outer loop. FIFO order is preserved, so
// single-threaded simulations emit the exact packet sequence the seed stack
// did.
#ifndef SKERN_SRC_NET_NET_TXQ_H_
#define SKERN_SRC_NET_NET_TXQ_H_

#include "src/net/packet.h"

namespace skern {

class Network;

namespace netq {

// Queues `pkt` for transmission on `net` from this thread.
void Stage(Network* net, Packet&& pkt);

// Drains this thread's staged packets through Network::Send, including any
// staged by inline deliveries the drain itself triggers. Must be called with
// no net-layer locks held. No-op when already draining on this thread.
void Flush();

// True while this thread is inside Flush (i.e. inside an inline delivery).
bool Draining();

}  // namespace netq
}  // namespace skern

#endif  // SKERN_SRC_NET_NET_TXQ_H_
