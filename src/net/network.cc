#include "src/net/network.h"

#include <sstream>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace skern {

std::string Packet::Describe() const {
  std::ostringstream os;
  os << (proto == kProtoTcp ? "tcp " : "udp ") << src_ip << ":" << src_port << " -> " << dst_ip
     << ":" << dst_port;
  if (proto == kProtoTcp) {
    os << " seq=" << seq << " ack=" << ack << " [";
    if (Has(kTcpSyn)) {
      os << "S";
    }
    if (Has(kTcpAck)) {
      os << "A";
    }
    if (Has(kTcpFin)) {
      os << "F";
    }
    if (Has(kTcpRst)) {
      os << "R";
    }
    os << "]";
  }
  os << " len=" << payload.size();
  return os.str();
}

void Network::Attach(uint32_t ip, PacketHandler handler) {
  MutexGuard guard(mutex_);
  handlers_[ip] = std::move(handler);
}

void Network::Send(Packet packet) {
  SKERN_COUNTER_INC("net.wire.packets_sent");
  SKERN_TRACE("net", "packet_send", packet.proto, packet.dst_port);
  PacketHandler handler;
  SimTime delay;
  {
    MutexGuard guard(mutex_);
    ++stats_.sent;
    if (drop_rate_ > 0.0 && rng_.NextBool(drop_rate_)) {
      ++stats_.dropped;
      SKERN_COUNTER_INC("net.wire.packets_dropped");
      SKERN_TRACE("net", "packet_drop", packet.proto, packet.dst_port);
      return;
    }
    auto it = handlers_.find(packet.dst_ip);
    if (it == handlers_.end()) {
      ++stats_.dropped;
      SKERN_COUNTER_INC("net.wire.packets_dropped");
      SKERN_TRACE("net", "packet_drop", packet.proto, packet.dst_port);
      return;
    }
    // Copy the handler out of the map: the delivery lambda runs later and a
    // reference into handlers_ would dangle across a concurrent Attach
    // (rehash/overwrite). Invoke it without holding the wire lock so a
    // handler that calls back into Send cannot self-deadlock.
    handler = it->second;
    delay = delay_;
  }
  clock_.ScheduleAfter(delay, [this, handler = std::move(handler),
                               pkt = std::move(packet)]() {
    {
      MutexGuard guard(mutex_);
      ++stats_.delivered;
    }
    SKERN_COUNTER_INC("net.wire.packets_delivered");
    SKERN_TRACE("net", "packet_deliver", pkt.proto, pkt.dst_port);
    handler(pkt);
  });
}

}  // namespace skern
