#include "src/net/network.h"

#include <sstream>
#include <utility>

namespace skern {

std::string Packet::Describe() const {
  std::ostringstream os;
  os << (proto == kProtoTcp ? "tcp " : "udp ") << src_ip << ":" << src_port << " -> " << dst_ip
     << ":" << dst_port;
  if (proto == kProtoTcp) {
    os << " seq=" << seq << " ack=" << ack << " [";
    if (Has(kTcpSyn)) {
      os << "S";
    }
    if (Has(kTcpAck)) {
      os << "A";
    }
    if (Has(kTcpFin)) {
      os << "F";
    }
    if (Has(kTcpRst)) {
      os << "R";
    }
    os << "]";
  }
  os << " len=" << payload.size();
  return os.str();
}

void Network::Attach(uint32_t ip, PacketHandler handler) {
  handlers_[ip] = std::move(handler);
}

void Network::Send(Packet packet) {
  ++stats_.sent;
  if (drop_rate_ > 0.0 && rng_.NextBool(drop_rate_)) {
    ++stats_.dropped;
    return;
  }
  auto it = handlers_.find(packet.dst_ip);
  if (it == handlers_.end()) {
    ++stats_.dropped;
    return;
  }
  PacketHandler& handler = it->second;
  clock_.ScheduleAfter(delay_, [this, &handler, pkt = std::move(packet)]() {
    ++stats_.delivered;
    handler(pkt);
  });
}

}  // namespace skern
