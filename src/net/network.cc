#include "src/net/network.h"

#include <sstream>
#include <utility>

#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace skern {

std::string Packet::Describe() const {
  std::ostringstream os;
  os << (proto == kProtoTcp ? "tcp " : "udp ") << src_ip << ":" << src_port << " -> " << dst_ip
     << ":" << dst_port;
  if (proto == kProtoTcp) {
    os << " seq=" << seq << " ack=" << ack << " [";
    if (Has(kTcpSyn)) {
      os << "S";
    }
    if (Has(kTcpAck)) {
      os << "A";
    }
    if (Has(kTcpFin)) {
      os << "F";
    }
    if (Has(kTcpRst)) {
      os << "R";
    }
    os << "]";
  }
  os << " len=" << payload.size();
  return os.str();
}

void Network::Attach(uint32_t ip, PacketHandler handler) {
  MutexGuard guard(attach_lock_);
  size_t count = route_count_.load(std::memory_order_relaxed);
  SKERN_CHECK_MSG(count < kMaxRoutes, "Network::Attach: route table full");
  routes_[count].ip = ip;
  routes_[count].handler = std::move(handler);
  route_count_.store(count + 1, std::memory_order_release);
}

void Network::Send(Packet packet) {
  SKERN_COUNTER_INC("net.wire.packets_sent");
  SKERN_TRACE("net", "packet_send", packet.proto, packet.dst_port);
  sent_.fetch_add(1, std::memory_order_relaxed);
  // Same decision order as the seed (drop roll before routing) so loss
  // traces replay identically on both stacks.
  if (seed_funnel_.load(std::memory_order_relaxed)) [[unlikely]] {
    // Seed compat: the whole Send — routing decision AND handler dispatch —
    // serializes on the wire mutex, exactly like the seed's single-threaded
    // clock drain. Replies staged during delivery re-enter Send on the
    // delivering thread; the seed processed those serially inside the same
    // drain, so they run inside the already-held funnel section instead of
    // re-acquiring (which would self-deadlock).
    thread_local bool tl_in_funnel = false;
    if (!tl_in_funnel) {
      MutexGuard guard(funnel_mu_);
      tl_in_funnel = true;
      Route(packet);
      tl_in_funnel = false;
      return;
    }
    Route(packet);
    return;
  }
  Route(packet);
}

void Network::Route(Packet& packet) {
  bool drop = RollDrop();
  const RouteSlot* route = drop ? nullptr : FindRoute(packet.dst_ip);
  if (drop) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    SKERN_COUNTER_INC("net.wire.packets_dropped");
    SKERN_TRACE("net", "packet_drop", packet.proto, packet.dst_port);
    return;
  }
  if (route == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    dropped_unroutable_.fetch_add(1, std::memory_order_relaxed);
    SKERN_COUNTER_INC("net.wire.packets_dropped");
    SKERN_COUNTER_INC("net.wire.dropped_unroutable");
    SKERN_TRACE("net", "packet_drop", packet.proto, packet.dst_port);
    return;
  }
  SimTime delay = delay_.load(std::memory_order_relaxed);
  if (delay == 0) {
    // Fast path: deliver on the sending thread. The caller is guaranteed
    // lock-free at this point (staged-send discipline), so the receiving
    // stack can take its own locks without ordering hazards.
    delivered_.fetch_add(1, std::memory_order_relaxed);
    SKERN_COUNTER_INC("net.wire.packets_delivered");
    SKERN_TRACE("net", "packet_deliver", packet.proto, packet.dst_port);
    route->handler(packet);
    return;
  }
  // Route slots are immutable once published and live as long as the
  // Network, so the delayed closure can hold the pointer directly.
  clock_.ScheduleAfter(delay, [this, route, pkt = std::move(packet)]() {
    delivered_.fetch_add(1, std::memory_order_relaxed);
    SKERN_COUNTER_INC("net.wire.packets_delivered");
    SKERN_TRACE("net", "packet_deliver", pkt.proto, pkt.dst_port);
    route->handler(pkt);
  });
}

}  // namespace skern
