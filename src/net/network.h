// The simulated wire: routes packets between attached stacks with
// configurable delay and loss, driven by the SimClock.
#ifndef SKERN_SRC_NET_NETWORK_H_
#define SKERN_SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>

#include "src/base/rng.h"
#include "src/base/sim_clock.h"
#include "src/net/packet.h"
#include "src/sync/mutex.h"

namespace skern {

using PacketHandler = std::function<void(const Packet&)>;

struct NetworkStats {
  uint64_t sent = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
};

class Network {
 public:
  explicit Network(SimClock& clock, uint64_t seed = 7)
      : clock_(clock), rng_(seed) {}

  // Registers the handler invoked for packets addressed to `ip`.
  void Attach(uint32_t ip, PacketHandler handler);

  // Schedules delivery after the configured delay. Packets may be dropped
  // (uniformly at `drop_rate`); unknown destinations are dropped.
  void Send(Packet packet);

  void set_delay(SimTime delay) {
    MutexGuard guard(mutex_);
    delay_ = delay;
  }
  void set_drop_rate(double rate) {
    MutexGuard guard(mutex_);
    drop_rate_ = rate;
  }

  NetworkStats stats() const {
    MutexGuard guard(mutex_);
    return stats_;
  }

 private:
  SimClock& clock_;
  mutable TrackedMutex mutex_{"net.wire"};
  Rng rng_ SKERN_GUARDED_BY(mutex_);
  SimTime delay_ SKERN_GUARDED_BY(mutex_) = 50 * kMicrosecond;
  double drop_rate_ SKERN_GUARDED_BY(mutex_) = 0.0;
  std::map<uint32_t, PacketHandler> handlers_ SKERN_GUARDED_BY(mutex_);
  NetworkStats stats_ SKERN_GUARDED_BY(mutex_);
};

}  // namespace skern

#endif  // SKERN_SRC_NET_NETWORK_H_
