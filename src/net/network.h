// The simulated wire: routes packets between attached stacks with
// configurable delay and loss, driven by the SimClock.
#ifndef SKERN_SRC_NET_NETWORK_H_
#define SKERN_SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>

#include "src/base/rng.h"
#include "src/base/sim_clock.h"
#include "src/net/packet.h"

namespace skern {

using PacketHandler = std::function<void(const Packet&)>;

struct NetworkStats {
  uint64_t sent = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
};

class Network {
 public:
  explicit Network(SimClock& clock, uint64_t seed = 7)
      : clock_(clock), rng_(seed) {}

  // Registers the handler invoked for packets addressed to `ip`.
  void Attach(uint32_t ip, PacketHandler handler);

  // Schedules delivery after the configured delay. Packets may be dropped
  // (uniformly at `drop_rate`); unknown destinations are dropped.
  void Send(Packet packet);

  void set_delay(SimTime delay) { delay_ = delay; }
  void set_drop_rate(double rate) { drop_rate_ = rate; }

  const NetworkStats& stats() const { return stats_; }

 private:
  SimClock& clock_;
  Rng rng_;
  SimTime delay_ = 50 * kMicrosecond;
  double drop_rate_ = 0.0;
  std::map<uint32_t, PacketHandler> handlers_;
  NetworkStats stats_;
};

}  // namespace skern

#endif  // SKERN_SRC_NET_NETWORK_H_
