// The simulated wire: routes packets between attached stacks with
// configurable delay and loss, driven by the SimClock.
//
// Concurrency: the seed funneled every Send through one "net.wire" mutex —
// with N threads echoing on independent connections that lock, not the
// protocol work, was the bottleneck. Now the handler table is an
// append-only array published by an atomic count (Attach is setup-time
// only; Send scans lock-free), config knobs are atomics, stats are
// per-field atomics, and the loss RNG — the only genuinely serial piece —
// hides behind a spinlock that Send takes only when loss is configured.
//
// With delay == 0 delivery is synchronous inside Send (no clock traffic at
// all); the C10M bench runs in this mode. Callers must therefore never hold
// a socket or table lock across Send — see net_txq.h for the staging
// discipline that guarantees this.
#ifndef SKERN_SRC_NET_NETWORK_H_
#define SKERN_SRC_NET_NETWORK_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "src/base/rng.h"
#include "src/base/sim_clock.h"
#include "src/net/packet.h"
#include "src/sync/mutex.h"

namespace skern {

using PacketHandler = std::function<void(const Packet&)>;

struct NetworkStats {
  uint64_t sent = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  uint64_t dropped_unroutable = 0;  // subset of dropped: no handler for dst_ip
};

class Network {
 public:
  explicit Network(SimClock& clock, uint64_t seed = 7) : clock_(clock), rng_(seed) {}

  // Registers the handler invoked for packets addressed to `ip`.
  void Attach(uint32_t ip, PacketHandler handler);

  // Delivers after the configured delay — synchronously, inside Send, when
  // the delay is zero. Packets may be dropped (uniformly at `drop_rate`);
  // unknown destinations are dropped and counted as unroutable.
  void Send(Packet packet);

  void set_delay(SimTime delay) { delay_.store(delay, std::memory_order_relaxed); }
  void set_drop_rate(double rate) { drop_rate_.store(rate, std::memory_order_relaxed); }

  // Seed-compat mode: every Send — routing decision and handler dispatch —
  // funnels through the one "net.wire" mutex, exactly like the pre-refactor
  // wire whose clock drain delivered packets one at a time. The bench's
  // baseline cell runs in this mode so "seed single-lock stack" includes
  // the seed's wire serialization, not just its socket-layer lock. Replies
  // staged during delivery re-enter Send on the delivering thread and run
  // inside the already-held funnel section (see Network::Send).
  void EnableSeedWireFunnel() { seed_funnel_.store(true, std::memory_order_relaxed); }

  NetworkStats stats() const {
    NetworkStats out;
    out.sent = sent_.load(std::memory_order_relaxed);
    out.delivered = delivered_.load(std::memory_order_relaxed);
    out.dropped = dropped_.load(std::memory_order_relaxed);
    out.dropped_unroutable = dropped_unroutable_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  SimClock& clock_;

  // Loss decisions must come from one deterministic stream, so the RNG keeps
  // a lock — but a leaf spinlock touched only when drop_rate > 0.
  TrackedSpinLock rng_lock_{"net.wire.rng"};
  Rng rng_ SKERN_GUARDED_BY(rng_lock_);

  std::atomic<SimTime> delay_{50 * kMicrosecond};
  std::atomic<double> drop_rate_{0.0};

  std::atomic<bool> seed_funnel_{false};
  TrackedMutex funnel_mu_{"net.wire"};

  // Rolls the loss decision; the RNG stream is shared so the order of calls
  // (one per Send, before routing) is part of the wire's determinism
  // contract.
  bool RollDrop() {
    double drop_rate = drop_rate_.load(std::memory_order_relaxed);
    if (drop_rate <= 0.0) {
      return false;
    }
    SpinLockGuard guard(rng_lock_);
    return rng_.NextBool(drop_rate);
  }

  // The route table is append-only: Attach fills the next slot, then
  // release-stores the count; Send acquire-loads the count and scans the
  // published prefix with no lock and no refcount traffic. Slots are never
  // mutated after publication — re-attaching an ip appends a new slot, and
  // lookup scans newest-first so the latest registration wins. This is the
  // per-packet routing fast path: the previous rwlock + std::map lookup was
  // ~10% of the echo profile.
  struct RouteSlot {
    uint32_t ip = 0;
    PacketHandler handler;
  };
  static constexpr size_t kMaxRoutes = 64;
  TrackedMutex attach_lock_{"net.wire.attach"};  // serializes writers only
  std::array<RouteSlot, kMaxRoutes> routes_;
  std::atomic<size_t> route_count_{0};

  // Drop roll + routing + delivery; Send wraps this in the funnel when
  // seed-compat mode is on. Takes the packet by reference to spare a move
  // on the per-packet fast path; the delayed-delivery branch moves out of
  // it into the scheduled closure.
  void Route(Packet& packet);

  const RouteSlot* FindRoute(uint32_t ip) const {
    size_t count = route_count_.load(std::memory_order_acquire);
    for (size_t i = count; i-- > 0;) {
      if (routes_[i].ip == ip) {
        return &routes_[i];
      }
    }
    return nullptr;
  }

  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> delivered_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> dropped_unroutable_{0};
};

}  // namespace skern

#endif  // SKERN_SRC_NET_NETWORK_H_
