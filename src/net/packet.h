// Packet and address types for the simulated network.
#ifndef SKERN_SRC_NET_PACKET_H_
#define SKERN_SRC_NET_PACKET_H_

#include <cstdint>
#include <string>

#include "src/base/bytes.h"
#include "src/net/buf_chain.h"

namespace skern {

inline constexpr uint8_t kProtoTcp = 6;
inline constexpr uint8_t kProtoUdp = 17;

struct NetAddr {
  uint32_t ip = 0;
  uint16_t port = 0;

  friend bool operator==(const NetAddr& a, const NetAddr& b) {
    return a.ip == b.ip && a.port == b.port;
  }
  friend bool operator<(const NetAddr& a, const NetAddr& b) {
    return a.ip != b.ip ? a.ip < b.ip : a.port < b.port;
  }
};

enum TcpFlag : uint8_t {
  kTcpSyn = 1u << 0,
  kTcpAck = 1u << 1,
  kTcpFin = 1u << 2,
  kTcpRst = 1u << 3,
};

// One wire packet. TCP fields are meaningful only when proto == kProtoTcp.
// The payload is a BufChain: copying a Packet shares the payload segments
// (refcount bump), so a packet crossing Send → wire → Recv carries views of
// the sender's buffers, never byte copies. Assigning a Bytes still works
// (implicit conversion) for drop-in protocol modules and tests.
struct Packet {
  uint8_t proto = kProtoTcp;
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t flags = 0;
  BufChain payload;

  bool Has(TcpFlag flag) const { return (flags & flag) != 0; }
  std::string Describe() const;
};

}  // namespace skern

#endif  // SKERN_SRC_NET_PACKET_H_
