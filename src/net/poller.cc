#include "src/net/poller.h"

#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace skern {

EventPoller::~EventPoller() {
  std::vector<std::pair<SocketId, std::shared_ptr<SockCtl>>> watched;
  {
    MutexGuard guard(mu_);
    for (auto& [sock, reg] : regs_) {
      if (std::shared_ptr<SockCtl> ctl = reg.ctl.lock()) {
        watched.emplace_back(sock, std::move(ctl));
      }
    }
    regs_.clear();
    ready_.clear();
  }
  // Unhook outside mu_: RemoveWatch takes the socket's watch spinlock.
  for (auto& [sock, ctl] : watched) {
    ctl->RemoveWatch(this, sock);
  }
}

Status EventPoller::Register(SocketId s, uint32_t mask, TriggerMode mode) {
  std::shared_ptr<SockCtl> ctl = stack_.ControlBlock(s);
  if (ctl == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  {
    MutexGuard guard(mu_);
    auto [it, inserted] = regs_.emplace(s, Reg{ctl, mask, mode, false});
    if (!inserted) {
      return Status::Error(Errno::kEEXIST);
    }
  }
  // Watch list after the reg exists: a publication racing this Register
  // finds the reg and queues it; the duplicate-queue guard is `queued`.
  ctl->AddWatch(this, s);
  SKERN_GAUGE_ADD("net.poll.watched", 1);
  // Deliver pre-existing readiness (both modes): without this, a socket
  // that became ready before Register would sleep forever under kEdge.
  bool wake = false;
  if ((ctl->ready.load(std::memory_order_acquire) & mask) != 0) {
    MutexGuard guard(mu_);
    auto it = regs_.find(s);
    if (it != regs_.end() && !it->second.queued) {
      it->second.queued = true;
      ready_.push_back(s);
      wake = true;
    }
  }
  if (wake) {
    event_.Signal();
  }
  return Status::Ok();
}

Status EventPoller::Arm(SocketId s, uint32_t mask) {
  std::shared_ptr<SockCtl> ctl;
  bool wake = false;
  {
    MutexGuard guard(mu_);
    auto it = regs_.find(s);
    if (it == regs_.end()) {
      return Status::Error(Errno::kENOENT);
    }
    it->second.mask = mask;
    ctl = it->second.ctl.lock();
    if (ctl != nullptr && !it->second.queued &&
        (ctl->ready.load(std::memory_order_acquire) & mask) != 0) {
      it->second.queued = true;
      ready_.push_back(s);
      wake = true;
    }
  }
  if (wake) {
    event_.Signal();
  }
  return Status::Ok();
}

Status EventPoller::Deregister(SocketId s) {
  std::shared_ptr<SockCtl> ctl;
  {
    MutexGuard guard(mu_);
    auto it = regs_.find(s);
    if (it == regs_.end()) {
      return Status::Error(Errno::kENOENT);
    }
    ctl = it->second.ctl.lock();
    regs_.erase(it);
  }
  if (ctl != nullptr) {
    ctl->RemoveWatch(this, s);
  }
  SKERN_GAUGE_ADD("net.poll.watched", -1);
  return Status::Ok();
}

void EventPoller::OnReadiness(SocketId sock, uint32_t mask, uint32_t rising) {
  bool wake = false;
  {
    MutexGuard guard(mu_);
    auto it = regs_.find(sock);
    if (it == regs_.end()) {
      return;  // raced a Deregister
    }
    Reg& reg = it->second;
    const uint32_t hit =
        reg.mask & (reg.mode == TriggerMode::kEdge ? rising : mask);
    if (hit != 0 && !reg.queued) {
      reg.queued = true;
      ready_.push_back(sock);
      wake = true;
    }
  }
  if (wake) {
    SKERN_COUNTER_INC("net.poll.wakeups");
    event_.Signal();
  }
}

std::vector<PollEvent> EventPoller::Wait(size_t max_events,
                                         std::chrono::nanoseconds timeout) {
  SKERN_COUNTER_INC("net.poll.waits");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::vector<PollEvent> out;
  for (;;) {
    {
      MutexGuard guard(mu_);
      // Bounded sweep: each currently-queued socket is examined once; level
      // re-queues land behind the bound and wait for the next Wait.
      size_t sweep = ready_.size();
      while (sweep-- > 0 && out.size() < max_events && !ready_.empty()) {
        SocketId s = ready_.front();
        ready_.pop_front();
        auto it = regs_.find(s);
        if (it == regs_.end()) {
          continue;  // deregistered while queued
        }
        Reg& reg = it->second;
        std::shared_ptr<SockCtl> ctl = reg.ctl.lock();
        if (ctl == nullptr) {
          regs_.erase(it);  // socket freed: self-clean
          continue;
        }
        // Re-check against the live mask: the publication that queued us may
        // be stale (e.g. another thread already drained the buffer).
        const uint32_t cur = ctl->ready.load(std::memory_order_acquire) & reg.mask;
        if (cur == 0) {
          reg.queued = false;
          SKERN_COUNTER_INC("net.poll.spurious");
          continue;
        }
        out.push_back(PollEvent{s, cur});
        SKERN_COUNTER_INC("net.poll.events_delivered");
        if (reg.mode == TriggerMode::kLevel) {
          ready_.push_back(s);  // still ready: keep reporting (queued stays set)
        } else {
          reg.queued = false;  // edge: silent until the next rising bit
        }
      }
    }
    if (!out.empty()) {
      return out;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return out;  // timeout: empty
    }
    event_.ConsumeFor(deadline - now);
  }
}

}  // namespace skern
