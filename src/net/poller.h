// EventPoller: the epoll-style readiness engine over the sharded stack.
//
// A poller watches many sockets and blocks on one Event until any of them
// becomes ready — the C10M shape: thousands of mostly-idle connections, a
// few runnable at a time, discovered in O(ready) rather than O(watched).
//
// Modes, matching epoll semantics:
//   * kLevel — a socket whose current readiness intersects the armed mask is
//     reported from every Wait until the condition clears (e.g. the receive
//     buffer is drained).
//   * kEdge — reported once per rising edge; consumers must drain until
//     kEAGAIN (which clears the readiness bit and re-arms the edge).
//
// Plumbing: Register adds this poller to the socket's SockCtl watch list.
// Protocol modules publish readiness transitions after releasing the socket
// lock; OnReadiness queues the socket and signals the Event. Wait re-checks
// the live mask at delivery (publications can race; stale entries count as
// net.poll.spurious and are dropped). The poller holds only weak references
// to sockets — a closed-and-freed socket self-cleans from the queue.
//
// Lock order: net.poll (mu_) is taken from OnReadiness with no other net
// lock held (Publish drops everything first), and Wait takes mu_ → nothing.
#ifndef SKERN_SRC_NET_POLLER_H_
#define SKERN_SRC_NET_POLLER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/net/sock_ctl.h"
#include "src/net/stack_modular.h"
#include "src/sync/kthread.h"
#include "src/sync/mutex.h"

namespace skern {

enum class TriggerMode : uint8_t {
  kLevel = 0,
  kEdge = 1,
};

struct PollEvent {
  SocketId sock;
  uint32_t mask;  // ready bits intersected with the armed mask, at delivery
};

class EventPoller : public ReadinessSink {
 public:
  explicit EventPoller(ModularNetStack& stack) : stack_(stack) {}
  ~EventPoller() override;

  EventPoller(const EventPoller&) = delete;
  EventPoller& operator=(const EventPoller&) = delete;

  // Starts watching `s` for the bits in `mask`. If the socket is already
  // ready, the initial state is delivered (both modes). kEEXIST if watched.
  Status Register(SocketId s, uint32_t mask, TriggerMode mode);

  // Updates the armed mask and, if the socket is currently ready, re-queues
  // it — the explicit re-arm for edge-triggered consumers.
  Status Arm(SocketId s, uint32_t mask);

  Status Deregister(SocketId s);

  // Blocks until at least one watched socket is ready or `timeout` elapses.
  // Returns up to `max_events` events (empty on timeout).
  std::vector<PollEvent> Wait(size_t max_events, std::chrono::nanoseconds timeout);

  // ReadinessSink: called by SockCtl::Publish with no net-layer locks held.
  void OnReadiness(SocketId sock, uint32_t mask, uint32_t rising) override;

 private:
  struct Reg {
    std::weak_ptr<SockCtl> ctl;
    uint32_t mask = 0;
    TriggerMode mode = TriggerMode::kLevel;
    bool queued = false;  // on ready_ (suppresses duplicate queueing)
  };

  ModularNetStack& stack_;
  TrackedMutex mu_{"net.poll"};
  std::unordered_map<SocketId, Reg> regs_;  // guarded by mu_
  std::deque<SocketId> ready_;              // guarded by mu_
  Event event_;
};

}  // namespace skern

#endif  // SKERN_SRC_NET_POLLER_H_
