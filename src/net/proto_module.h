// The protocol-family module interface: §4.1's "after" picture.
//
// "A modular interface should provide an abstract representation of module
// behavior but isolate its internals from other parts of the kernel." The
// generic socket layer (ModularNetStack) sees only this interface; protocol
// state is a typed opaque handle owned by the module. New protocol families
// register without a single edit to generic code — the extensibility the
// paper says Linux sockets lack.
#ifndef SKERN_SRC_NET_PROTO_MODULE_H_
#define SKERN_SRC_NET_PROTO_MODULE_H_

#include <memory>
#include <string>
#include <utility>

#include "src/base/result.h"
#include "src/net/packet.h"
#include "src/net/sock_ctl.h"

namespace skern {

// Opaque per-socket protocol state. Each module defines its own subclass;
// the generic layer never inspects it (contrast MonoNetStack::MonoSocket,
// which carries every protocol's fields inline).
//
// Every socket carries a SockCtl control block: the generic layer hands it
// to pollers, and modules take ctl->mu around their per-socket state. The
// shared_ptr outlives table membership so timers and in-flight packets can
// detect a concurrently closed socket instead of dereferencing freed state.
//
// enable_shared_from_this: stack-owned sockets live in shared_ptr entries,
// and a module may pin one (e.g. a listener in a demux table) so lock
// members embedded in the state cannot be freed under a racing packet.
class ProtoSocketState : public std::enable_shared_from_this<ProtoSocketState> {
 public:
  virtual ~ProtoSocketState() = default;

  // Adoption form (not make_shared): the class operator new routes the
  // SockCtl itself onto its named slab cache (M001).
  std::shared_ptr<SockCtl> ctl = std::shared_ptr<SockCtl>(new SockCtl());
};

class ProtocolModule {
 public:
  virtual ~ProtocolModule() = default;

  virtual uint8_t ProtoId() const = 0;
  virtual std::string Name() const = 0;

  virtual std::unique_ptr<ProtoSocketState> NewSocket() = 0;
  virtual Status Bind(ProtoSocketState& sock, uint16_t port) = 0;
  virtual Status Listen(ProtoSocketState& sock) = 0;
  // Returns the protocol state of an established connection, or kEAGAIN.
  virtual Result<std::unique_ptr<ProtoSocketState>> Accept(ProtoSocketState& sock) = 0;
  virtual Status Connect(ProtoSocketState& sock, NetAddr remote) = 0;
  virtual Status Send(ProtoSocketState& sock, ByteView data) = 0;
  virtual Result<Bytes> Recv(ProtoSocketState& sock, uint64_t max) = 0;
  virtual Status SendTo(ProtoSocketState& sock, NetAddr remote, ByteView data) = 0;
  virtual Result<std::pair<NetAddr, Bytes>> RecvFrom(ProtoSocketState& sock) = 0;
  virtual Status CloseSocket(ProtoSocketState& sock) = 0;

  // Zero-copy stream variants; default bridges through the flat API so
  // drop-in modules need not implement them.
  virtual Status SendChain(ProtoSocketState& sock, BufChain chain) {
    Bytes flat = chain.ToBytes();
    return Send(sock, ByteView(flat));
  }
  virtual Result<BufChain> RecvChain(ProtoSocketState& sock, uint64_t max) {
    SKERN_ASSIGN_OR_RETURN(Bytes flat, Recv(sock, max));
    return BufChain(std::move(flat));
  }

  // Per-socket knobs; kENOSYS when the module has none.
  virtual Status SetOption(ProtoSocketState& sock, int option, int64_t value) {
    (void)sock;
    (void)option;
    (void)value;
    return Status::Error(Errno::kENOSYS);
  }

  // Inbound demux for this family.
  virtual void OnPacket(const Packet& packet) = 0;
};

}  // namespace skern

#endif  // SKERN_SRC_NET_PROTO_MODULE_H_
