// The protocol-family module interface: §4.1's "after" picture.
//
// "A modular interface should provide an abstract representation of module
// behavior but isolate its internals from other parts of the kernel." The
// generic socket layer (ModularNetStack) sees only this interface; protocol
// state is a typed opaque handle owned by the module. New protocol families
// register without a single edit to generic code — the extensibility the
// paper says Linux sockets lack.
#ifndef SKERN_SRC_NET_PROTO_MODULE_H_
#define SKERN_SRC_NET_PROTO_MODULE_H_

#include <memory>
#include <string>
#include <utility>

#include "src/base/result.h"
#include "src/net/packet.h"

namespace skern {

// Opaque per-socket protocol state. Each module defines its own subclass;
// the generic layer never inspects it (contrast MonoNetStack::MonoSocket,
// which carries every protocol's fields inline).
class ProtoSocketState {
 public:
  virtual ~ProtoSocketState() = default;
};

class ProtocolModule {
 public:
  virtual ~ProtocolModule() = default;

  virtual uint8_t ProtoId() const = 0;
  virtual std::string Name() const = 0;

  virtual std::unique_ptr<ProtoSocketState> NewSocket() = 0;
  virtual Status Bind(ProtoSocketState& sock, uint16_t port) = 0;
  virtual Status Listen(ProtoSocketState& sock) = 0;
  // Returns the protocol state of an established connection, or kEAGAIN.
  virtual Result<std::unique_ptr<ProtoSocketState>> Accept(ProtoSocketState& sock) = 0;
  virtual Status Connect(ProtoSocketState& sock, NetAddr remote) = 0;
  virtual Status Send(ProtoSocketState& sock, ByteView data) = 0;
  virtual Result<Bytes> Recv(ProtoSocketState& sock, uint64_t max) = 0;
  virtual Status SendTo(ProtoSocketState& sock, NetAddr remote, ByteView data) = 0;
  virtual Result<std::pair<NetAddr, Bytes>> RecvFrom(ProtoSocketState& sock) = 0;
  virtual Status CloseSocket(ProtoSocketState& sock) = 0;

  // Inbound demux for this family.
  virtual void OnPacket(const Packet& packet) = 0;
};

}  // namespace skern

#endif  // SKERN_SRC_NET_PROTO_MODULE_H_
