// SockCtl: the per-socket concurrency control block.
//
// Every socket in the sharded stack owns one SockCtl, shared (shared_ptr)
// between the socket table, the protocol module's demux tables, and any
// event pollers watching the socket. It carries the three things whose
// lifetime must outlast table membership:
//
//   * mu — the per-socket lock ("net.sock" class). All protocol state for
//     the socket (TcpConnection internals, UDP rx queue, port fields) is
//     accessed under it. Demux tables resolve to a SockCtl under their own
//     leaf shard locks, *release them*, then take mu — so independent
//     connections never serialize and the lock order is a DAG:
//       net.tcp.acceptq → net.sock → {table shard locks}
//   * alive — cleared under mu when the socket closes. Any op or timer that
//     takes mu must re-check alive; a false means the race was lost and the
//     op reports kEBADF / drops the event. This is how retransmission timers
//     and in-flight packets are made safe against concurrent Close.
//   * ready + watches — the readiness engine's publication point. Modules
//     update `ready` (a bitmask of kPollIn/kPollOut/...) after state
//     changes; PublishReadiness snapshots the watcher list under the leaf
//     watch_lock and notifies pollers *after* every socket lock is dropped.
#ifndef SKERN_SRC_NET_SOCK_CTL_H_
#define SKERN_SRC_NET_SOCK_CTL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/mem/slab_class.h"
#include "src/net/socket_layer.h"
#include "src/sync/mutex.h"

namespace skern {

// Readiness bits (epoll-style).
inline constexpr uint32_t kPollIn = 1u << 0;   // Recv/RecvFrom/Accept would make progress
inline constexpr uint32_t kPollOut = 1u << 1;  // Send would accept data
inline constexpr uint32_t kPollHup = 1u << 2;  // peer closed / connection gone
inline constexpr uint32_t kPollErr = 1u << 3;  // connection aborted (RST, retry exhaustion)

// A poller's subscription endpoint. EventPoller implements this; SockCtl
// holds plain pointers plus a registration epoch so a destroyed poller can
// never be notified (pollers deregister in their destructor).
class ReadinessSink {
 public:
  virtual ~ReadinessSink() = default;
  // `mask` is the socket's current readiness; `rising` the bits that just
  // turned on. Called with no net-layer locks held except the sink's own.
  virtual void OnReadiness(SocketId sock, uint32_t mask, uint32_t rising) = 0;
};

struct SockCtl {
  SKERN_SLAB_CLASS(SockCtl, "net.sockctl")

  TrackedMutex mu{"net.sock"};
  bool alive = true;  // guarded by mu

  // Current readiness mask. Written by the owning module (under mu, so
  // transitions are ordered), read lock-free by pollers re-checking level
  // triggers.
  std::atomic<uint32_t> ready{0};

  struct Watch {
    ReadinessSink* sink;
    SocketId sock;
  };
  TrackedSpinLock watch_lock{"net.poll.watch"};
  std::vector<Watch> watches;  // guarded by watch_lock

  // Sticky "has this socket ever been watched" flag. Most sockets never
  // are, and Publish runs on every state transition — 8 times per echo
  // round trip — so taking watch_lock unconditionally made an unwatched
  // socket pay for the readiness engine it never asked for (12% of the
  // echo profile). Publish still updates `ready` first, so a Register
  // racing with the flag check observes the new mask when it reads
  // initial readiness after AddWatch; no edge is lost.
  std::atomic<bool> watched{false};

  // Publishes a new readiness mask and wakes watchers. Call with no socket
  // or table locks held (sinks take their own poller mutex).
  void Publish(uint32_t mask) {
    // Unwatched and unchanged: nothing to store, no edge to report. Most
    // transitions on a busy connection republish the same mask (kPollOut
    // stays set across every data segment), so this skips the RMW on the
    // shared `ready` line for the common case. Safe against a racing
    // AddWatch: the watcher reads `ready` after setting `watched`, and the
    // value it reads is exactly the mask we declined to rewrite.
    if (!watched.load(std::memory_order_seq_cst) &&
        ready.load(std::memory_order_relaxed) == mask) {
      return;
    }
    uint32_t prev = ready.exchange(mask, std::memory_order_acq_rel);
    if (!watched.load(std::memory_order_seq_cst)) {
      return;
    }
    uint32_t rising = mask & ~prev;
    std::vector<Watch> snapshot;
    {
      SpinLockGuard guard(watch_lock);
      if (watches.empty()) {
        return;
      }
      snapshot = watches;
    }
    for (const Watch& watch : snapshot) {
      watch.sink->OnReadiness(watch.sock, mask, rising);
    }
  }

  void AddWatch(ReadinessSink* sink, SocketId sock) {
    watched.store(true, std::memory_order_seq_cst);
    SpinLockGuard guard(watch_lock);
    watches.push_back(Watch{sink, sock});
  }

  void RemoveWatch(ReadinessSink* sink, SocketId sock) {
    SpinLockGuard guard(watch_lock);
    for (auto it = watches.begin(); it != watches.end(); ++it) {
      if (it->sink == sink && it->sock == sock) {
        watches.erase(it);
        return;
      }
    }
  }
};

// RAII: lock a socket's control block and verify it is still alive. Usage:
//   SockGuard guard(*ctl);
//   if (!guard.alive()) return Status::Error(Errno::kEBADF);
class SKERN_SCOPED_CAPABILITY SockGuard {
 public:
  explicit SockGuard(SockCtl& ctl) SKERN_ACQUIRE(ctl.mu) : ctl_(ctl) { ctl_.mu.Lock(); }
  ~SockGuard() SKERN_RELEASE() { ctl_.mu.Unlock(); }
  SockGuard(const SockGuard&) = delete;
  SockGuard& operator=(const SockGuard&) = delete;

  bool alive() const { return ctl_.alive; }
  void MarkDead() { ctl_.alive = false; }

 private:
  SockCtl& ctl_;
};

}  // namespace skern

#endif  // SKERN_SRC_NET_SOCK_CTL_H_
