// The socket-layer interface both stack organizations implement.
//
// Callers (examples, benchmarks, tests) program against this; the difference
// under test is the *internal* organization:
//   * MonoNetStack (stack_monolithic.h): TCP state embedded in the generic
//     socket structure, protocol specifics strewn through generic code —
//     §4.1's description of Linux ("references to TCP state can be found
//     throughout generic socket code and data structures").
//   * ModularNetStack (stack_modular.h): a protocol-family registry; generic
//     code is protocol-agnostic and new protocols drop in without touching it.
//
// The API is non-blocking: operations that would block return kEAGAIN, and
// progress is driven by advancing the SimClock.
#ifndef SKERN_SRC_NET_SOCKET_LAYER_H_
#define SKERN_SRC_NET_SOCKET_LAYER_H_

#include <cstdint>
#include <string>
#include <utility>

#include "src/base/result.h"
#include "src/net/buf_chain.h"
#include "src/net/packet.h"

namespace skern {

using SocketId = int32_t;

// Socket options for SetOption.
inline constexpr int kSockOptAcceptBacklog = 1;  // listener accept-queue cap

class SocketLayer {
 public:
  virtual ~SocketLayer() = default;

  virtual Result<SocketId> Socket(uint8_t proto) = 0;
  virtual Status Bind(SocketId s, uint16_t port) = 0;
  virtual Status Listen(SocketId s) = 0;
  // Returns an established connection socket, or kEAGAIN.
  virtual Result<SocketId> Accept(SocketId s) = 0;
  virtual Status Connect(SocketId s, NetAddr remote) = 0;
  // Stream send (TCP).
  virtual Status Send(SocketId s, ByteView data) = 0;
  // Stream receive: empty result means no data yet (or EOF if peer closed).
  virtual Result<Bytes> Recv(SocketId s, uint64_t max) = 0;
  // Datagram send/receive (UDP).
  virtual Status SendTo(SocketId s, NetAddr remote, ByteView data) = 0;
  virtual Result<std::pair<NetAddr, Bytes>> RecvFrom(SocketId s) = 0;
  virtual Status Close(SocketId s) = 0;

  // Zero-copy stream variants: the chain's segments are shared (not copied)
  // all the way into the peer's receive buffer when the stack supports it.
  // The defaults bridge through the flat API so existing implementations
  // keep working unchanged.
  virtual Status SendChain(SocketId s, BufChain chain) {
    Bytes flat = chain.ToBytes();
    return Send(s, ByteView(flat));
  }
  virtual Result<BufChain> RecvChain(SocketId s, uint64_t max) {
    SKERN_ASSIGN_OR_RETURN(Bytes flat, Recv(s, max));
    return BufChain(std::move(flat));
  }

  // Per-socket knobs (kSockOpt*); kENOSYS when the stack has none.
  virtual Status SetOption(SocketId s, int option, int64_t value) {
    (void)s;
    (void)option;
    (void)value;
    return Status::Error(Errno::kENOSYS);
  }

  virtual std::string Name() const = 0;
};

}  // namespace skern

#endif  // SKERN_SRC_NET_SOCKET_LAYER_H_
