#include "src/net/stack_modular.h"

#include <deque>
#include <tuple>
#include <vector>

#include "src/net/tcp.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace skern {

// ---------------------------------------------------------------------------
// Generic layer: protocol-agnostic, start to finish.
// ---------------------------------------------------------------------------

ModularNetStack::ModularNetStack(Network& network, uint32_t ip) : network_(network), ip_(ip) {
  network_.Attach(ip_, [this](const Packet& packet) { OnPacket(packet); });
}

Status ModularNetStack::RegisterProtocol(std::unique_ptr<ProtocolModule> module) {
  uint8_t id = module->ProtoId();
  if (registry_.count(id) > 0) {
    return Status::Error(Errno::kEEXIST);
  }
  registry_[id] = std::move(module);
  return Status::Ok();
}

std::vector<std::string> ModularNetStack::ProtocolNames() const {
  std::vector<std::string> names;
  for (const auto& [id, module] : registry_) {
    names.push_back(module->Name());
  }
  return names;
}

ModularNetStack::Entry* ModularNetStack::Find(SocketId s) {
  auto it = sockets_.find(s);
  return it == sockets_.end() ? nullptr : &it->second;
}

Result<SocketId> ModularNetStack::Socket(uint8_t proto) {
  auto it = registry_.find(proto);
  if (it == registry_.end()) {
    return Errno::kEPROTONOSUPPORT;
  }
  SocketId id = next_id_++;
  sockets_[id] = Entry{it->second.get(), it->second->NewSocket()};
  return id;
}

Status ModularNetStack::Bind(SocketId s, uint16_t port) {
  Entry* e = Find(s);
  if (e == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  return e->module->Bind(*e->state, port);
}

Status ModularNetStack::Listen(SocketId s) {
  Entry* e = Find(s);
  if (e == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  return e->module->Listen(*e->state);
}

Result<SocketId> ModularNetStack::Accept(SocketId s) {
  Entry* e = Find(s);
  if (e == nullptr) {
    return Errno::kEBADF;
  }
  SKERN_ASSIGN_OR_RETURN(std::unique_ptr<ProtoSocketState> child, e->module->Accept(*e->state));
  SocketId id = next_id_++;
  sockets_[id] = Entry{e->module, std::move(child)};
  return id;
}

Status ModularNetStack::Connect(SocketId s, NetAddr remote) {
  Entry* e = Find(s);
  if (e == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  return e->module->Connect(*e->state, remote);
}

Status ModularNetStack::Send(SocketId s, ByteView data) {
  SKERN_COUNTER_INC("net.modular.socket.sends");
  Entry* e = Find(s);
  if (e == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  return e->module->Send(*e->state, data);
}

Result<Bytes> ModularNetStack::Recv(SocketId s, uint64_t max) {
  SKERN_COUNTER_INC("net.modular.socket.recvs");
  Entry* e = Find(s);
  if (e == nullptr) {
    return Errno::kEBADF;
  }
  return e->module->Recv(*e->state, max);
}

Status ModularNetStack::SendTo(SocketId s, NetAddr remote, ByteView data) {
  Entry* e = Find(s);
  if (e == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  return e->module->SendTo(*e->state, remote, data);
}

Result<std::pair<NetAddr, Bytes>> ModularNetStack::RecvFrom(SocketId s) {
  Entry* e = Find(s);
  if (e == nullptr) {
    return Errno::kEBADF;
  }
  return e->module->RecvFrom(*e->state);
}

Status ModularNetStack::Close(SocketId s) {
  Entry* e = Find(s);
  if (e == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  Status status = e->module->CloseSocket(*e->state);
  sockets_.erase(s);
  return status;
}

void ModularNetStack::OnPacket(const Packet& packet) {
  SKERN_COUNTER_INC("net.modular.dispatch.packets");
  auto it = registry_.find(packet.proto);
  if (it != registry_.end()) {
    SKERN_TRACE("net", "modular_dispatch", packet.proto, packet.dst_port);
    it->second->OnPacket(packet);
    return;
  }
  // Unknown protocol: no module registered, silently dropped.
  SKERN_COUNTER_INC("net.modular.dispatch.unknown_proto");
}

// ---------------------------------------------------------------------------
// TCP protocol module
// ---------------------------------------------------------------------------

namespace {

struct TcpSock : ProtoSocketState {
  uint16_t local_port = 0;
  bool listening = false;
  std::unique_ptr<TcpConnection> conn;
  std::deque<std::unique_ptr<TcpSock>> accept_queue;  // embryos owned here until accepted
};

class TcpModule : public ProtocolModule {
 public:
  TcpModule(SimClock& clock, Network& network, uint32_t ip)
      : clock_(clock), network_(network), ip_(ip) {}

  uint8_t ProtoId() const override { return kProtoTcp; }
  std::string Name() const override { return "tcp"; }

  std::unique_ptr<ProtoSocketState> NewSocket() override {
    return std::make_unique<TcpSock>();
  }

  Status Bind(ProtoSocketState& sock, uint16_t port) override {
    auto& tcp = static_cast<TcpSock&>(sock);
    if (listeners_.count(port) > 0) {
      return Status::Error(Errno::kEADDRINUSE);
    }
    tcp.local_port = port;
    return Status::Ok();
  }

  Status Listen(ProtoSocketState& sock) override {
    auto& tcp = static_cast<TcpSock&>(sock);
    if (tcp.local_port == 0) {
      return Status::Error(Errno::kEINVAL);
    }
    tcp.listening = true;
    listeners_[tcp.local_port] = &tcp;
    return Status::Ok();
  }

  Result<std::unique_ptr<ProtoSocketState>> Accept(ProtoSocketState& sock) override {
    auto& tcp = static_cast<TcpSock&>(sock);
    if (!tcp.listening) {
      return Errno::kEINVAL;
    }
    while (!tcp.accept_queue.empty()) {
      TcpSock* front = tcp.accept_queue.front().get();
      if (front->conn->state() == TcpState::kEstablished) {
        std::unique_ptr<TcpSock> child = std::move(tcp.accept_queue.front());
        tcp.accept_queue.pop_front();
        return std::unique_ptr<ProtoSocketState>(std::move(child));
      }
      if (front->conn->state() == TcpState::kClosed) {
        Deregister(*front);
        tcp.accept_queue.pop_front();
        continue;
      }
      return Errno::kEAGAIN;
    }
    return Errno::kEAGAIN;
  }

  Status Connect(ProtoSocketState& sock, NetAddr remote) override {
    auto& tcp = static_cast<TcpSock&>(sock);
    if (tcp.conn != nullptr) {
      return Status::Error(Errno::kEISCONN);
    }
    if (tcp.local_port == 0) {
      tcp.local_port = next_port_++;
    }
    NetAddr local{ip_, tcp.local_port};
    tcp.conn = TcpConnection::Connect(
        clock_, [this](Packet&& pkt) { network_.Send(std::move(pkt)); }, local, remote);
    conns_[{tcp.local_port, remote.ip, remote.port}] = &tcp;
    return Status::Ok();
  }

  Status Send(ProtoSocketState& sock, ByteView data) override {
    auto& tcp = static_cast<TcpSock&>(sock);
    if (tcp.conn == nullptr) {
      return Status::Error(Errno::kENOTCONN);
    }
    return tcp.conn->Send(data);
  }

  Result<Bytes> Recv(ProtoSocketState& sock, uint64_t max) override {
    auto& tcp = static_cast<TcpSock&>(sock);
    if (tcp.conn == nullptr) {
      return Errno::kENOTCONN;
    }
    if (tcp.conn->Available() == 0) {
      if (tcp.conn->PeerClosed() || tcp.conn->state() == TcpState::kClosed) {
        return Bytes{};  // EOF
      }
      return Errno::kEAGAIN;
    }
    return tcp.conn->Recv(max);
  }

  Status SendTo(ProtoSocketState&, NetAddr, ByteView) override {
    return Status::Error(Errno::kEPROTONOSUPPORT);
  }

  Result<std::pair<NetAddr, Bytes>> RecvFrom(ProtoSocketState&) override {
    return Errno::kEPROTONOSUPPORT;
  }

  Status CloseSocket(ProtoSocketState& sock) override {
    auto& tcp = static_cast<TcpSock&>(sock);
    if (tcp.listening) {
      listeners_.erase(tcp.local_port);
      for (auto& embryo : tcp.accept_queue) {
        Deregister(*embryo);
        embryo->conn->Abort();
      }
      tcp.accept_queue.clear();
    }
    if (tcp.conn != nullptr) {
      tcp.conn->Close();
      Deregister(tcp);
    }
    return Status::Ok();
  }

  void OnPacket(const Packet& packet) override {
    auto conn_it = conns_.find({packet.dst_port, packet.src_ip, packet.src_port});
    if (conn_it != conns_.end()) {
      conn_it->second->conn->OnSegment(packet);
      return;
    }
    if (packet.Has(kTcpSyn) && !packet.Has(kTcpAck)) {
      auto listener_it = listeners_.find(packet.dst_port);
      if (listener_it != listeners_.end()) {
        auto child = std::make_unique<TcpSock>();
        child->local_port = packet.dst_port;
        NetAddr local{ip_, packet.dst_port};
        child->conn = TcpConnection::FromSyn(
            clock_, [this](Packet&& pkt) { network_.Send(std::move(pkt)); }, local, packet);
        conns_[{packet.dst_port, packet.src_ip, packet.src_port}] = child.get();
        listener_it->second->accept_queue.push_back(std::move(child));
        return;
      }
    }
    if (!packet.Has(kTcpRst)) {
      Packet rst;
      rst.proto = kProtoTcp;
      rst.src_ip = ip_;
      rst.src_port = packet.dst_port;
      rst.dst_ip = packet.src_ip;
      rst.dst_port = packet.src_port;
      rst.flags = kTcpRst;
      rst.seq = packet.ack;
      network_.Send(std::move(rst));
    }
  }

 private:
  void Deregister(TcpSock& tcp) {
    if (tcp.conn != nullptr) {
      conns_.erase({tcp.local_port, tcp.conn->remote().ip, tcp.conn->remote().port});
    }
  }

  SimClock& clock_;
  Network& network_;
  uint32_t ip_;
  uint16_t next_port_ = 40000;
  std::map<uint16_t, TcpSock*> listeners_;
  std::map<std::tuple<uint16_t, uint32_t, uint16_t>, TcpSock*> conns_;
};

// ---------------------------------------------------------------------------
// UDP protocol module
// ---------------------------------------------------------------------------

struct UdpSock : ProtoSocketState {
  uint16_t local_port = 0;
  std::deque<std::pair<NetAddr, Bytes>> rx;
};

class UdpModule : public ProtocolModule {
 public:
  UdpModule(Network& network, uint32_t ip) : network_(network), ip_(ip) {}

  uint8_t ProtoId() const override { return kProtoUdp; }
  std::string Name() const override { return "udp"; }

  std::unique_ptr<ProtoSocketState> NewSocket() override {
    return std::make_unique<UdpSock>();
  }

  Status Bind(ProtoSocketState& sock, uint16_t port) override {
    auto& udp = static_cast<UdpSock&>(sock);
    if (ports_.count(port) > 0) {
      return Status::Error(Errno::kEADDRINUSE);
    }
    udp.local_port = port;
    ports_[port] = &udp;
    return Status::Ok();
  }

  Status Listen(ProtoSocketState&) override {
    return Status::Error(Errno::kEPROTONOSUPPORT);
  }
  Result<std::unique_ptr<ProtoSocketState>> Accept(ProtoSocketState&) override {
    return Errno::kEPROTONOSUPPORT;
  }
  Status Connect(ProtoSocketState&, NetAddr) override {
    return Status::Error(Errno::kEPROTONOSUPPORT);
  }
  Status Send(ProtoSocketState&, ByteView) override {
    return Status::Error(Errno::kENOTCONN);
  }
  Result<Bytes> Recv(ProtoSocketState&, uint64_t) override { return Errno::kENOTCONN; }

  Status SendTo(ProtoSocketState& sock, NetAddr remote, ByteView data) override {
    auto& udp = static_cast<UdpSock&>(sock);
    if (udp.local_port == 0) {
      udp.local_port = next_port_++;
      ports_[udp.local_port] = &udp;
    }
    Packet pkt;
    pkt.proto = kProtoUdp;
    pkt.src_ip = ip_;
    pkt.src_port = udp.local_port;
    pkt.dst_ip = remote.ip;
    pkt.dst_port = remote.port;
    pkt.payload = data.ToBytes();
    network_.Send(std::move(pkt));
    return Status::Ok();
  }

  Result<std::pair<NetAddr, Bytes>> RecvFrom(ProtoSocketState& sock) override {
    auto& udp = static_cast<UdpSock&>(sock);
    if (udp.rx.empty()) {
      return Errno::kEAGAIN;
    }
    auto front = std::move(udp.rx.front());
    udp.rx.pop_front();
    return front;
  }

  Status CloseSocket(ProtoSocketState& sock) override {
    auto& udp = static_cast<UdpSock&>(sock);
    ports_.erase(udp.local_port);
    return Status::Ok();
  }

  void OnPacket(const Packet& packet) override {
    auto it = ports_.find(packet.dst_port);
    if (it != ports_.end()) {
      it->second->rx.emplace_back(NetAddr{packet.src_ip, packet.src_port}, packet.payload);
    }
  }

 private:
  Network& network_;
  uint32_t ip_;
  uint16_t next_port_ = 50000;
  std::map<uint16_t, UdpSock*> ports_;
};

}  // namespace

std::unique_ptr<ProtocolModule> MakeTcpModule(SimClock& clock, Network& network, uint32_t ip) {
  return std::make_unique<TcpModule>(clock, network, ip);
}

std::unique_ptr<ProtocolModule> MakeUdpModule(Network& network, uint32_t ip) {
  return std::make_unique<UdpModule>(network, ip);
}

std::unique_ptr<ModularNetStack> MakeStandardModularStack(SimClock& clock, Network& network,
                                                          uint32_t ip) {
  auto stack = std::make_unique<ModularNetStack>(network, ip);
  SKERN_CHECK(stack->RegisterProtocol(MakeTcpModule(clock, network, ip)).ok());
  SKERN_CHECK(stack->RegisterProtocol(MakeUdpModule(network, ip)).ok());
  return stack;
}

}  // namespace skern
