#include "src/net/stack_modular.h"

#include <deque>
#include <unordered_map>
#include <utility>

#include "src/net/net_txq.h"
#include "src/net/tcp.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace skern {

namespace {

// splitmix64 finalizer: cheap, and strong enough that packed wire keys
// (connection tuples, ports) spread evenly across demux shards.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Global generation for every demux-shaped table (wire-key tables and the
// socket-id table). Any insert or erase anywhere bumps it; per-thread MRU
// lookup caches are valid only while the generation they were filled under
// is still current. Steady-state data-plane traffic never mutates these
// tables, so the caches turn the per-packet and per-call lookups — shard
// mutex, lockdep bookkeeping, hash probe, refcount churn — into a key
// compare against a thread-local slot. The counter is global rather than
// per-table so that validation never dereferences a table that might be
// gone; a hit races with a concurrent erase exactly like a map lookup that
// ran just before it, and the liveness check under the socket's own lock
// (see TcpRef) still gates every raw-pointer dereference.
std::atomic<uint64_t> g_demux_gen{1};

uint64_t DemuxGen() { return g_demux_gen.load(std::memory_order_acquire); }

void BumpDemuxGen() { g_demux_gen.fetch_add(1, std::memory_order_release); }

}  // namespace

// ---------------------------------------------------------------------------
// Generic layer: protocol-agnostic, start to finish.
// ---------------------------------------------------------------------------

ModularNetStack::ModularNetStack(Network& network, uint32_t ip) : network_(network), ip_(ip) {
  network_.Attach(ip_, [this](const Packet& packet) {
    OnPacket(packet);
    // Delivery may have staged replies (ACKs, echoes); push them onto the
    // wire now that no stack locks are held. A no-op when this delivery is
    // itself running inside an outer flush (delay == 0 fast path).
    netq::Flush();
  });
}

Status ModularNetStack::RegisterProtocol(std::unique_ptr<ProtocolModule> module) {
  uint8_t id = module->ProtoId();
  if (registry_[id] != nullptr) {
    return Status::Error(Errno::kEEXIST);
  }
  registry_[id] = std::move(module);
  return Status::Ok();
}

std::vector<std::string> ModularNetStack::ProtocolNames() const {
  std::vector<std::string> names;
  for (const auto& module : registry_) {
    if (module != nullptr) {
      names.push_back(module->Name());
    }
  }
  return names;
}

ModularNetStack::Shard& ModularNetStack::ShardFor(SocketId s) {
  // Identity striping, not a hash: consecutive ids land on consecutive
  // shards (anti-contention), and id / kShardCount is then the dense slot
  // index within the shard.
  return shards_[static_cast<uint32_t>(s) % kShardCount];
}

std::shared_ptr<ModularNetStack::Entry> ModularNetStack::Find(SocketId s) {
  // Same per-thread MRU scheme as DemuxTable::Lookup (see below): valid only
  // while the global demux generation is unchanged, i.e. while no socket
  // anywhere was opened or closed. Every data-plane API call starts here, so
  // this turns the id lookup into two compares and a weak_ptr upgrade in
  // steady state. The cache holds a weak_ptr, not a shared_ptr: an owning
  // slot would keep a socket — and its TCP engine, whose destructor talks to
  // the sim clock — alive past its stack's teardown, until some arbitrary
  // later thread exit.
  struct CacheSlot {
    const void* stack = nullptr;
    SocketId id = 0;
    uint64_t gen = 0;
    std::weak_ptr<Entry> entry;
  };
  static thread_local std::array<CacheSlot, 4> tl_cache;
  CacheSlot& slot = tl_cache[(static_cast<uint64_t>(s) ^
                              (reinterpret_cast<uintptr_t>(this) >> 4)) &
                             3];
  uint64_t gen = DemuxGen();
  if (slot.stack == this && slot.id == s && slot.gen == gen) {
    std::shared_ptr<Entry> hit = slot.entry.lock();
    if (hit != nullptr) {
      return hit;
    }
  }
  Shard& shard = ShardFor(s);
  std::shared_ptr<Entry> out;
  {
    size_t idx = static_cast<uint32_t>(s) / kShardCount;
    MutexGuard guard(shard.lock);
    if (idx >= shard.slots.size() || shard.slots[idx] == nullptr) {
      return nullptr;
    }
    out = shard.slots[idx];
  }
  slot.stack = this;
  slot.id = s;
  slot.gen = gen;
  slot.entry = out;
  return out;
}

SocketId ModularNetStack::InsertEntry(ProtocolModule* module,
                                      std::shared_ptr<ProtoSocketState> state) {
  auto entry = std::make_shared<Entry>(Entry{module, std::move(state)});
  for (;;) {
    uint32_t raw = next_id_.fetch_add(1, std::memory_order_relaxed);
    SocketId id = static_cast<SocketId>(raw & 0x7fffffffu);
    if (id == 0) {
      continue;  // the counter wrapped; ids stay positive
    }
    Shard& shard = ShardFor(id);
    size_t idx = static_cast<uint32_t>(id) / kShardCount;
    {
      MutexGuard guard(shard.lock);
      if (idx < shard.slots.size() && shard.slots[idx] != nullptr) {
        continue;  // an id from 2^31 allocations ago is still open: probe past it
      }
      if (idx >= shard.slots.size()) {
        shard.slots.resize(idx + 1);
      }
      shard.slots[idx] = std::move(entry);
    }
    BumpDemuxGen();
    return id;
  }
}

Result<SocketId> ModularNetStack::Socket(uint8_t proto) {
  ProtocolModule* module = registry_[proto].get();
  if (module == nullptr) {
    return Errno::kEPROTONOSUPPORT;
  }
  SocketId id = InsertEntry(module, module->NewSocket());
  SKERN_COUNTER_INC("net.sock.opened");
  SKERN_GAUGE_ADD("net.sock.open", 1);
  return id;
}

Status ModularNetStack::Bind(SocketId s, uint16_t port) {
  std::shared_ptr<Entry> e = Find(s);
  if (e == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  return e->module->Bind(*e->state, port);
}

Status ModularNetStack::Listen(SocketId s) {
  std::shared_ptr<Entry> e = Find(s);
  if (e == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  return e->module->Listen(*e->state);
}

Result<SocketId> ModularNetStack::Accept(SocketId s) {
  std::shared_ptr<Entry> e = Find(s);
  if (e == nullptr) {
    return Errno::kEBADF;
  }
  SKERN_ASSIGN_OR_RETURN(std::unique_ptr<ProtoSocketState> child, e->module->Accept(*e->state));
  SocketId id = InsertEntry(e->module, std::move(child));
  SKERN_COUNTER_INC("net.sock.opened");
  SKERN_GAUGE_ADD("net.sock.open", 1);
  return id;
}

Status ModularNetStack::Connect(SocketId s, NetAddr remote) {
  std::shared_ptr<Entry> e = Find(s);
  if (e == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  Status status = e->module->Connect(*e->state, remote);
  netq::Flush();
  return status;
}

Status ModularNetStack::Send(SocketId s, ByteView data) {
  SKERN_COUNTER_INC("net.modular.socket.sends");
  std::shared_ptr<Entry> e = Find(s);
  if (e == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  Status status = e->module->Send(*e->state, data);
  netq::Flush();
  return status;
}

Result<Bytes> ModularNetStack::Recv(SocketId s, uint64_t max) {
  SKERN_COUNTER_INC("net.modular.socket.recvs");
  std::shared_ptr<Entry> e = Find(s);
  if (e == nullptr) {
    return Errno::kEBADF;
  }
  auto result = e->module->Recv(*e->state, max);
  netq::Flush();
  return result;
}

Status ModularNetStack::SendTo(SocketId s, NetAddr remote, ByteView data) {
  std::shared_ptr<Entry> e = Find(s);
  if (e == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  Status status = e->module->SendTo(*e->state, remote, data);
  netq::Flush();
  return status;
}

Result<std::pair<NetAddr, Bytes>> ModularNetStack::RecvFrom(SocketId s) {
  std::shared_ptr<Entry> e = Find(s);
  if (e == nullptr) {
    return Errno::kEBADF;
  }
  auto result = e->module->RecvFrom(*e->state);
  netq::Flush();
  return result;
}

Status ModularNetStack::SendChain(SocketId s, BufChain chain) {
  SKERN_COUNTER_INC("net.modular.socket.sends");
  std::shared_ptr<Entry> e = Find(s);
  if (e == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  Status status = e->module->SendChain(*e->state, std::move(chain));
  netq::Flush();
  return status;
}

Result<BufChain> ModularNetStack::RecvChain(SocketId s, uint64_t max) {
  SKERN_COUNTER_INC("net.modular.socket.recvs");
  std::shared_ptr<Entry> e = Find(s);
  if (e == nullptr) {
    return Errno::kEBADF;
  }
  auto result = e->module->RecvChain(*e->state, max);
  netq::Flush();
  return result;
}

Status ModularNetStack::SetOption(SocketId s, int option, int64_t value) {
  std::shared_ptr<Entry> e = Find(s);
  if (e == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  return e->module->SetOption(*e->state, option, value);
}

Status ModularNetStack::Close(SocketId s) {
  std::shared_ptr<Entry> e;
  {
    Shard& shard = ShardFor(s);
    size_t idx = static_cast<uint32_t>(s) / kShardCount;
    MutexGuard guard(shard.lock);
    if (idx < shard.slots.size()) {
      e = std::move(shard.slots[idx]);
      shard.slots[idx] = nullptr;
    }
  }
  BumpDemuxGen();
  if (e == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  // The entry is out of the table but `e` keeps the state alive through the
  // module's teardown; concurrent ops holding their own reference observe
  // the control block going dead rather than freed memory.
  Status status = e->module->CloseSocket(*e->state);
  netq::Flush();
  SKERN_COUNTER_INC("net.sock.closed");
  SKERN_GAUGE_ADD("net.sock.open", -1);
  return status;
}

std::shared_ptr<SockCtl> ModularNetStack::ControlBlock(SocketId s) {
  std::shared_ptr<Entry> e = Find(s);
  return e == nullptr ? nullptr : e->state->ctl;
}

void ModularNetStack::OnPacket(const Packet& packet) {
  SKERN_COUNTER_INC("net.modular.dispatch.packets");
  ProtocolModule* module = registry_[packet.proto].get();
  if (module != nullptr) {
    SKERN_TRACE("net", "modular_dispatch", packet.proto, packet.dst_port);
    module->OnPacket(packet);
    return;
  }
  // Unknown protocol: no module registered, silently dropped.
  SKERN_COUNTER_INC("net.modular.dispatch.unknown_proto");
}

// ---------------------------------------------------------------------------
// Demux tables: lock-striped maps from wire keys to sockets.
// ---------------------------------------------------------------------------

namespace {

// A sharded key→ref map. Refs pair a raw socket pointer with the socket's
// SockCtl: lookups copy the ref out under the shard lock and release it, then
// validate liveness under the socket's own lock — the raw pointer is only
// dereferenced when `alive` (whose owner deregisters before destruction)
// proves it valid.
template <typename Ref>
class DemuxTable {
 public:
  explicit DemuxTable(const std::string& lock_class) {
    shards_.reserve(kShards);
    for (size_t i = 0; i < kShards; ++i) {
      shards_.push_back(std::make_unique<DShard>(lock_class));
    }
  }

  // Borrowed demux lookup. Returns nullptr if the key is absent; otherwise
  // a pointer valid until the calling thread's next Borrow on any demux
  // table (the thread-local cache slot it may point into can be refilled
  // then) — callers must finish with the ref inside the packet-processing
  // frame and must not re-enter demux while holding it. The packet path
  // satisfies this by construction: replies are staged (net_txq), never
  // delivered inline from OnPacket.
  const Ref* Borrow(uint64_t key, Ref& fallback) {
    // Per-thread MRU cache, direct-mapped, validated by the global demux
    // generation. The fast path is two compares and an atomic load — no
    // shard mutex, no hash probe, and since the caller borrows the slot's
    // ref instead of copying it, no refcount traffic at all. This is what
    // makes per-packet demux cheap: a TCP stream's segments hit the same
    // key back to back.
    struct CacheSlot {
      const void* table = nullptr;
      uint64_t key = 0;
      uint64_t gen = 0;
      Ref ref;
    };
    static thread_local std::array<CacheSlot, 4> tl_cache;
    CacheSlot& slot =
        tl_cache[(key ^ (reinterpret_cast<uintptr_t>(this) >> 4)) & 3];
    uint64_t gen = DemuxGen();
    if (slot.table == this && slot.key == key && slot.gen == gen) {
      return &slot.ref;
    }
    DShard& shard = ShardFor(key);
    {
      MutexGuard guard(shard.lock);
      auto it = shard.map.find(key);
      if (it == shard.map.end()) {
        return nullptr;
      }
      fallback = it->second;
    }
    // Stamp with the generation read *before* the probe: if a mutation slid
    // in between, the stamp is already stale and the next lookup refills.
    // Only refs that own nothing but the control block are cached (see
    // CacheSafe): a listener ref pins the whole TcpSock, which must not
    // outlive its stack in a thread-local slot.
    if (CacheSafe(fallback)) {
      slot.table = this;
      slot.key = key;
      slot.gen = gen;
      slot.ref = fallback;
    }
    return &fallback;
  }

  bool Insert(uint64_t key, Ref ref) {
    DShard& shard = ShardFor(key);
    bool inserted;
    {
      MutexGuard guard(shard.lock);
      inserted = shard.map.emplace(key, std::move(ref)).second;
    }
    BumpDemuxGen();
    return inserted;
  }

  void Erase(uint64_t key) {
    DShard& shard = ShardFor(key);
    {
      MutexGuard guard(shard.lock);
      shard.map.erase(key);
    }
    BumpDemuxGen();
  }

  bool Contains(uint64_t key) {
    DShard& shard = ShardFor(key);
    MutexGuard guard(shard.lock);
    return shard.map.count(key) > 0;
  }

 private:
  struct DShard {
    explicit DShard(const std::string& cls) : lock(cls) {}
    TrackedMutex lock;  // blocking, not spinning: see Shard in stack_modular.h
    std::unordered_map<uint64_t, Ref> map;  // guarded by lock
  };

  static constexpr size_t kShards = 16;

  DShard& ShardFor(uint64_t key) { return *shards_[SplitMix64(key) % kShards]; }

  std::vector<std::unique_ptr<DShard>> shards_;
};

// ---------------------------------------------------------------------------
// TCP protocol module
// ---------------------------------------------------------------------------

struct TcpSock : ProtoSocketState {
  // Connection state: all guarded by ctl->mu.
  uint16_t local_port = 0;
  bool listening = false;
  std::unique_ptr<TcpConnection> conn;

  // Listener side. `accepting` doubles as the liveness check for the SYN
  // path, which holds accept_mu but (by lock order) cannot take ctl->mu.
  std::atomic<bool> accepting{false};
  std::atomic<int> backlog{64};
  TrackedMutex accept_mu{"net.tcp.acceptq"};
  std::deque<std::unique_ptr<TcpSock>> accept_queue;  // embryos; guarded by accept_mu

  // Embryo side: written before publication, read-only after.
  bool is_embryo = false;
  bool established_notified = false;  // guarded by ctl->mu
  std::weak_ptr<SockCtl> listener_ctl;
};

// local_port : remote_ip : remote_port packed into the demux key.
uint64_t ConnKey(uint16_t local_port, uint32_t remote_ip, uint16_t remote_port) {
  return (static_cast<uint64_t>(local_port) << 48) | (static_cast<uint64_t>(remote_ip) << 16) |
         remote_port;
}

// Readiness mask for a connection socket. Caller holds ctl->mu.
uint32_t TcpReadiness(const TcpSock& tcp) {
  if (tcp.conn == nullptr) {
    return 0;
  }
  uint32_t mask = 0;
  const TcpState st = tcp.conn->state();
  if (tcp.conn->Available() > 0) {
    mask |= kPollIn;
  }
  if (st == TcpState::kEstablished || st == TcpState::kCloseWait) {
    mask |= kPollOut;
  }
  if (tcp.conn->PeerClosed()) {
    mask |= kPollIn | kPollHup;  // EOF is a readable event
  }
  if (st == TcpState::kClosed) {
    mask |= kPollIn | kPollHup;
    if (!tcp.conn->PeerClosed()) {
      mask |= kPollErr;  // dropped hard: RST or retry exhaustion
    }
  }
  return mask;
}

struct TcpRef {
  TcpSock* sock = nullptr;
  std::shared_ptr<SockCtl> ctl;
  // Listeners only: pins the TcpSock itself, because the SYN path must take
  // accept_mu (a member) before it can check liveness. Connection refs leave
  // this null — they never touch the socket until `alive` proves it valid.
  std::shared_ptr<ProtoSocketState> pin;
};

// A ref may sit in a thread-local demux cache slot past its socket's close;
// that is only safe when it owns nothing with a teardown-order-sensitive
// destructor. SockCtl is inert; the TcpSock pin is not (its TCP engine's
// destructor touches the sim clock), so listener refs are never cached.
bool CacheSafe(const TcpRef& ref) { return ref.pin == nullptr; }

class TcpModule : public ProtocolModule {
 public:
  TcpModule(SimClock& clock, Network& network, uint32_t ip)
      : clock_(clock), network_(network), ip_(ip) {}

  uint8_t ProtoId() const override { return kProtoTcp; }
  std::string Name() const override { return "tcp"; }

  std::unique_ptr<ProtoSocketState> NewSocket() override { return std::make_unique<TcpSock>(); }

  Status Bind(ProtoSocketState& sock, uint16_t port) override {
    auto& tcp = static_cast<TcpSock&>(sock);
    SockGuard guard(*tcp.ctl);
    if (!guard.alive()) {
      return Status::Error(Errno::kEBADF);
    }
    if (listeners_.Contains(port)) {
      return Status::Error(Errno::kEADDRINUSE);
    }
    tcp.local_port = port;
    return Status::Ok();
  }

  Status Listen(ProtoSocketState& sock) override {
    auto& tcp = static_cast<TcpSock&>(sock);
    SockGuard guard(*tcp.ctl);
    if (!guard.alive()) {
      return Status::Error(Errno::kEBADF);
    }
    if (tcp.local_port == 0) {
      return Status::Error(Errno::kEINVAL);
    }
    if (!listeners_.Insert(tcp.local_port, TcpRef{&tcp, tcp.ctl, sock.shared_from_this()})) {
      return Status::Error(Errno::kEADDRINUSE);
    }
    tcp.listening = true;
    tcp.accepting.store(true, std::memory_order_release);
    return Status::Ok();
  }

  Result<std::unique_ptr<ProtoSocketState>> Accept(ProtoSocketState& sock) override {
    auto& tcp = static_cast<TcpSock&>(sock);
    std::shared_ptr<SockCtl> ctl = tcp.ctl;
    {
      SockGuard guard(*ctl);
      if (!guard.alive()) {
        return Errno::kEBADF;
      }
      if (!tcp.listening) {
        return Errno::kEINVAL;
      }
    }
    std::unique_ptr<TcpSock> child;
    {
      MutexGuard aq(tcp.accept_mu);
      while (!tcp.accept_queue.empty()) {
        TcpSock* front = tcp.accept_queue.front().get();
        std::shared_ptr<SockCtl> fctl = front->ctl;
        TcpState st;
        {
          SockGuard fg(*fctl);  // lock order: net.tcp.acceptq → net.sock
          st = front->conn->state();
          if (st == TcpState::kClosed) {
            conns_.Erase(
                ConnKey(front->local_port, front->conn->remote().ip, front->conn->remote().port));
            fg.MarkDead();
          }
        }
        if (st == TcpState::kEstablished) {
          child = std::move(tcp.accept_queue.front());
          tcp.accept_queue.pop_front();
          break;
        }
        if (st == TcpState::kClosed) {
          tcp.accept_queue.pop_front();  // stillborn embryo: discard, keep scanning
          continue;
        }
        break;  // head still mid-handshake: nothing acceptable yet
      }
    }
    if (child == nullptr) {
      // Re-arm edge triggers: the epoll-style contract is "drain until
      // EAGAIN"; clearing IN here makes the next established embryo a
      // rising edge.
      ctl->Publish(ctl->ready.load(std::memory_order_relaxed) & ~kPollIn);
      return Errno::kEAGAIN;
    }
    child->is_embryo = false;
    SKERN_COUNTER_INC("net.tcp.accepts");
    return std::unique_ptr<ProtoSocketState>(std::move(child));
  }

  Status Connect(ProtoSocketState& sock, NetAddr remote) override {
    auto& tcp = static_cast<TcpSock&>(sock);
    SockGuard guard(*tcp.ctl);
    if (!guard.alive()) {
      return Status::Error(Errno::kEBADF);
    }
    if (tcp.conn != nullptr) {
      return Status::Error(Errno::kEISCONN);
    }
    if (tcp.local_port == 0) {
      tcp.local_port = AllocPort();
    }
    NetAddr local{ip_, tcp.local_port};
    tcp.conn = TcpConnection::Connect(clock_, MakeSendFn(), local, remote,
                                      MakeGate(tcp.ctl, &tcp));
    if (!conns_.Insert(ConnKey(tcp.local_port, remote.ip, remote.port),
                       TcpRef{&tcp, tcp.ctl, nullptr})) {
      tcp.conn->Abort();
      tcp.conn.reset();
      return Status::Error(Errno::kEADDRINUSE);
    }
    return Status::Ok();
  }

  Status Send(ProtoSocketState& sock, ByteView data) override {
    auto& tcp = static_cast<TcpSock&>(sock);
    std::shared_ptr<SockCtl> ctl = tcp.ctl;
    Status status;
    uint32_t mask;
    {
      SockGuard guard(*ctl);
      if (!guard.alive()) {
        return Status::Error(Errno::kEBADF);
      }
      if (tcp.conn == nullptr) {
        return Status::Error(Errno::kENOTCONN);
      }
      status = tcp.conn->Send(data);
      mask = TcpReadiness(tcp);
    }
    ctl->Publish(mask);
    return status;
  }

  Status SendChain(ProtoSocketState& sock, BufChain chain) override {
    auto& tcp = static_cast<TcpSock&>(sock);
    std::shared_ptr<SockCtl> ctl = tcp.ctl;
    Status status;
    uint32_t mask;
    {
      SockGuard guard(*ctl);
      if (!guard.alive()) {
        return Status::Error(Errno::kEBADF);
      }
      if (tcp.conn == nullptr) {
        return Status::Error(Errno::kENOTCONN);
      }
      status = tcp.conn->SendChain(std::move(chain));
      mask = TcpReadiness(tcp);
    }
    ctl->Publish(mask);
    return status;
  }

  Result<Bytes> Recv(ProtoSocketState& sock, uint64_t max) override {
    auto& tcp = static_cast<TcpSock&>(sock);
    std::shared_ptr<SockCtl> ctl = tcp.ctl;
    Bytes out;
    uint32_t mask;
    {
      SockGuard guard(*ctl);
      if (!guard.alive()) {
        return Errno::kEBADF;
      }
      if (tcp.conn == nullptr) {
        return Errno::kENOTCONN;
      }
      if (tcp.conn->Available() == 0) {
        if (tcp.conn->PeerClosed() || tcp.conn->state() == TcpState::kClosed) {
          return Bytes{};  // EOF
        }
        return Errno::kEAGAIN;
      }
      out = tcp.conn->Recv(max);
      mask = TcpReadiness(tcp);
    }
    ctl->Publish(mask);
    return out;
  }

  Result<BufChain> RecvChain(ProtoSocketState& sock, uint64_t max) override {
    auto& tcp = static_cast<TcpSock&>(sock);
    std::shared_ptr<SockCtl> ctl = tcp.ctl;
    BufChain out;
    uint32_t mask;
    {
      SockGuard guard(*ctl);
      if (!guard.alive()) {
        return Errno::kEBADF;
      }
      if (tcp.conn == nullptr) {
        return Errno::kENOTCONN;
      }
      if (tcp.conn->Available() == 0) {
        if (tcp.conn->PeerClosed() || tcp.conn->state() == TcpState::kClosed) {
          return BufChain{};  // EOF
        }
        return Errno::kEAGAIN;
      }
      out = tcp.conn->RecvChain(max);
      mask = TcpReadiness(tcp);
    }
    ctl->Publish(mask);
    return out;
  }

  Status SetOption(ProtoSocketState& sock, int option, int64_t value) override {
    auto& tcp = static_cast<TcpSock&>(sock);
    if (option != kSockOptAcceptBacklog) {
      return Status::Error(Errno::kENOSYS);
    }
    if (value <= 0) {
      return Status::Error(Errno::kEINVAL);
    }
    SockGuard guard(*tcp.ctl);
    if (!guard.alive()) {
      return Status::Error(Errno::kEBADF);
    }
    tcp.backlog.store(static_cast<int>(value), std::memory_order_relaxed);
    return Status::Ok();
  }

  Status SendTo(ProtoSocketState&, NetAddr, ByteView) override {
    return Status::Error(Errno::kEPROTONOSUPPORT);
  }

  Result<std::pair<NetAddr, Bytes>> RecvFrom(ProtoSocketState&) override {
    return Errno::kEPROTONOSUPPORT;
  }

  Status CloseSocket(ProtoSocketState& sock) override {
    auto& tcp = static_cast<TcpSock&>(sock);
    std::shared_ptr<SockCtl> ctl = tcp.ctl;
    bool was_listener = false;
    {
      SockGuard guard(*ctl);
      if (!guard.alive()) {
        return Status::Error(Errno::kEBADF);
      }
      was_listener = tcp.listening;
      if (was_listener) {
        tcp.accepting.store(false, std::memory_order_release);
        listeners_.Erase(tcp.local_port);
      }
      if (tcp.conn != nullptr) {
        conns_.Erase(ConnKey(tcp.local_port, tcp.conn->remote().ip, tcp.conn->remote().port));
        tcp.conn->Close();  // FIN staged; later segments for this 4-tuple get RST
      }
      guard.MarkDead();
    }
    if (was_listener) {
      // Sweep the embryo queue after `accepting` went false: any SYN that
      // raced in before the flip is in the queue by now and gets aborted
      // here; any after sees the flip and is dropped.
      MutexGuard aq(tcp.accept_mu);
      for (auto& embryo : tcp.accept_queue) {
        std::shared_ptr<SockCtl> ectl = embryo->ctl;
        {
          SockGuard eg(*ectl);
          if (eg.alive()) {
            conns_.Erase(ConnKey(embryo->local_port, embryo->conn->remote().ip,
                                 embryo->conn->remote().port));
            embryo->conn->Abort();
            eg.MarkDead();
          }
        }
        ectl->Publish(kPollHup | kPollErr);
      }
      tcp.accept_queue.clear();
    }
    ctl->Publish(kPollHup);
    return Status::Ok();
  }

  void OnPacket(const Packet& packet) override {
    TcpRef ref_storage;
    const TcpRef* found =
        conns_.Borrow(ConnKey(packet.dst_port, packet.src_ip, packet.src_port), ref_storage);
    if (found != nullptr && found->sock != nullptr) {
      const TcpRef& ref = *found;
      uint32_t mask = 0;
      bool delivered = false;
      std::shared_ptr<SockCtl> listener_ctl;
      {
        SockGuard guard(*ref.ctl);
        if (guard.alive() && ref.sock->conn != nullptr) {
          ref.sock->conn->OnSegment(packet);
          delivered = true;
          mask = TcpReadiness(*ref.sock);
          if (ref.sock->is_embryo && !ref.sock->established_notified &&
              ref.sock->conn->state() == TcpState::kEstablished) {
            ref.sock->established_notified = true;
            listener_ctl = ref.sock->listener_ctl.lock();
          }
        }
      }
      if (delivered) {
        ref.ctl->Publish(mask);
      }
      if (listener_ctl != nullptr) {
        // A completed handshake makes the listener acceptable: rising IN.
        listener_ctl->Publish(listener_ctl->ready.load(std::memory_order_relaxed) | kPollIn);
      }
      return;  // found (even if dying mid-close: drop, no RST — the close path owns teardown)
    }
    if (packet.Has(kTcpSyn) && !packet.Has(kTcpAck)) {
      TcpRef lref_storage;
      const TcpRef* lref = listeners_.Borrow(packet.dst_port, lref_storage);
      if (lref != nullptr && lref->sock != nullptr) {
        HandleSyn(*lref->sock, lref->ctl, packet);
        return;
      }
    }
    if (!packet.Has(kTcpRst)) {
      Packet rst;
      rst.proto = kProtoTcp;
      rst.src_ip = ip_;
      rst.src_port = packet.dst_port;
      rst.dst_ip = packet.src_ip;
      rst.dst_port = packet.src_port;
      rst.flags = kTcpRst;
      rst.seq = packet.ack;
      netq::Stage(&network_, std::move(rst));
    }
  }

 private:
  TcpConnection::SendFn MakeSendFn() {
    // Stage, never send: the emitting code path holds the socket lock, and
    // the wire (delay == 0) delivers inline into the peer's locks.
    return [net = &network_](Packet&& pkt) { netq::Stage(net, std::move(pkt)); };
  }

  // Timer bodies (retransmission, TIME_WAIT) run on whichever thread
  // advances the clock: lock the socket, skip if it died, publish the
  // readiness fallout, flush what the body staged.
  static TcpConnection::TimerGate MakeGate(const std::shared_ptr<SockCtl>& ctl, TcpSock* sock) {
    std::weak_ptr<SockCtl> weak = ctl;
    return [weak, sock](const std::function<void()>& body) {
      std::shared_ptr<SockCtl> strong = weak.lock();
      if (strong == nullptr) {
        return;
      }
      bool ran = false;
      uint32_t mask = 0;
      {
        SockGuard guard(*strong);
        if (guard.alive()) {
          body();
          ran = true;
          mask = TcpReadiness(*sock);
        }
      }
      if (ran) {
        strong->Publish(mask);
        netq::Flush();
      }
    };
  }

  void HandleSyn(TcpSock& listener, const std::shared_ptr<SockCtl>& listener_ctl,
                 const Packet& packet) {
    bool overflow = false;
    {
      MutexGuard aq(listener.accept_mu);
      if (!listener.accepting.load(std::memory_order_acquire)) {
        return;  // listener concurrently closed; drop, retries will hit RST
      }
      if (static_cast<int>(listener.accept_queue.size()) >=
          listener.backlog.load(std::memory_order_relaxed)) {
        overflow = true;
      } else {
        auto child = std::make_unique<TcpSock>();
        child->local_port = packet.dst_port;
        child->is_embryo = true;
        child->listener_ctl = listener_ctl;
        NetAddr local{ip_, packet.dst_port};
        child->conn = TcpConnection::FromSyn(clock_, MakeSendFn(), local, packet,
                                             MakeGate(child->ctl, child.get()));
        uint64_t key = ConnKey(packet.dst_port, packet.src_ip, packet.src_port);
        if (conns_.Insert(key, TcpRef{child.get(), child->ctl, nullptr})) {
          listener.accept_queue.push_back(std::move(child));
        }
        // Insert only fails when a duplicate SYN raced us in; the embryo
        // already in the table answers it and `child` is dropped unseen
        // (its extra SYN|ACK is harmlessly re-acked by the peer).
      }
    }
    if (overflow) {
      // Locked-in semantics: a full backlog silently drops the SYN — no
      // RST. The client retransmits and eventually gives up, like a
      // SYN-flooded listener with syncookies off.
      SKERN_COUNTER_INC("net.tcp.accept_overflow");
      SKERN_TRACE("net", "tcp_accept_overflow", packet.src_ip, packet.src_port);
    }
  }

  uint16_t AllocPort() {
    // Ephemeral range [40000, 65000); collisions only matter per-remote and
    // surface as kEADDRINUSE from the conns_ insert.
    uint32_t raw = next_port_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<uint16_t>(40000 + raw % 25000);
  }

  SimClock& clock_;
  Network& network_;
  uint32_t ip_;
  std::atomic<uint32_t> next_port_{0};
  DemuxTable<TcpRef> listeners_{"net.tcp.listeners"};
  DemuxTable<TcpRef> conns_{"net.tcp.conns"};
};

// ---------------------------------------------------------------------------
// UDP protocol module
// ---------------------------------------------------------------------------

struct UdpSock : ProtoSocketState {
  uint16_t local_port = 0;                       // guarded by ctl->mu
  std::deque<std::pair<NetAddr, BufChain>> rx;  // guarded by ctl->mu
};

struct UdpRef {
  UdpSock* sock = nullptr;
  std::shared_ptr<SockCtl> ctl;
};

bool CacheSafe(const UdpRef&) { return true; }

class UdpModule : public ProtocolModule {
 public:
  UdpModule(Network& network, uint32_t ip) : network_(network), ip_(ip) {}

  uint8_t ProtoId() const override { return kProtoUdp; }
  std::string Name() const override { return "udp"; }

  std::unique_ptr<ProtoSocketState> NewSocket() override {
    auto sock = std::make_unique<UdpSock>();
    sock->ctl->ready.store(kPollOut, std::memory_order_relaxed);  // always writable
    return sock;
  }

  Status Bind(ProtoSocketState& sock, uint16_t port) override {
    auto& udp = static_cast<UdpSock&>(sock);
    SockGuard guard(*udp.ctl);
    if (!guard.alive()) {
      return Status::Error(Errno::kEBADF);
    }
    if (!ports_.Insert(port, UdpRef{&udp, udp.ctl})) {
      return Status::Error(Errno::kEADDRINUSE);
    }
    udp.local_port = port;
    return Status::Ok();
  }

  Status Listen(ProtoSocketState&) override { return Status::Error(Errno::kEPROTONOSUPPORT); }
  Result<std::unique_ptr<ProtoSocketState>> Accept(ProtoSocketState&) override {
    return Errno::kEPROTONOSUPPORT;
  }
  Status Connect(ProtoSocketState&, NetAddr) override {
    return Status::Error(Errno::kEPROTONOSUPPORT);
  }
  Status Send(ProtoSocketState&, ByteView) override { return Status::Error(Errno::kENOTCONN); }
  Result<Bytes> Recv(ProtoSocketState&, uint64_t) override { return Errno::kENOTCONN; }

  Status SendTo(ProtoSocketState& sock, NetAddr remote, ByteView data) override {
    auto& udp = static_cast<UdpSock&>(sock);
    SockGuard guard(*udp.ctl);
    if (!guard.alive()) {
      return Status::Error(Errno::kEBADF);
    }
    if (udp.local_port == 0) {
      for (;;) {
        uint16_t port = AllocPort();
        if (ports_.Insert(port, UdpRef{&udp, udp.ctl})) {
          udp.local_port = port;
          break;
        }
      }
    }
    Packet pkt;
    pkt.proto = kProtoUdp;
    pkt.src_ip = ip_;
    pkt.src_port = udp.local_port;
    pkt.dst_ip = remote.ip;
    pkt.dst_port = remote.port;
    pkt.payload.AppendCopy(data);  // the one app-to-kernel copy
    netq::Stage(&network_, std::move(pkt));
    return Status::Ok();
  }

  Result<std::pair<NetAddr, Bytes>> RecvFrom(ProtoSocketState& sock) override {
    auto& udp = static_cast<UdpSock&>(sock);
    std::shared_ptr<SockCtl> ctl = udp.ctl;
    std::pair<NetAddr, BufChain> item;
    uint32_t mask;
    {
      SockGuard guard(*ctl);
      if (!guard.alive()) {
        return Errno::kEBADF;
      }
      if (udp.rx.empty()) {
        return Errno::kEAGAIN;
      }
      item = std::move(udp.rx.front());
      udp.rx.pop_front();
      mask = udp.rx.empty() ? kPollOut : (kPollIn | kPollOut);
    }
    ctl->Publish(mask);
    Bytes flat = item.second.PopBytes(item.second.size());
    return std::make_pair(item.first, std::move(flat));
  }

  Status CloseSocket(ProtoSocketState& sock) override {
    auto& udp = static_cast<UdpSock&>(sock);
    std::shared_ptr<SockCtl> ctl = udp.ctl;
    {
      SockGuard guard(*ctl);
      if (!guard.alive()) {
        return Status::Error(Errno::kEBADF);
      }
      if (udp.local_port != 0) {
        ports_.Erase(udp.local_port);
      }
      guard.MarkDead();
    }
    ctl->Publish(kPollHup);
    return Status::Ok();
  }

  void OnPacket(const Packet& packet) override {
    UdpRef ref_storage;
    const UdpRef* found = ports_.Borrow(packet.dst_port, ref_storage);
    if (found == nullptr || found->sock == nullptr) {
      return;
    }
    const UdpRef& ref = *found;
    bool delivered = false;
    {
      SockGuard guard(*ref.ctl);
      if (guard.alive()) {
        ref.sock->rx.emplace_back(NetAddr{packet.src_ip, packet.src_port},
                                  BufChain::ShareOrCopy(packet.payload));
        delivered = true;
      }
    }
    if (delivered) {
      ref.ctl->Publish(kPollIn | kPollOut);
    }
  }

 private:
  uint16_t AllocPort() {
    uint32_t raw = next_port_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<uint16_t>(50000 + raw % 15000);
  }

  Network& network_;
  uint32_t ip_;
  std::atomic<uint32_t> next_port_{0};
  DemuxTable<UdpRef> ports_{"net.udp.ports"};
};

}  // namespace

std::unique_ptr<ProtocolModule> MakeTcpModule(SimClock& clock, Network& network, uint32_t ip) {
  return std::make_unique<TcpModule>(clock, network, ip);
}

std::unique_ptr<ProtocolModule> MakeUdpModule(Network& network, uint32_t ip) {
  return std::make_unique<UdpModule>(network, ip);
}

std::unique_ptr<ModularNetStack> MakeStandardModularStack(SimClock& clock, Network& network,
                                                          uint32_t ip) {
  auto stack = std::make_unique<ModularNetStack>(network, ip);
  SKERN_CHECK(stack->RegisterProtocol(MakeTcpModule(clock, network, ip)).ok());
  SKERN_CHECK(stack->RegisterProtocol(MakeUdpModule(network, ip)).ok());
  return stack;
}

}  // namespace skern
