// The modular socket layer: generic code with zero protocol knowledge.
//
// Every operation resolves the socket's protocol module from the registry and
// dispatches through the ProtocolModule interface. Compare each method here
// with its MonoNetStack counterpart: no `if (proto == ...)` anywhere.
#ifndef SKERN_SRC_NET_STACK_MODULAR_H_
#define SKERN_SRC_NET_STACK_MODULAR_H_

#include <map>
#include <memory>
#include <vector>

#include "src/net/network.h"
#include "src/net/proto_module.h"
#include "src/net/socket_layer.h"

namespace skern {

class ModularNetStack : public SocketLayer {
 public:
  ModularNetStack(Network& network, uint32_t ip);

  // Step-1 extensibility: protocols drop in at runtime.
  Status RegisterProtocol(std::unique_ptr<ProtocolModule> module);
  std::vector<std::string> ProtocolNames() const;

  Result<SocketId> Socket(uint8_t proto) override;
  Status Bind(SocketId s, uint16_t port) override;
  Status Listen(SocketId s) override;
  Result<SocketId> Accept(SocketId s) override;
  Status Connect(SocketId s, NetAddr remote) override;
  Status Send(SocketId s, ByteView data) override;
  Result<Bytes> Recv(SocketId s, uint64_t max) override;
  Status SendTo(SocketId s, NetAddr remote, ByteView data) override;
  Result<std::pair<NetAddr, Bytes>> RecvFrom(SocketId s) override;
  Status Close(SocketId s) override;
  std::string Name() const override { return "net-modular"; }

  uint32_t ip() const { return ip_; }

 private:
  struct Entry {
    ProtocolModule* module;
    std::unique_ptr<ProtoSocketState> state;
  };

  void OnPacket(const Packet& packet);
  Entry* Find(SocketId s);

  Network& network_;
  uint32_t ip_;
  SocketId next_id_ = 1;
  std::map<uint8_t, std::unique_ptr<ProtocolModule>> registry_;
  std::map<SocketId, Entry> sockets_;
};

// Factory helpers for the built-in protocol modules.
std::unique_ptr<ProtocolModule> MakeTcpModule(SimClock& clock, Network& network, uint32_t ip);
std::unique_ptr<ProtocolModule> MakeUdpModule(Network& network, uint32_t ip);

// Convenience: a modular stack with TCP and UDP registered.
std::unique_ptr<ModularNetStack> MakeStandardModularStack(SimClock& clock, Network& network,
                                                          uint32_t ip);

}  // namespace skern

#endif  // SKERN_SRC_NET_STACK_MODULAR_H_
