// The modular socket layer: generic code with zero protocol knowledge.
//
// Every operation resolves the socket's protocol module from the registry and
// dispatches through the ProtocolModule interface. Compare each method here
// with its MonoNetStack counterpart: no `if (proto == ...)` anywhere.
//
// Scale-out organization (the storage-side playbook applied to src/net):
//   * The socket table is lock-striped — kShardCount shards striped by
//     id % kShardCount, each a leaf lock around a dense slot vector (the
//     fd-table idiom). Independent sockets never contend on table lookups.
//   * Socket ids come from an atomic counter, wrap-safe: ids stay positive
//     int32s, id 0 is skipped, and an id still open after 2^31 allocations
//     is probed past instead of being handed out twice.
//   * Entries are shared_ptr: an operation resolves its entry under the
//     shard lock, releases it, then works on the socket under the socket's
//     own SockCtl lock — a concurrent Close cannot free state mid-op, it
//     marks the control block dead and the op observes kEBADF.
//   * No operation calls the wire while holding any lock: packets are
//     staged thread-locally (net_txq.h) and flushed at the API boundary.
#ifndef SKERN_SRC_NET_STACK_MODULAR_H_
#define SKERN_SRC_NET_STACK_MODULAR_H_

#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/net/proto_module.h"
#include "src/net/socket_layer.h"
#include "src/sync/mutex.h"

namespace skern {

class ModularNetStack : public SocketLayer {
 public:
  ModularNetStack(Network& network, uint32_t ip);

  // Step-1 extensibility: protocols drop in at runtime. Registration is
  // setup-time only (not thread-safe against concurrent traffic); after it,
  // dispatch reads the registry lock-free.
  Status RegisterProtocol(std::unique_ptr<ProtocolModule> module);
  std::vector<std::string> ProtocolNames() const;

  Result<SocketId> Socket(uint8_t proto) override;
  Status Bind(SocketId s, uint16_t port) override;
  Status Listen(SocketId s) override;
  Result<SocketId> Accept(SocketId s) override;
  Status Connect(SocketId s, NetAddr remote) override;
  Status Send(SocketId s, ByteView data) override;
  Result<Bytes> Recv(SocketId s, uint64_t max) override;
  Status SendTo(SocketId s, NetAddr remote, ByteView data) override;
  Result<std::pair<NetAddr, Bytes>> RecvFrom(SocketId s) override;
  Status Close(SocketId s) override;
  Status SendChain(SocketId s, BufChain chain) override;
  Result<BufChain> RecvChain(SocketId s, uint64_t max) override;
  Status SetOption(SocketId s, int option, int64_t value) override;
  std::string Name() const override { return "net-modular"; }

  uint32_t ip() const { return ip_; }

  // The socket's control block (readiness + liveness), shared with event
  // pollers. nullptr if the id is not open.
  std::shared_ptr<SockCtl> ControlBlock(SocketId s);

  // Test hook: position the id allocator (e.g. just below the wrap point).
  void SetNextSocketIdForTesting(uint32_t raw) {
    next_id_.store(raw, std::memory_order_relaxed);
  }

 private:
  struct Entry {
    ProtocolModule* module;
    std::shared_ptr<ProtoSocketState> state;
  };

  static constexpr size_t kShardCount = 64;

  struct Shard {
    // One lock class for all shards: striped siblings are never nested, so
    // they form no ordering edges against each other (buffer-cache idiom).
    // Blocking mutexes, not spinlocks: these run in preemptible context, and
    // a ticket spinlock convoys badly when runnable threads outnumber cores
    // (the uncontended cost is the same single CAS either way).
    //
    // fd-table idiom: ids are dense (atomic counter), so the shard stores a
    // slot vector indexed by id / kShardCount instead of a hash map — a
    // lookup is one bounds check and one indexed load, where the hash-map
    // probe was a multi-miss pointer chase that dominated the echo profile
    // at tens of thousands of open sockets.
    TrackedMutex lock{"net.stack.shard"};
    std::vector<std::shared_ptr<Entry>> slots;  // guarded by lock
  };

  Shard& ShardFor(SocketId s);
  std::shared_ptr<Entry> Find(SocketId s);
  SocketId InsertEntry(ProtocolModule* module, std::shared_ptr<ProtoSocketState> state);
  void OnPacket(const Packet& packet);

  Network& network_;
  uint32_t ip_;
  std::atomic<uint32_t> next_id_{1};
  // Slot-per-protocol registry: OnPacket dispatch is a lock-free array index.
  std::array<std::unique_ptr<ProtocolModule>, 256> registry_;
  std::array<Shard, kShardCount> shards_;
};

// Factory helpers for the built-in protocol modules.
std::unique_ptr<ProtocolModule> MakeTcpModule(SimClock& clock, Network& network, uint32_t ip);
std::unique_ptr<ProtocolModule> MakeUdpModule(Network& network, uint32_t ip);

// Convenience: a modular stack with TCP and UDP registered.
std::unique_ptr<ModularNetStack> MakeStandardModularStack(SimClock& clock, Network& network,
                                                          uint32_t ip);

}  // namespace skern

#endif  // SKERN_SRC_NET_STACK_MODULAR_H_
