#include "src/net/stack_monolithic.h"

#include <tuple>
#include <utility>

#include "src/net/net_txq.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sync/annotations.h"

namespace skern {

namespace {

// Conditionally holds the big kernel lock. TSA cannot model a maybe-held
// capability, so the acquisition is hidden from it; lockdep still tracks it
// at runtime.
class MaybeBigLock {
 public:
  explicit MaybeBigLock(TrackedMutex* mu) SKERN_NO_TSA : mu_(mu) {
    if (mu_ != nullptr) {
      mu_->Lock();
    }
  }
  ~MaybeBigLock() SKERN_NO_TSA {
    if (mu_ != nullptr) {
      mu_->Unlock();
    }
  }
  MaybeBigLock(const MaybeBigLock&) = delete;
  MaybeBigLock& operator=(const MaybeBigLock&) = delete;

 private:
  TrackedMutex* mu_;
};

}  // namespace

MonoNetStack::MonoNetStack(SimClock& clock, Network& network, uint32_t ip)
    : clock_(clock), network_(network), ip_(ip) {
  network_.Attach(ip_, [this](const Packet& packet) {
    {
      MaybeBigLock guard(big_lock_enabled_ ? &big_mu_ : nullptr);
      OnPacket(packet);
    }
    // Replies (ACKs, RSTs) were staged under the lock; send them now that it
    // is released — inline delivery (delay == 0) re-enters the peer's lock,
    // which must not nest inside ours.
    netq::Flush();
  });
}

MonoNetStack::MonoSocket* MonoNetStack::Find(SocketId s) {
  auto it = sockets_.find(s);
  return it == sockets_.end() ? nullptr : &it->second;
}

SocketId MonoNetStack::AllocId() {
  for (;;) {
    uint32_t raw = next_id_.fetch_add(1, std::memory_order_relaxed);
    SocketId id = static_cast<SocketId>(raw & 0x7fffffffu);
    if (id == 0) {
      continue;  // wrapped; ids stay positive
    }
    if (sockets_.count(id) > 0) {
      continue;  // ancient id still open: probe past it
    }
    return id;
  }
}

uint16_t MonoNetStack::AutoPort() {
  // Ephemeral range [40000, 65000); wraps instead of overflowing into
  // well-known ports.
  uint32_t raw = next_port_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<uint16_t>(40000 + raw % 25000);
}

SeedTcpConnection::SendFn MonoNetStack::StagingSendFn() {
  return [net = &network_](Packet&& pkt) { netq::Stage(net, std::move(pkt)); };
}

SeedTcpConnection::TimerGate MonoNetStack::MonoGate() {
  // Timer bodies run from SimClock::Advance: take the big lock (when
  // enabled) around the body, then flush what it staged.
  return [this](const std::function<void()>& body) {
    {
      MaybeBigLock guard(big_lock_enabled_ ? &big_mu_ : nullptr);
      body();
    }
    netq::Flush();
  };
}

// --------------------------------------------------------------------------
// Public wrappers: big-lock scope, then flush with no locks held.
// --------------------------------------------------------------------------

Result<SocketId> MonoNetStack::Socket(uint8_t proto) {
  Result<SocketId> r = [&] {
    MaybeBigLock guard(big_lock_enabled_ ? &big_mu_ : nullptr);
    return DoSocket(proto);
  }();
  netq::Flush();
  return r;
}

Status MonoNetStack::Bind(SocketId s, uint16_t port) {
  Status r = [&] {
    MaybeBigLock guard(big_lock_enabled_ ? &big_mu_ : nullptr);
    return DoBind(s, port);
  }();
  netq::Flush();
  return r;
}

Status MonoNetStack::Listen(SocketId s) {
  Status r = [&] {
    MaybeBigLock guard(big_lock_enabled_ ? &big_mu_ : nullptr);
    return DoListen(s);
  }();
  netq::Flush();
  return r;
}

Result<SocketId> MonoNetStack::Accept(SocketId s) {
  Result<SocketId> r = [&] {
    MaybeBigLock guard(big_lock_enabled_ ? &big_mu_ : nullptr);
    return DoAccept(s);
  }();
  netq::Flush();
  return r;
}

Status MonoNetStack::Connect(SocketId s, NetAddr remote) {
  Status r = [&] {
    MaybeBigLock guard(big_lock_enabled_ ? &big_mu_ : nullptr);
    return DoConnect(s, remote);
  }();
  netq::Flush();
  return r;
}

Status MonoNetStack::Send(SocketId s, ByteView data) {
  Status r = [&] {
    MaybeBigLock guard(big_lock_enabled_ ? &big_mu_ : nullptr);
    return DoSend(s, data);
  }();
  netq::Flush();
  return r;
}

Result<Bytes> MonoNetStack::Recv(SocketId s, uint64_t max) {
  Result<Bytes> r = [&] {
    MaybeBigLock guard(big_lock_enabled_ ? &big_mu_ : nullptr);
    return DoRecv(s, max);
  }();
  netq::Flush();
  return r;
}

Status MonoNetStack::SendTo(SocketId s, NetAddr remote, ByteView data) {
  Status r = [&] {
    MaybeBigLock guard(big_lock_enabled_ ? &big_mu_ : nullptr);
    return DoSendTo(s, remote, data);
  }();
  netq::Flush();
  return r;
}

Result<std::pair<NetAddr, Bytes>> MonoNetStack::RecvFrom(SocketId s) {
  Result<std::pair<NetAddr, Bytes>> r = [&] {
    MaybeBigLock guard(big_lock_enabled_ ? &big_mu_ : nullptr);
    return DoRecvFrom(s);
  }();
  netq::Flush();
  return r;
}

Status MonoNetStack::Close(SocketId s) {
  Status r = [&] {
    MaybeBigLock guard(big_lock_enabled_ ? &big_mu_ : nullptr);
    return DoClose(s);
  }();
  netq::Flush();
  return r;
}

Status MonoNetStack::SetOption(SocketId s, int option, int64_t value) {
  MaybeBigLock guard(big_lock_enabled_ ? &big_mu_ : nullptr);
  return DoSetOption(s, option, value);
}

// --------------------------------------------------------------------------
// Bodies (seed logic, staged sends).
// --------------------------------------------------------------------------

Result<SocketId> MonoNetStack::DoSocket(uint8_t proto) {
  if (proto != kProtoTcp && proto != kProtoUdp) {
    return Errno::kEPROTONOSUPPORT;
  }
  SocketId id = AllocId();
  MonoSocket sock;
  sock.proto = proto;
  sockets_[id] = std::move(sock);
  return id;
}

Status MonoNetStack::DoBind(SocketId s, uint16_t port) {
  MonoSocket* sock = Find(s);
  if (sock == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  // Generic code branching on protocol: the monolithic smell.
  if (sock->proto == kProtoTcp) {
    if (tcp_listeners_.count(port) > 0) {
      return Status::Error(Errno::kEADDRINUSE);
    }
  } else {
    if (udp_ports_.count(port) > 0) {
      return Status::Error(Errno::kEADDRINUSE);
    }
    udp_ports_[port] = s;
  }
  sock->local_port = port;
  return Status::Ok();
}

Status MonoNetStack::DoListen(SocketId s) {
  MonoSocket* sock = Find(s);
  if (sock == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  if (sock->proto != kProtoTcp) {
    return Status::Error(Errno::kEPROTONOSUPPORT);
  }
  if (sock->local_port == 0) {
    return Status::Error(Errno::kEINVAL);
  }
  sock->listening = true;
  tcp_listeners_[sock->local_port] = s;
  return Status::Ok();
}

Result<SocketId> MonoNetStack::DoAccept(SocketId s) {
  MonoSocket* sock = Find(s);
  if (sock == nullptr) {
    return Errno::kEBADF;
  }
  if (!sock->listening) {
    return Errno::kEINVAL;
  }
  // Only hand out sockets whose handshake completed.
  while (!sock->accept_queue.empty()) {
    SocketId child_id = sock->accept_queue.front();
    MonoSocket* child = Find(child_id);
    if (child == nullptr) {
      sock->accept_queue.pop_front();
      continue;
    }
    if (child->tcp->state() == TcpState::kEstablished) {
      sock->accept_queue.pop_front();
      return child_id;
    }
    if (child->tcp->state() == TcpState::kClosed) {
      sock->accept_queue.pop_front();
      sockets_.erase(child_id);
      continue;
    }
    return Errno::kEAGAIN;  // still handshaking
  }
  return Errno::kEAGAIN;
}

Status MonoNetStack::DoConnect(SocketId s, NetAddr remote) {
  MonoSocket* sock = Find(s);
  if (sock == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  if (sock->proto != kProtoTcp) {
    return Status::Error(Errno::kEPROTONOSUPPORT);
  }
  if (sock->tcp != nullptr) {
    return Status::Error(Errno::kEISCONN);
  }
  if (sock->local_port == 0) {
    sock->local_port = AutoPort();
  }
  NetAddr local{ip_, sock->local_port};
  sock->tcp = SeedTcpConnection::Connect(clock_, StagingSendFn(), local, remote, MonoGate());
  tcp_conns_[{sock->local_port, remote.ip, remote.port}] = s;
  return Status::Ok();
}

Status MonoNetStack::DoSend(SocketId s, ByteView data) {
  SKERN_COUNTER_INC("net.mono.socket.sends");
  MonoSocket* sock = Find(s);
  if (sock == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  // Generic send path reaching straight into TCP state.
  if (sock->proto != kProtoTcp || sock->tcp == nullptr) {
    return Status::Error(Errno::kENOTCONN);
  }
  return sock->tcp->Send(data);
}

Result<Bytes> MonoNetStack::DoRecv(SocketId s, uint64_t max) {
  SKERN_COUNTER_INC("net.mono.socket.recvs");
  MonoSocket* sock = Find(s);
  if (sock == nullptr) {
    return Errno::kEBADF;
  }
  if (sock->proto != kProtoTcp || sock->tcp == nullptr) {
    return Errno::kENOTCONN;
  }
  if (sock->tcp->Available() == 0) {
    if (sock->tcp->PeerClosed() || sock->tcp->state() == TcpState::kClosed) {
      return Bytes{};  // EOF
    }
    return Errno::kEAGAIN;
  }
  return sock->tcp->Recv(max);
}

Status MonoNetStack::DoSendTo(SocketId s, NetAddr remote, ByteView data) {
  MonoSocket* sock = Find(s);
  if (sock == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  if (sock->proto != kProtoUdp) {
    return Status::Error(Errno::kEPROTONOSUPPORT);
  }
  if (sock->local_port == 0) {
    sock->local_port = AutoPort();
    udp_ports_[sock->local_port] = s;
  }
  Packet pkt;
  pkt.proto = kProtoUdp;
  pkt.src_ip = ip_;
  pkt.src_port = sock->local_port;
  pkt.dst_ip = remote.ip;
  pkt.dst_port = remote.port;
  pkt.payload = data.ToBytes();
  netq::Stage(&network_, std::move(pkt));
  return Status::Ok();
}

Result<std::pair<NetAddr, Bytes>> MonoNetStack::DoRecvFrom(SocketId s) {
  MonoSocket* sock = Find(s);
  if (sock == nullptr) {
    return Errno::kEBADF;
  }
  if (sock->proto != kProtoUdp) {
    return Errno::kEPROTONOSUPPORT;
  }
  if (sock->udp_rx.empty()) {
    return Errno::kEAGAIN;
  }
  auto front = std::move(sock->udp_rx.front());
  sock->udp_rx.pop_front();
  return front;
}

Status MonoNetStack::DoClose(SocketId s) {
  MonoSocket* sock = Find(s);
  if (sock == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  // Close path, again protocol-aware in generic code.
  if (sock->proto == kProtoTcp) {
    if (sock->listening) {
      tcp_listeners_.erase(sock->local_port);
    }
    if (sock->tcp != nullptr) {
      sock->tcp->Close();
      // Connection entry stays in the demux table until fully closed; for
      // simulation simplicity we drop it now and let stray segments RST.
      tcp_conns_.erase({sock->local_port, sock->tcp->remote().ip, sock->tcp->remote().port});
    }
  } else {
    udp_ports_.erase(sock->local_port);
  }
  sockets_.erase(s);
  return Status::Ok();
}

Status MonoNetStack::DoSetOption(SocketId s, int option, int64_t value) {
  MonoSocket* sock = Find(s);
  if (sock == nullptr) {
    return Status::Error(Errno::kEBADF);
  }
  if (option != kSockOptAcceptBacklog) {
    return Status::Error(Errno::kENOSYS);
  }
  if (sock->proto != kProtoTcp || value <= 0) {
    return Status::Error(Errno::kEINVAL);
  }
  sock->backlog = static_cast<int>(value);
  return Status::Ok();
}

void MonoNetStack::OnPacket(const Packet& packet) {
  SKERN_COUNTER_INC("net.mono.dispatch.packets");
  SKERN_TRACE("net", "mono_dispatch", packet.proto, packet.dst_port);
  // The demux: one function that knows every protocol's internals.
  if (packet.proto == kProtoTcp) {
    auto conn_it = tcp_conns_.find({packet.dst_port, packet.src_ip, packet.src_port});
    if (conn_it != tcp_conns_.end()) {
      MonoSocket* sock = Find(conn_it->second);
      if (sock != nullptr && sock->tcp != nullptr) {
        sock->tcp->OnSegment(packet);
      }
      return;
    }
    if (packet.Has(kTcpSyn) && !packet.Has(kTcpAck)) {
      auto listener_it = tcp_listeners_.find(packet.dst_port);
      if (listener_it != tcp_listeners_.end()) {
        MonoSocket* listener = Find(listener_it->second);
        if (listener != nullptr) {
          if (static_cast<int>(listener->accept_queue.size()) >= listener->backlog) {
            // Same locked-in semantics as the modular stack: full backlog
            // silently drops the SYN (no RST); the client retransmits and
            // eventually gives up.
            SKERN_COUNTER_INC("net.tcp.accept_overflow");
            return;
          }
          SocketId child_id = AllocId();
          MonoSocket child;
          child.proto = kProtoTcp;
          child.local_port = packet.dst_port;
          NetAddr local{ip_, packet.dst_port};
          child.tcp = SeedTcpConnection::FromSyn(clock_, StagingSendFn(), local, packet, MonoGate());
          sockets_[child_id] = std::move(child);
          tcp_conns_[{packet.dst_port, packet.src_ip, packet.src_port}] = child_id;
          listener->accept_queue.push_back(child_id);
        }
        return;
      }
    }
    // No socket: refuse.
    if (!packet.Has(kTcpRst)) {
      Packet rst;
      rst.proto = kProtoTcp;
      rst.src_ip = ip_;
      rst.src_port = packet.dst_port;
      rst.dst_ip = packet.src_ip;
      rst.dst_port = packet.src_port;
      rst.flags = kTcpRst;
      rst.seq = packet.ack;
      netq::Stage(&network_, std::move(rst));
    }
    return;
  }
  if (packet.proto == kProtoUdp) {
    auto it = udp_ports_.find(packet.dst_port);
    if (it != udp_ports_.end()) {
      MonoSocket* sock = Find(it->second);
      if (sock != nullptr) {
        sock->udp_rx.emplace_back(NetAddr{packet.src_ip, packet.src_port},
                                  packet.payload.ToBytes());
      }
    }
    return;
  }
  // Unknown protocol: dropped on the floor (no registry to consult).
}

}  // namespace skern
