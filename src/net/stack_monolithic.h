// The monolithic socket layer: §4.1's "before" picture.
//
// One generic socket structure carries the union of every protocol's state —
// TCP connection state is embedded directly in the generic socket — and the
// generic code paths (demux, send, receive, close) branch on the protocol
// inline. Adding a protocol family means editing every one of those
// functions; that is precisely the retrofitting cost the paper describes.
//
// Concurrency: externally synchronized (one thread), matching the seed —
// except for the optional big kernel lock (EnableBigKernelLock), which
// serializes every operation and packet delivery under a single mutex. That
// is the scaling baseline the sharded stack is benchmarked against: correct
// under threads, and a perfect funnel.
#ifndef SKERN_SRC_NET_STACK_MONOLITHIC_H_
#define SKERN_SRC_NET_STACK_MONOLITHIC_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>

#include "src/base/sim_clock.h"
#include "src/net/network.h"
#include "src/net/socket_layer.h"
#include "src/net/tcp_seed.h"
#include "src/sync/mutex.h"

namespace skern {

class MonoNetStack : public SocketLayer {
 public:
  MonoNetStack(SimClock& clock, Network& network, uint32_t ip);

  // Bench baseline mode: wrap every socket call and every delivered packet
  // in one stack-wide mutex. Call once, before any traffic.
  void EnableBigKernelLock() { big_lock_enabled_ = true; }

  Result<SocketId> Socket(uint8_t proto) override;
  Status Bind(SocketId s, uint16_t port) override;
  Status Listen(SocketId s) override;
  Result<SocketId> Accept(SocketId s) override;
  Status Connect(SocketId s, NetAddr remote) override;
  Status Send(SocketId s, ByteView data) override;
  Result<Bytes> Recv(SocketId s, uint64_t max) override;
  Status SendTo(SocketId s, NetAddr remote, ByteView data) override;
  Result<std::pair<NetAddr, Bytes>> RecvFrom(SocketId s) override;
  Status Close(SocketId s) override;
  Status SetOption(SocketId s, int option, int64_t value) override;
  std::string Name() const override { return "net-monolithic"; }

  uint32_t ip() const { return ip_; }

  // Test hook: position the id allocator (e.g. just below the wrap point).
  void SetNextSocketIdForTesting(uint32_t raw) {
    next_id_.store(raw, std::memory_order_relaxed);
  }

 private:
  // The entangled generic socket: every protocol's fields in one struct.
  struct MonoSocket {
    uint8_t proto = kProtoTcp;
    uint16_t local_port = 0;
    bool listening = false;
    int backlog = 64;  // listener accept-queue cap (kSockOptAcceptBacklog)
    // --- TCP-specific state living inside the generic structure ---
    std::unique_ptr<SeedTcpConnection> tcp;
    std::deque<SocketId> accept_queue;
    // --- UDP-specific state, same structure ---
    std::deque<std::pair<NetAddr, Bytes>> udp_rx;
  };

  // Do* bodies hold the big lock (when enabled); the public wrappers flush
  // staged packets after releasing it, so the wire is never entered with the
  // lock held (inline delivery would recurse into it and lockdep panics on
  // same-class nesting).
  Result<SocketId> DoSocket(uint8_t proto);
  Status DoBind(SocketId s, uint16_t port);
  Status DoListen(SocketId s);
  Result<SocketId> DoAccept(SocketId s);
  Status DoConnect(SocketId s, NetAddr remote);
  Status DoSend(SocketId s, ByteView data);
  Result<Bytes> DoRecv(SocketId s, uint64_t max);
  Status DoSendTo(SocketId s, NetAddr remote, ByteView data);
  Result<std::pair<NetAddr, Bytes>> DoRecvFrom(SocketId s);
  Status DoClose(SocketId s);
  Status DoSetOption(SocketId s, int option, int64_t value);

  void OnPacket(const Packet& packet);
  MonoSocket* Find(SocketId s);
  SocketId AllocId();
  uint16_t AutoPort();
  SeedTcpConnection::SendFn StagingSendFn();
  SeedTcpConnection::TimerGate MonoGate();

  SimClock& clock_;
  Network& network_;
  uint32_t ip_;
  // Atomic and wrap-safe: ids stay positive int32s, 0 is skipped, and an id
  // still open after 2^31 allocations is probed past (seed version was a
  // plain `next_id_++` that eventually wrapped negative).
  std::atomic<uint32_t> next_id_{1};
  std::atomic<uint32_t> next_port_{0};
  bool big_lock_enabled_ = false;
  TrackedMutex big_mu_{"net.mono.big"};
  std::map<SocketId, MonoSocket> sockets_;
  // Generic demux tables that nevertheless understand TCP tuples directly.
  std::map<uint16_t, SocketId> tcp_listeners_;
  std::map<std::tuple<uint16_t, uint32_t, uint16_t>, SocketId> tcp_conns_;
  std::map<uint16_t, SocketId> udp_ports_;
};

}  // namespace skern

#endif  // SKERN_SRC_NET_STACK_MONOLITHIC_H_
