// The monolithic socket layer: §4.1's "before" picture.
//
// One generic socket structure carries the union of every protocol's state —
// TCP connection state is embedded directly in the generic socket — and the
// generic code paths (demux, send, receive, close) branch on the protocol
// inline. Adding a protocol family means editing every one of those
// functions; that is precisely the retrofitting cost the paper describes.
#ifndef SKERN_SRC_NET_STACK_MONOLITHIC_H_
#define SKERN_SRC_NET_STACK_MONOLITHIC_H_

#include <deque>
#include <map>
#include <memory>

#include "src/base/sim_clock.h"
#include "src/net/network.h"
#include "src/net/socket_layer.h"
#include "src/net/tcp.h"

namespace skern {

class MonoNetStack : public SocketLayer {
 public:
  MonoNetStack(SimClock& clock, Network& network, uint32_t ip);

  Result<SocketId> Socket(uint8_t proto) override;
  Status Bind(SocketId s, uint16_t port) override;
  Status Listen(SocketId s) override;
  Result<SocketId> Accept(SocketId s) override;
  Status Connect(SocketId s, NetAddr remote) override;
  Status Send(SocketId s, ByteView data) override;
  Result<Bytes> Recv(SocketId s, uint64_t max) override;
  Status SendTo(SocketId s, NetAddr remote, ByteView data) override;
  Result<std::pair<NetAddr, Bytes>> RecvFrom(SocketId s) override;
  Status Close(SocketId s) override;
  std::string Name() const override { return "net-monolithic"; }

  uint32_t ip() const { return ip_; }

 private:
  // The entangled generic socket: every protocol's fields in one struct.
  struct MonoSocket {
    uint8_t proto = kProtoTcp;
    uint16_t local_port = 0;
    bool listening = false;
    // --- TCP-specific state living inside the generic structure ---
    std::unique_ptr<TcpConnection> tcp;
    std::deque<SocketId> accept_queue;
    // --- UDP-specific state, same structure ---
    std::deque<std::pair<NetAddr, Bytes>> udp_rx;
  };

  void OnPacket(const Packet& packet);
  MonoSocket* Find(SocketId s);
  uint16_t AutoPort() { return next_port_++; }

  SimClock& clock_;
  Network& network_;
  uint32_t ip_;
  SocketId next_id_ = 1;
  uint16_t next_port_ = 40000;
  std::map<SocketId, MonoSocket> sockets_;
  // Generic demux tables that nevertheless understand TCP tuples directly.
  std::map<uint16_t, SocketId> tcp_listeners_;
  std::map<std::tuple<uint16_t, uint32_t, uint16_t>, SocketId> tcp_conns_;
  std::map<uint16_t, SocketId> udp_ports_;
};

}  // namespace skern

#endif  // SKERN_SRC_NET_STACK_MONOLITHIC_H_
