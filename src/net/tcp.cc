#include "src/net/tcp.h"

#include <algorithm>

#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace skern {

const char* TcpStateName(TcpState state) {
  switch (state) {
    case TcpState::kClosed:
      return "CLOSED";
    case TcpState::kListen:
      return "LISTEN";
    case TcpState::kSynSent:
      return "SYN_SENT";
    case TcpState::kSynRcvd:
      return "SYN_RCVD";
    case TcpState::kEstablished:
      return "ESTABLISHED";
    case TcpState::kFinWait1:
      return "FIN_WAIT1";
    case TcpState::kFinWait2:
      return "FIN_WAIT2";
    case TcpState::kCloseWait:
      return "CLOSE_WAIT";
    case TcpState::kLastAck:
      return "LAST_ACK";
    case TcpState::kTimeWait:
      return "TIME_WAIT";
  }
  return "?";
}

TcpConnection::TcpConnection(SimClock& clock, SendFn send, NetAddr local, NetAddr remote)
    : clock_(clock), send_(std::move(send)), local_(local), remote_(remote) {
  // Deterministic ISS derived from the 4-tuple keeps runs reproducible.
  iss_ = 1000 + local.port * 131u + remote.port * 17u;
  snd_una_ = iss_;
  snd_nxt_ = iss_;
}

std::unique_ptr<TcpConnection> TcpConnection::Connect(SimClock& clock, SendFn send,
                                                      NetAddr local, NetAddr remote) {
  auto conn =
      std::unique_ptr<TcpConnection>(new TcpConnection(clock, std::move(send), local, remote));
  conn->state_ = TcpState::kSynSent;
  conn->EmitSegment(kTcpSyn, conn->snd_nxt_, ByteView());
  conn->snd_nxt_ += 1;  // SYN occupies one sequence number
  conn->ArmTimer();
  return conn;
}

std::unique_ptr<TcpConnection> TcpConnection::FromSyn(SimClock& clock, SendFn send,
                                                      NetAddr local, const Packet& syn) {
  SKERN_CHECK(syn.Has(kTcpSyn));
  NetAddr remote{syn.src_ip, syn.src_port};
  auto conn =
      std::unique_ptr<TcpConnection>(new TcpConnection(clock, std::move(send), local, remote));
  conn->state_ = TcpState::kSynRcvd;
  conn->rcv_nxt_ = syn.seq + 1;
  conn->EmitSegment(kTcpSyn | kTcpAck, conn->snd_nxt_, ByteView());
  conn->snd_nxt_ += 1;
  conn->ArmTimer();
  return conn;
}

TcpConnection::~TcpConnection() { CancelTimer(); }

void TcpConnection::EmitSegment(uint8_t flags, uint32_t seq, ByteView payload) {
  Packet pkt;
  pkt.proto = kProtoTcp;
  pkt.src_ip = local_.ip;
  pkt.src_port = local_.port;
  pkt.dst_ip = remote_.ip;
  pkt.dst_port = remote_.port;
  pkt.seq = seq;
  pkt.ack = rcv_nxt_;
  pkt.flags = flags;
  pkt.payload = payload.ToBytes();
  ++stats_.segments_sent;
  stats_.bytes_sent += payload.size();
  SKERN_COUNTER_INC("net.tcp.segments_sent");
  send_(std::move(pkt));
}

Status TcpConnection::Send(ByteView data) {
  if (fin_pending_ || fin_sent_) {
    return Status::Error(Errno::kEPIPE);  // we already shut down our side
  }
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return Status::Error(Errno::kENOTCONN);
  }
  pending_.insert(pending_.end(), data.data(), data.data() + data.size());
  TrySend();
  return Status::Ok();
}

Bytes TcpConnection::Recv(size_t max) {
  size_t take = std::min(max, recv_buf_.size());
  Bytes out(recv_buf_.begin(), recv_buf_.begin() + take);
  recv_buf_.erase(recv_buf_.begin(), recv_buf_.begin() + take);
  return out;
}

void TcpConnection::Close() {
  switch (state_) {
    case TcpState::kEstablished:
      state_ = TcpState::kFinWait1;
      break;
    case TcpState::kCloseWait:
      state_ = TcpState::kLastAck;
      break;
    case TcpState::kSynSent:
    case TcpState::kSynRcvd:
    case TcpState::kListen:
      state_ = TcpState::kClosed;
      CancelTimer();
      return;
    default:
      return;  // already closing/closed
  }
  fin_pending_ = true;
  TrySend();
}

void TcpConnection::Abort() {
  if (state_ != TcpState::kClosed) {
    EmitSegment(kTcpRst, snd_nxt_, ByteView());
  }
  state_ = TcpState::kClosed;
  CancelTimer();
  pending_.clear();
  inflight_.clear();
}

void TcpConnection::TrySend() {
  while (!pending_.empty() && inflight_.size() < kWindow) {
    size_t n = std::min<size_t>({pending_.size(), kMss, kWindow - inflight_.size()});
    Bytes chunk(pending_.begin(), pending_.begin() + n);
    pending_.erase(pending_.begin(), pending_.begin() + n);
    EmitSegment(kTcpAck, snd_nxt_, ByteView(chunk));
    inflight_.insert(inflight_.end(), chunk.begin(), chunk.end());
    snd_nxt_ += n;
  }
  if (fin_pending_ && !fin_sent_ && pending_.empty()) {
    fin_seq_ = snd_nxt_;
    EmitSegment(kTcpFin | kTcpAck, snd_nxt_, ByteView());
    snd_nxt_ += 1;
    fin_sent_ = true;
  }
  if (snd_nxt_ != snd_una_) {
    ArmTimer();
  }
}

void TcpConnection::ArmTimer() {
  if (timer_id_.has_value()) {
    return;
  }
  timer_id_ = clock_.ScheduleAfter(rto_, [this] {
    timer_id_.reset();
    OnTimeout();
  });
}

void TcpConnection::CancelTimer() {
  if (timer_id_.has_value()) {
    clock_.Cancel(*timer_id_);
    timer_id_.reset();
  }
}

void TcpConnection::OnTimeout() {
  if (state_ == TcpState::kClosed) {
    return;
  }
  if (state_ == TcpState::kTimeWait) {
    state_ = TcpState::kClosed;
    return;
  }
  if (snd_una_ == snd_nxt_) {
    return;  // everything acked in the meantime
  }
  if (++retries_ > kMaxRetries) {
    Abort();
    return;
  }
  ++stats_.retransmits;
  SKERN_COUNTER_INC("net.tcp.retransmits");
  SKERN_TRACE("net", "tcp_retransmit", snd_una_, rto_);
  rto_ = std::min<SimTime>(rto_ * 2, 10 * kSecond);
  // Retransmit from snd_una: control segments first, then the oldest data.
  if (state_ == TcpState::kSynSent) {
    EmitSegment(kTcpSyn, iss_, ByteView());
  } else if (state_ == TcpState::kSynRcvd) {
    EmitSegment(kTcpSyn | kTcpAck, iss_, ByteView());
  } else if (!inflight_.empty()) {
    size_t n = std::min<size_t>(inflight_.size(), kMss);
    Bytes chunk(inflight_.begin(), inflight_.begin() + n);
    EmitSegment(kTcpAck, snd_una_, ByteView(chunk));
  } else if (fin_sent_ && snd_una_ <= fin_seq_) {
    EmitSegment(kTcpFin | kTcpAck, fin_seq_, ByteView());
  }
  ArmTimer();
}

void TcpConnection::ProcessAck(uint32_t ack) {
  // Sequence arithmetic is simplified (no wraparound; simulation-scale).
  if (ack <= snd_una_ || ack > snd_nxt_) {
    return;
  }
  uint32_t newly_acked = ack - snd_una_;
  // The FIN consumes a sequence number but is not in the inflight buffer.
  uint32_t data_acked = std::min<uint32_t>(newly_acked, inflight_.size());
  inflight_.erase(inflight_.begin(), inflight_.begin() + data_acked);
  snd_una_ = ack;
  retries_ = 0;
  rto_ = kInitialRto;
  CancelTimer();
  TrySend();
  if (snd_una_ != snd_nxt_) {
    ArmTimer();
  }
}

void TcpConnection::HandleEstablishedSegment(const Packet& segment) {
  if (segment.Has(kTcpAck)) {
    ProcessAck(segment.ack);
  }
  if (segment.Has(kTcpSyn)) {
    // A retransmitted SYN|ACK means our handshake ACK was lost: re-ack so the
    // peer can leave SYN_RCVD.
    EmitSegment(kTcpAck, snd_nxt_, ByteView());
    return;
  }
  bool advanced = false;
  if (!segment.payload.empty()) {
    if (segment.seq == rcv_nxt_) {
      recv_buf_.insert(recv_buf_.end(), segment.payload.begin(), segment.payload.end());
      rcv_nxt_ += segment.payload.size();
      stats_.bytes_received += segment.payload.size();
      advanced = true;
    } else {
      // Out of order (or duplicate): drop; the duplicate ACK below tells the
      // sender where we are.
      ++stats_.out_of_order_drops;
    }
  }
  if (segment.Has(kTcpFin) && segment.seq + segment.payload.size() == rcv_nxt_) {
    rcv_nxt_ += 1;
    peer_fin_seen_ = true;
    advanced = true;
    if (state_ == TcpState::kEstablished) {
      state_ = TcpState::kCloseWait;
    } else if (state_ == TcpState::kFinWait1) {
      // Simultaneous close; treat as FIN after our FIN was acked handled below.
      state_ = TcpState::kCloseWait;
    } else if (state_ == TcpState::kFinWait2) {
      EnterTimeWait();
    }
  }
  if (advanced || !segment.payload.empty() || segment.Has(kTcpFin)) {
    EmitSegment(kTcpAck, snd_nxt_, ByteView());
  }
}

void TcpConnection::EnterTimeWait() {
  state_ = TcpState::kTimeWait;
  EmitSegment(kTcpAck, snd_nxt_, ByteView());
  CancelTimer();
  timer_id_ = clock_.ScheduleAfter(2 * kInitialRto, [this] {
    timer_id_.reset();
    state_ = TcpState::kClosed;
  });
}

void TcpConnection::OnSegment(const Packet& segment) {
  ++stats_.segments_received;
  if (segment.Has(kTcpRst)) {
    state_ = TcpState::kClosed;
    CancelTimer();
    return;
  }
  switch (state_) {
    case TcpState::kClosed:
    case TcpState::kListen:
      // Listening demux is the stack's job; stray segments get RST.
      if (!segment.Has(kTcpRst)) {
        EmitSegment(kTcpRst, segment.ack, ByteView());
      }
      return;
    case TcpState::kSynSent:
      if (segment.Has(kTcpSyn) && segment.Has(kTcpAck) && segment.ack == snd_nxt_) {
        rcv_nxt_ = segment.seq + 1;
        snd_una_ = segment.ack;
        state_ = TcpState::kEstablished;
        retries_ = 0;
        rto_ = kInitialRto;
        CancelTimer();
        EmitSegment(kTcpAck, snd_nxt_, ByteView());
        TrySend();
      }
      return;
    case TcpState::kSynRcvd:
      if (segment.Has(kTcpAck) && segment.ack == snd_nxt_) {
        snd_una_ = segment.ack;
        state_ = TcpState::kEstablished;
        retries_ = 0;
        rto_ = kInitialRto;
        CancelTimer();
        // The handshake ACK may carry data.
        if (!segment.payload.empty() || segment.Has(kTcpFin)) {
          HandleEstablishedSegment(segment);
        }
      } else if (segment.Has(kTcpSyn)) {
        // Duplicate SYN: re-answer.
        EmitSegment(kTcpSyn | kTcpAck, iss_, ByteView());
      }
      return;
    case TcpState::kEstablished:
    case TcpState::kCloseWait:
      HandleEstablishedSegment(segment);
      return;
    case TcpState::kFinWait1:
      HandleEstablishedSegment(segment);
      if (state_ == TcpState::kCloseWait) {
        // Peer's FIN arrived; if ours is acked too, go through TIME_WAIT.
        if (snd_una_ == snd_nxt_) {
          EnterTimeWait();
        } else {
          state_ = TcpState::kLastAck;
        }
        return;
      }
      if (fin_sent_ && snd_una_ > fin_seq_) {
        state_ = TcpState::kFinWait2;
      }
      return;
    case TcpState::kFinWait2:
      HandleEstablishedSegment(segment);
      return;
    case TcpState::kLastAck:
      if (segment.Has(kTcpAck)) {
        ProcessAck(segment.ack);
        if (snd_una_ == snd_nxt_) {
          state_ = TcpState::kClosed;
          CancelTimer();
        }
      }
      return;
    case TcpState::kTimeWait:
      if (segment.Has(kTcpFin)) {
        EmitSegment(kTcpAck, snd_nxt_, ByteView());  // re-ack a retransmitted FIN
      }
      return;
  }
}

}  // namespace skern
