// Minimal TCP engine: handshake, ordered byte stream with cumulative ACKs,
// timeout retransmission with exponential backoff, FIN teardown, RST.
//
// This is the protocol logic both socket layers share; what §4.1 is about is
// where this state LIVES — embedded in the generic socket (monolithic) or
// behind a protocol module (modular). See stack_monolithic.h / stack_modular.h.
//
// Data-plane buffers are BufChains: Send queues segment views, segmentation
// slices them (shared, not copied), the retransmission queue references the
// same storage, and Recv hands storage back out by move when it is the last
// owner. With the zero-copy switch off every hop deep-copies instead — the
// seed stack's behavior, kept as the bench baseline.
//
// Concurrency: a TcpConnection is externally synchronized — the owning
// socket layer serializes calls (per-socket lock in the sharded stack). The
// retransmission timer runs on whatever thread advances the SimClock, so
// the factories accept a TimerGate: the owner wraps timer bodies in its own
// locking + liveness check (see SockCtl). With no gate, timer bodies run
// bare — correct for single-threaded engine tests.
//
// Simplifications (documented in DESIGN.md): fixed MSS and window, no SACK,
// out-of-order segments are dropped (cumulative-ACK retransmission recovers
// them), no delayed ACKs, no congestion control beyond RTO backoff.
#ifndef SKERN_SRC_NET_TCP_H_
#define SKERN_SRC_NET_TCP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "src/base/sim_clock.h"
#include "src/base/status.h"
#include "src/net/buf_chain.h"
#include "src/net/packet.h"

namespace skern {

enum class TcpState : uint8_t {
  kClosed = 0,
  kListen,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kTimeWait,
};

const char* TcpStateName(TcpState state);

struct TcpStats {
  uint64_t segments_sent = 0;
  uint64_t segments_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t retransmits = 0;
  uint64_t out_of_order_drops = 0;
};

class TcpConnection {
 public:
  using SendFn = std::function<void(Packet&&)>;
  // Wraps every timer body: the owner locks/validates, runs the body, then
  // releases and flushes staged packets. nullptr runs bodies bare.
  using TimerGate = std::function<void(const std::function<void()>&)>;

  static constexpr uint32_t kMss = 1000;
  static constexpr uint32_t kWindow = 64 * 1024;
  // Large-segment offload: fresh sends emit one scatter-gather segment of
  // up to a full window. The simulated wire has no MTU, and a chained
  // payload makes segment size a policy choice rather than a buffer-layout
  // constraint — the seed's flat-buffer engine is structurally tied to
  // MSS-sized copies, this engine is not. Retransmissions still slice at
  // kMss so loss recovery stays fine-grained (see OnTimeout).
  static constexpr uint32_t kMaxSegment = kWindow;
  static constexpr SimTime kInitialRto = 200 * kMillisecond;
  static constexpr int kMaxRetries = 8;

  // Active open: immediately sends SYN. (Heap-allocated: the retransmission
  // timer closure pins the object's address.)
  static std::unique_ptr<TcpConnection> Connect(SimClock& clock, SendFn send, NetAddr local,
                                                NetAddr remote, TimerGate gate = nullptr);

  // Passive open from a received SYN: immediately sends SYN|ACK.
  static std::unique_ptr<TcpConnection> FromSyn(SimClock& clock, SendFn send, NetAddr local,
                                                const Packet& syn, TimerGate gate = nullptr);

  TcpConnection(TcpConnection&&) = delete;
  TcpConnection& operator=(TcpConnection&&) = delete;
  ~TcpConnection();

  // Queues application data; transmission is driven by ACK clocking and the
  // retransmission timer.
  Status Send(ByteView data);

  // Zero-copy send: the chain's segments enter the send queue shared.
  Status SendChain(BufChain chain);

  // Drains up to `max` bytes of in-order received data.
  Bytes Recv(size_t max);

  // Zero-copy receive: drains up to `max` bytes as shared segments.
  BufChain RecvChain(size_t max);

  size_t Available() const { return recv_chain_.size(); }

  // True once the peer's FIN has been consumed and the buffer is drained.
  bool PeerClosed() const { return peer_fin_seen_ && recv_chain_.empty(); }

  // Initiates teardown (FIN after pending data drains).
  void Close();

  // Hard reset (sends RST, drops state).
  void Abort();

  void OnSegment(const Packet& segment);

  TcpState state() const { return state_; }
  const TcpStats& stats() const { return stats_; }
  NetAddr local() const { return local_; }
  NetAddr remote() const { return remote_; }

 private:
  TcpConnection(SimClock& clock, SendFn send, NetAddr local, NetAddr remote, TimerGate gate);

  void EmitSegment(uint8_t flags, uint32_t seq, BufChain payload = BufChain());
  void TrySend();
  void ArmTimer();
  void CancelTimer();
  void OnTimeout();
  void EnterTimeWait();
  void HandleEstablishedSegment(const Packet& segment);
  void ProcessAck(uint32_t ack);
  // Wraps a timer body in the owner's gate (if any) for clock scheduling.
  std::function<void()> GatedTimer(std::function<void()> body);

  SimClock& clock_;
  SendFn send_;
  NetAddr local_;
  NetAddr remote_;
  TimerGate gate_;
  TcpState state_ = TcpState::kClosed;

  uint32_t iss_ = 0;      // initial send sequence
  uint32_t snd_una_ = 0;  // oldest unacknowledged
  uint32_t snd_nxt_ = 0;  // next sequence to send
  uint32_t rcv_nxt_ = 0;  // next expected from peer

  BufChain pending_;     // app data not yet transmitted
  BufChain inflight_;    // transmitted, unacknowledged [snd_una, snd_nxt) — shares
                         // pending_'s segments; retransmission re-slices them
  BufChain recv_chain_;  // in-order data for the app

  bool fin_pending_ = false;  // app closed; FIN not yet sent
  bool fin_sent_ = false;
  uint32_t fin_seq_ = 0;
  bool peer_fin_seen_ = false;

  std::optional<uint64_t> timer_id_;
  SimTime rto_ = kInitialRto;
  int retries_ = 0;

  TcpStats stats_;
};

}  // namespace skern

#endif  // SKERN_SRC_NET_TCP_H_
