#include "src/net/tcp_seed.h"

#include <algorithm>

#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace skern {

SeedTcpConnection::SeedTcpConnection(SimClock& clock, SendFn send, NetAddr local, NetAddr remote,
                                     TimerGate gate)
    : clock_(clock),
      send_(std::move(send)),
      local_(local),
      remote_(remote),
      gate_(std::move(gate)) {
  // Same ISS derivation as TcpConnection: the two engines must be
  // sequence-number identical for the coherence suite.
  iss_ = 1000 + local.port * 131u + remote.port * 17u;
  snd_una_ = iss_;
  snd_nxt_ = iss_;
}

std::unique_ptr<SeedTcpConnection> SeedTcpConnection::Connect(SimClock& clock, SendFn send,
                                                              NetAddr local, NetAddr remote,
                                                              TimerGate gate) {
  auto conn = std::unique_ptr<SeedTcpConnection>(
      new SeedTcpConnection(clock, std::move(send), local, remote, std::move(gate)));
  conn->state_ = TcpState::kSynSent;
  conn->EmitSegment(kTcpSyn, conn->snd_nxt_);
  conn->snd_nxt_ += 1;  // SYN occupies one sequence number
  conn->ArmTimer();
  return conn;
}

std::unique_ptr<SeedTcpConnection> SeedTcpConnection::FromSyn(SimClock& clock, SendFn send,
                                                              NetAddr local, const Packet& syn,
                                                              TimerGate gate) {
  SKERN_CHECK(syn.Has(kTcpSyn));
  NetAddr remote{syn.src_ip, syn.src_port};
  auto conn = std::unique_ptr<SeedTcpConnection>(
      new SeedTcpConnection(clock, std::move(send), local, remote, std::move(gate)));
  conn->state_ = TcpState::kSynRcvd;
  conn->rcv_nxt_ = syn.seq + 1;
  conn->EmitSegment(kTcpSyn | kTcpAck, conn->snd_nxt_);
  conn->snd_nxt_ += 1;
  conn->ArmTimer();
  return conn;
}

SeedTcpConnection::~SeedTcpConnection() { CancelTimer(); }

std::function<void()> SeedTcpConnection::GatedTimer(std::function<void()> body) {
  if (!gate_) {
    return body;
  }
  return [gate = gate_, body = std::move(body)] { gate(body); };
}

void SeedTcpConnection::EmitSegment(uint8_t flags, uint32_t seq, ByteView payload) {
  Packet pkt;
  pkt.proto = kProtoTcp;
  pkt.src_ip = local_.ip;
  pkt.src_port = local_.port;
  pkt.dst_ip = remote_.ip;
  pkt.dst_port = remote_.port;
  pkt.seq = seq;
  pkt.ack = rcv_nxt_;
  pkt.flags = flags;
  ++stats_.segments_sent;
  stats_.bytes_sent += payload.size();
  // Seed behavior: the packet owns a fresh copy of the payload.
  pkt.payload.AppendCopy(payload);
  SKERN_COUNTER_INC("net.tcp.segments_sent");
  send_(std::move(pkt));
}

Status SeedTcpConnection::Send(ByteView data) {
  if (fin_pending_ || fin_sent_) {
    return Status::Error(Errno::kEPIPE);  // we already shut down our side
  }
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return Status::Error(Errno::kENOTCONN);
  }
  pending_.insert(pending_.end(), data.data(), data.data() + data.size());
  TrySend();
  return Status::Ok();
}

Bytes SeedTcpConnection::Recv(size_t max) {
  size_t n = std::min(max, recv_buf_.size());
  Bytes out(recv_buf_.begin(), recv_buf_.begin() + n);
  recv_buf_.erase(recv_buf_.begin(), recv_buf_.begin() + n);
  return out;
}

void SeedTcpConnection::Close() {
  switch (state_) {
    case TcpState::kEstablished:
      state_ = TcpState::kFinWait1;
      break;
    case TcpState::kCloseWait:
      state_ = TcpState::kLastAck;
      break;
    case TcpState::kSynSent:
    case TcpState::kSynRcvd:
    case TcpState::kListen:
      state_ = TcpState::kClosed;
      CancelTimer();
      return;
    default:
      return;  // already closing/closed
  }
  fin_pending_ = true;
  TrySend();
}

void SeedTcpConnection::Abort() {
  if (state_ != TcpState::kClosed) {
    EmitSegment(kTcpRst, snd_nxt_);
  }
  state_ = TcpState::kClosed;
  CancelTimer();
  pending_.clear();
  inflight_.clear();
}

void SeedTcpConnection::TrySend() {
  while (!pending_.empty() && inflight_.size() < kWindow) {
    size_t n = std::min<size_t>({pending_.size(), kMss, kWindow - inflight_.size()});
    // Seed triple-buffer: copy the chunk out of pending, copy it again into
    // the retransmission queue, and EmitSegment copies it a third time into
    // the packet.
    Bytes chunk(pending_.begin(), pending_.begin() + n);
    pending_.erase(pending_.begin(), pending_.begin() + n);
    inflight_.insert(inflight_.end(), chunk.begin(), chunk.end());
    EmitSegment(kTcpAck, snd_nxt_, ByteView(chunk));
    snd_nxt_ += n;
  }
  if (fin_pending_ && !fin_sent_ && pending_.empty()) {
    fin_seq_ = snd_nxt_;
    EmitSegment(kTcpFin | kTcpAck, snd_nxt_);
    snd_nxt_ += 1;
    fin_sent_ = true;
  }
  if (snd_nxt_ != snd_una_) {
    ArmTimer();
  }
}

void SeedTcpConnection::ArmTimer() {
  if (timer_id_.has_value()) {
    return;
  }
  timer_id_ = clock_.ScheduleAfter(rto_, GatedTimer([this] {
    timer_id_.reset();
    OnTimeout();
  }));
}

void SeedTcpConnection::CancelTimer() {
  if (timer_id_.has_value()) {
    clock_.Cancel(*timer_id_);
    timer_id_.reset();
  }
}

void SeedTcpConnection::OnTimeout() {
  if (state_ == TcpState::kClosed) {
    return;
  }
  if (state_ == TcpState::kTimeWait) {
    state_ = TcpState::kClosed;
    return;
  }
  if (snd_una_ == snd_nxt_) {
    return;  // stale timer: lazy disarm, same as TcpConnection
  }
  if (++retries_ > kMaxRetries) {
    Abort();
    return;
  }
  ++stats_.retransmits;
  SKERN_COUNTER_INC("net.tcp.retransmits");
  SKERN_TRACE("net", "tcp_retransmit", snd_una_, rto_);
  rto_ = std::min<SimTime>(rto_ * 2, 10 * kSecond);
  if (state_ == TcpState::kSynSent) {
    EmitSegment(kTcpSyn, iss_);
  } else if (state_ == TcpState::kSynRcvd) {
    EmitSegment(kTcpSyn | kTcpAck, iss_);
  } else if (!inflight_.empty()) {
    size_t n = std::min<size_t>(inflight_.size(), kMss);
    // Seed retransmission: copy the unacked prefix out of the queue again.
    Bytes seg(inflight_.begin(), inflight_.begin() + n);
    EmitSegment(kTcpAck, snd_una_, ByteView(seg));
  } else if (fin_sent_ && snd_una_ <= fin_seq_) {
    EmitSegment(kTcpFin | kTcpAck, fin_seq_);
  }
  ArmTimer();
}

void SeedTcpConnection::ProcessAck(uint32_t ack) {
  if (ack <= snd_una_ || ack > snd_nxt_) {
    return;
  }
  uint32_t newly_acked = ack - snd_una_;
  uint32_t data_acked = std::min<uint32_t>(newly_acked, inflight_.size());
  inflight_.erase(inflight_.begin(), inflight_.begin() + data_acked);
  snd_una_ = ack;
  retries_ = 0;
  rto_ = kInitialRto;
  TrySend();
  if (snd_una_ != snd_nxt_) {
    ArmTimer();
  }
}

void SeedTcpConnection::HandleEstablishedSegment(const Packet& segment) {
  if (segment.Has(kTcpAck)) {
    ProcessAck(segment.ack);
  }
  if (segment.Has(kTcpSyn)) {
    EmitSegment(kTcpAck, snd_nxt_);
    return;
  }
  bool advanced = false;
  if (!segment.payload.empty()) {
    if (segment.seq == rcv_nxt_) {
      // Seed receive: flatten the wire payload and copy it into the deque.
      Bytes flat = segment.payload.ToBytes();
      recv_buf_.insert(recv_buf_.end(), flat.begin(), flat.end());
      rcv_nxt_ += segment.payload.size();
      stats_.bytes_received += segment.payload.size();
      advanced = true;
    } else {
      ++stats_.out_of_order_drops;
    }
  }
  if (segment.Has(kTcpFin) && segment.seq + segment.payload.size() == rcv_nxt_) {
    rcv_nxt_ += 1;
    peer_fin_seen_ = true;
    advanced = true;
    if (state_ == TcpState::kEstablished) {
      state_ = TcpState::kCloseWait;
    } else if (state_ == TcpState::kFinWait1) {
      state_ = TcpState::kCloseWait;
    } else if (state_ == TcpState::kFinWait2) {
      EnterTimeWait();
    }
  }
  if (advanced || !segment.payload.empty() || segment.Has(kTcpFin)) {
    EmitSegment(kTcpAck, snd_nxt_);
  }
}

void SeedTcpConnection::EnterTimeWait() {
  state_ = TcpState::kTimeWait;
  EmitSegment(kTcpAck, snd_nxt_);
  CancelTimer();
  timer_id_ = clock_.ScheduleAfter(2 * kInitialRto, GatedTimer([this] {
    timer_id_.reset();
    state_ = TcpState::kClosed;
  }));
}

void SeedTcpConnection::OnSegment(const Packet& segment) {
  ++stats_.segments_received;
  if (segment.Has(kTcpRst)) {
    state_ = TcpState::kClosed;
    CancelTimer();
    return;
  }
  switch (state_) {
    case TcpState::kClosed:
    case TcpState::kListen:
      if (!segment.Has(kTcpRst)) {
        EmitSegment(kTcpRst, segment.ack);
      }
      return;
    case TcpState::kSynSent:
      if (segment.Has(kTcpSyn) && segment.Has(kTcpAck) && segment.ack == snd_nxt_) {
        rcv_nxt_ = segment.seq + 1;
        snd_una_ = segment.ack;
        state_ = TcpState::kEstablished;
        retries_ = 0;
        rto_ = kInitialRto;
        EmitSegment(kTcpAck, snd_nxt_);
        TrySend();
      }
      return;
    case TcpState::kSynRcvd:
      if (segment.Has(kTcpAck) && segment.ack == snd_nxt_) {
        snd_una_ = segment.ack;
        state_ = TcpState::kEstablished;
        retries_ = 0;
        rto_ = kInitialRto;
        if (!segment.payload.empty() || segment.Has(kTcpFin)) {
          HandleEstablishedSegment(segment);
        }
      } else if (segment.Has(kTcpSyn)) {
        EmitSegment(kTcpSyn | kTcpAck, iss_);
      }
      return;
    case TcpState::kEstablished:
    case TcpState::kCloseWait:
      HandleEstablishedSegment(segment);
      return;
    case TcpState::kFinWait1:
      HandleEstablishedSegment(segment);
      if (state_ == TcpState::kCloseWait) {
        if (snd_una_ == snd_nxt_) {
          EnterTimeWait();
        } else {
          state_ = TcpState::kLastAck;
        }
        return;
      }
      if (fin_sent_ && snd_una_ > fin_seq_) {
        state_ = TcpState::kFinWait2;
      }
      return;
    case TcpState::kFinWait2:
      HandleEstablishedSegment(segment);
      return;
    case TcpState::kLastAck:
      if (segment.Has(kTcpAck)) {
        ProcessAck(segment.ack);
        if (snd_una_ == snd_nxt_) {
          state_ = TcpState::kClosed;
          CancelTimer();
        }
      }
      return;
    case TcpState::kTimeWait:
      if (segment.Has(kTcpFin)) {
        EmitSegment(kTcpAck, snd_nxt_);  // re-ack a retransmitted FIN
      }
      return;
  }
}

}  // namespace skern
