// The seed TCP engine, preserved as the scaling baseline.
//
// This is the data plane the repo started with: every buffer is a
// std::deque<uint8_t>, segmentation copies bytes out of the pending queue,
// the retransmission queue holds its own copy of every unacked byte, each
// emitted packet carries yet another copy, and the receiver copies payload
// bytes into its deque before Recv copies them out again. The refactored
// engine (tcp.h) replaced all of that with refcounted BufChain views;
// MonoNetStack keeps using this one so "monolithic stack under the big
// kernel lock" means exactly what the paper's incremental story needs: the
// seed's per-byte costs, made thread-safe the minimal way.
//
// Control flow (state machine, segmentation sizes, ACK handling, lazy timer
// disarm, RTO backoff) is kept line-for-line equivalent to TcpConnection so
// the two engines emit byte- and time-identical wire traces — the
// differential coherence suite (net_coherence_test) holds them to that.
#ifndef SKERN_SRC_NET_TCP_SEED_H_
#define SKERN_SRC_NET_TCP_SEED_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "src/base/sim_clock.h"
#include "src/base/status.h"
#include "src/net/packet.h"
#include "src/net/tcp.h"

namespace skern {

class SeedTcpConnection {
 public:
  using SendFn = TcpConnection::SendFn;
  using TimerGate = TcpConnection::TimerGate;

  static constexpr uint32_t kMss = TcpConnection::kMss;
  static constexpr uint32_t kWindow = TcpConnection::kWindow;
  static constexpr SimTime kInitialRto = TcpConnection::kInitialRto;
  static constexpr int kMaxRetries = TcpConnection::kMaxRetries;

  static std::unique_ptr<SeedTcpConnection> Connect(SimClock& clock, SendFn send, NetAddr local,
                                                    NetAddr remote, TimerGate gate = nullptr);
  static std::unique_ptr<SeedTcpConnection> FromSyn(SimClock& clock, SendFn send, NetAddr local,
                                                    const Packet& syn, TimerGate gate = nullptr);

  SeedTcpConnection(SeedTcpConnection&&) = delete;
  SeedTcpConnection& operator=(SeedTcpConnection&&) = delete;
  ~SeedTcpConnection();

  Status Send(ByteView data);
  Bytes Recv(size_t max);
  size_t Available() const { return recv_buf_.size(); }
  bool PeerClosed() const { return peer_fin_seen_ && recv_buf_.empty(); }
  void Close();
  void Abort();
  void OnSegment(const Packet& segment);

  TcpState state() const { return state_; }
  const TcpStats& stats() const { return stats_; }
  NetAddr local() const { return local_; }
  NetAddr remote() const { return remote_; }

 private:
  SeedTcpConnection(SimClock& clock, SendFn send, NetAddr local, NetAddr remote, TimerGate gate);

  void EmitSegment(uint8_t flags, uint32_t seq, ByteView payload = ByteView());
  void TrySend();
  void ArmTimer();
  void CancelTimer();
  void OnTimeout();
  void EnterTimeWait();
  void HandleEstablishedSegment(const Packet& segment);
  void ProcessAck(uint32_t ack);
  std::function<void()> GatedTimer(std::function<void()> body);

  SimClock& clock_;
  SendFn send_;
  NetAddr local_;
  NetAddr remote_;
  TimerGate gate_;
  TcpState state_ = TcpState::kClosed;

  uint32_t iss_ = 0;
  uint32_t snd_una_ = 0;
  uint32_t snd_nxt_ = 0;
  uint32_t rcv_nxt_ = 0;

  std::deque<uint8_t> pending_;   // app data not yet transmitted
  std::deque<uint8_t> inflight_;  // transmitted, unacknowledged — a full copy
  std::deque<uint8_t> recv_buf_;  // in-order data for the app

  bool fin_pending_ = false;
  bool fin_sent_ = false;
  uint32_t fin_seq_ = 0;
  bool peer_fin_seen_ = false;

  std::optional<uint64_t> timer_id_;
  SimTime rto_ = kInitialRto;
  int retries_ = 0;

  TcpStats stats_;
};

}  // namespace skern

#endif  // SKERN_SRC_NET_TCP_SEED_H_
