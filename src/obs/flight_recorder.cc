#include "src/obs/flight_recorder.h"

#include <cstdio>
#include <string>

namespace skern {
namespace obs {

// FlightRecorderEnabled / SetFlightRecorderEnabled / FlightSnapshot /
// FlightSnapshotForPanic / ResetFlightForTesting live in trace.cc with the
// ring registry; only the dump formatter lives here.

void DumpFlightRecorder(size_t max_events) {
  std::vector<TraceRecord> records = FlightSnapshotForPanic();
  if (records.size() > max_events) {
    records.erase(records.begin(),
                  records.begin() + static_cast<ptrdiff_t>(records.size() - max_events));
  }
  std::fprintf(stderr, "=== skern flight recorder: last %zu event(s) ===\n", records.size());
  // One fprintf per line rather than one giant string: if the allocator is
  // the thing that is broken, partial output still reaches stderr.
  for (const TraceRecord& record : records) {
    std::string line = RenderTraceText({record});
    std::fputs(line.c_str(), stderr);
  }
  std::fprintf(stderr, "=== end flight recorder ===\n");
}

}  // namespace obs
}  // namespace skern
