// Flight recorder: always-on last-breath event history.
//
// Every SKERN_TRACE / SKERN_SPAN record is mirrored into a small per-thread
// overwrite-oldest ring (512 records/thread) that runs independently of
// TraceSession start/stop — it is recording before main() and keeps
// recording until the process dies. When a panic reaches the default
// handler, the merged tail of those rings is dumped to stderr, so every CI
// abort ships the causal event history that led to it, the way a kernel
// oops prints the ftrace buffer with ftrace_dump_on_oops.
//
// The rings are built from relaxed atomic words: a panicking thread can
// snapshot them while every other thread is still writing, data-race-free.
// A record caught mid-overwrite may mix fields from two events; the dump is
// diagnostics, not a ledger, and tolerates that.
//
// Cost: one extra SPSC ring push per trace record (the sink check is folded
// into the tracepoint's single gate load). SetFlightRecorderEnabled(false)
// turns the mirror off for overhead experiments; SKERN_OBS_COMPILED_OUT
// removes it entirely.
#ifndef SKERN_SRC_OBS_FLIGHT_RECORDER_H_
#define SKERN_SRC_OBS_FLIGHT_RECORDER_H_

#include <cstddef>
#include <vector>

#include "src/obs/trace.h"

namespace skern {
namespace obs {

// The flight sink defaults on; disabling stops the mirror but keeps
// already-buffered history snapshottable.
bool FlightRecorderEnabled();
void SetFlightRecorderEnabled(bool enabled);

// Merged snapshot of every thread's flight ring, ordered by (ts, tid).
std::vector<TraceRecord> FlightSnapshot();

// As FlightSnapshot, but try-locks the ring registry: if another thread
// holds it (mid-registration) while this thread is dying, returns empty
// rather than deadlocking the abort.
std::vector<TraceRecord> FlightSnapshotForPanic();

// Dumps the last `max_events` flight records to stderr in RenderTraceText
// format, bracketed by "=== skern flight recorder ===" markers. Called by
// the default panic handler; safe to call manually.
void DumpFlightRecorder(size_t max_events = 128);

// Forgets buffered flight history (test isolation); the sink stays in its
// current enabled/disabled state.
void ResetFlightForTesting();

}  // namespace obs
}  // namespace skern

#endif  // SKERN_SRC_OBS_FLIGHT_RECORDER_H_
