#include "src/obs/metrics.h"

#include <chrono>
#include <sstream>

#if defined(__x86_64__)
#include <cpuid.h>
#include <x86intrin.h>
#endif

#include "src/obs/span.h"

namespace skern {
namespace obs {
namespace {

std::atomic<bool> g_latency_timing{true};

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

#if defined(__x86_64__)
// Timestamps are read twice per span bracket and once per latency probe, so
// the clock itself is hot-path code. With an invariant TSC, one rdtsc plus a
// fixed-point scale replaces the ~30 ns vDSO clock_gettime with a single-digit
// nanosecond read, anchored once to the CLOCK_MONOTONIC timeline. The scale's
// calibration error (well under 0.1% over the 2 ms window) is invisible to
// log2-bucketed histograms and cancels out of span durations.
struct TscClock {
  uint64_t anchor_tsc = 0;
  uint64_t anchor_ns = 0;
  uint64_t ns_per_tick_q32 = 0;  // ns per TSC tick, 32.32 fixed point
  bool usable = false;
};

TscClock CalibrateTsc() {
  TscClock clock;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(0x80000007, &eax, &ebx, &ecx, &edx) == 0 || (edx & (1u << 8)) == 0) {
    return clock;  // no invariant TSC: stay on the vDSO clock
  }
  const uint64_t ns0 = SteadyNowNs();
  const uint64_t tsc0 = __rdtsc();
  uint64_t ns1 = ns0;
  do {
    ns1 = SteadyNowNs();
  } while (ns1 - ns0 < 2'000'000);
  const uint64_t tsc1 = __rdtsc();
  if (tsc1 <= tsc0) {
    return clock;
  }
  const double ns_per_tick = static_cast<double>(ns1 - ns0) / static_cast<double>(tsc1 - tsc0);
  clock.ns_per_tick_q32 = static_cast<uint64_t>(ns_per_tick * 4294967296.0);
  clock.anchor_tsc = tsc1;
  clock.anchor_ns = ns1;
  clock.usable = clock.ns_per_tick_q32 > 0;
  return clock;
}

const TscClock& Tsc() {
  static const TscClock clock = CalibrateTsc();  // one-time ~2 ms, thread-safe
  return clock;
}
#endif  // __x86_64__

// Lower bound of bucket b (inclusive). Bucket 0 is the value 0.
uint64_t BucketLow(size_t b) { return b == 0 ? 0 : (1ull << (b - 1)); }

// Upper bound of bucket b (inclusive, for interpolation purposes).
uint64_t BucketHigh(size_t b) {
  if (b == 0) {
    return 0;
  }
  if (b >= 64) {
    return ~0ull;
  }
  return (1ull << b) - 1;
}

}  // namespace

namespace internal {

std::atomic<bool> g_metrics_enabled{true};

}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
  internal::RecomputeSpanGate();
}

bool LatencyTimingEnabled() { return g_latency_timing.load(std::memory_order_relaxed); }

void SetLatencyTimingEnabled(bool enabled) {
  g_latency_timing.store(enabled, std::memory_order_relaxed);
  internal::RecomputeSpanGate();
}

uint64_t MonotonicNowNs() {
#if defined(__x86_64__)
  const TscClock& clock = Tsc();
  if (clock.usable) [[likely]] {
    // Signed + clamped: a reader on a core whose TSC trails the calibration
    // core's by a few cycles must not wrap into the far future.
    int64_t ticks = static_cast<int64_t>(__rdtsc() - clock.anchor_tsc);
    if (ticks < 0) [[unlikely]] {
      ticks = 0;
    }
    return clock.anchor_ns +
           static_cast<uint64_t>(
               (static_cast<unsigned __int128>(ticks) * clock.ns_per_tick_q32) >> 32);
  }
#endif
  return SteadyNowNs();
}

uint64_t Histogram::QuantileFromBuckets(const std::array<uint64_t, kBuckets>& buckets,
                                        uint64_t count, double q) {
  if (count == 0) {
    return 0;
  }
  // Rank of the target observation, 1-based, clamped to [1, count].
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count) + 0.5);
  if (rank < 1) {
    rank = 1;
  }
  if (rank > count) {
    rank = count;
  }
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) {
      continue;
    }
    if (seen + buckets[b] >= rank) {
      // Interpolate linearly within the bucket.
      uint64_t into = rank - seen;  // 1..buckets[b]
      uint64_t low = BucketLow(b);
      uint64_t high = BucketHigh(b);
      double frac = static_cast<double>(into) / static_cast<double>(buckets[b]);
      return low + static_cast<uint64_t>(frac * static_cast<double>(high - low));
    }
    seen += buckets[b];
  }
  return BucketHigh(kBuckets - 1);
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot snap;
  for (size_t b = 0; b < kBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    snap.count += snap.buckets[b];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  snap.p50 = QuantileFromBuckets(snap.buckets, snap.count, 0.50);
  snap.p95 = QuantileFromBuckets(snap.buckets, snap.count, 0.95);
  snap.p99 = QuantileFromBuckets(snap.buckets, snap.count, 0.99);
  return snap;
}

void Histogram::ResetForTesting() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> guard(mutex_);
  // Merge the three kinds into one name-sorted listing.
  std::map<std::string, std::string> lines;
  for (const auto& [name, counter] : counters_) {
    lines[name] = name + " " + std::to_string(counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    lines[name] = name + " " + std::to_string(gauge->Value());
  }
  for (const auto& [name, hist] : histograms_) {
    auto snap = hist->GetSnapshot();
    std::ostringstream os;
    os << name << " count=" << snap.count << " sum=" << snap.sum << " p50=" << snap.p50
       << " p95=" << snap.p95 << " p99=" << snap.p99 << " max=" << snap.max;
    lines[name] = os.str();
  }
  std::string out;
  for (const auto& [name, line] : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>> MetricsRegistry::HistogramSnapshots(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  for (const auto& [name, hist] : histograms_) {
    if (name.size() < prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    out.emplace_back(name, hist->GetSnapshot());
  }
  return out;
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::map<std::string, bool> merged;
  for (const auto& [name, c] : counters_) {
    merged[name] = true;
  }
  for (const auto& [name, g] : gauges_) {
    merged[name] = true;
  }
  for (const auto& [name, h] : histograms_) {
    merged[name] = true;
  }
  std::vector<std::string> names;
  names.reserve(merged.size());
  for (const auto& [name, present] : merged) {
    names.push_back(name);
  }
  return names;
}

void MetricsRegistry::ResetAllForTesting() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->ResetForTesting();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->ResetForTesting();
  }
  for (auto& [name, hist] : histograms_) {
    hist->ResetForTesting();
  }
}

}  // namespace obs
}  // namespace skern
