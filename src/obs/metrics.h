// Metrics registry: named monotonic counters, gauges, and log2-bucket
// latency histograms, registered per module.
//
// The paper's incremental-safety argument rests on *measuring* a live kernel
// (CVE rates, bug density, the runtime cost of each safety rung); this is the
// measurement substrate. Naming convention is `subsys.name`
// (e.g. "vfs.write.count", "block.cache.hits", "net.tcp.retransmits").
//
// Design rules:
//   - Metric objects have stable addresses for the life of the process.
//     Hot paths cache a reference once (function-local static) and then pay
//     one relaxed atomic RMW per event. ResetAllForTesting() zeroes values
//     but never invalidates references.
//   - The obs layer sits *below* src/base (it depends only on the standard
//     library), so even the logger and the lock registry can report into it
//     without a dependency cycle.
#ifndef SKERN_SRC_OBS_METRICS_H_
#define SKERN_SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/sync/annotations.h"

namespace skern {
namespace obs {

// Monotonic event counter (resettable only for tests).
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTesting() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time signed value (queue depths, open fds, cache residency).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  void Sub(int64_t d) { value_.fetch_sub(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTesting() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log2-bucket histogram for latency-like values (nanoseconds).
//
// Bucket b holds values in [2^(b-1), 2^b); bucket 0 holds the value 0.
// Percentiles interpolate linearly inside the bucket that crosses the target
// rank, so a reported p99 is exact to within one power of two — the same
// fidelity ftrace's hist triggers and BPF log2 histograms give.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Observe(uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    // max_ is advisory (benign race: two writers may briefly leapfrog).
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
    std::array<uint64_t, kBuckets> buckets{};
  };

  Snapshot GetSnapshot() const;

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  void ResetForTesting();

  // Index of the bucket holding `value` (exposed for tests). Values at or
  // above 2^63 share the top bucket so the index never escapes the array.
  static size_t BucketFor(uint64_t value) {
    if (value == 0) {
      return 0;
    }
    size_t bucket = 64 - static_cast<size_t>(__builtin_clzll(value));
    return bucket < kBuckets ? bucket : kBuckets - 1;
  }

  // Quantile over a raw bucket array (linear interpolation inside the
  // crossing bucket). Public so aggregators that merge several histograms'
  // buckets (procfs /latency's per-layer rollup) report the same quantile
  // semantics as a single histogram.
  static uint64_t QuantileFromBuckets(const std::array<uint64_t, kBuckets>& buckets,
                                      uint64_t count, double q);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// Process-wide registry. Lookup is create-on-first-use and mutex-protected;
// the returned references stay valid forever (entries are never erased).
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  // One line per metric, sorted by name:
  //   vfs.write.count 17
  //   vfs.write.latency_ns count=17 sum=43210 p50=1536 p95=3800 p99=4000 max=4096
  std::string RenderText() const;

  // Names registered so far, sorted (all kinds merged).
  std::vector<std::string> Names() const;

  // Name + snapshot of every histogram whose name starts with `prefix`
  // (pass "" for all), name-sorted. The span/latency procfs views are built
  // from this without holding the registry mutex across rendering.
  std::vector<std::pair<std::string, Histogram::Snapshot>> HistogramSnapshots(
      std::string_view prefix) const;

  // Zeroes every metric in place; references remain valid.
  void ResetAllForTesting();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_ SKERN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_ SKERN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      SKERN_GUARDED_BY(mutex_);
};

namespace internal {

extern std::atomic<bool> g_metrics_enabled;

}  // namespace internal

// Master runtime gate for the SKERN_COUNTER_*/SKERN_HISTOGRAM_*/
// SKERN_TIMED_SCOPE macros — the software analogue of a kernel static key.
// Defaults on; when off, each macro site costs one relaxed load and a
// predicted-taken branch (bench/trace_overhead's "disabled" configuration).
// Direct Counter/Gauge references (ShimStats and friends) are not gated.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled);

// Finer switch for latency timing (the two clock reads around a timed
// scope). Timing defaults on and is switched off by benchmarks measuring
// counter-only cost.
bool LatencyTimingEnabled();
void SetLatencyTimingEnabled(bool enabled);

// Monotonic wall nanoseconds used by timed scopes (steady_clock based).
uint64_t MonotonicNowNs();

// RAII latency probe: observes elapsed wall nanoseconds into `hist` on scope
// exit. Costs one relaxed atomic load when timing is disabled; a null
// histogram (gated-off macro site) degrades to the same no-op.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& hist) : ScopedLatency(&hist) {}
  explicit ScopedLatency(Histogram* hist)
      : hist_(hist != nullptr && LatencyTimingEnabled() ? hist : nullptr),
        start_(hist_ != nullptr ? MonotonicNowNs() : 0) {}

  ~ScopedLatency() {
    if (hist_ != nullptr) {
      hist_->Observe(MonotonicNowNs() - start_);
    }
  }

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* hist_;
  uint64_t start_;
};

}  // namespace obs
}  // namespace skern

// SKERN_METRIC_*: cached-reference helpers for hot paths. Each expands to a
// function-local static lookup (one registry hit ever) plus a relaxed RMW.
// Compiled out (along with tracepoints) under SKERN_OBS_COMPILED_OUT — the
// configuration bench/trace_overhead measures against.
#ifdef SKERN_OBS_COMPILED_OUT

#define SKERN_COUNTER_INC(name) \
  do {                          \
  } while (0)
#define SKERN_COUNTER_ADD(name, n) \
  do {                             \
    (void)(n);                     \
  } while (0)
#define SKERN_GAUGE_SET(name, v) \
  do {                           \
    (void)(v);                   \
  } while (0)
#define SKERN_GAUGE_ADD(name, d) \
  do {                           \
    (void)(d);                   \
  } while (0)
#define SKERN_TIMED_SCOPE(name)
#define SKERN_HISTOGRAM_OBSERVE(name, value) \
  do {                                       \
    (void)(value);                           \
  } while (0)

#else

#define SKERN_COUNTER_INC(name)                                      \
  do {                                                               \
    if (::skern::obs::MetricsEnabled()) [[likely]] {                 \
      static ::skern::obs::Counter& skern_counter_ =                 \
          ::skern::obs::MetricsRegistry::Get().GetCounter(name);     \
      skern_counter_.Inc();                                          \
    }                                                                \
  } while (0)

#define SKERN_COUNTER_ADD(name, n)                                   \
  do {                                                               \
    if (::skern::obs::MetricsEnabled()) [[likely]] {                 \
      static ::skern::obs::Counter& skern_counter_ =                 \
          ::skern::obs::MetricsRegistry::Get().GetCounter(name);     \
      skern_counter_.Inc(n);                                         \
    }                                                                \
  } while (0)

#define SKERN_GAUGE_SET(name, v)                                     \
  do {                                                               \
    if (::skern::obs::MetricsEnabled()) [[likely]] {                 \
      static ::skern::obs::Gauge& skern_gauge_ =                     \
          ::skern::obs::MetricsRegistry::Get().GetGauge(name);       \
      skern_gauge_.Set(v);                                           \
    }                                                                \
  } while (0)

#define SKERN_GAUGE_ADD(name, d)                                     \
  do {                                                               \
    if (::skern::obs::MetricsEnabled()) [[likely]] {                 \
      static ::skern::obs::Gauge& skern_gauge_ =                     \
          ::skern::obs::MetricsRegistry::Get().GetGauge(name);       \
      skern_gauge_.Add(d);                                           \
    }                                                                \
  } while (0)

// Times the rest of the enclosing scope into histogram `name`.
#define SKERN_TIMED_SCOPE(name)                                      \
  ::skern::obs::ScopedLatency skern_timed_scope_(                    \
      ::skern::obs::MetricsEnabled()                                 \
          ? []() -> ::skern::obs::Histogram* {                       \
              static ::skern::obs::Histogram& skern_timed_hist_ =    \
                  ::skern::obs::MetricsRegistry::Get().GetHistogram(name); \
              return &skern_timed_hist_;                             \
            }()                                                      \
          : nullptr)

#define SKERN_HISTOGRAM_OBSERVE(name, value)                         \
  do {                                                               \
    if (::skern::obs::MetricsEnabled()) [[likely]] {                 \
      static ::skern::obs::Histogram& skern_hist_ =                  \
          ::skern::obs::MetricsRegistry::Get().GetHistogram(name);   \
      skern_hist_.Observe(value);                                    \
    }                                                                \
  } while (0)

#endif  // SKERN_OBS_COMPILED_OUT

#endif  // SKERN_SRC_OBS_METRICS_H_
