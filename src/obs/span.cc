#include "src/obs/span.h"

#include <string>

namespace skern {
namespace obs {

namespace internal {

// Defaults match the process defaults: the flight recorder sink is on and
// metrics + latency timing are on, so spans are live from the first
// instruction without waiting for a recompute.
std::atomic<uint32_t> g_span_gate{kSpanGateTrace | kSpanGateLatency};

void RecomputeSpanGate() {
  uint32_t gate = 0;
  if (TraceActive()) {
    gate |= kSpanGateTrace;
  }
  if (MetricsEnabled() && LatencyTimingEnabled()) {
    gate |= kSpanGateLatency;
  }
  g_span_gate.store(gate, std::memory_order_relaxed);
}

}  // namespace internal

namespace {

thread_local SpanScope* t_current_span = nullptr;
// Per-thread span id counter; ids are unique per (tid, id) — records carry
// the tid, and parent links never cross threads (parenting rides the call
// stack), so a process-global counter would buy nothing.
thread_local uint64_t t_next_span_id = 0;

const char* PlaneSuffix(SpanPlane plane) {
  switch (plane) {
    case SpanPlane::kFast:
      return ".fast";
    case SpanPlane::kSlow:
      return ".slow";
    case SpanPlane::kNone:
      break;
  }
  return "";
}

}  // namespace

uint16_t SpanSite::EventId() {
  int32_t id = event_id.load(std::memory_order_relaxed);
  if (id < 0) [[unlikely]] {
    // Benign race: interning is idempotent, both winners store the same id.
    id = InternTraceEvent(subsys, op);
    event_id.store(id, std::memory_order_relaxed);
  }
  return static_cast<uint16_t>(id);
}

Histogram& SpanSite::LatencyHist(SpanPlane plane) {
  std::atomic<Histogram*>& slot = latency_hist[static_cast<size_t>(plane)];
  Histogram* hist = slot.load(std::memory_order_acquire);
  if (hist == nullptr) [[unlikely]] {
    std::string name = std::string("span.") + subsys + "." + op + PlaneSuffix(plane) + ".ns";
    hist = &MetricsRegistry::Get().GetHistogram(name);
    slot.store(hist, std::memory_order_release);
  }
  return *hist;
}

Histogram& SpanSite::LockWaitHist() {
  Histogram* hist = lock_wait_hist.load(std::memory_order_acquire);
  if (hist == nullptr) [[unlikely]] {
    std::string name = std::string("span.") + subsys + "." + op + ".lock_wait_ns";
    hist = &MetricsRegistry::Get().GetHistogram(name);
    lock_wait_hist.store(hist, std::memory_order_release);
  }
  return *hist;
}

void SpanScope::Open(SpanSite& site, uint16_t extra_flags, uint32_t gate) {
  site_ = &site;
  gate_ = gate;
  parent_ = t_current_span;
  uint16_t depth = 0;
  if (parent_ != nullptr) {
    depth = parent_->depth();
    if (depth < kSpanDepthMask) {
      ++depth;
    }
  }
  flags_ = static_cast<uint16_t>(extra_flags | depth);
  id_ = ++t_next_span_id;
  t_current_span = this;
  start_ns_ = MonotonicNowNs();
  if (gate & internal::kSpanGateTrace) {
    EmitTraceFlagsAt(start_ns_, site.EventId(), static_cast<uint16_t>(kSpanBegin | flags_), id_,
                     parent_ != nullptr ? parent_->id_ : 0);
  }
}

void SpanScope::Close() {
  const uint64_t end_ns = MonotonicNowNs();
  const uint64_t duration_ns = end_ns - start_ns_;
  t_current_span = parent_;
  uint16_t plane_flag = 0;
  if (plane_ == SpanPlane::kFast) {
    plane_flag = kSpanPlaneFast;
  } else if (plane_ == SpanPlane::kSlow) {
    plane_flag = kSpanPlaneSlow;
  }
  // The cached gate keeps begin/end balanced even if a session starts or
  // stops while the span is open.
  if (gate_ & internal::kSpanGateTrace) {
    EmitTraceFlagsAt(end_ns, site_->EventId(), static_cast<uint16_t>(kSpanEnd | plane_flag | flags_),
                     id_, duration_ns);
  }
  if (gate_ & internal::kSpanGateLatency) {
    site_->LatencyHist(plane_).Observe(duration_ns);
    if (lock_wait_ns_ > 0) {
      site_->LockWaitHist().Observe(lock_wait_ns_);
    }
  }
}

void CurrentSpanAddLockWait(uint64_t wait_ns) {
  SpanScope* span = t_current_span;
  if (span != nullptr) {
    span->lock_wait_ns_ += wait_ns;
  }
}

SpanScope* CurrentSpan() { return t_current_span; }

}  // namespace obs
}  // namespace skern
