// Cross-layer span tracing: RAII scopes that decompose one operation's
// latency across the layers it traverses.
//
//   Status Vfs::Pread(...) {
//     SKERN_SPAN("vfs", "pread");
//     ...
//   }
//
// Each SKERN_SPAN site opens a SpanScope that (a) allocates a per-thread span
// id, (b) links to the enclosing span (the thread-local current span becomes
// the parent), and (c) emits begin/end records into the same lock-free rings
// SKERN_TRACE uses — `TraceRecord::reserved` carries the span flags and depth
// so records stay 32 bytes. Because parenting rides the call stack, a Vfs
// dispatch that calls into SafeFs which calls into the buffer cache yields a
// three-level tree with no plumbing through any interface: each layer just
// declares its own span. tools/traceview reconstructs the tree offline.
//
// At close, when latency attribution is on, the span feeds a per-(subsys, op,
// plane) log2 histogram in the metrics registry:
//
//   span.vfs.pread.ns            count=... p50=... p95=... p99=...
//   span.safefs.read.fast.ns     (handle-plane fast path)
//   span.safefs.read.slow.ns     (fell back to the path plane / global lock)
//   span.safefs.read.lock_wait_ns (time this op spent blocked on locks)
//
// `set_plane()` tags which plane served the op; tracked locks report their
// blocking wait into the innermost open span (CurrentSpanAddLockWait), so a
// p99 outlier is attributable to "waited 40us on safefs.mutex", not just
// "was slow".
//
// Cost model (bench/trace_overhead verifies all three):
//   - fully disabled (no trace sink, latency attribution off): one relaxed
//     load of the combined span gate and a predicted-taken branch;
//   - enabled: two clock reads + two ring pushes + one histogram observe;
//   - compiled out (SKERN_OBS_COMPILED_OUT): nothing.
//
// SKERN_SPAN_LOCKED is semantically identical but documents — and
// safety_lint rule O001 enforces — that the span's scope covers a lock
// acquisition, so its latency histogram may include lock wait.
#ifndef SKERN_SRC_OBS_SPAN_H_
#define SKERN_SRC_OBS_SPAN_H_

#include <atomic>
#include <cstdint>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace skern {
namespace obs {

// Which data plane served the spanned operation. Planes keep the fast-path
// and fallback-path latency populations separate, so a cache-warm read and a
// global-lock read never blur into one histogram.
enum class SpanPlane : uint8_t {
  kNone = 0,  // operation has no plane split
  kFast = 1,  // served by the lock-avoiding fast plane
  kSlow = 2,  // fell back to the slow/global plane
};

namespace internal {

// Combined gate for SpanScope: bit 0 set when any trace sink (session or
// flight recorder) wants begin/end records, bit 1 when latency attribution
// (metrics + timing) is on. Recomputed by every setter that can change
// either input, so the disabled span path is a single relaxed load.
inline constexpr uint32_t kSpanGateTrace = 1u << 0;
inline constexpr uint32_t kSpanGateLatency = 1u << 1;
extern std::atomic<uint32_t> g_span_gate;
void RecomputeSpanGate();

}  // namespace internal

// Per-macro-site state: the interned event id and cached histogram pointers,
// resolved lazily on first enabled pass. constexpr-constructible so the
// function-local static needs no init guard.
struct SpanSite {
  constexpr SpanSite(const char* subsys_in, const char* op_in)
      : subsys(subsys_in), op(op_in) {}

  SpanSite(const SpanSite&) = delete;
  SpanSite& operator=(const SpanSite&) = delete;

  const char* const subsys;
  const char* const op;
  // Interned trace event id; -1 until first use (0 is a valid id).
  std::atomic<int32_t> event_id{-1};
  // Latency histograms indexed by SpanPlane.
  std::atomic<Histogram*> latency_hist[3]{nullptr, nullptr, nullptr};
  std::atomic<Histogram*> lock_wait_hist{nullptr};

  uint16_t EventId();
  Histogram& LatencyHist(SpanPlane plane);
  Histogram& LockWaitHist();
};

// RAII span. Construct via SKERN_SPAN/SKERN_SPAN_LOCKED, not directly.
class SpanScope {
 public:
  explicit SpanScope(SpanSite& site, uint16_t extra_flags = 0) {
    uint32_t gate = internal::g_span_gate.load(std::memory_order_relaxed);
    if (gate != 0) [[unlikely]] {
      Open(site, extra_flags, gate);
    }
  }

  ~SpanScope() {
    if (site_ != nullptr) {
      Close();
    }
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  // Tags the plane that ended up serving this operation (call any time
  // before scope exit; the end record and histogram pick it up).
  void set_plane(SpanPlane plane) { plane_ = plane; }

  // Lock wait charged to this span so far (tests / introspection).
  uint64_t lock_wait_ns() const { return lock_wait_ns_; }
  uint64_t id() const { return id_; }
  uint16_t depth() const { return flags_ & kSpanDepthMask; }

 private:
  friend void CurrentSpanAddLockWait(uint64_t wait_ns);

  void Open(SpanSite& site, uint16_t extra_flags, uint32_t gate);
  void Close();

  SpanSite* site_ = nullptr;  // null => span is disabled, dtor is a no-op
  SpanScope* parent_ = nullptr;
  uint64_t id_ = 0;
  uint64_t start_ns_ = 0;
  uint64_t lock_wait_ns_ = 0;
  uint32_t gate_ = 0;
  uint16_t flags_ = 0;  // depth bits + kSpanLocked if annotated
  SpanPlane plane_ = SpanPlane::kNone;
};

// Charges `wait_ns` of lock blocking to the innermost open span on this
// thread (no-op when none is open). Called by the tracked locks' contended
// paths; at span close the total feeds span.<subsys>.<op>.lock_wait_ns.
void CurrentSpanAddLockWait(uint64_t wait_ns);

// The innermost open span on this thread, or null (tests / introspection).
SpanScope* CurrentSpan();

// Compiled-out stand-in: keeps set_plane() call sites compiling while
// erasing all span state and code.
struct NullSpanScope {
  NullSpanScope() {}
  ~NullSpanScope() {}
  void set_plane(SpanPlane) {}
};

}  // namespace obs
}  // namespace skern

// The span macros. Subsys/op must be string literals. One span per scope:
// the scope object has a fixed name so set_plane() can reach it
// (skern_span_scope_.set_plane(...)).
#ifdef SKERN_OBS_COMPILED_OUT

#define SKERN_SPAN(subsys, op) ::skern::obs::NullSpanScope skern_span_scope_
#define SKERN_SPAN_LOCKED(subsys, op) ::skern::obs::NullSpanScope skern_span_scope_

#else

#define SKERN_SPAN(subsys, op)                                            \
  static constinit ::skern::obs::SpanSite skern_span_site_{subsys, op};   \
  ::skern::obs::SpanScope skern_span_scope_ { skern_span_site_ }

// Same span, annotated: this scope is expected to cover a lock acquisition
// (safety_lint O001 requires the annotation when it sees one).
#define SKERN_SPAN_LOCKED(subsys, op)                                     \
  static constinit ::skern::obs::SpanSite skern_span_site_{subsys, op};   \
  ::skern::obs::SpanScope skern_span_scope_ {                             \
    skern_span_site_, ::skern::obs::kSpanLocked                           \
  }

#endif  // SKERN_OBS_COMPILED_OUT

#endif  // SKERN_SRC_OBS_SPAN_H_
