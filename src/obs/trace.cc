#include "src/obs/trace.h"

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "src/obs/metrics.h"
#include "src/sync/annotations.h"

namespace skern {
namespace obs {

namespace internal {

std::atomic<bool> g_trace_enabled{false};

}  // namespace internal

namespace {

std::atomic<const TraceClock*> g_trace_clock{nullptr};

uint64_t TraceNow() {
  const TraceClock* clock = g_trace_clock.load(std::memory_order_relaxed);
  return clock != nullptr ? clock->TraceNowNs() : MonotonicNowNs();
}

// ---------------------------------------------------------------------------
// Event-name interning
// ---------------------------------------------------------------------------

struct EventTable {
  std::mutex mutex;
  std::map<std::pair<std::string, std::string>, uint16_t> ids SKERN_GUARDED_BY(mutex);
  // Indexed by id, "subsys.event".
  std::vector<std::string> names SKERN_GUARDED_BY(mutex);
};

EventTable& Events() {
  static EventTable* table = new EventTable();
  return *table;
}

// ---------------------------------------------------------------------------
// Per-thread SPSC ring buffers
// ---------------------------------------------------------------------------

// One ring per thread: the owning thread is the only writer; the draining
// session (under the registry mutex) is the only reader. Overflow drops the
// newest record and counts it, so writers never block and never tear.
class TraceRing {
 public:
  static constexpr size_t kCapacity = 8192;  // records; power of two
  static_assert((kCapacity & (kCapacity - 1)) == 0);

  explicit TraceRing(uint32_t tid) : tid_(tid) {}

  uint32_t tid() const { return tid_; }

  void Push(uint16_t event_id, uint64_t arg0, uint64_t arg1) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= kCapacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    TraceRecord& slot = slots_[head & (kCapacity - 1)];
    slot.ts = TraceNow();
    slot.tid = tid_;
    slot.event_id = event_id;
    slot.reserved = 0;
    slot.arg0 = arg0;
    slot.arg1 = arg1;
    head_.store(head + 1, std::memory_order_release);
  }

  // Reader side (one drainer at a time, serialized by the registry mutex).
  void Read(std::vector<TraceRecord>* out, bool consume) {
    uint64_t head = head_.load(std::memory_order_acquire);
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (uint64_t i = tail; i != head; ++i) {
      out->push_back(slots_[i & (kCapacity - 1)]);
    }
    if (consume) {
      tail_.store(head, std::memory_order_release);
    }
  }

  void Clear() {
    tail_.store(head_.load(std::memory_order_acquire), std::memory_order_release);
    dropped_.store(0, std::memory_order_relaxed);
  }

  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  const uint32_t tid_;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> tail_{0};
  std::atomic<uint64_t> dropped_{0};
  std::array<TraceRecord, kCapacity> slots_{};
};

// Registry of all thread rings. Rings are shared_ptr so a drain stays safe
// even after the owning thread has exited.
struct RingRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<TraceRing>> rings SKERN_GUARDED_BY(mutex);
  uint32_t next_tid SKERN_GUARDED_BY(mutex) = 1;
};

RingRegistry& Rings() {
  static RingRegistry* registry = new RingRegistry();
  return *registry;
}

TraceRing& ThisThreadRing() {
  thread_local std::shared_ptr<TraceRing> ring = [] {
    RingRegistry& registry = Rings();
    std::lock_guard<std::mutex> guard(registry.mutex);
    auto created = std::make_shared<TraceRing>(registry.next_tid++);
    registry.rings.push_back(created);
    return created;
  }();
  return *ring;
}

}  // namespace

uint16_t InternTraceEvent(const char* subsys, const char* event) {
  EventTable& table = Events();
  std::lock_guard<std::mutex> guard(table.mutex);
  auto key = std::make_pair(std::string(subsys), std::string(event));
  auto it = table.ids.find(key);
  if (it != table.ids.end()) {
    return it->second;
  }
  uint16_t id = static_cast<uint16_t>(table.names.size());
  table.names.push_back(key.first + "." + key.second);
  table.ids.emplace(std::move(key), id);
  return id;
}

std::string TraceEventName(uint16_t id) {
  EventTable& table = Events();
  std::lock_guard<std::mutex> guard(table.mutex);
  if (id >= table.names.size()) {
    return "?";
  }
  return table.names[id];
}

void EmitTrace(uint16_t event_id, uint64_t arg0, uint64_t arg1) {
  if (!TraceEnabled()) {
    return;
  }
  ThisThreadRing().Push(event_id, arg0, arg1);
}

void SetTraceClock(const TraceClock* clock) {
  g_trace_clock.store(clock, std::memory_order_relaxed);
}

TraceSession& TraceSession::Get() {
  static TraceSession* session = new TraceSession();
  return *session;
}

void TraceSession::Start() {
  RingRegistry& registry = Rings();
  {
    std::lock_guard<std::mutex> guard(registry.mutex);
    for (auto& ring : registry.rings) {
      ring->Clear();
    }
  }
  internal::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void TraceSession::Stop() {
  internal::g_trace_enabled.store(false, std::memory_order_relaxed);
}

std::vector<TraceRecord> TraceSession::Drain(bool consume) {
  std::vector<TraceRecord> records;
  RingRegistry& registry = Rings();
  {
    std::lock_guard<std::mutex> guard(registry.mutex);
    for (auto& ring : registry.rings) {
      ring->Read(&records, consume);
    }
  }
  // Per-ring order is emission order; stable sort keeps it within equal
  // timestamps (a SimClock that does not advance between events).
  std::stable_sort(records.begin(), records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.ts != b.ts ? a.ts < b.ts : a.tid < b.tid;
                   });
  return records;
}

uint64_t TraceSession::dropped() const {
  uint64_t total = 0;
  RingRegistry& registry = Rings();
  std::lock_guard<std::mutex> guard(registry.mutex);
  for (const auto& ring : registry.rings) {
    total += ring->dropped();
  }
  return total;
}

void TraceSession::ResetForTesting() {
  Stop();
  RingRegistry& registry = Rings();
  std::lock_guard<std::mutex> guard(registry.mutex);
  for (auto& ring : registry.rings) {
    ring->Clear();
  }
}

std::string RenderTraceText(const std::vector<TraceRecord>& records) {
  std::ostringstream os;
  for (const auto& record : records) {
    os << record.ts << " " << record.tid << " " << TraceEventName(record.event_id) << " "
       << record.arg0 << " " << record.arg1 << "\n";
  }
  return os.str();
}

}  // namespace obs
}  // namespace skern
