#include "src/obs/trace.h"

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/sync/annotations.h"

namespace skern {
namespace obs {

namespace internal {

// The flight recorder is an always-on sink: it starts recording before
// main() so the first panic of a process's life already has history.
std::atomic<uint32_t> g_trace_sinks{kSinkFlight};

}  // namespace internal

namespace {

std::atomic<const TraceClock*> g_trace_clock{nullptr};

uint64_t TraceNow() {
  const TraceClock* clock = g_trace_clock.load(std::memory_order_relaxed);
  return clock != nullptr ? clock->TraceNowNs() : MonotonicNowNs();
}

void SetSink(uint32_t sink, bool enabled) {
  if (enabled) {
    internal::g_trace_sinks.fetch_or(sink, std::memory_order_relaxed);
  } else {
    internal::g_trace_sinks.fetch_and(~sink, std::memory_order_relaxed);
  }
  internal::RecomputeSpanGate();
}

// ---------------------------------------------------------------------------
// Event-name interning
// ---------------------------------------------------------------------------

struct EventTable {
  std::mutex mutex;
  std::map<std::pair<std::string, std::string>, uint16_t> ids SKERN_GUARDED_BY(mutex);
  // Indexed by id, "subsys.event".
  std::vector<std::string> names SKERN_GUARDED_BY(mutex);
};

EventTable& Events() {
  static EventTable* table = new EventTable();
  return *table;
}

// ---------------------------------------------------------------------------
// Per-thread ring buffers
// ---------------------------------------------------------------------------

// Session ring: the owning thread is the only writer; the draining session
// (under the registry mutex) is the only reader. Overflow drops the newest
// record and counts it, so writers never block and never tear.
class TraceRing {
 public:
  static constexpr size_t kCapacity = 8192;  // records; power of two
  static_assert((kCapacity & (kCapacity - 1)) == 0);

  explicit TraceRing(uint32_t tid) : tid_(tid) {}

  void Push(uint64_t ts, uint16_t event_id, uint16_t flags, uint64_t arg0, uint64_t arg1) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= kCapacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    TraceRecord& slot = slots_[head & (kCapacity - 1)];
    slot.ts = ts;
    slot.tid = tid_;
    slot.event_id = event_id;
    slot.reserved = flags;
    slot.arg0 = arg0;
    slot.arg1 = arg1;
    head_.store(head + 1, std::memory_order_release);
  }

  // Reader side (one drainer at a time, serialized by the registry mutex).
  void Read(std::vector<TraceRecord>* out, bool consume) {
    uint64_t head = head_.load(std::memory_order_acquire);
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (uint64_t i = tail; i != head; ++i) {
      out->push_back(slots_[i & (kCapacity - 1)]);
    }
    if (consume) {
      tail_.store(head, std::memory_order_release);
    }
  }

  void Clear() {
    tail_.store(head_.load(std::memory_order_acquire), std::memory_order_release);
    dropped_.store(0, std::memory_order_relaxed);
  }

  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  const uint32_t tid_;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> tail_{0};
  std::atomic<uint64_t> dropped_{0};
  std::array<TraceRecord, kCapacity> slots_{};
};

// Flight ring: always-on last-N-events buffer, overwrite-oldest. Slots are
// four relaxed atomic words so a panic-time snapshot racing the owning
// thread's overwrite is data-race-free; a record caught mid-overwrite may
// mix fields from two events, which last-breath diagnostics tolerate.
class FlightRing {
 public:
  static constexpr size_t kCapacity = 512;  // records; power of two
  static_assert((kCapacity & (kCapacity - 1)) == 0);

  void Push(uint64_t ts, uint32_t tid, uint16_t event_id, uint16_t flags, uint64_t arg0,
            uint64_t arg1) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[head & (kCapacity - 1)];
    slot.ts.store(ts, std::memory_order_relaxed);
    slot.meta.store((static_cast<uint64_t>(tid) << 32) |
                        (static_cast<uint64_t>(event_id) << 16) | flags,
                    std::memory_order_relaxed);
    slot.arg0.store(arg0, std::memory_order_relaxed);
    slot.arg1.store(arg1, std::memory_order_relaxed);
    head_.store(head + 1, std::memory_order_release);
  }

  void Snapshot(std::vector<TraceRecord>* out) const {
    uint64_t head = head_.load(std::memory_order_acquire);
    uint64_t lo = tail_.load(std::memory_order_relaxed);
    if (head > kCapacity && head - kCapacity > lo) {
      lo = head - kCapacity;
    }
    for (uint64_t i = lo; i < head; ++i) {
      const Slot& slot = slots_[i & (kCapacity - 1)];
      uint64_t meta = slot.meta.load(std::memory_order_relaxed);
      TraceRecord record;
      record.ts = slot.ts.load(std::memory_order_relaxed);
      record.tid = static_cast<uint32_t>(meta >> 32);
      record.event_id = static_cast<uint16_t>((meta >> 16) & 0xffff);
      record.reserved = static_cast<uint16_t>(meta & 0xffff);
      record.arg0 = slot.arg0.load(std::memory_order_relaxed);
      record.arg1 = slot.arg1.load(std::memory_order_relaxed);
      out->push_back(record);
    }
  }

  // Forgets buffered history (test isolation). Safe against a concurrent
  // writer: only the snapshot lower bound moves.
  void Clear() { tail_.store(head_.load(std::memory_order_relaxed), std::memory_order_relaxed); }

 private:
  struct Slot {
    std::atomic<uint64_t> ts{0};
    std::atomic<uint64_t> meta{0};  // tid<<32 | event_id<<16 | flags
    std::atomic<uint64_t> arg0{0};
    std::atomic<uint64_t> arg1{0};
  };

  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> tail_{0};
  std::array<Slot, kCapacity> slots_{};
};

// Both sinks for one thread, registered together on first trace.
struct ThreadRings {
  explicit ThreadRings(uint32_t tid_in) : tid(tid_in), session(tid_in) {}
  const uint32_t tid;
  TraceRing session;
  FlightRing flight;
};

// Registry of all thread rings. Rings are shared_ptr so a drain stays safe
// even after the owning thread has exited.
struct RingRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadRings>> threads SKERN_GUARDED_BY(mutex);
  uint32_t next_tid SKERN_GUARDED_BY(mutex) = 1;
};

RingRegistry& Rings() {
  static RingRegistry* registry = new RingRegistry();
  return *registry;
}

ThreadRings& ThisThreadRings() {
  thread_local std::shared_ptr<ThreadRings> rings = [] {
    RingRegistry& registry = Rings();
    std::lock_guard<std::mutex> guard(registry.mutex);
    auto created = std::make_shared<ThreadRings>(registry.next_tid++);
    registry.threads.push_back(created);
    return created;
  }();
  return *rings;
}

void SortByTimestamp(std::vector<TraceRecord>* records) {
  // Per-ring order is emission order; stable sort keeps it within equal
  // timestamps (a SimClock that does not advance between events).
  std::stable_sort(records->begin(), records->end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.ts != b.ts ? a.ts < b.ts : a.tid < b.tid;
                   });
}

}  // namespace

uint16_t InternTraceEvent(const char* subsys, const char* event) {
  EventTable& table = Events();
  std::lock_guard<std::mutex> guard(table.mutex);
  auto key = std::make_pair(std::string(subsys), std::string(event));
  auto it = table.ids.find(key);
  if (it != table.ids.end()) {
    return it->second;
  }
  uint16_t id = static_cast<uint16_t>(table.names.size());
  table.names.push_back(key.first + "." + key.second);
  table.ids.emplace(std::move(key), id);
  return id;
}

std::string TraceEventName(uint16_t id) {
  EventTable& table = Events();
  std::lock_guard<std::mutex> guard(table.mutex);
  if (id >= table.names.size()) {
    return "?";
  }
  return table.names[id];
}

void EmitTrace(uint16_t event_id, uint64_t arg0, uint64_t arg1) {
  EmitTraceFlags(event_id, 0, arg0, arg1);
}

void EmitTraceFlags(uint16_t event_id, uint16_t flags, uint64_t arg0, uint64_t arg1) {
  if (internal::g_trace_sinks.load(std::memory_order_relaxed) == 0) {
    return;
  }
  EmitTraceFlagsAt(TraceNow(), event_id, flags, arg0, arg1);
}

void EmitTraceFlagsAt(uint64_t ts, uint16_t event_id, uint16_t flags, uint64_t arg0,
                      uint64_t arg1) {
  uint32_t sinks = internal::g_trace_sinks.load(std::memory_order_relaxed);
  if (sinks == 0) {
    return;
  }
  ThreadRings& rings = ThisThreadRings();
  if (sinks & internal::kSinkSession) {
    rings.session.Push(ts, event_id, flags, arg0, arg1);
  }
  if (sinks & internal::kSinkFlight) {
    rings.flight.Push(ts, rings.tid, event_id, flags, arg0, arg1);
  }
}

void SetTraceClock(const TraceClock* clock) {
  g_trace_clock.store(clock, std::memory_order_relaxed);
}

TraceSession& TraceSession::Get() {
  static TraceSession* session = new TraceSession();
  return *session;
}

void TraceSession::Start() {
  RingRegistry& registry = Rings();
  {
    std::lock_guard<std::mutex> guard(registry.mutex);
    for (auto& rings : registry.threads) {
      rings->session.Clear();
    }
  }
  SetSink(internal::kSinkSession, true);
}

void TraceSession::Stop() { SetSink(internal::kSinkSession, false); }

std::vector<TraceRecord> TraceSession::Drain(bool consume) {
  std::vector<TraceRecord> records;
  RingRegistry& registry = Rings();
  {
    std::lock_guard<std::mutex> guard(registry.mutex);
    for (auto& rings : registry.threads) {
      rings->session.Read(&records, consume);
    }
  }
  SortByTimestamp(&records);
  return records;
}

uint64_t TraceSession::dropped() const {
  uint64_t total = 0;
  RingRegistry& registry = Rings();
  std::lock_guard<std::mutex> guard(registry.mutex);
  for (const auto& rings : registry.threads) {
    total += rings->session.dropped();
  }
  return total;
}

void TraceSession::ResetForTesting() {
  Stop();
  RingRegistry& registry = Rings();
  std::lock_guard<std::mutex> guard(registry.mutex);
  for (auto& rings : registry.threads) {
    rings->session.Clear();
  }
}

// ---------------------------------------------------------------------------
// Flight recorder (declared in src/obs/flight_recorder.h; lives here with
// the ring registry)
// ---------------------------------------------------------------------------

bool FlightRecorderEnabled() {
  return (internal::g_trace_sinks.load(std::memory_order_relaxed) &
          internal::kSinkFlight) != 0;
}

void SetFlightRecorderEnabled(bool enabled) { SetSink(internal::kSinkFlight, enabled); }

std::vector<TraceRecord> FlightSnapshot() {
  std::vector<TraceRecord> records;
  RingRegistry& registry = Rings();
  {
    std::lock_guard<std::mutex> guard(registry.mutex);
    for (const auto& rings : registry.threads) {
      rings->flight.Snapshot(&records);
    }
  }
  SortByTimestamp(&records);
  return records;
}

std::vector<TraceRecord> FlightSnapshotForPanic() {
  std::vector<TraceRecord> records;
  RingRegistry& registry = Rings();
  // try_lock: if the registry mutex is held (a thread mid-registration while
  // another panics), a partial dump beats a deadlocked abort. The ring
  // vector only grows, and shared_ptr targets never move, so walking it
  // without the mutex would still be *mostly* safe — but don't.
  std::unique_lock<std::mutex> guard(registry.mutex, std::try_to_lock);
  if (!guard.owns_lock()) {
    return records;
  }
  for (const auto& rings : registry.threads) {
    rings->flight.Snapshot(&records);
  }
  SortByTimestamp(&records);
  return records;
}

void ResetFlightForTesting() {
  RingRegistry& registry = Rings();
  std::lock_guard<std::mutex> guard(registry.mutex);
  for (auto& rings : registry.threads) {
    rings->flight.Clear();
  }
}

std::string RenderTraceText(const std::vector<TraceRecord>& records) {
  std::ostringstream os;
  for (const auto& record : records) {
    os << record.ts << " " << record.tid << " " << TraceEventName(record.event_id);
    if (record.reserved & kSpanBegin) {
      os << " B d=" << (record.reserved & kSpanDepthMask) << " id=" << record.arg0
         << " parent=" << record.arg1;
    } else if (record.reserved & kSpanEnd) {
      os << " E d=" << (record.reserved & kSpanDepthMask) << " id=" << record.arg0
         << " dur=" << record.arg1;
      if (record.reserved & kSpanPlaneFast) {
        os << " plane=fast";
      } else if (record.reserved & kSpanPlaneSlow) {
        os << " plane=slow";
      }
    } else {
      os << " " << record.arg0 << " " << record.arg1;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace obs
}  // namespace skern
