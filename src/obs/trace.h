// Static tracepoints: an ftrace-inspired event stream for the safety kernel.
//
//   SKERN_TRACE("vfs", "write", fd, bytes);
//
// Each macro site interns its (subsys, event) pair once, then writes a
// fixed-size 32-byte record into a per-thread lock-free ring buffer. Two
// sinks consume the stream:
//
//   - the TraceSession ring (8192 records/thread, start/stop/drain, the
//     trace_pipe analogue), and
//   - the flight recorder ring (last 512 records/thread, always on,
//     overwrite-oldest) that the panic path dumps to stderr as the process
//     dies — see src/obs/flight_recorder.h.
//
// Cost model (the property bench/trace_overhead verifies):
//   - no sink active: one relaxed atomic load and a predicted-untaken branch;
//   - active: timestamp read + one SPSC ring push per sink (no locks, no
//     allocation);
//   - compiled out (SKERN_OBS_COMPILED_OUT): nothing.
//
// Timestamps default to monotonic wall nanoseconds. Simulations that want
// deterministic, fast-forwardable traces can point the tracer at their
// SimClock (SetTraceClock); records then carry simulated nanoseconds and the
// merge stays meaningful across the simulation's threads.
#ifndef SKERN_SRC_OBS_TRACE_H_
#define SKERN_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/trace_clock.h"

namespace skern {
namespace obs {

// One trace event. Fixed-size so ring slots never allocate or tear across
// cache lines in interesting ways: 32 bytes, trivially copyable.
struct TraceRecord {
  uint64_t ts;        // nanoseconds (wall-monotonic or SimClock)
  uint32_t tid;       // small per-thread id assigned at first trace
  uint16_t event_id;  // interned (subsys, event)
  uint16_t reserved;  // 0 for plain events; span flags + depth for spans
  uint64_t arg0;      // spans: span id
  uint64_t arg1;      // spans: parent id (begin) / duration ns (end)
};
static_assert(sizeof(TraceRecord) == 32, "trace records must stay fixed-size");

// TraceRecord::reserved bit layout for span records (src/obs/span.h). Plain
// SKERN_TRACE events keep reserved == 0, so `reserved != 0` identifies a
// span record without widening the format.
inline constexpr uint16_t kSpanBegin = 1u << 15;      // span-open record
inline constexpr uint16_t kSpanEnd = 1u << 14;        // span-close record
inline constexpr uint16_t kSpanPlaneFast = 1u << 13;  // served by fast plane
inline constexpr uint16_t kSpanPlaneSlow = 1u << 12;  // fell back to slow plane
inline constexpr uint16_t kSpanLocked = 1u << 11;     // scope covers a lock acquisition
inline constexpr uint16_t kSpanDepthMask = 0x00ff;    // nesting depth, saturating

namespace internal {

// Bitmask of active trace sinks. The flight recorder bit is set by default
// (always-on last-breath diagnostics); the session bit follows
// TraceSession::Start/Stop.
inline constexpr uint32_t kSinkSession = 1u << 0;
inline constexpr uint32_t kSinkFlight = 1u << 1;
extern std::atomic<uint32_t> g_trace_sinks;

}  // namespace internal

// True if a trace session is collecting. One relaxed load.
inline bool TraceEnabled() {
  return (internal::g_trace_sinks.load(std::memory_order_relaxed) &
          internal::kSinkSession) != 0;
}

// True if any sink (session or flight recorder) wants records. This is the
// whole disabled-path cost of a tracepoint: one relaxed load, then the
// caller's branch.
inline bool TraceActive() {
  return internal::g_trace_sinks.load(std::memory_order_relaxed) != 0;
}

// Interns a (subsys, event) name pair; returns a dense id. Called once per
// macro site via a function-local static. Thread-safe.
uint16_t InternTraceEvent(const char* subsys, const char* event);

// "subsys.event" for an interned id ("?" if unknown).
std::string TraceEventName(uint16_t id);

// Appends one record to the calling thread's active ring(s) (registering the
// thread on first use). No-op when no sink is active.
void EmitTrace(uint16_t event_id, uint64_t arg0 = 0, uint64_t arg1 = 0);

// As EmitTrace, with an explicit `reserved` word — the span machinery's
// entry point for begin/end records.
void EmitTraceFlags(uint16_t event_id, uint16_t flags, uint64_t arg0, uint64_t arg1);

// As EmitTraceFlags, with a caller-supplied timestamp. Span brackets already
// read the clock for duration accounting; reusing that reading here keeps a
// fully lit span at two clock reads instead of four.
void EmitTraceFlagsAt(uint64_t ts, uint16_t event_id, uint16_t flags, uint64_t arg0,
                      uint64_t arg1);

// Routes timestamps to an alternate clock (nullptr restores wall time).
// The clock must outlive tracing and its TraceNowNs must tolerate concurrent
// readers; SimClock implements the interface for deterministic simulations.
void SetTraceClock(const TraceClock* clock);

// Global trace collection: start/stop/drain. One session per process; the
// per-thread buffers are created lazily and live for the process lifetime.
class TraceSession {
 public:
  static TraceSession& Get();

  // Starts collecting (idempotent). Records emitted before Start are gone —
  // buffers are drained/cleared here so a session begins empty. The flight
  // recorder's rings are unaffected.
  void Start();

  // Stops collecting (idempotent); already-buffered records stay drainable.
  void Stop();

  bool active() const { return TraceEnabled(); }

  // Merges every thread's buffered records, ordered by (ts, tid). With
  // `consume` (the default, trace_pipe semantics) the buffers are emptied;
  // without it the records remain for the next drain.
  std::vector<TraceRecord> Drain(bool consume = true);

  // Records dropped on ring overflow since the last Start (all threads).
  uint64_t dropped() const;

  // Stops tracing, empties all session buffers, zeroes drop counters.
  void ResetForTesting();
};

// Human-readable dump, one record per line:
//   plain event:  "ts tid subsys.event arg0 arg1"
//   span begin:   "ts tid subsys.op B d=<depth> id=<id> parent=<id>"
//   span end:     "ts tid subsys.op E d=<depth> id=<id> dur=<ns>[ plane=fast|slow]"
// tools/traceview parses exactly this format.
std::string RenderTraceText(const std::vector<TraceRecord>& records);

}  // namespace obs
}  // namespace skern

// The tracepoint macro. Subsys/event must be string literals (they are
// interned once). Up to two integral payload args are captured.
#ifdef SKERN_OBS_COMPILED_OUT

#define SKERN_TRACE(subsys, event, ...) \
  do {                                  \
  } while (0)

#else

#define SKERN_TRACE(subsys, event, ...)                                  \
  do {                                                                   \
    if (::skern::obs::TraceActive()) [[unlikely]] {                      \
      static const uint16_t skern_trace_id_ =                            \
          ::skern::obs::InternTraceEvent(subsys, event);                 \
      ::skern::obs::EmitTrace(skern_trace_id_ __VA_OPT__(, ) __VA_ARGS__); \
    }                                                                    \
  } while (0)

#endif  // SKERN_OBS_COMPILED_OUT

#endif  // SKERN_SRC_OBS_TRACE_H_
