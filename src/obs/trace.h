// Static tracepoints: an ftrace-inspired event stream for the safety kernel.
//
//   SKERN_TRACE("vfs", "write", fd, bytes);
//
// Each macro site interns its (subsys, event) pair once, then writes a
// fixed-size 32-byte record into a per-thread lock-free ring buffer. A global
// TraceSession can start/stop collection and drain every thread's buffer into
// one stream merged by timestamp.
//
// Cost model (the property bench/trace_overhead verifies):
//   - disabled: one relaxed atomic load and a predicted-untaken branch;
//   - enabled: timestamp read + one SPSC ring push (no locks, no allocation);
//   - compiled out (SKERN_OBS_COMPILED_OUT): nothing.
//
// Timestamps default to monotonic wall nanoseconds. Simulations that want
// deterministic, fast-forwardable traces can point the tracer at their
// SimClock (SetTraceClock); records then carry simulated nanoseconds and the
// merge stays meaningful across the simulation's threads.
#ifndef SKERN_SRC_OBS_TRACE_H_
#define SKERN_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/trace_clock.h"

namespace skern {
namespace obs {

// One trace event. Fixed-size so ring slots never allocate or tear across
// cache lines in interesting ways: 32 bytes, trivially copyable.
struct TraceRecord {
  uint64_t ts;        // nanoseconds (wall-monotonic or SimClock)
  uint32_t tid;       // small per-thread id assigned at first trace
  uint16_t event_id;  // interned (subsys, event)
  uint16_t reserved;  // padding, always 0
  uint64_t arg0;
  uint64_t arg1;
};
static_assert(sizeof(TraceRecord) == 32, "trace records must stay fixed-size");

namespace internal {

extern std::atomic<bool> g_trace_enabled;

}  // namespace internal

// True if a trace session is collecting. This is the whole disabled-path
// cost: one relaxed load, then the caller's branch.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

// Interns a (subsys, event) name pair; returns a dense id. Called once per
// macro site via a function-local static. Thread-safe.
uint16_t InternTraceEvent(const char* subsys, const char* event);

// "subsys.event" for an interned id ("?" if unknown).
std::string TraceEventName(uint16_t id);

// Appends one record to the calling thread's ring buffer (registering the
// thread on first use). No-op when tracing is disabled.
void EmitTrace(uint16_t event_id, uint64_t arg0 = 0, uint64_t arg1 = 0);

// Routes timestamps to an alternate clock (nullptr restores wall time).
// The clock must outlive tracing and its TraceNowNs must tolerate concurrent
// readers; SimClock implements the interface for deterministic simulations.
void SetTraceClock(const TraceClock* clock);

// Global trace collection: start/stop/drain. One session per process; the
// per-thread buffers are created lazily and live for the process lifetime.
class TraceSession {
 public:
  static TraceSession& Get();

  // Starts collecting (idempotent). Records emitted before Start are gone —
  // buffers are drained/cleared here so a session begins empty.
  void Start();

  // Stops collecting (idempotent); already-buffered records stay drainable.
  void Stop();

  bool active() const { return TraceEnabled(); }

  // Merges every thread's buffered records, ordered by (ts, tid). With
  // `consume` (the default, trace_pipe semantics) the buffers are emptied;
  // without it the records remain for the next drain.
  std::vector<TraceRecord> Drain(bool consume = true);

  // Records dropped on ring overflow since the last Start (all threads).
  uint64_t dropped() const;

  // Stops tracing, empties all buffers, zeroes drop counters.
  void ResetForTesting();
};

// Human-readable dump: "ts tid subsys.event arg0 arg1" per line.
std::string RenderTraceText(const std::vector<TraceRecord>& records);

}  // namespace obs
}  // namespace skern

// The tracepoint macro. Subsys/event must be string literals (they are
// interned once). Up to two integral payload args are captured.
#ifdef SKERN_OBS_COMPILED_OUT

#define SKERN_TRACE(subsys, event, ...) \
  do {                                  \
  } while (0)

#else

#define SKERN_TRACE(subsys, event, ...)                                  \
  do {                                                                   \
    if (::skern::obs::TraceEnabled()) [[unlikely]] {                     \
      static const uint16_t skern_trace_id_ =                            \
          ::skern::obs::InternTraceEvent(subsys, event);                 \
      ::skern::obs::EmitTrace(skern_trace_id_ __VA_OPT__(, ) __VA_ARGS__); \
    }                                                                    \
  } while (0)

#endif  // SKERN_OBS_COMPILED_OUT

#endif  // SKERN_SRC_OBS_TRACE_H_
