// Timestamp source abstraction for the tracer.
//
// The obs layer sits at the bottom of the module DAG (layers.toml): it may
// not reach up into src/base for SimClock. Instead the tracer consumes this
// minimal interface and clocks that want deterministic traces (SimClock)
// implement it — the dependency points downward, base -> obs.
#ifndef SKERN_SRC_OBS_TRACE_CLOCK_H_
#define SKERN_SRC_OBS_TRACE_CLOCK_H_

#include <cstdint>

namespace skern {
namespace obs {

// A monotonic nanosecond clock the tracer can sample from any thread.
// Implementations must make TraceNowNs() safe to call concurrently with
// whatever advances the clock.
class TraceClock {
 public:
  virtual ~TraceClock() = default;
  virtual uint64_t TraceNowNs() const = 0;
};

}  // namespace obs
}  // namespace skern

#endif  // SKERN_SRC_OBS_TRACE_CLOCK_H_
