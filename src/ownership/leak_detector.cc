#include "src/ownership/leak_detector.h"

#include "src/ownership/ownership.h"

namespace skern {

LeakDetector& LeakDetector::Get() {
  static LeakDetector* detector = new LeakDetector();
  return *detector;
}

uint64_t LeakDetector::OnAlloc(const std::string& label, size_t size) {
  MutexGuard guard(mutex_);
  uint64_t ticket = next_ticket_++;
  live_[ticket] = Allocation{label, size};
  return ticket;
}

void LeakDetector::OnFree(uint64_t ticket) {
  MutexGuard guard(mutex_);
  live_.erase(ticket);
}

size_t LeakDetector::LiveCount() const {
  MutexGuard guard(mutex_);
  return live_.size();
}

size_t LeakDetector::LiveBytes() const {
  MutexGuard guard(mutex_);
  size_t total = 0;
  for (const auto& [ticket, alloc] : live_) {
    total += alloc.size;
  }
  return total;
}

std::vector<std::string> LeakDetector::LiveLabels() const {
  MutexGuard guard(mutex_);
  std::vector<std::string> labels;
  labels.reserve(live_.size());
  for (const auto& [ticket, alloc] : live_) {
    labels.push_back(alloc.label);
  }
  return labels;
}

void LeakDetector::RegisterCensusSource(const std::string& name,
                                        CensusSource source) {
  MutexGuard guard(mutex_);
  census_sources_[name] = source;
}

std::vector<CensusEntry> LeakDetector::CensusSnapshot() const {
  std::vector<CensusSource> sources;
  {
    MutexGuard guard(mutex_);
    sources.reserve(census_sources_.size());
    for (const auto& [name, source] : census_sources_) {
      sources.push_back(source);
    }
  }
  // Sources run unlocked: they take subsystem locks (slab depot/registry)
  // that must never nest inside ownership.leaks.
  std::vector<CensusEntry> entries;
  for (CensusSource source : sources) {
    std::vector<CensusEntry> part = source();
    entries.insert(entries.end(), part.begin(), part.end());
  }
  return entries;
}

std::vector<std::string> LeakDetector::ShutdownCensusReport() const {
  std::vector<std::string> lines;
  for (const CensusEntry& e : CensusSnapshot()) {
    if (e.live_objects == 0) {
      continue;
    }
    lines.push_back(e.source + " cache=" + e.label +
                    " live=" + std::to_string(e.live_objects) +
                    " obj_size=" + std::to_string(e.obj_size));
  }
  return lines;
}

void LeakDetector::ResetForTesting() {
  MutexGuard guard(mutex_);
  live_.clear();
}

LeakScope::LeakScope() {
  // Watermark: tickets issued before the scope began are outside it.
  auto& detector = LeakDetector::Get();
  MutexGuard guard(detector.mutex_);
  watermark_ = detector.next_ticket_;
}

LeakScope::~LeakScope() {
  size_t leaks = PendingLeaks();
  for (size_t i = 0; i < leaks; ++i) {
    internal::ReportOwnershipViolation(OwnershipViolation::kLeak,
                                       "allocation outlived its LeakScope");
  }
}

size_t LeakScope::PendingLeaks() const {
  auto& detector = LeakDetector::Get();
  MutexGuard guard(detector.mutex_);
  size_t count = 0;
  for (const auto& [ticket, alloc] : detector.live_) {
    if (ticket >= watermark_) {
      ++count;
    }
  }
  return count;
}

}  // namespace skern
