#include "src/ownership/leak_detector.h"

#include "src/ownership/ownership.h"

namespace skern {

LeakDetector& LeakDetector::Get() {
  static LeakDetector* detector = new LeakDetector();
  return *detector;
}

uint64_t LeakDetector::OnAlloc(const std::string& label, size_t size) {
  MutexGuard guard(mutex_);
  uint64_t ticket = next_ticket_++;
  live_[ticket] = Allocation{label, size};
  return ticket;
}

void LeakDetector::OnFree(uint64_t ticket) {
  MutexGuard guard(mutex_);
  live_.erase(ticket);
}

size_t LeakDetector::LiveCount() const {
  MutexGuard guard(mutex_);
  return live_.size();
}

size_t LeakDetector::LiveBytes() const {
  MutexGuard guard(mutex_);
  size_t total = 0;
  for (const auto& [ticket, alloc] : live_) {
    total += alloc.size;
  }
  return total;
}

std::vector<std::string> LeakDetector::LiveLabels() const {
  MutexGuard guard(mutex_);
  std::vector<std::string> labels;
  labels.reserve(live_.size());
  for (const auto& [ticket, alloc] : live_) {
    labels.push_back(alloc.label);
  }
  return labels;
}

void LeakDetector::ResetForTesting() {
  MutexGuard guard(mutex_);
  live_.clear();
}

LeakScope::LeakScope() {
  // Watermark: tickets issued before the scope began are outside it.
  auto& detector = LeakDetector::Get();
  MutexGuard guard(detector.mutex_);
  watermark_ = detector.next_ticket_;
}

LeakScope::~LeakScope() {
  size_t leaks = PendingLeaks();
  for (size_t i = 0; i < leaks; ++i) {
    internal::ReportOwnershipViolation(OwnershipViolation::kLeak,
                                       "allocation outlived its LeakScope");
  }
}

size_t LeakScope::PendingLeaks() const {
  auto& detector = LeakDetector::Get();
  MutexGuard guard(detector.mutex_);
  size_t count = 0;
  for (const auto& [ticket, alloc] : detector.live_) {
    if (ticket >= watermark_) {
      ++count;
    }
  }
  return count;
}

}  // namespace skern
