// Allocation-scope leak detection.
//
// Ownership safety promises freedom from memory leaks (§3 step 3: "from NULL
// pointer dereferences to buffer overruns to memory leaks to data races").
// RAII makes leaks impossible for well-typed code; the legacy module and the
// fault injector can still leak through raw allocation. The LeakDetector
// gives both sides a common ledger: allocations registered here must be
// released before the enclosing LeakScope closes.
#ifndef SKERN_SRC_OWNERSHIP_LEAK_DETECTOR_H_
#define SKERN_SRC_OWNERSHIP_LEAK_DETECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sync/mutex.h"

namespace skern {

// One line of a subsystem census: how many objects a pool that manages its
// own memory (e.g. a slab cache) still holds live under a given label.
struct CensusEntry {
  std::string source;        // registering subsystem, e.g. "mem.slab"
  std::string label;         // per-pool label, e.g. cache name
  uint64_t live_objects = 0;
  uint64_t obj_size = 0;
};

class LeakDetector {
 public:
  static LeakDetector& Get();

  // Registers a live allocation under a label (e.g. "legacyfs.inode").
  // Returns a ticket to pass to OnFree.
  uint64_t OnAlloc(const std::string& label, size_t size);
  void OnFree(uint64_t ticket);

  // Number of currently-live registered allocations.
  size_t LiveCount() const;
  size_t LiveBytes() const;

  // Labels of currently-live allocations (for reporting).
  std::vector<std::string> LiveLabels() const;

  // Census sources extend the ledger to subsystems that pool their own
  // memory and can only report aggregate in-use counts (the slab allocator
  // registers one per process). Sources are plain function pointers so
  // registration cannot itself allocate through the pool being censused.
  // Snapshot copies the source list under the mutex but invokes the sources
  // unlocked: a source is free to take its own subsystem locks.
  using CensusSource = std::vector<CensusEntry> (*)();
  void RegisterCensusSource(const std::string& name, CensusSource source);
  std::vector<CensusEntry> CensusSnapshot() const;

  // The shutdown census: one formatted line per census entry with live
  // objects ("<source> cache=<label> live=<n> obj_size=<s>"), for panic /
  // process-exit reporting and the leak regression tests.
  std::vector<std::string> ShutdownCensusReport() const;

  void ResetForTesting();

 private:
  friend class LeakScope;

  LeakDetector() = default;

  struct Allocation {
    std::string label;
    size_t size;
  };

  mutable TrackedMutex mutex_{"ownership.leaks"};
  std::map<uint64_t, Allocation> live_ SKERN_GUARDED_BY(mutex_);
  uint64_t next_ticket_ SKERN_GUARDED_BY(mutex_) = 1;
  std::map<std::string, CensusSource> census_sources_ SKERN_GUARDED_BY(mutex_);
};

// RAII scope: captures the live set at construction; anything still live at
// destruction that was allocated inside the scope is counted as a leak and
// reported through OwnershipStats (kLeak).
class LeakScope {
 public:
  LeakScope();
  ~LeakScope();

  LeakScope(const LeakScope&) = delete;
  LeakScope& operator=(const LeakScope&) = delete;

  // Leaks detected so far if the scope were to close now.
  size_t PendingLeaks() const;

 private:
  uint64_t watermark_;
};

}  // namespace skern

#endif  // SKERN_SRC_OWNERSHIP_LEAK_DETECTOR_H_
