// Allocation-scope leak detection.
//
// Ownership safety promises freedom from memory leaks (§3 step 3: "from NULL
// pointer dereferences to buffer overruns to memory leaks to data races").
// RAII makes leaks impossible for well-typed code; the legacy module and the
// fault injector can still leak through raw allocation. The LeakDetector
// gives both sides a common ledger: allocations registered here must be
// released before the enclosing LeakScope closes.
#ifndef SKERN_SRC_OWNERSHIP_LEAK_DETECTOR_H_
#define SKERN_SRC_OWNERSHIP_LEAK_DETECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sync/mutex.h"

namespace skern {

class LeakDetector {
 public:
  static LeakDetector& Get();

  // Registers a live allocation under a label (e.g. "legacyfs.inode").
  // Returns a ticket to pass to OnFree.
  uint64_t OnAlloc(const std::string& label, size_t size);
  void OnFree(uint64_t ticket);

  // Number of currently-live registered allocations.
  size_t LiveCount() const;
  size_t LiveBytes() const;

  // Labels of currently-live allocations (for reporting).
  std::vector<std::string> LiveLabels() const;

  void ResetForTesting();

 private:
  friend class LeakScope;

  LeakDetector() = default;

  struct Allocation {
    std::string label;
    size_t size;
  };

  mutable TrackedMutex mutex_{"ownership.leaks"};
  std::map<uint64_t, Allocation> live_ SKERN_GUARDED_BY(mutex_);
  uint64_t next_ticket_ SKERN_GUARDED_BY(mutex_) = 1;
};

// RAII scope: captures the live set at construction; anything still live at
// destruction that was allocated inside the scope is counted as a leak and
// reported through OwnershipStats (kLeak).
class LeakScope {
 public:
  LeakScope();
  ~LeakScope();

  LeakScope(const LeakScope&) = delete;
  LeakScope& operator=(const LeakScope&) = delete;

  // Leaks detected so far if the scope were to close now.
  size_t PendingLeaks() const;

 private:
  uint64_t watermark_;
};

}  // namespace skern

#endif  // SKERN_SRC_OWNERSHIP_LEAK_DETECTOR_H_
