// Owned<T> and the three ownership-sharing models of §4.3.
//
// The paper's interface contracts, restated as the runtime state machine each
// cell enforces:
//
//   model 1  Transferred<T>   "Memory ownership is passed. The caller can no
//                              longer access the memory. The callee must free
//                              the memory."
//   model 2  ExclusiveLend<T> "Exclusive rights to the whole memory region are
//                              passed. The caller cannot access the memory
//                              until the call returns. The callee can mutate
//                              the memory but not free it and cannot access
//                              the memory after the call returns."
//   model 3  SharedLend<T>    "Non-exclusive rights ... The caller, callee,
//                              and others can read the memory, but none can
//                              mutate the memory until the call returns."
//
// None of the models copies the payload — they hand out views into the same
// cell, which is the paper's "semantically equivalent to message passing ...
// but share memory for performance" point (measured by bench/ownership_models
// against a copying baseline).
//
// Enforcement mechanics: a cell carries
//   * a borrow word   (0 free, -1 exclusive lend, n > 0 shared lends),
//   * a lifecycle     (alive / freed), and
//   * an owner token  (which Owned handle currently has ownership rights).
// Handles keep the cell block alive via shared ownership so that the checker
// can *detect* use-after-free and use-after-transfer instead of committing
// them itself; "freed" is a lifecycle fact, not a deallocation.
//
// Breaching a contract reports an OwnershipViolation: panic in checked mode,
// counted in recording mode, skipped in unchecked mode (the ablation).
#ifndef SKERN_SRC_OWNERSHIP_OWNED_H_
#define SKERN_SRC_OWNERSHIP_OWNED_H_

#include <atomic>
#include <memory>
#include <utility>

#include "src/base/panic.h"
#include "src/ownership/ownership.h"

namespace skern {

template <typename T>
class Transferred;
template <typename T>
class ExclusiveLend;
template <typename T>
class SharedLend;

namespace internal {

// Process-unique ownership tokens.
uint64_t NextOwnerToken();

enum class CellLifecycle : uint8_t {
  kAlive = 0,
  kFreed = 1,
};

// Borrow word: 0 = no lends, -1 = exclusive lend, n > 0 = n shared lends.
inline constexpr int32_t kExclusiveBorrow = -1;

template <typename T>
struct Cell {
  template <typename... Args>
  explicit Cell(Args&&... args) : value(std::forward<Args>(args)...) {}

  T value;
  std::atomic<int32_t> borrow{0};
  std::atomic<CellLifecycle> lifecycle{CellLifecycle::kAlive};
  std::atomic<uint64_t> owner_token{0};
};

}  // namespace internal

// The owning handle. Move-only; the destructor releases the payload. All
// lends and transfers originate here.
template <typename T>
class Owned {
 public:
  template <typename... Args>
  static Owned Make(Args&&... args) {
    auto cell = std::make_shared<internal::Cell<T>>(std::forward<Args>(args)...);
    uint64_t token = internal::NextOwnerToken();
    cell->owner_token.store(token, std::memory_order_release);
    return Owned(std::move(cell), token);
  }

  explicit Owned(T value) : Owned(Make(std::move(value))) {}

  Owned(Owned&& other) noexcept : cell_(std::move(other.cell_)), token_(other.token_) {}
  Owned& operator=(Owned&& other) noexcept {
    if (this != &other) {
      ReleaseOwnership();
      cell_ = std::move(other.cell_);
      token_ = other.token_;
    }
    return *this;
  }

  Owned(const Owned&) = delete;
  Owned& operator=(const Owned&) = delete;

  ~Owned() { ReleaseOwnership(); }

  // True if this handle currently owns a live cell.
  bool valid() const {
    return cell_ != nullptr &&
           cell_->lifecycle.load(std::memory_order_acquire) == internal::CellLifecycle::kAlive &&
           cell_->owner_token.load(std::memory_order_acquire) == token_;
  }

  // Owner read access. Allowed during shared lends; forbidden during an
  // exclusive lend and after transfer/free.
  const T& Get() const {
    SKERN_CHECK_MSG(cell_ != nullptr, "access through a moved-from Owned handle");
    if (GetOwnershipMode() != OwnershipMode::kUnchecked) {
      CheckReadable("Owned::Get");
    }
    return cell_->value;
  }

  // Owner mutable access. Forbidden during any lend and after transfer/free.
  T& GetMut() {
    SKERN_CHECK_MSG(cell_ != nullptr, "access through a moved-from Owned handle");
    if (GetOwnershipMode() != OwnershipMode::kUnchecked) {
      CheckWritable("Owned::GetMut");
    }
    return cell_->value;
  }

  const T& operator*() const { return Get(); }
  const T* operator->() const { return &Get(); }

  // Model 2: lends exclusive mutate rights for the lend's lifetime.
  ExclusiveLend<T> LendExclusive();

  // Model 3: lends shared read rights; any number may coexist.
  SharedLend<T> LendShared() const;

  // Model 1: passes ownership out of this handle. This handle goes stale
  // (further access is a use-after-transfer violation); the Transferred
  // value must be Accept()ed by the new owner, who then frees it.
  Transferred<T> Transfer();

  // Explicitly frees the payload now. Freeing twice is a double-free
  // violation; freeing with lends outstanding is a use-after-free hazard.
  void Free() {
    if (cell_ == nullptr) {
      return;
    }
    if (GetOwnershipMode() == OwnershipMode::kUnchecked) {
      cell_.reset();
      return;
    }
    auto life = cell_->lifecycle.load(std::memory_order_acquire);
    if (life == internal::CellLifecycle::kFreed) {
      internal::ReportOwnershipViolation(OwnershipViolation::kDoubleFree, "Owned::Free");
      return;
    }
    if (cell_->owner_token.load(std::memory_order_acquire) != token_) {
      internal::ReportOwnershipViolation(OwnershipViolation::kUseAfterTransfer,
                                         "Owned::Free after transfer");
      return;
    }
    if (cell_->borrow.load(std::memory_order_acquire) != 0) {
      internal::ReportOwnershipViolation(OwnershipViolation::kUseAfterFree,
                                         "freeing a cell with outstanding lends");
    }
    cell_->lifecycle.store(internal::CellLifecycle::kFreed, std::memory_order_release);
  }

 private:
  template <typename U>
  friend class Transferred;
  template <typename U>
  friend class ExclusiveLend;
  template <typename U>
  friend class SharedLend;

  Owned(std::shared_ptr<internal::Cell<T>> cell, uint64_t token)
      : cell_(std::move(cell)), token_(token) {}

  // Destructor/assignment path: frees only if this handle still owns.
  void ReleaseOwnership() {
    if (cell_ == nullptr) {
      return;
    }
    if (GetOwnershipMode() != OwnershipMode::kUnchecked &&
        cell_->owner_token.load(std::memory_order_acquire) == token_ &&
        cell_->lifecycle.load(std::memory_order_acquire) == internal::CellLifecycle::kAlive) {
      if (cell_->borrow.load(std::memory_order_acquire) != 0) {
        internal::ReportOwnershipViolation(OwnershipViolation::kUseAfterFree,
                                           "owner destroyed with outstanding lends");
      }
      cell_->lifecycle.store(internal::CellLifecycle::kFreed, std::memory_order_release);
    }
    cell_.reset();
  }

  void CheckReadable(const char* who) const {
    if (cell_->lifecycle.load(std::memory_order_acquire) == internal::CellLifecycle::kFreed) {
      internal::ReportOwnershipViolation(OwnershipViolation::kUseAfterFree, who);
      return;
    }
    if (cell_->owner_token.load(std::memory_order_acquire) != token_) {
      internal::ReportOwnershipViolation(OwnershipViolation::kUseAfterTransfer, who);
      return;
    }
    if (cell_->borrow.load(std::memory_order_acquire) == internal::kExclusiveBorrow) {
      internal::ReportOwnershipViolation(OwnershipViolation::kUseWhileLentExclusive, who);
    }
  }

  void CheckWritable(const char* who) const {
    if (cell_->lifecycle.load(std::memory_order_acquire) == internal::CellLifecycle::kFreed) {
      internal::ReportOwnershipViolation(OwnershipViolation::kUseAfterFree, who);
      return;
    }
    if (cell_->owner_token.load(std::memory_order_acquire) != token_) {
      internal::ReportOwnershipViolation(OwnershipViolation::kUseAfterTransfer, who);
      return;
    }
    int32_t borrow = cell_->borrow.load(std::memory_order_acquire);
    if (borrow == internal::kExclusiveBorrow) {
      internal::ReportOwnershipViolation(OwnershipViolation::kUseWhileLentExclusive, who);
    } else if (borrow > 0) {
      internal::ReportOwnershipViolation(OwnershipViolation::kMutateWhileShared, who);
    }
  }

  std::shared_ptr<internal::Cell<T>> cell_;
  uint64_t token_ = 0;
};

// Model 2 handle. RAII: rights return to the owner when the lend dies.
template <typename T>
class ExclusiveLend {
 public:
  ExclusiveLend(ExclusiveLend&& other) noexcept
      : cell_(std::move(other.cell_)), holds_(other.holds_) {
    other.holds_ = false;
  }
  ExclusiveLend& operator=(ExclusiveLend&&) = delete;
  ExclusiveLend(const ExclusiveLend&) = delete;
  ExclusiveLend& operator=(const ExclusiveLend&) = delete;

  ~ExclusiveLend() {
    if (holds_) {
      cell_->borrow.store(0, std::memory_order_release);
    }
  }

  T& operator*() const { return cell_->value; }
  T* operator->() const { return &cell_->value; }
  T& Get() const { return cell_->value; }

 private:
  friend class Owned<T>;

  explicit ExclusiveLend(std::shared_ptr<internal::Cell<T>> cell) : cell_(std::move(cell)) {
    if (GetOwnershipMode() == OwnershipMode::kUnchecked) {
      return;
    }
    int32_t expected = 0;
    if (cell_->borrow.compare_exchange_strong(expected, internal::kExclusiveBorrow,
                                              std::memory_order_acq_rel)) {
      holds_ = true;
    } else {
      // Someone else holds rights: a would-be data race, caught here. This
      // lend proceeds without the reservation (recording mode) so the dtor
      // must not clobber the real holder's state.
      internal::ReportOwnershipViolation(
          expected > 0 ? OwnershipViolation::kMutateWhileShared
                       : OwnershipViolation::kUseWhileLentExclusive,
          "ExclusiveLend while other lends outstanding");
    }
  }

  std::shared_ptr<internal::Cell<T>> cell_;
  bool holds_ = false;
};

// Model 3 handle. Read-only; any number may coexist.
template <typename T>
class SharedLend {
 public:
  SharedLend(SharedLend&& other) noexcept : cell_(std::move(other.cell_)), holds_(other.holds_) {
    other.holds_ = false;
  }
  SharedLend& operator=(SharedLend&&) = delete;
  SharedLend(const SharedLend&) = delete;
  SharedLend& operator=(const SharedLend&) = delete;

  ~SharedLend() {
    if (holds_) {
      cell_->borrow.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  const T& operator*() const { return cell_->value; }
  const T* operator->() const { return &cell_->value; }
  const T& Get() const { return cell_->value; }

 private:
  friend class Owned<T>;

  explicit SharedLend(std::shared_ptr<internal::Cell<T>> cell) : cell_(std::move(cell)) {
    if (GetOwnershipMode() == OwnershipMode::kUnchecked) {
      return;
    }
    for (;;) {
      int32_t cur = cell_->borrow.load(std::memory_order_acquire);
      if (cur < 0) {
        internal::ReportOwnershipViolation(OwnershipViolation::kUseWhileLentExclusive,
                                           "SharedLend during an exclusive lend");
        return;  // proceed without a reservation
      }
      if (cell_->borrow.compare_exchange_weak(cur, cur + 1, std::memory_order_acq_rel)) {
        holds_ = true;
        return;
      }
    }
  }

  std::shared_ptr<internal::Cell<T>> cell_;
  bool holds_ = false;
};

// Model 1 in-flight value. Must be Accept()ed exactly once; dropping it
// unconsumed is a violation (the callee, per the contract, was responsible
// for the memory and never took it).
template <typename T>
class Transferred {
 public:
  Transferred(Transferred&& other) noexcept
      : cell_(std::move(other.cell_)), token_(other.token_) {}
  Transferred& operator=(Transferred&&) = delete;
  Transferred(const Transferred&) = delete;
  Transferred& operator=(const Transferred&) = delete;

  ~Transferred() {
    if (cell_ != nullptr && GetOwnershipMode() != OwnershipMode::kUnchecked) {
      internal::ReportOwnershipViolation(OwnershipViolation::kUnconsumedTransfer,
                                         "Transferred dropped without Accept()");
      cell_->lifecycle.store(internal::CellLifecycle::kFreed, std::memory_order_release);
    }
  }

  // The new owner takes over; its Owned handle is now responsible for the
  // payload's lifetime.
  Owned<T> Accept() {
    SKERN_CHECK_MSG(cell_ != nullptr, "Accept() on an empty Transferred");
    return Owned<T>(std::move(cell_), token_);
  }

 private:
  friend class Owned<T>;

  Transferred(std::shared_ptr<internal::Cell<T>> cell, uint64_t token)
      : cell_(std::move(cell)), token_(token) {}

  std::shared_ptr<internal::Cell<T>> cell_;
  uint64_t token_;
};

template <typename T>
ExclusiveLend<T> Owned<T>::LendExclusive() {
  SKERN_CHECK_MSG(cell_ != nullptr, "lend from a moved-from Owned handle");
  if (GetOwnershipMode() != OwnershipMode::kUnchecked) {
    // Lending requires live ownership; the lend ctor handles borrow conflicts.
    if (cell_->lifecycle.load(std::memory_order_acquire) == internal::CellLifecycle::kFreed) {
      internal::ReportOwnershipViolation(OwnershipViolation::kUseAfterFree,
                                         "Owned::LendExclusive");
    } else if (cell_->owner_token.load(std::memory_order_acquire) != token_) {
      internal::ReportOwnershipViolation(OwnershipViolation::kUseAfterTransfer,
                                         "Owned::LendExclusive");
    }
  }
  return ExclusiveLend<T>(cell_);
}

template <typename T>
SharedLend<T> Owned<T>::LendShared() const {
  SKERN_CHECK_MSG(cell_ != nullptr, "lend from a moved-from Owned handle");
  if (GetOwnershipMode() != OwnershipMode::kUnchecked) {
    if (cell_->lifecycle.load(std::memory_order_acquire) == internal::CellLifecycle::kFreed) {
      internal::ReportOwnershipViolation(OwnershipViolation::kUseAfterFree, "Owned::LendShared");
    } else if (cell_->owner_token.load(std::memory_order_acquire) != token_) {
      internal::ReportOwnershipViolation(OwnershipViolation::kUseAfterTransfer,
                                         "Owned::LendShared");
    }
  }
  return SharedLend<T>(cell_);
}

template <typename T>
Transferred<T> Owned<T>::Transfer() {
  SKERN_CHECK_MSG(cell_ != nullptr, "transfer from a moved-from Owned handle");
  uint64_t new_token = internal::NextOwnerToken();
  if (GetOwnershipMode() != OwnershipMode::kUnchecked) {
    CheckWritable("Owned::Transfer");
  }
  cell_->owner_token.store(new_token, std::memory_order_release);
  // This handle keeps a reference (so stale access is detectable and memory-
  // safe) but no longer matches the owner token.
  return Transferred<T>(cell_, new_token);
}

}  // namespace skern

#endif  // SKERN_SRC_OWNERSHIP_OWNED_H_
