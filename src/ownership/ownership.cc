#include "src/ownership/ownership.h"

#include "src/base/panic.h"
#include "src/obs/trace.h"

namespace skern {
namespace {

std::atomic<OwnershipMode> g_mode{OwnershipMode::kChecked};

}  // namespace

OwnershipMode GetOwnershipMode() { return g_mode.load(std::memory_order_relaxed); }

void SetOwnershipMode(OwnershipMode mode) { g_mode.store(mode, std::memory_order_relaxed); }

ScopedOwnershipMode::ScopedOwnershipMode(OwnershipMode mode) : previous_(GetOwnershipMode()) {
  SetOwnershipMode(mode);
}

ScopedOwnershipMode::~ScopedOwnershipMode() { SetOwnershipMode(previous_); }

const char* OwnershipViolationName(OwnershipViolation v) {
  switch (v) {
    case OwnershipViolation::kUseAfterTransfer:
      return "use-after-transfer";
    case OwnershipViolation::kUseWhileLentExclusive:
      return "use-while-lent-exclusive";
    case OwnershipViolation::kMutateWhileShared:
      return "mutate-while-shared";
    case OwnershipViolation::kUseAfterFree:
      return "use-after-free";
    case OwnershipViolation::kDoubleFree:
      return "double-free";
    case OwnershipViolation::kLeak:
      return "leak";
    case OwnershipViolation::kUnconsumedTransfer:
      return "unconsumed-transfer";
    case OwnershipViolation::kCount:
      break;
  }
  return "unknown-violation";
}

OwnershipStats::OwnershipStats() {
  for (size_t i = 0; i < counters_.size(); ++i) {
    std::string name = std::string("ownership.") +
                       OwnershipViolationName(static_cast<OwnershipViolation>(i));
    counters_[i] = &obs::MetricsRegistry::Get().GetCounter(name);
  }
}

OwnershipStats& OwnershipStats::Get() {
  static OwnershipStats* stats = new OwnershipStats();
  return *stats;
}

void OwnershipStats::Record(OwnershipViolation v) {
  counters_[static_cast<size_t>(v)]->Inc();
}

uint64_t OwnershipStats::Count(OwnershipViolation v) const {
  return counters_[static_cast<size_t>(v)]->Value();
}

uint64_t OwnershipStats::Total() const {
  uint64_t total = 0;
  for (const auto* c : counters_) {
    total += c->Value();
  }
  return total;
}

void OwnershipStats::ResetForTesting() {
  for (auto* c : counters_) {
    c->ResetForTesting();
  }
}

namespace internal {

uint64_t NextOwnerToken() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

void ReportOwnershipViolation(OwnershipViolation v, const char* detail) {
  SKERN_TRACE("ownership", "violation", static_cast<uint64_t>(v));
  OwnershipStats::Get().Record(v);
  if (GetOwnershipMode() == OwnershipMode::kChecked) {
    Panic(std::string("ownership violation: ") + OwnershipViolationName(v) + ": " + detail);
  }
}

}  // namespace internal
}  // namespace skern
