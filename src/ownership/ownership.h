// Ownership-safety runtime: configuration, violation kinds, statistics.
//
// §4.3 proposes interfaces "semantically equivalent to message passing
// interfaces but [that] share memory for performance reasons", with three
// sharing models:
//   (1) ownership is passed: the caller can no longer access the memory and
//       the callee must free it                      -> Transferred<T>
//   (2) exclusive rights are passed for the call:    -> ExclusiveLend<T>
//   (3) non-exclusive read rights are passed:        -> SharedLend<T>
// (see src/ownership/owned.h).
//
// Rust enforces these contracts at compile time. C++ cannot, so skern enforces
// model 1 at compile time via move-only types and models 2/3 at runtime with
// per-cell borrow state. A contract breach is an *ownership violation*: by
// default it panics (the module is "immune to entire classes of bugs" because
// the bug cannot proceed); the fault-injection harness switches to record-only
// mode to count what would have been caught.
//
// The checks can be compiled down to nothing (release semantics) with
// SetOwnershipMode(OwnershipMode::kUnchecked) — the ablation measured by
// bench/ownership_models.
#ifndef SKERN_SRC_OWNERSHIP_OWNERSHIP_H_
#define SKERN_SRC_OWNERSHIP_OWNERSHIP_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "src/obs/metrics.h"

namespace skern {

enum class OwnershipMode : uint8_t {
  kChecked = 0,    // violations panic (production safety posture)
  kRecording = 1,  // violations are counted but execution continues (harness)
  kUnchecked = 2,  // checks are skipped entirely (performance ablation)
};

OwnershipMode GetOwnershipMode();
void SetOwnershipMode(OwnershipMode mode);

// RAII mode override for tests and the fault-injection harness.
class ScopedOwnershipMode {
 public:
  explicit ScopedOwnershipMode(OwnershipMode mode);
  ~ScopedOwnershipMode();
  ScopedOwnershipMode(const ScopedOwnershipMode&) = delete;
  ScopedOwnershipMode& operator=(const ScopedOwnershipMode&) = delete;

 private:
  OwnershipMode previous_;
};

enum class OwnershipViolation : uint8_t {
  kUseAfterTransfer = 0,   // caller touched memory after model-1 handoff
  kUseWhileLentExclusive,  // owner touched memory during a model-2 lend
  kMutateWhileShared,      // anyone mutated during a model-3 lend
  kUseAfterFree,           // access to a destroyed cell
  kDoubleFree,             // cell freed twice
  kLeak,                   // transferred value never consumed/freed
  kUnconsumedTransfer,     // Transferred<T> dropped without Accept()
  kCount,                  // sentinel
};

const char* OwnershipViolationName(OwnershipViolation v);

// Process-wide violation counters, indexed by OwnershipViolation. Each kind
// is a metrics-registry counter named "ownership.<kind>", so /metrics and
// /proc/ownership report identical numbers.
class OwnershipStats {
 public:
  static OwnershipStats& Get();

  void Record(OwnershipViolation v);
  uint64_t Count(OwnershipViolation v) const;
  uint64_t Total() const;
  void ResetForTesting();

 private:
  OwnershipStats();
  std::array<obs::Counter*, static_cast<size_t>(OwnershipViolation::kCount)> counters_{};
};

namespace internal {

// Reports a violation according to the current mode. Returns normally only in
// recording/unchecked modes.
void ReportOwnershipViolation(OwnershipViolation v, const char* detail);

}  // namespace internal
}  // namespace skern

#endif  // SKERN_SRC_OWNERSHIP_OWNERSHIP_H_
