#include "src/spec/fs_model.h"

#include <algorithm>

namespace skern {


FsModel::NodeKind FsModel::KindOf(const FsModelState& s, const std::string& path) const {
  if (s.dirs.count(path) > 0) {
    return NodeKind::kDir;
  }
  if (s.files.count(path) > 0) {
    return NodeKind::kFile;
  }
  return NodeKind::kMissing;
}

Status FsModel::CheckPathPrefix(const std::string& path) const {
  if (path == "/") {
    return Status::Ok();
  }
  // Proper ancestors, shallowest first: for "/a/b/c" check "/a", then "/a/b".
  size_t pos = 1;
  for (;;) {
    size_t next = path.find('/', pos);
    if (next == std::string::npos) {
      return Status::Ok();  // final component is not an ancestor
    }
    std::string ancestor = path.substr(0, next);
    switch (KindOf(state_, ancestor)) {
      case NodeKind::kDir:
        break;
      case NodeKind::kFile:
        return Status::Error(Errno::kENOTDIR);
      case NodeKind::kMissing:
        return Status::Error(Errno::kENOENT);
    }
    pos = next + 1;
  }
}

Status FsModel::Create(const std::string& path) {
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  if (p == "/") {
    return Status::Error(Errno::kEEXIST);
  }
  if (KindOf(state_, p) != NodeKind::kMissing) {
    return Status::Error(Errno::kEEXIST);
  }
  SKERN_RETURN_IF_ERROR(CheckPathPrefix(p));
  FsModelState next = state_;
  next.files[p] = Bytes{};
  state_ = std::move(next);
  return Status::Ok();
}

Status FsModel::Mkdir(const std::string& path) {
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  if (p == "/") {
    return Status::Error(Errno::kEEXIST);
  }
  if (KindOf(state_, p) != NodeKind::kMissing) {
    return Status::Error(Errno::kEEXIST);
  }
  SKERN_RETURN_IF_ERROR(CheckPathPrefix(p));
  FsModelState next = state_;
  next.dirs.insert(p);
  state_ = std::move(next);
  return Status::Ok();
}

Status FsModel::Unlink(const std::string& path) {
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  SKERN_RETURN_IF_ERROR(CheckPathPrefix(p));
  switch (KindOf(state_, p)) {
    case NodeKind::kMissing:
      return Status::Error(Errno::kENOENT);
    case NodeKind::kDir:
      return Status::Error(Errno::kEISDIR);
    case NodeKind::kFile:
      break;
  }
  FsModelState next = state_;
  next.files.erase(p);
  state_ = std::move(next);
  return Status::Ok();
}

Status FsModel::Rmdir(const std::string& path) {
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  SKERN_RETURN_IF_ERROR(CheckPathPrefix(p));
  if (p == "/") {
    return Status::Error(Errno::kEBUSY);
  }
  switch (KindOf(state_, p)) {
    case NodeKind::kMissing:
      return Status::Error(Errno::kENOENT);
    case NodeKind::kFile:
      return Status::Error(Errno::kENOTDIR);
    case NodeKind::kDir:
      break;
  }
  // Any child (file or dir) under p forbids removal.
  for (const auto& [file, bytes] : state_.files) {
    if (specpath::IsPrefix(p, file) && file != p) {
      return Status::Error(Errno::kENOTEMPTY);
    }
  }
  for (const auto& dir : state_.dirs) {
    if (specpath::IsPrefix(p, dir) && dir != p) {
      return Status::Error(Errno::kENOTEMPTY);
    }
  }
  FsModelState next = state_;
  next.dirs.erase(p);
  state_ = std::move(next);
  return Status::Ok();
}

Status FsModel::Write(const std::string& path, uint64_t offset, ByteView data) {
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  SKERN_RETURN_IF_ERROR(CheckPathPrefix(p));
  switch (KindOf(state_, p)) {
    case NodeKind::kMissing:
      return Status::Error(Errno::kENOENT);
    case NodeKind::kDir:
      return Status::Error(Errno::kEISDIR);
    case NodeKind::kFile:
      break;
  }
  FsModelState next = state_;
  Bytes& content = next.files[p];
  uint64_t end = offset + data.size();
  if (content.size() < end) {
    content.resize(end, 0);
  }
  std::copy(data.data(), data.data() + data.size(), content.begin() + offset);
  state_ = std::move(next);
  return Status::Ok();
}

Result<Bytes> FsModel::Read(const std::string& path, uint64_t offset, uint64_t length) const {
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  {
    Status prefix = CheckPathPrefix(p);
    if (!prefix.ok()) {
      return prefix.code();
    }
  }
  switch (KindOf(state_, p)) {
    case NodeKind::kMissing:
      return Errno::kENOENT;
    case NodeKind::kDir:
      return Errno::kEISDIR;
    case NodeKind::kFile:
      break;
  }
  const Bytes& content = state_.files.at(p);
  if (offset >= content.size()) {
    return Bytes{};
  }
  uint64_t avail = content.size() - offset;
  uint64_t take = std::min(length, avail);
  return CopyBytes(content.data() + offset, take);
}

Status FsModel::Truncate(const std::string& path, uint64_t new_size) {
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  SKERN_RETURN_IF_ERROR(CheckPathPrefix(p));
  switch (KindOf(state_, p)) {
    case NodeKind::kMissing:
      return Status::Error(Errno::kENOENT);
    case NodeKind::kDir:
      return Status::Error(Errno::kEISDIR);
    case NodeKind::kFile:
      break;
  }
  FsModelState next = state_;
  next.files[p].resize(new_size, 0);
  state_ = std::move(next);
  return Status::Ok();
}

Status FsModel::Rename(const std::string& from, const std::string& to) {
  SKERN_ASSIGN_OR_RETURN(std::string f, specpath::Normalize(from));
  SKERN_ASSIGN_OR_RETURN(std::string t, specpath::Normalize(to));
  if (f == "/" || t == "/") {
    return Status::Error(Errno::kEBUSY);
  }
  SKERN_RETURN_IF_ERROR(CheckPathPrefix(f));
  NodeKind fk = KindOf(state_, f);
  if (fk == NodeKind::kMissing) {
    return Status::Error(Errno::kENOENT);
  }
  if (f == t) {
    return Status::Ok();
  }
  // Renaming a directory into its own subtree is a cycle.
  if (fk == NodeKind::kDir && specpath::IsPrefix(f, t)) {
    return Status::Error(Errno::kEINVAL);
  }
  SKERN_RETURN_IF_ERROR(CheckPathPrefix(t));
  NodeKind tk = KindOf(state_, t);
  if (fk == NodeKind::kFile) {
    if (tk == NodeKind::kDir) {
      return Status::Error(Errno::kEISDIR);
    }
    FsModelState next = state_;
    next.files[t] = next.files.at(f);
    next.files.erase(f);
    state_ = std::move(next);
    return Status::Ok();
  }
  // Directory rename.
  if (tk == NodeKind::kFile) {
    return Status::Error(Errno::kENOTDIR);
  }
  if (tk == NodeKind::kDir) {
    // Target must be empty.
    for (const auto& [file, bytes] : state_.files) {
      if (specpath::IsPrefix(t, file) && file != t) {
        return Status::Error(Errno::kENOTEMPTY);
      }
    }
    for (const auto& dir : state_.dirs) {
      if (specpath::IsPrefix(t, dir) && dir != t) {
        return Status::Error(Errno::kENOTEMPTY);
      }
    }
  }
  // The paper's worked example: "every path key with a given prefix is
  // substituted with a new prefix". Build the new maps by relation.
  FsModelState next;
  next.dirs.clear();
  for (const auto& dir : state_.dirs) {
    if (specpath::IsPrefix(f, dir)) {
      next.dirs.insert(specpath::SubstitutePrefix(f, t, dir));
    } else if (dir != t) {
      next.dirs.insert(dir);
    }
  }
  next.dirs.insert("/");
  for (const auto& [file, bytes] : state_.files) {
    if (specpath::IsPrefix(f, file)) {
      next.files[specpath::SubstitutePrefix(f, t, file)] = bytes;
    } else {
      next.files[file] = bytes;
    }
  }
  state_ = std::move(next);
  return Status::Ok();
}

Result<ModelAttr> FsModel::Stat(const std::string& path) const {
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  {
    Status prefix = CheckPathPrefix(p);
    if (!prefix.ok()) {
      return prefix.code();
    }
  }
  switch (KindOf(state_, p)) {
    case NodeKind::kMissing:
      return Errno::kENOENT;
    case NodeKind::kDir:
      return ModelAttr{true, 0};
    case NodeKind::kFile:
      return ModelAttr{false, state_.files.at(p).size()};
  }
  return Errno::kEINVAL;
}

Result<std::vector<std::string>> FsModel::Readdir(const std::string& path) const {
  SKERN_ASSIGN_OR_RETURN(std::string p, specpath::Normalize(path));
  {
    Status prefix = CheckPathPrefix(p);
    if (!prefix.ok()) {
      return prefix.code();
    }
  }
  switch (KindOf(state_, p)) {
    case NodeKind::kMissing:
      return Errno::kENOENT;
    case NodeKind::kFile:
      return Errno::kENOTDIR;
    case NodeKind::kDir:
      break;
  }
  std::vector<std::string> names;
  auto consider = [&](const std::string& candidate) {
    if (candidate == p || !specpath::IsPrefix(p, candidate)) {
      return;
    }
    if (specpath::Parent(candidate) == p) {
      names.push_back(specpath::Basename(candidate));
    }
  };
  for (const auto& [file, bytes] : state_.files) {
    consider(file);
  }
  for (const auto& dir : state_.dirs) {
    consider(dir);
  }
  std::sort(names.begin(), names.end());
  return names;
}

void FsModel::Sync() { synced_ = state_; }

void FsModel::Crash() { state_ = synced_; }

uint64_t FsModel::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [file, bytes] : state_.files) {
    total += bytes.size();
  }
  return total;
}

}  // namespace skern
