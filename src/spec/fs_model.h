// Executable file-system specification (§4.4, "Modeling language").
//
// "A file system can be modeled as a map from path strings to file content
// bytes. Similarly, a crash-safe file system can be modeled as a map of path
// strings to file content bytes that is guaranteed to recover to the last
// synced version given any crash."
//
// FsModel is exactly that: an abstract state of immutable values (value-
// semantic maps; every operation produces a new state) plus a remembered
// synced state. Directory rename is the paper's worked example — "a relation
// between old and new maps in which every path key with a given prefix is
// substituted with a new prefix" — implemented literally in Rename().
//
// The model is the *specification*: each operation returns what a correct
// implementation must observe, including the errno for invalid inputs. The
// refinement checker (refinement.h) compares an implementation's behaviour
// against this, operation by operation.
#ifndef SKERN_SRC_SPEC_FS_MODEL_H_
#define SKERN_SRC_SPEC_FS_MODEL_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/path.h"
#include "src/base/result.h"
#include "src/base/status.h"

namespace skern {

// The abstract state: pure values, no sharing with any implementation.
struct FsModelState {
  // Regular files: absolute normalized path -> content bytes.
  std::map<std::string, Bytes> files;
  // Directories, always including "/".
  std::set<std::string> dirs{"/"};

  friend bool operator==(const FsModelState& a, const FsModelState& b) {
    return a.files == b.files && a.dirs == b.dirs;
  }
};

struct ModelAttr {
  bool is_dir = false;
  uint64_t size = 0;
};

// Path helpers shared by the model and the VFS layer now live in
// src/base/path.h (namespace specpath): they are pure string functions and
// the module layering places them below both the spec and the VFS.

// The specification machine. Operations mutate `state()` by replacing it
// with a new value and report the specified observable outcome.
class FsModel {
 public:
  FsModel() = default;

  const FsModelState& state() const { return state_; }
  const FsModelState& synced_state() const { return synced_; }

  // --- specified operations (mirror skern.FileSystem) ---
  Status Create(const std::string& path);
  Status Mkdir(const std::string& path);
  Status Unlink(const std::string& path);
  Status Rmdir(const std::string& path);
  // Writes at offset, zero-filling any gap, extending the file.
  Status Write(const std::string& path, uint64_t offset, ByteView data);
  // Reads up to `length` bytes from offset; short reads at EOF are specified.
  Result<Bytes> Read(const std::string& path, uint64_t offset, uint64_t length) const;
  Status Truncate(const std::string& path, uint64_t new_size);
  Status Rename(const std::string& from, const std::string& to);
  Result<ModelAttr> Stat(const std::string& path) const;
  // Immediate children names, sorted.
  Result<std::vector<std::string>> Readdir(const std::string& path) const;

  // Durability boundary: everything before a Sync must survive a crash after
  // it. (specfs journals data as well as metadata, so the crash contract is
  // exact, not a weaker metadata-only promise.)
  void Sync();

  // Crash: volatile state is lost; the model state reverts to the synced one.
  // The crash oracle asserts a recovered implementation equals this.
  void Crash();

  // Total number of bytes in all files (spec-level df).
  uint64_t TotalBytes() const;

 private:
  // Looks up what `path` names in the current state.
  enum class NodeKind { kMissing, kFile, kDir };
  NodeKind KindOf(const FsModelState& s, const std::string& path) const;

  // Walks the proper ancestors of `path` shallowest-first, as a real lookup
  // does: an ancestor that is a file is ENOTDIR, a missing ancestor is
  // ENOENT. Success implies the immediate parent is an existing directory.
  Status CheckPathPrefix(const std::string& path) const;

  FsModelState state_;
  FsModelState synced_;
};

}  // namespace skern

#endif  // SKERN_SRC_SPEC_FS_MODEL_H_
