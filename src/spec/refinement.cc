#include "src/spec/refinement.h"

#include "src/base/panic.h"

namespace skern {
namespace {

std::atomic<RefinementMode> g_mode{RefinementMode::kEnforcing};

}  // namespace

RefinementMode GetRefinementMode() { return g_mode.load(std::memory_order_relaxed); }

void SetRefinementMode(RefinementMode mode) { g_mode.store(mode, std::memory_order_relaxed); }

ScopedRefinementMode::ScopedRefinementMode(RefinementMode mode) : previous_(GetRefinementMode()) {
  SetRefinementMode(mode);
}

ScopedRefinementMode::~ScopedRefinementMode() { SetRefinementMode(previous_); }

RefinementStats& RefinementStats::Get() {
  static RefinementStats* stats = new RefinementStats();
  return *stats;
}

void RefinementStats::RecordMismatch(const RefinementMismatch& m) {
  MutexGuard guard(mutex_);
  mismatches_.push_back(m);
}

uint64_t RefinementStats::mismatch_count() const {
  MutexGuard guard(mutex_);
  return mismatches_.size();
}

std::vector<RefinementMismatch> RefinementStats::Mismatches() const {
  MutexGuard guard(mutex_);
  return mismatches_;
}

void RefinementStats::ResetForTesting() {
  checks_.store(0, std::memory_order_relaxed);
  MutexGuard guard(mutex_);
  mismatches_.clear();
}

namespace internal {

void ReportRefinementMismatch(const RefinementMismatch& m) {
  RefinementStats::Get().RecordMismatch(m);
  if (GetRefinementMode() == RefinementMode::kEnforcing) {
    Panic("refinement mismatch in " + m.operation + ": spec says " + m.expected +
          ", implementation did " + m.actual);
  }
}

}  // namespace internal

bool CheckRefinement(const std::string& operation, Status specified, Status actual) {
  if (GetRefinementMode() == RefinementMode::kDisabled) {
    return true;
  }
  RefinementStats::Get().RecordCheck();
  if (specified == actual) {
    return true;
  }
  internal::ReportRefinementMismatch(
      RefinementMismatch{operation, specified.ToString(), actual.ToString()});
  return false;
}

}  // namespace skern
