// Refinement checking (§4.4).
//
// "Verification shows that each operation performed by the implementation is
// a valid relation between the before- and after- model interpretations."
// skern's dynamic analogue: every operation runs against both the
// implementation and the FsModel; results (value and errno) must agree.
// Disagreement is a refinement mismatch — either a real bug in the
// implementation or an erroneous axiom/model, exactly the two possibilities
// the paper names for a "buggy-looking" verified module.
#ifndef SKERN_SRC_SPEC_REFINEMENT_H_
#define SKERN_SRC_SPEC_REFINEMENT_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/status.h"
#include "src/sync/mutex.h"

namespace skern {

enum class RefinementMode : uint8_t {
  kEnforcing = 0,  // mismatch panics (unsound to continue)
  kRecording = 1,  // mismatch recorded (fault-injection harness)
  kDisabled = 2,   // checks skipped (release configuration; E9 ablation)
};

RefinementMode GetRefinementMode();
void SetRefinementMode(RefinementMode mode);

class ScopedRefinementMode {
 public:
  explicit ScopedRefinementMode(RefinementMode mode);
  ~ScopedRefinementMode();
  ScopedRefinementMode(const ScopedRefinementMode&) = delete;
  ScopedRefinementMode& operator=(const ScopedRefinementMode&) = delete;

 private:
  RefinementMode previous_;
};

struct RefinementMismatch {
  std::string operation;  // e.g. "write(/a, 0, 16)"
  std::string expected;   // model's observable outcome
  std::string actual;     // implementation's outcome
};

class RefinementStats {
 public:
  static RefinementStats& Get();

  void RecordCheck() { checks_.fetch_add(1, std::memory_order_relaxed); }
  void RecordMismatch(const RefinementMismatch& m);

  uint64_t checks() const { return checks_.load(std::memory_order_relaxed); }
  uint64_t mismatch_count() const;
  std::vector<RefinementMismatch> Mismatches() const;

  void ResetForTesting();

 private:
  RefinementStats() = default;

  std::atomic<uint64_t> checks_{0};
  mutable TrackedMutex mutex_{"spec.refinement"};
  std::vector<RefinementMismatch> mismatches_ SKERN_GUARDED_BY(mutex_);
};

namespace internal {

// Reports a mismatch per the current mode; panics when enforcing.
void ReportRefinementMismatch(const RefinementMismatch& m);

}  // namespace internal

// Compares an implementation outcome against the specified one and reports.
// Returns true when they agree. Statuses compare by code; Results compare by
// code and, on success, by value (operator== of T).
bool CheckRefinement(const std::string& operation, Status specified, Status actual);

template <typename T>
bool CheckRefinement(const std::string& operation, const Result<T>& specified,
                     const Result<T>& actual) {
  if (GetRefinementMode() == RefinementMode::kDisabled) {
    return true;
  }
  RefinementStats::Get().RecordCheck();
  bool agree;
  if (specified.ok() != actual.ok()) {
    agree = false;
  } else if (!specified.ok()) {
    agree = specified.error() == actual.error();
  } else {
    agree = specified.value() == actual.value();
  }
  if (!agree) {
    std::ostringstream expected;
    std::ostringstream got;
    if (specified.ok()) {
      expected << "ok";
    } else {
      expected << specified.status();
    }
    if (actual.ok()) {
      got << "ok(value mismatch or status mismatch)";
    } else {
      got << actual.status();
    }
    internal::ReportRefinementMismatch(
        RefinementMismatch{operation, expected.str(), got.str()});
  }
  return agree;
}

}  // namespace skern

#endif  // SKERN_SRC_SPEC_REFINEMENT_H_
