#include "src/spec/trace.h"

#include <sstream>

namespace skern {

const char* FsOpKindName(FsOpKind kind) {
  switch (kind) {
    case FsOpKind::kCreate:
      return "create";
    case FsOpKind::kMkdir:
      return "mkdir";
    case FsOpKind::kUnlink:
      return "unlink";
    case FsOpKind::kRmdir:
      return "rmdir";
    case FsOpKind::kWrite:
      return "write";
    case FsOpKind::kRead:
      return "read";
    case FsOpKind::kTruncate:
      return "truncate";
    case FsOpKind::kRename:
      return "rename";
    case FsOpKind::kStat:
      return "stat";
    case FsOpKind::kReaddir:
      return "readdir";
    case FsOpKind::kSync:
      return "sync";
    case FsOpKind::kFsync:
      return "fsync";
  }
  return "?";
}

std::string FsOp::Describe() const {
  std::ostringstream os;
  os << FsOpKindName(kind) << "(" << path;
  switch (kind) {
    case FsOpKind::kWrite:
      os << ", " << offset << ", " << data.size() << "B";
      break;
    case FsOpKind::kRead:
      os << ", " << offset << ", " << length;
      break;
    case FsOpKind::kTruncate:
      os << ", " << length;
      break;
    case FsOpKind::kRename:
      os << " -> " << path2;
      break;
    default:
      break;
  }
  os << ") = " << ErrnoName(observed);
  return os.str();
}

Status TracingFs::Create(const std::string& path) {
  Status s = inner_->Create(path);
  trace_.push_back(FsOp{FsOpKind::kCreate, path, "", 0, 0, {}, s.code()});
  return s;
}

Status TracingFs::Mkdir(const std::string& path) {
  Status s = inner_->Mkdir(path);
  trace_.push_back(FsOp{FsOpKind::kMkdir, path, "", 0, 0, {}, s.code()});
  return s;
}

Status TracingFs::Unlink(const std::string& path) {
  Status s = inner_->Unlink(path);
  trace_.push_back(FsOp{FsOpKind::kUnlink, path, "", 0, 0, {}, s.code()});
  return s;
}

Status TracingFs::Rmdir(const std::string& path) {
  Status s = inner_->Rmdir(path);
  trace_.push_back(FsOp{FsOpKind::kRmdir, path, "", 0, 0, {}, s.code()});
  return s;
}

Status TracingFs::Write(const std::string& path, uint64_t offset, ByteView data) {
  Status s = inner_->Write(path, offset, data);
  trace_.push_back(FsOp{FsOpKind::kWrite, path, "", offset, 0, data.ToBytes(), s.code()});
  return s;
}

Result<Bytes> TracingFs::Read(const std::string& path, uint64_t offset, uint64_t length) {
  Result<Bytes> r = inner_->Read(path, offset, length);
  trace_.push_back(
      FsOp{FsOpKind::kRead, path, "", offset, length, {}, r.status().code()});
  return r;
}

Status TracingFs::Truncate(const std::string& path, uint64_t new_size) {
  Status s = inner_->Truncate(path, new_size);
  trace_.push_back(FsOp{FsOpKind::kTruncate, path, "", 0, new_size, {}, s.code()});
  return s;
}

Status TracingFs::Rename(const std::string& from, const std::string& to) {
  Status s = inner_->Rename(from, to);
  trace_.push_back(FsOp{FsOpKind::kRename, from, to, 0, 0, {}, s.code()});
  return s;
}

Result<FileAttr> TracingFs::Stat(const std::string& path) {
  Result<FileAttr> r = inner_->Stat(path);
  trace_.push_back(FsOp{FsOpKind::kStat, path, "", 0, 0, {}, r.status().code()});
  return r;
}

Result<std::vector<std::string>> TracingFs::Readdir(const std::string& path) {
  auto r = inner_->Readdir(path);
  trace_.push_back(FsOp{FsOpKind::kReaddir, path, "", 0, 0, {}, r.status().code()});
  return r;
}

Status TracingFs::Sync() {
  Status s = inner_->Sync();
  trace_.push_back(FsOp{FsOpKind::kSync, "", "", 0, 0, {}, s.code()});
  return s;
}

Status TracingFs::Fsync(const std::string& path) {
  Status s = inner_->Fsync(path);
  trace_.push_back(FsOp{FsOpKind::kFsync, path, "", 0, 0, {}, s.code()});
  return s;
}

std::vector<ReplayDivergence> Replay(const FsTrace& trace, FileSystem& fs) {
  std::vector<ReplayDivergence> divergences;
  for (size_t i = 0; i < trace.size(); ++i) {
    const FsOp& op = trace[i];
    Errno actual = Errno::kOk;
    switch (op.kind) {
      case FsOpKind::kCreate:
        actual = fs.Create(op.path).code();
        break;
      case FsOpKind::kMkdir:
        actual = fs.Mkdir(op.path).code();
        break;
      case FsOpKind::kUnlink:
        actual = fs.Unlink(op.path).code();
        break;
      case FsOpKind::kRmdir:
        actual = fs.Rmdir(op.path).code();
        break;
      case FsOpKind::kWrite:
        actual = fs.Write(op.path, op.offset, ByteView(op.data)).code();
        break;
      case FsOpKind::kRead:
        actual = fs.Read(op.path, op.offset, op.length).status().code();
        break;
      case FsOpKind::kTruncate:
        actual = fs.Truncate(op.path, op.length).code();
        break;
      case FsOpKind::kRename:
        actual = fs.Rename(op.path, op.path2).code();
        break;
      case FsOpKind::kStat:
        actual = fs.Stat(op.path).status().code();
        break;
      case FsOpKind::kReaddir:
        actual = fs.Readdir(op.path).status().code();
        break;
      case FsOpKind::kSync:
        actual = fs.Sync().code();
        break;
      case FsOpKind::kFsync:
        actual = fs.Fsync(op.path).code();
        break;
    }
    if (actual != op.observed) {
      divergences.push_back(ReplayDivergence{i, op.Describe(), op.observed, actual});
    }
  }
  return divergences;
}

std::string RenderTrace(const FsTrace& trace) {
  std::ostringstream os;
  for (size_t i = 0; i < trace.size(); ++i) {
    os << i << ": " << trace[i].Describe() << "\n";
  }
  return os.str();
}

}  // namespace skern
