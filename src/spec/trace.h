// Operation traces: record a FileSystem workload, replay it elsewhere.
//
// The recorder is a FileSystem decorator that logs every call and its
// observed outcome; Replay() re-applies a trace to any implementation and
// reports where outcomes diverge. This powers the differential tests (every
// implementation must refine the same specification, so replays must agree)
// and gives crash investigations a reproducible script — the dynamic
// equivalent of §4.4's point that an interface you cannot describe is an
// interface you do not understand.
#ifndef SKERN_SRC_SPEC_TRACE_H_
#define SKERN_SRC_SPEC_TRACE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/vfs/filesystem.h"

namespace skern {

enum class FsOpKind : uint8_t {
  kCreate,
  kMkdir,
  kUnlink,
  kRmdir,
  kWrite,
  kRead,
  kTruncate,
  kRename,
  kStat,
  kReaddir,
  kSync,
  kFsync,
};

const char* FsOpKindName(FsOpKind kind);

struct FsOp {
  FsOpKind kind;
  std::string path;
  std::string path2;   // rename target
  uint64_t offset = 0;
  uint64_t length = 0;  // read length / truncate size
  Bytes data;           // write payload
  Errno observed = Errno::kOk;  // outcome when recorded

  std::string Describe() const;
};

using FsTrace = std::vector<FsOp>;

// Decorator that records everything passing through it.
class TracingFs : public FileSystem {
 public:
  explicit TracingFs(std::shared_ptr<FileSystem> inner) : inner_(std::move(inner)) {}

  Status Create(const std::string& path) override;
  Status Mkdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rmdir(const std::string& path) override;
  Status Write(const std::string& path, uint64_t offset, ByteView data) override;
  Result<Bytes> Read(const std::string& path, uint64_t offset, uint64_t length) override;
  Status Truncate(const std::string& path, uint64_t new_size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<FileAttr> Stat(const std::string& path) override;
  Result<std::vector<std::string>> Readdir(const std::string& path) override;
  Status Sync() override;
  Status Fsync(const std::string& path) override;
  std::string Name() const override { return "trace(" + inner_->Name() + ")"; }

  const FsTrace& trace() const { return trace_; }
  void ClearTrace() { trace_.clear(); }

 private:
  std::shared_ptr<FileSystem> inner_;
  FsTrace trace_;
};

struct ReplayDivergence {
  size_t op_index;
  std::string op;
  Errno expected;
  Errno actual;
};

// Replays a trace onto `fs`; outcomes must match what was recorded.
std::vector<ReplayDivergence> Replay(const FsTrace& trace, FileSystem& fs);

// Renders a trace as one line per op (debugging aid).
std::string RenderTrace(const FsTrace& trace);

}  // namespace skern

#endif  // SKERN_SRC_SPEC_TRACE_H_
