// Lock annotations: compile-time declarations of the locking discipline.
//
// §4.3 of the paper: shared kernel state comes "with complicated
// specifications on which fields can be accessed when ... and when which
// locks need to be held", enforced today only by code review. These macros
// turn that prose into checkable structure, twice over:
//
//   * Under clang the macros expand to Thread-Safety-Analysis attributes, so
//     `-Wthread-safety -Werror` (the clang CI job) rejects any access to a
//     SKERN_GUARDED_BY field outside a critical section of the named lock.
//   * Under every compiler the in-tree linter (tools/safety_lint) parses the
//     same annotations and checks each annotated field's access sites against
//     the guard acquisitions visible in the enclosing function.
//
// The spelling follows absl/base/thread_annotations.h; the semantics are
// clang's (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
//
// This header is deliberately dependency-free (macros only) and is the one
// src/sync header the module layering allows everywhere — annotating a field
// must never create a link-time dependency on the sync layer.
#ifndef SKERN_SRC_SYNC_ANNOTATIONS_H_
#define SKERN_SRC_SYNC_ANNOTATIONS_H_

#if defined(__clang__)
#define SKERN_TS_ATTR(x) __attribute__((x))
#else
#define SKERN_TS_ATTR(x)  // gcc et al.: annotations checked by safety_lint only
#endif

// --- declaring capabilities (lock types) ---

// Marks a class as a capability ("mutex" in diagnostics).
#define SKERN_CAPABILITY(name) SKERN_TS_ATTR(capability(name))

// Marks an RAII guard whose constructor acquires and destructor releases.
#define SKERN_SCOPED_CAPABILITY SKERN_TS_ATTR(scoped_lockable)

// --- annotating data ---

// Field may only be read/written while holding `lock`.
#define SKERN_GUARDED_BY(lock) SKERN_TS_ATTR(guarded_by(lock))

// Pointer field whose *pointee* is protected by `lock`.
#define SKERN_PT_GUARDED_BY(lock) SKERN_TS_ATTR(pt_guarded_by(lock))

// --- annotating functions ---

// Function acquires the capability (exclusively / shared) and holds it on
// return.
#define SKERN_ACQUIRE(...) SKERN_TS_ATTR(acquire_capability(__VA_ARGS__))
#define SKERN_ACQUIRE_SHARED(...) SKERN_TS_ATTR(acquire_shared_capability(__VA_ARGS__))

// Function releases the capability.
#define SKERN_RELEASE(...) SKERN_TS_ATTR(release_capability(__VA_ARGS__))
#define SKERN_RELEASE_SHARED(...) SKERN_TS_ATTR(release_shared_capability(__VA_ARGS__))

// Function acquires the capability iff it returns `result`.
#define SKERN_TRY_ACQUIRE(result, ...) \
  SKERN_TS_ATTR(try_acquire_capability(result, __VA_ARGS__))

// Caller must already hold the capability (exclusively / shared).
#define SKERN_REQUIRES(...) SKERN_TS_ATTR(requires_capability(__VA_ARGS__))
#define SKERN_REQUIRES_SHARED(...) SKERN_TS_ATTR(requires_shared_capability(__VA_ARGS__))

// Caller must NOT hold the capability (the function acquires it itself;
// guards against self-deadlock).
#define SKERN_EXCLUDES(...) SKERN_TS_ATTR(locks_excluded(__VA_ARGS__))

// Function dynamically checks that the capability is held and faults if not;
// the analysis assumes it held afterwards. (SKERN_ASSERT_HELD expands to a
// function annotated with this.)
#define SKERN_ASSERT_CAPABILITY(...) SKERN_TS_ATTR(assert_capability(__VA_ARGS__))

// Function returns a reference to the given capability.
#define SKERN_RETURN_CAPABILITY(lock) SKERN_TS_ATTR(lock_returned(lock))

// Escape hatch: disables analysis for one function (init/teardown paths that
// are single-threaded by construction). Use sparingly; the lint reports a
// tally so escapes stay visible.
#define SKERN_NO_TSA SKERN_TS_ATTR(no_thread_safety_analysis)

// --- access-control analysis markers (safety_lint rules A001/A002) ---
//
// These three expand to nothing under every compiler; they exist so the
// interprocedural pass in tools/safety_lint can build a call graph whose
// roots and sinks are explicit rather than conventional (the Asterinas
// lesson: authority boundaries should be machine-checkable).

// Marks a syscall-style entry point (the Vfs boundary). Every call path from
// an entry to a protected accessor must pass through a permission check
// (rule A001) and must not reach the same accessor with weaker `want` bits
// than a sibling path does (rule A002).
#define SKERN_ENTRY

// Marks a protected resource accessor (inode/handle mutators on the
// FileSystem interface). Placed on the declaration; the analyzer matches
// member-syntax calls to the annotated name.
#define SKERN_PROTECTED

// Escape hatch: this entry point intentionally performs no permission check
// (e.g. Close/Seek, which touch no protected resource). Tallied by the lint
// like SKERN_NO_TSA escapes so exemptions stay visible.
#define SKERN_NO_ACCESS_CHECK

#endif  // SKERN_SRC_SYNC_ANNOTATIONS_H_
