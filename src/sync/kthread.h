// Kernel threads and completion events.
//
// Kernel modules never construct std::thread directly (safety_lint P003):
// background work runs on a KThread, which gives every worker a name, a
// guaranteed join (the destructor requests stop and joins rather than
// detaching), and a standard stop handshake. Event is
// the matching wakeup primitive — a binary condition a flusher sleeps on
// with a timeout so a stop request or a burst of dirty state wakes it
// immediately instead of at the next poll tick.
//
// This header is the single allow-listed spawner in layers.toml
// (`thread_spawn`); everything above src/sync drives concurrency through
// it or from test/bench harnesses.
#ifndef SKERN_SRC_SYNC_KTHREAD_H_
#define SKERN_SRC_SYNC_KTHREAD_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

namespace skern {

// Binary event: Signal() wakes every current and future waiter until the
// event is Reset(). Built on std:: primitives directly (not TrackedMutex)
// because waiting on a condition variable is a scheduling point, not lock
// contention — charging a flusher's idle sleep to /contention would drown
// the real signal.
class Event {
 public:
  void Signal() {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      signaled_ = true;
    }
    cv_.notify_all();
  }

  void Reset() {
    std::lock_guard<std::mutex> guard(mutex_);
    signaled_ = false;
  }

  void Wait() {
    std::unique_lock<std::mutex> guard(mutex_);
    cv_.wait(guard, [this] { return signaled_; });
  }

  // Returns true if the event was signaled, false on timeout.
  bool WaitFor(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> guard(mutex_);
    return cv_.wait_for(guard, timeout, [this] { return signaled_; });
  }

  // Wait, then atomically consume the signal so the next Wait blocks.
  bool ConsumeFor(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> guard(mutex_);
    bool fired = cv_.wait_for(guard, timeout, [this] { return signaled_; });
    signaled_ = false;
    return fired;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool signaled_ = false;
};

// A named kernel thread. The body receives the thread's stop token and is
// expected to poll it (or wait on an Event the stopper signals). Stop()
// requests shutdown and joins; the destructor does the same, so a KThread
// owner can never leak a running worker.
class KThread {
 public:
  KThread() = default;

  KThread(std::string name, std::function<void(const std::atomic<bool>& stop)> body)
      : name_(std::move(name)), stop_(std::make_shared<std::atomic<bool>>(false)) {
    thread_ = std::thread([stop = stop_, fn = std::move(body)] { fn(*stop); });
  }

  ~KThread() { Stop(); }

  KThread(KThread&& other) noexcept { *this = std::move(other); }
  KThread& operator=(KThread&& other) noexcept {
    if (this != &other) {
      Stop();
      name_ = std::move(other.name_);
      thread_ = std::move(other.thread_);
      stop_ = std::move(other.stop_);
    }
    return *this;
  }
  KThread(const KThread&) = delete;
  KThread& operator=(const KThread&) = delete;

  bool Running() const { return thread_.joinable(); }
  const std::string& name() const { return name_; }

  // Raises the stop flag. The body sees it at its next poll; pair with an
  // Event signal if the body sleeps.
  void RequestStop() {
    if (stop_ != nullptr) {
      stop_->store(true, std::memory_order_release);
    }
  }

  // Requests stop and joins. Safe to call repeatedly or on an empty thread.
  void Stop() {
    RequestStop();
    if (thread_.joinable()) {
      thread_.join();
    }
    stop_.reset();
  }

 private:
  std::string name_;
  std::thread thread_;
  // Shared with the running body so the flag keeps a stable address across
  // moves of the owning KThread.
  std::shared_ptr<std::atomic<bool>> stop_;
};

}  // namespace skern

#endif  // SKERN_SRC_SYNC_KTHREAD_H_
